package utilbp

import "testing"

func TestFacadeQuickRun(t *testing.T) {
	setup := DefaultSetup()
	setup.Seed = 4
	res, err := Run(Spec{
		Setup:       setup,
		Pattern:     PatternII,
		Factory:     setup.UtilBP(),
		DurationSec: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Controller != "UTIL-BP" {
		t.Errorf("controller %q", res.Controller)
	}
	if res.Summary.Spawned == 0 {
		t.Error("no traffic")
	}
}

func TestFacadeSweepAndTable(t *testing.T) {
	setup := DefaultSetup()
	setup.Seed = 4
	points, err := SweepCAPPeriods(setup, PatternII, []int{14, 28}, 400)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestPeriod(points)
	if err != nil {
		t.Fatal(err)
	}
	if best.PeriodSec != 14 && best.PeriodSec != 28 {
		t.Errorf("best period %d", best.PeriodSec)
	}
	rows, err := TableIII(setup, []Pattern{PatternII}, []int{14, 28}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || FormatTableIII(rows) == "" {
		t.Error("table III facade failed")
	}
	fig, err := Fig2(setup, []int{14}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 1 || FormatFig2(fig) == "" {
		t.Error("fig2 facade failed")
	}
}

func TestPatternConstantsDistinct(t *testing.T) {
	seen := map[Pattern]bool{}
	for _, p := range []Pattern{PatternI, PatternII, PatternIII, PatternIV, PatternMixed} {
		if seen[p] {
			t.Fatalf("duplicate pattern constant %v", p)
		}
		seen[p] = true
	}
}
