module utilbp

go 1.24
