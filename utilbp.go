// Package utilbp is a Go reproduction of "CPS-oriented Modeling and
// Control of Traffic Signals Using Adaptive Back Pressure" (Chang, Roy,
// Zhao, Annaswamy, Chakraborty — DATE 2020).
//
// It bundles
//
//   - the paper's contribution: the utilization-aware adaptive
//     back-pressure controller UTIL-BP (internal/core),
//   - the baselines it is evaluated against: fixed-slot CAP-BP and
//     ORIG-BP (internal/bp) and a pretimed controller
//     (internal/fixedtime),
//   - a from-scratch mesoscopic queue-network traffic simulator standing
//     in for SUMO (internal/sim, internal/network), and
//   - the full evaluation harness regenerating every table and figure of
//     the paper's Section V (internal/experiment, internal/scenario).
//
// This root package is the stable facade: build a Setup (the paper's
// 3×3-grid evaluation constants), pick a Pattern and a controller
// factory, and Run.
//
//	setup := utilbp.DefaultSetup()
//	res, err := utilbp.Run(utilbp.Spec{
//	    Setup:   setup,
//	    Pattern: utilbp.PatternII,
//	    Factory: setup.UtilBP(),
//	})
//	fmt.Println(res.Summary.MeanWait)
//
// See DESIGN.md for the system inventory and PERF.md for the measured
// performance trajectory; regenerate the paper-versus-reproduction
// artifacts with cmd/papereval.
package utilbp

import (
	"utilbp/internal/experiment"
	"utilbp/internal/network"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
)

// Setup bundles the paper's evaluation constants (grid geometry, amber
// duration, alpha/beta, seed). Obtain one from DefaultSetup and adjust.
type Setup = scenario.Setup

// Pattern selects a Table II traffic pattern.
type Pattern = scenario.Pattern

// The Table II patterns plus the paper's 4-hour mixed pattern.
const (
	PatternI     = scenario.PatternI
	PatternII    = scenario.PatternII
	PatternIII   = scenario.PatternIII
	PatternIV    = scenario.PatternIV
	PatternMixed = scenario.PatternMixed
)

// Spec describes one simulation run; Result is its summary.
type (
	Spec   = experiment.Spec
	Result = experiment.Result
)

// PeriodPoint is one point of the Figure 2 sweep; TableIIIRow one row of
// Table III.
type (
	PeriodPoint = experiment.PeriodPoint
	TableIIIRow = experiment.TableIIIRow
	Fig2Data    = experiment.Fig2Data
)

// Factory builds one signal controller per junction; Setup's UtilBP,
// CapBP, OrigBP and FixedTime methods return them.
type Factory = signal.Factory

// GridSpec parameterizes rectangular grid networks for custom scenarios.
type GridSpec = network.GridSpec

// DefaultSetup returns the paper's Section V configuration: 3×3 grid,
// W = 120, 4 s amber, alpha = -1, beta = -2, Table I turning
// probabilities, and the calibrated 0.5 veh/s saturation flow.
func DefaultSetup() Setup { return scenario.Default() }

// Run executes one simulation to completion and summarizes it.
func Run(spec Spec) (Result, error) { return experiment.Run(spec) }

// SweepCAPPeriods sweeps CAP-BP's control period (the Figure 2 curve)
// over the given periods in seconds; nil uses the paper's 10-80 s range.
// durationSec > 0 shortens the runs.
func SweepCAPPeriods(setup Setup, pattern Pattern, periods []int, durationSec float64) ([]PeriodPoint, error) {
	return experiment.SweepCAPPeriods(setup, pattern, periods, durationSec)
}

// BestPeriod returns the sweep point with the lowest mean queuing time.
func BestPeriod(points []PeriodPoint) (PeriodPoint, error) {
	return experiment.BestPeriod(points)
}

// TableIII regenerates the paper's Table III (nil patterns = all five
// rows, nil periods = the full sweep, durationSec 0 = paper horizons).
func TableIII(setup Setup, patterns []Pattern, periods []int, durationSec float64) ([]TableIIIRow, error) {
	return experiment.TableIII(setup, patterns, periods, durationSec)
}

// FormatTableIII renders Table III rows as text.
func FormatTableIII(rows []TableIIIRow) string { return experiment.FormatTableIII(rows) }

// Fig2 regenerates the Figure 2 data on the mixed pattern.
func Fig2(setup Setup, periods []int, durationSec float64) (Fig2Data, error) {
	return experiment.Fig2(setup, periods, durationSec)
}

// FormatFig2 renders the Figure 2 series as text.
func FormatFig2(d Fig2Data) string { return experiment.FormatFig2(d) }
