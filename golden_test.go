package utilbp

import (
	"math"
	"testing"
)

// TestGoldenReproducibility pins exact outputs for fixed seeds. Every run
// is a pure function of the seed (see README "Determinism"), so these
// values must not drift between commits: a change here means simulation
// behaviour changed and the cmd/papereval artifacts need regenerating.
// Update the constants deliberately when a behaviour change is intended.
func TestGoldenReproducibility(t *testing.T) {
	setup := DefaultSetup()
	setup.Seed = 2026

	util, err := Run(Spec{Setup: setup, Pattern: PatternII, Factory: setup.UtilBP(), DurationSec: 900})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "UTIL-BP", util, golden{
		spawned: 1806, exited: 1434, served: 4543, meanWait: 83.807006,
	})

	capbp, err := Run(Spec{Setup: setup, Pattern: PatternII, Factory: setup.CapBP(20), DurationSec: 900})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "CAP-BP@20", capbp, golden{
		spawned: 1806, exited: 1404, served: 4505, meanWait: 99.667694,
	})

	// Identical seeds see identical arrival processes regardless of the
	// controller under test.
	if util.Summary.Spawned != capbp.Summary.Spawned {
		t.Errorf("same-seed runs saw different demand: %d vs %d",
			util.Summary.Spawned, capbp.Summary.Spawned)
	}
}

type golden struct {
	spawned, exited, served int
	meanWait                float64
}

func checkGolden(t *testing.T, name string, res Result, want golden) {
	t.Helper()
	if res.Summary.Spawned != want.spawned {
		t.Errorf("%s spawned = %d, want %d", name, res.Summary.Spawned, want.spawned)
	}
	if res.Summary.Exited != want.exited {
		t.Errorf("%s exited = %d, want %d", name, res.Summary.Exited, want.exited)
	}
	if res.Totals.Served != want.served {
		t.Errorf("%s served = %d, want %d", name, res.Totals.Served, want.served)
	}
	if math.Abs(res.Summary.MeanWait-want.meanWait) > 1e-4 {
		t.Errorf("%s mean wait = %.6f, want %.6f", name, res.Summary.MeanWait, want.meanWait)
	}
}
