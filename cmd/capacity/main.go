// Command capacity estimates each controller's capacity margin: the
// largest uniform scaling of the Table II demand it can stabilize
// (bounded backlog), via bisection. This operationalizes the
// stability-vs-utilization trade-off the paper defers to future work.
//
// Example:
//
//	capacity -pattern II -period 22
//	capacity -pattern IV -horizon 2400 -iterations 7
package main

import (
	"flag"
	"fmt"
	"os"

	"utilbp/internal/cli"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
	"utilbp/internal/stability"
)

func main() {
	var (
		patternFlag = flag.String("pattern", "II", "traffic pattern: I, II, III, IV, mixed")
		period      = flag.Int("period", 22, "control phase period for the fixed-slot controllers")
		horizon     = flag.Float64("horizon", 1800, "per-probe horizon in seconds")
		iterations  = flag.Int("iterations", 6, "bisection steps")
		seed        = flag.Uint64("seed", 1, "random seed")
		controllers = flag.String("controllers", "util,cap,orig,fixed", "comma-separated controllers to probe")
	)
	flag.Parse()

	pattern, err := cli.ParsePattern(*patternFlag)
	if err != nil {
		fatal(err)
	}
	setup := scenario.Default()
	setup.Seed = *seed

	fmt.Printf("capacity margins on pattern %v (%s), horizon %.0f s, %d bisection steps\n",
		pattern, pattern.Description(), *horizon, *iterations)
	fmt.Printf("%-10s %-16s %s\n", "controller", "critical scale", "runs")
	start, names := 0, splitList(*controllers)
	_ = start
	for _, name := range names {
		factory, err := cli.PickFactory(setup, name, *period)
		if err != nil {
			fatal(err)
		}
		res, err := stability.Probe(stability.Options{
			Setup:      setup,
			Pattern:    pattern,
			Factory:    factory,
			HorizonSec: *horizon,
			Iterations: *iterations,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-10s %-16.3f %d\n", displayName(factory), res.CriticalScale, len(res.Evaluations))
	}
	fmt.Println("\nscale 1.0 = the paper's Table II demand; larger = more headroom")
}

func displayName(f signal.Factory) string { return f.Name() }

func splitList(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "capacity:", err)
	os.Exit(1)
}
