// Command phasetrace reproduces the raw data of the paper's Figures 3-5:
// the control phases applied at the top-right intersection over time and
// the queue-length series of its east approach, for a chosen controller
// under Pattern I (or any other pattern). Output goes to CSV files plus a
// text summary on stdout.
//
// Example:
//
//	phasetrace -controller util -pattern I -duration 2000 -out fig4.csv
//	phasetrace -controller cap -period 18 -pattern I -duration 2000 -out fig3.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"utilbp/internal/cli"
	"utilbp/internal/experiment"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
	"utilbp/internal/trace"
)

func main() {
	var (
		patternFlag = flag.String("pattern", "I", "traffic pattern: I, II, III, IV, mixed")
		controller  = flag.String("controller", "util", "controller: util, cap, orig, fixed")
		period      = flag.Int("period", 18, "control phase period in seconds (fixed-slot controllers)")
		duration    = flag.Float64("duration", 2000, "simulation horizon in seconds")
		seed        = flag.Uint64("seed", 1, "random seed")
		row         = flag.Int("row", 0, "junction row (0 = north)")
		col         = flag.Int("col", 2, "junction column (2 = east in the 3x3 grid)")
		out         = flag.String("out", "", "phase-timeline CSV path (empty = skip)")
		queueOut    = flag.String("queue-out", "", "east-approach queue series CSV path (empty = skip)")
		stride      = flag.Int("stride", 5, "queue series sampling stride in mini-slots")
		mu          = flag.Float64("mu", 0, "service rate per movement (0 = scenario default)")
	)
	flag.Parse()

	pattern, err := cli.ParsePattern(*patternFlag)
	if err != nil {
		fatal(err)
	}
	setup := scenario.Default()
	setup.Seed = *seed
	if *mu > 0 {
		setup.Grid.Mu = *mu
	}

	factory, err := cli.PickFactory(setup, *controller, *period)
	if err != nil {
		fatal(err)
	}

	timeline, err := experiment.PhaseTimeline(setup, pattern, factory, *duration, *row, *col)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("controller      %s\n", timeline.Controller)
	fmt.Printf("junction        (%d,%d)\n", *row, *col)
	fmt.Printf("horizon         %.0f s\n", *duration)
	fmt.Printf("transitions     %d\n", timeline.Stats.Transitions)
	fmt.Printf("amber slots     %d (%.1f%%)\n", timeline.Stats.AmberSlots,
		100*float64(timeline.Stats.AmberSlots)/float64(len(timeline.Phases)))
	fmt.Printf("mean green run  %.1f s\n", timeline.Stats.MeanGreenRun*timeline.DT)
	fmt.Printf("max green run   %d s\n", timeline.Stats.MaxGreenRun)
	var phases []signal.Phase
	for p := range timeline.Stats.GreenSlots {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	for _, p := range phases {
		fmt.Printf("green in %v      %d s\n", p, timeline.Stats.GreenSlots[p])
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.WritePhaseTimeline(f, timeline.DT, timeline.Phases); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("phase timeline  -> %s\n", *out)
	}

	series, err := experiment.EastQueueSeries(setup, pattern, factory, *duration, *row, *col, *stride)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("east approach queue: mean %.2f, max %d\n", series.Mean, series.Max)
	if *queueOut != "" {
		f, err := os.Create(*queueOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteSeries(f, []string{"time_s", "queue"},
			series.Times, trace.IntsToFloats(series.Values)); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("queue series    -> %s\n", *queueOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phasetrace:", err)
	os.Exit(1)
}
