// Command perfbench measures the simulator's performance envelope and
// writes it to a JSON file, establishing the perf trajectory across PRs
// (BENCH_1.json, BENCH_2.json, ...; see PERF.md for the history and the
// exact regeneration commands).
//
// It reports three measurements:
//
//   - loaded engine throughput: mini-slots per second with Pattern I
//     demand flowing, including the vehicle-spawn path (which since PR 2
//     is itself allocation-free: vehicle.Plan values, pre-sized arena);
//   - steady-state stepOnce: the same loop after demand quiesces, where
//     the hot path must perform zero heap allocations;
//   - the Table III multi-seed sweep wall time, through the pooled
//     worker scheduler with its per-worker engine cache, and optionally
//     the serial fresh-engine reference path;
//   - one short pooled sweep per registered scenario workload
//     (scenario.Workloads), exercising engine reuse beyond the paper's
//     3×3 grid.
//
// Example:
//
//	perfbench -out BENCH_2.json -seeds 8 -serial -note "engine reuse"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"utilbp/internal/experiment"
	"utilbp/internal/scenario"
	"utilbp/internal/sim"
)

// Report is the schema of BENCH_*.json.
type Report struct {
	GeneratedBy string `json:"generated_by"`
	Note        string `json:"note,omitempty"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	LoadedStep StepReport  `json:"loaded_step"`
	SteadyStep StepReport  `json:"steady_step"`
	Sweeps     []SweepTime `json:"sweeps"`
}

// StepReport summarizes a stepping measurement.
type StepReport struct {
	Steps         int     `json:"steps"`
	WallSeconds   float64 `json:"wall_seconds"`
	NsPerStep     float64 `json:"ns_per_step"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	AllocsPerStep float64 `json:"allocs_per_step"`
	BytesPerStep  float64 `json:"bytes_per_step"`
}

// SweepTime is the wall time of one experiment-layer sweep.
type SweepTime struct {
	Name        string  `json:"name"`
	Patterns    int     `json:"patterns"`
	Seeds       int     `json:"seeds"`
	Periods     int     `json:"periods"`
	DurationSec float64 `json:"duration_sec"` // 0 = paper horizons
	WallSeconds float64 `json:"wall_seconds"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH.json", "output JSON path")
		note     = flag.String("note", "", "free-form note recorded in the report")
		steps    = flag.Int("steps", 200000, "mini-slots for the loaded measurement")
		steady   = flag.Int("steady-steps", 2000, "mini-slots for the steady-state measurement (kept short so the quiesced network is still carrying traffic)")
		warmup   = flag.Int("warmup", 900, "warmup mini-slots before the steady-state measurement")
		seeds    = flag.Int("seeds", 8, "seeds for the Table III multi-seed sweep")
		seed     = flag.Uint64("seed", 1, "first seed (seeds are consecutive)")
		duration = flag.Float64("duration", 0, "sweep horizon override in seconds (0 = paper horizons)")
		minP     = flag.Int("min-period", 10, "CAP-BP sweep start (s)")
		maxP     = flag.Int("max-period", 80, "CAP-BP sweep end (s)")
		stepP    = flag.Int("step", 10, "CAP-BP sweep step (s)")
		serial   = flag.Bool("serial", false, "also time the serial reference scheduler")
		workload = flag.Bool("workloads", true, "time a short pooled sweep per registered workload")
		wlDur    = flag.Float64("workload-duration", 900, "horizon in seconds for the workload sweeps")
	)
	flag.Parse()

	setup := scenario.Default()
	setup.Seed = *seed
	report := Report{
		GeneratedBy: "cmd/perfbench",
		Note:        *note,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	loaded, err := measureLoaded(setup, *steps)
	if err != nil {
		fatal(err)
	}
	report.LoadedStep = loaded
	fmt.Printf("loaded step:  %.0f steps/s, %.2f allocs/step\n", loaded.StepsPerSec, loaded.AllocsPerStep)

	steadyRep, err := measureSteady(setup, *warmup, *steady)
	if err != nil {
		fatal(err)
	}
	report.SteadyStep = steadyRep
	fmt.Printf("steady step:  %.0f steps/s, %.4f allocs/step\n", steadyRep.StepsPerSec, steadyRep.AllocsPerStep)

	var periods []int
	for p := *minP; p <= *maxP; p += *stepP {
		periods = append(periods, p)
	}
	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + uint64(i)
	}

	sweeps := []struct {
		name string
		run  func() error
	}{
		{"table3_multiseed_pooled", func() error {
			_, err := experiment.TableIIIMultiSeed(setup, nil, periods, *duration, seedList)
			return err
		}},
	}
	if *serial {
		sweeps = append(sweeps, struct {
			name string
			run  func() error
		}{"table3_multiseed_serial", func() error {
			_, err := experiment.TableIIIMultiSeedSerial(setup, nil, periods, *duration, seedList)
			return err
		}})
	}
	for _, s := range sweeps {
		start := time.Now()
		if err := s.run(); err != nil {
			fatal(err)
		}
		wall := time.Since(start).Seconds()
		report.Sweeps = append(report.Sweeps, SweepTime{
			Name:        s.name,
			Patterns:    len(scenario.AllPatterns),
			Seeds:       len(seedList),
			Periods:     len(periods),
			DurationSec: *duration,
			WallSeconds: wall,
		})
		fmt.Printf("%s: %.3fs (%d patterns x %d seeds x %d periods + UTIL runs)\n",
			s.name, wall, len(scenario.AllPatterns), len(seedList), len(periods))
	}

	if *workload {
		for _, w := range scenario.Workloads() {
			start := time.Now()
			if _, err := experiment.TableIIIMultiSeed(w.Setup,
				[]scenario.Pattern{w.Pattern}, periods, *wlDur, seedList); err != nil {
				fatal(err)
			}
			wall := time.Since(start).Seconds()
			report.Sweeps = append(report.Sweeps, SweepTime{
				Name:        "workload_" + w.Name,
				Patterns:    1,
				Seeds:       len(seedList),
				Periods:     len(periods),
				DurationSec: *wlDur,
				WallSeconds: wall,
			})
			fmt.Printf("workload_%s: %.3fs (%d seeds x %d periods + UTIL runs @ %.0fs)\n",
				w.Name, wall, len(seedList), len(periods), *wlDur)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

// measureLoaded times the engine with Pattern I demand flowing.
func measureLoaded(setup scenario.Setup, steps int) (StepReport, error) {
	engine, _, _, err := experiment.Prepare(experiment.Spec{
		Setup: setup, Pattern: scenario.PatternI, Factory: setup.UtilBP(),
	})
	if err != nil {
		return StepReport{}, err
	}
	return timeSteps(engine, steps), nil
}

// measureSteady warms an engine up, cuts demand, and times the quiesced
// loop — the configuration whose contract is zero allocations per step.
// The window must stay short (the -steady-steps default): once the
// queued traffic drains to the terminals the loop steps an empty
// network, and a long window would average that in and overstate
// throughput.
func measureSteady(setup scenario.Setup, warmup, steps int) (StepReport, error) {
	built, err := setup.Build(scenario.PatternI)
	if err != nil {
		return StepReport{}, err
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      &sim.CutoffDemand{Inner: built.Demand, CutoffStep: warmup},
		Router:      built.Router,
	})
	if err != nil {
		return StepReport{}, err
	}
	engine.Run(warmup + 20)
	return timeSteps(engine, steps), nil
}

// timeSteps advances the engine and reports wall time and allocation
// counts per mini-slot.
func timeSteps(engine *sim.Engine, steps int) StepReport {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	engine.Run(steps)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return StepReport{
		Steps:         steps,
		WallSeconds:   wall,
		NsPerStep:     wall * 1e9 / float64(steps),
		StepsPerSec:   float64(steps) / wall,
		AllocsPerStep: float64(after.Mallocs-before.Mallocs) / float64(steps),
		BytesPerStep:  float64(after.TotalAlloc-before.TotalAlloc) / float64(steps),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfbench:", err)
	os.Exit(1)
}
