// Command perfbench measures the simulator's performance envelope and
// writes it to a JSON file, establishing the perf trajectory across PRs
// (BENCH_1.json, BENCH_2.json, ...; see PERF.md for the history and the
// exact regeneration commands).
//
// It reports three measurements:
//
//   - loaded engine throughput: mini-slots per second with Pattern I
//     demand flowing, including the vehicle-spawn path (which since PR 2
//     is itself allocation-free: vehicle.Plan values, pre-sized arena);
//   - steady-state stepOnce: the same loop after demand quiesces, where
//     the hot path must perform zero heap allocations;
//   - the Table III multi-seed sweep wall time, through the pooled
//     worker scheduler with its shared artifact cache and per-worker
//     engine cache, and optionally the serial fresh-engine reference
//     path;
//   - one short pooled sweep per registered scenario workload
//     (scenario.Workloads), exercising engine reuse beyond the paper's
//     3×3 grid (city-scale workloads shorten their horizon via
//     Workload.SweepHorizonSec);
//   - per-engine heap bytes for selected workloads, via
//     runtime.ReadMemStats deltas around engine construction on a shared
//     scenario artifact (the memory-layout trajectory of DESIGN.md §5).
//
// Example:
//
//	perfbench -out BENCH_3.json -seeds 8 -serial -note "shared artifacts"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"utilbp/internal/experiment"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
	"utilbp/internal/telemetry"
)

// Report is the schema of BENCH_*.json.
type Report struct {
	GeneratedBy string `json:"generated_by"`
	Note        string `json:"note,omitempty"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	LoadedStep   StepReport               `json:"loaded_step"`
	SteadyStep   StepReport               `json:"steady_step"`
	Sensing      []SensorStepReport       `json:"sensing,omitempty"`
	Control      []ControlStepReport      `json:"control,omitempty"`
	Serve        []ServeStepReport        `json:"serve,omitempty"`
	Instrumented []InstrumentedStepReport `json:"instrumented,omitempty"`
	Sweeps       []SweepTime              `json:"sweeps"`
	Matrix       *MatrixReport            `json:"matrix,omitempty"`
	Robustness   []RobustnessReport       `json:"robustness,omitempty"`
	Stress       []StressReport           `json:"stress,omitempty"`
	EngineHeap   []HeapReport             `json:"engine_heap,omitempty"`
}

// StepReport summarizes a stepping measurement. The headline numbers
// come from an uninstrumented run; Phases attributes time to the
// mini-slot substeps from a second, instrumented run of an identical
// engine (sim.Engine.RunTimed), whose clock reads add overhead — the
// split is for attribution, not for absolute comparison.
type StepReport struct {
	Steps         int         `json:"steps"`
	WallSeconds   float64     `json:"wall_seconds"`
	NsPerStep     float64     `json:"ns_per_step"`
	StepsPerSec   float64     `json:"steps_per_sec"`
	AllocsPerStep float64     `json:"allocs_per_step"`
	BytesPerStep  float64     `json:"bytes_per_step"`
	Phases        *PhaseSplit `json:"phases,omitempty"`
}

// PhaseSplit is the per-step wall time of each mini-slot substep:
// events (disruption-schedule transitions), sense (incremental
// observation maintenance + sensor model), control (controller
// decisions), serve, travel completion and arrivals.
type PhaseSplit struct {
	EventsNs   float64 `json:"events_ns"`
	SenseNs    float64 `json:"sense_ns"`
	ControlNs  float64 `json:"control_ns"`
	ServeNs    float64 `json:"serve_ns"`
	TravelNs   float64 `json:"travel_ns"`
	ArrivalsNs float64 `json:"arrivals_ns"`
}

// SensorStepReport is one sensing-overhead measurement: steady-state
// stepping of a workload's grid with a given observation sensor
// installed, so the cost of the sensing layer is visible next to the
// sensor-free baseline.
type SensorStepReport struct {
	Workload string `json:"workload"`
	Sensor   string `json:"sensor"`
	StepReport
}

// ControlStepReport is one controller-mode measurement: steady-state
// stepping of a workload under UTIL-BP with the control substep
// dispatched per-junction or batched (DESIGN.md §11), so the batched
// control plane's win is visible in the phases.control_ns column next
// to the per-junction reference.
type ControlStepReport struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	StepReport
}

// ServeStepReport is one serve-mode measurement: steady-state stepping
// of a workload with the serve substep dispatched batched (the skip-
// capable serve plane of DESIGN.md §16) or through the per-junction
// reference loop, so the serve plane's win is visible in the
// phases.serve_ns column next to the reference. The two modes step
// bit-identical states (pinned by the serve-equivalence harness); the
// delta is pure dispatch cost.
type ServeStepReport struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	StepReport
}

// InstrumentedStepReport is one telemetry-overhead measurement:
// steady-state stepping of a workload with a telemetry recorder
// installed, next to an uninstrumented baseline of an identical engine.
// OverheadPct is the ns/step increase relative to that baseline — the
// measured cost of the zero-alloc metrics plane (the recording path
// itself is CI-gated allocation-free by BenchmarkStepOnceInstrumented).
type InstrumentedStepReport struct {
	Workload  string `json:"workload"`
	Telemetry string `json:"telemetry"`
	StepReport
	BaselineNsPerStep float64 `json:"baseline_ns_per_step"`
	OverheadPct       float64 `json:"overhead_pct"`
}

// SweepTime is the wall time of one experiment-layer sweep.
type SweepTime struct {
	Name        string  `json:"name"`
	Patterns    int     `json:"patterns"`
	Seeds       int     `json:"seeds"`
	Periods     int     `json:"periods"`
	DurationSec float64 `json:"duration_sec"` // 0 = paper horizons
	WallSeconds float64 `json:"wall_seconds"`
}

// MatrixRow is one (workload × controller × sensor) row of the matrix
// sweep, seeds folded into mean ± std.
type MatrixRow struct {
	Workload       string  `json:"workload"`
	Controller     string  `json:"controller"`
	Sensor         string  `json:"sensor"`
	MeanWaitSec    float64 `json:"mean_wait_sec"`
	StdWaitSec     float64 `json:"std_wait_sec"`
	CompletionRate float64 `json:"completion_rate"`
}

// MatrixReport is the controller-zoo matrix measurement
// (experiment.MatrixSweep): every controller family crossed with the
// observation axis on the paper grid and the city-scale workloads,
// through the pooled scheduler with per-worker engine caches.
type MatrixReport struct {
	Workloads   []string    `json:"workloads"`
	Controllers []string    `json:"controllers"`
	Sensors     []string    `json:"sensors"`
	Seeds       int         `json:"seeds"`
	DurationSec float64     `json:"duration_sec"`
	Rows        []MatrixRow `json:"rows"`
	WallSeconds float64     `json:"wall_seconds"`
}

// RobustnessRow is one (controller family × incident severity) point of
// the throughput-vs-capacity-loss curve (experiment.RobustnessSweep).
type RobustnessRow struct {
	Family         string  `json:"family"`
	CapFrac        float64 `json:"cap_frac"`
	MeanWaitSec    float64 `json:"mean_wait_sec"`
	MeanThroughput float64 `json:"mean_throughput"`
	DegradationPct float64 `json:"degradation_pct"`
}

// RobustnessReport is the disruption-robustness measurement for one
// workload: the throughput-vs-capacity-loss curve across controller
// families, plus the queue-recovery metric of a worst-severity incident
// run under UTIL-BP (experiment.MeasureRecovery) — recovery_sec is the
// post-clearance drain time, -1 when the queues never returned to their
// onset level within the horizon (DESIGN.md §12).
type RobustnessReport struct {
	Workload   string          `json:"workload"`
	HorizonSec float64         `json:"horizon_sec"`
	Seeds      int             `json:"seeds"`
	Rows       []RobustnessRow `json:"rows"`
	// The recovery probe runs at a stable operating point — demand
	// scaled down so queues are stationary before the onset — because
	// "drained back to the onset level" is only meaningful when the
	// onset level is an equilibrium, not a point on a growth curve.
	RecoveryDemandScale float64 `json:"recovery_demand_scale"`
	RecoveryHorizonSec  float64 `json:"recovery_horizon_sec"`
	OnsetQueued         int     `json:"recovery_onset_queued"`
	PeakQueued          int     `json:"recovery_peak_queued"`
	RecoverySec         float64 `json:"recovery_sec"`
	WallSeconds         float64 `json:"wall_seconds"`
}

// StressRow is one (controller family × area size × demand scale)
// point of the graceful-degradation surface (experiment.StressSweep):
// area_k = 0 is the undisrupted reference at the same demand.
type StressRow struct {
	Family         string  `json:"family"`
	AreaK          int     `json:"area_k"`
	DemandScale    float64 `json:"demand_scale"`
	MeanWaitSec    float64 `json:"mean_wait_sec"`
	StdWaitSec     float64 `json:"std_wait_sec"`
	MeanThroughput float64 `json:"mean_throughput"`
	DegradationPct float64 `json:"degradation_pct"`
}

// StressReport is the area-incident stress study for one workload: the
// degradation surface across controller families, area sizes and
// demand scales, plus the queue-recovery metric of the largest area
// incident under UTIL-BP at a stable operating point (the same probe
// conventions as RobustnessReport; DESIGN.md §14).
type StressReport struct {
	Workload            string      `json:"workload"`
	HorizonSec          float64     `json:"horizon_sec"`
	Seeds               int         `json:"seeds"`
	Rows                []StressRow `json:"rows"`
	RecoveryAreaK       int         `json:"recovery_area_k"`
	RecoveryDemandScale float64     `json:"recovery_demand_scale"`
	RecoveryHorizonSec  float64     `json:"recovery_horizon_sec"`
	OnsetQueued         int         `json:"recovery_onset_queued"`
	PeakQueued          int         `json:"recovery_peak_queued"`
	RecoverySec         float64     `json:"recovery_sec"`
	WallSeconds         float64     `json:"wall_seconds"`
}

// HeapReport is the per-engine memory footprint of one workload: the
// heap bytes one simulation engine retains when built on a shared
// scenario artifact (arena pre-sized for the pattern horizon, lane rings
// and travel heaps pre-sized from link capacity), plus the bytes of the
// shared artifact itself, which exists once per process regardless of
// engine count.
type HeapReport struct {
	Workload        string  `json:"workload"`
	HorizonSec      float64 `json:"horizon_sec"`
	EngineHeapBytes uint64  `json:"engine_heap_bytes"`
	SharedArtifact  uint64  `json:"shared_artifact_bytes"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH.json", "output JSON path")
		note      = flag.String("note", "", "free-form note recorded in the report")
		steps     = flag.Int("steps", 200000, "mini-slots for the loaded measurement")
		steady    = flag.Int("steady-steps", 2000, "mini-slots for the steady-state measurement (kept short so the quiesced network is still carrying traffic)")
		warmup    = flag.Int("warmup", 900, "warmup mini-slots before the steady-state measurement")
		seeds     = flag.Int("seeds", 8, "seeds for the Table III multi-seed sweep")
		seed      = flag.Uint64("seed", 1, "first seed (seeds are consecutive)")
		duration  = flag.Float64("duration", 0, "sweep horizon override in seconds (0 = paper horizons)")
		minP      = flag.Int("min-period", 10, "CAP-BP sweep start (s)")
		maxP      = flag.Int("max-period", 80, "CAP-BP sweep end (s)")
		stepP     = flag.Int("step", 10, "CAP-BP sweep step (s)")
		serial    = flag.Bool("serial", false, "also time the serial reference scheduler")
		workload  = flag.Bool("workloads", true, "time a short pooled sweep per registered workload")
		sense     = flag.Bool("sensing", true, "measure sensing overhead (steady stepping per sensor model) and the penetration sweep wall time")
		ctrlModes = flag.Bool("control-modes", true, "measure the control substep per dispatch mode (per-junction vs batched) on the paper and city grids")
		srvModes  = flag.Bool("serve", true, "measure the serve substep per dispatch mode (batched vs reference) on the paper and city grids")
		instr     = flag.Bool("instrumented", true, "measure telemetry-recording overhead (steady stepping with a recorder installed vs off) on the paper and city grids")
		wlDur     = flag.Float64("workload-duration", 900, "horizon in seconds for the workload sweeps; when left at the default, city-scale workloads shorten it via their registered SweepHorizonSec")
		matrix    = flag.Bool("matrix", true, "run the controller-zoo × sensor matrix sweep (experiment.MatrixSweep) on the paper grid and the city workloads")
		robust    = flag.Bool("robustness", true, "measure throughput under capacity loss and post-incident recovery on the paper and city grids")
		stress    = flag.Bool("stress", true, "run the area-incident stress study (experiment.StressSweep): graceful degradation across area sizes and demand scales on the paper and city grids")
		heap      = flag.Bool("heap", true, "measure per-engine heap bytes for the paper and city workloads")
	)
	flag.Parse()
	// A workload-duration the operator set explicitly applies verbatim;
	// only the default defers to each workload's registered sweep horizon.
	wlDurExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workload-duration" {
			wlDurExplicit = true
		}
	})

	setup := scenario.Default()
	setup.Seed = *seed
	report := Report{
		GeneratedBy: "cmd/perfbench",
		Note:        *note,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	loaded, err := measureLoaded(setup, *steps)
	if err != nil {
		fatal(err)
	}
	report.LoadedStep = loaded
	fmt.Printf("loaded step:  %.0f steps/s, %.2f allocs/step\n", loaded.StepsPerSec, loaded.AllocsPerStep)

	steadyRep, err := measureSteady(setup, *warmup, *steady)
	if err != nil {
		fatal(err)
	}
	report.SteadyStep = steadyRep
	fmt.Printf("steady step:  %.0f steps/s, %.4f allocs/step\n", steadyRep.StepsPerSec, steadyRep.AllocsPerStep)

	if *sense {
		for _, c := range sensingCases() {
			rep, err := measureSensing(c.workload, c.label, c.spec, c.explicit, *seed, *warmup, *steady)
			if err != nil {
				fatal(err)
			}
			report.Sensing = append(report.Sensing, rep)
			fmt.Printf("sensing %s/%s: %.0f ns/step (sense %.0f ns), %.4f allocs/step\n",
				c.workload, c.label, rep.NsPerStep, rep.Phases.SenseNs, rep.AllocsPerStep)
		}
	}

	if *ctrlModes {
		for _, wl := range []string{"paper-grid", "city-grid"} {
			for _, mode := range []signal.ControlMode{signal.ControlPerJunction, signal.ControlBatched} {
				rep, err := measureControlMode(wl, mode, *seed, *warmup, *steady)
				if err != nil {
					fatal(err)
				}
				report.Control = append(report.Control, rep)
				fmt.Printf("control %s/%s: %.0f ns/step (control %.0f ns), %.4f allocs/step\n",
					wl, mode, rep.NsPerStep, rep.Phases.ControlNs, rep.AllocsPerStep)
			}
		}
	}

	if *srvModes {
		for _, wl := range []string{"paper-grid", "city-grid"} {
			for _, mode := range []sim.ServeMode{sim.ServeBatched, sim.ServeReference} {
				rep, err := measureServeMode(wl, mode, *seed, *warmup, *steady)
				if err != nil {
					fatal(err)
				}
				report.Serve = append(report.Serve, rep)
				fmt.Printf("serve %s/%s: %.0f ns/step (serve %.0f ns), %.4f allocs/step\n",
					wl, mode, rep.NsPerStep, rep.Phases.ServeNs, rep.AllocsPerStep)
			}
		}
	}

	if *instr {
		cases := []struct {
			workload string
			spec     telemetry.Spec
		}{
			{"paper-grid", telemetry.Net()},
			{"city-grid", telemetry.Net()},
			{"city-grid", telemetry.Full()},
		}
		for _, c := range cases {
			rep, err := measureInstrumented(c.workload, c.spec, *seed, *warmup, *steady)
			if err != nil {
				fatal(err)
			}
			report.Instrumented = append(report.Instrumented, rep)
			fmt.Printf("telemetry %s/%s: %.0f ns/step (%+.1f%% vs off), %.4f allocs/step\n",
				c.workload, c.spec, rep.NsPerStep, rep.OverheadPct, rep.AllocsPerStep)
		}
	}

	var periods []int
	for p := *minP; p <= *maxP; p += *stepP {
		periods = append(periods, p)
	}
	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + uint64(i)
	}

	type sweepJob struct {
		name     string
		patterns int
		periods  int
		duration float64
		run      func() error
	}
	sweeps := []sweepJob{
		{"table3_multiseed_pooled", len(scenario.AllPatterns), len(periods), *duration, func() error {
			_, err := experiment.TableIIIMultiSeed(setup, nil, periods, *duration, seedList)
			return err
		}},
	}
	if *ctrlModes {
		// The same pooled sweep with batched dispatch forced off — the
		// sweep-level controller-mode comparison (the default setup runs
		// batched via ControlAuto).
		perJunction := setup
		perJunction.Control = signal.ControlPerJunction
		sweeps = append(sweeps, sweepJob{"table3_multiseed_pooled_per-junction", len(scenario.AllPatterns), len(periods), *duration, func() error {
			_, err := experiment.TableIIIMultiSeed(perJunction, nil, periods, *duration, seedList)
			return err
		}})
	}
	if *sense {
		// The penetration sweep's "periods" column counts its sensor
		// specs: the perfect reference plus the cv:0.1..1.0 axis.
		rates := experiment.DefaultPenetrationRates()
		sweeps = append(sweeps, sweepJob{"penetration_cv_paper-grid", 1, len(rates) + 1, 900, func() error {
			_, err := experiment.PenetrationSweep(setup, scenario.PatternII, rates, seedList, 900)
			return err
		}})
	}
	if *serial {
		sweeps = append(sweeps, sweepJob{"table3_multiseed_serial", len(scenario.AllPatterns), len(periods), *duration, func() error {
			_, err := experiment.TableIIIMultiSeedSerial(setup, nil, periods, *duration, seedList)
			return err
		}})
	}
	for _, s := range sweeps {
		start := time.Now()
		if err := s.run(); err != nil {
			fatal(err)
		}
		wall := time.Since(start).Seconds()
		report.Sweeps = append(report.Sweeps, SweepTime{
			Name:        s.name,
			Patterns:    s.patterns,
			Seeds:       len(seedList),
			Periods:     s.periods,
			DurationSec: s.duration,
			WallSeconds: wall,
		})
		fmt.Printf("%s: %.3fs (%d patterns x %d seeds x %d cells + UTIL runs)\n",
			s.name, wall, s.patterns, len(seedList), s.periods)
	}

	if *workload {
		for _, w := range scenario.Workloads() {
			horizon := *wlDur
			if !wlDurExplicit {
				horizon = w.SweepHorizon(*wlDur)
			}
			start := time.Now()
			if _, err := experiment.TableIIIMultiSeed(w.Setup,
				[]scenario.Pattern{w.Pattern}, periods, horizon, seedList); err != nil {
				fatal(err)
			}
			wall := time.Since(start).Seconds()
			report.Sweeps = append(report.Sweeps, SweepTime{
				Name:        "workload_" + w.Name,
				Patterns:    1,
				Seeds:       len(seedList),
				Periods:     len(periods),
				DurationSec: horizon,
				WallSeconds: wall,
			})
			fmt.Printf("workload_%s: %.3fs (%d seeds x %d periods + UTIL runs @ %.0fs)\n",
				w.Name, wall, len(seedList), len(periods), horizon)
		}
	}

	if *matrix {
		mr, err := measureMatrix(seedList)
		if err != nil {
			fatal(err)
		}
		report.Matrix = mr
		fmt.Printf("matrix: %d rows (%d workloads x %d controllers x %d sensors x %d seeds) in %.3fs\n",
			len(mr.Rows), len(mr.Workloads), len(mr.Controllers), len(mr.Sensors), mr.Seeds, mr.WallSeconds)
	}

	if *robust {
		for _, name := range []string{"paper-grid", "city-grid"} {
			w, ok := scenario.WorkloadByName(name)
			if !ok {
				continue
			}
			rr, err := measureRobustness(w, seedList)
			if err != nil {
				fatal(err)
			}
			report.Robustness = append(report.Robustness, rr)
			rec := fmt.Sprintf("recovered %.0fs after clearance", rr.RecoverySec)
			if rr.RecoverySec < 0 {
				rec = "not recovered within horizon"
			}
			fmt.Printf("robustness %s: %d rows, onset %d peak %d queued, %s (%.3fs)\n",
				name, len(rr.Rows), rr.OnsetQueued, rr.PeakQueued, rec, rr.WallSeconds)
		}
	}

	if *stress {
		for _, name := range []string{"paper-grid", "city-grid"} {
			w, ok := scenario.WorkloadByName(name)
			if !ok {
				continue
			}
			sr, err := measureStress(w, seedList)
			if err != nil {
				fatal(err)
			}
			report.Stress = append(report.Stress, sr)
			rec := fmt.Sprintf("recovered %.0fs after clearance", sr.RecoverySec)
			if sr.RecoverySec < 0 {
				rec = "not recovered within horizon"
			}
			fmt.Printf("stress %s: %d rows (%d areas x %d demand levels), %dx%d recovery: %s (%.3fs)\n",
				name, len(sr.Rows), len(experiment.DefaultStressAreas()), len(experiment.DefaultStressDemandScales()),
				sr.RecoveryAreaK, sr.RecoveryAreaK, rec, sr.WallSeconds)
		}
	}

	if *heap {
		for _, name := range []string{"paper-grid", "city-grid", "downtown-core"} {
			w, ok := scenario.WorkloadByName(name)
			if !ok {
				continue
			}
			hr, err := measureEngineHeap(w)
			if err != nil {
				fatal(err)
			}
			report.EngineHeap = append(report.EngineHeap, hr)
			fmt.Printf("engine heap %s: %.0f KiB/engine (+%.0f KiB shared artifact) @ %.0fs horizon\n",
				name, float64(hr.EngineHeapBytes)/1024, float64(hr.SharedArtifact)/1024, hr.HorizonSec)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

// measureLoaded times the engine with Pattern I demand flowing. The
// phase split comes from a second, instrumented engine over the same
// seed and steps.
func measureLoaded(setup scenario.Setup, steps int) (StepReport, error) {
	engine, _, _, err := experiment.Prepare(experiment.Spec{
		Setup: setup, Pattern: scenario.PatternI, Factory: setup.UtilBP(),
	})
	if err != nil {
		return StepReport{}, err
	}
	rep := timeSteps(engine, steps)
	timed, _, _, err := experiment.Prepare(experiment.Spec{
		Setup: setup, Pattern: scenario.PatternI, Factory: setup.UtilBP(),
	})
	if err != nil {
		return StepReport{}, err
	}
	rep.Phases = phaseSplit(timed, steps)
	return rep, nil
}

// steadyEngine builds an engine for the workload's grid, sensor and
// serve mode, warms it up under the workload's demand and cuts
// arrivals, leaving the quiesced configuration whose contract is zero
// allocations per step.
func steadyEngine(setup scenario.Setup, pattern scenario.Pattern, sensor sensing.Sensor, serve sim.ServeMode, warmup int) (*sim.Engine, error) {
	built, err := setup.Build(pattern)
	if err != nil {
		return nil, err
	}
	if sensor != nil {
		sensor.Reseed(setup.Seed)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      &sim.CutoffDemand{Inner: built.Demand, CutoffStep: warmup},
		Router:      built.Router,
		Routes:      built.Routes,
		Sensor:      sensor,
		Control:     setup.Control,
		Serve:       serve,
	})
	if err != nil {
		return nil, err
	}
	engine.Run(warmup + 20)
	return engine, nil
}

// measureSteady times the quiesced loop on the paper grid. The window
// must stay short (the -steady-steps default): once the queued traffic
// drains to the terminals the loop steps an empty network, and a long
// window would average that in and overstate throughput.
func measureSteady(setup scenario.Setup, warmup, steps int) (StepReport, error) {
	engine, err := steadyEngine(setup, scenario.PatternI, nil, sim.ServeBatched, warmup)
	if err != nil {
		return StepReport{}, err
	}
	rep := timeSteps(engine, steps)
	timed, err := steadyEngine(setup, scenario.PatternI, nil, sim.ServeBatched, warmup)
	if err != nil {
		return StepReport{}, err
	}
	rep.Phases = phaseSplit(timed, steps)
	return rep, nil
}

// sensingCases enumerates the sensing-overhead measurements: the paper
// grid under every sensor family (nil = the sensor-free fast path,
// "perfect-copy" = the explicit Perfect sensor exercising the separate
// truth array), plus the 16×16 city grid sensor-free — the incremental
// observation headline the PR 3 full-walk baseline is compared against
// in PERF.md.
func sensingCases() []struct {
	workload string
	label    string
	spec     sensing.Spec
	explicit bool // install the explicit sensor even for perfect specs
} {
	return []struct {
		workload string
		label    string
		spec     sensing.Spec
		explicit bool
	}{
		{"paper-grid", "perfect", sensing.Spec{}, false},
		{"paper-grid", "perfect-copy", sensing.Spec{}, true},
		{"paper-grid", "loop", sensing.Loop(), false},
		{"paper-grid", "cv:0.3", sensing.CV(0.3), false},
		{"city-grid", "perfect", sensing.Spec{}, false},
	}
}

// measureControlMode runs the steady-state measurement for one
// workload × controller dispatch mode, under the same seed and warmup
// as the sibling stepping measurements.
func measureControlMode(workload string, mode signal.ControlMode, seed uint64, warmup, steps int) (ControlStepReport, error) {
	w, ok := scenario.WorkloadByName(workload)
	if !ok {
		return ControlStepReport{}, fmt.Errorf("workload %q not registered", workload)
	}
	setup := w.Setup
	setup.Seed = seed
	setup.Control = mode
	engine, err := steadyEngine(setup, w.Pattern, nil, sim.ServeBatched, warmup)
	if err != nil {
		return ControlStepReport{}, err
	}
	rep := timeSteps(engine, steps)
	timed, err := steadyEngine(setup, w.Pattern, nil, sim.ServeBatched, warmup)
	if err != nil {
		return ControlStepReport{}, err
	}
	rep.Phases = phaseSplit(timed, steps)
	return ControlStepReport{Workload: workload, Mode: mode.String(), StepReport: rep}, nil
}

// measureServeMode runs the steady-state measurement for one workload ×
// serve dispatch mode, under the same seed and warmup as the sibling
// stepping measurements. The batched and reference modes step
// bit-identical states, so the delta is the serve plane's dispatch cost
// alone — on draining grids mostly the idle/sub-threshold skips.
func measureServeMode(workload string, mode sim.ServeMode, seed uint64, warmup, steps int) (ServeStepReport, error) {
	w, ok := scenario.WorkloadByName(workload)
	if !ok {
		return ServeStepReport{}, fmt.Errorf("workload %q not registered", workload)
	}
	setup := w.Setup
	setup.Seed = seed
	engine, err := steadyEngine(setup, w.Pattern, nil, mode, warmup)
	if err != nil {
		return ServeStepReport{}, err
	}
	rep := timeSteps(engine, steps)
	timed, err := steadyEngine(setup, w.Pattern, nil, mode, warmup)
	if err != nil {
		return ServeStepReport{}, err
	}
	rep.Phases = phaseSplit(timed, steps)
	return ServeStepReport{Workload: workload, Mode: mode.String(), StepReport: rep}, nil
}

// measureInstrumented times steady-state stepping with a telemetry
// recorder installed against an uninstrumented baseline of an identical
// engine, under the same seed and warmup as the sibling measurements.
// Telemetry is observation-only, so both engines step the same states —
// the delta is purely the recording flush.
func measureInstrumented(workload string, spec telemetry.Spec, seed uint64, warmup, steps int) (InstrumentedStepReport, error) {
	w, ok := scenario.WorkloadByName(workload)
	if !ok {
		return InstrumentedStepReport{}, fmt.Errorf("workload %q not registered", workload)
	}
	setup := w.Setup
	setup.Seed = seed
	base, err := steadyEngine(setup, w.Pattern, nil, sim.ServeBatched, warmup)
	if err != nil {
		return InstrumentedStepReport{}, err
	}
	baseRep := timeSteps(base, steps)
	inst, err := steadyEngine(setup, w.Pattern, nil, sim.ServeBatched, warmup)
	if err != nil {
		return InstrumentedStepReport{}, err
	}
	rec, err := telemetry.NewRecorder(spec, steps)
	if err != nil {
		return InstrumentedStepReport{}, err
	}
	if err := inst.InstallTelemetry(rec); err != nil {
		return InstrumentedStepReport{}, err
	}
	rep := timeSteps(inst, steps)
	return InstrumentedStepReport{
		Workload:          workload,
		Telemetry:         spec.String(),
		StepReport:        rep,
		BaselineNsPerStep: baseRep.NsPerStep,
		OverheadPct:       100 * (rep.NsPerStep - baseRep.NsPerStep) / baseRep.NsPerStep,
	}, nil
}

// measureSensing runs the steady-state measurement for one workload ×
// sensor combination, under the same seed and warmup as the sibling
// stepping measurements so the report's entries stay comparable.
func measureSensing(workload, label string, spec sensing.Spec, explicit bool, seed uint64, warmup, steps int) (SensorStepReport, error) {
	w, ok := scenario.WorkloadByName(workload)
	if !ok {
		return SensorStepReport{}, fmt.Errorf("workload %q not registered", workload)
	}
	setup := w.Setup
	setup.Seed = seed
	setup.Sensor = sensing.Spec{} // the sensor is installed explicitly below
	mkSensor := func() (sensing.Sensor, error) {
		if spec.Perfect() && !explicit {
			return nil, nil
		}
		return spec.New()
	}
	sensor, err := mkSensor()
	if err != nil {
		return SensorStepReport{}, err
	}
	engine, err := steadyEngine(setup, w.Pattern, sensor, sim.ServeBatched, warmup)
	if err != nil {
		return SensorStepReport{}, err
	}
	rep := timeSteps(engine, steps)
	sensor, err = mkSensor()
	if err != nil {
		return SensorStepReport{}, err
	}
	timed, err := steadyEngine(setup, w.Pattern, sensor, sim.ServeBatched, warmup)
	if err != nil {
		return SensorStepReport{}, err
	}
	rep.Phases = phaseSplit(timed, steps)
	return SensorStepReport{Workload: workload, Sensor: label, StepReport: rep}, nil
}

// measureMatrix runs the controller-zoo matrix (experiment.MatrixSweep):
// one representative spec per controller family × {perfect, cv:0.3}
// observation on the paper grid plus the city-scale and disrupted
// city workloads, the EXPERIMENTS.md §matrix rows of the report.
func measureMatrix(seeds []uint64) (*MatrixReport, error) {
	workloads := []string{"paper-grid", "city-grid", "city-grid-incident"}
	controllers := experiment.DefaultMatrixControllers()
	sensors := []sensing.Spec{{}, sensing.CV(0.3)}
	// The paper-grid's 4 h mixed horizon is sweep-scale overkill here;
	// 900 s matches the workload sweeps. City workloads keep their own
	// registered sweep horizons.
	const durationSec = 900
	start := time.Now()
	rows, err := experiment.MatrixSweep(workloads, controllers, sensors, seeds, durationSec)
	if err != nil {
		return nil, err
	}
	rep := &MatrixReport{
		Workloads:   workloads,
		Seeds:       len(seeds),
		DurationSec: durationSec,
		WallSeconds: time.Since(start).Seconds(),
	}
	for _, c := range controllers {
		rep.Controllers = append(rep.Controllers, c.String())
	}
	for _, s := range sensors {
		rep.Sensors = append(rep.Sensors, s.String())
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, MatrixRow{
			Workload:       r.Workload,
			Controller:     r.Controller.String(),
			Sensor:         r.Sensor.String(),
			MeanWaitSec:    r.Mean,
			StdWaitSec:     r.Std,
			CompletionRate: r.CompletionRate,
		})
	}
	return rep, nil
}

// measureRobustness runs the disruption-robustness experiment for one
// workload: the pooled RobustnessSweep over the default severity axis
// (throughput-vs-capacity-loss per controller family), then one
// worst-severity incident run under UTIL-BP measuring how long the
// network queues take to drain back to their onset level after the
// incident clears.
func measureRobustness(w scenario.Workload, seeds []uint64) (RobustnessReport, error) {
	// The robustness sweep ignores the workload's shortened sweep
	// horizon: the incident spans the middle half of the run, and on
	// the 16×16 grid a 300 s horizon is all fill transient — the
	// central approach never carries enough traffic for a clamp to
	// bind. 900 s puts the incident onto a loaded network.
	horizon := math.Max(w.SweepHorizon(900), 900)
	capFracs := experiment.DefaultCapFracs()
	start := time.Now()
	rows, err := experiment.RobustnessSweep(w.Setup, w.Pattern, capFracs, seeds, horizon)
	if err != nil {
		return RobustnessReport{}, err
	}
	rep := RobustnessReport{
		Workload:   w.Name,
		HorizonSec: horizon,
		Seeds:      len(seeds),
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, RobustnessRow{
			Family:         string(r.Family),
			CapFrac:        r.CapFrac,
			MeanWaitSec:    r.Mean,
			MeanThroughput: r.MeanThroughput,
			DegradationPct: r.DegradationPct,
		})
	}
	worst := capFracs[0]
	for _, f := range capFracs {
		if f < worst {
			worst = f
		}
	}
	// Recovery is probed at a stable operating point — uniform Pattern
	// II demand at 0.6× the workload's scale, with the onset at
	// mid-horizon so the fill transient (which runs ~1000 s on the
	// 16×16 grid) has settled — because "drained back to the onset
	// level" is only meaningful when the onset level is an equilibrium.
	// The incident spans an eighth of the horizon; the drain gets the
	// remaining 3/8.
	recHorizon := math.Max(2*horizon, 2400)
	base := w.Setup
	if base.DemandScale == 0 {
		base.DemandScale = 1
	}
	base.DemandScale *= 0.6
	setup, err := base.WithCentralIncident(recHorizon/2, recHorizon/8, worst)
	if err != nil {
		return RobustnessReport{}, err
	}
	setup.Seed = seeds[0]
	rec, err := experiment.MeasureRecovery(experiment.Spec{
		Setup:       setup,
		Pattern:     scenario.PatternII,
		Factory:     setup.UtilBP(),
		DurationSec: recHorizon,
	})
	if err != nil {
		return RobustnessReport{}, err
	}
	rep.RecoveryDemandScale = base.DemandScale
	rep.RecoveryHorizonSec = recHorizon
	rep.OnsetQueued = rec.OnsetQueued
	rep.PeakQueued = rec.PeakQueued
	rep.RecoverySec = rec.RecoverySec
	rep.WallSeconds = time.Since(start).Seconds()
	return rep, nil
}

// measureStress runs the area-incident stress study on a workload:
// experiment.StressSweep across the default area and demand axes, plus
// the recovery probe of the largest area incident under UTIL-BP at the
// same stable operating point measureRobustness uses.
func measureStress(w scenario.Workload, seeds []uint64) (StressReport, error) {
	// Like the robustness sweep, the stress study ignores shortened
	// sweep horizons: the area incident spans the middle half of the
	// run and needs a loaded network for the clamps to bind.
	horizon := math.Max(w.SweepHorizon(900), 900)
	areas := experiment.DefaultStressAreas()
	scales := experiment.DefaultStressDemandScales()
	start := time.Now()
	rows, err := experiment.StressSweep(w.Setup, w.Pattern, areas, scales, seeds, horizon)
	if err != nil {
		return StressReport{}, err
	}
	rep := StressReport{
		Workload:   w.Name,
		HorizonSec: horizon,
		Seeds:      len(seeds),
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, StressRow{
			Family:         string(r.Family),
			AreaK:          r.AreaK,
			DemandScale:    r.DemandScale,
			MeanWaitSec:    r.Mean,
			StdWaitSec:     r.Std,
			MeanThroughput: r.MeanThroughput,
			DegradationPct: r.DegradationPct,
		})
	}
	worst := 1
	for _, k := range areas {
		if k > worst {
			worst = k
		}
	}
	// Recovery probe conventions shared with measureRobustness: 0.6×
	// uniform demand so the onset level is an equilibrium, onset at
	// mid-horizon, the incident spanning an eighth of the horizon.
	recHorizon := math.Max(2*horizon, 2400)
	base := w.Setup
	if base.DemandScale == 0 {
		base.DemandScale = 1
	}
	base.DemandScale *= 0.6
	setup, err := base.WithCornerAreaIncident(worst, recHorizon/2, recHorizon/8, experiment.DefaultStressCapFrac)
	if err != nil {
		return StressReport{}, err
	}
	setup.Seed = seeds[0]
	rec, err := experiment.MeasureRecovery(experiment.Spec{
		Setup:       setup,
		Pattern:     scenario.PatternII,
		Factory:     setup.UtilBP(),
		DurationSec: recHorizon,
	})
	if err != nil {
		return StressReport{}, err
	}
	rep.RecoveryAreaK = worst
	rep.RecoveryDemandScale = base.DemandScale
	rep.RecoveryHorizonSec = recHorizon
	rep.OnsetQueued = rec.OnsetQueued
	rep.PeakQueued = rec.PeakQueued
	rep.RecoverySec = rec.RecoverySec
	rep.WallSeconds = time.Since(start).Seconds()
	return rep, nil
}

// heapNow returns the live heap after a GC cycle.
func heapNow() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// measureEngineHeap builds several engines on one shared scenario
// artifact — the sweep scheduler's configuration — and reports the
// retained heap per engine (arena pre-sized for the workload's sweep
// horizon, lanes and travel heaps pre-sized from link capacity) plus the
// one-off bytes of the shared artifact.
func measureEngineHeap(w scenario.Workload) (HeapReport, error) {
	const k = 4
	before := heapNow()
	art, err := w.Setup.BuildArtifact(w.Pattern)
	if err != nil {
		return HeapReport{}, err
	}
	artBytes := heapNow() - before
	horizon := w.SweepHorizon(art.Duration)
	factory := w.Setup.UtilBP()
	engines := make([]*sim.Engine, 0, k)
	before = heapNow()
	for i := 0; i < k; i++ {
		inst := art.Instantiate()
		e, err := sim.New(sim.Config{
			Net:              inst.Grid.Network,
			Controllers:      factory,
			Demand:           inst.Demand,
			Router:           inst.Router,
			Routes:           inst.Routes,
			ExpectedVehicles: art.ExpectedVehicles(horizon),
		})
		if err != nil {
			return HeapReport{}, err
		}
		engines = append(engines, e)
	}
	after := heapNow()
	runtime.KeepAlive(engines)
	runtime.KeepAlive(art)
	return HeapReport{
		Workload:        w.Name,
		HorizonSec:      horizon,
		EngineHeapBytes: (after - before) / k,
		SharedArtifact:  artBytes,
	}, nil
}

// phaseSplit advances an instrumented engine and attributes per-step
// time to the mini-slot substeps.
func phaseSplit(engine *sim.Engine, steps int) *PhaseSplit {
	var pt sim.PhaseTimings
	engine.RunTimed(steps, &pt)
	per := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(steps) }
	return &PhaseSplit{
		EventsNs:   per(pt.Events),
		SenseNs:    per(pt.Sense),
		ControlNs:  per(pt.Control),
		ServeNs:    per(pt.Serve),
		TravelNs:   per(pt.Travel),
		ArrivalsNs: per(pt.Arrivals),
	}
}

// timeSteps advances the engine and reports wall time and allocation
// counts per mini-slot.
func timeSteps(engine *sim.Engine, steps int) StepReport {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	engine.Run(steps)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return StepReport{
		Steps:         steps,
		WallSeconds:   wall,
		NsPerStep:     wall * 1e9 / float64(steps),
		StepsPerSec:   float64(steps) / wall,
		AllocsPerStep: float64(after.Mallocs-before.Mallocs) / float64(steps),
		BytesPerStep:  float64(after.TotalAlloc-before.TotalAlloc) / float64(steps),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfbench:", err)
	os.Exit(1)
}
