// Command papereval regenerates the evaluation artifacts of the paper:
// Table III, the Figure 2 period sweep, and the Figure 3-5 traces. Runs
// execute in parallel across CPU cores.
//
// Examples:
//
//	papereval -table3
//	papereval -fig2 -out fig2.csv
//	papereval -all -duration 900 -step 10     # quick pass
//	papereval -drain -out artifacts           # city-grid-incident drain curve
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"utilbp/internal/experiment"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/trace"
)

func main() {
	var (
		table3   = flag.Bool("table3", false, "reproduce Table III")
		ablation = flag.Bool("ablations", false, "run the UTIL-BP ablation table (DESIGN.md A1-A6)")
		seeds    = flag.Int("seeds", 0, "aggregate Table III over this many seeds (robustness)")
		fig2     = flag.Bool("fig2", false, "reproduce Figure 2 (period sweep, mixed pattern)")
		figs     = flag.Bool("figs", false, "reproduce Figures 3-5 (phase timelines + queue series)")
		matrix   = flag.Bool("matrix", false, "run the controller × sensor matrix sweep (DESIGN.md §13)")
		stress   = flag.Bool("stress", false, "run the area-incident stress study (DESIGN.md §14)")
		drain    = flag.Bool("drain", false, "render the incident drain curve: telemetry net series + recovery metric (DESIGN.md §15)")
		drainW   = flag.String("drain-workload", "city-grid-incident", "workload for -drain (its setup must carry an incident event)")
		all      = flag.Bool("all", false, "reproduce everything")
		duration = flag.Float64("duration", 0, "override horizon in seconds (0 = paper defaults)")
		seed     = flag.Uint64("seed", 1, "random seed")
		minP     = flag.Int("min-period", 10, "sweep start (s)")
		maxP     = flag.Int("max-period", 80, "sweep end (s)")
		stepP    = flag.Int("step", 2, "sweep step (s)")
		mu       = flag.Float64("mu", 0, "service rate per movement (0 = scenario default)")
		outDir   = flag.String("out", "", "directory for CSV outputs (empty = no files)")
	)
	flag.Parse()
	if !*table3 && !*fig2 && !*figs && !*ablation && !*matrix && !*stress && !*drain && *seeds == 0 && !*all {
		flag.Usage()
		os.Exit(2)
	}
	setup := scenario.Default()
	setup.Seed = *seed
	if *mu > 0 {
		setup.Grid.Mu = *mu
	}
	var periods []int
	for p := *minP; p <= *maxP; p += *stepP {
		periods = append(periods, p)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	if *table3 || *all {
		rows, err := experiment.TableIII(setup, nil, periods, *duration)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Table III ==")
		fmt.Print(experiment.FormatTableIII(rows))
		fmt.Println()
	}

	if *seeds > 0 {
		list := make([]uint64, *seeds)
		for i := range list {
			list[i] = *seed + uint64(i)
		}
		rows, err := experiment.TableIIIMultiSeed(setup, nil, periods, *duration, list)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Table III robustness across seeds ==")
		fmt.Print(experiment.FormatSeedStats(rows, list))
		fmt.Println()
	}

	if *ablation || *all {
		rows, err := experiment.Ablations(setup, scenario.PatternIV, *duration)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== UTIL-BP ablations (Pattern IV) ==")
		fmt.Print(experiment.FormatAblations(rows))
		fmt.Println()
	}

	if *fig2 || *all {
		data, err := experiment.Fig2(setup, periods, *duration)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Figure 2 (mixed pattern) ==")
		fmt.Print(experiment.FormatFig2(data))
		fmt.Println()
		if *outDir != "" {
			xs := make([]float64, len(data.Points))
			ys := make([]float64, len(data.Points))
			utils := make([]float64, len(data.Points))
			for i, p := range data.Points {
				xs[i] = float64(p.PeriodSec)
				ys[i] = p.MeanWait
				utils[i] = data.UTILWait
			}
			if err := writeCSV(filepath.Join(*outDir, "fig2.csv"),
				[]string{"period_s", "capbp_wait_s", "utilbp_wait_s"}, xs, ys, utils); err != nil {
				fatal(err)
			}
		}
	}

	if *figs || *all {
		figDuration := 2000.0
		if *duration > 0 {
			figDuration = *duration
		}
		// Figure 3: CAP-BP at its Pattern-I-optimal period.
		sweep, err := experiment.SweepCAPPeriods(setup, scenario.PatternI, periods, *duration)
		if err != nil {
			fatal(err)
		}
		best, err := experiment.BestPeriod(sweep)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== Figures 3-5 (Pattern I, top-right junction, CAP-BP period %d s) ==\n", best.PeriodSec)
		row, col := 0, setup.Grid.Cols-1
		if setup.Grid.Cols == 0 {
			col = 2
		}
		for _, c := range []struct {
			name string
			fig  string
			fact func() (tl experiment.TimelineData, err error)
		}{
			{"CAP-BP", "fig3", func() (experiment.TimelineData, error) {
				return experiment.PhaseTimeline(setup, scenario.PatternI, setup.CapBP(best.PeriodSec), figDuration, row, col)
			}},
			{"UTIL-BP", "fig4", func() (experiment.TimelineData, error) {
				return experiment.PhaseTimeline(setup, scenario.PatternI, setup.UtilBP(), figDuration, row, col)
			}},
		} {
			tl, err := c.fact()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: %d transitions, %.1f%% amber, mean green run %.1f s, max %d s\n",
				c.name, tl.Stats.Transitions,
				100*float64(tl.Stats.AmberSlots)/float64(len(tl.Phases)),
				tl.Stats.MeanGreenRun*tl.DT, tl.Stats.MaxGreenRun)
			if *outDir != "" {
				f, err := os.Create(filepath.Join(*outDir, c.fig+".csv"))
				if err != nil {
					fatal(err)
				}
				if err := trace.WritePhaseTimeline(f, tl.DT, tl.Phases); err != nil {
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
		}
		for _, c := range []struct {
			name string
			fig  string
			run  func() (experiment.QueueSeriesData, error)
		}{
			{"CAP-BP", "fig5_cap", func() (experiment.QueueSeriesData, error) {
				return experiment.EastQueueSeries(setup, scenario.PatternI, setup.CapBP(best.PeriodSec), figDuration, row, col, 5)
			}},
			{"UTIL-BP", "fig5_util", func() (experiment.QueueSeriesData, error) {
				return experiment.EastQueueSeries(setup, scenario.PatternI, setup.UtilBP(), figDuration, row, col, 5)
			}},
		} {
			qs, err := c.run()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s east-approach queue: mean %.2f, max %d\n", c.name, qs.Mean, qs.Max)
			if *outDir != "" {
				if err := writeCSV(filepath.Join(*outDir, c.fig+".csv"),
					[]string{"time_s", "queue"}, qs.Times, trace.IntsToFloats(qs.Values)); err != nil {
					fatal(err)
				}
			}
		}
	}

	// The matrix and stress studies are repo extensions beyond the
	// paper's artifacts (DESIGN.md §13-14): they aggregate over a fixed
	// pair of seeds derived from -seed, and default to a 900 s horizon
	// because neither has a paper-mandated duration.
	if *matrix || *stress {
		seedPair := []uint64{*seed, *seed + 1}
		studyDuration := *duration
		if studyDuration <= 0 {
			studyDuration = 900
		}
		if *matrix {
			rows, err := experiment.MatrixSweep([]string{"paper-grid"},
				experiment.DefaultMatrixControllers(),
				[]sensing.Spec{{}, sensing.CV(0.3)},
				seedPair, studyDuration)
			if err != nil {
				fatal(err)
			}
			fmt.Println("== Controller × sensor matrix (paper grid) ==")
			fmt.Print(experiment.FormatMatrixStats(rows, seedPair))
			fmt.Println()
		}
		if *stress {
			rows, err := experiment.StressSweep(setup, scenario.PatternII, nil, nil, seedPair, studyDuration)
			if err != nil {
				fatal(err)
			}
			fmt.Println("== Area-incident stress study (paper grid, Pattern II) ==")
			fmt.Print(experiment.FormatStressStats(rows, seedPair))
			fmt.Println()
		}
	}

	// The drain curve is a repo extension too (DESIGN.md §15): the full
	// queued-total trajectory of an incident run, straight off the
	// telemetry net series MeasureRecovery computes its scalars from.
	if *drain {
		w, ok := scenario.WorkloadByName(*drainW)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (see scenario.Workloads)", *drainW))
		}
		wSetup := w.Setup
		wSetup.Seed = *seed
		res, err := experiment.MeasureRecovery(experiment.Spec{
			Setup:       wSetup,
			Pattern:     w.Pattern,
			Factory:     wSetup.UtilBP(),
			DurationSec: w.SweepHorizon(*duration),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== Incident drain curve (%s, UTIL-BP) ==\n", w.Name)
		recovery := "never recovered within the horizon"
		if res.Recovered() {
			recovery = fmt.Sprintf("recovered %.0f s after clearance", res.RecoverySec)
		}
		fmt.Printf("onset queued %d, peak %d, %s; %d samples\n",
			res.OnsetQueued, res.PeakQueued, recovery, len(res.DrainQueued))
		if *outDir != "" {
			if err := writeCSV(filepath.Join(*outDir, "drain.csv"),
				[]string{"time_s", "queued"}, res.DrainTimes, res.DrainQueued); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", filepath.Join(*outDir, "drain.csv"))
		}
		fmt.Println()
	}
}

func writeCSV(path string, headers []string, cols ...[]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteSeries(f, headers, cols...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "papereval:", err)
	os.Exit(1)
}
