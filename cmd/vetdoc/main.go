// Command vetdoc enforces the repository's doc-comment conventions, the
// godoc analogue of go vet. Two rules:
//
//  1. every package under internal/ carries a package-level doc comment;
//  2. in the strict packages (internal/sim, internal/experiment,
//     internal/scenario, internal/sensing, internal/signal,
//     internal/rng — the public surface of the simulator, the sensing
//     layer and its contracts, and the harness), every exported
//     top-level symbol, including methods on exported types, carries a
//     doc comment.
//
// It exits non-zero listing every violation; CI runs it on each push
// (.github/workflows/ci.yml). Usage:
//
//	go run ./cmd/vetdoc
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// strictPkgs are the directories whose exported symbols must all be
// documented, not just the package clause.
var strictPkgs = map[string]bool{
	"internal/sim":        true,
	"internal/experiment": true,
	"internal/scenario":   true,
	"internal/sensing":    true,
	"internal/signal":     true,
	"internal/rng":        true,
	"internal/event":      true,
	"internal/telemetry":  true,
	"internal/trace":      true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs, err := packageDirs(filepath.Join(root, "internal"))
	if err != nil {
		fatal(err)
	}
	var problems []string
	for _, dir := range dirs {
		p, err := checkDir(root, dir)
		if err != nil {
			fatal(err)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "vetdoc: %d missing doc comment(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("vetdoc: %d packages clean\n", len(dirs))
}

// packageDirs returns every directory below root containing .go files.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir parses one package directory (test files excluded) and
// returns its violations.
func checkDir(root, dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		rel = dir
	}
	var problems []string
	for _, pkg := range pkgs {
		if !hasPackageDoc(pkg) {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", rel, pkg.Name))
		}
		if !strictPkgs[filepath.ToSlash(rel)] {
			continue
		}
		for _, file := range pkg.Files {
			problems = append(problems, checkFile(fset, file)...)
		}
	}
	return problems, nil
}

// hasPackageDoc reports whether any file of the package documents the
// package clause.
func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// checkFile returns a violation per undocumented exported declaration in
// the file.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s has no doc comment", p.Filename, p.Line, what))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if recv := receiverType(d); recv != "" {
				if !ast.IsExported(recv) {
					continue // method on an unexported type
				}
				report(d.Pos(), fmt.Sprintf("method %s.%s", recv, d.Name.Name))
			} else {
				report(d.Pos(), fmt.Sprintf("func %s", d.Name.Name))
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), fmt.Sprintf("type %s", s.Name.Name))
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						// A doc comment on the grouped decl covers its
						// specs; a trailing line comment counts too.
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(name.Pos(), fmt.Sprintf("%s %s", declKind(d.Tok), name.Name))
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverType returns the method receiver's base type name, or "" for
// plain functions.
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

// declKind names a GenDecl token for violation messages.
func declKind(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	}
	return tok.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vetdoc:", err)
	os.Exit(1)
}
