// Command netgen generates grid road networks as JSON, for inspection or
// as input to custom tooling.
//
// Example:
//
//	netgen -rows 3 -cols 3 -capacity 120 -out grid3x3.json
//	netgen -rows 2 -cols 5 | jq '.roads | length'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"utilbp/internal/network"
)

func main() {
	var (
		rows     = flag.Int("rows", 3, "junction rows")
		cols     = flag.Int("cols", 3, "junction columns")
		spacing  = flag.Float64("spacing", 300, "distance between junctions in meters")
		boundary = flag.Float64("boundary", 300, "entry/exit road length in meters")
		speed    = flag.Float64("speed", 13.9, "free-flow speed in m/s")
		capacity = flag.Int("capacity", 120, "road capacity W in vehicles")
		mu       = flag.Float64("mu", 0.5, "service rate per movement in veh/s")
		out      = flag.String("out", "", "output path (empty = stdout)")
		stats    = flag.Bool("stats", false, "print network statistics to stderr")
	)
	flag.Parse()

	g, err := network.Grid(network.GridSpec{
		Rows:           *rows,
		Cols:           *cols,
		Spacing:        *spacing,
		BoundaryLength: *boundary,
		Speed:          *speed,
		Capacity:       *capacity,
		Mu:             *mu,
	})
	if err != nil {
		fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := g.WriteJSON(w); err != nil {
		fatal(err)
	}
	if *stats {
		links := 0
		for i := range g.Junctions {
			links += len(g.Junctions[i].Links)
		}
		fmt.Fprintf(os.Stderr, "netgen: %d nodes, %d roads, %d junctions, %d links, %d entries\n",
			len(g.Nodes), len(g.Roads), len(g.Junctions), links, len(g.EntryRoads()))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netgen:", err)
	os.Exit(1)
}
