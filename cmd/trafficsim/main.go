// Command trafficsim runs a single traffic-signal simulation on the
// paper's 3×3 evaluation network — or any registered workload — and
// prints a summary.
//
// Examples:
//
//	trafficsim -pattern II -controller util
//	trafficsim -pattern mixed -controller cap -period 20
//	trafficsim -pattern I -controller orig -period 16 -duration 1800 -seed 7
//	trafficsim -pattern II -controller util -sensor cv:0.3
//	trafficsim -workload arterial-corridor -controller util
//	trafficsim -workload estimated-grid -sensor loop
//	trafficsim -workload city-grid -control per-junction
//	trafficsim -events "incident:link=J00->J01,t0=600,dur=300,cap=0.5;surge:t0=600,dur=900,scale=1.5"
//	trafficsim -snapshot-at 1800 -snapshot-out run.snap
//	trafficsim -restore-from run.snap
//	trafficsim -telemetry full -telemetry-out series.csv
//	trafficsim -workload city-grid-incident -telemetry net -telemetry-out drain.jsonl
//	trafficsim -trace-out substeps.json
//	trafficsim -list-workloads
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"utilbp/internal/cli"
	"utilbp/internal/config"
	"utilbp/internal/event"
	"utilbp/internal/experiment"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
	"utilbp/internal/stats"
	"utilbp/internal/telemetry"
	"utilbp/internal/trace"
)

func main() {
	var (
		patternFlag = flag.String("pattern", "II", "traffic pattern: I, II, III, IV, mixed, rush")
		controller  = flag.String("controller", "", "controller spec: util | cap[:period] | capnorm[:period] | orig[:period] | fixed[:green] | maxpressure[:minGreen] | gapout[:min,max,gap] | bp-est[:alpha] (default: the workload's controller, else util)")
		period      = flag.Int("period", 16, "control phase period in seconds (fixed-slot controllers)")
		duration    = flag.Float64("duration", 0, "simulation horizon in seconds (0 = pattern default)")
		seed        = flag.Uint64("seed", 1, "random seed")
		rows        = flag.Int("rows", 3, "grid rows")
		cols        = flag.Int("cols", 3, "grid columns")
		capacity    = flag.Int("capacity", 120, "road capacity W")
		amber       = flag.Int("amber", 4, "transition phase duration in seconds")
		mu          = flag.Float64("mu", 0, "service rate per movement in veh/s (0 = scenario default)")
		lost        = flag.Int("startup-lost", 0, "startup lost time in seconds at green onset (0 = default, -1 = off)")
		mixedLanes  = flag.Bool("mixed-lanes", false, "enable the head-of-line blocking extension")
		configPath  = flag.String("config", "", "JSON experiment config (overrides the other flags)")
		vehOut      = flag.String("vehicles-out", "", "write per-vehicle lifecycle CSV to this path")
		workload    = flag.String("workload", "", "registered workload providing pattern and grid defaults; explicit -rows/-cols/-capacity still apply (see -list-workloads)")
		listWk      = flag.Bool("list-workloads", false, "list the registered workloads and exit")
		sensorFlag  = flag.String("sensor", "", "observation sensor: perfect | loop | cv:<rate> (default: the workload's sensor, else perfect)")
		eventsFlag  = flag.String("events", "", "disruption schedule, ';'-separated event specs (see internal/event); REPLACES the workload's schedule — pass '' to run a disrupted workload clean")
		controlFlag = flag.String("control", "", "controller dispatch mode: auto | per-junction | batched (default auto: batched when the controller supports it)")
		serveFlag   = flag.String("serve", "", "serve dispatch mode: auto | batched | reference (default batched: the skip-capable serve plane; reference forces the per-junction loop — bit-identical, for pinning)")
		snapAt      = flag.Float64("snapshot-at", 0, "capture an engine snapshot after this many simulated seconds (requires -snapshot-out)")
		snapOut     = flag.String("snapshot-out", "", "write the -snapshot-at snapshot to this path and continue the run")
		restoreFrom = flag.String("restore-from", "", "resume the run from a snapshot file written by -snapshot-out; the flags must rebuild the captured configuration")
		telemFlag   = flag.String("telemetry", "", "telemetry spec: off | net | net+junc:<ids> | full — record per-step metric series while the run executes (see -telemetry-out)")
		telemOut    = flag.String("telemetry-out", "", "write the recorded telemetry series to this path: CSV columns, or one JSON object per step for a .jsonl path (requires -telemetry)")
		traceOut    = flag.String("trace-out", "", "write the run's substep timeline to this path as Chrome trace-event JSON (load in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	if *listWk {
		for _, w := range scenario.Workloads() {
			events := event.Summarize(w.Setup.Events)
			if events == "" {
				events = "—"
			}
			fmt.Printf("%-18s %d×%d grid, pattern %-5v controller %-10s sensor %-8s events %-18s — %s\n",
				w.Name, w.Setup.Grid.Rows, w.Setup.Grid.Cols, w.Pattern, w.Controller, w.Setup.Sensor, events, w.Description)
		}
		return
	}

	if *configPath != "" {
		exp, err := config.LoadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		spec, err := exp.Spec()
		if err != nil {
			fatal(err)
		}
		res, err := experiment.Run(spec)
		if err != nil {
			fatal(err)
		}
		printResult(res)
		return
	}

	var (
		pattern scenario.Pattern
		setup   scenario.Setup
		err     error
	)
	// The workload's registered controller fills an empty -controller;
	// outside workloads the default stays the paper's UTIL-BP.
	ctlSpec := "util"
	if *workload != "" {
		w, ok := scenario.WorkloadByName(*workload)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (run -list-workloads)", *workload))
		}
		setup, pattern = w.Setup, w.Pattern
		ctlSpec = w.Controller.String()
		// Explicitly passed geometry flags still apply on top of the
		// workload's setup, like -seed/-amber/-mu below; a conflicting
		// explicit -pattern is rejected rather than silently ignored.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "pattern":
				fatal(fmt.Errorf("-pattern conflicts with -workload %s (the workload fixes the pattern to %v)", w.Name, w.Pattern))
			case "rows":
				setup.Grid.Rows = *rows
			case "cols":
				setup.Grid.Cols = *cols
			case "capacity":
				setup.Grid.Capacity = *capacity
			}
		})
	} else {
		pattern, err = cli.ParsePattern(*patternFlag)
		if err != nil {
			fatal(err)
		}
		setup = scenario.Default()
		setup.Grid.Rows = *rows
		setup.Grid.Cols = *cols
		setup.Grid.Capacity = *capacity
	}
	setup.Seed = *seed
	setup.AmberSec = *amber
	if *mu > 0 {
		setup.Grid.Mu = *mu
	}
	if *sensorFlag != "" {
		spec, err := sensing.ParseSpec(*sensorFlag)
		if err != nil {
			fatal(err)
		}
		setup.Sensor = spec
	}
	if *controlFlag != "" {
		mode, err := signal.ParseControlMode(*controlFlag)
		if err != nil {
			fatal(err)
		}
		setup.Control = mode
	}
	// -events replaces the setup's schedule rather than appending to it,
	// so an explicitly empty -events runs a disrupted workload clean.
	flag.Visit(func(f *flag.Flag) {
		if f.Name != "events" {
			return
		}
		specs, err := event.ParseSpecs(*eventsFlag)
		if err != nil {
			fatal(err)
		}
		setup.Events = specs
	})

	if *controller != "" {
		ctlSpec = *controller
	}
	factory, err := cli.PickFactory(setup, ctlSpec, *period)
	if err != nil {
		fatal(err)
	}
	serveMode, err := sim.ParseServeMode(*serveFlag)
	if err != nil {
		fatal(err)
	}
	spec := experiment.Spec{
		Setup:            setup,
		Pattern:          pattern,
		Factory:          factory,
		DurationSec:      *duration,
		MixedLanes:       *mixedLanes,
		StartupLostSteps: *lost,
		Serve:            serveMode,
	}
	if (*snapOut != "") != (*snapAt > 0) {
		fatal(fmt.Errorf("-snapshot-at and -snapshot-out must be used together"))
	}
	if *telemOut != "" && *telemFlag == "" {
		fatal(fmt.Errorf("-telemetry-out requires -telemetry"))
	}
	if *vehOut == "" && *snapOut == "" && *restoreFrom == "" && *telemFlag == "" && *traceOut == "" {
		res, err := experiment.Run(spec)
		if err != nil {
			fatal(err)
		}
		printResult(res)
		return
	}
	engine, _, horizon, err := experiment.Prepare(spec)
	if err != nil {
		fatal(err)
	}
	var rec *telemetry.Recorder
	if *telemFlag != "" {
		tspec, err := telemetry.ParseSpec(*telemFlag)
		if err != nil {
			fatal(err)
		}
		if tspec.Off() && *telemOut != "" {
			fatal(fmt.Errorf("-telemetry off records nothing to write to %s", *telemOut))
		}
		if !tspec.Off() {
			// Ring sized for the whole horizon: the export carries every
			// step of the run.
			rec, err = telemetry.NewRecorder(tspec, int(math.Ceil(horizon/engine.DeltaT()))+1)
			if err != nil {
				fatal(err)
			}
			if err := engine.InstallTelemetry(rec); err != nil {
				fatal(err)
			}
		}
	}
	if *restoreFrom != "" {
		data, err := os.ReadFile(*restoreFrom)
		if err != nil {
			fatal(err)
		}
		if err := engine.Restore(data); err != nil {
			fatal(err)
		}
		fmt.Printf("restored          <- %s (t=%.0fs)\n", *restoreFrom, engine.Time())
	}
	if *snapOut != "" {
		if *snapAt > engine.Time() {
			engine.RunFor(*snapAt - engine.Time())
		}
		if err := os.WriteFile(*snapOut, engine.Snapshot(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot          -> %s (t=%.0fs)\n", *snapOut, engine.Time())
	}
	var tl *sim.TraceLog
	if horizon > engine.Time() {
		steps := int((horizon - engine.Time()) / engine.DeltaT())
		if *traceOut != "" {
			tl = sim.NewTraceLog(steps)
			engine.RunTraced(steps, tl)
		} else {
			engine.Run(steps)
		}
	}
	engine.FinalizeWaits()
	if err := engine.CheckInvariants(); err != nil {
		fatal(err)
	}
	printResult(experiment.Result{
		Controller:  factory.Name(),
		Pattern:     pattern,
		DurationSec: horizon,
		Summary:     stats.SummarizeArena(engine.Arena()),
		Totals:      engine.Totals(),
	})
	if *telemOut != "" {
		if err := writeTelemetry(*telemOut, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("telemetry series  -> %s (%d steps, %d channels)\n", *telemOut, rec.Len(), len(rec.Headers()))
	}
	if *traceOut != "" && tl != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteTraceEvents(f, sim.SubstepNames[:], tl.Spans[:]); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("substep trace     -> %s (%d steps)\n", *traceOut, tl.Steps())
	}
	if *vehOut == "" {
		return
	}
	f, err := os.Create(*vehOut)
	if err != nil {
		fatal(err)
	}
	if err := trace.WriteVehicles(f, engine.Vehicles()); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("vehicle records   -> %s\n", *vehOut)
}

// writeTelemetry exports the recorded series: CSV columns by default,
// one JSON object per step for a .jsonl path.
func writeTelemetry(path string, rec *telemetry.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	headers, cols := rec.Headers(), rec.Columns()
	if strings.HasSuffix(path, ".jsonl") {
		enc := json.NewEncoder(f)
		row := make(map[string]float64, len(headers))
		for i := 0; i < rec.Len(); i++ {
			for c, h := range headers {
				row[h] = cols[c][i]
			}
			if err := enc.Encode(row); err != nil {
				f.Close()
				return err
			}
		}
	} else if err := trace.WriteSeries(f, headers, cols...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printResult(res experiment.Result) {
	s := res.Summary
	fmt.Printf("controller        %s\n", res.Controller)
	fmt.Printf("pattern           %v (%s)\n", res.Pattern, res.Pattern.Description())
	fmt.Printf("horizon           %.0f s\n", res.DurationSec)
	fmt.Printf("vehicles          %d spawned, %d exited (%.1f%% complete)\n",
		s.Spawned, s.Exited, s.CompletionRate*100)
	fmt.Printf("avg queuing time  %.2f s (exited-only %.2f s)\n", s.MeanWait, s.MeanWaitExited)
	fmt.Printf("queuing p50/p90/p99  %.1f / %.1f / %.1f s\n", s.P50, s.P90, s.P99)
	fmt.Printf("max queuing time  %.1f s\n", s.MaxWait)
	fmt.Printf("avg trip time     %.1f s\n", s.MeanTripTime)
	fmt.Printf("junction services %d\n", res.Totals.Served)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trafficsim:", err)
	os.Exit(1)
}
