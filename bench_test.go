// Benchmarks regenerating the paper's evaluation artifacts, one target
// per table/figure plus the ablation and sensitivity studies indexed in
// DESIGN.md. Horizons are shortened (benchmarks are smoke-scale);
// full-horizon numbers are regenerated with cmd/papereval, and the
// performance trajectory (steps/sec, allocs/step, sweep wall time) is
// tracked by cmd/perfbench in BENCH_*.json (see PERF.md).
//
// The interesting output is the custom metrics (cap_wait_s, util_wait_s,
// improvement_pct, ...) reported next to the usual ns/op.
package utilbp

import (
	"testing"

	"utilbp/internal/core"
	"utilbp/internal/event"
	"utilbp/internal/experiment"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
	"utilbp/internal/stability"
	"utilbp/internal/telemetry"
)

// benchSetup returns the paper configuration with a fixed seed.
func benchSetup() Setup {
	s := DefaultSetup()
	s.Seed = 1
	return s
}

const (
	benchHorizon = 1200.0 // seconds of simulated time per run
	figHorizon   = 2000.0 // the paper's Figures 3-5 horizon
)

// benchPeriods is a coarse CAP-BP sweep for benchmark-scale runs.
var benchPeriods = []int{14, 22, 30, 38}

// table3Bench runs one Table III row at benchmark scale and reports the
// paper's three columns as metrics.
func table3Bench(b *testing.B, pattern Pattern) {
	b.Helper()
	setup := benchSetup()
	// The mixed pattern switches demand hourly, so truncating it would
	// just replay Pattern I; run it at the paper's full 4 h horizon.
	horizon := benchHorizon
	if pattern == PatternMixed {
		horizon = 0
	}
	var row TableIIIRow
	for i := 0; i < b.N; i++ {
		rows, err := TableIII(setup, []Pattern{pattern}, benchPeriods, horizon)
		if err != nil {
			b.Fatal(err)
		}
		row = rows[0]
	}
	b.ReportMetric(float64(row.CAPPeriodSec), "cap_best_period_s")
	b.ReportMetric(row.CAPMeanWait, "cap_wait_s")
	b.ReportMetric(row.UTILMeanWait, "util_wait_s")
	b.ReportMetric(row.ImprovementPct, "improvement_pct")
}

func BenchmarkTable3PatternI(b *testing.B)   { table3Bench(b, PatternI) }
func BenchmarkTable3PatternII(b *testing.B)  { table3Bench(b, PatternII) }
func BenchmarkTable3PatternIII(b *testing.B) { table3Bench(b, PatternIII) }
func BenchmarkTable3PatternIV(b *testing.B)  { table3Bench(b, PatternIV) }
func BenchmarkTable3Mixed(b *testing.B)      { table3Bench(b, PatternMixed) }

// BenchmarkFig2PeriodSweep regenerates the Figure 2 curve (CAP-BP period
// sweep on the mixed pattern) and the flat UTIL-BP line.
func BenchmarkFig2PeriodSweep(b *testing.B) {
	setup := benchSetup()
	var data Fig2Data
	for i := 0; i < b.N; i++ {
		var err error
		data, err = Fig2(setup, benchPeriods, 0) // full 4 h mixed horizon
		if err != nil {
			b.Fatal(err)
		}
	}
	best, err := BestPeriod(data.Points)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(best.PeriodSec), "cap_best_period_s")
	b.ReportMetric(best.MeanWait, "cap_best_wait_s")
	b.ReportMetric(data.UTILWait, "util_wait_s")
}

// timelineBench regenerates a phase timeline at the paper's Figures 3/4
// junction (Pattern I, top-right, 2000 s) and reports its shape.
func timelineBench(b *testing.B, factory Factory) {
	b.Helper()
	setup := benchSetup()
	var tl experiment.TimelineData
	for i := 0; i < b.N; i++ {
		var err error
		tl, err = experiment.PhaseTimeline(setup, scenario.PatternI, factory, figHorizon, 0, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tl.Stats.Transitions), "transitions")
	b.ReportMetric(100*float64(tl.Stats.AmberSlots)/float64(len(tl.Phases)), "amber_pct")
	b.ReportMetric(tl.Stats.MeanGreenRun*tl.DT, "mean_green_s")
	b.ReportMetric(float64(tl.Stats.MaxGreenRun)*tl.DT, "max_green_s")
}

// BenchmarkFig3PhaseTimelineCAP: fixed-length phases (CAP-BP at a
// Pattern-I-competitive period).
func BenchmarkFig3PhaseTimelineCAP(b *testing.B) {
	timelineBench(b, benchSetup().CapBP(38))
}

// BenchmarkFig4PhaseTimelineUTIL: varying-length phases (UTIL-BP).
func BenchmarkFig4PhaseTimelineUTIL(b *testing.B) {
	timelineBench(b, benchSetup().UtilBP())
}

// BenchmarkFig5QueueSeries compares the east-approach queue series at the
// top-right junction for both controllers, the paper's Figure 5.
func BenchmarkFig5QueueSeries(b *testing.B) {
	setup := benchSetup()
	var capMean, utilMean float64
	var capMax, utilMax int
	for i := 0; i < b.N; i++ {
		capQS, err := experiment.EastQueueSeries(setup, scenario.PatternI, setup.CapBP(38), figHorizon, 0, 2, 5)
		if err != nil {
			b.Fatal(err)
		}
		utilQS, err := experiment.EastQueueSeries(setup, scenario.PatternI, setup.UtilBP(), figHorizon, 0, 2, 5)
		if err != nil {
			b.Fatal(err)
		}
		capMean, utilMean = capQS.Mean, utilQS.Mean
		capMax, utilMax = capQS.Max, utilQS.Max
	}
	b.ReportMetric(capMean, "cap_mean_queue")
	b.ReportMetric(utilMean, "util_mean_queue")
	b.ReportMetric(float64(capMax), "cap_max_queue")
	b.ReportMetric(float64(utilMax), "util_max_queue")
}

// ablationBench compares a UTIL-BP variant against the full algorithm on
// Pattern IV (the pattern with the paper's largest margin), reporting
// how much the removed mechanism was worth.
func ablationBench(b *testing.B, variant core.GainVariant, noKeepPhase bool) {
	b.Helper()
	setup := benchSetup()
	var full, ablated Result
	for i := 0; i < b.N; i++ {
		var err error
		full, err = Run(Spec{Setup: setup, Pattern: PatternIV, Factory: setup.UtilBP(), DurationSec: benchHorizon})
		if err != nil {
			b.Fatal(err)
		}
		ablated, err = Run(Spec{Setup: setup, Pattern: PatternIV,
			Factory: setup.UtilBPVariant(variant, noKeepPhase), DurationSec: benchHorizon})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(full.Summary.MeanWait, "full_wait_s")
	b.ReportMetric(ablated.Summary.MeanWait, "ablated_wait_s")
	b.ReportMetric(100*(ablated.Summary.MeanWait-full.Summary.MeanWait)/full.Summary.MeanWait, "degradation_pct")
}

// BenchmarkAblationNoWStar removes the W* shift (no service under
// negative pressure difference) — reverting the paper's eq. (6) change.
func BenchmarkAblationNoWStar(b *testing.B) {
	ablationBench(b, core.GainVariant{NoWStarShift: true}, false)
}

// BenchmarkAblationNoKeepPhase removes the keep-phase mechanism
// (Algorithm 1 Case 2), re-selecting every mini-slot.
func BenchmarkAblationNoKeepPhase(b *testing.B) {
	ablationBench(b, core.GainVariant{}, true)
}

// BenchmarkAblationNoSpecialCases removes the alpha/beta scenarios of
// eq. (8).
func BenchmarkAblationNoSpecialCases(b *testing.B) {
	ablationBench(b, core.GainVariant{NoSpecialCases: true}, false)
}

// BenchmarkAblationWholeRoadPressure reverts the per-lane pressure to the
// whole-road pressure of eq. (5) — the paper's §III-A point (i).
func BenchmarkAblationWholeRoadPressure(b *testing.B) {
	ablationBench(b, core.GainVariant{WholeRoadPressure: true}, false)
}

// BenchmarkAblationCountApproaching widens the detector to vehicles still
// rolling toward the stop line (ablation A6 in DESIGN.md).
func BenchmarkAblationCountApproaching(b *testing.B) {
	setup := benchSetup()
	setup.CountApproaching = true
	var full, widened Result
	for i := 0; i < b.N; i++ {
		var err error
		full, err = Run(Spec{Setup: benchSetup(), Pattern: PatternIV, Factory: benchSetup().UtilBP(), DurationSec: benchHorizon})
		if err != nil {
			b.Fatal(err)
		}
		widened, err = Run(Spec{Setup: setup, Pattern: PatternIV, Factory: setup.UtilBP(), DurationSec: benchHorizon})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(full.Summary.MeanWait, "full_wait_s")
	b.ReportMetric(widened.Summary.MeanWait, "ablated_wait_s")
	b.ReportMetric(100*(widened.Summary.MeanWait-full.Summary.MeanWait)/full.Summary.MeanWait, "degradation_pct")
}

// BenchmarkSensitivityAmber sweeps the transition-phase duration
// Δk ∈ {2,4,6,8} s for UTIL-BP on the mixed pattern.
func BenchmarkSensitivityAmber(b *testing.B) {
	for _, amber := range []int{2, 4, 6, 8} {
		amber := amber
		b.Run(benchName("dk", amber), func(b *testing.B) {
			setup := benchSetup()
			setup.AmberSec = amber
			var res Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Run(Spec{Setup: setup, Pattern: PatternMixed, Factory: setup.UtilBP()})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Summary.MeanWait, "util_wait_s")
		})
	}
}

// BenchmarkExtensionHOL runs the mixed-lane head-of-line-blocking
// extension (paper §IV Q4) against dedicated lanes.
func BenchmarkExtensionHOL(b *testing.B) {
	setup := benchSetup()
	var dedicated, mixed Result
	for i := 0; i < b.N; i++ {
		var err error
		dedicated, err = Run(Spec{Setup: setup, Pattern: PatternII, Factory: setup.UtilBP(), DurationSec: benchHorizon})
		if err != nil {
			b.Fatal(err)
		}
		mixed, err = Run(Spec{Setup: setup, Pattern: PatternII, Factory: setup.UtilBP(), DurationSec: benchHorizon, MixedLanes: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dedicated.Summary.MeanWait, "dedicated_wait_s")
	b.ReportMetric(mixed.Summary.MeanWait, "mixed_wait_s")
	b.ReportMetric(100*(mixed.Summary.MeanWait-dedicated.Summary.MeanWait)/dedicated.Summary.MeanWait, "hol_penalty_pct")
}

// BenchmarkBaselineOrigBP measures the eq. (5) baseline on the mixed
// pattern for reference.
func BenchmarkBaselineOrigBP(b *testing.B) {
	setup := benchSetup()
	var res Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Run(Spec{Setup: setup, Pattern: PatternMixed, Factory: setup.OrigBP(22)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Summary.MeanWait, "orig_wait_s")
}

// BenchmarkBaselineFixedTime measures the pretimed round-robin reference.
func BenchmarkBaselineFixedTime(b *testing.B) {
	setup := benchSetup()
	var res Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Run(Spec{Setup: setup, Pattern: PatternMixed, Factory: setup.FixedTime(22)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Summary.MeanWait, "fixed_wait_s")
}

// BenchmarkStabilityMargin probes the largest stable demand scaling for
// UTIL-BP vs CAP-BP on Pattern II — the stability/utilization trade-off
// instrument (paper §VI future work).
func BenchmarkStabilityMargin(b *testing.B) {
	setup := benchSetup()
	var util, capRes stability.Result
	for i := 0; i < b.N; i++ {
		var err error
		util, err = stability.Probe(stability.Options{
			Setup: setup, Pattern: PatternII, Factory: setup.UtilBP(),
			HorizonSec: 900, Iterations: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		capRes, err = stability.Probe(stability.Options{
			Setup: setup, Pattern: PatternII, Factory: setup.CapBP(22),
			HorizonSec: 900, Iterations: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(util.CriticalScale, "util_critical_scale")
	b.ReportMetric(capRes.CriticalScale, "cap_critical_scale")
}

// BenchmarkSensitivityBetaOrder compares the paper's beta < alpha ordering
// against the reversed one the paper mentions as a policy option
// ("beta can also be larger than alpha"), on the capacity-stressed
// Pattern I.
func BenchmarkSensitivityBetaOrder(b *testing.B) {
	paperOrder := benchSetup() // alpha=-1, beta=-2
	reversed := benchSetup()
	reversed.Alpha = -2
	reversed.Beta = -1
	var paperRes, revRes Result
	for i := 0; i < b.N; i++ {
		var err error
		paperRes, err = Run(Spec{Setup: paperOrder, Pattern: PatternI, Factory: paperOrder.UtilBP(), DurationSec: benchHorizon})
		if err != nil {
			b.Fatal(err)
		}
		revRes, err = Run(Spec{Setup: reversed, Pattern: PatternI, Factory: reversed.UtilBP(), DurationSec: benchHorizon})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(paperRes.Summary.MeanWait, "beta_lt_alpha_wait_s")
	b.ReportMetric(revRes.Summary.MeanWait, "alpha_lt_beta_wait_s")
}

// BenchmarkEngineSteps measures raw simulator throughput: mini-slots per
// second on the 3×3 network under UTIL-BP (performance, not fidelity).
// Arrivals stay on; since PR 2 the spawn path allocates nothing either
// (vehicle.Plan values, pre-sized arena), so the only residual
// allocations are amortized arena growth past the pre-sized horizon.
func BenchmarkEngineSteps(b *testing.B) {
	setup := benchSetup()
	engine, _, _, err := experiment.Prepare(Spec{Setup: setup, Pattern: PatternI, Factory: setup.UtilBP()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	engine.Run(b.N)
}

// BenchmarkStepOnce measures the full mini-slot including the spawn
// path: the engine is warmed up under Pattern I demand until lanes,
// heaps and the pre-sized vehicle arena have reached their working-set
// size, then the same seed is replayed in horizon-sized chunks via
// Engine.Reset so arrivals keep flowing for any -benchtime without the
// arena growing. The per-chunk rewind itself runs outside the timer —
// Engine.Reset rebuilds the (stateful) controllers through the factory,
// which is real but amortized work, not step cost. The contract —
// enforced by TestSpawnPathAllocs and TestStepOnceSteadyStateAllocs and
// gated in CI — is exactly 0 B/op and 0 allocs/op with traffic flowing
// and vehicles spawning every measured step.
func BenchmarkStepOnce(b *testing.B) { stepOnceBench(b, benchSetup(), nil, nil) }

// BenchmarkStepOnceSensed is BenchmarkStepOnce with the sensing layer
// explicitly engaged: the sensing.Perfect sensor installed, so every
// mini-slot runs the dirty-link refresh AND the per-link sensor copy
// into the separate observation array. Gated in CI at 0 B/op and
// 0 allocs/op alongside the sensor-free benchmark — the sensing layer
// must not reintroduce heap traffic on the hot path.
func BenchmarkStepOnceSensed(b *testing.B) { stepOnceBench(b, benchSetup(), nil, sensing.Perfect{}) }

// BenchmarkStepOnceDisrupted is BenchmarkStepOnce with an armed
// disruption schedule: a mid-run capacity incident, a dark junction and
// a demand surge (DESIGN.md §12). Gated in CI at 0 B/op and
// 0 allocs/op alongside its siblings — applying and reverting scheduled
// transitions must not reintroduce heap traffic on the hot path (queue
// reservations stay sized to the pre-disruption capacity; the schedule
// is immutable and replayed by cursor).
func BenchmarkStepOnceDisrupted(b *testing.B) {
	setup, err := benchSetup().WithCentralIncident(400, 600, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	setup.Events = append(setup.Events,
		event.Dark("J00", 800, 300),
		event.Surge(300, 900, 1.3),
	)
	stepOnceBench(b, setup, nil, nil)
}

// BenchmarkStepOnceZoo is BenchmarkStepOnce across the rest of the
// controller zoo (DESIGN.md §13): MaxPressure and BP-EST on the batched
// plane, the stateful actuated gap-out through the per-junction loop.
// Every family is CI-gated at 0 B/op and 0 allocs/op alongside the
// UTIL-BP siblings — controller state (weight slabs, per-link turn-ratio
// estimators, gap timers) must be pre-sized at construction, never grown
// on the hot path.
func BenchmarkStepOnceZoo(b *testing.B) {
	for _, f := range []struct {
		name string
		mk   func(Setup) signal.Factory
	}{
		{"MAXPRESSURE", func(s Setup) signal.Factory { return s.MaxPressure(0) }},
		{"GAPOUT", func(s Setup) signal.Factory { return s.GapOut(0, 0, 0) }},
		{"BP-EST", func(s Setup) signal.Factory { return s.EstimatedBP(0) }},
	} {
		f := f
		b.Run(f.name, func(b *testing.B) {
			setup := benchSetup()
			stepOnceBench(b, setup, f.mk(setup), nil)
		})
	}
}

// BenchmarkStepOnceInstrumented is the warm mini-slot with the
// telemetry plane engaged (DESIGN.md §15): a telemetry.Net recorder
// installed on the city-grid workload (256 junctions), so every
// measured step runs the engine's per-step flush into the ring buffers
// on top of the full simulation step. Gated in CI at 0 B/op and
// 0 allocs/op alongside its siblings — the recording path writes only
// into storage pre-sized at Arm time (the zero-alloc telemetry
// contract); the measured overhead vs the uninstrumented baseline is
// tracked by perfbench's instrumented section (PERF.md).
func BenchmarkStepOnceInstrumented(b *testing.B) {
	const horizon = 2000
	w, ok := scenario.WorkloadByName("city-grid")
	if !ok {
		b.Fatal("city-grid workload not registered")
	}
	setup := w.Setup
	setup.Seed = 1
	built, err := setup.Build(w.Pattern)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:              built.Grid.Network,
		Controllers:      setup.UtilBP(),
		Demand:           built.Demand,
		Router:           built.Router,
		Routes:           built.Routes,
		Events:           built.Events,
		ExpectedVehicles: built.ExpectedVehicles(horizon),
	})
	if err != nil {
		b.Fatal(err)
	}
	rec, err := telemetry.NewRecorder(telemetry.Net(), horizon)
	if err != nil {
		b.Fatal(err)
	}
	if err := engine.InstallTelemetry(rec); err != nil {
		b.Fatal(err)
	}
	engine.Run(horizon) // grow the working set over one full horizon
	if err := engine.Reset(setup.Seed); err != nil {
		b.Fatal(err)
	}
	used := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if used == horizon {
			b.StopTimer()
			if err := engine.Reset(setup.Seed); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			used = 0
		}
		engine.Run(1)
		used++
	}
}

// stepOnceBench is the shared warm-and-replay body of the StepOnce
// benchmarks. A nil factory runs the paper's UTIL-BP.
func stepOnceBench(b *testing.B, setup Setup, factory signal.Factory, sensor sensing.Sensor) {
	b.Helper()
	const horizon = 2000
	if factory == nil {
		factory = setup.UtilBP()
	}
	built, err := setup.Build(scenario.PatternI)
	if err != nil {
		b.Fatal(err)
	}
	if sensor != nil {
		sensor.Reseed(setup.Seed)
	}
	engine, err := sim.New(sim.Config{
		Net:              built.Grid.Network,
		Controllers:      factory,
		Demand:           built.Demand,
		Router:           built.Router,
		Routes:           built.Routes,
		Sensor:           sensor,
		Events:           built.Events,
		ExpectedVehicles: built.ExpectedVehicles(horizon),
	})
	if err != nil {
		b.Fatal(err)
	}
	engine.Run(horizon) // grow the working set over one full horizon
	if err := engine.Reset(setup.Seed); err != nil {
		b.Fatal(err)
	}
	used := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if used == horizon {
			// Rewind and replay the identical horizon; the replay never
			// exceeds the grown capacity.
			b.StopTimer()
			if err := engine.Reset(setup.Seed); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			used = 0
		}
		engine.Run(1)
		used++
	}
}

// BenchmarkControlPhasePerJunction and BenchmarkControlPhaseBatched
// time the full warm mini-slot (same warm-and-replay discipline as
// BenchmarkStepOnce, 0 B/op / 0 allocs/op CI-gated) with the control
// substep dispatched per-junction vs through the batched control plane
// (DESIGN.md §11). The control_ns_per_step metric attributes the
// control substep's share from an instrumented replay of the identical
// horizon (sim.Engine.RunTimed), so the batched plane's win is visible
// next to the headline ns/op.
func BenchmarkControlPhasePerJunction(b *testing.B) { controlPhaseBench(b, signal.ControlPerJunction) }

// BenchmarkControlPhaseBatched is the batched-dispatch counterpart of
// BenchmarkControlPhasePerJunction.
func BenchmarkControlPhaseBatched(b *testing.B) { controlPhaseBench(b, signal.ControlBatched) }

// controlPhaseBench is the shared body of the ControlPhase benchmarks.
func controlPhaseBench(b *testing.B, mode signal.ControlMode) {
	b.Helper()
	const horizon = 2000
	setup := benchSetup()
	setup.Control = mode
	built, err := setup.Build(scenario.PatternI)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:              built.Grid.Network,
		Controllers:      setup.UtilBP(),
		Demand:           built.Demand,
		Router:           built.Router,
		Routes:           built.Routes,
		Control:          setup.Control,
		ExpectedVehicles: built.ExpectedVehicles(horizon),
	})
	if err != nil {
		b.Fatal(err)
	}
	engine.Run(horizon) // grow the working set over one full horizon
	if err := engine.Reset(setup.Seed); err != nil {
		b.Fatal(err)
	}
	used := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if used == horizon {
			b.StopTimer()
			if err := engine.Reset(setup.Seed); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			used = 0
		}
		engine.Run(1)
		used++
	}
	b.StopTimer()
	if err := engine.Reset(setup.Seed); err != nil {
		b.Fatal(err)
	}
	var pt sim.PhaseTimings
	engine.RunTimed(horizon, &pt)
	b.ReportMetric(float64(pt.Control.Nanoseconds())/float64(pt.Steps), "control_ns_per_step")
}

// BenchmarkStepOnceServeBatched and BenchmarkStepOnceServeReference
// time the full warm mini-slot (same warm-and-replay discipline as
// BenchmarkStepOnce, 0 B/op / 0 allocs/op CI-gated) with the service
// substep running through the batched serve plane vs the per-junction
// reference loop (DESIGN.md §16). The serve_ns_per_step metric
// attributes the serve substep's share from an instrumented replay of
// the identical horizon (sim.Engine.RunTimed), so the idle-junction
// skip's win is visible next to the headline ns/op.
func BenchmarkStepOnceServeBatched(b *testing.B) { serveModeBench(b, sim.ServeBatched) }

// BenchmarkStepOnceServeReference is the reference-loop counterpart of
// BenchmarkStepOnceServeBatched.
func BenchmarkStepOnceServeReference(b *testing.B) { serveModeBench(b, sim.ServeReference) }

// serveModeBench is the shared body of the serve-mode benchmarks.
func serveModeBench(b *testing.B, mode sim.ServeMode) {
	b.Helper()
	const horizon = 2000
	setup := benchSetup()
	built, err := setup.Build(scenario.PatternI)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:              built.Grid.Network,
		Controllers:      setup.UtilBP(),
		Demand:           built.Demand,
		Router:           built.Router,
		Routes:           built.Routes,
		Serve:            mode,
		ExpectedVehicles: built.ExpectedVehicles(horizon),
	})
	if err != nil {
		b.Fatal(err)
	}
	engine.Run(horizon) // grow the working set over one full horizon
	if err := engine.Reset(setup.Seed); err != nil {
		b.Fatal(err)
	}
	used := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if used == horizon {
			b.StopTimer()
			if err := engine.Reset(setup.Seed); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			used = 0
		}
		engine.Run(1)
		used++
	}
	b.StopTimer()
	if err := engine.Reset(setup.Seed); err != nil {
		b.Fatal(err)
	}
	var pt sim.PhaseTimings
	engine.RunTimed(horizon, &pt)
	b.ReportMetric(float64(pt.Serve.Nanoseconds())/float64(pt.Steps), "serve_ns_per_step")
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v < 10 {
		return prefix + "=" + digits[v:v+1]
	}
	return prefix + "=" + digits[v/10:v/10+1] + digits[v%10:v%10+1]
}
