// Gridcompare reproduces the paper's headline result at example scale: it
// sweeps CAP-BP's control period on the single-heavy Pattern IV, finds
// the best fixed period, and shows that period-free UTIL-BP still beats
// it — without the prior traffic knowledge choosing a period requires.
//
//	go run ./examples/gridcompare
package main

import (
	"fmt"
	"log"
	"strings"

	"utilbp"
)

func main() {
	setup := utilbp.DefaultSetup()
	setup.Seed = 7

	periods := []int{10, 14, 18, 22, 26, 30, 38, 46}
	points, err := utilbp.SweepCAPPeriods(setup, utilbp.PatternIV, periods, 0)
	if err != nil {
		log.Fatal(err)
	}
	util, err := utilbp.Run(utilbp.Spec{
		Setup:   setup,
		Pattern: utilbp.PatternIV,
		Factory: setup.UtilBP(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Pattern IV (single heavy direction, 1 h)")
	fmt.Println("CAP-BP control period sweep:")
	best, err := utilbp.BestPeriod(points)
	if err != nil {
		log.Fatal(err)
	}
	_, worst := minMax(points)
	for _, p := range points {
		bar := strings.Repeat("#", int(40*p.MeanWait/worst))
		marker := "  "
		if p.PeriodSec == best.PeriodSec {
			marker = "<-- best period"
		}
		fmt.Printf("  %3d s  %7.1f s  %-40s %s\n", p.PeriodSec, p.MeanWait, bar, marker)
	}
	fmt.Printf("\nUTIL-BP (no period to tune): %.1f s average queuing time\n", util.Summary.MeanWait)
	fmt.Printf("vs CAP-BP at its best period (%d s): %.1f s  =>  %.1f%% better\n",
		best.PeriodSec, best.MeanWait,
		100*(best.MeanWait-util.Summary.MeanWait)/best.MeanWait)
	fmt.Println("\nNote: CAP-BP's optimal period depends on the traffic pattern, so")
	fmt.Println("using it in practice requires prior knowledge the controller does")
	fmt.Println("not have; UTIL-BP adapts its phase lengths online.")
}

func minMax(points []utilbp.PeriodPoint) (min, max float64) {
	min, max = points[0].MeanWait, points[0].MeanWait
	for _, p := range points[1:] {
		if p.MeanWait < min {
			min = p.MeanWait
		}
		if p.MeanWait > max {
			max = p.MeanWait
		}
	}
	return min, max
}
