// Rushhour exercises the library below the facade: it builds a custom
// 2×4 corridor network, drives it with a hand-written time-varying demand
// profile (quiet -> rush-hour surge -> quiet), and compares UTIL-BP
// against a pretimed controller while sampling network occupancy, showing
// how the adaptive controller absorbs the surge.
//
//	go run ./examples/rushhour
package main

import (
	"fmt"
	"log"
	"strings"

	"utilbp/internal/core"
	"utilbp/internal/fixedtime"
	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
	"utilbp/internal/stats"
)

const (
	quietRate = 0.05 // veh/s per entry road off-peak
	rushRate  = 0.30 // veh/s per entry road during the surge
	rushStart = 600.0
	rushEnd   = 1800.0
	horizon   = 3600
)

func main() {
	grid, err := network.Grid(network.GridSpec{
		Rows: 2, Cols: 4,
		Spacing: 250, BoundaryLength: 250,
		Speed: 13.9, Capacity: 80, Mu: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Rush hour hits the west-east corridor: western entries surge.
	rate := func(road network.RoadID, t float64) float64 {
		base := quietRate
		if t >= rushStart && t < rushEnd {
			for _, rid := range grid.Entries(network.West) {
				if rid == road {
					return rushRate
				}
			}
			base = 0.08
		}
		return base
	}

	controllers := map[string]signal.Factory{
		"UTIL-BP": core.Factory(core.Options{AmberSteps: 4}),
		"FIXED":   fixedtime.Factory(fixedtime.Options{GreenSteps: 20, AmberSteps: 4}),
	}
	series := map[string]*stats.OccupancySeries{}
	waits := map[string]float64{}

	for _, name := range []string{"UTIL-BP", "FIXED"} {
		root := rng.New(99)
		router, routes := scenario.NewGridRouter(grid, nil, root.Split("routes"))
		engine, err := sim.New(sim.Config{
			Net:         grid.Network,
			Controllers: controllers[name],
			Demand:      sim.NewPoissonDemand(root.Split("demand"), rate),
			Router:      router,
			Routes:      routes,
		})
		if err != nil {
			log.Fatal(err)
		}
		oc := stats.NewOccupancySeries(120)
		engine.AddHooks(oc.Hooks())
		engine.RunFor(horizon)
		engine.FinalizeWaits()
		series[name] = oc
		waits[name] = stats.SummarizeArena(engine.Arena()).MeanWait
	}

	fmt.Println("Rush-hour surge on a 2x4 corridor (west entries x6 for 20 min)")
	fmt.Println("\nvehicles in network (sampled every 2 min):")
	fmt.Printf("%8s  %-30s %-30s\n", "time", "UTIL-BP", "FIXED @20s")
	util, fixed := series["UTIL-BP"], series["FIXED"]
	for i := range util.Values {
		mark := " "
		t := util.Times[i]
		if t >= rushStart && t < rushEnd {
			mark = "*"
		}
		fmt.Printf("%6.0f s%s  %-30s %-30s\n", t, mark,
			bar(util.Values[i]), bar(fixed.Values[i]))
	}
	fmt.Println("(* = surge active; each # is 10 vehicles)")
	fmt.Printf("\naverage queuing time: UTIL-BP %.1f s, FIXED %.1f s (%.0f%% better)\n",
		waits["UTIL-BP"], waits["FIXED"],
		100*(waits["FIXED"]-waits["UTIL-BP"])/waits["FIXED"])
}

func bar(v int) string {
	n := v / 10
	if n > 30 {
		n = 30
	}
	return strings.Repeat("#", n)
}
