// Quickstart: simulate the paper's 3×3 evaluation network for one hour of
// uniform traffic (Pattern II) under the UTIL-BP controller, then compare
// against CAP-BP at a 22-second control period.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"utilbp"
)

func main() {
	setup := utilbp.DefaultSetup()
	setup.Seed = 42

	util, err := utilbp.Run(utilbp.Spec{
		Setup:   setup,
		Pattern: utilbp.PatternII,
		Factory: setup.UtilBP(),
	})
	if err != nil {
		log.Fatal(err)
	}
	capbp, err := utilbp.Run(utilbp.Spec{
		Setup:   setup,
		Pattern: utilbp.PatternII,
		Factory: setup.CapBP(22),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Pattern II (uniform demand, 1 h, 3x3 grid)")
	for _, res := range []utilbp.Result{util, capbp} {
		s := res.Summary
		fmt.Printf("  %-8s avg queuing %6.1f s   p90 %6.1f s   %d/%d vehicles completed\n",
			res.Controller, s.MeanWait, s.P90, s.Exited, s.Spawned)
	}
	better := (capbp.Summary.MeanWait - util.Summary.MeanWait) / capbp.Summary.MeanWait * 100
	fmt.Printf("UTIL-BP improves average queuing time by %.1f%% over CAP-BP@22s\n", better)
}
