// Sensing demonstrates the CPS sensing layer: how UTIL-BP degrades as
// the controller's view of the queues moves from perfect observation to
// loop-detector counts and sparse connected-vehicle sampling. It runs
// the connected-vehicle penetration-rate sweep of EXPERIMENTS.md on the
// paper grid and renders the degradation curve as an ASCII bar chart.
//
//	go run ./examples/sensing
package main

import (
	"fmt"
	"log"
	"strings"

	"utilbp/internal/experiment"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
)

const horizon = 900 // seconds per run; short but past the warm-up transient

func main() {
	setup := scenario.Default()
	seeds := []uint64{1, 2, 3}

	// Perfect vs loop vs connected-vehicle at a glance.
	specs := []sensing.Spec{
		{},
		sensing.Loop(),
		{Kind: sensing.KindLoop, Saturation: 30, FailProb: 0.05},
		sensing.CV(0.3),
		{Kind: sensing.KindConnectedVehicle, Rate: 0.3, NoiseStd: 2, LatencySteps: 5},
	}
	rows, err := experiment.SensingSweep(setup, scenario.PatternII, specs, seeds, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("UTIL-BP under imperfect sensing, paper grid, Pattern II")
	fmt.Print(experiment.FormatSensingStats(rows, seeds))

	// The penetration-rate curve: how much connectivity does adaptive
	// back pressure need before estimation error stops hurting?
	rates := []float64{0.1, 0.2, 0.3, 0.5, 0.7, 1.0}
	curve, err := experiment.PenetrationSweep(setup, scenario.PatternII, rates, seeds, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Connected-vehicle penetration sweep (degradation vs perfect):")
	worst := 1.0
	for _, row := range curve {
		if row.DegradationPct > worst {
			worst = row.DegradationPct
		}
	}
	for _, row := range curve {
		bar := int(40 * row.DegradationPct / worst)
		if bar < 0 {
			bar = 0
		}
		fmt.Printf("  %-8s %6.1f s  %+6.1f%% |%s\n",
			row.Spec, row.Mean, row.DegradationPct, strings.Repeat("#", bar))
	}
	fmt.Println("\nPartial penetration starves the pressure signal: the scaled-up")
	fmt.Println("Binomial sample stays noisy at any rate below 1, so UTIL-BP pays a")
	fmt.Println("roughly constant penalty until full penetration restores parity —")
	fmt.Println("the regime where queue estimation (filtering, count integration)")
	fmt.Println("earns its keep (cf. arXiv:2006.15549).")
}
