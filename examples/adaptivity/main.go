// Adaptivity renders the paper's Figures 3 and 4 as ASCII strips: the
// control phases applied over time at the top-right junction under
// Pattern I, for fixed-length CAP-BP versus varying-length UTIL-BP. The
// UTIL-BP strip visibly stretches greens for the heavy north-south flows.
//
//	go run ./examples/adaptivity
package main

import (
	"fmt"
	"log"
	"strings"

	"utilbp/internal/experiment"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
)

const window = 360 // seconds rendered per strip

func main() {
	setup := scenario.Default()
	setup.Seed = 3

	capTL, err := experiment.PhaseTimeline(setup, scenario.PatternI, setup.CapBP(38), window, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	utilTL, err := experiment.PhaseTimeline(setup, scenario.PatternI, setup.UtilBP(), window, 0, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Applied control phases, top-right junction, Pattern I (first 6 min)")
	fmt.Println("legend: 1 = N/S straight+left, 2 = N/S right, 3 = E/W straight+left,")
	fmt.Println("        4 = E/W right, . = amber transition; one column = 3 s")
	fmt.Println()
	fmt.Println("CAP-BP (fixed 38 s slots):")
	render(capTL.Phases)
	fmt.Println()
	fmt.Println("UTIL-BP (varying-length phases):")
	render(utilTL.Phases)
	fmt.Println()
	fmt.Printf("CAP-BP : %3d transitions, mean green %5.1f s, max green %3.0f s\n",
		capTL.Stats.Transitions, capTL.Stats.MeanGreenRun*capTL.DT, float64(capTL.Stats.MaxGreenRun)*capTL.DT)
	fmt.Printf("UTIL-BP: %3d transitions, mean green %5.1f s, max green %3.0f s\n",
		utilTL.Stats.Transitions, utilTL.Stats.MeanGreenRun*utilTL.DT, float64(utilTL.Stats.MaxGreenRun)*utilTL.DT)
	fmt.Println("\nUTIL-BP assigns long greens to the heavy north/south phases (1, 2)")
	fmt.Println("and cuts cross-traffic phases short — the paper's Figure 4 behaviour.")
}

// render draws the timeline, one character per 3 s, one row per phase.
func render(phases []signal.Phase) {
	const cell = 3
	cols := len(phases) / cell
	var b strings.Builder
	for p := signal.Phase(1); p <= 4; p++ {
		b.Reset()
		fmt.Fprintf(&b, "  c%d |", p)
		for c := 0; c < cols; c++ {
			// Majority phase within the cell.
			counts := map[signal.Phase]int{}
			for k := c * cell; k < (c+1)*cell && k < len(phases); k++ {
				counts[phases[k]]++
			}
			best, bestN := signal.Amber, 0
			for ph, n := range counts {
				if n > bestN {
					best, bestN = ph, n
				}
			}
			if best == p {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('|')
		fmt.Println(b.String())
	}
	// Amber row.
	b.Reset()
	b.WriteString("  c0 |")
	for c := 0; c < cols; c++ {
		amber := 0
		for k := c * cell; k < (c+1)*cell && k < len(phases); k++ {
			if phases[k] == signal.Amber {
				amber++
			}
		}
		if amber >= 2 {
			b.WriteByte('.')
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('|')
	fmt.Println(b.String())
}
