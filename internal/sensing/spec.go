package sensing

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the sensor families a Spec can select.
type Kind int

// The sensor families: perfect observation (the zero value), stop-bar
// loop detection, and connected-vehicle penetration sampling.
const (
	KindPerfect Kind = iota
	KindLoop
	KindConnectedVehicle
)

// Spec is the declarative sensor configuration carried by scenario
// setups, the workload registry and experiment sweep axes. The zero
// value is the perfect sensor, so existing setups keep today's exact
// observations without opting in. Specs are plain values: comparable,
// printable (String) and parseable (ParseSpec), which is what lets a
// sweep treat "which sensor" as an axis next to pattern and seed.
type Spec struct {
	// Kind selects the sensor family.
	Kind Kind
	// Rate is the connected-vehicle penetration rate in (0, 1].
	Rate float64
	// NoiseStd is the connected-vehicle additive noise std in vehicles.
	NoiseStd float64
	// LatencySteps is the connected-vehicle report latency in
	// mini-slots (minimum interval between accepted reports per link).
	LatencySteps int
	// Saturation is the loop detector-zone capacity; 0 means
	// DefaultSaturation, negative disables saturation.
	Saturation int
	// FailProb is the loop per-event detection-failure probability.
	FailProb float64
	// FilterAlpha overrides the connected-vehicle exponential-filter
	// gain; 0 means DefaultCVAlpha.
	FilterAlpha float64
}

// CV returns the connected-vehicle spec for a penetration rate, the
// shorthand penetration sweeps are built from.
func CV(rate float64) Spec { return Spec{Kind: KindConnectedVehicle, Rate: rate} }

// Loop returns the stop-bar loop-detector spec with default saturation
// and failure probability.
func Loop() Spec { return Spec{Kind: KindLoop} }

// Perfect reports whether the spec selects perfect observation. The
// engine runs perfect specs sensor-free (the observation aliases the
// truth storage), so they cost nothing.
func (s Spec) Perfect() bool { return s.Kind == KindPerfect }

// Validate rejects malformed specs; scenario.Setup.BuildArtifact calls
// it so invalid sensors fail at build time, not mid-sweep.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindPerfect:
		return nil
	case KindLoop:
		// The inverted comparisons also reject NaN (every NaN comparison
		// is false), which FuzzParseSpec caught slipping through the
		// naive range checks via "cv:NaN"-style inputs.
		if !(s.FailProb >= 0 && s.FailProb < 1) {
			return fmt.Errorf("sensing: loop failure probability %v outside [0, 1)", s.FailProb)
		}
		return nil
	case KindConnectedVehicle:
		if !(s.Rate > 0 && s.Rate <= 1) {
			return fmt.Errorf("sensing: connected-vehicle penetration rate %v outside (0, 1]", s.Rate)
		}
		if !(s.NoiseStd >= 0) {
			return fmt.Errorf("sensing: negative noise std %v", s.NoiseStd)
		}
		if s.LatencySteps < 0 {
			return fmt.Errorf("sensing: negative report latency %d", s.LatencySteps)
		}
		if !(s.FilterAlpha >= 0 && s.FilterAlpha <= 1) {
			return fmt.Errorf("sensing: filter alpha %v outside [0, 1]", s.FilterAlpha)
		}
		return nil
	}
	return fmt.Errorf("sensing: unknown sensor kind %d", int(s.Kind))
}

// New builds the sensor the spec describes, seeded for run seed 0 (the
// engine or scenario layer reseeds it for the actual run). Perfect
// specs return the explicit Perfect sensor; callers that want the
// engine's sensor-free fast path should check Perfect() and pass nil
// instead (scenario.Artifact.Instantiate does).
func (s Spec) New() (Sensor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindPerfect:
		return Perfect{}, nil
	case KindLoop:
		return NewLoopDetector(LoopDetectorOptions{
			Saturation: s.Saturation,
			FailProb:   s.FailProb,
		}), nil
	default:
		var est Estimator
		if s.FilterAlpha > 0 {
			est = ExpFilter{Alpha: s.FilterAlpha}
		}
		return NewConnectedVehicle(ConnectedVehicleOptions{
			Rate:         s.Rate,
			NoiseStd:     s.NoiseStd,
			LatencySteps: s.LatencySteps,
			Estimator:    est,
		}), nil
	}
}

// String renders the spec compactly. For specs expressible in the CLI
// syntax ("perfect", "loop", "loop:<saturation>", "cv:<rate>") the
// rendering round-trips through ParseSpec; parameters beyond the CLI
// surface (failure probability, noise, latency) are appended
// informationally.
func (s Spec) String() string {
	switch s.Kind {
	case KindPerfect:
		return "perfect"
	case KindLoop:
		out := "loop"
		if s.Saturation != 0 && s.Saturation != DefaultSaturation {
			out = fmt.Sprintf("loop:%d", s.Saturation)
		}
		if s.FailProb > 0 {
			out += fmt.Sprintf(",fail=%.2f", s.FailProb)
		}
		return out
	case KindConnectedVehicle:
		// Render the rate with minimal digits so String round-trips
		// exactly through ParseSpec (%.2f would collapse cv:0.125 and
		// cv:0.13 into one label).
		out := "cv:" + strconv.FormatFloat(s.Rate, 'g', -1, 64)
		if s.NoiseStd > 0 {
			out += fmt.Sprintf(",noise=%.1f", s.NoiseStd)
		}
		if s.LatencySteps > 0 {
			out += fmt.Sprintf(",lat=%d", s.LatencySteps)
		}
		return out
	}
	return fmt.Sprintf("sensor(%d)", int(s.Kind))
}

// ParseSpec parses the CLI sensor syntax: "perfect", "loop",
// "loop:<saturation>" or "cv:<rate>" (penetration rate in (0, 1]).
func ParseSpec(arg string) (Spec, error) {
	name, param, hasParam := strings.Cut(strings.TrimSpace(arg), ":")
	switch strings.ToLower(name) {
	case "perfect", "":
		if hasParam {
			return Spec{}, fmt.Errorf("sensing: perfect sensor takes no parameter, got %q", arg)
		}
		return Spec{}, nil
	case "loop":
		spec := Loop()
		if hasParam {
			sat, err := strconv.Atoi(param)
			if err != nil || sat <= 0 {
				return Spec{}, fmt.Errorf("sensing: bad loop saturation %q (want a positive count)", param)
			}
			spec.Saturation = sat
		}
		return spec, nil
	case "cv":
		if !hasParam {
			return Spec{}, fmt.Errorf("sensing: cv sensor needs a penetration rate, e.g. cv:0.3")
		}
		rate, err := strconv.ParseFloat(param, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("sensing: bad penetration rate %q", param)
		}
		spec := CV(rate)
		if err := spec.Validate(); err != nil {
			return Spec{}, err
		}
		return spec, nil
	}
	return Spec{}, fmt.Errorf("sensing: unknown sensor %q (want perfect, loop or cv:<rate>)", arg)
}
