// Package sensing models the cyber half of the paper's CPS split: the
// detection hardware sitting between the physical queues and the signal
// controllers. The simulation engine maintains exact per-link state (the
// plant); a Sensor maps that ground truth onto the signal.Obs queue
// values a controller actually sees — bit-for-bit for Perfect, through a
// stop-bar count model for LoopDetector, or through per-vehicle
// penetration sampling for ConnectedVehicle. Estimators (exponential
// filter, count integration) turn the raw readings into queue estimates,
// following the estimated-queue back-pressure literature
// (arXiv:2006.15549, arXiv:1401.3357).
//
// Sensors are engine-local and event-driven: the engine marks a link
// dirty whenever the underlying road state changes (spawn, serve,
// stop-line arrival) and calls SenseLink only for dirty links, so a
// link whose queues did not move keeps its previous reading — exactly
// how count-based roadside detection behaves, and what keeps the
// perfect-observation path cheaper than the old full walk (DESIGN.md
// §10). All sensing randomness draws from a dedicated "sensing" stream
// derived from the run seed (rng.New(seed).Split("sensing")), so
// installing or tuning a sensor never perturbs the demand or routing
// streams, and Engine.Reset replays runs bit-for-bit.
package sensing

import (
	"utilbp/internal/rng"
	"utilbp/internal/signal"
)

// Sensor maps the ground-truth state of a junction link onto the
// observation its controller sees. Implementations are stateful (they
// hold per-link estimates and their RNG stream) and are NOT safe for
// concurrent use: one sensor serves one running engine at a time.
//
// The engine calls SenseLink only for links whose underlying road state
// changed during the previous mini-slot; readings for unchanged links
// persist in the observation. Sensors write only the dynamic queue
// fields of obs (Queue, InTransit, ApproachQueue, OutQueue,
// OutOccupancy) — the static fields (capacities, µ) are engine-owned.
type Sensor interface {
	// Name identifies the sensor model (e.g. "cv:0.3").
	Name() string
	// Prepare sizes the per-link state for an engine whose junctions
	// expose nlinks links in total (the engine's dense global link
	// index space). The engine calls it at construction and whenever
	// the sensor is installed on a reused engine; it must be callable
	// repeatedly and must not discard state mid-run.
	Prepare(nlinks int)
	// SenseLink observes one link: truth is the exact state maintained
	// by the engine, obs is the entry the controller will read. link is
	// the engine's dense global link index, step the mini-slot index.
	SenseLink(link int, truth, obs *signal.LinkObs, step int)
	// Reseed rewinds the sensor to the fresh deterministic state of a
	// run with the given seed: per-link estimates cleared and the RNG
	// rewound to rng.New(seed).Split("sensing"). Engine.Reset forwards
	// its seed here, so replays are bit-for-bit.
	Reseed(seed uint64)
}

// sensingStream derives the dedicated sensing RNG stream for a run
// seed. It is split from the same root as the scenario layer's demand
// and router streams but under its own label, so the three never
// interleave: adding a sensor cannot change the arrivals or routes a
// seed produces.
func sensingStream(seed uint64) *rng.Source {
	return rng.New(seed).Split("sensing")
}

// Perfect is the identity sensor: controllers see the exact queue
// state, reproducing the engine's historical behavior bit-for-bit. It
// exists so sensor sweeps have an explicit zero-error reference; an
// engine configured with no sensor at all takes an even shorter path
// (the observation aliases the truth storage) with identical results.
type Perfect struct{}

// Name implements Sensor.
func (Perfect) Name() string { return "perfect" }

// Prepare implements Sensor; the perfect sensor keeps no state.
func (Perfect) Prepare(int) {}

// SenseLink implements Sensor by copying the truth verbatim.
func (Perfect) SenseLink(_ int, truth, obs *signal.LinkObs, _ int) { *obs = *truth }

// Reseed implements Sensor; the perfect sensor draws no randomness.
func (Perfect) Reseed(uint64) {}

// The dynamic queue-state fields a sensor estimates, as indexes into
// the per-link estimate vectors. InTransit is special-cased by the
// stop-bar detector (it cannot see rolling vehicles).
const (
	fQueue = iota
	fInTransit
	fApproach
	fOutQueue
	fOutOcc
	numFields
)

// truthFields gathers the dynamic fields of a link observation into a
// vector so sensors can apply one model uniformly per field.
func truthFields(o *signal.LinkObs) [numFields]int {
	return [numFields]int{o.Queue, o.InTransit, o.ApproachQueue, o.OutQueue, o.OutOccupancy}
}

// writeFields stores rounded, non-negative estimates into the dynamic
// fields of a link observation.
func writeFields(o *signal.LinkObs, est *[numFields]float64) {
	o.Queue = roundCount(est[fQueue])
	o.InTransit = roundCount(est[fInTransit])
	o.ApproachQueue = roundCount(est[fApproach])
	o.OutQueue = roundCount(est[fOutQueue])
	o.OutOccupancy = roundCount(est[fOutOcc])
}

// roundCount rounds an estimate to a vehicle count, clamped at zero.
func roundCount(v float64) int {
	if v <= 0 {
		return 0
	}
	return int(v + 0.5)
}

// LoopDetectorOptions configures the stop-bar detector model.
type LoopDetectorOptions struct {
	// Saturation is the largest count the detector zone can register
	// per field; queues beyond it saturate the reading. Zero applies
	// DefaultSaturation; negative disables saturation.
	Saturation int
	// FailProb is the probability that one sensing event is missed
	// entirely (a detection failure): the crossing counts of that event
	// are lost and the estimate drifts until the next positive
	// empty-queue detection resynchronizes it.
	FailProb float64
	// Estimator folds the per-event readings into the reported
	// estimate. Nil defaults to CountIntegrator bounded by Saturation.
	Estimator Estimator
}

// DefaultSaturation is the default detector-zone capacity: half the
// paper grid's road capacity W = 120, a zone covering roughly half the
// approach.
const DefaultSaturation = 60

// LoopDetector models stop-bar loop detection: it observes the flow
// across the detector (the count delta between sensing events), feeds
// it through its estimator, saturates at the detector-zone capacity and
// occasionally misses an event entirely. Vehicles still rolling toward
// the stop line are invisible to it, so InTransit reads zero.
// Construct with NewLoopDetector.
type LoopDetector struct {
	opts  LoopDetectorOptions
	est   Estimator
	src   *rng.Source
	links []loopLink
	n     int
}

// loopLink is the per-link detector state: the running estimates and
// the last truth snapshot the next event's deltas are counted from.
type loopLink struct {
	est  [numFields]float64
	last [numFields]int32
}

// NewLoopDetector builds a stop-bar detector. It starts seeded for run
// seed 0; the engine (or scenario layer) reseeds it for the actual run.
func NewLoopDetector(opts LoopDetectorOptions) *LoopDetector {
	if opts.Saturation == 0 {
		opts.Saturation = DefaultSaturation
	}
	est := opts.Estimator
	if est == nil {
		max := 0.0
		if opts.Saturation > 0 {
			max = float64(opts.Saturation)
		}
		est = CountIntegrator{Max: max}
	}
	return &LoopDetector{opts: opts, est: est, src: sensingStream(0)}
}

// Name implements Sensor.
func (ld *LoopDetector) Name() string { return "loop" }

// Prepare implements Sensor.
func (ld *LoopDetector) Prepare(nlinks int) {
	if nlinks > len(ld.links) {
		grown := make([]loopLink, nlinks)
		copy(grown, ld.links)
		ld.links = grown
	}
	ld.n = nlinks
}

// Reseed implements Sensor.
func (ld *LoopDetector) Reseed(seed uint64) {
	ld.src = sensingStream(seed)
	clearLinks := ld.links[:ld.n]
	for i := range clearLinks {
		clearLinks[i] = loopLink{}
	}
}

// SenseLink implements Sensor. Each sensing event observes the per-field
// count deltas since the previous event; a failed event loses them (the
// estimate drifts) but an observed empty queue resynchronizes to zero.
func (ld *LoopDetector) SenseLink(link int, truth, obs *signal.LinkObs, _ int) {
	st := &ld.links[link]
	failed := ld.src.Bool(ld.opts.FailProb)
	tf := truthFields(truth)
	for f := range tf {
		delta := tf[f] - int(st.last[f])
		st.last[f] = int32(tf[f])
		if failed || f == fInTransit {
			continue
		}
		level := tf[f]
		if ld.opts.Saturation > 0 && level > ld.opts.Saturation {
			level = ld.opts.Saturation
		}
		st.est[f] = ld.est.Update(st.est[f], Sample{
			Level: float64(level),
			Delta: float64(delta),
			Empty: tf[f] == 0,
		})
	}
	writeFields(obs, &st.est)
	obs.InTransit = 0 // rolling vehicles never reach the stop-bar loop
}

// ConnectedVehicleOptions configures the connected-vehicle model.
type ConnectedVehicleOptions struct {
	// Rate is the penetration rate p in (0, 1]: each queued vehicle
	// reports with probability p, and the count estimate is the scaled
	// Binomial sample k/p.
	Rate float64
	// NoiseStd is the standard deviation of additive Gaussian noise on
	// the scaled estimate, in vehicles. Zero disables it.
	NoiseStd float64
	// LatencySteps is the report latency: the minimum number of
	// mini-slots between accepted queue reports for one link. Between
	// reports the observation holds its last value. Zero reports on
	// every sensing event.
	LatencySteps int
	// Estimator folds the per-report levels into the reported estimate.
	// Nil defaults to ExpFilter{Alpha: DefaultCVAlpha}.
	Estimator Estimator
}

// DefaultCVAlpha is the default exponential-filter gain for the
// connected-vehicle sensor: half the weight on the newest report.
const DefaultCVAlpha = 0.5

// ConnectedVehicle models probe-vehicle sensing: each queued vehicle is
// a connected vehicle with probability Rate, the scaled sample count
// estimates the queue, additive noise models positioning error, and
// reports are rate-limited by LatencySteps. Construct with
// NewConnectedVehicle.
type ConnectedVehicle struct {
	opts  ConnectedVehicleOptions
	est   Estimator
	src   *rng.Source
	links []cvLink
	n     int
}

// cvLink is the per-link probe state: running estimates and the step of
// the last accepted report (-1 before the first).
type cvLink struct {
	est        [numFields]float64
	lastReport int32
}

// NewConnectedVehicle builds a probe-vehicle sensor. It starts seeded
// for run seed 0; the engine (or scenario layer) reseeds it for the
// actual run. A Rate outside (0, 1] is rejected by Spec.Validate; the
// constructor clamps it defensively.
func NewConnectedVehicle(opts ConnectedVehicleOptions) *ConnectedVehicle {
	if opts.Rate <= 0 || opts.Rate > 1 {
		opts.Rate = 1
	}
	est := opts.Estimator
	if est == nil {
		est = ExpFilter{Alpha: DefaultCVAlpha}
	}
	return &ConnectedVehicle{opts: opts, est: est, src: sensingStream(0)}
}

// Name implements Sensor.
func (cv *ConnectedVehicle) Name() string {
	return Spec{Kind: KindConnectedVehicle, Rate: cv.opts.Rate}.String()
}

// Prepare implements Sensor.
func (cv *ConnectedVehicle) Prepare(nlinks int) {
	if nlinks > len(cv.links) {
		grown := make([]cvLink, nlinks)
		n := copy(grown, cv.links)
		for i := n; i < len(grown); i++ {
			grown[i].lastReport = -1
		}
		cv.links = grown
	}
	cv.n = nlinks
}

// Reseed implements Sensor.
func (cv *ConnectedVehicle) Reseed(seed uint64) {
	cv.src = sensingStream(seed)
	clearLinks := cv.links[:cv.n]
	for i := range clearLinks {
		clearLinks[i] = cvLink{lastReport: -1}
	}
}

// SenseLink implements Sensor: per field, a Binomial(truth, Rate)
// sample scaled by 1/Rate plus optional Gaussian noise, folded through
// the estimator, subject to the per-link report latency.
func (cv *ConnectedVehicle) SenseLink(link int, truth, obs *signal.LinkObs, step int) {
	st := &cv.links[link]
	if cv.opts.LatencySteps > 0 && st.lastReport >= 0 && step-int(st.lastReport) < cv.opts.LatencySteps {
		return // reports are rate-limited; the observation holds
	}
	st.lastReport = int32(step)
	tf := truthFields(truth)
	for f := range tf {
		seen := cv.src.Binomial(tf[f], cv.opts.Rate)
		level := float64(seen) / cv.opts.Rate
		if cv.opts.NoiseStd > 0 {
			level += cv.src.Norm() * cv.opts.NoiseStd
		}
		if level < 0 {
			level = 0
		}
		st.est[f] = cv.est.Update(st.est[f], Sample{
			Level: level,
			Delta: level - st.est[f],
			Empty: tf[f] == 0 && seen == 0 && cv.opts.Rate >= 1,
		})
	}
	writeFields(obs, &st.est)
}

var (
	_ Sensor = Perfect{}
	_ Sensor = (*LoopDetector)(nil)
	_ Sensor = (*ConnectedVehicle)(nil)
)
