package sensing

import "fmt"

// Sample is one raw sensor measurement of a link queue-state field.
// Level is the measured queue level; Delta is the measured net change
// since the previous measurement (count-based detectors observe flows,
// not levels); Empty reports a positive empty-queue detection, the
// resynchronization opportunity drifting integrators wait for.
type Sample struct {
	Level float64
	Delta float64
	Empty bool
}

// Estimator folds successive raw samples into a queue estimate. An
// estimator is a stateless policy: the per-link state it evolves is the
// single estimate value the caller stores and passes back in.
type Estimator interface {
	// Name identifies the estimator variant (e.g. "exp:0.50").
	Name() string
	// Update folds one sample into the running estimate est and
	// returns the new estimate.
	Update(est float64, s Sample) float64
}

// ExpFilter tracks the measured level with a first-order exponential
// filter: est' = est + Alpha·(Level − est). A positively detected empty
// queue snaps the estimate to zero, so the filter does not hold
// phantom vehicles after a drain.
type ExpFilter struct {
	// Alpha is the filter gain in (0, 1]; 1 passes levels through.
	Alpha float64
}

// Name implements Estimator.
func (f ExpFilter) Name() string { return fmt.Sprintf("exp:%.2f", f.Alpha) }

// Update implements Estimator.
func (f ExpFilter) Update(est float64, s Sample) float64 {
	if s.Empty {
		return 0
	}
	return est + f.Alpha*(s.Level-est)
}

// CountIntegrator integrates measured flow deltas into a running count,
// the classic queue estimator for crossing detectors: est' = est +
// Delta, clamped to [0, Max]. Missed events make it drift (the lost
// deltas are never recovered); a positive empty-queue detection
// resynchronizes it to zero.
type CountIntegrator struct {
	// Max bounds the estimate from above; 0 leaves it unbounded.
	Max float64
}

// Name implements Estimator.
func (CountIntegrator) Name() string { return "count" }

// Update implements Estimator.
func (c CountIntegrator) Update(est float64, s Sample) float64 {
	if s.Empty {
		return 0
	}
	est += s.Delta
	if est < 0 {
		est = 0
	}
	if c.Max > 0 && est > c.Max {
		est = c.Max
	}
	return est
}

var (
	_ Estimator = ExpFilter{}
	_ Estimator = CountIntegrator{}
)
