package sensing

import (
	"math"
	"testing"

	"utilbp/internal/signal"
)

func truthObs(queue, inTransit, approach, outQueue, outOcc int) signal.LinkObs {
	return signal.LinkObs{
		Queue: queue, InTransit: inTransit, ApproachQueue: approach,
		OutQueue: outQueue, OutOccupancy: outOcc,
		OutCapacity: 120, InCapacity: 120, Mu: 0.5,
	}
}

func TestPerfectCopiesTruth(t *testing.T) {
	truth := truthObs(7, 3, 12, 5, 40)
	var obs signal.LinkObs
	Perfect{}.SenseLink(0, &truth, &obs, 4)
	if obs != truth {
		t.Fatalf("Perfect obs %+v != truth %+v", obs, truth)
	}
}

func TestLoopDetectorTracksAndSaturates(t *testing.T) {
	ld := NewLoopDetector(LoopDetectorOptions{Saturation: 10})
	ld.Prepare(4)
	ld.Reseed(3)
	var obs signal.LinkObs

	truth := truthObs(6, 2, 6, 0, 0)
	ld.SenseLink(1, &truth, &obs, 0)
	if obs.Queue != 6 || obs.ApproachQueue != 6 {
		t.Fatalf("loop should count 6 crossings exactly, got %+v", obs)
	}
	if obs.InTransit != 0 {
		t.Fatalf("stop-bar detector saw in-transit vehicles: %+v", obs)
	}

	// Growth beyond the zone saturates at 10.
	truth = truthObs(25, 0, 25, 0, 0)
	ld.SenseLink(1, &truth, &obs, 1)
	if obs.Queue != 10 {
		t.Fatalf("saturated queue = %d, want 10", obs.Queue)
	}

	// A positive empty detection resynchronizes to zero.
	truth = truthObs(0, 0, 0, 0, 0)
	ld.SenseLink(1, &truth, &obs, 2)
	if obs.Queue != 0 {
		t.Fatalf("empty resync queue = %d, want 0", obs.Queue)
	}
}

func TestLoopDetectorFailureDrifts(t *testing.T) {
	// FailProb 1: every event is missed, so the estimate never moves off
	// zero no matter how the truth grows.
	ld := NewLoopDetector(LoopDetectorOptions{FailProb: 0.999999})
	ld.Prepare(1)
	ld.Reseed(5)
	var obs signal.LinkObs
	for step := 0; step < 10; step++ {
		truth := truthObs(step+1, 0, step+1, 0, 0)
		ld.SenseLink(0, &truth, &obs, step)
	}
	if obs.Queue != 0 {
		t.Fatalf("all-failing detector reported %d, want 0 (permanent drift)", obs.Queue)
	}
}

func TestConnectedVehicleFullPenetrationExact(t *testing.T) {
	// Rate 1, no noise, alpha 1: the sensor is a pass-through.
	cv := NewConnectedVehicle(ConnectedVehicleOptions{Rate: 1, Estimator: ExpFilter{Alpha: 1}})
	cv.Prepare(2)
	cv.Reseed(9)
	truth := truthObs(8, 3, 11, 4, 77)
	var obs signal.LinkObs
	cv.SenseLink(0, &truth, &obs, 0)
	if obs.Queue != 8 || obs.InTransit != 3 || obs.ApproachQueue != 11 || obs.OutQueue != 4 || obs.OutOccupancy != 77 {
		t.Fatalf("full-penetration pass-through diverged: %+v", obs)
	}
}

func TestConnectedVehicleUnbiased(t *testing.T) {
	cv := NewConnectedVehicle(ConnectedVehicleOptions{Rate: 0.3, Estimator: ExpFilter{Alpha: 1}})
	cv.Prepare(1)
	cv.Reseed(11)
	truth := truthObs(30, 0, 30, 0, 0)
	var obs signal.LinkObs
	sum := 0.0
	const events = 4000
	for step := 0; step < events; step++ {
		cv.SenseLink(0, &truth, &obs, step)
		sum += float64(obs.Queue)
	}
	mean := sum / events
	if math.Abs(mean-30) > 1 {
		t.Fatalf("scaled penetration sampling is biased: mean %.2f, want ~30", mean)
	}
}

func TestConnectedVehicleLatencyHoldsReports(t *testing.T) {
	cv := NewConnectedVehicle(ConnectedVehicleOptions{Rate: 1, LatencySteps: 5, Estimator: ExpFilter{Alpha: 1}})
	cv.Prepare(1)
	cv.Reseed(1)
	var obs signal.LinkObs
	truth := truthObs(4, 0, 4, 0, 0)
	cv.SenseLink(0, &truth, &obs, 0) // first report is accepted
	if obs.Queue != 4 {
		t.Fatalf("first report rejected: %+v", obs)
	}
	truth = truthObs(9, 0, 9, 0, 0)
	cv.SenseLink(0, &truth, &obs, 3) // inside the latency window: held
	if obs.Queue != 4 {
		t.Fatalf("report inside latency window accepted: %+v", obs)
	}
	cv.SenseLink(0, &truth, &obs, 5) // window over: the new level lands
	if obs.Queue != 9 {
		t.Fatalf("report after latency window rejected: %+v", obs)
	}
}

func TestSensorReseedReplays(t *testing.T) {
	run := func(s Sensor) []int {
		s.Prepare(3)
		s.Reseed(42)
		var got []int
		var obs signal.LinkObs
		for step := 0; step < 50; step++ {
			truth := truthObs((step*7)%13, step%3, (step*7)%13+2, step%5, step%9)
			s.SenseLink(step%3, &truth, &obs, step)
			got = append(got, obs.Queue, obs.ApproachQueue, obs.OutQueue, obs.OutOccupancy)
		}
		return got
	}
	sensors := []Sensor{
		NewLoopDetector(LoopDetectorOptions{FailProb: 0.2}),
		NewConnectedVehicle(ConnectedVehicleOptions{Rate: 0.4, NoiseStd: 1.5}),
	}
	for _, s := range sensors {
		first := run(s)
		second := run(s) // Reseed inside run rewinds the same instance
		if len(first) != len(second) {
			t.Fatalf("%s: replay lengths diverged", s.Name())
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("%s: replay diverged at %d: %d vs %d", s.Name(), i, first[i], second[i])
			}
		}
	}
}

func TestEstimators(t *testing.T) {
	f := ExpFilter{Alpha: 0.5}
	if got := f.Update(10, Sample{Level: 20}); got != 15 {
		t.Errorf("ExpFilter.Update(10, 20) = %v, want 15", got)
	}
	if got := f.Update(10, Sample{Level: 20, Empty: true}); got != 0 {
		t.Errorf("ExpFilter empty snap = %v, want 0", got)
	}
	c := CountIntegrator{Max: 12}
	if got := c.Update(10, Sample{Delta: 5}); got != 12 {
		t.Errorf("CountIntegrator clamp = %v, want 12", got)
	}
	if got := c.Update(2, Sample{Delta: -5}); got != 0 {
		t.Errorf("CountIntegrator floor = %v, want 0", got)
	}
	if got := c.Update(7, Sample{Delta: 3, Empty: true}); got != 0 {
		t.Errorf("CountIntegrator resync = %v, want 0", got)
	}
}

func TestSpecParseAndString(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"perfect", Spec{}},
		{"loop", Loop()},
		{"loop:40", Spec{Kind: KindLoop, Saturation: 40}},
		{"cv:0.3", CV(0.3)},
		{"CV:1", CV(1)},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// String must round-trip through ParseSpec.
		back, err := ParseSpec(got.String())
		if err != nil || back != got {
			t.Errorf("round trip of %q via %q failed: %+v, %v", c.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{"cv", "cv:0", "cv:1.5", "cv:x", "loop:-3", "radar", "perfect:1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecNewAndValidate(t *testing.T) {
	for _, spec := range []Spec{{}, Loop(), CV(0.5), {Kind: KindLoop, FailProb: 0.1, Saturation: -1}} {
		s, err := spec.New()
		if err != nil {
			t.Errorf("Spec %+v rejected: %v", spec, err)
			continue
		}
		if s == nil {
			t.Errorf("Spec %+v built nil sensor", spec)
		}
	}
	for _, spec := range []Spec{
		CV(0), CV(-0.2), CV(2),
		{Kind: KindConnectedVehicle, Rate: 0.5, NoiseStd: -1},
		{Kind: KindConnectedVehicle, Rate: 0.5, LatencySteps: -1},
		{Kind: KindConnectedVehicle, Rate: 0.5, FilterAlpha: 2},
		{Kind: KindLoop, FailProb: 1},
		{Kind: Kind(99)},
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("Spec %+v validated", spec)
		}
	}
}

func TestSensingStreamIndependentOfLabelSiblings(t *testing.T) {
	// The sensing stream must differ from the demand and router streams
	// of the same seed (independent named splits of one root).
	root := sensingStream(7)
	if root == nil {
		t.Fatal("nil sensing stream")
	}
	a, b := sensingStream(7), sensingStream(7)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("sensing stream is not a pure function of the seed")
		}
	}
}
