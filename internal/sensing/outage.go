package sensing

import "utilbp/internal/signal"

// OutageMode selects what a dead detector reports during an outage
// window.
type OutageMode int

const (
	// OutageBlank zeroes the dynamic observation fields for the window:
	// the detector feed is gone and the controller sees empty links.
	OutageBlank OutageMode = iota
	// OutageFreeze holds the last pre-outage reading for the window: the
	// detector stopped updating but its final report is still latched.
	OutageFreeze
)

// String renders the mode in the event-spec syntax ("blank"/"freeze").
func (m OutageMode) String() string {
	if m == OutageFreeze {
		return "freeze"
	}
	return "blank"
}

// OutageWindow is one sensing blackout: during mini-slots
// [StartStep, EndStep) the links selected by Links (indexed by the
// engine's dense global link index) stop reporting, per Mode.
type OutageWindow struct {
	StartStep, EndStep int
	Mode               OutageMode
	// Links marks the affected links in the engine's dense global link
	// index space. Indexes beyond its length are unaffected.
	Links []bool
}

// covers reports whether the window suppresses the link at the step.
func (w *OutageWindow) covers(link, step int) bool {
	return step >= w.StartStep && step < w.EndStep &&
		link < len(w.Links) && w.Links[link]
}

// outageSensor decorates an inner sensor with scheduled blackout
// windows. It keeps no state and draws no randomness of its own — all
// stochastic behavior stays on the inner sensor's dedicated sensing RNG
// stream — so wrapping never perturbs the readings outside the windows.
type outageSensor struct {
	inner   Sensor
	windows []OutageWindow
}

// Outage wraps a sensor so the configured windows blank or freeze their
// links. The inner sensor must be non-nil; callers modeling an outage
// over perfect observation wrap Perfect{} (the engine's sensor-free fast
// path cannot express an outage, since nothing intercepts the truth).
func Outage(inner Sensor, windows []OutageWindow) Sensor {
	return &outageSensor{inner: inner, windows: windows}
}

// Name implements Sensor.
func (o *outageSensor) Name() string { return o.inner.Name() + "+outage" }

// Prepare implements Sensor by forwarding to the inner sensor.
func (o *outageSensor) Prepare(nlinks int) { o.inner.Prepare(nlinks) }

// Reseed implements Sensor by forwarding to the inner sensor; the
// windows themselves are deterministic schedule state.
func (o *outageSensor) Reseed(seed uint64) { o.inner.Reseed(seed) }

// SenseLink implements Sensor. A link inside an active window never
// reaches the inner sensor: blank zeroes the dynamic fields, freeze
// leaves the latched observation untouched. Suppressed sensing events
// are dropped entirely — like a real dead detector, the inner model's
// per-link state (count snapshots, report clocks) does not advance and
// resynchronizes from scratch when the feed returns.
func (o *outageSensor) SenseLink(link int, truth, obs *signal.LinkObs, step int) {
	for i := range o.windows {
		if o.windows[i].covers(link, step) {
			if o.windows[i].Mode == OutageBlank {
				obs.Queue = 0
				obs.InTransit = 0
				obs.ApproachQueue = 0
				obs.OutQueue = 0
				obs.OutOccupancy = 0
			}
			return
		}
	}
	o.inner.SenseLink(link, truth, obs, step)
}

var _ Sensor = (*outageSensor)(nil)
