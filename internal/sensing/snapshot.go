package sensing

import (
	"fmt"

	"utilbp/internal/snap"
)

// SnapshotState implements snap.Snapshotter: the sensing RNG stream and
// the per-link detector state for the prepared link count. The links
// slice may be over-sized from serving a larger engine earlier; only the
// prepared prefix is live, so only it is captured — the snapshot bytes
// stay a pure function of observable sensor state.
func (ld *LoopDetector) SnapshotState(w *snap.Writer) {
	st := ld.src.State()
	for _, v := range st {
		w.Uint64(v)
	}
	w.Int(ld.n)
	for i := 0; i < ld.n; i++ {
		l := &ld.links[i]
		for f := 0; f < int(numFields); f++ {
			w.Float64(l.est[f])
		}
		for f := 0; f < int(numFields); f++ {
			w.Int32(l.last[f])
		}
	}
}

// RestoreState implements snap.Snapshotter.
func (ld *LoopDetector) RestoreState(r *snap.Reader) error {
	var st [4]uint64
	for i := range st {
		st[i] = r.Uint64()
	}
	if r.Err() != nil {
		return r.Err()
	}
	ld.src.SetState(st)
	n := r.Int()
	if r.Err() == nil && n != ld.n {
		return fmt.Errorf("sensing: snapshot holds %d loop-detector links, sensor prepared %d", n, ld.n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		l := &ld.links[i]
		for f := 0; f < int(numFields); f++ {
			l.est[f] = r.Float64()
		}
		for f := 0; f < int(numFields); f++ {
			l.last[f] = r.Int32()
		}
	}
	return r.Err()
}

// SnapshotState implements snap.Snapshotter: the sensing RNG stream and
// the per-link probe state (running estimates plus the last accepted
// report step) for the prepared link count.
func (cv *ConnectedVehicle) SnapshotState(w *snap.Writer) {
	st := cv.src.State()
	for _, v := range st {
		w.Uint64(v)
	}
	w.Int(cv.n)
	for i := 0; i < cv.n; i++ {
		l := &cv.links[i]
		for f := 0; f < int(numFields); f++ {
			w.Float64(l.est[f])
		}
		w.Int32(l.lastReport)
	}
}

// RestoreState implements snap.Snapshotter.
func (cv *ConnectedVehicle) RestoreState(r *snap.Reader) error {
	var st [4]uint64
	for i := range st {
		st[i] = r.Uint64()
	}
	if r.Err() != nil {
		return r.Err()
	}
	cv.src.SetState(st)
	n := r.Int()
	if r.Err() == nil && n != cv.n {
		return fmt.Errorf("sensing: snapshot holds %d connected-vehicle links, sensor prepared %d", n, cv.n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		l := &cv.links[i]
		for f := 0; f < int(numFields); f++ {
			l.est[f] = r.Float64()
		}
		l.lastReport = r.Int32()
	}
	return r.Err()
}

// SnapshotState implements snap.Snapshotter by delegating to the inner
// sensor: the outage windows are deterministic schedule configuration,
// not run state.
func (o *outageSensor) SnapshotState(w *snap.Writer) {
	if s, ok := o.inner.(snap.Snapshotter); ok {
		s.SnapshotState(w)
	}
}

// RestoreState implements snap.Snapshotter.
func (o *outageSensor) RestoreState(r *snap.Reader) error {
	if s, ok := o.inner.(snap.Snapshotter); ok {
		return s.RestoreState(r)
	}
	if r.Len() != 0 {
		return fmt.Errorf("sensing: outage wrapper: %d bytes of state for a stateless inner sensor", r.Len())
	}
	return nil
}
