package sensing

import "testing"

// FuzzParseSpec fuzzes the ParseSpec/Spec.String round trip: any input
// ParseSpec accepts must validate, render through String, re-parse, and
// reach a fixed point — the property the sweep axes and the workload
// registry rely on when they treat sensor specs as comparable, printable
// values. The seed corpus in testdata/fuzz/FuzzParseSpec covers every
// CLI form plus near-miss inputs.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"perfect", "", "loop", "loop:50", "loop:60", "loop:1", "cv:0.3",
		"cv:1", "cv:0.125", "cv:1e-3", "CV:0.5", "LOOP", " loop ",
		"cv:", "loop:", "cv:0", "cv:2", "loop:-1", "loop:0", "perfect:x",
		"cv:0.30000000000000004", "bogus", "cv:NaN", "cv:+Inf",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, arg string) {
		spec, err := ParseSpec(arg)
		if err != nil {
			return // rejected inputs are out of contract
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid spec %+v: %v", arg, spec, err)
		}
		rendered := spec.String()
		back, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(%q) -> %+v renders %q, which does not re-parse: %v", arg, spec, rendered, err)
		}
		// Kind and the CLI-expressible parameters must survive the round
		// trip; the rendering itself must be a fixed point. (Structural
		// equality is deliberately not required: "loop:60" normalizes to
		// "loop" because 60 is the default saturation — same sensor,
		// canonical spelling.)
		if back.Kind != spec.Kind {
			t.Fatalf("round trip of %q changed kind: %+v -> %+v", arg, spec, back)
		}
		if back.Rate != spec.Rate {
			t.Fatalf("round trip of %q changed rate: %v -> %v", arg, spec.Rate, back.Rate)
		}
		normSat := func(s Spec) int {
			if s.Kind != KindLoop || s.Saturation == 0 {
				return DefaultSaturation
			}
			return s.Saturation
		}
		if normSat(back) != normSat(spec) {
			t.Fatalf("round trip of %q changed saturation: %+v -> %+v", arg, spec, back)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("String is not a fixed point for %q: %q -> %q", arg, rendered, again)
		}
	})
}
