package stats

import (
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
)

// rotCtrl rotates phases every green slots with amber slots between.
type rotCtrl struct{ green, amber, phases int }

func (r rotCtrl) Name() string { return "rot" }
func (r rotCtrl) Decide(obs *signal.Obs) signal.Phase {
	seg := r.green + r.amber
	pos := obs.Step % (seg * r.phases)
	if pos%seg < r.green {
		return signal.Phase(pos/seg + 1)
	}
	return signal.Amber
}

func testEngine(t *testing.T) (*sim.Engine, *network.GridNetwork) {
	t.Helper()
	spec := network.DefaultGridSpec()
	spec.Rows, spec.Cols = 1, 1
	g, err := network.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{
		Net: g.Network,
		Controllers: signal.FactoryFunc{Label: "rot", Build: func(info signal.JunctionInfo) (signal.Controller, error) {
			return rotCtrl{green: 5, amber: 2, phases: info.NumPhases()}, nil
		}},
		Demand: sim.NewPoissonDemand(rng.New(3), sim.ConstantRate(0.3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, g
}

func TestPhaseRecorderAndAnalyze(t *testing.T) {
	e, g := testEngine(t)
	rec := NewPhaseRecorder(g.JunctionAt(0, 0))
	e.AddHooks(rec.Hooks())
	e.Run(28) // exactly one full cycle of 4 phases x (5 green + 2 amber)
	if len(rec.Phases) != 28 {
		t.Fatalf("recorded %d phases, want 28", len(rec.Phases))
	}
	st := rec.Analyze()
	if st.AmberSlots != 8 {
		t.Errorf("amber slots = %d, want 8", st.AmberSlots)
	}
	for p := signal.Phase(1); p <= 4; p++ {
		if st.GreenSlots[p] != 5 {
			t.Errorf("green[%v] = %d, want 5", p, st.GreenSlots[p])
		}
	}
	// 4 green runs of length 5.
	if st.MeanGreenRun != 5 || st.MaxGreenRun != 5 {
		t.Errorf("green runs: mean %v max %d", st.MeanGreenRun, st.MaxGreenRun)
	}
	// green->amber->green... : 8 boundaries in 28 slots (4 green starts
	// after amber + 4 amber starts).
	if st.Transitions != 7 {
		t.Errorf("transitions = %d, want 7", st.Transitions)
	}
}

func TestPhaseRecorderFiltersJunction(t *testing.T) {
	e, _ := testEngine(t)
	rec := NewPhaseRecorder(network.NodeID(999))
	e.AddHooks(rec.Hooks())
	e.Run(10)
	if len(rec.Phases) != 0 {
		t.Fatal("recorded phases for the wrong junction")
	}
}

func TestQueueSeries(t *testing.T) {
	e, g := testEngine(t)
	road := g.Entries(network.North)[0]
	qs := NewQueueSeries(road, 4)
	e.AddHooks(qs.Hooks())
	e.Run(100)
	if len(qs.Values) != 25 {
		t.Fatalf("samples = %d, want 25", len(qs.Values))
	}
	if qs.Times[1]-qs.Times[0] != 4 {
		t.Errorf("stride wrong: %v", qs.Times[:2])
	}
	if qs.Max() < 0 || qs.Mean() < 0 {
		t.Error("negative queue summary")
	}
	// Stride is clamped to >= 1.
	if NewQueueSeries(road, 0).Every != 1 {
		t.Error("stride clamp failed")
	}
}

func TestOccupancySeriesAndThroughput(t *testing.T) {
	e, _ := testEngine(t)
	oc := NewOccupancySeries(1)
	tc := NewThroughputCounter(50)
	e.AddHooks(oc.Hooks())
	e.AddHooks(tc.Hooks())
	e.Run(300)
	if len(oc.Values) != 300 {
		t.Fatalf("occupancy samples = %d", len(oc.Values))
	}
	tot := e.Totals()
	if oc.Final() != tot.Entered-tot.Exited {
		t.Errorf("final occupancy %d != %d", oc.Final(), tot.Entered-tot.Exited)
	}
	if len(tc.Windows) != 6 {
		t.Errorf("windows = %d, want 6", len(tc.Windows))
	}
	if tc.Total() != tot.Exited {
		t.Errorf("throughput total %d != exited %d", tc.Total(), tot.Exited)
	}
	if NewOccupancySeries(0).Every != 1 || NewThroughputCounter(0).WindowSlots != 1 {
		t.Error("clamps failed")
	}
}

func TestQueueSeriesMeanMaxEmpty(t *testing.T) {
	qs := NewQueueSeries(0, 1)
	if qs.Mean() != 0 || qs.Max() != 0 {
		t.Error("empty series summaries not 0")
	}
}
