// Package stats aggregates simulation output into the quantities the
// paper reports: average queuing time per vehicle (Table III, Figure 2),
// phase timelines (Figures 3-4) and queue-length series (Figure 5), plus
// distributional summaries used by the wider test and benchmark suite.
package stats

import (
	"math"
	"sort"

	"utilbp/internal/vehicle"
)

// WaitSummary condenses per-vehicle queueing times for one run.
type WaitSummary struct {
	// Spawned counts all generated vehicles; Exited those that left the
	// network before the horizon.
	Spawned, Exited int
	// MeanWait is the average queuing time over all spawned vehicles,
	// counting the wait accrued so far by vehicles still in the network
	// (call Engine.FinalizeWaits first). This is the paper's "average
	// queuing time of a vehicle in the entire network".
	MeanWait float64
	// MeanWaitExited averages over exited vehicles only.
	MeanWaitExited float64
	// MaxWait is the worst per-vehicle queuing time.
	MaxWait float64
	// P50, P90 and P99 are queueing-time percentiles over all vehicles.
	P50, P90, P99 float64
	// MeanTripTime averages entry-to-exit times of exited vehicles.
	MeanTripTime float64
	// CompletionRate is Exited/Spawned (1 when nothing spawned).
	CompletionRate float64
}

// Summarize computes a WaitSummary over a vehicle arena.
func Summarize(vehs []vehicle.Vehicle) WaitSummary {
	s := WaitSummary{Spawned: len(vehs), CompletionRate: 1}
	if len(vehs) == 0 {
		return s
	}
	waits := make([]float64, 0, len(vehs))
	var total, totalExited, totalTrip float64
	for i := range vehs {
		v := &vehs[i]
		waits = append(waits, v.QueueWait)
		total += v.QueueWait
		if v.QueueWait > s.MaxWait {
			s.MaxWait = v.QueueWait
		}
		if v.Done() {
			s.Exited++
			totalExited += v.QueueWait
			totalTrip += v.TripTime()
		}
	}
	s.MeanWait = total / float64(len(vehs))
	if s.Exited > 0 {
		s.MeanWaitExited = totalExited / float64(s.Exited)
		s.MeanTripTime = totalTrip / float64(s.Exited)
	}
	s.CompletionRate = float64(s.Exited) / float64(s.Spawned)
	sort.Float64s(waits)
	s.P50 = percentileSorted(waits, 50)
	s.P90 = percentileSorted(waits, 90)
	s.P99 = percentileSorted(waits, 99)
	return s
}

// SummarizeArena computes a WaitSummary directly over the engine's
// structure-of-arrays vehicle arena (DESIGN.md §16), streaming the
// queue-wait and lifecycle columns without materializing []Vehicle
// rows. It is the arena-native counterpart of Summarize; the two agree
// exactly on the same state.
func SummarizeArena(a *vehicle.Arena) WaitSummary {
	n := a.Len()
	s := WaitSummary{Spawned: n, CompletionRate: 1}
	if n == 0 {
		return s
	}
	waits := make([]float64, 0, n)
	var total, totalExited, totalTrip float64
	for i := 0; i < n; i++ {
		id := vehicle.ID(i)
		w := a.QueueWait(id)
		waits = append(waits, w)
		total += w
		if w > s.MaxWait {
			s.MaxWait = w
		}
		if a.Done(id) {
			s.Exited++
			totalExited += w
			totalTrip += a.TripTime(id)
		}
	}
	s.MeanWait = total / float64(n)
	if s.Exited > 0 {
		s.MeanWaitExited = totalExited / float64(s.Exited)
		s.MeanTripTime = totalTrip / float64(s.Exited)
	}
	s.CompletionRate = float64(s.Exited) / float64(s.Spawned)
	sort.Float64s(waits)
	s.P50 = percentileSorted(waits, 50)
	s.P90 = percentileSorted(waits, 90)
	s.P99 = percentileSorted(waits, 99)
	return s
}

// percentileSorted returns the p-th percentile (0-100) of an ascending
// slice using linear interpolation; it returns 0 for empty input.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	switch {
	case n == 0:
		return 0
	case n == 1:
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width-bin histogram of queueing times.
type Histogram struct {
	// BinWidth is the width of each bin in seconds.
	BinWidth float64
	// Counts[i] counts values in [i*BinWidth, (i+1)*BinWidth); the last
	// bin absorbs everything beyond.
	Counts []int
	// Overflow counts values beyond the last bin.
	Overflow int
	total    int
}

// NewHistogram builds a histogram with the given bin width and count.
func NewHistogram(binWidth float64, bins int) *Histogram {
	if binWidth <= 0 {
		binWidth = 1
	}
	if bins <= 0 {
		bins = 1
	}
	return &Histogram{BinWidth: binWidth, Counts: make([]int, bins)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	h.total++
	if v < 0 {
		v = 0
	}
	bin := int(v / h.BinWidth)
	if bin >= len(h.Counts) {
		h.Overflow++
		return
	}
	h.Counts[bin]++
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of values in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 || i < 0 || i >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
