package stats

import (
	"math"
	"testing"
	"testing/quick"

	"utilbp/internal/vehicle"
)

func veh(wait float64, entered, exited float64) vehicle.Vehicle {
	return vehicle.Vehicle{QueueWait: wait, EnteredAt: entered, ExitedAt: exited}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Spawned != 0 || s.MeanWait != 0 || s.CompletionRate != 1 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeBasics(t *testing.T) {
	vehs := []vehicle.Vehicle{
		veh(10, 0, 100),
		veh(20, 0, 120),
		veh(30, 0, vehicle.Unset), // still in network
		veh(40, vehicle.Unset, vehicle.Unset),
	}
	s := Summarize(vehs)
	if s.Spawned != 4 || s.Exited != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.MeanWait != 25 {
		t.Errorf("MeanWait = %v, want 25", s.MeanWait)
	}
	if s.MeanWaitExited != 15 {
		t.Errorf("MeanWaitExited = %v, want 15", s.MeanWaitExited)
	}
	if s.MaxWait != 40 {
		t.Errorf("MaxWait = %v", s.MaxWait)
	}
	if s.MeanTripTime != 110 {
		t.Errorf("MeanTripTime = %v, want 110", s.MeanTripTime)
	}
	if s.CompletionRate != 0.5 {
		t.Errorf("CompletionRate = %v", s.CompletionRate)
	}
}

func TestSummarizePercentilesOrdered(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vehs := make([]vehicle.Vehicle, len(raw))
		for i, r := range raw {
			vehs[i] = veh(float64(r), 0, vehicle.Unset)
		}
		s := Summarize(vehs)
		return s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.MaxWait+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileSorted(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := percentileSorted(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if percentileSorted(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
	if percentileSorted([]float64{7}, 90) != 7 {
		t.Error("single percentile wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 3)
	for _, v := range []float64{0, 5, 12, 25, 99, -3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	// bins: [0,10): {0,5,-3 clamped} = 3; [10,20): {12} = 1; [20,30): {25} = 1; overflow: {99}.
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Overflow != 1 {
		t.Errorf("counts = %v overflow %d", h.Counts, h.Overflow)
	}
	if got := h.Fraction(0); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("fraction = %v", got)
	}
	if h.Fraction(-1) != 0 || h.Fraction(5) != 0 {
		t.Error("out-of-range fraction not 0")
	}
	deg := NewHistogram(0, 0)
	deg.Add(0.5)
	if deg.Total() != 1 {
		t.Error("degenerate histogram unusable")
	}
}
