package stats

import (
	"utilbp/internal/network"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
	"utilbp/internal/vehicle"
)

// PhaseRecorder captures the phase applied at one junction every
// mini-slot — the raw data of the paper's Figures 3 and 4.
type PhaseRecorder struct {
	// Junction is the node whose controller is recorded.
	Junction network.NodeID
	// Phases[k] is the phase applied during mini-slot k.
	Phases []signal.Phase
}

// NewPhaseRecorder records the given junction.
func NewPhaseRecorder(junction network.NodeID) *PhaseRecorder {
	return &PhaseRecorder{Junction: junction}
}

// Hooks returns the sim hooks feeding the recorder.
func (r *PhaseRecorder) Hooks() sim.Hooks {
	return sim.Hooks{
		Phase: func(j network.NodeID, step int, p signal.Phase) {
			if j == r.Junction {
				r.Phases = append(r.Phases, p)
			}
		},
	}
}

// PhaseStats summarizes a phase timeline.
type PhaseStats struct {
	// Transitions counts changes of applied phase (amber included as a
	// distinct value, so green->amber->green counts twice).
	Transitions int
	// AmberSlots counts mini-slots spent in the transition phase c0;
	// GreenSlots[p] the slots spent in control phase p (1-based key).
	AmberSlots int
	GreenSlots map[signal.Phase]int
	// MeanGreenRun is the average length in slots of a maximal run of
	// one control phase (the paper's varying phase lengths).
	MeanGreenRun float64
	// MaxGreenRun is the longest such run.
	MaxGreenRun int
}

// Analyze computes PhaseStats from the recorded timeline.
func (r *PhaseRecorder) Analyze() PhaseStats {
	s := PhaseStats{GreenSlots: make(map[signal.Phase]int)}
	runs := 0
	runLen := 0
	totalRun := 0
	var prev signal.Phase = -1
	for _, p := range r.Phases {
		if p == signal.Amber {
			s.AmberSlots++
		} else {
			s.GreenSlots[p]++
		}
		if p != prev && prev != -1 {
			s.Transitions++
		}
		if p != signal.Amber {
			if p == prev {
				runLen++
			} else {
				if runLen > 0 {
					runs++
					totalRun += runLen
					if runLen > s.MaxGreenRun {
						s.MaxGreenRun = runLen
					}
				}
				runLen = 1
			}
		} else if runLen > 0 {
			runs++
			totalRun += runLen
			if runLen > s.MaxGreenRun {
				s.MaxGreenRun = runLen
			}
			runLen = 0
		}
		prev = p
	}
	if runLen > 0 {
		runs++
		totalRun += runLen
		if runLen > s.MaxGreenRun {
			s.MaxGreenRun = runLen
		}
	}
	if runs > 0 {
		s.MeanGreenRun = float64(totalRun) / float64(runs)
	}
	return s
}

// QueueSeries samples the total queued vehicles on one road every Every
// mini-slots — the data of the paper's Figure 5.
type QueueSeries struct {
	// Road is the sampled approach; Every the sampling stride in slots.
	Road  network.RoadID
	Every int
	// Times and Values are the sample instants (seconds) and queue
	// lengths.
	Times  []float64
	Values []int
}

// NewQueueSeries samples road every stride slots (minimum 1).
func NewQueueSeries(road network.RoadID, stride int) *QueueSeries {
	if stride < 1 {
		stride = 1
	}
	return &QueueSeries{Road: road, Every: stride}
}

// Hooks returns the sim hooks feeding the series.
func (q *QueueSeries) Hooks() sim.Hooks {
	return sim.Hooks{
		Step: func(e *sim.Engine, step int) {
			if step%q.Every != 0 {
				return
			}
			q.Times = append(q.Times, float64(step)*e.DeltaT())
			q.Values = append(q.Values, e.ApproachQueue(q.Road))
		},
	}
}

// Mean returns the average sampled queue length.
func (q *QueueSeries) Mean() float64 {
	if len(q.Values) == 0 {
		return 0
	}
	total := 0
	for _, v := range q.Values {
		total += v
	}
	return float64(total) / float64(len(q.Values))
}

// Max returns the largest sampled queue length.
func (q *QueueSeries) Max() int {
	best := 0
	for _, v := range q.Values {
		if v > best {
			best = v
		}
	}
	return best
}

// OccupancySeries samples total in-network vehicle count, a stability
// indicator (bounded queues = stable in the back-pressure sense).
type OccupancySeries struct {
	Every  int
	Times  []float64
	Values []int
}

// NewOccupancySeries samples every stride slots (minimum 1).
func NewOccupancySeries(stride int) *OccupancySeries {
	if stride < 1 {
		stride = 1
	}
	return &OccupancySeries{Every: stride}
}

// Hooks returns the sim hooks feeding the series.
func (o *OccupancySeries) Hooks() sim.Hooks {
	return sim.Hooks{
		Step: func(e *sim.Engine, step int) {
			if step%o.Every != 0 {
				return
			}
			tot := e.Totals()
			o.Times = append(o.Times, float64(step)*e.DeltaT())
			o.Values = append(o.Values, tot.Entered-tot.Exited)
		},
	}
}

// Final returns the last sampled value (0 when empty).
func (o *OccupancySeries) Final() int {
	if len(o.Values) == 0 {
		return 0
	}
	return o.Values[len(o.Values)-1]
}

// ThroughputCounter counts exits per fixed window, giving a served-flow
// series.
type ThroughputCounter struct {
	// WindowSlots is the window length in mini-slots.
	WindowSlots int
	// Windows[i] counts exits during window i.
	Windows []int
	exits   int
}

// NewThroughputCounter counts exits in windows of the given slot count.
func NewThroughputCounter(windowSlots int) *ThroughputCounter {
	if windowSlots < 1 {
		windowSlots = 1
	}
	return &ThroughputCounter{WindowSlots: windowSlots}
}

// Hooks returns the sim hooks feeding the counter.
func (t *ThroughputCounter) Hooks() sim.Hooks {
	return sim.Hooks{
		Exit: func(*vehicle.Vehicle) { t.exits++ },
		Step: func(_ *sim.Engine, step int) {
			if (step+1)%t.WindowSlots == 0 {
				t.Windows = append(t.Windows, t.exits)
				t.exits = 0
			}
		},
	}
}

// Total returns the number of exits across all closed windows plus the
// open one.
func (t *ThroughputCounter) Total() int {
	total := t.exits
	for _, w := range t.Windows {
		total += w
	}
	return total
}
