// Package trace exports simulation series as CSV for external plotting —
// the figures of the paper are regenerated from these files — and
// substep timelines as Chrome trace-event JSON (WriteTraceEvents) for
// chrome://tracing / Perfetto.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"utilbp/internal/signal"
	"utilbp/internal/vehicle"
)

// WritePhaseTimeline writes a (time_s, phase) CSV of a phase timeline,
// the data behind Figures 3 and 4. dt is the mini-slot length in seconds.
func WritePhaseTimeline(w io.Writer, dt float64, phases []signal.Phase) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "phase"}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for k, p := range phases {
		rec := []string{
			strconv.FormatFloat(float64(k)*dt, 'f', -1, 64),
			strconv.Itoa(int(p)),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeries writes aligned numeric columns as CSV. Column slices must
// share one length; headers names them.
func WriteSeries(w io.Writer, headers []string, cols ...[]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("trace: %d headers for %d columns", len(headers), len(cols))
	}
	n := -1
	for i, c := range cols {
		if n == -1 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("trace: column %q has %d rows, want %d", headers[i], len(c), n)
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	row := make([]string, len(cols))
	for r := 0; r < n; r++ {
		for c := range cols {
			row[c] = strconv.FormatFloat(cols[c][r], 'f', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTraceEvents writes a substep timeline as a Chrome trace-event
// JSON array of complete ("ph":"X") events, loadable in chrome://tracing
// or Perfetto. spans[s][i] is the duration of substep s at the i-th
// recorded step (sim.TraceLog layout: names and spans index together,
// all span slices share one length). Substeps of one step are laid out
// back to back on a single track (pid 1, tid 1) with timestamps
// accumulated from zero, and each event carries the step index in its
// args; timestamps and durations are microseconds with nanosecond
// fraction, per the trace-event format.
func WriteTraceEvents(w io.Writer, names []string, spans [][]time.Duration) error {
	if len(names) != len(spans) {
		return fmt.Errorf("trace: %d names for %d span tracks", len(names), len(spans))
	}
	n := -1
	for s, sp := range spans {
		if n == -1 {
			n = len(sp)
		} else if len(sp) != n {
			return fmt.Errorf("trace: span track %q has %d steps, want %d", names[s], len(sp), n)
		}
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	us := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d.Nanoseconds())/1e3, 'f', 3, 64)
	}
	var ts time.Duration
	first := true
	for i := 0; i < n; i++ {
		for s := range spans {
			sep := ",\n"
			if first {
				sep = ""
				first = false
			}
			d := spans[s][i]
			if _, err := fmt.Fprintf(w,
				"%s{\"name\":%q,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1,\"args\":{\"step\":%d}}",
				sep, names[s], us(ts), us(d), i); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			ts += d
		}
	}
	if _, err := io.WriteString(w, "\n]\n"); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// IntsToFloats converts an int series for WriteSeries.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// WriteVehicles dumps per-vehicle lifecycle records as CSV: spawn, entry
// and exit times, accumulated queueing time and junctions crossed.
// Unset times serialize as -1.
func WriteVehicles(w io.Writer, vehs []vehicle.Vehicle) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "entry_road", "spawned_s", "entered_s", "exited_s", "queue_wait_s", "junctions"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	row := make([]string, len(header))
	for i := range vehs {
		v := &vehs[i]
		row[0] = strconv.Itoa(int(v.ID))
		row[1] = strconv.Itoa(int(v.EntryRoad))
		row[2] = strconv.FormatFloat(v.SpawnedAt, 'f', -1, 64)
		row[3] = strconv.FormatFloat(v.EnteredAt, 'f', -1, 64)
		row[4] = strconv.FormatFloat(v.ExitedAt, 'f', -1, 64)
		row[5] = strconv.FormatFloat(v.QueueWait, 'f', 3, 64)
		row[6] = strconv.Itoa(v.Junctions)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
