package trace

import (
	"bytes"
	"strings"
	"testing"

	"utilbp/internal/signal"
	"utilbp/internal/vehicle"
)

func TestWritePhaseTimeline(t *testing.T) {
	var buf bytes.Buffer
	phases := []signal.Phase{1, 1, 0, 2}
	if err := WritePhaseTimeline(&buf, 0.5, phases); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want header+4", len(lines))
	}
	if lines[0] != "time_s,phase" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1" || lines[3] != "1,0" || lines[4] != "1.5,2" {
		t.Errorf("rows = %v", lines[1:])
	}
}

func TestWriteSeries(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeries(&buf, []string{"x", "y"}, []float64{1, 2}, []float64{3.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,3.5\n2,4\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestWriteSeriesValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeries(&buf, []string{"x"}, []float64{1}, []float64{2}); err == nil {
		t.Error("header/column mismatch accepted")
	}
	if err := WriteSeries(&buf, []string{"x", "y"}, []float64{1, 2}, []float64{3}); err == nil {
		t.Error("ragged columns accepted")
	}
}

func TestWriteSeriesEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeries(&buf, []string{"x"}, []float64{}); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "x" {
		t.Errorf("empty series csv = %q", buf.String())
	}
}

func TestWriteVehicles(t *testing.T) {
	var buf bytes.Buffer
	vehs := []vehicle.Vehicle{
		{ID: 0, EntryRoad: 5, SpawnedAt: 1, EnteredAt: 2, ExitedAt: 50, QueueWait: 12.5, Junctions: 3},
		{ID: 1, EntryRoad: 6, SpawnedAt: 4, EnteredAt: vehicle.Unset, ExitedAt: vehicle.Unset},
	}
	if err := WriteVehicles(&buf, vehs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "id,entry_road,spawned_s,entered_s,exited_s,queue_wait_s,junctions" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,5,1,2,50,12.500,3" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], ",-1,-1,") {
		t.Errorf("unset times not serialized as -1: %q", lines[2])
	}
}

func TestIntsToFloats(t *testing.T) {
	out := IntsToFloats([]int{1, -2, 3})
	if len(out) != 3 || out[0] != 1 || out[1] != -2 || out[2] != 3 {
		t.Errorf("IntsToFloats = %v", out)
	}
	if IntsToFloats(nil) == nil {
		// empty slice is fine too; just must not panic
		t.Log("nil input yields nil slice")
	}
}
