package trace_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"utilbp/internal/network"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
	"utilbp/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEngine builds the seeded small-grid run behind the golden
// files: a 2×2 grid under Pattern I demand with the paper's UTIL-BP
// controller — fully deterministic, so its phase timeline pins the
// writer output end to end.
func goldenEngine(t *testing.T) *sim.Engine {
	t.Helper()
	setup := scenario.Default()
	setup.Grid.Rows, setup.Grid.Cols = 2, 2
	inst, err := setup.Build(scenario.PatternI)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{
		Net:         inst.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      inst.Demand,
		Router:      inst.Router,
		Routes:      inst.Routes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with go test ./internal/trace/ -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (%d vs %d bytes); inspect and re-run with -update if intended", name, len(got), len(want))
	}
}

// TestPhaseTimelineGolden pins WritePhaseTimeline's exact output for
// the seeded run's corner junction over 150 mini-slots: the phase
// sequence is deterministic, so any drift is a writer or engine change.
func TestPhaseTimelineGolden(t *testing.T) {
	e := goldenEngine(t)
	const steps = 150
	var jn network.NodeID = -1
	for _, n := range e.Network().Nodes {
		if n.Kind == network.JunctionNode && n.Name == "J00" {
			jn = n.ID
		}
	}
	if jn < 0 {
		t.Fatal("no junction J00")
	}
	phases := make([]signal.Phase, 0, steps)
	e.AddHooks(sim.Hooks{Step: func(e *sim.Engine, _ int) {
		phases = append(phases, e.CurrentPhase(jn))
	}})
	e.Run(steps)
	var buf bytes.Buffer
	if err := trace.WritePhaseTimeline(&buf, e.DeltaT(), phases); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "phase_timeline.golden", buf.Bytes())
}

// TestTraceEventsGolden pins WriteTraceEvents' exact serialization on a
// synthetic deterministic timeline (wall-clock spans from a live run
// are not reproducible, so the golden uses fixed durations).
func TestTraceEventsGolden(t *testing.T) {
	names := []string{"events", "sense", "control"}
	spans := [][]time.Duration{
		{1500 * time.Nanosecond, 2 * time.Microsecond},
		{time.Microsecond, 500 * time.Nanosecond},
		{3 * time.Microsecond, 250 * time.Nanosecond},
	}
	var buf bytes.Buffer
	if err := trace.WriteTraceEvents(&buf, names, spans); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("trace events are not valid JSON: %s", buf.String())
	}
	checkGolden(t, "trace_events.golden", buf.Bytes())
}

// TestTraceEventsFromRun checks the live path end to end: a traced run
// of the seeded engine exports valid JSON with one complete event per
// substep per step, in timeline order.
func TestTraceEventsFromRun(t *testing.T) {
	e := goldenEngine(t)
	const steps = 40
	tl := sim.NewTraceLog(steps)
	e.RunTraced(steps, tl)
	var buf bytes.Buffer
	if err := trace.WriteTraceEvents(&buf, sim.SubstepNames[:], tl.Spans[:]); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace events do not parse: %v", err)
	}
	if len(events) != steps*sim.NumSubsteps {
		t.Fatalf("%d events, want %d", len(events), steps*sim.NumSubsteps)
	}
	if events[0]["name"] != "events" || events[1]["name"] != "sense" {
		t.Fatalf("substep order broken: %v %v", events[0]["name"], events[1]["name"])
	}
	prev := -1.0
	for _, ev := range events {
		ts, ok := ev["ts"].(float64)
		if !ok || ts < prev {
			t.Fatalf("timestamps not monotonic floats: %v after %g", ev["ts"], prev)
		}
		prev = ts
	}
}

// failWriter fails after n bytes, exercising writer error propagation.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriterErrorPropagation checks the trace writers surface an
// io.Writer failure instead of swallowing it.
func TestWriterErrorPropagation(t *testing.T) {
	spans := [][]time.Duration{{time.Microsecond, 2 * time.Microsecond}}
	if err := trace.WriteTraceEvents(&failWriter{n: 4}, []string{"x"}, spans); err == nil {
		t.Error("WriteTraceEvents swallowed a write error")
	}
	if err := trace.WriteSeries(&failWriter{n: 2}, []string{"x"}, []float64{1, 2}); err == nil {
		t.Error("WriteSeries swallowed a write error")
	}
	if err := trace.WritePhaseTimeline(&failWriter{n: 2}, 1, []signal.Phase{1, 2, 0, 1}); err == nil {
		t.Error("WritePhaseTimeline swallowed a write error")
	}
}

// TestWriteTraceEventsValidation pins the shape errors: name/track
// count mismatch and ragged tracks.
func TestWriteTraceEventsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteTraceEvents(&buf, []string{"a"}, nil); err == nil {
		t.Error("name/track count mismatch accepted")
	}
	ragged := [][]time.Duration{{1}, {1, 2}}
	if err := trace.WriteTraceEvents(&buf, []string{"a", "b"}, ragged); err == nil {
		t.Error("ragged tracks accepted")
	}
}
