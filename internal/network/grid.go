package network

import "fmt"

// GridSpec parameterizes a rectangular grid network of signalized
// junctions with boundary terminals on all four sides, the topology of the
// paper's evaluation (a 3×3 grid).
type GridSpec struct {
	// Rows and Cols are the junction grid dimensions (row 0 at the
	// north, column 0 at the west).
	Rows, Cols int
	// Spacing is the distance in meters between adjacent junctions,
	// which is also the length of internal roads.
	Spacing float64
	// BoundaryLength is the length in meters of entry/exit roads between
	// a terminal and its edge junction. Zero defaults to Spacing.
	BoundaryLength float64
	// Speed is the free-flow speed in m/s on every road.
	Speed float64
	// Capacity is W_i, the vehicle capacity of every network road
	// (boundary exit roads toward terminals are unbounded sinks).
	Capacity int
	// Mu is the service rate in veh/s assigned to every movement.
	Mu float64
}

// DefaultGridSpec returns the paper's evaluation parameters: a 3×3 grid
// with W_i = 120 and µ = 1, with geometry chosen so roads hold roughly a
// W=120 queue (Section V).
func DefaultGridSpec() GridSpec {
	return GridSpec{
		Rows:           3,
		Cols:           3,
		Spacing:        300,
		BoundaryLength: 300,
		Speed:          13.9, // 50 km/h
		Capacity:       120,
		Mu:             1,
	}
}

// GridNetwork is a Network plus the grid bookkeeping the experiment
// harness needs: junction coordinates and entry/exit roads by boundary
// side.
type GridNetwork struct {
	*Network
	Spec GridSpec

	junctions [][]NodeID
	entries   map[Dir][]RoadID
	exits     map[Dir][]RoadID
}

// Grid builds a grid network per spec.
func Grid(spec GridSpec) (*GridNetwork, error) {
	if spec.Rows < 1 || spec.Cols < 1 {
		return nil, fmt.Errorf("network: grid must have at least one row and column, got %dx%d", spec.Rows, spec.Cols)
	}
	if spec.Spacing <= 0 || spec.Speed <= 0 {
		return nil, fmt.Errorf("network: grid spacing and speed must be positive")
	}
	if spec.Capacity <= 0 {
		return nil, fmt.Errorf("network: grid capacity must be positive")
	}
	if spec.Mu <= 0 {
		return nil, fmt.Errorf("network: grid service rate must be positive")
	}
	if spec.BoundaryLength <= 0 {
		spec.BoundaryLength = spec.Spacing
	}

	b := NewBuilder().SetMu(ConstantMu(spec.Mu))
	g := &GridNetwork{
		Spec:    spec,
		entries: make(map[Dir][]RoadID),
		exits:   make(map[Dir][]RoadID),
	}

	// Junction nodes.
	g.junctions = make([][]NodeID, spec.Rows)
	for r := 0; r < spec.Rows; r++ {
		g.junctions[r] = make([]NodeID, spec.Cols)
		for c := 0; c < spec.Cols; c++ {
			name := fmt.Sprintf("J%d%d", r, c)
			g.junctions[r][c] = b.AddNode(JunctionNode, float64(c)*spec.Spacing, float64(r)*spec.Spacing, name)
		}
	}

	// Internal roads, both directions between orthogonal neighbors.
	addPair := func(a, bn NodeID, heading Dir, length float64) {
		an, bnn := a, bn
		b.AddRoad(an, bnn, heading, length, spec.Speed, spec.Capacity,
			fmt.Sprintf("%s->%s", nodeName(b, an), nodeName(b, bnn)))
		b.AddRoad(bnn, an, heading.Opposite(), length, spec.Speed, spec.Capacity,
			fmt.Sprintf("%s->%s", nodeName(b, bnn), nodeName(b, an)))
	}
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			if c+1 < spec.Cols {
				addPair(g.junctions[r][c], g.junctions[r][c+1], East, spec.Spacing)
			}
			if r+1 < spec.Rows {
				addPair(g.junctions[r][c], g.junctions[r+1][c], South, spec.Spacing)
			}
		}
	}

	// Boundary terminals: one per edge junction per open side. The entry
	// road (terminal -> junction) carries the network capacity; the exit
	// road (junction -> terminal) is an unbounded sink with zero
	// pressure, per DESIGN.md.
	addTerminal := func(j NodeID, side Dir) {
		dx, dy := side.Vector()
		jn := b.nodes[j]
		t := b.AddNode(TerminalNode,
			jn.X+float64(dx)*spec.BoundaryLength,
			jn.Y+float64(dy)*spec.BoundaryLength,
			fmt.Sprintf("T%v-%s", side, jn.Name))
		entry := b.AddRoad(t, j, side.Opposite(), spec.BoundaryLength, spec.Speed, spec.Capacity,
			fmt.Sprintf("in-%v-%s", side, jn.Name))
		exit := b.AddRoad(j, t, side, spec.BoundaryLength, spec.Speed, 0,
			fmt.Sprintf("out-%v-%s", side, jn.Name))
		g.entries[side] = append(g.entries[side], entry)
		g.exits[side] = append(g.exits[side], exit)
	}
	for c := 0; c < spec.Cols; c++ {
		addTerminal(g.junctions[0][c], North)
		addTerminal(g.junctions[spec.Rows-1][c], South)
	}
	for r := 0; r < spec.Rows; r++ {
		addTerminal(g.junctions[r][spec.Cols-1], East)
		addTerminal(g.junctions[r][0], West)
	}

	n, err := b.Build()
	if err != nil {
		return nil, err
	}
	g.Network = n
	return g, nil
}

func nodeName(b *Builder, id NodeID) string {
	if int(id) < len(b.nodes) {
		return b.nodes[id].Name
	}
	return fmt.Sprintf("n%d", id)
}

// Rows returns the number of junction rows.
func (g *GridNetwork) Rows() int { return g.Spec.Rows }

// Cols returns the number of junction columns.
func (g *GridNetwork) Cols() int { return g.Spec.Cols }

// JunctionAt returns the node ID of the junction at the given grid
// coordinates (row 0 north, column 0 west). It returns NoNode when out of
// range.
func (g *GridNetwork) JunctionAt(row, col int) NodeID {
	if row < 0 || row >= len(g.junctions) || col < 0 || col >= len(g.junctions[row]) {
		return NoNode
	}
	return g.junctions[row][col]
}

// Entries returns the entry roads on the given boundary side, ordered by
// column (north/south) or row (east/west). "Entering from the north" means
// the entry roads on the north side, heading south.
func (g *GridNetwork) Entries(side Dir) []RoadID { return g.entries[side] }

// Exits returns the exit roads on the given boundary side.
func (g *GridNetwork) Exits(side Dir) []RoadID { return g.exits[side] }

// AllEntries returns every entry road keyed by its boundary side.
func (g *GridNetwork) AllEntries() map[Dir][]RoadID { return g.entries }
