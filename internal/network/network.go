package network

import (
	"errors"
	"fmt"
)

// Network is an immutable road network: nodes, directed roads, and the
// junction records (approaches, feasible links, phase tables) derived from
// them. Construct one with a Builder or with Grid.
type Network struct {
	Nodes     []Node
	Roads     []Road
	Junctions []Junction

	junctionIdx map[NodeID]int
	// inRoads / outRoads index roads by endpoint for routing and
	// validation.
	inRoads  map[NodeID][]RoadID
	outRoads map[NodeID][]RoadID
}

// Node returns the node with the given ID, or nil when out of range.
func (n *Network) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(n.Nodes) {
		return nil
	}
	return &n.Nodes[id]
}

// Road returns the road with the given ID, or nil when out of range.
func (n *Network) Road(id RoadID) *Road {
	if id < 0 || int(id) >= len(n.Roads) {
		return nil
	}
	return &n.Roads[id]
}

// Junction returns the junction record at the given node, or nil when the
// node is not a junction.
func (n *Network) Junction(id NodeID) *Junction {
	idx, ok := n.junctionIdx[id]
	if !ok {
		return nil
	}
	return &n.Junctions[idx]
}

// RoadsInto returns the IDs of roads ending at the given node.
func (n *Network) RoadsInto(id NodeID) []RoadID { return n.inRoads[id] }

// RoadsOutOf returns the IDs of roads starting at the given node.
func (n *Network) RoadsOutOf(id NodeID) []RoadID { return n.outRoads[id] }

// EntryRoads returns the roads whose origin is a terminal node: the points
// where exogenous traffic enters the network.
func (n *Network) EntryRoads() []RoadID {
	var out []RoadID
	for i := range n.Roads {
		if n.Nodes[n.Roads[i].From].Kind == TerminalNode {
			out = append(out, n.Roads[i].ID)
		}
	}
	return out
}

// ExitRoads returns the roads whose destination is a terminal node.
func (n *Network) ExitRoads() []RoadID {
	var out []RoadID
	for i := range n.Roads {
		if n.Nodes[n.Roads[i].To].Kind == TerminalNode {
			out = append(out, n.Roads[i].ID)
		}
	}
	return out
}

// MaxCapacity returns W* = max over bounded roads of the road capacity, the
// constant added to the pressure difference in the paper's eq. (6)/(7).
// It returns 0 when no road is bounded.
func (n *Network) MaxCapacity() int {
	w := 0
	for i := range n.Roads {
		if n.Roads[i].Capacity > w {
			w = n.Roads[i].Capacity
		}
	}
	return w
}

// reindex rebuilds the lookup maps. It must be called after the node, road
// and junction slices are final.
func (n *Network) reindex() {
	n.junctionIdx = make(map[NodeID]int, len(n.Junctions))
	for i := range n.Junctions {
		n.junctionIdx[n.Junctions[i].Node] = i
	}
	n.inRoads = make(map[NodeID][]RoadID)
	n.outRoads = make(map[NodeID][]RoadID)
	for i := range n.Roads {
		r := &n.Roads[i]
		n.inRoads[r.To] = append(n.inRoads[r.To], r.ID)
		n.outRoads[r.From] = append(n.outRoads[r.From], r.ID)
	}
}

// Validate checks structural consistency: ID ordering, road endpoints,
// junction approach tables, link tables and phase tables. A network built
// by Builder.Build or Grid has already been validated.
func (n *Network) Validate() error {
	for i := range n.Nodes {
		if n.Nodes[i].ID != NodeID(i) {
			return fmt.Errorf("network: node %d has ID %d", i, n.Nodes[i].ID)
		}
	}
	for i := range n.Roads {
		r := &n.Roads[i]
		if r.ID != RoadID(i) {
			return fmt.Errorf("network: road %d has ID %d", i, r.ID)
		}
		if n.Node(r.From) == nil || n.Node(r.To) == nil {
			return fmt.Errorf("network: road %d references missing node", i)
		}
		if r.From == r.To {
			return fmt.Errorf("network: road %d is a self-loop", i)
		}
		if !r.Heading.Valid() {
			return fmt.Errorf("network: road %d has invalid heading", i)
		}
	}
	for i := range n.Junctions {
		j := &n.Junctions[i]
		node := n.Node(j.Node)
		if node == nil || node.Kind != JunctionNode {
			return fmt.Errorf("network: junction %d not backed by a junction node", i)
		}
		for _, d := range Dirs {
			if in := j.In[d]; in != NoRoad {
				r := n.Road(in)
				if r == nil || r.To != j.Node {
					return fmt.Errorf("network: junction %d approach %v inconsistent", j.Node, d)
				}
				if r.Heading != d.Opposite() {
					return fmt.Errorf("network: junction %d approach %v heading %v", j.Node, d, r.Heading)
				}
			}
			if out := j.Out[d]; out != NoRoad {
				r := n.Road(out)
				if r == nil || r.From != j.Node {
					return fmt.Errorf("network: junction %d exit %v inconsistent", j.Node, d)
				}
				if r.Heading != d {
					return fmt.Errorf("network: junction %d exit %v heading %v", j.Node, d, r.Heading)
				}
			}
		}
		if err := j.validate(n.Roads); err != nil {
			return err
		}
	}
	return nil
}

// MuFunc assigns the service rate µ_i^{i'} to a movement. The builder calls
// it once per generated link.
type MuFunc func(approach Dir, turn Turn) float64

// ConstantMu returns a MuFunc assigning the same rate to every movement.
func ConstantMu(mu float64) MuFunc {
	return func(Dir, Turn) float64 { return mu }
}

// Builder assembles a Network incrementally. The zero value is not usable;
// call NewBuilder.
type Builder struct {
	nodes []Node
	roads []Road
	mu    MuFunc
	err   error
}

// NewBuilder returns an empty Builder with unit service rates.
func NewBuilder() *Builder {
	return &Builder{mu: ConstantMu(1)}
}

// SetMu installs the service-rate assignment used for links generated at
// Build time. Passing nil restores the unit-rate default.
func (b *Builder) SetMu(mu MuFunc) *Builder {
	if mu == nil {
		mu = ConstantMu(1)
	}
	b.mu = mu
	return b
}

// AddNode appends a node and returns its ID.
func (b *Builder) AddNode(kind NodeKind, x, y float64, name string) NodeID {
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Kind: kind, X: x, Y: y, Name: name})
	return id
}

// AddRoad appends a directed road and returns its ID. Errors (bad nodes,
// invalid heading) are deferred to Build so call sites stay simple.
func (b *Builder) AddRoad(from, to NodeID, heading Dir, length, speed float64, capacity int, name string) RoadID {
	id := RoadID(len(b.roads))
	if from < 0 || int(from) >= len(b.nodes) || to < 0 || int(to) >= len(b.nodes) {
		b.fail(fmt.Errorf("network: road %q references missing node", name))
	}
	if !heading.Valid() {
		b.fail(fmt.Errorf("network: road %q has invalid heading", name))
	}
	b.roads = append(b.roads, Road{
		ID: id, From: from, To: to, Heading: heading,
		Length: length, SpeedLimit: speed, Capacity: capacity, Name: name,
	})
	return id
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build assembles the junctions (approach tables from road headings, link
// tables, Figure-1 phase tables), validates, and returns the Network.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := &Network{
		Nodes: append([]Node(nil), b.nodes...),
		Roads: append([]Road(nil), b.roads...),
	}
	for i := range n.Nodes {
		if n.Nodes[i].Kind != JunctionNode {
			continue
		}
		j := Junction{Node: n.Nodes[i].ID}
		for d := range j.In {
			j.In[d] = NoRoad
			j.Out[d] = NoRoad
		}
		n.Junctions = append(n.Junctions, j)
	}
	n.reindex()
	for ri := range n.Roads {
		r := &n.Roads[ri]
		if to := n.Junction(r.To); to != nil {
			side := r.Heading.Opposite()
			if to.In[side] != NoRoad {
				return nil, fmt.Errorf("network: junction %d has two approaches from %v", r.To, side)
			}
			to.In[side] = r.ID
		}
		if from := n.Junction(r.From); from != nil {
			side := r.Heading
			if from.Out[side] != NoRoad {
				return nil, fmt.Errorf("network: junction %d has two exits toward %v", r.From, side)
			}
			from.Out[side] = r.ID
		}
	}
	for i := range n.Junctions {
		j := &n.Junctions[i]
		j.buildLinks(b.mu)
		j.buildFourPhases()
		if len(j.Links) == 0 {
			return nil, fmt.Errorf("network: junction %d has no feasible links", j.Node)
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// ErrNotFound is returned by lookup helpers when an element is absent.
var ErrNotFound = errors.New("network: not found")
