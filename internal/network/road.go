package network

import "fmt"

// NodeID identifies a node (junction or boundary terminal) in a network.
type NodeID int

// RoadID identifies a directed road in a network.
type RoadID int

// NoRoad marks an absent road slot, e.g. a junction approach that does not
// exist in a non-grid topology.
const NoRoad RoadID = -1

// NoNode marks an absent node reference.
const NoNode NodeID = -1

// NodeKind distinguishes signalized junctions from boundary terminals where
// vehicles enter and leave the network.
type NodeKind uint8

const (
	// JunctionNode is a signalized intersection controlled by a phase
	// controller.
	JunctionNode NodeKind = iota
	// TerminalNode is a boundary point: an exogenous source of arrivals
	// and an infinite-capacity sink for departures.
	TerminalNode
)

// String returns the node kind name.
func (k NodeKind) String() string {
	switch k {
	case JunctionNode:
		return "junction"
	case TerminalNode:
		return "terminal"
	}
	return fmt.Sprintf("NodeKind(%d)", uint8(k))
}

// Node is a point of the network graph.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// X grows eastward and Y southward, so grid row r, column c sits at
	// (c*spacing, r*spacing).
	X, Y float64
	Name string
}

// Road is a directed road segment. In the paper's queuing-network model a
// road is simultaneously the outgoing road of its upstream junction and an
// incoming road of its downstream junction.
type Road struct {
	ID      RoadID
	From    NodeID
	To      NodeID
	Heading Dir
	// Length in meters and SpeedLimit in m/s determine the free-flow
	// travel time from entering the road to reaching the stop line.
	Length     float64
	SpeedLimit float64
	// Capacity is W_i, the maximum number of vehicles the road can
	// accommodate; once reached no further vehicle may enter (Section
	// II-A). A non-positive capacity means unbounded (boundary exits).
	Capacity int
	Name     string
}

// TravelTime returns the free-flow traversal time of the road in seconds,
// at least one second so a vehicle never crosses a road instantaneously.
func (r *Road) TravelTime() float64 {
	if r.Length <= 0 || r.SpeedLimit <= 0 {
		return 1
	}
	t := r.Length / r.SpeedLimit
	if t < 1 {
		return 1
	}
	return t
}

// Bounded reports whether the road has a finite capacity.
func (r *Road) Bounded() bool { return r.Capacity > 0 }

// HasRoom reports whether a road with the given current occupancy can
// accept one more vehicle.
func (r *Road) HasRoom(occupancy int) bool {
	return !r.Bounded() || occupancy < r.Capacity
}
