package network

import (
	"bytes"
	"testing"
)

func mustGrid(t *testing.T, spec GridSpec) *GridNetwork {
	t.Helper()
	g, err := Grid(spec)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	return g
}

func TestGrid3x3Shape(t *testing.T) {
	g := mustGrid(t, DefaultGridSpec())
	if got := len(g.Junctions); got != 9 {
		t.Fatalf("junction count = %d, want 9", got)
	}
	// 3x3 grid: 12 internal edges * 2 directions + 12 terminals * 2 = 48.
	if got := len(g.Roads); got != 48 {
		t.Fatalf("road count = %d, want 48", got)
	}
	// 9 junctions + 12 terminals.
	if got := len(g.Nodes); got != 21 {
		t.Fatalf("node count = %d, want 21", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGridEveryJunctionFourApproaches(t *testing.T) {
	g := mustGrid(t, DefaultGridSpec())
	for i := range g.Junctions {
		j := &g.Junctions[i]
		for _, d := range Dirs {
			if j.In[d] == NoRoad {
				t.Errorf("junction %d missing approach from %v", j.Node, d)
			}
			if j.Out[d] == NoRoad {
				t.Errorf("junction %d missing exit toward %v", j.Node, d)
			}
		}
		if got := len(j.Links); got != 12 {
			t.Errorf("junction %d has %d links, want 12", j.Node, got)
		}
		if got := j.NumPhases(); got != 4 {
			t.Errorf("junction %d has %d phases, want 4", j.Node, got)
		}
	}
}

// TestGridPhaseTableMatchesFigure1 checks the phase table of the paper's
// Figure 1: c1 = N/S straight+left (4 links), c2 = N/S right (2), c3 = E/W
// straight+left (4), c4 = E/W right (2).
func TestGridPhaseTableMatchesFigure1(t *testing.T) {
	g := mustGrid(t, DefaultGridSpec())
	j := g.Junction(g.JunctionAt(1, 1))
	if j == nil {
		t.Fatal("center junction missing")
	}
	wantSizes := []int{4, 2, 4, 2}
	type laneKey struct {
		a Dir
		t Turn
	}
	wantLanes := [][]laneKey{
		{{North, Straight}, {North, Left}, {South, Straight}, {South, Left}},
		{{North, Right}, {South, Right}},
		{{East, Straight}, {East, Left}, {West, Straight}, {West, Left}},
		{{East, Right}, {West, Right}},
	}
	for pi, p := range j.Phases {
		if len(p) != wantSizes[pi] {
			t.Fatalf("phase %d has %d links, want %d", pi+1, len(p), wantSizes[pi])
		}
		got := make(map[laneKey]bool)
		for _, li := range p {
			l := j.Links[li]
			got[laneKey{l.Approach, l.Turn}] = true
		}
		for _, lk := range wantLanes[pi] {
			if !got[lk] {
				t.Errorf("phase %d missing lane %v/%v", pi+1, lk.a, lk.t)
			}
		}
	}
}

func TestGridEntriesExits(t *testing.T) {
	g := mustGrid(t, DefaultGridSpec())
	for _, side := range Dirs {
		if got := len(g.Entries(side)); got != 3 {
			t.Errorf("side %v has %d entries, want 3", side, got)
		}
		if got := len(g.Exits(side)); got != 3 {
			t.Errorf("side %v has %d exits, want 3", side, got)
		}
		for _, rid := range g.Entries(side) {
			r := g.Road(rid)
			if r.Heading != side.Opposite() {
				t.Errorf("entry from %v has heading %v", side, r.Heading)
			}
			if g.Node(r.From).Kind != TerminalNode {
				t.Errorf("entry road %d does not start at a terminal", rid)
			}
			if !r.Bounded() {
				t.Errorf("entry road %d should be capacity-bounded", rid)
			}
		}
		for _, rid := range g.Exits(side) {
			r := g.Road(rid)
			if r.Bounded() {
				t.Errorf("exit road %d should be an unbounded sink", rid)
			}
		}
	}
	if got := len(g.EntryRoads()); got != 12 {
		t.Errorf("EntryRoads = %d, want 12", got)
	}
	if got := len(g.ExitRoads()); got != 12 {
		t.Errorf("ExitRoads = %d, want 12", got)
	}
}

func TestGridJunctionAt(t *testing.T) {
	g := mustGrid(t, DefaultGridSpec())
	if g.JunctionAt(0, 2) == NoNode {
		t.Error("top-right junction missing")
	}
	if g.JunctionAt(-1, 0) != NoNode || g.JunctionAt(0, 3) != NoNode {
		t.Error("out-of-range JunctionAt should return NoNode")
	}
	// Top-right junction: its east approach comes from the east terminal.
	j := g.Junction(g.JunctionAt(0, 2))
	eastIn := g.Road(j.In[East])
	if g.Node(eastIn.From).Kind != TerminalNode {
		t.Error("top-right junction east approach should come from the boundary")
	}
	// The center junction's approaches are internal roads.
	c := g.Junction(g.JunctionAt(1, 1))
	for _, d := range Dirs {
		if g.Node(g.Road(c.In[d]).From).Kind != JunctionNode {
			t.Errorf("center junction approach %v is not internal", d)
		}
	}
}

func TestGridRejectsBadSpecs(t *testing.T) {
	bad := []GridSpec{
		{Rows: 0, Cols: 3, Spacing: 100, Speed: 10, Capacity: 10, Mu: 1},
		{Rows: 3, Cols: 0, Spacing: 100, Speed: 10, Capacity: 10, Mu: 1},
		{Rows: 3, Cols: 3, Spacing: 0, Speed: 10, Capacity: 10, Mu: 1},
		{Rows: 3, Cols: 3, Spacing: 100, Speed: 0, Capacity: 10, Mu: 1},
		{Rows: 3, Cols: 3, Spacing: 100, Speed: 10, Capacity: 0, Mu: 1},
		{Rows: 3, Cols: 3, Spacing: 100, Speed: 10, Capacity: 10, Mu: 0},
	}
	for i, spec := range bad {
		if _, err := Grid(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestGrid1x1(t *testing.T) {
	spec := DefaultGridSpec()
	spec.Rows, spec.Cols = 1, 1
	g := mustGrid(t, spec)
	if len(g.Junctions) != 1 {
		t.Fatalf("junctions = %d", len(g.Junctions))
	}
	j := &g.Junctions[0]
	if len(j.Links) != 12 || j.NumPhases() != 4 {
		t.Fatalf("single junction links=%d phases=%d", len(j.Links), j.NumPhases())
	}
	if got := len(g.EntryRoads()); got != 4 {
		t.Fatalf("1x1 entries = %d, want 4", got)
	}
}

func TestGridMaxCapacity(t *testing.T) {
	g := mustGrid(t, DefaultGridSpec())
	if got := g.MaxCapacity(); got != 120 {
		t.Fatalf("MaxCapacity = %d, want 120", got)
	}
}

func TestGridRectangular(t *testing.T) {
	spec := DefaultGridSpec()
	spec.Rows, spec.Cols = 2, 4
	g := mustGrid(t, spec)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Entries: north/south sides have Cols each, east/west have Rows.
	if got := len(g.Entries(North)); got != 4 {
		t.Errorf("north entries = %d, want 4", got)
	}
	if got := len(g.Entries(East)); got != 2 {
		t.Errorf("east entries = %d, want 2", got)
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	g := mustGrid(t, DefaultGridSpec())
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	n2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(n2.Nodes) != len(g.Nodes) || len(n2.Roads) != len(g.Roads) || len(n2.Junctions) != len(g.Junctions) {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			len(n2.Nodes), len(n2.Roads), len(n2.Junctions),
			len(g.Nodes), len(g.Roads), len(g.Junctions))
	}
	for i := range g.Junctions {
		a, b := &g.Junctions[i], &n2.Junctions[i]
		if len(a.Links) != len(b.Links) || len(a.Phases) != len(b.Phases) {
			t.Fatalf("junction %d tables differ after round trip", i)
		}
		for li := range a.Links {
			if a.Links[li] != b.Links[li] {
				t.Fatalf("junction %d link %d differs: %+v vs %+v", i, li, a.Links[li], b.Links[li])
			}
		}
	}
	if err := n2.Validate(); err != nil {
		t.Fatalf("Validate after round trip: %v", err)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{nope"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"nodes":[{"kind":"alien"}],"roads":[]}`))); err == nil {
		t.Error("unknown node kind accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"nodes":[{"kind":"junction"},{"kind":"junction"}],"roads":[{"from":0,"to":1,"heading":"up"}]}`))); err == nil {
		t.Error("unknown heading accepted")
	}
}
