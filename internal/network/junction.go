package network

import "fmt"

// Link is a feasible movement L_i^{i'} through a junction, from incoming
// road In to outgoing road Out. Links are the unit the controller
// activates; each dedicated turning lane queues for exactly one link.
type Link struct {
	// Index of the link within its junction's Links slice.
	Index int
	In    RoadID
	Out   RoadID
	// Approach is the side of the junction the incoming road arrives
	// from; Turn is the movement relative to the vehicle heading.
	Approach Dir
	Turn     Turn
	// Mu is the full service rate µ_i^{i'} in vehicles per second: the
	// maximum number of vehicles served in Δt is µ·Δt (Section II-C).
	Mu float64
}

// Phase is a control phase c_j: the set of compatible links activated
// together, stored as indexes into the junction's Links slice. Phase
// identifiers exposed to controllers are 1-based; 0 is the amber
// transition phase c0 during which no link is active.
type Phase []int

// Junction is a signalized intersection: up to four approaches with
// dedicated turning lanes, a feasible-link table, and a phase table.
type Junction struct {
	Node NodeID
	// In[d] is the incoming road arriving from side d (its heading is
	// d.Opposite()); Out[d] is the outgoing road leaving toward side d.
	// Absent approaches hold NoRoad.
	In  [numDirs]RoadID
	Out [numDirs]RoadID
	// Links are the feasible movements; Phases groups them into control
	// phases following the paper's Figure 1.
	Links  []Link
	Phases []Phase
}

// NumPhases returns the number of control phases (excluding amber).
func (j *Junction) NumPhases() int { return len(j.Phases) }

// LinkBetween returns the index of the link from road in to road out, or
// -1 if no such feasible link exists.
func (j *Junction) LinkBetween(in, out RoadID) int {
	for i := range j.Links {
		if j.Links[i].In == in && j.Links[i].Out == out {
			return i
		}
	}
	return -1
}

// LinkFor returns the index of the link from approach side a making
// movement t, or -1 if absent.
func (j *Junction) LinkFor(a Dir, t Turn) int {
	for i := range j.Links {
		if j.Links[i].Approach == a && j.Links[i].Turn == t {
			return i
		}
	}
	return -1
}

// buildLinks populates the feasible-link table from the approach arrays:
// one link per (existing approach, movement) pair whose destination road
// exists. U-turns are not generated.
func (j *Junction) buildLinks(mu func(approach Dir, t Turn) float64) {
	j.Links = j.Links[:0]
	for _, a := range Dirs {
		if j.In[a] == NoRoad {
			continue
		}
		heading := a.Opposite()
		for _, t := range Turns {
			outSide := heading.Apply(t)
			if j.Out[outSide] == NoRoad {
				continue
			}
			j.Links = append(j.Links, Link{
				Index:    len(j.Links),
				In:       j.In[a],
				Out:      j.Out[outSide],
				Approach: a,
				Turn:     t,
				Mu:       mu(a, t),
			})
		}
	}
}

// fourPhaseSpec mirrors the phase table of the paper's Figure 1:
// c1 = north/south straight+left, c2 = north/south right,
// c3 = east/west straight+left, c4 = east/west right.
var fourPhaseSpec = []struct {
	approaches [2]Dir
	turns      []Turn
}{
	{[2]Dir{North, South}, []Turn{Straight, Left}},
	{[2]Dir{North, South}, []Turn{Right}},
	{[2]Dir{East, West}, []Turn{Straight, Left}},
	{[2]Dir{East, West}, []Turn{Right}},
}

// buildFourPhases populates the phase table per Figure 1, dropping phases
// that end up empty because an approach or destination is absent.
func (j *Junction) buildFourPhases() {
	j.Phases = j.Phases[:0]
	for _, spec := range fourPhaseSpec {
		var p Phase
		for _, a := range spec.approaches {
			for _, t := range spec.turns {
				if idx := j.LinkFor(a, t); idx >= 0 {
					p = append(p, idx)
				}
			}
		}
		if len(p) > 0 {
			j.Phases = append(j.Phases, p)
		}
	}
}

// validate checks internal consistency of the junction against the road
// table. It is called from Network.Validate.
func (j *Junction) validate(roads []Road) error {
	seen := make(map[[2]RoadID]bool)
	for i, l := range j.Links {
		if l.Index != i {
			return fmt.Errorf("junction %d: link %d has index %d", j.Node, i, l.Index)
		}
		if l.In == NoRoad || l.Out == NoRoad {
			return fmt.Errorf("junction %d: link %d references absent road", j.Node, i)
		}
		if int(l.In) >= len(roads) || int(l.Out) >= len(roads) || l.In < 0 || l.Out < 0 {
			return fmt.Errorf("junction %d: link %d road out of range", j.Node, i)
		}
		if roads[l.In].To != j.Node {
			return fmt.Errorf("junction %d: link %d incoming road %d does not end here", j.Node, i, l.In)
		}
		if roads[l.Out].From != j.Node {
			return fmt.Errorf("junction %d: link %d outgoing road %d does not start here", j.Node, i, l.Out)
		}
		if l.Mu <= 0 {
			return fmt.Errorf("junction %d: link %d has non-positive service rate", j.Node, i)
		}
		key := [2]RoadID{l.In, l.Out}
		if seen[key] {
			return fmt.Errorf("junction %d: duplicate link %d->%d", j.Node, l.In, l.Out)
		}
		seen[key] = true
	}
	for pi, p := range j.Phases {
		if len(p) == 0 {
			return fmt.Errorf("junction %d: phase %d is empty", j.Node, pi+1)
		}
		lanes := make(map[[2]int]bool)
		for _, li := range p {
			if li < 0 || li >= len(j.Links) {
				return fmt.Errorf("junction %d: phase %d references link %d", j.Node, pi+1, li)
			}
			lane := [2]int{int(j.Links[li].Approach), int(j.Links[li].Turn)}
			if lanes[lane] {
				return fmt.Errorf("junction %d: phase %d activates lane %v twice", j.Node, pi+1, lane)
			}
			lanes[lane] = true
		}
	}
	return nil
}
