package network

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonNode, jsonRoad and jsonNetwork are the serialized forms used by
// MarshalJSON/WriteJSON. Junction link/phase tables are derived data and
// are rebuilt on load rather than serialized.
type jsonNode struct {
	Kind string  `json:"kind"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Name string  `json:"name,omitempty"`
}

type jsonRoad struct {
	From     NodeID  `json:"from"`
	To       NodeID  `json:"to"`
	Heading  string  `json:"heading"`
	Length   float64 `json:"length_m"`
	Speed    float64 `json:"speed_mps"`
	Capacity int     `json:"capacity"`
	Name     string  `json:"name,omitempty"`
}

type jsonNetwork struct {
	Nodes []jsonNode `json:"nodes"`
	Roads []jsonRoad `json:"roads"`
	Mu    float64    `json:"mu,omitempty"`
}

func dirFromString(s string) (Dir, error) {
	for _, d := range Dirs {
		if d.String() == s {
			return d, nil
		}
	}
	return North, fmt.Errorf("network: unknown direction %q", s)
}

// WriteJSON serializes the network topology. Service rates are assumed
// uniform; mu records the rate of the first link (1 if there are none).
func (n *Network) WriteJSON(w io.Writer) error {
	jn := jsonNetwork{Mu: 1}
	if len(n.Junctions) > 0 && len(n.Junctions[0].Links) > 0 {
		jn.Mu = n.Junctions[0].Links[0].Mu
	}
	for i := range n.Nodes {
		node := &n.Nodes[i]
		jn.Nodes = append(jn.Nodes, jsonNode{
			Kind: node.Kind.String(), X: node.X, Y: node.Y, Name: node.Name,
		})
	}
	for i := range n.Roads {
		r := &n.Roads[i]
		jn.Roads = append(jn.Roads, jsonRoad{
			From: r.From, To: r.To, Heading: r.Heading.String(),
			Length: r.Length, Speed: r.SpeedLimit, Capacity: r.Capacity, Name: r.Name,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jn)
}

// ReadJSON deserializes a network written by WriteJSON, rebuilding the
// junction link and phase tables.
func ReadJSON(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	if err := json.NewDecoder(r).Decode(&jn); err != nil {
		return nil, fmt.Errorf("network: decode: %w", err)
	}
	mu := jn.Mu
	if mu <= 0 {
		mu = 1
	}
	b := NewBuilder().SetMu(ConstantMu(mu))
	for _, node := range jn.Nodes {
		var kind NodeKind
		switch node.Kind {
		case JunctionNode.String():
			kind = JunctionNode
		case TerminalNode.String():
			kind = TerminalNode
		default:
			return nil, fmt.Errorf("network: unknown node kind %q", node.Kind)
		}
		b.AddNode(kind, node.X, node.Y, node.Name)
	}
	for _, road := range jn.Roads {
		heading, err := dirFromString(road.Heading)
		if err != nil {
			return nil, err
		}
		b.AddRoad(road.From, road.To, heading, road.Length, road.Speed, road.Capacity, road.Name)
	}
	return b.Build()
}
