package network

import (
	"strings"
	"testing"
)

// buildT builds a T-junction: approaches from north, south and west only
// (no east arm at all).
func buildT(t *testing.T) (*Network, NodeID) {
	t.Helper()
	b := NewBuilder()
	j := b.AddNode(JunctionNode, 0, 0, "J")
	tn := b.AddNode(TerminalNode, 0, -100, "N")
	ts := b.AddNode(TerminalNode, 0, 100, "S")
	tw := b.AddNode(TerminalNode, -100, 0, "W")
	for _, pair := range []struct {
		term NodeID
		side Dir
	}{{tn, North}, {ts, South}, {tw, West}} {
		b.AddRoad(pair.term, j, pair.side.Opposite(), 100, 10, 50, "in-"+pair.side.String())
		b.AddRoad(j, pair.term, pair.side, 100, 10, 0, "out-"+pair.side.String())
	}
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n, j
}

func TestBuilderTJunction(t *testing.T) {
	n, jid := buildT(t)
	j := n.Junction(jid)
	if j == nil {
		t.Fatal("junction record missing")
	}
	if j.In[East] != NoRoad || j.Out[East] != NoRoad {
		t.Error("phantom east arm")
	}
	// Feasible links: from north (heading south): left->east (absent),
	// straight->south, right->west = 2. From south (heading north):
	// left->west, straight->north, right->east (absent) = 2. From west
	// (heading east): left->north, straight->east (absent), right->south
	// = 2. Total 6.
	if got := len(j.Links); got != 6 {
		t.Fatalf("T-junction links = %d, want 6", got)
	}
	// All four Figure-1 phases survive but some shrink:
	// c1 (N/S straight+left): N-straight, S-straight, S-left = 3 links.
	// c2 (N/S right): N-right = 1 link.
	// c3 (E/W straight+left): W-left = 1 link.
	// c4 (E/W right): W-right = 1 link.
	sizes := []int{3, 1, 1, 1}
	if got := j.NumPhases(); got != len(sizes) {
		t.Fatalf("T-junction phases = %d, want %d", got, len(sizes))
	}
	for pi, p := range j.Phases {
		if len(p) != sizes[pi] {
			t.Errorf("phase %d size = %d, want %d", pi+1, len(p), sizes[pi])
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderRejectsDuplicateApproach(t *testing.T) {
	b := NewBuilder()
	j := b.AddNode(JunctionNode, 0, 0, "J")
	t1 := b.AddNode(TerminalNode, 0, -100, "T1")
	t2 := b.AddNode(TerminalNode, 0, -200, "T2")
	b.AddRoad(t1, j, South, 100, 10, 50, "a")
	b.AddRoad(t2, j, South, 100, 10, 50, "b") // second approach from north
	b.AddRoad(j, t1, North, 100, 10, 0, "c")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate approach accepted")
	} else if !strings.Contains(err.Error(), "two approaches") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBuilderRejectsMissingNode(t *testing.T) {
	b := NewBuilder()
	n := b.AddNode(JunctionNode, 0, 0, "J")
	b.AddRoad(n, n+5, North, 100, 10, 50, "dangling")
	if _, err := b.Build(); err == nil {
		t.Fatal("dangling road accepted")
	}
}

func TestBuilderRejectsInvalidHeading(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(TerminalNode, 0, 0, "A")
	c := b.AddNode(TerminalNode, 0, 100, "C")
	b.AddRoad(a, c, Dir(9), 100, 10, 50, "bad")
	if _, err := b.Build(); err == nil {
		t.Fatal("invalid heading accepted")
	}
}

func TestBuilderRejectsIsolatedJunction(t *testing.T) {
	b := NewBuilder()
	b.AddNode(JunctionNode, 0, 0, "J")
	if _, err := b.Build(); err == nil {
		t.Fatal("junction without links accepted")
	}
}

func TestBuilderCustomMu(t *testing.T) {
	b := NewBuilder().SetMu(func(a Dir, turn Turn) float64 {
		if turn == Straight {
			return 2
		}
		return 0.5
	})
	j := b.AddNode(JunctionNode, 0, 0, "J")
	for _, side := range Dirs {
		dx, dy := side.Vector()
		term := b.AddNode(TerminalNode, float64(dx)*100, float64(dy)*100, "T"+side.String())
		b.AddRoad(term, j, side.Opposite(), 100, 10, 50, "in")
		b.AddRoad(j, term, side, 100, 10, 0, "out")
	}
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, l := range n.Junction(j).Links {
		want := 0.5
		if l.Turn == Straight {
			want = 2
		}
		if l.Mu != want {
			t.Errorf("link %v/%v mu = %v, want %v", l.Approach, l.Turn, l.Mu, want)
		}
	}
	// SetMu(nil) restores the default.
	if rate := NewBuilder().SetMu(nil).mu(North, Left); rate != 1 {
		t.Errorf("nil MuFunc rate = %v, want 1", rate)
	}
}

func TestRoadTravelTime(t *testing.T) {
	r := Road{Length: 300, SpeedLimit: 15}
	if got := r.TravelTime(); got != 20 {
		t.Errorf("TravelTime = %v, want 20", got)
	}
	short := Road{Length: 5, SpeedLimit: 15}
	if got := short.TravelTime(); got != 1 {
		t.Errorf("short road TravelTime = %v, want clamp to 1", got)
	}
	degenerate := Road{}
	if got := degenerate.TravelTime(); got != 1 {
		t.Errorf("degenerate TravelTime = %v, want 1", got)
	}
}

func TestRoadHasRoom(t *testing.T) {
	bounded := Road{Capacity: 2}
	if !bounded.HasRoom(0) || !bounded.HasRoom(1) {
		t.Error("bounded road should have room below capacity")
	}
	if bounded.HasRoom(2) || bounded.HasRoom(3) {
		t.Error("bounded road should be full at capacity")
	}
	sink := Road{Capacity: 0}
	if !sink.HasRoom(1 << 20) {
		t.Error("unbounded road should always have room")
	}
}

func TestJunctionLookups(t *testing.T) {
	n, jid := buildT(t)
	j := n.Junction(jid)
	// LinkBetween for an existing movement.
	in := j.In[North]
	out := j.Out[South]
	if idx := j.LinkBetween(in, out); idx < 0 {
		t.Error("LinkBetween missed north-straight")
	} else if l := j.Links[idx]; l.Turn != Straight || l.Approach != North {
		t.Errorf("north-straight resolved to %v/%v", l.Approach, l.Turn)
	}
	if idx := j.LinkBetween(in, in); idx != -1 {
		t.Error("LinkBetween invented a link")
	}
	if idx := j.LinkFor(East, Straight); idx != -1 {
		t.Error("LinkFor found a link on the missing arm")
	}
}

func TestNetworkLookupsOutOfRange(t *testing.T) {
	n, jid := buildT(t)
	if n.Node(-1) != nil || n.Node(NodeID(len(n.Nodes))) != nil {
		t.Error("Node out-of-range should be nil")
	}
	if n.Road(-1) != nil || n.Road(RoadID(len(n.Roads))) != nil {
		t.Error("Road out-of-range should be nil")
	}
	if n.Junction(NodeID(len(n.Nodes))) != nil {
		t.Error("Junction out-of-range should be nil")
	}
	if n.Junction(jid) == nil {
		t.Error("existing junction not found")
	}
	if got := len(n.RoadsInto(jid)); got != 3 {
		t.Errorf("RoadsInto = %d, want 3", got)
	}
	if got := len(n.RoadsOutOf(jid)); got != 3 {
		t.Errorf("RoadsOutOf = %d, want 3", got)
	}
}
