package network

import (
	"testing"
	"testing/quick"
)

func TestDirOpposite(t *testing.T) {
	want := map[Dir]Dir{North: South, South: North, East: West, West: East}
	for d, o := range want {
		if d.Opposite() != o {
			t.Errorf("%v.Opposite() = %v, want %v", d, d.Opposite(), o)
		}
	}
}

func TestDirRotationsInvertEachOther(t *testing.T) {
	f := func(raw uint8) bool {
		d := Dir(raw % numDirs)
		return d.CW().CCW() == d && d.CCW().CW() == d && d.Opposite().Opposite() == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirVectorUnit(t *testing.T) {
	for _, d := range Dirs {
		dx, dy := d.Vector()
		if dx*dx+dy*dy != 1 {
			t.Errorf("%v.Vector() = (%d,%d) not unit", d, dx, dy)
		}
		ox, oy := d.Opposite().Vector()
		if dx != -ox || dy != -oy {
			t.Errorf("%v vector not opposite of %v", d, d.Opposite())
		}
	}
}

func TestApplyTurnGeometry(t *testing.T) {
	// A vehicle heading south (entered from the north): left exit is
	// east, right exit is west — the Figure 1 example (L_1^6 is a left
	// turn onto the east outgoing road).
	if got := South.Apply(Left); got != East {
		t.Errorf("South.Apply(Left) = %v, want East", got)
	}
	if got := South.Apply(Right); got != West {
		t.Errorf("South.Apply(Right) = %v, want West", got)
	}
	if got := South.Apply(Straight); got != South {
		t.Errorf("South.Apply(Straight) = %v, want South", got)
	}
}

func TestTurnBetweenRoundTrip(t *testing.T) {
	f := func(rawDir, rawTurn uint8) bool {
		d := Dir(rawDir % numDirs)
		turn := Turn(rawTurn % numTurns)
		out := d.Apply(turn)
		got, ok := TurnBetween(d, out)
		return ok && got == turn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTurnBetweenRejectsUTurn(t *testing.T) {
	for _, d := range Dirs {
		if _, ok := TurnBetween(d, d.Opposite()); ok {
			t.Errorf("TurnBetween(%v, %v) accepted a U-turn", d, d.Opposite())
		}
	}
}

func TestStrings(t *testing.T) {
	if North.String() != "north" || West.String() != "west" {
		t.Error("direction names wrong")
	}
	if Left.String() != "left" || Straight.String() != "straight" || Right.String() != "right" {
		t.Error("turn names wrong")
	}
	if Dir(9).String() == "" || Turn(9).String() == "" {
		t.Error("out-of-range values should still print")
	}
	if Dir(9).Valid() || Turn(9).Valid() {
		t.Error("out-of-range values reported valid")
	}
}
