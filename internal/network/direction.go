// Package network models signalized road networks as directed graphs, the
// formalism of Section II of the paper: nodes are roads participating in
// the traffic flow through a junction, connected by feasible links that a
// controller can activate in compatible groups called control phases.
//
// The package provides the compass/turn geometry, road and junction
// records, the four-phase table of the paper's Figure 1, a general network
// builder, and a rectangular-grid generator for the 3×3 evaluation network.
package network

import "fmt"

// Dir is a compass direction. It is used both for the side of a junction an
// approach comes from and for a vehicle's heading of travel.
type Dir uint8

// The four compass directions. Grid coordinates put row 0 at the north and
// column 0 at the west, so North is -y and East is +x.
const (
	North Dir = iota
	East
	South
	West
	numDirs = 4
)

// Dirs lists all directions in a stable order, convenient for iteration.
var Dirs = [numDirs]Dir{North, East, South, West}

// String returns the direction name.
func (d Dir) String() string {
	switch d {
	case North:
		return "north"
	case East:
		return "east"
	case South:
		return "south"
	case West:
		return "west"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Valid reports whether d is one of the four compass directions.
func (d Dir) Valid() bool { return d < numDirs }

// Opposite returns the direction rotated by 180 degrees.
func (d Dir) Opposite() Dir { return (d + 2) % numDirs }

// CW returns the direction rotated clockwise by 90 degrees.
func (d Dir) CW() Dir { return (d + 1) % numDirs }

// CCW returns the direction rotated counter-clockwise by 90 degrees.
func (d Dir) CCW() Dir { return (d + 3) % numDirs }

// Vector returns the unit grid step for the direction, with y growing
// southward (row index) and x growing eastward (column index).
func (d Dir) Vector() (dx, dy int) {
	switch d {
	case North:
		return 0, -1
	case East:
		return 1, 0
	case South:
		return 0, 1
	default:
		return -1, 0
	}
}

// Turn identifies a movement through a junction relative to the vehicle's
// heading, following right-hand traffic: for a vehicle heading south, East
// is to its left.
type Turn uint8

// The three movements of a dedicated-turning-lane approach.
const (
	Left Turn = iota
	Straight
	Right
	numTurns = 3
)

// Turns lists all movements in a stable order.
var Turns = [numTurns]Turn{Left, Straight, Right}

// String returns the movement name.
func (t Turn) String() string {
	switch t {
	case Left:
		return "left"
	case Straight:
		return "straight"
	case Right:
		return "right"
	}
	return fmt.Sprintf("Turn(%d)", uint8(t))
}

// Valid reports whether t is one of the three movements.
func (t Turn) Valid() bool { return t < numTurns }

// Apply returns the heading after making turn t while travelling in
// heading d. A left turn from heading south yields east.
func (d Dir) Apply(t Turn) Dir {
	switch t {
	case Left:
		return d.CCW()
	case Right:
		return d.CW()
	default:
		return d
	}
}

// TurnBetween returns the movement that takes heading in to heading out.
// The second result is false for a U-turn (out opposite of in), which the
// junction model does not permit.
func TurnBetween(in, out Dir) (Turn, bool) {
	switch out {
	case in:
		return Straight, true
	case in.CCW():
		return Left, true
	case in.CW():
		return Right, true
	default:
		return Straight, false
	}
}
