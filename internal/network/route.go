package network

import "fmt"

// TurnPath computes the movement sequence a vehicle must make to travel
// from the given entry road to the given exit road, using breadth-first
// search over junction links (fewest junctions first). It enables
// explicit vehicle.PathPlan routes on arbitrary topologies where the grid
// one-turn model does not apply.
func (n *Network) TurnPath(entry, exit RoadID) ([]Turn, error) {
	if n.Road(entry) == nil || n.Road(exit) == nil {
		return nil, fmt.Errorf("network: TurnPath: unknown road")
	}
	if entry == exit {
		return nil, nil
	}
	type state struct {
		road RoadID
		prev int // index into the visit list, -1 for the start
		turn Turn
	}
	visits := []state{{road: entry, prev: -1}}
	seen := map[RoadID]bool{entry: true}
	for head := 0; head < len(visits); head++ {
		cur := visits[head]
		j := n.Junction(n.Road(cur.road).To)
		if j == nil {
			continue // road ends at a terminal
		}
		for li := range j.Links {
			l := &j.Links[li]
			if l.In != cur.road || seen[l.Out] {
				continue
			}
			seen[l.Out] = true
			visits = append(visits, state{road: l.Out, prev: head, turn: l.Turn})
			if l.Out == exit {
				// Reconstruct the turn sequence by walking the prev
				// pointers back to the start state.
				var rev []Turn
				for idx := len(visits) - 1; visits[idx].prev != -1; idx = visits[idx].prev {
					rev = append(rev, visits[idx].turn)
				}
				turns := make([]Turn, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					turns = append(turns, rev[i])
				}
				return turns, nil
			}
		}
	}
	return nil, fmt.Errorf("network: no path from road %d to road %d", entry, exit)
}
