package network

import (
	"testing"
	"testing/quick"
)

func TestTurnPathStraightThrough(t *testing.T) {
	g := mustGrid(t, DefaultGridSpec())
	// North entry column 0 straight through to the south exit column 0.
	entry := g.Entries(North)[0]
	exit := g.Exits(South)[0]
	turns, err := g.TurnPath(entry, exit)
	if err != nil {
		t.Fatal(err)
	}
	if len(turns) != 3 {
		t.Fatalf("turns = %v, want 3 movements", turns)
	}
	for i, tr := range turns {
		if tr != Straight {
			t.Errorf("turn %d = %v, want straight", i, tr)
		}
	}
}

func TestTurnPathWithTurn(t *testing.T) {
	g := mustGrid(t, DefaultGridSpec())
	// North entry column 0 to east exit row 0: shortest is a left turn
	// at the first junction then straight across.
	entry := g.Entries(North)[0]
	exit := g.Exits(East)[0]
	turns, err := g.TurnPath(entry, exit)
	if err != nil {
		t.Fatal(err)
	}
	if len(turns) != 3 {
		t.Fatalf("turns = %v, want 3 movements", turns)
	}
	if turns[0] != Left || turns[1] != Straight || turns[2] != Straight {
		t.Fatalf("turns = %v, want [left straight straight]", turns)
	}
}

func TestTurnPathIdentityAndErrors(t *testing.T) {
	g := mustGrid(t, DefaultGridSpec())
	entry := g.Entries(North)[0]
	if turns, err := g.TurnPath(entry, entry); err != nil || len(turns) != 0 {
		t.Errorf("identity path = %v, %v", turns, err)
	}
	if _, err := g.TurnPath(RoadID(9999), entry); err == nil {
		t.Error("unknown entry accepted")
	}
	if _, err := g.TurnPath(entry, RoadID(9999)); err == nil {
		t.Error("unknown exit accepted")
	}
	// No path INTO an entry road (they start at terminals).
	other := g.Entries(South)[0]
	if _, err := g.TurnPath(entry, other); err == nil {
		t.Error("path into a terminal-origin road accepted")
	}
}

// TestTurnPathReachesEveryExit: from any entry, every exit road except
// the entry's own U-turn twin is reachable, and replaying the returned
// turns through the junction tables really ends at the exit.
func TestTurnPathReachesEveryExit(t *testing.T) {
	g := mustGrid(t, DefaultGridSpec())
	entries := g.EntryRoads()
	exits := g.ExitRoads()
	f := func(ei, xi uint8) bool {
		entry := entries[int(ei)%len(entries)]
		exit := exits[int(xi)%len(exits)]
		// The exit next to the entry terminal requires a U-turn, which
		// the junction model forbids; skip that pair.
		if g.Road(entry).From == g.Road(exit).To {
			return true
		}
		turns, err := g.TurnPath(entry, exit)
		if err != nil {
			t.Logf("no path %d->%d: %v", entry, exit, err)
			return false
		}
		// Replay.
		cur := entry
		for _, tr := range turns {
			j := g.Junction(g.Road(cur).To)
			if j == nil {
				t.Logf("replay fell off the network at road %d", cur)
				return false
			}
			li := j.LinkFor(g.Road(cur).Heading.Opposite(), tr)
			if li < 0 {
				t.Logf("replay: no link for %v at junction %d", tr, j.Node)
				return false
			}
			cur = j.Links[li].Out
		}
		return cur == exit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
