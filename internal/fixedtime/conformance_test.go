package fixedtime_test

import (
	"testing"

	"utilbp/internal/fixedtime"
	"utilbp/internal/signal/signaltest"
)

// TestConformanceFixedTime runs the shared controller conformance suite
// over the pretimed round-robin controller, including an offset variant
// and the amber-free configuration. FixedTime implements no
// signal.BatchFactory, so the suite also exercises the pure
// signal.Batched adapter path for it.
func TestConformanceFixedTime(t *testing.T) {
	cases := []signaltest.Case{
		{Name: "FIXED", Factory: fixedtime.Factory(fixedtime.Options{GreenSteps: 22, AmberSteps: 4}), AmberSteps: 4, MinGreenSteps: 22},
		{Name: "FIXED-offset", Factory: fixedtime.Factory(fixedtime.Options{GreenSteps: 15, AmberSteps: 3, Offset: 7}), AmberSteps: 3},
		{Name: "FIXED-noamber", Factory: fixedtime.Factory(fixedtime.Options{GreenSteps: 10}), MinGreenSteps: 10},
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) { signaltest.Run(t, c) })
	}
}
