package fixedtime

import (
	"testing"

	"utilbp/internal/signal"
)

func info4() signal.JunctionInfo {
	return signal.JunctionInfo{
		Label:    "J",
		NumLinks: 4,
		Phases:   [][]int{{0}, {1}, {2}, {3}},
		DeltaT:   1,
	}
}

func TestCycle(t *testing.T) {
	c, err := New(info4(), Options{GreenSteps: 3, AmberSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []signal.Phase{
		1, 1, 1, 0, 0,
		2, 2, 2, 0, 0,
		3, 3, 3, 0, 0,
		4, 4, 4, 0, 0,
		1, 1, // wraps around
	}
	for step, w := range want {
		obs := &signal.Obs{Step: step}
		if got := c.Decide(obs); got != w {
			t.Fatalf("step %d: got %v want %v", step, got, w)
		}
	}
}

func TestNoAmber(t *testing.T) {
	c, err := New(info4(), Options{GreenSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 16; step++ {
		if got := c.Decide(&signal.Obs{Step: step}); got == signal.Amber {
			t.Fatalf("step %d produced amber with AmberSteps=0", step)
		}
	}
}

func TestOffsetStaggers(t *testing.T) {
	a, _ := New(info4(), Options{GreenSteps: 4, AmberSteps: 1})
	b, _ := New(info4(), Options{GreenSteps: 4, AmberSteps: 1, Offset: 5})
	// b at step 0 behaves like a at step 5.
	if got, want := b.Decide(&signal.Obs{Step: 0}), a.Decide(&signal.Obs{Step: 5}); got != want {
		t.Fatalf("offset: got %v want %v", got, want)
	}
}

func TestAllPhasesGetEqualGreen(t *testing.T) {
	c, _ := New(info4(), Options{GreenSteps: 7, AmberSteps: 3})
	counts := map[signal.Phase]int{}
	cycle := (7 + 3) * 4
	for step := 0; step < cycle*5; step++ {
		counts[c.Decide(&signal.Obs{Step: step})]++
	}
	for p := signal.Phase(1); p <= 4; p++ {
		if counts[p] != 7*5 {
			t.Errorf("phase %v green steps = %d, want %d", p, counts[p], 7*5)
		}
	}
	if counts[signal.Amber] != 3*4*5 {
		t.Errorf("amber steps = %d, want %d", counts[signal.Amber], 3*4*5)
	}
}

func TestRejectsBadOptions(t *testing.T) {
	if _, err := New(info4(), Options{GreenSteps: 0}); err == nil {
		t.Error("GreenSteps=0 accepted")
	}
	if _, err := New(info4(), Options{GreenSteps: 3, AmberSteps: -1}); err == nil {
		t.Error("negative AmberSteps accepted")
	}
	bad := info4()
	bad.Phases = nil
	if _, err := New(bad, Options{GreenSteps: 3}); err == nil {
		t.Error("invalid junction info accepted")
	}
}

func TestFactory(t *testing.T) {
	f := Factory(Options{GreenSteps: 2, AmberSteps: 1})
	if f.Name() != "FIXED" {
		t.Errorf("factory name %q", f.Name())
	}
	c, err := f.New(info4())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "FIXED" {
		t.Errorf("controller name %q", c.Name())
	}
}
