// Package fixedtime implements a pretimed round-robin signal controller:
// phases rotate in a fixed cycle with fixed green and amber durations,
// independent of traffic. It is the non-adaptive reference point below
// every back-pressure variant.
package fixedtime

import (
	"fmt"

	"utilbp/internal/signal"
)

// Options parameterizes the pretimed cycle.
type Options struct {
	// GreenSteps is the mini-slots of green per phase (required > 0).
	GreenSteps int
	// AmberSteps is the mini-slots of amber between phases.
	AmberSteps int
	// Offset shifts the cycle start, staggering junctions.
	Offset int
}

// Controller is a pretimed round-robin controller. Its decision is a pure
// function of the step index, so it needs no internal state.
type Controller struct {
	opts      Options
	numPhases int
}

// New returns a pretimed controller for the junction.
func New(info signal.JunctionInfo, opts Options) (*Controller, error) {
	if opts.GreenSteps <= 0 {
		return nil, fmt.Errorf("fixedtime: GreenSteps must be positive, got %d", opts.GreenSteps)
	}
	if opts.AmberSteps < 0 {
		return nil, fmt.Errorf("fixedtime: AmberSteps must be non-negative, got %d", opts.AmberSteps)
	}
	if err := info.Validate(); err != nil {
		return nil, err
	}
	return &Controller{opts: opts, numPhases: info.NumPhases()}, nil
}

// Name implements signal.Controller.
func (c *Controller) Name() string { return "FIXED" }

// Decide implements signal.Controller: phase p runs for GreenSteps, then
// AmberSteps of transition, cycling p = 1..numPhases.
func (c *Controller) Decide(obs *signal.Obs) signal.Phase {
	seg := c.opts.GreenSteps + c.opts.AmberSteps
	cycle := seg * c.numPhases
	pos := (obs.Step + c.opts.Offset) % cycle
	if pos < 0 {
		pos += cycle
	}
	phase := pos / seg
	if pos%seg < c.opts.GreenSteps {
		return signal.Phase(phase + 1)
	}
	return signal.Amber
}

// Factory returns a signal.Factory building pretimed controllers.
func Factory(opts Options) signal.Factory {
	return signal.FactoryFunc{
		Label: "FIXED",
		Build: func(info signal.JunctionInfo) (signal.Controller, error) {
			return New(info, opts)
		},
	}
}
