// Package chaos is the randomized fault-injection harness of
// DESIGN.md §14: a seeded generator of random-but-valid disruption
// scenarios — area incidents, dark-junction clusters, sensor-outage
// storms, surge stacks, crossed with random grids, controller families
// and observation sensors — plus the drill that runs each scenario
// while asserting the engine's strongest cross-cutting contracts:
// structural invariants at every checkpoint, snapshot/restore
// equivalence (resume bit-for-bit from mid-run checkpoints) and Reset
// replay. The generator is total: every uint64 seed maps to a valid
// scenario, which is what lets FuzzChaosSchedule hand it raw fuzzer
// bytes.
package chaos

import (
	"bytes"
	"fmt"

	"utilbp/internal/event"
	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
)

// Scenario is one generated chaos configuration: a disrupted setup, a
// demand pattern, a controller family and the drill's step plan.
type Scenario struct {
	// Seed is the generator seed the scenario was derived from.
	Seed uint64
	// Setup carries the randomized grid, sensor, demand scale, dispatch
	// mode and the generated disruption schedule.
	Setup scenario.Setup
	// Pattern is the Table II demand shape.
	Pattern scenario.Pattern
	// Controller is the randomly drawn controller family.
	Controller scenario.ControllerSpec
	// MixedLanes enables the head-of-line-blocking extension.
	MixedLanes bool
	// Steps is the drill horizon in mini-slots.
	Steps int
	// CheckAt are the snapshot checkpoints, strictly increasing and
	// inside (0, Steps).
	CheckAt []int
}

// Describe renders a compact one-line summary for soak logs and
// failure messages.
func (sc Scenario) Describe() string {
	events := event.Summarize(sc.Setup.Events)
	if events == "" {
		events = "none"
	}
	return fmt.Sprintf("seed=%d %dx%d pattern=%v controller=%s sensor=%v events=%s steps=%d checkpoints=%v",
		sc.Seed, sc.Setup.Grid.Rows, sc.Setup.Grid.Cols, sc.Pattern, sc.Controller,
		sc.Setup.Sensor, events, sc.Steps, sc.CheckAt)
}

// Generate derives a scenario from a seed. It is total and
// deterministic: every seed yields a valid scenario (grids 2×2..4×4,
// every controller family and sensor kind reachable, disruption
// windows disjoint per target by construction), and the same seed
// always yields the same scenario.
func Generate(seed uint64) (Scenario, error) {
	r := rng.New(seed).Split("chaos")
	setup := scenario.Default()
	setup.Grid.Rows = 2 + r.Intn(3)
	setup.Grid.Cols = 2 + r.Intn(3)
	setup.Seed = seed

	sc := Scenario{
		Seed:    seed,
		Pattern: scenario.Patterns[r.Intn(len(scenario.Patterns))],
		Steps:   160 + r.Intn(120),
	}

	names := scenario.ControllerSpecNames()
	ctl, err := scenario.ParseControllerSpec(names[r.Intn(len(names))])
	if err != nil {
		return Scenario{}, fmt.Errorf("chaos: seed %d controller: %w", seed, err)
	}
	sc.Controller = ctl

	switch r.Intn(3) {
	case 1:
		setup.Sensor = sensing.Loop()
	case 2:
		setup.Sensor = sensing.CV(0.1 + 0.9*r.Float64())
	}
	if r.Bool(0.5) {
		setup.DemandScale = 0.7 + 0.8*r.Float64()
	}
	if r.Bool(0.3) {
		setup.Control = signal.ControlPerJunction
	}
	sc.MixedLanes = r.Bool(0.25)

	horizon := float64(sc.Steps)
	g, err := network.Grid(setup.Grid)
	if err != nil {
		return Scenario{}, fmt.Errorf("chaos: seed %d grid: %w", seed, err)
	}

	// Area incidents: sequential time windows keep every road's incident
	// windows disjoint even when two areas hit the same roads.
	cursor := 0.0
	for i, n := 0, 1+r.Intn(2); i < n; i++ {
		t0, dur := nextWindow(r, &cursor)
		if t0 >= horizon {
			break
		}
		k := 1 + r.Intn(min(setup.Grid.Rows, setup.Grid.Cols))
		setup, err = setup.WithAreaIncidentAt(
			r.Intn(setup.Grid.Rows), r.Intn(setup.Grid.Cols), k,
			t0, dur, 0.05+0.9*r.Float64())
		if err != nil {
			return Scenario{}, fmt.Errorf("chaos: seed %d area incident: %w", seed, err)
		}
	}

	// Dark cluster: a clamped 2×2 junction neighborhood, one window per
	// junction (per-target disjoint by construction).
	if r.Bool(0.7) {
		r0, c0 := r.Intn(setup.Grid.Rows), r.Intn(setup.Grid.Cols)
		m := 1 + r.Intn(3)
		for dr := 0; dr <= 1 && m > 0; dr++ {
			for dc := 0; dc <= 1 && m > 0; dc++ {
				row, col := r0+dr, c0+dc
				if row >= setup.Grid.Rows || col >= setup.Grid.Cols {
					continue
				}
				name := g.Network.Node(g.JunctionAt(row, col)).Name
				spec := event.Dark(name, float64(r.Intn(sc.Steps-40)), 10+float64(r.Intn(40)))
				if r.Bool(0.3) {
					spec.GreenSec = 8 + float64(r.Intn(10))
					spec.AmberSec = 2 + float64(r.Intn(3))
					spec.AllRedSec = 2 + float64(r.Intn(6))
				}
				setup.Events = append(setup.Events, spec)
				m--
			}
		}
	}

	// Outage storm: distinct approach roads (each road enters exactly one
	// junction, so one window per road is disjoint by construction).
	var approaches []string
	for i := range g.Network.Nodes {
		j := g.Network.Junction(g.Network.Nodes[i].ID)
		if j == nil {
			continue
		}
		for _, dir := range network.Dirs {
			if rid := j.In[dir]; rid != network.NoRoad {
				approaches = append(approaches, g.Road(rid).Name)
			}
		}
	}
	for _, idx := range r.Perm(len(approaches))[:min(r.Intn(5), len(approaches))] {
		mode := sensing.OutageBlank
		if r.Bool(0.5) {
			mode = sensing.OutageFreeze
		}
		setup.Events = append(setup.Events,
			event.Outage(approaches[idx], float64(r.Intn(sc.Steps-40)), 10+float64(r.Intn(40)), mode))
	}

	// Surge stack: network-wide windows, sequential so the demand
	// multiplier stays a single well-defined value at every step.
	cursor = float64(r.Intn(40))
	for i, n := 0, r.Intn(3); i < n; i++ {
		t0, dur := nextWindow(r, &cursor)
		if t0 >= horizon {
			break
		}
		setup.Events = append(setup.Events, event.Surge(t0, dur, 0.5+1.3*r.Float64()))
	}

	// Two strictly increasing checkpoints in the first three quarters of
	// the horizon, so the resumed tail is never trivial.
	k1 := sc.Steps/4 + r.Intn(sc.Steps/4)
	k2 := k1 + 1 + r.Intn(sc.Steps/4)
	sc.CheckAt = []int{k1, k2}
	sc.Setup = setup
	return sc, nil
}

// nextWindow draws a window after the cursor and advances the cursor
// past it, so consecutive windows from one call site never overlap.
func nextWindow(r *rng.Source, cursor *float64) (t0, dur float64) {
	t0 = *cursor + float64(r.Intn(30))
	dur = 15 + float64(r.Intn(45))
	*cursor = t0 + dur
	return t0, dur
}

// Drill runs the scenario while asserting the engine's cross-cutting
// contracts: CheckInvariants and conservation ordering at every
// checkpoint and at the horizon, snapshot/restore equivalence (resume
// from every checkpoint must rejoin the uninterrupted run bit-for-bit)
// and Reset replay (a reset engine re-runs the whole horizon into the
// same final snapshot).
func Drill(sc Scenario) error {
	factory, err := sc.Setup.Controller(sc.Controller)
	if err != nil {
		return fmt.Errorf("chaos: %s: controller: %w", sc.Describe(), err)
	}
	built, err := sc.Setup.Build(sc.Pattern)
	if err != nil {
		return fmt.Errorf("chaos: %s: build: %w", sc.Describe(), err)
	}
	engine, err := sim.New(sim.Config{
		Net:              built.Grid.Network,
		Controllers:      factory,
		Demand:           built.Demand,
		Router:           built.Router,
		Routes:           built.Routes,
		Sensor:           built.Sensor,
		Control:          built.Setup.Control,
		Events:           built.Events,
		MixedLanes:       sc.MixedLanes,
		ExpectedVehicles: built.ExpectedVehicles(float64(sc.Steps)),
	})
	if err != nil {
		return fmt.Errorf("chaos: %s: engine: %w", sc.Describe(), err)
	}

	check := func(stage string) error {
		if err := engine.CheckInvariants(); err != nil {
			return fmt.Errorf("chaos: %s: invariants at %s: %w", sc.Describe(), stage, err)
		}
		t := engine.Totals()
		if t.Spawned < t.Entered || t.Entered < t.Exited {
			return fmt.Errorf("chaos: %s: conservation at %s: spawned %d < entered %d or entered < exited %d",
				sc.Describe(), stage, t.Spawned, t.Entered, t.Exited)
		}
		return nil
	}

	snaps := make([][]byte, len(sc.CheckAt))
	at := 0
	for i, k := range sc.CheckAt {
		engine.Run(k - at)
		at = k
		if err := check(fmt.Sprintf("step %d", k)); err != nil {
			return err
		}
		snaps[i] = engine.Snapshot()
	}
	engine.Run(sc.Steps - at)
	if err := check("horizon"); err != nil {
		return err
	}
	final := engine.Snapshot()
	finalTotals := engine.Totals()

	for i, k := range sc.CheckAt {
		if err := engine.Restore(snaps[i]); err != nil {
			return fmt.Errorf("chaos: %s: restore at step %d: %w", sc.Describe(), k, err)
		}
		// Arena round-trip: re-serializing the just-restored state must
		// reproduce the checkpoint bytes exactly — this pins the
		// column-major vehicle-arena codec (snapshot v2, DESIGN.md §16)
		// alongside the rest of the state sections.
		if got := engine.Snapshot(); !bytes.Equal(got, snaps[i]) {
			return fmt.Errorf("chaos: %s: snapshot after restore at step %d does not round-trip (%d vs %d bytes)",
				sc.Describe(), k, len(got), len(snaps[i]))
		}
		if err := check(fmt.Sprintf("restore at step %d", k)); err != nil {
			return err
		}
		engine.Run(sc.Steps - k)
		if got := engine.Snapshot(); !bytes.Equal(got, final) {
			return fmt.Errorf("chaos: %s: resume from step %d diverged from the uninterrupted run", sc.Describe(), k)
		}
		if engine.Totals() != finalTotals {
			return fmt.Errorf("chaos: %s: resume from step %d changed totals: %+v vs %+v",
				sc.Describe(), k, engine.Totals(), finalTotals)
		}
	}

	if err := engine.Reset(sc.Setup.Seed); err != nil {
		return fmt.Errorf("chaos: %s: reset: %w", sc.Describe(), err)
	}
	engine.Run(sc.Steps)
	if got := engine.Snapshot(); !bytes.Equal(got, final) {
		return fmt.Errorf("chaos: %s: reset replay diverged from the original run", sc.Describe())
	}
	return nil
}
