package chaos

import (
	"fmt"
	"testing"
)

// TestGenerateDeterministic pins that a seed maps to exactly one
// scenario: the generator is the identity card of a chaos run, so the
// same seed must describe the same setup, schedule and step plan.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 40} {
		a, err := Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		if a.Describe() != b.Describe() {
			t.Fatalf("seed %d generated two scenarios:\n%s\n%s", seed, a.Describe(), b.Describe())
		}
	}
}

// TestGenerateShape samples the generator and checks structural
// validity: grids inside the 2×2..4×4 band, strictly increasing
// checkpoints inside the horizon, and every generated schedule
// buildable (Setup.Build compiles the events, so per-target window
// overlap would fail here).
func TestGenerateShape(t *testing.T) {
	kinds := map[string]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		sc, err := Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		g := sc.Setup.Grid
		if g.Rows < 2 || g.Rows > 4 || g.Cols < 2 || g.Cols > 4 {
			t.Fatalf("seed %d: grid %dx%d outside the 2..4 band", seed, g.Rows, g.Cols)
		}
		prev := 0
		for _, k := range sc.CheckAt {
			if k <= prev || k >= sc.Steps {
				t.Fatalf("seed %d: checkpoints %v not strictly increasing inside (0, %d)", seed, sc.CheckAt, sc.Steps)
			}
			prev = k
		}
		if _, err := sc.Setup.Build(sc.Pattern); err != nil {
			t.Fatalf("seed %d: generated schedule does not compile: %v", seed, err)
		}
		kinds[sc.Controller.Kind.String()] = true
	}
	if len(kinds) < 4 {
		t.Fatalf("64 seeds only reached controller kinds %v; the axis is not being sampled", kinds)
	}
}

// TestChaosDrillSeeds runs the full drill — invariants, snapshot/
// restore equivalence at the generated checkpoints, Reset replay — on
// a spread of fixed seeds. This is the deterministic smoke the fuzz
// target extends.
func TestChaosDrillSeeds(t *testing.T) {
	for _, seed := range []uint64{0, 1, 2, 3, 5, 8, 13, 21} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc, err := Generate(seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := Drill(sc); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// FuzzChaosSchedule is the randomized robustness gate: any uint64 the
// fuzzer produces must map to a valid scenario whose drill passes —
// invariants at every checkpoint, bit-for-bit snapshot/restore
// equivalence and Reset replay under randomly composed disruption
// schedules, controllers and sensors. The seed corpus in
// testdata/fuzz/FuzzChaosSchedule keeps a spread of grids, controller
// families and disruption mixes in CI's 20 s smoke budget.
func FuzzChaosSchedule(f *testing.F) {
	for _, seed := range []uint64{0, 1, 7, 42, 1969, 1 << 33, 0xdeadbeef} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		sc, err := Generate(seed)
		if err != nil {
			t.Fatalf("Generate(%d): %v", seed, err)
		}
		if err := Drill(sc); err != nil {
			t.Fatal(err)
		}
	})
}
