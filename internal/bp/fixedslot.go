package bp

import (
	"fmt"

	"utilbp/internal/signal"
)

// SlotOptions configures the fixed-length-slot scheduler shared by the
// baselines: the phase chosen at a slot boundary (from the pressures
// observed at that instant, per the paper's criticism (i)) is held for
// the whole control period regardless of how queues evolve.
type SlotOptions struct {
	// PeriodSteps is the control phase period in mini-slots (the x-axis
	// of the paper's Figure 2). Required > 0.
	PeriodSteps int
	// AmberSteps is the transition-phase duration at slot boundaries.
	AmberSteps int
	// SkipRedundantAmber skips the transition phase when the newly
	// selected phase equals the current one. The default (false)
	// matches the paper's description of the conventional algorithms —
	// "each slot ends with a transition phase" — and is what gives
	// Figure 2 its interior optimum: short periods drown in amber,
	// long periods react slowly.
	SkipRedundantAmber bool
}

// Validate checks the options.
func (o SlotOptions) Validate() error {
	if o.PeriodSteps <= 0 {
		return fmt.Errorf("bp: PeriodSteps must be positive, got %d", o.PeriodSteps)
	}
	if o.AmberSteps < 0 {
		return fmt.Errorf("bp: AmberSteps must be non-negative, got %d", o.AmberSteps)
	}
	return nil
}

// Controller is a fixed-length-slot back-pressure controller: at each
// slot boundary it activates the phase with the maximum total link gain
// and holds it for the whole period.
type Controller struct {
	label string
	info  signal.JunctionInfo
	gain  GainFunc
	opts  SlotOptions
	gains []float64

	current    signal.Phase
	pending    signal.Phase
	amberUntil int // amber runs while step < amberUntil
	nextSwitch int // next slot boundary step
	started    bool
}

// NewController builds a fixed-slot controller with the given link gain.
func NewController(label string, info signal.JunctionInfo, gain GainFunc, opts SlotOptions) (*Controller, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	if gain == nil {
		return nil, fmt.Errorf("bp: gain function is required")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		label: label,
		info:  info,
		gain:  gain,
		opts:  opts,
		gains: make([]float64, info.NumLinks),
	}, nil
}

// Name implements signal.Controller.
func (c *Controller) Name() string { return c.label }

// Decide implements signal.Controller.
func (c *Controller) Decide(obs *signal.Obs) signal.Phase {
	step := obs.Step
	if step < c.amberUntil {
		return signal.Amber
	}
	if c.pending != signal.Amber {
		// Amber just expired: begin the pending phase's green period.
		c.current = c.pending
		c.pending = signal.Amber
		c.nextSwitch = step + c.opts.PeriodSteps
		return c.current
	}
	if c.started && step < c.nextSwitch {
		return c.current
	}
	// Slot boundary: select the phase with the maximum total gain from
	// the pressures observed at this instant.
	best := c.selectPhase(obs)
	if !c.started || c.opts.AmberSteps == 0 ||
		(best == c.current && c.opts.SkipRedundantAmber) {
		c.started = true
		c.current = best
		c.nextSwitch = step + c.opts.PeriodSteps
		return c.current
	}
	c.pending = best
	c.amberUntil = step + c.opts.AmberSteps
	return signal.Amber
}

// selectPhase scores every phase by total link gain. Ties keep the
// current phase (avoiding a transition), then prefer the lowest phase
// number; with every gain at zero the current phase is kept.
func (c *Controller) selectPhase(obs *signal.Obs) signal.Phase {
	for li := range obs.Links {
		c.gains[li] = c.gain(&obs.Links[li])
	}
	best := signal.Amber
	bestTotal := 0.0
	for pi := range c.info.Phases {
		total := phaseTotal(c.gains, c.info.Phases[pi])
		p := signal.Phase(pi + 1)
		if best == signal.Amber || total > bestTotal ||
			(total == bestTotal && p == c.current && best != c.current) {
			best, bestTotal = p, total
		}
	}
	if bestTotal == 0 && c.started && c.current != signal.Amber {
		return c.current
	}
	return best
}

// factory builds fixed-slot controllers with one gain function. It is
// deliberately NOT a signal.BatchFactory: a fixed-slot controller
// evaluates pressures only at slot boundaries, so there is no
// every-round gain sweep for a dense slab to amortize (unlike UTIL-BP,
// core.BatchController) — and a batch-capable factory would switch
// auto-mode engines onto batched dispatch, paying the change-set upkeep
// in sense with nothing consuming it. Forced batched dispatch
// (signal.ControlBatched) still works: the engine adapter-wraps the
// per-junction controllers with signal.Batched, decision-identical.
type factory struct {
	label string
	gain  GainFunc
	opts  SlotOptions
}

// Name implements signal.Factory.
func (f factory) Name() string { return f.label }

// New implements signal.Factory.
func (f factory) New(info signal.JunctionInfo) (signal.Controller, error) {
	return NewController(f.label, info, f.gain, f.opts)
}

// CAPBP returns the CAP-BP factory: capacity-aware gains on fixed slots,
// the paper's main baseline [4].
func CAPBP(opts SlotOptions) signal.Factory {
	return factory{label: "CAP-BP", gain: CapacityAwareGain, opts: opts}
}

// CAPBPApproaching returns CAP-BP with approaching vehicles counted in
// the incoming pressure, matching UTIL-BP's detector convention.
func CAPBPApproaching(opts SlotOptions) signal.Factory {
	return factory{label: "CAP-BP", gain: CapacityAwareGainApproaching, opts: opts}
}

// CAPBPNormalized returns the capacity-normalized CAP-BP variant.
func CAPBPNormalized(opts SlotOptions) signal.Factory {
	return factory{label: "CAP-BP-NORM", gain: NormalizedCapacityAwareGain, opts: opts}
}

// ORIGBP returns the original back-pressure factory of eq. (5) [3].
func ORIGBP(opts SlotOptions) signal.Factory {
	return factory{label: "ORIG-BP", gain: OriginalGain, opts: opts}
}
