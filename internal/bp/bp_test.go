package bp

import (
	"testing"
	"testing/quick"

	"utilbp/internal/signal"
)

func info2() signal.JunctionInfo {
	return signal.JunctionInfo{
		Label:    "J",
		NumLinks: 4,
		Phases:   [][]int{{0, 1}, {2, 3}},
		WStar:    120,
		DeltaT:   1,
	}
}

func obs4(step int, current signal.Phase, queues, out [4]int) *signal.Obs {
	o := &signal.Obs{Step: step, Time: float64(step), Current: current}
	for i := 0; i < 4; i++ {
		o.Links = append(o.Links, signal.LinkObs{
			Queue:         queues[i],
			ApproachQueue: queues[i] + 1, // whole-road pressure differs
			OutQueue:      out[i],
			OutOccupancy:  out[i],
			OutCapacity:   120,
			InCapacity:    120,
			Mu:            1,
		})
	}
	return o
}

func TestOriginalGain(t *testing.T) {
	l := signal.LinkObs{Queue: 5, ApproachQueue: 12, OutQueue: 4, OutOccupancy: 4, Mu: 2}
	// eq. (5) uses the whole-road queue b_i.
	if got := OriginalGain(&l); got != 16 {
		t.Errorf("OriginalGain = %v, want (12-4)*2 = 16", got)
	}
	neg := signal.LinkObs{Queue: 5, ApproachQueue: 2, OutQueue: 9, OutOccupancy: 9, Mu: 1}
	if got := OriginalGain(&neg); got != 0 {
		t.Errorf("negative pressure gain = %v, want clamp to 0", got)
	}
}

func TestCapacityAwareGain(t *testing.T) {
	full := signal.LinkObs{Queue: 50, OutQueue: 120, OutOccupancy: 120, OutCapacity: 120, Mu: 1}
	if got := CapacityAwareGain(&full); got != 0 {
		t.Errorf("full downstream gain = %v, want 0", got)
	}
	l := signal.LinkObs{Queue: 9, OutQueue: 4, OutOccupancy: 4, OutCapacity: 120, Mu: 1}
	if got := CapacityAwareGain(&l); got != 5 {
		t.Errorf("gain = %v, want 5", got)
	}
	neg := signal.LinkObs{Queue: 2, OutQueue: 9, OutOccupancy: 9, OutCapacity: 120, Mu: 1}
	if got := CapacityAwareGain(&neg); got != 0 {
		t.Errorf("negative pressure gain = %v, want 0", got)
	}
}

func TestNormalizedCapacityAwareGain(t *testing.T) {
	l := signal.LinkObs{Queue: 60, InCapacity: 120, OutQueue: 30, OutOccupancy: 30, OutCapacity: 120, Mu: 2}
	// (60/120 - 30/120) * 2 = 0.5.
	if got := NormalizedCapacityAwareGain(&l); got != 0.5 {
		t.Errorf("normalized gain = %v, want 0.5", got)
	}
	full := signal.LinkObs{Queue: 60, InCapacity: 120, OutQueue: 120, OutOccupancy: 120, OutCapacity: 120, Mu: 1}
	if got := NormalizedCapacityAwareGain(&full); got != 0 {
		t.Errorf("full downstream normalized gain = %v, want 0", got)
	}
	unboundedOut := signal.LinkObs{Queue: 60, InCapacity: 120, OutQueue: 500, OutOccupancy: 500, Mu: 1}
	if got := NormalizedCapacityAwareGain(&unboundedOut); got != 0.5 {
		t.Errorf("unbounded-out normalized gain = %v, want 0.5", got)
	}
	unboundedIn := signal.LinkObs{Queue: 3, OutQueue: 0, OutOccupancy: 0, OutCapacity: 120, Mu: 1}
	if got := NormalizedCapacityAwareGain(&unboundedIn); got != 1 {
		t.Errorf("unbounded-in normalized gain = %v, want 1", got)
	}
}

func TestGainsNonNegativeProperty(t *testing.T) {
	f := func(q, aq, occ uint16, cap uint8) bool {
		l := signal.LinkObs{
			Queue:         int(q % 200),
			ApproachQueue: int(aq % 200),
			OutQueue:      int(occ % 200),
			OutOccupancy:  int(occ % 200),
			OutCapacity:   int(cap),
			InCapacity:    120,
			Mu:            1,
		}
		return OriginalGain(&l) >= 0 && CapacityAwareGain(&l) >= 0 && NormalizedCapacityAwareGain(&l) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedSlotHoldsPhaseForPeriod(t *testing.T) {
	c, err := NewController("CAP-BP", info2(), CapacityAwareGain, SlotOptions{PeriodSteps: 10, AmberSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 heavy at the boundary.
	heavy1 := [4]int{20, 20, 0, 0}
	heavy2 := [4]int{0, 0, 20, 20}
	out := [4]int{0, 0, 0, 0}
	cur := c.Decide(obs4(0, signal.Amber, heavy1, out))
	if cur != 1 {
		t.Fatalf("first slot phase = %v, want 1", cur)
	}
	// Even though traffic flips immediately, the slot must be held:
	// criticism (i) of the paper.
	for k := 1; k < 10; k++ {
		if got := c.Decide(obs4(k, cur, heavy2, out)); got != 1 {
			t.Fatalf("fixed slot abandoned at step %d: %v", k, got)
		}
	}
	// Boundary at k=10: now phase 2 wins, amber starts.
	if got := c.Decide(obs4(10, 1, heavy2, out)); got != signal.Amber {
		t.Fatal("no amber on phase change")
	}
	for k := 11; k < 14; k++ {
		if got := c.Decide(obs4(k, signal.Amber, heavy2, out)); got != signal.Amber {
			t.Fatalf("amber cut short at %d: %v", k, got)
		}
	}
	if got := c.Decide(obs4(14, signal.Amber, heavy2, out)); got != 2 {
		t.Fatal("phase 2 not started after amber")
	}
	// And the new green period runs 10 slots from 14.
	for k := 15; k < 24; k++ {
		if got := c.Decide(obs4(k, 2, heavy1, out)); got != 2 {
			t.Fatalf("second slot abandoned at %d: %v", k, got)
		}
	}
}

func TestFixedSlotNoAmberWhenPhaseUnchanged(t *testing.T) {
	c, err := NewController("CAP-BP", info2(), CapacityAwareGain,
		SlotOptions{PeriodSteps: 5, AmberSteps: 4, SkipRedundantAmber: true})
	if err != nil {
		t.Fatal(err)
	}
	heavy1 := [4]int{20, 20, 0, 0}
	out := [4]int{0, 0, 0, 0}
	cur := signal.Amber
	for k := 0; k < 25; k++ {
		cur = c.Decide(obs4(k, cur, heavy1, out))
		if cur != 1 {
			t.Fatalf("step %d: %v, want uninterrupted phase 1", k, cur)
		}
	}
}

func TestFixedSlotAmberEveryBoundaryByDefault(t *testing.T) {
	c, err := NewController("CAP-BP", info2(), CapacityAwareGain,
		SlotOptions{PeriodSteps: 5, AmberSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	heavy1 := [4]int{20, 20, 0, 0}
	out := [4]int{0, 0, 0, 0}
	cur := signal.Amber
	ambers := 0
	for k := 0; k < 50; k++ {
		cur = c.Decide(obs4(k, cur, heavy1, out))
		if cur == signal.Amber {
			ambers++
		}
	}
	if ambers == 0 {
		t.Fatal("default slot semantics produced no amber despite unchanged phase")
	}
}

func TestFixedSlotKeepsCurrentWhenAllGainsZero(t *testing.T) {
	c, err := NewController("CAP-BP", info2(), CapacityAwareGain,
		SlotOptions{PeriodSteps: 3, AmberSteps: 2, SkipRedundantAmber: true})
	if err != nil {
		t.Fatal(err)
	}
	heavy1 := [4]int{20, 20, 0, 0}
	empty := [4]int{0, 0, 0, 0}
	out := [4]int{0, 0, 0, 0}
	cur := c.Decide(obs4(0, signal.Amber, heavy1, out))
	if cur != 1 {
		t.Fatalf("start phase %v", cur)
	}
	// Queues drain; at the next boundaries everything is zero: the
	// controller keeps phase 1 rather than bouncing through amber.
	for k := 1; k < 12; k++ {
		cur = c.Decide(obs4(k, cur, empty, out))
		if cur != 1 {
			t.Fatalf("step %d: %v, want phase 1 held", k, cur)
		}
	}
}

func TestFixedSlotZeroAmberSwitchesDirectly(t *testing.T) {
	c, err := NewController("x", info2(), CapacityAwareGain, SlotOptions{PeriodSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	heavy1 := [4]int{20, 20, 0, 0}
	heavy2 := [4]int{0, 0, 20, 20}
	out := [4]int{0, 0, 0, 0}
	cur := c.Decide(obs4(0, signal.Amber, heavy1, out))
	for k := 1; k < 4; k++ {
		cur = c.Decide(obs4(k, cur, heavy2, out))
	}
	if got := c.Decide(obs4(4, cur, heavy2, out)); got != 2 {
		t.Fatalf("zero-amber switch got %v, want 2", got)
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController("x", info2(), nil, SlotOptions{PeriodSteps: 5}); err == nil {
		t.Error("nil gain accepted")
	}
	if _, err := NewController("x", info2(), OriginalGain, SlotOptions{}); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewController("x", info2(), OriginalGain, SlotOptions{PeriodSteps: 5, AmberSteps: -1}); err == nil {
		t.Error("negative amber accepted")
	}
	bad := info2()
	bad.Phases = [][]int{{9}}
	if _, err := NewController("x", bad, OriginalGain, SlotOptions{PeriodSteps: 5}); err == nil {
		t.Error("invalid info accepted")
	}
}

func TestFactories(t *testing.T) {
	opts := SlotOptions{PeriodSteps: 16, AmberSteps: 4}
	for _, f := range []signal.Factory{CAPBP(opts), CAPBPNormalized(opts), ORIGBP(opts)} {
		c, err := f.New(info2())
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if c.Name() != f.Name() {
			t.Errorf("controller name %q != factory %q", c.Name(), f.Name())
		}
	}
	bad := SlotOptions{}
	if _, err := CAPBP(bad).New(info2()); err == nil {
		t.Error("factory accepted bad options")
	}
}

// TestOrigVsCapOnFullDownstream: ORIG-BP still scores a link into a full
// road (if whole-road pressure difference is positive), CAP-BP does not —
// the distinction the paper draws between [3] and [4].
func TestOrigVsCapOnFullDownstream(t *testing.T) {
	l := signal.LinkObs{Queue: 50, ApproachQueue: 200, OutQueue: 120, OutOccupancy: 120, OutCapacity: 120, Mu: 1}
	if OriginalGain(&l) <= 0 {
		t.Error("ORIG-BP should ignore capacity")
	}
	if CapacityAwareGain(&l) != 0 {
		t.Error("CAP-BP should zero a full downstream link")
	}
}
