package bp

import (
	"utilbp/internal/signal"
	"utilbp/internal/snap"
)

// SnapshotState implements signal.Snapshotter: the fixed-slot
// controller's cross-step state is its slot machinery — the held and
// pending phases, the amber and slot-boundary timers, and whether the
// first slot has started. The gain slab is per-boundary scratch.
func (c *Controller) SnapshotState(w *snap.Writer) {
	w.Int(int(c.current))
	w.Int(int(c.pending))
	w.Int(c.amberUntil)
	w.Int(c.nextSwitch)
	w.Bool(c.started)
}

// RestoreState implements signal.Snapshotter.
func (c *Controller) RestoreState(r *snap.Reader) error {
	c.current = signal.Phase(r.Int())
	c.pending = signal.Phase(r.Int())
	c.amberUntil = r.Int()
	c.nextSwitch = r.Int()
	c.started = r.Bool()
	return r.Err()
}
