package bp_test

import (
	"testing"

	"utilbp/internal/bp"
	"utilbp/internal/signal/signaltest"
)

// TestConformanceFixedSlot runs the shared controller conformance suite
// over the fixed-slot back-pressure baselines. The fixed-length slot
// scheduler guarantees a full control period of green between
// transitions, so MinGreenSteps pins the period itself.
func TestConformanceFixedSlot(t *testing.T) {
	slot := bp.SlotOptions{PeriodSteps: 20, AmberSteps: 4}
	short := bp.SlotOptions{PeriodSteps: 8, AmberSteps: 2}
	noAmber := bp.SlotOptions{PeriodSteps: 12}
	skipRedundant := bp.SlotOptions{PeriodSteps: 16, AmberSteps: 4, SkipRedundantAmber: true}
	cases := []signaltest.Case{
		{Name: "CAP-BP", Factory: bp.CAPBP(slot), AmberSteps: 4, MinGreenSteps: 20},
		{Name: "CAP-BP-short", Factory: bp.CAPBP(short), AmberSteps: 2, MinGreenSteps: 8},
		{Name: "CAP-BP-approaching", Factory: bp.CAPBPApproaching(slot), AmberSteps: 4, MinGreenSteps: 20},
		{Name: "CAP-BP-NORM", Factory: bp.CAPBPNormalized(slot), AmberSteps: 4, MinGreenSteps: 20},
		{Name: "ORIG-BP", Factory: bp.ORIGBP(slot), AmberSteps: 4, MinGreenSteps: 20},
		{Name: "CAP-BP-noamber", Factory: bp.CAPBP(noAmber), MinGreenSteps: 12},
		{Name: "CAP-BP-skipredundant", Factory: bp.CAPBP(skipRedundant), AmberSteps: 4, MinGreenSteps: 16},
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) { signaltest.Run(t, c) })
	}
}
