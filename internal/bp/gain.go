// Package bp implements the back-pressure baselines the paper compares
// against: the original fixed-slot back-pressure policy of Varaiya [3]
// (eq. 5 of the paper) and the capacity-aware fixed-slot policy CAP-BP of
// Gregoire et al. [4], both driving a common fixed-length-slot phase
// scheduler.
package bp

import "utilbp/internal/signal"

// GainFunc scores one link for phase selection at a slot boundary.
type GainFunc func(l *signal.LinkObs) float64

// OriginalGain is eq. (5): g_o = max(0, (b_i - b_{i'}) µ), using the
// whole-road incoming pressure b_i and clamping negative pressure
// differences to zero (no service toward more-congested roads).
func OriginalGain(l *signal.LinkObs) float64 {
	g := (float64(l.ApproachQueue) - float64(l.OutQueue)) * l.Mu
	if g < 0 {
		return 0
	}
	return g
}

// CapacityAwareGain is the CAP-BP link weight as the paper characterizes
// [4]: zero when the outgoing road is full ("the gain can be zero [4]"),
// otherwise the non-negative pressure difference. It uses the per-lane
// incoming queue, the stronger variant, so the headline comparison
// against UTIL-BP is conservative (see DESIGN.md §2).
func CapacityAwareGain(l *signal.LinkObs) float64 {
	if l.OutFull() {
		return 0
	}
	g := (float64(l.Queue) - float64(l.OutQueue)) * l.Mu
	if g < 0 {
		return 0
	}
	return g
}

// CapacityAwareGainApproaching is CapacityAwareGain with approaching
// vehicles included in the incoming pressure — the same detector
// convention as UTIL-BP's CountApproaching variant, keeping comparisons
// apples-to-apples.
func CapacityAwareGainApproaching(l *signal.LinkObs) float64 {
	if l.OutFull() {
		return 0
	}
	g := (float64(l.Queue+l.InTransit) - float64(l.OutQueue)) * l.Mu
	if g < 0 {
		return 0
	}
	return g
}

// NormalizedCapacityAwareGain is the capacity-normalized variant closer
// to [4]'s formulation: pressures are queue fractions of road capacity,
// so a nearly full downstream road repels service even before saturating.
// Unbounded roads contribute zero pressure.
func NormalizedCapacityAwareGain(l *signal.LinkObs) float64 {
	if l.OutFull() {
		return 0
	}
	in := 0.0
	if l.InCapacity > 0 {
		in = float64(l.Queue) / float64(l.InCapacity)
	} else if l.Queue > 0 {
		in = 1
	}
	out := 0.0
	if l.OutCapacity > 0 {
		out = float64(l.OutQueue) / float64(l.OutCapacity)
	}
	g := (in - out) * l.Mu
	if g < 0 {
		return 0
	}
	return g
}

// phaseTotal sums a phase's link gains.
func phaseTotal(gains []float64, phase []int) float64 {
	total := 0.0
	for _, li := range phase {
		total += gains[li]
	}
	return total
}
