package experiment

import (
	"fmt"

	"utilbp/internal/network"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
)

// ControllerFamily names a class of controllers whose engines the sweep
// scheduler keeps apart in its per-worker cache. Members of one family
// (e.g. CAP-BP at different control periods) share a cached engine and
// are swapped in via sim.Engine.ResetWith; see DESIGN.md §3.
type ControllerFamily string

// The controller families of the Table III sweep.
const (
	FamilyCapBP  ControllerFamily = "CAP-BP"
	FamilyUtilBP ControllerFamily = "UTIL-BP"
)

// engineKey identifies a cached engine: the network it was built for
// (grid geometry — structurally identical grids share engines) and the
// controller family running on it.
type engineKey struct {
	grid   network.GridSpec
	family ControllerFamily
}

// EngineCache reuses simulation engines and built scenarios across sweep
// cells instead of reconstructing them per run. Engines are keyed by
// (network, controller family) and rewound between cells with
// sim.Engine.ResetWith, which swaps in the cell's controller factory,
// demand process and router and replays bit-for-bit identically to a
// freshly built engine (the contract in DESIGN.md §3, pinned by
// TestEngineCacheMatchesFreshRuns). Built scenarios are cached per
// pattern and reseeded through the sim.Reseeder contract.
//
// An EngineCache is NOT safe for concurrent use: each sweep worker owns
// one. It is bound to one base Setup at construction — built scenarios
// are cached per pattern, so a cache must never be shared across
// setups. The zero value is not usable; construct with NewEngineCache.
type EngineCache struct {
	base    scenario.Setup
	built   map[scenario.Pattern]*scenario.Built
	engines map[engineKey]*sim.Engine
}

// NewEngineCache returns an empty cache bound to the given base setup.
func NewEngineCache(base scenario.Setup) *EngineCache {
	return &EngineCache{
		base:    base,
		built:   make(map[scenario.Pattern]*scenario.Built),
		engines: make(map[engineKey]*sim.Engine),
	}
}

// Run executes one sweep cell — demand pattern, controller, seed — on a
// cached engine, building scenario and engine only on first use. The
// run seed rewinds demand and routing exactly as a fresh
// base.Build(pattern) with that seed would, so results are bit-for-bit
// identical to experiment.Run for the same spec.
func (c *EngineCache) Run(pattern scenario.Pattern, family ControllerFamily, factory signal.Factory, seed uint64, durationSec float64) (Result, error) {
	if factory == nil {
		return Result{}, fmt.Errorf("experiment: EngineCache.Run requires a factory")
	}
	built, ok := c.built[pattern]
	if !ok {
		b, err := c.base.Build(pattern)
		if err != nil {
			return Result{}, err
		}
		c.built[pattern] = b
		built = b
	}
	duration := built.Duration
	if durationSec > 0 {
		duration = durationSec
	}
	key := engineKey{grid: built.Grid.Spec, family: family}
	engine, ok := c.engines[key]
	if !ok {
		e, err := sim.New(sim.Config{
			Net:              built.Grid.Network,
			Controllers:      factory,
			Demand:           built.Demand,
			Router:           built.Router,
			ExpectedVehicles: built.ExpectedVehicles(duration),
		})
		if err != nil {
			return Result{}, err
		}
		c.engines[key] = e
		engine = e
	}
	// ResetWith swaps the cell's collaborators in even when the engine
	// was built for another pattern of the same grid: road IDs are dense
	// and the builder is deterministic, so structurally identical grids
	// agree on every ID the demand and router use.
	if err := engine.ResetWith(seed, sim.ResetOptions{
		Controllers: factory,
		Demand:      built.Demand,
		Router:      built.Router,
	}); err != nil {
		return Result{}, err
	}
	return finishRun(engine, factory, pattern, duration)
}
