package experiment

import (
	"fmt"

	"utilbp/internal/network"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
)

// ControllerFamily names a class of controllers whose engines the sweep
// scheduler keeps apart in its per-worker cache. Members of one family
// (e.g. CAP-BP at different control periods) share a cached engine and
// are swapped in via sim.Engine.ResetWith; see DESIGN.md §3.
type ControllerFamily string

// The controller families of the Table III sweep.
const (
	FamilyCapBP  ControllerFamily = "CAP-BP"
	FamilyUtilBP ControllerFamily = "UTIL-BP"
)

// engineKey identifies a cached engine: the network it was built for
// (grid geometry — structurally identical grids share engines) and the
// controller family running on it.
type engineKey struct {
	grid   network.GridSpec
	family ControllerFamily
}

// EngineCache reuses simulation engines and scenario state across sweep
// cells instead of reconstructing them per run. The immutable scenario
// artifacts (network, rate tables, interned route table) come from a
// concurrency-safe scenario.ArtifactCache that may be shared by every
// worker of a sweep — they exist once per process. On top of it the
// cache keeps per-worker mutable state: one scenario.Instance per
// pattern (RNG-backed demand and router) and engines keyed by (network,
// controller family), rewound between cells with sim.Engine.ResetWith,
// which swaps in the cell's controller factory, demand, router and
// route table and replays bit-for-bit identically to a freshly built
// engine (the contract in DESIGN.md §3, pinned by
// TestEngineCacheMatchesFreshRuns).
//
// An EngineCache is NOT safe for concurrent use: each sweep worker owns
// one (sharing only the artifact cache). It is bound to one base Setup —
// instances are cached per pattern, so a cache must never be shared
// across setups. The zero value is not usable; construct with
// NewEngineCache or NewSharedEngineCache.
type EngineCache struct {
	artifacts *scenario.ArtifactCache
	instances map[scenario.Pattern]*scenario.Instance
	engines   map[engineKey]*sim.Engine
}

// NewEngineCache returns an empty cache bound to the given base setup,
// with a private artifact cache. Sweep schedulers that run several
// workers should share one artifact cache via NewSharedEngineCache
// instead.
func NewEngineCache(base scenario.Setup) *EngineCache {
	return NewSharedEngineCache(scenario.NewArtifactCache(base))
}

// NewSharedEngineCache returns an empty per-worker cache drawing its
// immutable scenario artifacts from the given shared cache.
func NewSharedEngineCache(artifacts *scenario.ArtifactCache) *EngineCache {
	return &EngineCache{
		artifacts: artifacts,
		instances: make(map[scenario.Pattern]*scenario.Instance),
		engines:   make(map[engineKey]*sim.Engine),
	}
}

// Run executes one sweep cell — demand pattern, controller, seed — on a
// cached engine, building scenario state and engine only on first use.
// The run seed rewinds demand and routing exactly as a fresh
// base.Build(pattern) with that seed would, so results are bit-for-bit
// identical to experiment.Run for the same spec. The cell's observation
// sensor is the instance's, derived from the base setup's Setup.Sensor
// spec (nil for perfect).
func (c *EngineCache) Run(pattern scenario.Pattern, family ControllerFamily, factory signal.Factory, seed uint64, durationSec float64) (Result, error) {
	inst, err := c.instance(pattern)
	if err != nil {
		return Result{}, err
	}
	return c.run(inst, pattern, family, factory, inst.Sensor, inst.Setup.Control, seed, durationSec)
}

// RunMode is Run with an explicit controller dispatch mode overriding
// the base setup's — the controller-mode sweep axis: one cached engine
// serves per-junction and batched cells alike, the mode switched
// through sim.ResetOptions on every rewind so cells cannot leak their
// mode into each other (the sensor-swap discipline of RunSensor,
// applied to dispatch).
func (c *EngineCache) RunMode(pattern scenario.Pattern, family ControllerFamily, factory signal.Factory, mode signal.ControlMode, seed uint64, durationSec float64) (Result, error) {
	inst, err := c.instance(pattern)
	if err != nil {
		return Result{}, err
	}
	return c.run(inst, pattern, family, factory, inst.Sensor, mode, seed, durationSec)
}

// RunSensor is Run with an explicit per-cell observation sensor
// overriding the instance's spec-derived one — the sensor-sweep
// primitive: one cached engine serves every (sensor × seed) cell, the
// sensor swapped in through sim.ResetOptions. A nil sensor runs the
// cell with perfect observation (any previously installed sensor is
// cleared, so cells cannot leak sensors into each other).
func (c *EngineCache) RunSensor(pattern scenario.Pattern, family ControllerFamily, factory signal.Factory, sensor sensing.Sensor, seed uint64, durationSec float64) (Result, error) {
	inst, err := c.instance(pattern)
	if err != nil {
		return Result{}, err
	}
	return c.run(inst, pattern, family, factory, sensor, inst.Setup.Control, seed, durationSec)
}

// instance returns the per-worker mutable scenario instance for a
// pattern, building it from the shared artifact on first use.
func (c *EngineCache) instance(pattern scenario.Pattern) (*scenario.Instance, error) {
	if inst, ok := c.instances[pattern]; ok {
		return inst, nil
	}
	art, err := c.artifacts.Get(pattern)
	if err != nil {
		return nil, err
	}
	inst := art.Instantiate()
	c.instances[pattern] = inst
	return inst, nil
}

func (c *EngineCache) run(inst *scenario.Instance, pattern scenario.Pattern, family ControllerFamily, factory signal.Factory, sensor sensing.Sensor, mode signal.ControlMode, seed uint64, durationSec float64) (Result, error) {
	if factory == nil {
		return Result{}, fmt.Errorf("experiment: EngineCache.Run requires a factory")
	}
	duration := inst.Duration
	if durationSec > 0 {
		duration = durationSec
	}
	key := engineKey{grid: inst.Grid.Spec, family: family}
	engine, ok := c.engines[key]
	if !ok {
		e, err := sim.New(sim.Config{
			Net:              inst.Grid.Network,
			Controllers:      factory,
			Demand:           inst.Demand,
			Router:           inst.Router,
			Routes:           inst.Routes,
			Sensor:           sensor,
			Control:          mode,
			Events:           inst.Events,
			ExpectedVehicles: inst.ExpectedVehicles(duration),
		})
		if err != nil {
			return Result{}, err
		}
		c.engines[key] = e
		engine = e
	}
	// ResetWith swaps the cell's collaborators in even when the engine
	// was built for another pattern of the same grid: road IDs are dense
	// and the builder is deterministic, so structurally identical grids
	// agree on every ID the demand, router and route table use. The
	// sensor, the controller dispatch mode and the disruption schedule
	// are swapped the same way, so one engine serves cells with
	// different observation models, control modes and event schedules
	// without leaking any of them across cells.
	if err := engine.ResetWith(seed, sim.ResetOptions{
		Controllers: factory,
		Demand:      inst.Demand,
		Router:      inst.Router,
		Routes:      inst.Routes,
		Sensor:      sensor,
		ClearSensor: sensor == nil,
		Control:     mode,
		SetControl:  true,
		Events:      inst.Events,
		ClearEvents: inst.Events == nil,
	}); err != nil {
		return Result{}, err
	}
	return finishRun(engine, factory, pattern, duration)
}
