package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"utilbp/internal/chaos"
)

// ChaosSweep is the soak entrypoint over the randomized fault-injection
// harness (internal/chaos): it drills n consecutive generator seeds
// starting at firstSeed — each a random-but-valid disruption schedule
// crossed with a random grid, controller family and sensor — asserting
// invariants, snapshot/restore equivalence and Reset replay per
// scenario. Scenarios are independent, so they run on a GOMAXPROCS
// pool; the returned descriptions are in seed order. Use it to soak
// far past the CI fuzz smoke's budget:
//
//	descs, err := experiment.ChaosSweep(1, 10000)
func ChaosSweep(firstSeed uint64, n int) ([]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiment: ChaosSweep needs n > 0 scenarios, got %d", n)
	}
	descs := make([]string, n)
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sc, err := chaos.Generate(firstSeed + uint64(i))
			if err != nil {
				errs[i] = err
				return
			}
			descs[i] = sc.Describe()
			errs[i] = chaos.Drill(sc)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return descs, nil
}
