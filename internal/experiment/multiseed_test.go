package experiment

import (
	"reflect"
	"strings"
	"testing"

	"utilbp/internal/scenario"
)

func TestTableIIIMultiSeed(t *testing.T) {
	setup := quickSetup()
	seeds := []uint64{1, 2, 3}
	rows, err := TableIIIMultiSeed(setup, []scenario.Pattern{scenario.PatternIV}, []int{18, 30}, 900, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if len(r.Improvements) != 3 {
		t.Fatalf("improvements = %v", r.Improvements)
	}
	if r.Wins < 0 || r.Wins > 3 {
		t.Fatalf("wins = %d", r.Wins)
	}
	if r.Std < 0 {
		t.Fatalf("std = %v", r.Std)
	}
	// Per-seed values must differ (different arrival realizations).
	if r.Improvements[0] == r.Improvements[1] && r.Improvements[1] == r.Improvements[2] {
		t.Error("all seeds produced identical improvements")
	}
	text := FormatSeedStats(rows, seeds)
	if !strings.Contains(text, "IV") || !strings.Contains(text, "3 seeds") {
		t.Errorf("format: %q", text)
	}
}

func TestTableIIIMultiSeedRequiresSeeds(t *testing.T) {
	if _, err := TableIIIMultiSeed(quickSetup(), nil, []int{20}, 300, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	if _, err := TableIIIMultiSeedSerial(quickSetup(), nil, []int{20}, 300, nil); err == nil {
		t.Fatal("empty seed list accepted by serial path")
	}
}

// TestMultiSeedSchedulerDeterminism pins the worker-pool scheduler to the
// serial reference: same cells, same aggregation order, bit-for-bit
// identical SeedStats (floats compared exactly, not approximately).
func TestMultiSeedSchedulerDeterminism(t *testing.T) {
	setup := quickSetup()
	patterns := []scenario.Pattern{scenario.PatternI, scenario.PatternIV}
	periods := []int{18, 30}
	seeds := []uint64{1, 2, 3}
	parallel, err := TableIIIMultiSeed(setup, patterns, periods, 700, seeds)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := TableIIIMultiSeedSerial(setup, patterns, periods, 700, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel, serial) {
		t.Fatalf("pooled scheduler diverges from serial reference:\npooled: %+v\nserial: %+v", parallel, serial)
	}
	// Re-running the pooled path must also be self-deterministic.
	again, err := TableIIIMultiSeed(setup, patterns, periods, 700, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel, again) {
		t.Fatalf("pooled scheduler is not repeatable:\nfirst: %+v\nsecond: %+v", parallel, again)
	}
}
