package experiment

import (
	"reflect"
	"strings"
	"testing"

	"utilbp/internal/scenario"
)

func TestTableIIIMultiSeed(t *testing.T) {
	setup := quickSetup()
	seeds := []uint64{1, 2, 3}
	rows, err := TableIIIMultiSeed(setup, []scenario.Pattern{scenario.PatternIV}, []int{18, 30}, 900, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if len(r.Improvements) != 3 {
		t.Fatalf("improvements = %v", r.Improvements)
	}
	if r.Wins < 0 || r.Wins > 3 {
		t.Fatalf("wins = %d", r.Wins)
	}
	if r.Std < 0 {
		t.Fatalf("std = %v", r.Std)
	}
	// Per-seed values must differ (different arrival realizations).
	if r.Improvements[0] == r.Improvements[1] && r.Improvements[1] == r.Improvements[2] {
		t.Error("all seeds produced identical improvements")
	}
	text := FormatSeedStats(rows, seeds)
	if !strings.Contains(text, "IV") || !strings.Contains(text, "3 seeds") {
		t.Errorf("format: %q", text)
	}
}

func TestTableIIIMultiSeedRequiresSeeds(t *testing.T) {
	if _, err := TableIIIMultiSeed(quickSetup(), nil, []int{20}, 300, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	if _, err := TableIIIMultiSeedSerial(quickSetup(), nil, []int{20}, 300, nil); err == nil {
		t.Fatal("empty seed list accepted by serial path")
	}
}

// TestMultiSeedSchedulerDeterminism pins the worker-pool scheduler to the
// serial reference: same cells, same aggregation order, bit-for-bit
// identical SeedStats (floats compared exactly, not approximately).
func TestMultiSeedSchedulerDeterminism(t *testing.T) {
	setup := quickSetup()
	patterns := []scenario.Pattern{scenario.PatternI, scenario.PatternIV}
	periods := []int{18, 30}
	seeds := []uint64{1, 2, 3}
	parallel, err := TableIIIMultiSeed(setup, patterns, periods, 700, seeds)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := TableIIIMultiSeedSerial(setup, patterns, periods, 700, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel, serial) {
		t.Fatalf("pooled scheduler diverges from serial reference:\npooled: %+v\nserial: %+v", parallel, serial)
	}
	// Re-running the pooled path must also be self-deterministic.
	again, err := TableIIIMultiSeed(setup, patterns, periods, 700, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel, again) {
		t.Fatalf("pooled scheduler is not repeatable:\nfirst: %+v\nsecond: %+v", parallel, again)
	}
}

// TestEngineCacheMatchesFreshRuns drives one EngineCache the way a pool
// worker does — cells arriving in arbitrary order, switching controller
// family and pattern mid-stream, revisiting earlier cells — and pins
// every cached result to a freshly built experiment.Run of the same
// cell.
func TestEngineCacheMatchesFreshRuns(t *testing.T) {
	base := quickSetup()
	cache := NewEngineCache(base)
	cells := []struct {
		pattern scenario.Pattern
		family  ControllerFamily
		period  int // 0 = UTIL-BP
		seed    uint64
	}{
		{scenario.PatternI, FamilyCapBP, 18, 1},
		{scenario.PatternI, FamilyUtilBP, 0, 1},  // family switch
		{scenario.PatternIV, FamilyCapBP, 30, 2}, // pattern + family switch
		{scenario.PatternIV, FamilyUtilBP, 0, 2},
		{scenario.PatternI, FamilyCapBP, 18, 1}, // revisit the first cell
		{scenario.PatternI, FamilyCapBP, 30, 3}, // same family, new period + seed
	}
	for i, c := range cells {
		setup := base
		setup.Seed = c.seed
		factory := setup.UtilBP()
		if c.family == FamilyCapBP {
			factory = setup.CapBP(c.period)
		}
		cached, err := cache.Run(c.pattern, c.family, factory, c.seed, 700)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		fresh, err := Run(Spec{Setup: setup, Pattern: c.pattern, Factory: factory, DurationSec: 700})
		if err != nil {
			t.Fatalf("cell %d fresh: %v", i, err)
		}
		if cached.Summary != fresh.Summary {
			t.Fatalf("cell %d (%v %s seed %d): cached summary %+v != fresh %+v",
				i, c.pattern, c.family, c.seed, cached.Summary, fresh.Summary)
		}
		if cached.Totals != fresh.Totals {
			t.Fatalf("cell %d: cached totals %+v != fresh %+v", i, cached.Totals, fresh.Totals)
		}
	}
}

// pinPooledVsSerial asserts the engine-reusing pooled scheduler matches
// the fresh-engine serial reference bit-for-bit for one workload.
func pinPooledVsSerial(t *testing.T, w scenario.Workload, horizonSec float64, seeds []uint64) {
	t.Helper()
	patterns := []scenario.Pattern{w.Pattern}
	periods := []int{18, 30}
	pooled, err := TableIIIMultiSeed(w.Setup, patterns, periods, horizonSec, seeds)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := TableIIIMultiSeedSerial(w.Setup, patterns, periods, horizonSec, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pooled, serial) {
		t.Fatalf("pooled scheduler diverges from serial reference on %s:\npooled: %+v\nserial: %+v",
			w.Name, pooled, serial)
	}
}

// TestMultiSeedWorkloadDeterminism exercises the pooled scheduler beyond
// the paper's 3×3 grid: for every registered workload — city-scale grids
// included — the engine-reusing pool must match the fresh-engine serial
// reference bit-for-bit. Large workloads shorten the horizon via their
// registered SweepHorizonSec so the pin stays test-scale.
func TestMultiSeedWorkloadDeterminism(t *testing.T) {
	for _, w := range scenario.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			horizon := w.SweepHorizon(400)
			if horizon > 400 {
				horizon = 400
			}
			pinPooledVsSerial(t, w, horizon, []uint64{1, 2})
		})
	}
}

// TestCityGridPooledVsSerialPin is the short city-scale pin CI runs on
// its own: the 16×16 city-grid workload through the pooled scheduler
// (shared artifacts, cached engines) against the serial fresh-engine
// reference.
func TestCityGridPooledVsSerialPin(t *testing.T) {
	w, ok := scenario.WorkloadByName("city-grid")
	if !ok {
		t.Fatal("city-grid workload not registered")
	}
	pinPooledVsSerial(t, w, 150, []uint64{1})
}

// TestEngineCacheCityGridWorkload extends the EngineCache contract to
// the city-scale workloads: cached engines on the 16×16 grid must match
// freshly built experiment.Run results exactly, including across a
// family switch and a revisit.
func TestEngineCacheCityGridWorkload(t *testing.T) {
	w, ok := scenario.WorkloadByName("city-grid")
	if !ok {
		t.Fatal("city-grid workload not registered")
	}
	base := w.Setup
	cache := NewEngineCache(base)
	cells := []struct {
		family ControllerFamily
		period int // 0 = UTIL-BP
		seed   uint64
	}{
		{FamilyCapBP, 20, 1},
		{FamilyUtilBP, 0, 1}, // family switch on the cached grid
		{FamilyCapBP, 20, 2}, // revisit with a new seed
	}
	const horizon = 150
	for i, c := range cells {
		setup := base
		setup.Seed = c.seed
		factory := setup.UtilBP()
		if c.family == FamilyCapBP {
			factory = setup.CapBP(c.period)
		}
		cached, err := cache.Run(w.Pattern, c.family, factory, c.seed, horizon)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		fresh, err := Run(Spec{Setup: setup, Pattern: w.Pattern, Factory: factory, DurationSec: horizon})
		if err != nil {
			t.Fatalf("cell %d fresh: %v", i, err)
		}
		if cached.Summary != fresh.Summary || cached.Totals != fresh.Totals {
			t.Fatalf("cell %d (%s seed %d): cached %+v/%+v != fresh %+v/%+v",
				i, c.family, c.seed, cached.Summary, cached.Totals, fresh.Summary, fresh.Totals)
		}
	}
}
