package experiment

import (
	"fmt"
	"strings"
	"sync"

	"utilbp/internal/core"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
)

// AblationRow is the result of removing one UTIL-BP mechanism.
type AblationRow struct {
	// Name identifies the ablation (A1..A6 of DESIGN.md).
	Name string
	// Description says what was removed.
	Description string
	// MeanWait is the resulting average queuing time; DegradationPct is
	// the relative change against the full algorithm (positive = the
	// mechanism was helping).
	MeanWait       float64
	DegradationPct float64
}

// ablationSpec describes one variant.
type ablationSpec struct {
	name        string
	description string
	factory     func(scenario.Setup) signal.Factory
}

func ablationSpecs() []ablationSpec {
	return []ablationSpec{
		{
			name:        "A1 no-W*-shift",
			description: "clamp gains at zero: no service under negative pressure difference",
			factory: func(s scenario.Setup) signal.Factory {
				return s.UtilBPVariant(core.GainVariant{NoWStarShift: true}, false)
			},
		},
		{
			name:        "A2 no-keep-phase",
			description: "drop Algorithm 1 Case 2: re-select the phase every mini-slot",
			factory: func(s scenario.Setup) signal.Factory {
				return s.UtilBPVariant(core.GainVariant{}, true)
			},
		},
		{
			name:        "A3 no-special-cases",
			description: "score full-outgoing and empty-incoming links by the plain formula",
			factory: func(s scenario.Setup) signal.Factory {
				return s.UtilBPVariant(core.GainVariant{NoSpecialCases: true}, false)
			},
		},
		{
			name:        "A4 whole-road-pressure",
			description: "use q_i instead of q_i^{i'} for the incoming pressure (eq. 5 style)",
			factory: func(s scenario.Setup) signal.Factory {
				return s.UtilBPVariant(core.GainVariant{WholeRoadPressure: true}, false)
			},
		},
		{
			name:        "A6 count-approaching",
			description: "pressure includes vehicles still rolling toward the stop line",
			factory: func(s scenario.Setup) signal.Factory {
				widened := s
				widened.CountApproaching = true
				return widened.UtilBP()
			},
		},
	}
}

// Ablations runs the full UTIL-BP and every single-mechanism ablation on
// one pattern, in parallel, and reports the degradation each removal
// causes. The first returned row is the full algorithm (degradation 0).
func Ablations(setup scenario.Setup, pattern scenario.Pattern, durationSec float64) ([]AblationRow, error) {
	specs := ablationSpecs()
	rows := make([]AblationRow, len(specs)+1)
	errs := make([]error, len(specs)+1)
	var wg sync.WaitGroup
	run := func(i int, factory signal.Factory, name, desc string) {
		defer wg.Done()
		res, err := Run(Spec{Setup: setup, Pattern: pattern, Factory: factory, DurationSec: durationSec})
		if err != nil {
			errs[i] = fmt.Errorf("experiment: ablation %s: %w", name, err)
			return
		}
		rows[i] = AblationRow{Name: name, Description: desc, MeanWait: res.Summary.MeanWait}
	}
	wg.Add(1)
	go run(0, setup.UtilBP(), "full UTIL-BP", "the complete algorithm")
	for i, spec := range specs {
		wg.Add(1)
		go run(i+1, spec.factory(setup), spec.name, spec.description)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	base := rows[0].MeanWait
	if base > 0 {
		for i := 1; i < len(rows); i++ {
			rows[i].DegradationPct = 100 * (rows[i].MeanWait - base) / base
		}
	}
	return rows, nil
}

// FormatAblations renders the ablation table.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-12s %-12s %s\n", "variant", "avg queuing", "vs full", "removed mechanism")
	for _, r := range rows {
		delta := "-"
		if r.Name != "full UTIL-BP" {
			delta = fmt.Sprintf("%+.1f%%", r.DegradationPct)
		}
		fmt.Fprintf(&b, "%-24s %-12s %-12s %s\n",
			r.Name, fmt.Sprintf("%.2f s", r.MeanWait), delta, r.Description)
	}
	return b.String()
}
