package experiment

import (
	"reflect"
	"testing"

	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
)

// sweepScale keeps sensing-sweep tests minutes-free: a short horizon
// still exercises warm queues and every sensor model.
const sensingTestHorizon = 400

// TestSensingSweepPooledMatchesSerial pins the sensing determinism
// contract: the pooled scheduler — shared artifacts, per-worker engine
// caches, per-cell sensor swaps through ResetWith — must reproduce the
// serial fresh-engine reference bit-for-bit, sensor state included.
func TestSensingSweepPooledMatchesSerial(t *testing.T) {
	base := scenario.Default()
	specs := []sensing.Spec{
		{},
		sensing.Loop(),
		{Kind: sensing.KindLoop, Saturation: 30, FailProb: 0.05},
		sensing.CV(0.5),
		{Kind: sensing.KindConnectedVehicle, Rate: 0.2, NoiseStd: 1.5, LatencySteps: 3},
	}
	seeds := []uint64{1, 2}
	pooled, err := SensingSweep(base, scenario.PatternII, specs, seeds, sensingTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := SensingSweepSerial(base, scenario.PatternII, specs, seeds, sensingTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pooled, serial) {
		t.Fatalf("pooled sensing sweep diverges from serial reference:\npooled: %+v\nserial: %+v", pooled, serial)
	}
}

// TestPenetrationSweepReproducible pins the acceptance criterion: the
// connected-vehicle penetration sweep on the paper grid is a pure
// function of its seeds — two invocations agree exactly, and per-seed
// waits differ across seeds (the sweep actually exercises them).
func TestPenetrationSweepReproducible(t *testing.T) {
	base := scenario.Default()
	rates := []float64{0.1, 0.5, 1.0}
	seeds := []uint64{3, 4}
	first, err := PenetrationSweep(base, scenario.PatternII, rates, seeds, sensingTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	second, err := PenetrationSweep(base, scenario.PatternII, rates, seeds, sensingTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("penetration sweep is not reproducible:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if len(first) != len(rates)+1 {
		t.Fatalf("rows = %d, want %d (perfect + rates)", len(first), len(rates)+1)
	}
	if !first[0].Spec.Perfect() {
		t.Fatalf("first row should be the perfect reference, got %v", first[0].Spec)
	}
	if first[0].DegradationPct != 0 {
		t.Fatalf("perfect reference degradation = %v, want 0", first[0].DegradationPct)
	}
	for _, row := range first {
		if len(row.MeanWaits) != len(seeds) {
			t.Fatalf("row %v has %d waits, want %d", row.Spec, len(row.MeanWaits), len(seeds))
		}
		if row.Mean <= 0 {
			t.Fatalf("row %v mean wait %v", row.Spec, row.Mean)
		}
	}
	if first[0].MeanWaits[0] == first[0].MeanWaits[1] {
		t.Fatal("different seeds produced identical waits; the seed axis is dead")
	}
}

// TestSensingSweepSensorMatters checks the sweep measures something: a
// heavily degraded sensor (tiny penetration, loud noise, long latency)
// must not report exactly the perfect reference on every seed.
func TestSensingSweepSensorMatters(t *testing.T) {
	base := scenario.Default()
	specs := []sensing.Spec{
		{},
		{Kind: sensing.KindConnectedVehicle, Rate: 0.05, NoiseStd: 4, LatencySteps: 10},
	}
	seeds := []uint64{5}
	rows, err := SensingSweep(base, scenario.PatternII, specs, seeds, sensingTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Mean == rows[1].Mean {
		t.Fatalf("degraded sensor indistinguishable from perfect: %+v", rows)
	}
}

// TestSensingSweepValidatesSpecs rejects malformed axes up front.
func TestSensingSweepValidatesSpecs(t *testing.T) {
	base := scenario.Default()
	if _, err := SensingSweep(base, scenario.PatternII, []sensing.Spec{sensing.CV(2)}, []uint64{1}, 60); err == nil {
		t.Fatal("invalid penetration rate accepted")
	}
	if _, err := SensingSweep(base, scenario.PatternII, nil, []uint64{1}, 60); err == nil {
		t.Fatal("empty spec axis accepted")
	}
	if _, err := SensingSweep(base, scenario.PatternII, []sensing.Spec{{}}, nil, 60); err == nil {
		t.Fatal("empty seed axis accepted")
	}
}

// TestEngineCacheRunSensorIsolation pins that a sensing cell cannot
// leak its sensor into a later perfect cell on the same cached engine:
// Run after RunSensor must match a fresh perfect-observation run.
func TestEngineCacheRunSensorIsolation(t *testing.T) {
	base := scenario.Default()
	cache := NewEngineCache(base)
	setup := base
	setup.Seed = 7
	factory := setup.UtilBP()

	sensor, err := sensing.CV(0.3).New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.RunSensor(scenario.PatternII, FamilyUtilBP, factory, sensor, 7, sensingTestHorizon); err != nil {
		t.Fatal(err)
	}
	cached, err := cache.Run(scenario.PatternII, FamilyUtilBP, factory, 7, sensingTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(Spec{Setup: setup, Pattern: scenario.PatternII, Factory: factory, DurationSec: sensingTestHorizon})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Summary != fresh.Summary || cached.Totals != fresh.Totals {
		t.Fatalf("sensor leaked into a perfect cell:\ncached: %+v %+v\nfresh:  %+v %+v",
			cached.Summary, cached.Totals, fresh.Summary, fresh.Totals)
	}
}
