package experiment

import (
	"reflect"
	"testing"

	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
)

// TestMatrixSweepPooledMatchesSerial pins the pooled matrix scheduler
// bit-for-bit against the strictly sequential fresh-engine reference,
// across a matrix that exercises every cache-reuse axis at once:
// multiple workloads (the estimated 3×3 grid and the disrupted 16×16
// city grid share nothing), batch-capable and per-junction controller
// families, and perfect plus noisy sensors. Exact float equality —
// engine reuse, worker scheduling and completion order must not perturb
// a single bit. CI runs it under -race.
func TestMatrixSweepPooledMatchesSerial(t *testing.T) {
	workloads := []string{"estimated-grid", "city-grid-incident"}
	controllers := []scenario.ControllerSpec{
		{Kind: scenario.ControllerMaxPressure},
		{Kind: scenario.ControllerGapOut, MinGreenSec: 4, MaxGreenSec: 16, GapSec: 2},
		{Kind: scenario.ControllerBPEst},
	}
	sensors := []sensing.Spec{{}, sensing.CV(0.3)}
	seeds := []uint64{5, 6}

	serial, err := MatrixSweepSerial(workloads, controllers, sensors, seeds, 120)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := MatrixSweep(workloads, controllers, sensors, seeds, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(workloads)*len(controllers)*len(sensors) {
		t.Fatalf("serial rows = %d, want %d", len(serial), len(workloads)*len(controllers)*len(sensors))
	}
	if !reflect.DeepEqual(serial, pooled) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], pooled[i]) {
				t.Fatalf("row %d diverges:\nserial %+v\npooled %+v", i, serial[i], pooled[i])
			}
		}
		t.Fatal("matrix results diverge")
	}
	for _, r := range serial {
		if r.Mean <= 0 {
			t.Fatalf("degenerate row %+v: mean wait must be positive", r)
		}
	}
}

// TestMatrixSweepValidation covers the argument contract: unknown
// workloads and empty axes fail before any cell runs.
func TestMatrixSweepValidation(t *testing.T) {
	ctl := []scenario.ControllerSpec{{}}
	specs := []sensing.Spec{{}}
	seeds := []uint64{1}
	cases := []struct {
		name string
		err  func() error
	}{
		{"unknown workload", func() error {
			_, err := MatrixSweep([]string{"no-such-workload"}, ctl, specs, seeds, 60)
			return err
		}},
		{"no workloads", func() error {
			_, err := MatrixSweep(nil, ctl, specs, seeds, 60)
			return err
		}},
		{"no controllers", func() error {
			_, err := MatrixSweep([]string{"paper-grid"}, nil, specs, seeds, 60)
			return err
		}},
		{"no sensors", func() error {
			_, err := MatrixSweep([]string{"paper-grid"}, ctl, nil, seeds, 60)
			return err
		}},
		{"no seeds", func() error {
			_, err := MatrixSweep([]string{"paper-grid"}, ctl, specs, nil, 60)
			return err
		}},
		{"invalid controller", func() error {
			bad := []scenario.ControllerSpec{{Kind: scenario.ControllerKind(99)}}
			_, err := MatrixSweep([]string{"paper-grid"}, bad, specs, seeds, 60)
			return err
		}},
		{"invalid sensor", func() error {
			bad := []sensing.Spec{sensing.CV(2)}
			_, err := MatrixSweep([]string{"paper-grid"}, ctl, bad, seeds, 60)
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.err() == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

// TestPenetrationMatrixSweep crosses the connected-vehicle penetration
// axis through every controller family of the default matrix and checks
// the plan-order contract: rows grouped per controller with the sensor
// axis running perfect, then the cv rates in ascending order, for every
// family — the full sensing × control cross of DESIGN.md §13.
func TestPenetrationMatrixSweep(t *testing.T) {
	rates := []float64{0.3, 0.8}
	rows, err := PenetrationMatrixSweep([]string{"paper-grid"}, rates, []uint64{1}, 200)
	if err != nil {
		t.Fatal(err)
	}
	controllers := DefaultMatrixControllers()
	wantSensors := PenetrationSpecs(rates)
	if len(rows) != len(controllers)*len(wantSensors) {
		t.Fatalf("%d rows, want %d", len(rows), len(controllers)*len(wantSensors))
	}
	for i, r := range rows {
		if want := controllers[i/len(wantSensors)]; r.Controller != want {
			t.Fatalf("row %d: controller %v, want %v", i, r.Controller, want)
		}
		if want := wantSensors[i%len(wantSensors)]; r.Sensor != want {
			t.Fatalf("row %d: sensor %v, want %v", i, r.Sensor, want)
		}
		if r.Mean <= 0 {
			t.Fatalf("degenerate row %+v: mean wait must be positive", r)
		}
	}
}
