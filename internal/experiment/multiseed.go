package experiment

import (
	"fmt"
	"strings"
	"sync"

	"utilbp/internal/analysis"
	"utilbp/internal/scenario"
)

// SeedStats aggregates one Table III row over multiple seeds.
type SeedStats struct {
	Pattern scenario.Pattern
	// Improvements are per-seed improvement percentages; Mean and Std
	// summarize them.
	Improvements []float64
	Mean, Std    float64
	// Wins counts seeds where UTIL-BP beat CAP-BP's best period.
	Wins int
}

// TableIIIMultiSeed runs the Table III comparison across seeds and
// aggregates the improvement distribution per pattern. Seeds run in
// parallel (each TableIII call already parallelizes its own sweep, so
// the pattern loop here stays serial to bound concurrency).
func TableIIIMultiSeed(base scenario.Setup, patterns []scenario.Pattern, periods []int, durationSec float64, seeds []uint64) ([]SeedStats, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: at least one seed required")
	}
	if patterns == nil {
		patterns = scenario.AllPatterns
	}
	out := make([]SeedStats, 0, len(patterns))
	for _, pat := range patterns {
		stats := SeedStats{Pattern: pat, Improvements: make([]float64, len(seeds))}
		errs := make([]error, len(seeds))
		var wg sync.WaitGroup
		for si, seed := range seeds {
			wg.Add(1)
			go func(si int, seed uint64) {
				defer wg.Done()
				setup := base
				setup.Seed = seed
				rows, err := TableIII(setup, []scenario.Pattern{pat}, periods, durationSec)
				if err != nil {
					errs[si] = err
					return
				}
				stats.Improvements[si] = rows[0].ImprovementPct
			}(si, seed)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for _, imp := range stats.Improvements {
			if imp > 0 {
				stats.Wins++
			}
		}
		stats.Mean = analysis.Mean(stats.Improvements)
		stats.Std = analysis.Std(stats.Improvements)
		out = append(out, stats)
	}
	return out, nil
}

// FormatSeedStats renders the multi-seed table.
func FormatSeedStats(rows []SeedStats, seeds []uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "UTIL-BP improvement over best-period CAP-BP, %d seeds\n", len(seeds))
	fmt.Fprintf(&b, "%-8s %-18s %s\n", "Pattern", "mean ± std", "wins")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-18s %d/%d\n",
			r.Pattern.String(),
			fmt.Sprintf("%+.1f%% ± %.1f%%", r.Mean, r.Std),
			r.Wins, len(r.Improvements))
	}
	return b.String()
}
