package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"utilbp/internal/analysis"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
)

// SeedStats aggregates one Table III row over multiple seeds.
type SeedStats struct {
	Pattern scenario.Pattern
	// Improvements are per-seed improvement percentages; Mean and Std
	// summarize them.
	Improvements []float64
	Mean, Std    float64
	// Wins counts seeds where UTIL-BP beat CAP-BP's best period.
	Wins int
}

// sweepPlan enumerates every independent cell of the Table III multi-seed
// sweep: for each (pattern, seed) group, one CAP-BP run per period plus
// one UTIL-BP run. Cells are identified by a flat index so workers can
// write results into pre-sized slices and aggregation stays in
// deterministic (pattern, seed, period) order no matter which worker
// finishes when.
type sweepPlan struct {
	patterns []scenario.Pattern
	periods  []int
	seeds    []uint64
}

// perGroup returns the number of cells in one (pattern, seed) group: the
// CAP-BP period sweep plus the UTIL-BP run.
func (p *sweepPlan) perGroup() int { return len(p.periods) + 1 }

// cells returns the total cell count.
func (p *sweepPlan) cells() int { return len(p.patterns) * len(p.seeds) * p.perGroup() }

// cell decomposes a flat index into (pattern index, seed index, job),
// where job < len(periods) selects CAP-BP at periods[job] and
// job == len(periods) selects the UTIL-BP run.
func (p *sweepPlan) cell(idx int) (pi, si, job int) {
	job = idx % p.perGroup()
	group := idx / p.perGroup()
	return group / len(p.seeds), group % len(p.seeds), job
}

// runCell executes one cell and returns its network-mean queuing time.
// With a cache the cell runs on a reused engine (the pooled scheduler's
// path); with cache == nil it builds a fresh scenario and engine per cell
// (the serial reference path). Both paths are pinned bit-for-bit equal by
// TestMultiSeedSchedulerDeterminism.
func (p *sweepPlan) runCell(cache *EngineCache, base scenario.Setup, idx int, durationSec float64) (float64, error) {
	pi, si, job := p.cell(idx)
	pattern, seed := p.patterns[pi], p.seeds[si]
	// Both paths share one factory built from the seed-patched setup, so
	// a factory that ever consumes Setup.Seed keeps them in lockstep.
	setup := base
	setup.Seed = seed
	var (
		family  ControllerFamily
		factory signal.Factory
	)
	if job < len(p.periods) {
		family, factory = FamilyCapBP, setup.CapBP(p.periods[job])
	} else {
		family, factory = FamilyUtilBP, setup.UtilBP()
	}
	var res Result
	var err error
	if cache != nil {
		res, err = cache.Run(pattern, family, factory, seed, durationSec)
	} else {
		res, err = Run(Spec{Setup: setup, Pattern: pattern, Factory: factory, DurationSec: durationSec})
	}
	if err != nil {
		return 0, fmt.Errorf("experiment: pattern %v seed %d %s: %w",
			pattern, seed, cellLabel(p.periods, job), err)
	}
	return res.Summary.MeanWait, nil
}

func cellLabel(periods []int, job int) string {
	if job < len(periods) {
		return fmt.Sprintf("CAP-BP period %d", periods[job])
	}
	return "UTIL-BP"
}

// aggregate folds the per-cell mean waits into SeedStats rows, in pattern
// order, reproducing exactly what the serial path computes: per (pattern,
// seed) the best (first-minimum) CAP-BP period is the baseline the UTIL-BP
// run is compared against.
func (p *sweepPlan) aggregate(waits []float64) ([]SeedStats, error) {
	out := make([]SeedStats, 0, len(p.patterns))
	per := p.perGroup()
	for pi, pat := range p.patterns {
		stats := SeedStats{Pattern: pat, Improvements: make([]float64, len(p.seeds))}
		for si := range p.seeds {
			group := waits[(pi*len(p.seeds)+si)*per:][:per]
			capWaits := group[:len(p.periods)]
			best := capWaits[analysis.ArgMin(capWaits)]
			imp, err := analysis.Improvement(best, group[len(p.periods)])
			if err != nil {
				return nil, err
			}
			stats.Improvements[si] = imp * 100
			if stats.Improvements[si] > 0 {
				stats.Wins++
			}
		}
		stats.Mean = analysis.Mean(stats.Improvements)
		stats.Std = analysis.Std(stats.Improvements)
		out = append(out, stats)
	}
	return out, nil
}

func newSweepPlan(patterns []scenario.Pattern, periods []int, seeds []uint64) (*sweepPlan, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: at least one seed required")
	}
	if patterns == nil {
		patterns = scenario.AllPatterns
	}
	if len(periods) == 0 {
		periods = DefaultPeriods()
	}
	return &sweepPlan{patterns: patterns, periods: periods, seeds: seeds}, nil
}

// TableIIIMultiSeed runs the Table III comparison across seeds and
// aggregates the improvement distribution per pattern. Every
// (pattern × seed × period) cell of the sweep — plus each group's UTIL-BP
// run — is an independent job scheduled onto a worker pool sized to
// runtime.GOMAXPROCS, so the whole sweep saturates the machine instead of
// serializing behind per-pattern barriers. All workers share one
// concurrency-safe scenario.ArtifactCache, so the immutable scenario
// state (network topology, rate tables, interned route table) is built
// once per pattern for the whole process; on top of it each worker owns
// an EngineCache: engines are built once per (network, controller
// family) and rewound between cells with sim.Engine.ResetWith instead of
// being reconstructed, which removes per-cell scenario and engine
// allocation from the sweep entirely (DESIGN.md §3, §5). Results are
// written into cell-indexed slots and aggregated in plan order, making
// the output bit-for-bit identical to TableIIIMultiSeedSerial for the
// same inputs.
func TableIIIMultiSeed(base scenario.Setup, patterns []scenario.Pattern, periods []int, durationSec float64, seeds []uint64) ([]SeedStats, error) {
	plan, err := newSweepPlan(patterns, periods, seeds)
	if err != nil {
		return nil, err
	}
	n := plan.cells()
	waits := make([]float64, n)
	errs := make([]error, n)
	jobs := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	artifacts := scenario.NewArtifactCache(base)
	// failed stops job submission early: a paper-scale sweep is minutes
	// of compute, so once any cell errors the remaining cells are not
	// worth running. In-flight cells still finish before wg.Wait
	// returns, and the error reported is the first in cell order among
	// those that ran.
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cache := NewSharedEngineCache(artifacts)
			for idx := range jobs {
				pi, _, job := plan.cell(idx)
				withCellLabels(w, plan.patterns[pi].String(), cellLabel(plan.periods, job), base.Sensor.String(), func() {
					waits[idx], errs[idx] = plan.runCell(cache, base, idx, durationSec)
				})
				if errs[idx] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for idx := 0; idx < n && !failed.Load(); idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return plan.aggregate(waits)
}

// TableIIIMultiSeedSerial is the strictly sequential reference
// implementation of TableIIIMultiSeed: one goroutine, cells executed in
// plan order, and — unlike the pooled scheduler — a freshly built
// scenario and engine for every cell, so engine reuse always has a
// no-reuse baseline to be compared against. The pooled scheduler is
// tested to produce bit-for-bit identical SeedStats; keep the two in
// lockstep when changing either.
func TableIIIMultiSeedSerial(base scenario.Setup, patterns []scenario.Pattern, periods []int, durationSec float64, seeds []uint64) ([]SeedStats, error) {
	plan, err := newSweepPlan(patterns, periods, seeds)
	if err != nil {
		return nil, err
	}
	waits := make([]float64, plan.cells())
	for idx := range waits {
		w, err := plan.runCell(nil, base, idx, durationSec)
		if err != nil {
			return nil, err
		}
		waits[idx] = w
	}
	return plan.aggregate(waits)
}

// FormatSeedStats renders the multi-seed table.
func FormatSeedStats(rows []SeedStats, seeds []uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "UTIL-BP improvement over best-period CAP-BP, %d seeds\n", len(seeds))
	fmt.Fprintf(&b, "%-8s %-18s %s\n", "Pattern", "mean ± std", "wins")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-18s %d/%d\n",
			r.Pattern.String(),
			fmt.Sprintf("%+.1f%% ± %.1f%%", r.Mean, r.Std),
			r.Wins, len(r.Improvements))
	}
	return b.String()
}
