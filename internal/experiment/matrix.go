package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"utilbp/internal/analysis"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
)

// MatrixStats aggregates the runs of one (workload, controller, sensor)
// matrix cell across the sweep's seeds: how each controller family of
// the zoo holds up on each workload under each observation model — the
// full cross of the control and sensing axes (DESIGN.md §13,
// cf. arXiv:2006.15549's controller benchmarking matrix).
type MatrixStats struct {
	// Workload is the registry key of the row's workload.
	Workload string
	// Controller is the controller spec of this row.
	Controller scenario.ControllerSpec
	// Sensor is the observation spec of this row.
	Sensor sensing.Spec
	// MeanWaits are the per-seed network-mean queuing times, in the
	// sweep's seed order.
	MeanWaits []float64
	// Mean and Std summarize MeanWaits.
	Mean, Std float64
	// CompletionRate is the mean per-seed fraction of spawned vehicles
	// that exited within the horizon.
	CompletionRate float64
}

// matrixPlan enumerates the independent cells of a controller×sensor
// matrix sweep, identified by a flat index so pooled workers write into
// pre-sized slots and aggregation stays in plan order regardless of
// completion order — the same scheme as sensingPlan and the Table III
// sweepPlan.
type matrixPlan struct {
	workloads   []scenario.Workload
	controllers []scenario.ControllerSpec
	sensors     []sensing.Spec
	seeds       []uint64
	durationSec float64
}

// matrixCell is one cell's raw outcome.
type matrixCell struct {
	meanWait   float64
	completion float64
}

func (p *matrixPlan) cells() int {
	return len(p.workloads) * len(p.controllers) * len(p.sensors) * len(p.seeds)
}

func (p *matrixPlan) cell(idx int) (wi, ci, si, ki int) {
	ki = idx % len(p.seeds)
	idx /= len(p.seeds)
	si = idx % len(p.sensors)
	idx /= len(p.sensors)
	ci = idx % len(p.controllers)
	return idx / len(p.controllers), ci, si, ki
}

// runCell executes one (workload, controller, sensor, seed) cell. With
// caches the cell runs on the worker's reused engine for the workload
// through EngineCache.RunSensor (engines keyed by grid and controller
// family, collaborators swapped per cell); with caches == nil it builds
// a fresh scenario and engine — the serial reference path the pooled
// scheduler is pinned against.
func (p *matrixPlan) runCell(caches map[string]*EngineCache, idx int) (matrixCell, error) {
	wi, ci, si, ki := p.cell(idx)
	w, ctl, spec, seed := p.workloads[wi], p.controllers[ci], p.sensors[si], p.seeds[ki]
	setup := w.Setup
	setup.Seed = seed
	setup.Sensor = spec
	factory, err := setup.Controller(ctl)
	if err != nil {
		return matrixCell{}, fmt.Errorf("experiment: workload %s controller %v: %w", w.Name, ctl, err)
	}
	duration := w.SweepHorizon(p.durationSec)
	var res Result
	if caches != nil {
		var sensor sensing.Sensor
		if !spec.Perfect() {
			sensor, err = spec.New()
			if err == nil {
				sensor.Reseed(seed)
			}
		}
		if err == nil {
			// Specs of one family (e.g. gapout at different timers) share
			// the cached engine, like CAP-BP periods in the Table III sweep.
			family := ControllerFamily(ctl.Kind.String())
			res, err = caches[w.Name].RunSensor(w.Pattern, family, factory, sensor, seed, duration)
		}
	} else {
		res, err = Run(Spec{Setup: setup, Pattern: w.Pattern, Factory: factory, DurationSec: duration})
	}
	if err != nil {
		return matrixCell{}, fmt.Errorf("experiment: workload %s controller %v sensor %v seed %d: %w",
			w.Name, ctl, spec, seed, err)
	}
	return matrixCell{meanWait: res.Summary.MeanWait, completion: res.Summary.CompletionRate}, nil
}

// aggregate folds the per-cell outcomes into MatrixStats rows in plan
// order (workload-major, then controller, then sensor).
func (p *matrixPlan) aggregate(cells []matrixCell) []MatrixStats {
	nk := len(p.seeds)
	rows := make([]MatrixStats, 0, p.cells()/nk)
	for idx := 0; idx < p.cells(); idx += nk {
		wi, ci, si, _ := p.cell(idx)
		row := MatrixStats{
			Workload:   p.workloads[wi].Name,
			Controller: p.controllers[ci],
			Sensor:     p.sensors[si],
			MeanWaits:  make([]float64, nk),
		}
		comp := 0.0
		for ki := 0; ki < nk; ki++ {
			row.MeanWaits[ki] = cells[idx+ki].meanWait
			comp += cells[idx+ki].completion
		}
		row.Mean = analysis.Mean(row.MeanWaits)
		row.Std = analysis.Std(row.MeanWaits)
		row.CompletionRate = comp / float64(nk)
		rows = append(rows, row)
	}
	return rows
}

func newMatrixPlan(workloadNames []string, controllers []scenario.ControllerSpec, sensors []sensing.Spec, seeds []uint64, durationSec float64) (*matrixPlan, error) {
	if len(workloadNames) == 0 {
		return nil, fmt.Errorf("experiment: at least one workload required")
	}
	if len(controllers) == 0 {
		return nil, fmt.Errorf("experiment: at least one controller spec required")
	}
	if len(sensors) == 0 {
		return nil, fmt.Errorf("experiment: at least one sensor spec required")
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: at least one seed required")
	}
	p := &matrixPlan{
		controllers: controllers,
		sensors:     sensors,
		seeds:       seeds,
		durationSec: durationSec,
	}
	for _, name := range workloadNames {
		w, ok := scenario.WorkloadByName(name)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown workload %q", name)
		}
		p.workloads = append(p.workloads, w)
	}
	for _, ctl := range controllers {
		if err := ctl.Validate(); err != nil {
			return nil, err
		}
	}
	for _, spec := range sensors {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MatrixSweep runs the full controller × sensor × workload × seed
// matrix on the pooled scheduler: cells go onto a GOMAXPROCS worker
// pool; every worker shares one concurrency-safe scenario.ArtifactCache
// per workload (immutable network, rates and route table exist once per
// process) and owns one EngineCache per workload, so a handful of
// engines serve the whole matrix via ResetWith controller/sensor swaps.
// Results are bit-for-bit identical to MatrixSweepSerial for the same
// inputs (TestMatrixSweepPooledMatchesSerial, run under -race in CI).
// durationSec is the flat horizon for workloads that do not suggest
// their own sweep horizon; 0 means each workload's pattern default.
func MatrixSweep(workloadNames []string, controllers []scenario.ControllerSpec, sensors []sensing.Spec, seeds []uint64, durationSec float64) ([]MatrixStats, error) {
	plan, err := newMatrixPlan(workloadNames, controllers, sensors, seeds, durationSec)
	if err != nil {
		return nil, err
	}
	artifacts := make(map[string]*scenario.ArtifactCache, len(plan.workloads))
	for _, w := range plan.workloads {
		if _, ok := artifacts[w.Name]; !ok {
			artifacts[w.Name] = scenario.NewArtifactCache(w.Setup)
		}
	}
	n := plan.cells()
	cells := make([]matrixCell, n)
	errs := make([]error, n)
	jobs := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			caches := make(map[string]*EngineCache, len(artifacts))
			for name, a := range artifacts {
				caches[name] = NewSharedEngineCache(a)
			}
			for idx := range jobs {
				wi, ci, si, _ := plan.cell(idx)
				withCellLabels(i, plan.workloads[wi].Name, plan.controllers[ci].String(), plan.sensors[si].String(), func() {
					cells[idx], errs[idx] = plan.runCell(caches, idx)
				})
				if errs[idx] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for idx := 0; idx < n && !failed.Load(); idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return plan.aggregate(cells), nil
}

// MatrixSweepSerial is the strictly sequential fresh-engine reference
// implementation of MatrixSweep: cells in plan order, a new scenario
// and engine per cell, no reuse anywhere. The pooled scheduler is
// pinned bit-for-bit against it; keep the two in lockstep when changing
// either.
func MatrixSweepSerial(workloadNames []string, controllers []scenario.ControllerSpec, sensors []sensing.Spec, seeds []uint64, durationSec float64) ([]MatrixStats, error) {
	plan, err := newMatrixPlan(workloadNames, controllers, sensors, seeds, durationSec)
	if err != nil {
		return nil, err
	}
	cells := make([]matrixCell, plan.cells())
	for idx := range cells {
		c, err := plan.runCell(nil, idx)
		if err != nil {
			return nil, err
		}
		cells[idx] = c
	}
	return plan.aggregate(cells), nil
}

// DefaultMatrixControllers returns the canonical controller axis of the
// matrix sweep: one representative spec per family of the zoo.
func DefaultMatrixControllers() []scenario.ControllerSpec {
	return []scenario.ControllerSpec{
		{Kind: scenario.ControllerUtil},
		{Kind: scenario.ControllerCap, PeriodSec: 20},
		{Kind: scenario.ControllerFixed, PeriodSec: 16},
		{Kind: scenario.ControllerMaxPressure},
		{Kind: scenario.ControllerGapOut},
		{Kind: scenario.ControllerBPEst},
	}
}

// PenetrationMatrixSweep crosses the connected-vehicle penetration
// axis (the perfect reference plus cv:<rate> for each rate; nil rates
// use DefaultPenetrationRates) through the matrix for every controller
// family of DefaultMatrixControllers — the full sensing × control cross
// the per-family PenetrationSweep (UTIL-BP only) does not cover. Rows
// come back in MatrixSweep's plan order: workload-major, then
// controller, then the penetration axis from perfect to cv:1.
func PenetrationMatrixSweep(workloadNames []string, rates []float64, seeds []uint64, durationSec float64) ([]MatrixStats, error) {
	if len(rates) == 0 {
		rates = DefaultPenetrationRates()
	}
	return MatrixSweep(workloadNames, DefaultMatrixControllers(), PenetrationSpecs(rates), seeds, durationSec)
}

// FormatMatrixStats renders the matrix sweep as a papereval-style
// table, grouped by workload.
func FormatMatrixStats(rows []MatrixStats, seeds []uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Controller × sensor matrix, mean queuing time, %d seeds\n", len(seeds))
	last := ""
	for _, r := range rows {
		if r.Workload != last {
			fmt.Fprintf(&b, "%s\n", r.Workload)
			last = r.Workload
		}
		fmt.Fprintf(&b, "  %-16s %-12s %-18s %5.1f%% complete\n",
			r.Controller.String(), r.Sensor.String(),
			fmt.Sprintf("%.1f ± %.1f s", r.Mean, r.Std),
			100*r.CompletionRate)
	}
	return b.String()
}
