package experiment

import (
	"reflect"
	"testing"

	"utilbp/internal/scenario"
)

// Short horizons keep the robustness tests seconds-scale; the incident
// spans the middle half of the horizon either way.
const robustnessTestHorizon = 400

// TestRobustnessSweepPooledMatchesSerial pins the disrupted determinism
// contract end to end: the pooled scheduler — one artifact cache per
// severity (each artifact carries its own compiled schedule), per-worker
// engine caches swapping schedules through ResetWith — must reproduce
// the serial fresh-engine reference bit-for-bit across every
// (family × severity × seed) cell.
func TestRobustnessSweepPooledMatchesSerial(t *testing.T) {
	base := scenario.Default()
	capFracs := []float64{1, 0.5, 0.25}
	seeds := []uint64{1, 2}
	pooled, err := RobustnessSweep(base, scenario.PatternII, capFracs, seeds, robustnessTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RobustnessSweepSerial(base, scenario.PatternII, capFracs, seeds, robustnessTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pooled, serial) {
		t.Fatalf("pooled robustness sweep diverges from serial reference:\npooled: %+v\nserial: %+v", pooled, serial)
	}
}

// TestRobustnessSweepShape checks the sweep's structure: rows in
// (family, severity) order for both families, per-seed slices sized to
// the seed axis, and a severity axis that actually bites — the
// undisrupted reference must not be the worst row of its family.
func TestRobustnessSweepShape(t *testing.T) {
	base := scenario.Default()
	// The severe point clamps the central approach to ~2 vehicles so the
	// incident visibly bites even on this short horizon.
	capFracs := []float64{1, 0.02}
	seeds := []uint64{5, 6, 7}
	rows, err := RobustnessSweep(base, scenario.PatternII, capFracs, seeds, robustnessTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	families := RobustnessFamilies()
	if len(rows) != len(families)*len(capFracs) {
		t.Fatalf("%d rows, want %d", len(rows), len(families)*len(capFracs))
	}
	for i, r := range rows {
		if want := families[i/len(capFracs)]; r.Family != want {
			t.Fatalf("row %d: family %s, want %s", i, r.Family, want)
		}
		if want := capFracs[i%len(capFracs)]; r.CapFrac != want {
			t.Fatalf("row %d: capFrac %v, want %v", i, r.CapFrac, want)
		}
		if len(r.MeanWaits) != len(seeds) || len(r.Throughputs) != len(seeds) {
			t.Fatalf("row %d: per-seed slices sized %d/%d, want %d", i, len(r.MeanWaits), len(r.Throughputs), len(seeds))
		}
		if r.CapFrac == 1 && r.DegradationPct != 0 {
			t.Fatalf("row %d: undisrupted reference degraded by %v%% against itself", i, r.DegradationPct)
		}
	}
	for fi := range families {
		intact := rows[fi*len(capFracs)]
		worst := rows[fi*len(capFracs)+len(capFracs)-1]
		if worst.Mean <= intact.Mean {
			t.Fatalf("%s: severe incident did not raise the mean wait (%.2f intact vs %.2f at %.0f%% capacity)",
				intact.Family, intact.Mean, worst.Mean, 100*worst.CapFrac)
		}
	}
}

// TestMeasureRecovery runs the recovery metric at a stable operating
// point: queues must blow up past their onset level while degraded and
// drain back within the horizon once the incident clears.
func TestMeasureRecovery(t *testing.T) {
	base := scenario.Default()
	base.Seed = 6
	base.DemandScale = 0.6
	setup, err := base.WithCentralIncident(300, 300, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := MeasureRecovery(Spec{
		Setup:       setup,
		Pattern:     scenario.PatternII,
		Factory:     setup.UtilBP(),
		DurationSec: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.PeakQueued <= rec.OnsetQueued {
		t.Fatalf("incident did not back traffic up: peak %d, onset %d", rec.PeakQueued, rec.OnsetQueued)
	}
	if !rec.Recovered() {
		t.Fatalf("queues did not recover within the horizon: %+v", rec)
	}
}

// TestMeasureRecoveryRequiresIncident pins the error path: a spec whose
// setup carries no incident event cannot be measured.
func TestMeasureRecoveryRequiresIncident(t *testing.T) {
	base := scenario.Default()
	_, err := MeasureRecovery(Spec{
		Setup:       base,
		Pattern:     scenario.PatternII,
		Factory:     base.UtilBP(),
		DurationSec: 100,
	})
	if err == nil {
		t.Fatal("MeasureRecovery accepted a setup without an incident")
	}
}
