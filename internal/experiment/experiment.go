// Package experiment is the reproduction harness: it wires scenarios,
// controllers and recorders into simulation runs and regenerates every
// table and figure of the paper's Section V (see the per-experiment index
// in DESIGN.md).
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"utilbp/internal/analysis"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
	"utilbp/internal/stats"
)

// Spec describes one simulation run.
type Spec struct {
	// Setup provides the constants; zero value uses the paper defaults.
	Setup scenario.Setup
	// Pattern selects the Table II demand.
	Pattern scenario.Pattern
	// Factory builds the controller under test.
	Factory signal.Factory
	// DurationSec overrides the pattern's default horizon when > 0.
	DurationSec float64
	// MixedLanes enables the head-of-line-blocking extension.
	MixedLanes bool
	// StartupLostSteps overrides the engine's startup lost time
	// (0 = engine default of 2 s, negative disables).
	StartupLostSteps int
	// Serve selects the serve-substep dispatch (DESIGN.md §16); the
	// zero value is the batched serve plane, sim.ServeReference forces
	// the per-junction reference loop. The two step bit-identical
	// states, so this is a performance knob, not a semantic one.
	Serve sim.ServeMode
}

// Result summarizes one run.
type Result struct {
	Controller  string
	Pattern     scenario.Pattern
	DurationSec float64
	Summary     stats.WaitSummary
	Totals      sim.Totals
}

// Prepare builds the engine for a spec so callers can attach recorders
// before running. It returns the engine, the built scenario instance,
// and the horizon in seconds.
func Prepare(spec Spec) (*sim.Engine, *scenario.Instance, float64, error) {
	if spec.Factory == nil {
		return nil, nil, 0, fmt.Errorf("experiment: Spec.Factory is required")
	}
	built, err := spec.Setup.Build(spec.Pattern)
	if err != nil {
		return nil, nil, 0, err
	}
	duration := built.Duration
	if spec.DurationSec > 0 {
		duration = spec.DurationSec
	}
	engine, err := sim.New(sim.Config{
		Net:              built.Grid.Network,
		Controllers:      spec.Factory,
		Demand:           built.Demand,
		Router:           built.Router,
		Routes:           built.Routes,
		Sensor:           built.Sensor,
		Control:          built.Setup.Control,
		Events:           built.Events,
		MixedLanes:       spec.MixedLanes,
		StartupLostSteps: spec.StartupLostSteps,
		Serve:            spec.Serve,
		ExpectedVehicles: built.ExpectedVehicles(duration),
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return engine, built, duration, nil
}

// Run executes a spec to completion and summarizes it.
func Run(spec Spec) (Result, error) {
	engine, _, duration, err := Prepare(spec)
	if err != nil {
		return Result{}, err
	}
	return finishRun(engine, spec.Factory, spec.Pattern, duration)
}

// finishRun drives a prepared engine to the horizon, checks invariants
// and summarizes it — the shared tail of Run and EngineCache.Run, kept
// in one place so the fresh and engine-reusing paths cannot drift
// apart.
func finishRun(engine *sim.Engine, factory signal.Factory, pattern scenario.Pattern, duration float64) (Result, error) {
	engine.RunFor(duration)
	engine.FinalizeWaits()
	if err := engine.CheckInvariants(); err != nil {
		return Result{}, err
	}
	return Result{
		Controller:  factory.Name(),
		Pattern:     pattern,
		DurationSec: duration,
		Summary:     stats.SummarizeArena(engine.Arena()),
		Totals:      engine.Totals(),
	}, nil
}

// PeriodPoint is one x-y point of Figure 2: a CAP-BP control period and
// the resulting network-average queuing time.
type PeriodPoint struct {
	PeriodSec int
	MeanWait  float64
}

// DefaultPeriods returns the Figure 2 sweep range: 10..80 s in 2 s steps.
func DefaultPeriods() []int {
	var out []int
	for p := 10; p <= 80; p += 2 {
		out = append(out, p)
	}
	return out
}

// CoarsePeriods returns a faster sweep (10..80 step 10) for tests and
// benchmarks that only need the curve's shape.
func CoarsePeriods() []int {
	var out []int
	for p := 10; p <= 80; p += 10 {
		out = append(out, p)
	}
	return out
}

// SweepCAPPeriods runs CAP-BP over the given control periods for one
// pattern, the solid curve of Figure 2. Runs execute in parallel (each
// owns its engine); results are returned in period order.
func SweepCAPPeriods(setup scenario.Setup, pattern scenario.Pattern, periods []int, durationSec float64) ([]PeriodPoint, error) {
	if len(periods) == 0 {
		periods = DefaultPeriods()
	}
	points := make([]PeriodPoint, len(periods))
	errs := make([]error, len(periods))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range periods {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := Run(Spec{
				Setup:       setup,
				Pattern:     pattern,
				Factory:     setup.CapBP(p),
				DurationSec: durationSec,
			})
			if err != nil {
				errs[i] = fmt.Errorf("experiment: CAP-BP period %d: %w", p, err)
				return
			}
			points[i] = PeriodPoint{PeriodSec: p, MeanWait: res.Summary.MeanWait}
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// BestPeriod returns the sweep point with the lowest mean wait.
func BestPeriod(points []PeriodPoint) (PeriodPoint, error) {
	if len(points) == 0 {
		return PeriodPoint{}, fmt.Errorf("experiment: empty sweep")
	}
	waits := make([]float64, len(points))
	for i, p := range points {
		waits[i] = p.MeanWait
	}
	return points[analysis.ArgMin(waits)], nil
}
