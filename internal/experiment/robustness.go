package experiment

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"utilbp/internal/analysis"
	"utilbp/internal/event"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
	"utilbp/internal/telemetry"
)

// DefaultCapFracs returns the canonical disruption-severity axis: the
// undisrupted reference (capacity fraction 1 — the event plane is still
// armed, its transitions are no-ops) down to a near-total closure. The
// axis is deliberately bottom-heavy: the paper's W = 120 storage bound
// leaves so much headroom above typical occupancy that mild clamps
// never bind — capacity loss starts to bite only once the effective
// bound drops toward the queue actually standing on the road.
func DefaultCapFracs() []float64 { return []float64{1, 0.25, 0.1, 0.01} }

// DefaultRobustnessPeriodSec is the CAP-BP control period the
// robustness sweep runs the CAP-BP family at: near the Figure 2
// optimum, so the comparison is against CAP-BP at strength rather than
// a strawman period.
const DefaultRobustnessPeriodSec = 30

// RobustnessFamilies returns the controller families of the robustness
// sweep, in row order.
func RobustnessFamilies() []ControllerFamily {
	return []ControllerFamily{FamilyUtilBP, FamilyCapBP}
}

// RobustnessStats aggregates one (controller family × incident
// severity) row of the robustness sweep across seeds: how throughput
// and queuing degrade as a mid-run incident removes link capacity.
type RobustnessStats struct {
	// Family is the controller family of this row.
	Family ControllerFamily
	// CapFrac is the incident severity: the fraction of the disrupted
	// road's capacity remaining (1 = undisrupted reference).
	CapFrac float64
	// MeanWaits and Throughputs are the per-seed network-mean queuing
	// times and exited-vehicle counts, in the sweep's seed order.
	MeanWaits   []float64
	Throughputs []float64
	// Mean and Std summarize MeanWaits; MeanThroughput summarizes
	// Throughputs.
	Mean, Std      float64
	MeanThroughput float64
	// DegradationPct is the mean per-seed wait increase relative to the
	// same family's CapFrac = 1 row, in percent; zero when the severity
	// axis carries no undisrupted reference.
	DegradationPct float64
}

// robustnessPlan enumerates the independent cells of a robustness
// sweep: one run per (family × severity × seed), identified by a flat
// index so pooled workers write into pre-sized slots and aggregation
// stays in plan order — the scheme of sweepPlan/sensingPlan. Each
// severity is a derived Setup carrying the incident spec, so each has
// its own immutable artifact (and, pooled, its own engine/artifact
// caches: schedules are per-artifact state).
type robustnessPlan struct {
	pattern   scenario.Pattern
	families  []ControllerFamily
	capFracs  []float64
	setups    []scenario.Setup // per severity, incident armed
	seeds     []uint64
	periodSec int
}

func (p *robustnessPlan) cells() int {
	return len(p.families) * len(p.capFracs) * len(p.seeds)
}

func (p *robustnessPlan) cell(idx int) (fi, ci, ki int) {
	ki = idx % len(p.seeds)
	row := idx / len(p.seeds)
	return row / len(p.capFracs), row % len(p.capFracs), ki
}

// runCell executes one cell and returns its network-mean queuing time
// and throughput (exited vehicles). With caches the cell runs on the
// severity's reused engine; with caches == nil it builds a fresh
// scenario and engine per cell — the serial reference the pooled
// scheduler is pinned against.
func (p *robustnessPlan) runCell(caches []*EngineCache, idx int, durationSec float64) (wait, throughput float64, err error) {
	fi, ci, ki := p.cell(idx)
	family, seed := p.families[fi], p.seeds[ki]
	// Both paths share one factory built from the seed-patched setup, so
	// a factory that ever consumes Setup.Seed keeps them in lockstep.
	setup := p.setups[ci]
	setup.Seed = seed
	var factory signal.Factory
	switch family {
	case FamilyCapBP:
		factory = setup.CapBP(p.periodSec)
	default:
		factory = setup.UtilBP()
	}
	var res Result
	if caches != nil {
		res, err = caches[ci].Run(p.pattern, family, factory, seed, durationSec)
	} else {
		res, err = Run(Spec{Setup: setup, Pattern: p.pattern, Factory: factory, DurationSec: durationSec})
	}
	if err != nil {
		return 0, 0, fmt.Errorf("experiment: %s capacity %.2f seed %d: %w", family, p.capFracs[ci], seed, err)
	}
	return res.Summary.MeanWait, float64(res.Totals.Exited), nil
}

// aggregate folds the per-cell results into RobustnessStats rows in
// (family, severity) order, with degradations computed per seed against
// the family's CapFrac = 1 row.
func (p *robustnessPlan) aggregate(waits, thrs []float64) []RobustnessStats {
	baseline := -1
	for ci, f := range p.capFracs {
		if f == 1 {
			baseline = ci
			break
		}
	}
	out := make([]RobustnessStats, 0, len(p.families)*len(p.capFracs))
	for fi, family := range p.families {
		for ci, frac := range p.capFracs {
			row := RobustnessStats{
				Family:      family,
				CapFrac:     frac,
				MeanWaits:   make([]float64, len(p.seeds)),
				Throughputs: make([]float64, len(p.seeds)),
			}
			deg := 0.0
			for ki := range p.seeds {
				at := func(c int) int { return (fi*len(p.capFracs)+c)*len(p.seeds) + ki }
				row.MeanWaits[ki] = waits[at(ci)]
				row.Throughputs[ki] = thrs[at(ci)]
				if baseline >= 0 {
					if ref := waits[at(baseline)]; ref > 0 {
						deg += 100 * (row.MeanWaits[ki] - ref) / ref
					}
				}
			}
			row.Mean = analysis.Mean(row.MeanWaits)
			row.Std = analysis.Std(row.MeanWaits)
			row.MeanThroughput = analysis.Mean(row.Throughputs)
			if baseline >= 0 {
				row.DegradationPct = deg / float64(len(p.seeds))
			}
			out = append(out, row)
		}
	}
	return out
}

// newRobustnessPlan derives the per-severity setups: each severity is
// the base setup plus a central incident (scenario.WithCentralIncident)
// spanning the middle half of the sweep horizon, so every run sees both
// the degraded regime and the post-clearance recovery.
func newRobustnessPlan(base scenario.Setup, pattern scenario.Pattern, capFracs []float64, seeds []uint64, durationSec float64) (*robustnessPlan, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: at least one seed required")
	}
	if len(capFracs) == 0 {
		capFracs = DefaultCapFracs()
	}
	if durationSec <= 0 {
		durationSec = pattern.Duration()
	}
	p := &robustnessPlan{
		pattern:   pattern,
		families:  RobustnessFamilies(),
		capFracs:  capFracs,
		seeds:     seeds,
		periodSec: DefaultRobustnessPeriodSec,
	}
	t0, dur := durationSec/4, durationSec/2
	for _, frac := range capFracs {
		setup, err := base.WithCentralIncident(t0, dur, frac)
		if err != nil {
			return nil, err
		}
		p.setups = append(p.setups, setup)
	}
	return p, nil
}

// RobustnessSweep runs the throughput-under-capacity-loss experiment:
// every controller family of RobustnessFamilies across the incident
// severity axis and the seeds, on a mid-run central incident spanning
// the middle half of the horizon. Cells are scheduled onto a
// GOMAXPROCS worker pool; severities have distinct artifacts (the
// disruption schedule is compiled into them), so the workers share one
// concurrency-safe ArtifactCache per severity and each worker keeps
// one EngineCache per severity on top. Results are bit-for-bit
// identical to RobustnessSweepSerial for the same inputs
// (TestRobustnessSweepPooledMatchesSerial).
func RobustnessSweep(base scenario.Setup, pattern scenario.Pattern, capFracs []float64, seeds []uint64, durationSec float64) ([]RobustnessStats, error) {
	plan, err := newRobustnessPlan(base, pattern, capFracs, seeds, durationSec)
	if err != nil {
		return nil, err
	}
	n := plan.cells()
	waits := make([]float64, n)
	thrs := make([]float64, n)
	errs := make([]error, n)
	jobs := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	shared := make([]*scenario.ArtifactCache, len(plan.setups))
	for ci, setup := range plan.setups {
		shared[ci] = scenario.NewArtifactCache(setup)
	}
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			caches := make([]*EngineCache, len(shared))
			for ci := range shared {
				caches[ci] = NewSharedEngineCache(shared[ci])
			}
			for idx := range jobs {
				fi, ci, _ := plan.cell(idx)
				withCellLabels(w, plan.pattern.String(), string(plan.families[fi]), plan.setups[ci].Sensor.String(), func() {
					waits[idx], thrs[idx], errs[idx] = plan.runCell(caches, idx, durationSec)
				})
				if errs[idx] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for idx := 0; idx < n && !failed.Load(); idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return plan.aggregate(waits, thrs), nil
}

// RobustnessSweepSerial is the strictly sequential fresh-engine
// reference implementation of RobustnessSweep: cells in plan order, a
// new scenario and engine per cell, no reuse anywhere. The pooled
// scheduler is pinned bit-for-bit against it; keep the two in lockstep
// when changing either.
func RobustnessSweepSerial(base scenario.Setup, pattern scenario.Pattern, capFracs []float64, seeds []uint64, durationSec float64) ([]RobustnessStats, error) {
	plan, err := newRobustnessPlan(base, pattern, capFracs, seeds, durationSec)
	if err != nil {
		return nil, err
	}
	n := plan.cells()
	waits := make([]float64, n)
	thrs := make([]float64, n)
	for idx := 0; idx < n; idx++ {
		w, t, err := plan.runCell(nil, idx, durationSec)
		if err != nil {
			return nil, err
		}
		waits[idx], thrs[idx] = w, t
	}
	return plan.aggregate(waits, thrs), nil
}

// FormatRobustnessStats renders the robustness sweep table.
func FormatRobustnessStats(rows []RobustnessStats, seeds []uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Throughput and queuing under capacity loss, %d seeds\n", len(seeds))
	fmt.Fprintf(&b, "%-10s %-10s %-20s %-12s %s\n", "Family", "capacity", "wait mean ± std (s)", "throughput", "vs intact")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10s %-20s %-12.0f %+.1f%%\n",
			r.Family,
			fmt.Sprintf("%.0f%%", 100*r.CapFrac),
			fmt.Sprintf("%.1f ± %.1f", r.Mean, r.Std),
			r.MeanThroughput,
			r.DegradationPct)
	}
	return b.String()
}

// RecoveryResult reports how a run absorbed its first incident: the
// network-wide queue level at onset, the peak while degraded, and how
// long after clearance the queues needed to drain back to the onset
// level.
type RecoveryResult struct {
	// OnsetQueued is the network-wide queued-vehicle count at the
	// incident onset, averaged over the minute before it (a stationary
	// total still fluctuates step to step; an instantaneous sample
	// would make the recovery threshold a lottery over that noise).
	// PeakQueued is the maximum instantaneous total from onset until
	// recovery (or the horizon).
	OnsetQueued, PeakQueued int
	// RecoverySec is the time from incident clearance until the total
	// queued count first returned to its onset level, in seconds; -1
	// when the queues never recovered within the horizon (blow-up).
	RecoverySec float64
	// DrainTimes and DrainQueued are the full recovery trajectory the
	// scalars above collapse to: the network-wide queued total at every
	// mini-slot of the run with its time axis in seconds, straight off
	// the telemetry net series the metric is computed from (the drain
	// curve papereval -drain renders).
	DrainTimes, DrainQueued []float64
}

// Recovered reports whether the queues drained back to their onset
// level within the horizon.
func (r RecoveryResult) Recovered() bool { return r.RecoverySec >= 0 }

// MeasureRecovery runs the spec to completion while watching the first
// incident of its event schedule: it records the network-wide queued
// total at the incident onset (averaged over the preceding minute),
// tracks the peak, and measures how long after clearance the total
// first drains back to the onset level — the recovery-time metric of
// the robustness experiment. The metric is only meaningful at a stable
// operating point: the onset level must be an equilibrium, not a point
// on the fill transient, so place the onset past warm-up and scale
// demand below the stability margin. The spec's setup must carry at
// least one incident event.
func MeasureRecovery(spec Spec) (RecoveryResult, error) {
	engine, built, duration, err := Prepare(spec)
	if err != nil {
		return RecoveryResult{}, err
	}
	var incident *event.Spec
	for _, ev := range built.Events.Specs() {
		if ev.Kind == event.KindIncident {
			incident = &ev
			break
		}
	}
	if incident == nil {
		return RecoveryResult{}, fmt.Errorf("experiment: MeasureRecovery needs an incident event in the setup")
	}
	dt := engine.DeltaT()
	onsetStep := int(math.Round(incident.T0 / dt))
	clearStep := onsetStep + max(1, int(math.Round(incident.Dur/dt)))
	// The onset level averages the minute before the incident (clamped
	// to the run start for very early onsets).
	baseStep := max(0, onsetStep-int(math.Round(60/dt)))
	// The metric is computed off a telemetry net recorder sized for the
	// whole run (recording is observation-only, so instrumenting the run
	// cannot change it), which also yields the full drain curve instead
	// of only its scalars.
	rec, err := telemetry.NewRecorder(telemetry.Net(), int(math.Ceil(duration/dt))+1)
	if err != nil {
		return RecoveryResult{}, err
	}
	if err := engine.InstallTelemetry(rec); err != nil {
		return RecoveryResult{}, err
	}
	engine.RunFor(duration)
	engine.FinalizeWaits()
	if err := engine.CheckInvariants(); err != nil {
		return RecoveryResult{}, err
	}
	res := RecoveryResult{RecoverySec: -1}
	res.DrainQueued = rec.NetQueued()
	res.DrainTimes = rec.Times()
	first := rec.FirstStep()
	baseSum, baseN := 0, 0
	for i, qf := range res.DrainQueued {
		step, q := first+i, int(qf)
		if step < baseStep {
			continue
		}
		if step < onsetStep {
			baseSum, baseN = baseSum+q, baseN+1
			continue
		}
		if step == onsetStep {
			baseSum, baseN = baseSum+q, baseN+1
			res.OnsetQueued = (baseSum + baseN/2) / baseN
		}
		if q > res.PeakQueued {
			res.PeakQueued = q
		}
		if step >= clearStep && q <= res.OnsetQueued {
			res.RecoverySec = float64(step-clearStep) * dt
			break
		}
	}
	return res, nil
}
