package experiment

import (
	"fmt"
	"strings"

	"utilbp/internal/analysis"
	"utilbp/internal/network"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
	"utilbp/internal/stats"
)

// TableIIIRow is one row of the paper's Table III: the best fixed period
// for CAP-BP versus UTIL-BP on the same pattern.
type TableIIIRow struct {
	Pattern        scenario.Pattern
	CAPPeriodSec   int
	CAPMeanWait    float64
	UTILMeanWait   float64
	ImprovementPct float64
}

// TableIII reproduces the paper's Table III over the given patterns
// (nil = all five rows) and CAP-BP periods (nil = the Figure 2 sweep).
// durationSec > 0 shortens every run for quick builds.
func TableIII(setup scenario.Setup, patterns []scenario.Pattern, periods []int, durationSec float64) ([]TableIIIRow, error) {
	if patterns == nil {
		patterns = scenario.AllPatterns
	}
	rows := make([]TableIIIRow, 0, len(patterns))
	for _, pat := range patterns {
		sweep, err := SweepCAPPeriods(setup, pat, periods, durationSec)
		if err != nil {
			return nil, err
		}
		best, err := BestPeriod(sweep)
		if err != nil {
			return nil, err
		}
		util, err := Run(Spec{Setup: setup, Pattern: pat, Factory: setup.UtilBP(), DurationSec: durationSec})
		if err != nil {
			return nil, err
		}
		imp, err := analysis.Improvement(best.MeanWait, util.Summary.MeanWait)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIIIRow{
			Pattern:        pat,
			CAPPeriodSec:   best.PeriodSec,
			CAPMeanWait:    best.MeanWait,
			UTILMeanWait:   util.Summary.MeanWait,
			ImprovementPct: imp * 100,
		})
	}
	return rows, nil
}

// FormatTableIII renders rows like the paper's Table III.
func FormatTableIII(rows []TableIIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-14s %-20s %-20s %s\n", "Pattern", "CAP-BP period", "CAP-BP avg queuing", "UTIL-BP avg queuing", "improvement")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-14s %-20s %-20s %.1f%%\n",
			r.Pattern.String(),
			fmt.Sprintf("%d s", r.CAPPeriodSec),
			fmt.Sprintf("%.2f s", r.CAPMeanWait),
			fmt.Sprintf("%.2f s", r.UTILMeanWait),
			r.ImprovementPct)
	}
	return b.String()
}

// Fig2Data carries Figure 2: the CAP-BP period curve on the mixed
// pattern plus the flat UTIL-BP reference.
type Fig2Data struct {
	Points   []PeriodPoint
	UTILWait float64
}

// Fig2 reproduces Figure 2. durationSec > 0 shortens the runs.
func Fig2(setup scenario.Setup, periods []int, durationSec float64) (Fig2Data, error) {
	points, err := SweepCAPPeriods(setup, scenario.PatternMixed, periods, durationSec)
	if err != nil {
		return Fig2Data{}, err
	}
	util, err := Run(Spec{Setup: setup, Pattern: scenario.PatternMixed, Factory: setup.UtilBP(), DurationSec: durationSec})
	if err != nil {
		return Fig2Data{}, err
	}
	return Fig2Data{Points: points, UTILWait: util.Summary.MeanWait}, nil
}

// FormatFig2 renders the Figure 2 series as text.
func FormatFig2(d Fig2Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %s\n", "period", "CAP-BP avg queuing time")
	for _, p := range d.Points {
		fmt.Fprintf(&b, "%-10s %.2f s\n", fmt.Sprintf("%d s", p.PeriodSec), p.MeanWait)
	}
	fmt.Fprintf(&b, "UTIL-BP (period-free): %.2f s\n", d.UTILWait)
	return b.String()
}

// TimelineData carries Figures 3/4: the phases applied at the top-right
// junction over the horizon.
type TimelineData struct {
	Controller string
	DT         float64
	Phases     []signal.Phase
	Stats      stats.PhaseStats
}

// PhaseTimeline records the control phases applied at the junction at
// (row, col) — Figures 3 and 4 use the top-right junction of Pattern I
// for 2000 s.
func PhaseTimeline(setup scenario.Setup, pattern scenario.Pattern, factory signal.Factory, durationSec float64, row, col int) (TimelineData, error) {
	engine, built, duration, err := Prepare(Spec{
		Setup: setup, Pattern: pattern, Factory: factory, DurationSec: durationSec,
	})
	if err != nil {
		return TimelineData{}, err
	}
	junction := built.Grid.JunctionAt(row, col)
	if junction == network.NoNode {
		return TimelineData{}, fmt.Errorf("experiment: no junction at (%d,%d)", row, col)
	}
	rec := stats.NewPhaseRecorder(junction)
	engine.AddHooks(rec.Hooks())
	engine.RunFor(duration)
	return TimelineData{
		Controller: factory.Name(),
		DT:         engine.DeltaT(),
		Phases:     rec.Phases,
		Stats:      rec.Analyze(),
	}, nil
}

// QueueSeriesData carries Figure 5: a sampled queue-length series on one
// approach road.
type QueueSeriesData struct {
	Controller string
	Times      []float64
	Values     []int
	Mean       float64
	Max        int
}

// EastQueueSeries samples the queue on the east approach of the junction
// at (row, col) — Figure 5 uses the top-right junction under Pattern I.
func EastQueueSeries(setup scenario.Setup, pattern scenario.Pattern, factory signal.Factory, durationSec float64, row, col, stride int) (QueueSeriesData, error) {
	engine, built, duration, err := Prepare(Spec{
		Setup: setup, Pattern: pattern, Factory: factory, DurationSec: durationSec,
	})
	if err != nil {
		return QueueSeriesData{}, err
	}
	junction := built.Grid.JunctionAt(row, col)
	if junction == network.NoNode {
		return QueueSeriesData{}, fmt.Errorf("experiment: no junction at (%d,%d)", row, col)
	}
	road := scenario.EastApproach(built.Grid, junction)
	if road == network.NoRoad {
		return QueueSeriesData{}, fmt.Errorf("experiment: junction (%d,%d) has no east approach", row, col)
	}
	series := stats.NewQueueSeries(road, stride)
	engine.AddHooks(series.Hooks())
	engine.RunFor(duration)
	return QueueSeriesData{
		Controller: factory.Name(),
		Times:      series.Times,
		Values:     series.Values,
		Mean:       series.Mean(),
		Max:        series.Max(),
	}, nil
}
