package experiment

import (
	"strings"
	"testing"

	"utilbp/internal/scenario"
	"utilbp/internal/signal"
)

// quick returns a setup and a short horizon for fast runs.
func quickSetup() scenario.Setup {
	s := scenario.Default()
	s.Seed = 11
	return s
}

func TestRunBasics(t *testing.T) {
	setup := quickSetup()
	res, err := Run(Spec{Setup: setup, Pattern: scenario.PatternII, Factory: setup.UtilBP(), DurationSec: 600})
	if err != nil {
		t.Fatal(err)
	}
	if res.Controller != "UTIL-BP" || res.Pattern != scenario.PatternII {
		t.Errorf("metadata: %+v", res)
	}
	if res.DurationSec != 600 {
		t.Errorf("duration: %v", res.DurationSec)
	}
	if res.Summary.Spawned == 0 || res.Summary.Exited == 0 {
		t.Errorf("no traffic: %+v", res.Summary)
	}
	if res.Summary.MeanWait <= 0 {
		t.Errorf("mean wait: %v", res.Summary.MeanWait)
	}
}

func TestRunRequiresFactory(t *testing.T) {
	if _, err := Run(Spec{Setup: quickSetup(), Pattern: scenario.PatternI}); err == nil {
		t.Fatal("missing factory accepted")
	}
}

func TestRunDefaultDuration(t *testing.T) {
	setup := quickSetup()
	_, _, duration, err := Prepare(Spec{Setup: setup, Pattern: scenario.PatternI, Factory: setup.UtilBP()})
	if err != nil {
		t.Fatal(err)
	}
	if duration != 3600 {
		t.Errorf("default duration = %v", duration)
	}
}

func TestSweepOrderedAndBest(t *testing.T) {
	setup := quickSetup()
	points, err := SweepCAPPeriods(setup, scenario.PatternII, []int{30, 10, 20}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Results come back in the order given.
	if points[0].PeriodSec != 30 || points[1].PeriodSec != 10 || points[2].PeriodSec != 20 {
		t.Errorf("order: %+v", points)
	}
	best, err := BestPeriod(points)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.MeanWait < best.MeanWait {
			t.Errorf("best %v not minimal vs %v", best, p)
		}
	}
	if _, err := BestPeriod(nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestSweepDeterministic(t *testing.T) {
	setup := quickSetup()
	a, err := SweepCAPPeriods(setup, scenario.PatternII, []int{12, 24}, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepCAPPeriods(setup, scenario.PatternII, []int{12, 24}, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sweep diverged: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestTableIIIShortRun(t *testing.T) {
	setup := quickSetup()
	rows, err := TableIII(setup, []scenario.Pattern{scenario.PatternII}, []int{14, 20}, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Pattern != scenario.PatternII {
		t.Errorf("pattern: %v", r.Pattern)
	}
	if r.CAPPeriodSec != 14 && r.CAPPeriodSec != 20 {
		t.Errorf("period: %d", r.CAPPeriodSec)
	}
	if r.CAPMeanWait <= 0 || r.UTILMeanWait <= 0 {
		t.Errorf("waits: %+v", r)
	}
	text := FormatTableIII(rows)
	if !strings.Contains(text, "II") || !strings.Contains(text, "UTIL-BP") {
		t.Errorf("format: %q", text)
	}
}

func TestFig2ShortRun(t *testing.T) {
	setup := quickSetup()
	data, err := Fig2(setup, []int{16, 40}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Points) != 2 || data.UTILWait <= 0 {
		t.Errorf("fig2: %+v", data)
	}
	text := FormatFig2(data)
	if !strings.Contains(text, "UTIL-BP") || !strings.Contains(text, "16 s") {
		t.Errorf("format: %q", text)
	}
}

func TestPhaseTimelineShortRun(t *testing.T) {
	setup := quickSetup()
	tl, err := PhaseTimeline(setup, scenario.PatternI, setup.UtilBP(), 300, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Phases) != 300 {
		t.Fatalf("timeline length = %d", len(tl.Phases))
	}
	if tl.Controller != "UTIL-BP" || tl.DT != 1 {
		t.Errorf("metadata: %+v", tl)
	}
	greens := 0
	for p := range tl.Stats.GreenSlots {
		if p == signal.Amber {
			t.Error("amber counted as green")
		}
		greens += tl.Stats.GreenSlots[p]
	}
	if greens+tl.Stats.AmberSlots != 300 {
		t.Errorf("slots don't add up: %d + %d", greens, tl.Stats.AmberSlots)
	}
	if _, err := PhaseTimeline(setup, scenario.PatternI, setup.UtilBP(), 100, 9, 9); err == nil {
		t.Error("bad junction accepted")
	}
}

func TestEastQueueSeriesShortRun(t *testing.T) {
	setup := quickSetup()
	qs, err := EastQueueSeries(setup, scenario.PatternI, setup.CapBP(16), 300, 0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.Values) != 60 {
		t.Fatalf("samples = %d, want 60", len(qs.Values))
	}
	if qs.Controller != "CAP-BP" {
		t.Errorf("controller: %q", qs.Controller)
	}
	if _, err := EastQueueSeries(setup, scenario.PatternI, setup.CapBP(16), 100, 9, 9, 5); err == nil {
		t.Error("bad junction accepted")
	}
}

func TestDefaultAndCoarsePeriods(t *testing.T) {
	d := DefaultPeriods()
	if d[0] != 10 || d[len(d)-1] != 80 || len(d) != 36 {
		t.Errorf("default periods: %v", d)
	}
	c := CoarsePeriods()
	if c[0] != 10 || c[len(c)-1] != 80 || len(c) != 8 {
		t.Errorf("coarse periods: %v", c)
	}
}

// TestHeadlineShortRun is the integration check of the paper's headline:
// on a shortened Pattern IV run, UTIL-BP beats CAP-BP at every period in
// a small sweep.
func TestHeadlineShortRun(t *testing.T) {
	setup := quickSetup()
	util, err := Run(Spec{Setup: setup, Pattern: scenario.PatternIV, Factory: setup.UtilBP(), DurationSec: 1500})
	if err != nil {
		t.Fatal(err)
	}
	points, err := SweepCAPPeriods(setup, scenario.PatternIV, []int{14, 22, 30}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := BestPeriod(points)
	if util.Summary.MeanWait >= best.MeanWait {
		t.Errorf("UTIL-BP (%.1f s) did not beat CAP-BP best (%.1f s @ %d s)",
			util.Summary.MeanWait, best.MeanWait, best.PeriodSec)
	}
}

// TestMixedLanesExtension checks the HOL extension run path end to end.
func TestMixedLanesExtension(t *testing.T) {
	setup := quickSetup()
	dedicated, err := Run(Spec{Setup: setup, Pattern: scenario.PatternII, Factory: setup.UtilBP(), DurationSec: 800})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Run(Spec{Setup: setup, Pattern: scenario.PatternII, Factory: setup.UtilBP(), DurationSec: 800, MixedLanes: true})
	if err != nil {
		t.Fatal(err)
	}
	// HOL blocking can only hurt: mixed lanes should not beat dedicated
	// lanes.
	if mixed.Summary.MeanWait < dedicated.Summary.MeanWait*0.95 {
		t.Errorf("mixed lanes (%.1f) suspiciously better than dedicated (%.1f)",
			mixed.Summary.MeanWait, dedicated.Summary.MeanWait)
	}
}
