package experiment

import (
	"testing"

	"utilbp/internal/scenario"
	"utilbp/internal/signal"
)

// TestEngineCacheRunModeMatchesFresh pins the controller-mode axis of
// the engine cache: one cached engine serving per-junction and batched
// cells mid-sweep (the dispatch mode swapped on every rewind through
// sim.ResetOptions) must match freshly built engines for each cell —
// and the modes must match each other, since the batched control plane
// is pinned bit-for-bit to the per-junction path.
func TestEngineCacheRunModeMatchesFresh(t *testing.T) {
	base := scenario.Default()
	base.Seed = 3
	cache := NewEngineCache(base)
	const horizon = 600

	cells := []struct {
		name string
		mode signal.ControlMode
		seed uint64
	}{
		{"batched-seed3", signal.ControlBatched, 3},
		{"per-junction-seed3", signal.ControlPerJunction, 3},
		{"batched-seed4", signal.ControlBatched, 4},
		{"per-junction-seed4", signal.ControlPerJunction, 4},
		{"per-junction-again", signal.ControlPerJunction, 3},
	}
	waits := map[uint64]map[signal.ControlMode]float64{}
	for _, cell := range cells {
		setup := base
		setup.Seed = cell.seed
		got, err := cache.RunMode(scenario.PatternII, FamilyUtilBP, setup.UtilBP(), cell.mode, cell.seed, horizon)
		if err != nil {
			t.Fatalf("%s: %v", cell.name, err)
		}
		setup.Control = cell.mode
		fresh, err := Run(Spec{Setup: setup, Pattern: scenario.PatternII, Factory: setup.UtilBP(), DurationSec: horizon})
		if err != nil {
			t.Fatalf("%s fresh: %v", cell.name, err)
		}
		if got != fresh {
			t.Fatalf("%s: cached result %+v != fresh result %+v", cell.name, got, fresh)
		}
		if waits[cell.seed] == nil {
			waits[cell.seed] = map[signal.ControlMode]float64{}
		}
		waits[cell.seed][cell.mode] = got.Summary.MeanWait
	}
	for seed, byMode := range waits {
		if byMode[signal.ControlBatched] != byMode[signal.ControlPerJunction] {
			t.Fatalf("seed %d: batched mean wait %v != per-junction %v",
				seed, byMode[signal.ControlBatched], byMode[signal.ControlPerJunction])
		}
	}
}
