package experiment

import (
	"context"
	"runtime/pprof"
	"strconv"
)

// withCellLabels runs one sweep cell under runtime/pprof labels —
// workload, controller, sensor and the pooled worker's index — so CPU
// profiles of a pooled sweep attribute samples to the cell being
// executed instead of an anonymous worker goroutine (filter with e.g.
// `pprof -tagfocus controller=UTIL-BP`). The labels ride on the
// goroutine only for the duration of fn; the Labels/Do pair allocates,
// which is noise at cell granularity (a cell is a full simulation run).
func withCellLabels(worker int, workload, controller, sensor string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels(
		"workload", workload,
		"controller", controller,
		"sensor", sensor,
		"worker", strconv.Itoa(worker),
	), func(context.Context) { fn() })
}
