package experiment

import (
	"strings"
	"testing"

	"utilbp/internal/scenario"
)

func TestAblationsShortRun(t *testing.T) {
	setup := quickSetup()
	rows, err := Ablations(setup, scenario.PatternIV, 700)
	if err != nil {
		t.Fatal(err)
	}
	// full + A1..A4 + A6.
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	if rows[0].Name != "full UTIL-BP" || rows[0].DegradationPct != 0 {
		t.Errorf("first row should be the full algorithm: %+v", rows[0])
	}
	if rows[0].MeanWait <= 0 {
		t.Error("full algorithm has no wait measurement")
	}
	names := map[string]bool{}
	for _, r := range rows {
		if names[r.Name] {
			t.Errorf("duplicate row %q", r.Name)
		}
		names[r.Name] = true
		if r.MeanWait <= 0 {
			t.Errorf("row %q has non-positive wait", r.Name)
		}
	}
	// The load-bearing mechanisms must show positive degradation even at
	// this short horizon.
	for _, key := range []string{"A1 no-W*-shift", "A2 no-keep-phase"} {
		found := false
		for _, r := range rows {
			if r.Name == key {
				found = true
				if r.DegradationPct <= 0 {
					t.Errorf("%s degradation = %.1f%%, want positive", key, r.DegradationPct)
				}
			}
		}
		if !found {
			t.Errorf("row %q missing", key)
		}
	}
	text := FormatAblations(rows)
	if !strings.Contains(text, "full UTIL-BP") || !strings.Contains(text, "A4") {
		t.Errorf("format: %q", text)
	}
}

func TestAblationsDeterministic(t *testing.T) {
	setup := quickSetup()
	a, err := Ablations(setup, scenario.PatternII, 400)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ablations(setup, scenario.PatternII, 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ablation run diverged: %+v vs %+v", a[i], b[i])
		}
	}
}
