package experiment

import (
	"bytes"
	"testing"

	"utilbp/internal/event"
	"utilbp/internal/network"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
)

// snapDrill runs the tentpole equivalence drill on a prepared engine:
// run to step k, snapshot, run to n, then restore the checkpoint and
// run to n again — the two step-n snapshots must be bit-for-bit equal
// (DESIGN.md §14).
func snapDrill(t *testing.T, spec Spec, k, n int) {
	t.Helper()
	engine, _, _, err := Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(k)
	snapK := engine.Snapshot()
	engine.Run(n - k)
	want := engine.Snapshot()
	if err := engine.Restore(snapK); err != nil {
		t.Fatalf("restore at step %d: %v", k, err)
	}
	engine.Run(n - k)
	if got := engine.Snapshot(); !bytes.Equal(want, got) {
		t.Fatalf("resumed run diverged from uninterrupted run at step %d", n)
	}
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRestoreWorkloads runs the snapshot/restore equivalence
// drill on every registered workload with its suggested controller —
// grids from the 1×5 corridor to the 16×16 city, all demand shapes, the
// connected-vehicle sensed workload and the disrupted city grid.
func TestSnapshotRestoreWorkloads(t *testing.T) {
	for _, w := range scenario.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			factory, err := w.Setup.Controller(w.Controller)
			if err != nil {
				t.Fatal(err)
			}
			snapDrill(t, Spec{
				Setup:       w.Setup,
				Pattern:     w.Pattern,
				Factory:     factory,
				DurationSec: 300,
			}, 60, 150)
		})
	}
}

// TestSnapshotRestoreControllerFamilies runs the drill for every
// controller family of the zoo on a sensed AND disrupted 3×3 grid —
// checkpointing at step 60, mid-incident, mid-outage and mid-dark, so
// every family's cross-step state (slot timers, gap-out clocks,
// turn-ratio estimators) and the sensor/outage state must survive the
// restore exactly.
func TestSnapshotRestoreControllerFamilies(t *testing.T) {
	setup := disruptedSensedSetup(t)
	for _, name := range scenario.ControllerSpecNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := scenario.ParseControllerSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			factory, err := setup.Controller(spec)
			if err != nil {
				t.Fatal(err)
			}
			snapDrill(t, Spec{
				Setup:       setup,
				Pattern:     scenario.PatternII,
				Factory:     factory,
				DurationSec: 300,
			}, 60, 150)
		})
	}
}

// TestSnapshotRestorePerJunctionDispatch repeats the drill under forced
// per-junction dispatch, covering the non-batched controller sections
// of the snapshot (one bounded section per junction controller).
func TestSnapshotRestorePerJunctionDispatch(t *testing.T) {
	setup := disruptedSensedSetup(t)
	setup.Control = signal.ControlPerJunction
	factory, err := setup.Controller(scenario.ControllerSpec{Kind: scenario.ControllerBPEst})
	if err != nil {
		t.Fatal(err)
	}
	snapDrill(t, Spec{
		Setup:       setup,
		Pattern:     scenario.PatternII,
		Factory:     factory,
		DurationSec: 300,
	}, 60, 150)
}

// disruptedSensedSetup returns the 3×3 grid observed through 50%
// connected-vehicle penetration with a capacity incident, a dark
// junction, a sensor outage and a demand surge all active around the
// step-60 checkpoint.
func disruptedSensedSetup(t *testing.T) scenario.Setup {
	t.Helper()
	setup, err := scenario.Default().WithCentralIncident(30, 50, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	setup.Sensor = sensing.CV(0.5)
	g, err := network.Grid(setup.Grid)
	if err != nil {
		t.Fatal(err)
	}
	west := g.Junction(scenario.TopRight(g)).In[network.West]
	outaged := g.Road(west).Name
	setup.Events = append(setup.Events,
		event.Dark("J00", 80, 40),
		event.Surge(20, 100, 1.3),
		event.Outage(outaged, 40, 60, sensing.OutageFreeze),
	)
	return setup
}
