package experiment

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"utilbp/internal/event"
	"utilbp/internal/network"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
)

// snapDrill runs the tentpole equivalence drill on a prepared engine:
// run to step k, snapshot, run to n, then restore the checkpoint and
// run to n again — the two step-n snapshots must be bit-for-bit equal
// (DESIGN.md §14).
func snapDrill(t *testing.T, spec Spec, k, n int) {
	t.Helper()
	engine, _, _, err := Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(k)
	snapK := engine.Snapshot()
	engine.Run(n - k)
	want := engine.Snapshot()
	if err := engine.Restore(snapK); err != nil {
		t.Fatalf("restore at step %d: %v", k, err)
	}
	engine.Run(n - k)
	if got := engine.Snapshot(); !bytes.Equal(want, got) {
		t.Fatalf("resumed run diverged from uninterrupted run at step %d", n)
	}
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRestoreWorkloads runs the snapshot/restore equivalence
// drill on every registered workload with its suggested controller —
// grids from the 1×5 corridor to the 16×16 city, all demand shapes, the
// connected-vehicle sensed workload and the disrupted city grid.
func TestSnapshotRestoreWorkloads(t *testing.T) {
	for _, w := range scenario.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			factory, err := w.Setup.Controller(w.Controller)
			if err != nil {
				t.Fatal(err)
			}
			snapDrill(t, Spec{
				Setup:       w.Setup,
				Pattern:     w.Pattern,
				Factory:     factory,
				DurationSec: 300,
			}, 60, 150)
		})
	}
}

// TestSnapshotRestoreControllerFamilies runs the drill for every
// controller family of the zoo on a sensed AND disrupted 3×3 grid —
// checkpointing at step 60, mid-incident, mid-outage and mid-dark, so
// every family's cross-step state (slot timers, gap-out clocks,
// turn-ratio estimators) and the sensor/outage state must survive the
// restore exactly.
func TestSnapshotRestoreControllerFamilies(t *testing.T) {
	setup := disruptedSensedSetup(t)
	for _, name := range scenario.ControllerSpecNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := scenario.ParseControllerSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			factory, err := setup.Controller(spec)
			if err != nil {
				t.Fatal(err)
			}
			snapDrill(t, Spec{
				Setup:       setup,
				Pattern:     scenario.PatternII,
				Factory:     factory,
				DurationSec: 300,
			}, 60, 150)
		})
	}
}

// TestSnapshotRestorePerJunctionDispatch repeats the drill under forced
// per-junction dispatch, covering the non-batched controller sections
// of the snapshot (one bounded section per junction controller).
func TestSnapshotRestorePerJunctionDispatch(t *testing.T) {
	setup := disruptedSensedSetup(t)
	setup.Control = signal.ControlPerJunction
	factory, err := setup.Controller(scenario.ControllerSpec{Kind: scenario.ControllerBPEst})
	if err != nil {
		t.Fatal(err)
	}
	snapDrill(t, Spec{
		Setup:       setup,
		Pattern:     scenario.PatternII,
		Factory:     factory,
		DurationSec: 300,
	}, 60, 150)
}

// disruptedSensedSetup returns the 3×3 grid observed through 50%
// connected-vehicle penetration with a capacity incident, a dark
// junction, a sensor outage and a demand surge all active around the
// step-60 checkpoint.
func disruptedSensedSetup(t *testing.T) scenario.Setup {
	t.Helper()
	setup, err := scenario.Default().WithCentralIncident(30, 50, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	setup.Sensor = sensing.CV(0.5)
	g, err := network.Grid(setup.Grid)
	if err != nil {
		t.Fatal(err)
	}
	west := g.Junction(scenario.TopRight(g)).In[network.West]
	outaged := g.Road(west).Name
	setup.Events = append(setup.Events,
		event.Dark("J00", 80, 40),
		event.Surge(20, 100, 1.3),
		event.Outage(outaged, 40, 60, sensing.OutageFreeze),
	)
	return setup
}

// TestSnapshotRejectsV1Stream pins the version-gate contract after the
// v2 (column-major arena) layout change: a v1 stream must be rejected
// up front with a clear structural error naming both versions — never
// handed to the section decoders, where the old row-major vehicle
// records would misparse or panic. There is no cross-version migration;
// snapshots are checkpoints of a running experiment, not archives.
func TestSnapshotRejectsV1Stream(t *testing.T) {
	factory, err := scenario.Default().Controller(scenario.ControllerSpec{Kind: scenario.ControllerUtil})
	if err != nil {
		t.Fatal(err)
	}
	engine, _, _, err := Prepare(Spec{
		Setup:       scenario.Default(),
		Pattern:     scenario.PatternII,
		Factory:     factory,
		DurationSec: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(40)
	good := engine.Snapshot()

	// Bytes [8:16) hold the little-endian format version (after the
	// 8-byte magic); rewrite them to claim version 1.
	v1 := bytes.Clone(good)
	binary.LittleEndian.PutUint64(v1[8:16], 1)
	err = engine.Restore(v1)
	if err == nil {
		t.Fatal("v1 stream accepted")
	}
	for _, want := range []string{"snapshot version 1", "supports 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("v1 rejection error %q does not mention %q", err, want)
		}
	}

	// A clobbered magic is a different failure class: not a snapshot at
	// all, reported as such rather than as a version skew.
	junk := bytes.Clone(good)
	binary.LittleEndian.PutUint64(junk[0:8], 0xBAD0BEEF)
	if err := engine.Restore(junk); err == nil || !strings.Contains(err.Error(), "not an engine snapshot") {
		t.Fatalf("bad-magic error = %v", err)
	}

	// The untouched stream still restores and resumes cleanly — the
	// rejections above fired before any state was consumed.
	if err := engine.Restore(good); err != nil {
		t.Fatal(err)
	}
	engine.Run(10)
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
