package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"utilbp/internal/analysis"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
)

// SensingStats aggregates the UTIL-BP runs of one sensor spec across
// the sweep's seeds: how much control performance degrades when the
// controller sees estimated queues instead of exact ones (the paper's
// CPS fidelity axis; cf. arXiv:2006.15549).
type SensingStats struct {
	// Spec is the sensor configuration of this row.
	Spec sensing.Spec
	// MeanWaits are the per-seed network-mean queuing times, in the
	// sweep's seed order.
	MeanWaits []float64
	// Mean and Std summarize MeanWaits.
	Mean, Std float64
	// DegradationPct is the mean per-seed wait increase relative to the
	// sweep's perfect-sensor reference, in percent; zero when the sweep
	// carries no perfect spec.
	DegradationPct float64
}

// sensingPlan enumerates the independent cells of a sensor sweep: one
// UTIL-BP run per (sensor spec × seed), identified by a flat index so
// pooled workers write into pre-sized slots and aggregation stays in
// plan order regardless of completion order — the same scheme as the
// Table III sweepPlan.
type sensingPlan struct {
	pattern scenario.Pattern
	specs   []sensing.Spec
	seeds   []uint64
}

func (p *sensingPlan) cells() int { return len(p.specs) * len(p.seeds) }

func (p *sensingPlan) cell(idx int) (si, ki int) {
	return idx / len(p.seeds), idx % len(p.seeds)
}

// runCell executes one (spec, seed) cell and returns its network-mean
// queuing time. With a cache the cell runs on a reused engine through
// EngineCache.RunSensor; with cache == nil it builds a fresh scenario
// (Setup.Sensor carries the spec) and engine per cell — the serial
// reference path the pooled scheduler is pinned against.
func (p *sensingPlan) runCell(cache *EngineCache, base scenario.Setup, idx int, durationSec float64) (float64, error) {
	si, ki := p.cell(idx)
	spec, seed := p.specs[si], p.seeds[ki]
	setup := base
	setup.Seed = seed
	setup.Sensor = spec
	factory := setup.UtilBP()
	var (
		res Result
		err error
	)
	if cache != nil {
		var sensor sensing.Sensor
		if !spec.Perfect() {
			sensor, err = spec.New()
			if err == nil {
				sensor.Reseed(seed)
			}
		}
		if err == nil {
			res, err = cache.RunSensor(p.pattern, FamilyUtilBP, factory, sensor, seed, durationSec)
		}
	} else {
		res, err = Run(Spec{Setup: setup, Pattern: p.pattern, Factory: factory, DurationSec: durationSec})
	}
	if err != nil {
		return 0, fmt.Errorf("experiment: pattern %v sensor %v seed %d: %w", p.pattern, spec, seed, err)
	}
	return res.Summary.MeanWait, nil
}

// aggregate folds the per-cell mean waits into SensingStats rows in
// spec order, with degradations computed per seed against the first
// perfect spec of the sweep.
func (p *sensingPlan) aggregate(waits []float64) []SensingStats {
	perfect := -1
	for si, spec := range p.specs {
		if spec.Perfect() {
			perfect = si
			break
		}
	}
	out := make([]SensingStats, 0, len(p.specs))
	for si, spec := range p.specs {
		row := SensingStats{Spec: spec, MeanWaits: make([]float64, len(p.seeds))}
		deg := 0.0
		for ki := range p.seeds {
			w := waits[si*len(p.seeds)+ki]
			row.MeanWaits[ki] = w
			if perfect >= 0 {
				if ref := waits[perfect*len(p.seeds)+ki]; ref > 0 {
					deg += 100 * (w - ref) / ref
				}
			}
		}
		row.Mean = analysis.Mean(row.MeanWaits)
		row.Std = analysis.Std(row.MeanWaits)
		if perfect >= 0 {
			row.DegradationPct = deg / float64(len(p.seeds))
		}
		out = append(out, row)
	}
	return out
}

func newSensingPlan(pattern scenario.Pattern, specs []sensing.Spec, seeds []uint64) (*sensingPlan, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("experiment: at least one sensor spec required")
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: at least one seed required")
	}
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
	}
	return &sensingPlan{pattern: pattern, specs: specs, seeds: seeds}, nil
}

// SensingSweep runs UTIL-BP under every sensor spec across the seeds —
// the Table-III-style sweep along the observation axis. Cells are
// scheduled onto a GOMAXPROCS worker pool; all workers share one
// concurrency-safe scenario.ArtifactCache and each owns an EngineCache,
// so one engine per worker serves every (sensor × seed) cell via
// ResetWith sensor swaps. Results are bit-for-bit identical to
// SensingSweepSerial for the same inputs
// (TestSensingSweepPooledMatchesSerial).
func SensingSweep(base scenario.Setup, pattern scenario.Pattern, specs []sensing.Spec, seeds []uint64, durationSec float64) ([]SensingStats, error) {
	plan, err := newSensingPlan(pattern, specs, seeds)
	if err != nil {
		return nil, err
	}
	n := plan.cells()
	waits := make([]float64, n)
	errs := make([]error, n)
	jobs := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	artifacts := scenario.NewArtifactCache(base)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cache := NewSharedEngineCache(artifacts)
			for idx := range jobs {
				si, _ := plan.cell(idx)
				withCellLabels(w, plan.pattern.String(), string(FamilyUtilBP), plan.specs[si].String(), func() {
					waits[idx], errs[idx] = plan.runCell(cache, base, idx, durationSec)
				})
				if errs[idx] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for idx := 0; idx < n && !failed.Load(); idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return plan.aggregate(waits), nil
}

// SensingSweepSerial is the strictly sequential fresh-engine reference
// implementation of SensingSweep: cells in plan order, a new scenario
// and engine per cell, no reuse anywhere. The pooled scheduler is
// pinned bit-for-bit against it; keep the two in lockstep when changing
// either.
func SensingSweepSerial(base scenario.Setup, pattern scenario.Pattern, specs []sensing.Spec, seeds []uint64, durationSec float64) ([]SensingStats, error) {
	plan, err := newSensingPlan(pattern, specs, seeds)
	if err != nil {
		return nil, err
	}
	waits := make([]float64, plan.cells())
	for idx := range waits {
		w, err := plan.runCell(nil, base, idx, durationSec)
		if err != nil {
			return nil, err
		}
		waits[idx] = w
	}
	return plan.aggregate(waits), nil
}

// PenetrationSpecs returns the canonical penetration-rate axis: the
// perfect reference followed by ConnectedVehicle specs at the given
// rates.
func PenetrationSpecs(rates []float64) []sensing.Spec {
	specs := make([]sensing.Spec, 0, len(rates)+1)
	specs = append(specs, sensing.Spec{})
	for _, r := range rates {
		specs = append(specs, sensing.CV(r))
	}
	return specs
}

// DefaultPenetrationRates returns the 0.1..1.0 connected-vehicle
// penetration axis of the sensing experiment.
func DefaultPenetrationRates() []float64 {
	var out []float64
	for r := 1; r <= 10; r++ {
		out = append(out, float64(r)/10)
	}
	return out
}

// PenetrationSweep runs the connected-vehicle penetration-rate sweep
// (perfect reference plus cv:<rate> for each rate) on the given
// pattern through the pooled scheduler.
func PenetrationSweep(base scenario.Setup, pattern scenario.Pattern, rates []float64, seeds []uint64, durationSec float64) ([]SensingStats, error) {
	if len(rates) == 0 {
		rates = DefaultPenetrationRates()
	}
	return SensingSweep(base, pattern, PenetrationSpecs(rates), seeds, durationSec)
}

// FormatSensingStats renders the sensing sweep table.
func FormatSensingStats(rows []SensingStats, seeds []uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "UTIL-BP mean queuing time by observation sensor, %d seeds\n", len(seeds))
	fmt.Fprintf(&b, "%-24s %-20s %s\n", "Sensor", "wait mean ± std (s)", "vs perfect")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-20s %+.1f%%\n",
			r.Spec.String(),
			fmt.Sprintf("%.1f ± %.1f", r.Mean, r.Std),
			r.DegradationPct)
	}
	return b.String()
}
