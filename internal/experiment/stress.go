package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"utilbp/internal/analysis"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
)

// DefaultStressAreas returns the canonical area-incident severity axis
// in junction-neighborhood sizes k (a k×k block of junctions loses
// every approach): 0 is the undisrupted reference, 1 a single starved
// junction, 3 a whole district. On the paper's 3×3 grid k = 3 closes
// the entire network mid-run — the graceful-degradation endpoint.
func DefaultStressAreas() []int { return []int{0, 1, 3} }

// DefaultStressDemandScales returns the demand axis of the stress
// study: the paper's operating point and a 1.3× overload, so each
// degradation curve is read both below and above saturation.
func DefaultStressDemandScales() []float64 { return []float64{1, 1.3} }

// DefaultStressCapFrac is the residual capacity of every road inside a
// stressed area — near-closure, because the paper's W = 120 storage
// bound leaves so much headroom that milder clamps never bind (see
// DefaultCapFracs); the area size k stays the severity axis.
const DefaultStressCapFrac = 0.05

// StressStats aggregates one (controller family × area size × demand
// scale) row of the stress study across seeds: how throughput and
// queuing degrade as an area incident grows and demand climbs past the
// operating point.
type StressStats struct {
	// Family is the controller family of this row.
	Family ControllerFamily
	// AreaK is the incident severity: the k of the k×k junction
	// neighborhood whose approaches are clamped (0 = undisrupted
	// reference).
	AreaK int
	// DemandScale is the arrival-rate multiplier of this row.
	DemandScale float64
	// MeanWaits and Throughputs are the per-seed network-mean queuing
	// times and exited-vehicle counts, in the sweep's seed order.
	MeanWaits   []float64
	Throughputs []float64
	// Mean and Std summarize MeanWaits; MeanThroughput summarizes
	// Throughputs.
	Mean, Std      float64
	MeanThroughput float64
	// DegradationPct is the mean per-seed wait increase relative to the
	// same family's AreaK = 0 row at the same demand scale, in percent;
	// zero when the area axis carries no undisrupted reference.
	DegradationPct float64
}

// stressPlan enumerates the independent cells of a stress sweep: one
// run per (family × area × demand scale × seed), identified by a flat
// index so pooled workers write into pre-sized slots and aggregation
// stays in plan order — the scheme of robustnessPlan. Each
// (area, scale) pair is a derived Setup carrying the area incident and
// the scaled demand, so each has its own immutable artifact.
type stressPlan struct {
	pattern   scenario.Pattern
	families  []ControllerFamily
	areas     []int
	scales    []float64
	setups    []scenario.Setup // per (area, scale), area incident armed
	seeds     []uint64
	periodSec int
}

func (p *stressPlan) cells() int {
	return len(p.families) * len(p.areas) * len(p.scales) * len(p.seeds)
}

func (p *stressPlan) cell(idx int) (fi, ai, si, ki int) {
	ki = idx % len(p.seeds)
	row := idx / len(p.seeds)
	si = row % len(p.scales)
	row /= len(p.scales)
	return row / len(p.areas), row % len(p.areas), si, ki
}

// setupAt returns the derived setup of an (area, scale) pair.
func (p *stressPlan) setupAt(ai, si int) scenario.Setup {
	return p.setups[ai*len(p.scales)+si]
}

// runCell executes one cell and returns its network-mean queuing time
// and throughput (exited vehicles). With caches the cell runs on the
// (area, scale) pair's reused engine; with caches == nil it builds a
// fresh scenario and engine per cell — the serial reference the pooled
// scheduler is pinned against.
func (p *stressPlan) runCell(caches []*EngineCache, idx int, durationSec float64) (wait, throughput float64, err error) {
	fi, ai, si, ki := p.cell(idx)
	family, seed := p.families[fi], p.seeds[ki]
	setup := p.setupAt(ai, si)
	setup.Seed = seed
	var factory signal.Factory
	switch family {
	case FamilyCapBP:
		factory = setup.CapBP(p.periodSec)
	default:
		factory = setup.UtilBP()
	}
	var res Result
	if caches != nil {
		res, err = caches[ai*len(p.scales)+si].Run(p.pattern, family, factory, seed, durationSec)
	} else {
		res, err = Run(Spec{Setup: setup, Pattern: p.pattern, Factory: factory, DurationSec: durationSec})
	}
	if err != nil {
		return 0, 0, fmt.Errorf("experiment: %s area %d scale %.2f seed %d: %w",
			family, p.areas[ai], p.scales[si], seed, err)
	}
	return res.Summary.MeanWait, float64(res.Totals.Exited), nil
}

// aggregate folds the per-cell results into StressStats rows in
// (family, area, scale) order, with degradations computed per seed
// against the family's AreaK = 0 row at the same demand scale.
func (p *stressPlan) aggregate(waits, thrs []float64) []StressStats {
	baseline := -1
	for ai, k := range p.areas {
		if k == 0 {
			baseline = ai
			break
		}
	}
	out := make([]StressStats, 0, len(p.families)*len(p.areas)*len(p.scales))
	for fi, family := range p.families {
		for ai, k := range p.areas {
			for si, scale := range p.scales {
				row := StressStats{
					Family:      family,
					AreaK:       k,
					DemandScale: scale,
					MeanWaits:   make([]float64, len(p.seeds)),
					Throughputs: make([]float64, len(p.seeds)),
				}
				deg := 0.0
				for ki := range p.seeds {
					at := func(a int) int {
						return ((fi*len(p.areas)+a)*len(p.scales)+si)*len(p.seeds) + ki
					}
					row.MeanWaits[ki] = waits[at(ai)]
					row.Throughputs[ki] = thrs[at(ai)]
					if baseline >= 0 {
						if ref := waits[at(baseline)]; ref > 0 {
							deg += 100 * (row.MeanWaits[ki] - ref) / ref
						}
					}
				}
				row.Mean = analysis.Mean(row.MeanWaits)
				row.Std = analysis.Std(row.MeanWaits)
				row.MeanThroughput = analysis.Mean(row.Throughputs)
				if baseline >= 0 {
					row.DegradationPct = deg / float64(len(p.seeds))
				}
				out = append(out, row)
			}
		}
	}
	return out
}

// newStressPlan derives the per-(area, scale) setups: each area size is
// the base setup plus a k×k area incident anchored at the loaded
// top-right corner (scenario.WithCornerAreaIncident) spanning the
// middle half of the sweep horizon at DefaultStressCapFrac residual
// capacity, crossed with the demand scales; area 0 keeps the base
// events untouched so the degradation baseline is the undisrupted run
// at the same demand.
func newStressPlan(base scenario.Setup, pattern scenario.Pattern, areas []int, scales []float64, seeds []uint64, durationSec float64) (*stressPlan, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: at least one seed required")
	}
	if len(areas) == 0 {
		areas = DefaultStressAreas()
	}
	if len(scales) == 0 {
		scales = DefaultStressDemandScales()
	}
	if durationSec <= 0 {
		durationSec = pattern.Duration()
	}
	p := &stressPlan{
		pattern:   pattern,
		families:  RobustnessFamilies(),
		areas:     areas,
		scales:    scales,
		seeds:     seeds,
		periodSec: DefaultRobustnessPeriodSec,
	}
	t0, dur := durationSec/4, durationSec/2
	for _, k := range areas {
		for _, scale := range scales {
			setup := base
			if k > 0 {
				var err error
				setup, err = base.WithCornerAreaIncident(k, t0, dur, DefaultStressCapFrac)
				if err != nil {
					return nil, err
				}
			}
			setup.DemandScale = scale
			p.setups = append(p.setups, setup)
		}
	}
	return p, nil
}

// StressSweep runs the area-incident stress study: every controller
// family of RobustnessFamilies across the area-size axis (k×k junction
// neighborhoods losing their approaches mid-run) crossed with the
// demand-scale axis and the seeds — the graceful-degradation surface
// of DESIGN.md §14. Cells are scheduled onto a GOMAXPROCS worker pool;
// (area, scale) pairs have distinct artifacts, so the workers share one
// concurrency-safe ArtifactCache per pair and each worker keeps one
// EngineCache per pair on top. Results are bit-for-bit identical to
// StressSweepSerial for the same inputs
// (TestStressSweepPooledMatchesSerial).
func StressSweep(base scenario.Setup, pattern scenario.Pattern, areas []int, scales []float64, seeds []uint64, durationSec float64) ([]StressStats, error) {
	plan, err := newStressPlan(base, pattern, areas, scales, seeds, durationSec)
	if err != nil {
		return nil, err
	}
	n := plan.cells()
	waits := make([]float64, n)
	thrs := make([]float64, n)
	errs := make([]error, n)
	jobs := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	shared := make([]*scenario.ArtifactCache, len(plan.setups))
	for ci, setup := range plan.setups {
		shared[ci] = scenario.NewArtifactCache(setup)
	}
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			caches := make([]*EngineCache, len(shared))
			for ci := range shared {
				caches[ci] = NewSharedEngineCache(shared[ci])
			}
			for idx := range jobs {
				fi, ai, si, _ := plan.cell(idx)
				withCellLabels(w, plan.pattern.String(), string(plan.families[fi]), plan.setupAt(ai, si).Sensor.String(), func() {
					waits[idx], thrs[idx], errs[idx] = plan.runCell(caches, idx, durationSec)
				})
				if errs[idx] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for idx := 0; idx < n && !failed.Load(); idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return plan.aggregate(waits, thrs), nil
}

// StressSweepSerial is the strictly sequential fresh-engine reference
// implementation of StressSweep: cells in plan order, a new scenario
// and engine per cell, no reuse anywhere. The pooled scheduler is
// pinned bit-for-bit against it; keep the two in lockstep when
// changing either.
func StressSweepSerial(base scenario.Setup, pattern scenario.Pattern, areas []int, scales []float64, seeds []uint64, durationSec float64) ([]StressStats, error) {
	plan, err := newStressPlan(base, pattern, areas, scales, seeds, durationSec)
	if err != nil {
		return nil, err
	}
	n := plan.cells()
	waits := make([]float64, n)
	thrs := make([]float64, n)
	for idx := 0; idx < n; idx++ {
		w, t, err := plan.runCell(nil, idx, durationSec)
		if err != nil {
			return nil, err
		}
		waits[idx], thrs[idx] = w, t
	}
	return plan.aggregate(waits, thrs), nil
}

// FormatStressStats renders the stress-study table.
func FormatStressStats(rows []StressStats, seeds []uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Throughput and queuing under area incidents, %d seeds\n", len(seeds))
	fmt.Fprintf(&b, "%-10s %-8s %-8s %-20s %-12s %s\n", "Family", "area", "demand", "wait mean ± std (s)", "throughput", "vs intact")
	for _, r := range rows {
		area := "none"
		if r.AreaK > 0 {
			area = fmt.Sprintf("%dx%d", r.AreaK, r.AreaK)
		}
		fmt.Fprintf(&b, "%-10s %-8s %-8s %-20s %-12.0f %+.1f%%\n",
			r.Family,
			area,
			fmt.Sprintf("%.2fx", r.DemandScale),
			fmt.Sprintf("%.1f ± %.1f", r.Mean, r.Std),
			r.MeanThroughput,
			r.DegradationPct)
	}
	return b.String()
}
