package experiment

import (
	"reflect"
	"testing"

	"utilbp/internal/scenario"
)

// Short horizons keep the stress tests seconds-scale; each area
// incident spans the middle half of the horizon either way.
const stressTestHorizon = 400

// TestStressSweepPooledMatchesSerial pins the stress-study determinism
// contract end to end: the pooled scheduler — one artifact cache per
// (area, demand-scale) pair (each artifact carries its own compiled
// area-incident schedule and scaled demand), per-worker engine caches
// swapping them through ResetWith — must reproduce the serial
// fresh-engine reference bit-for-bit across every
// (family × area × scale × seed) cell.
func TestStressSweepPooledMatchesSerial(t *testing.T) {
	base := scenario.Default()
	areas := []int{0, 2}
	scales := []float64{1, 1.3}
	seeds := []uint64{1, 2}
	pooled, err := StressSweep(base, scenario.PatternII, areas, scales, seeds, stressTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := StressSweepSerial(base, scenario.PatternII, areas, scales, seeds, stressTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pooled, serial) {
		t.Fatalf("pooled stress sweep diverges from serial reference:\npooled: %+v\nserial: %+v", pooled, serial)
	}
}

// TestStressSweepShape checks the sweep's structure: rows in
// (family, area, scale) order, per-seed slices sized to the seed axis,
// a zero degradation on the undisrupted reference, and an area axis
// that actually bites — closing the whole 3×3 grid must raise the mean
// wait over the intact run at the same demand.
func TestStressSweepShape(t *testing.T) {
	base := scenario.Default()
	areas := []int{0, 3}
	// An overloaded network: the W/4 clamp only binds once queues climb
	// toward it, which Table II demand never does on a short horizon.
	scales := []float64{1.8}
	seeds := []uint64{5, 6}
	rows, err := StressSweep(base, scenario.PatternII, areas, scales, seeds, 900)
	if err != nil {
		t.Fatal(err)
	}
	families := RobustnessFamilies()
	if len(rows) != len(families)*len(areas)*len(scales) {
		t.Fatalf("%d rows, want %d", len(rows), len(families)*len(areas)*len(scales))
	}
	perFamily := len(areas) * len(scales)
	for i, r := range rows {
		if want := families[i/perFamily]; r.Family != want {
			t.Fatalf("row %d: family %s, want %s", i, r.Family, want)
		}
		if want := areas[(i/len(scales))%len(areas)]; r.AreaK != want {
			t.Fatalf("row %d: area %d, want %d", i, r.AreaK, want)
		}
		if want := scales[i%len(scales)]; r.DemandScale != want {
			t.Fatalf("row %d: scale %v, want %v", i, r.DemandScale, want)
		}
		if len(r.MeanWaits) != len(seeds) || len(r.Throughputs) != len(seeds) {
			t.Fatalf("row %d: per-seed slices sized %d/%d, want %d", i, len(r.MeanWaits), len(r.Throughputs), len(seeds))
		}
		if r.AreaK == 0 && r.DegradationPct != 0 {
			t.Fatalf("row %d: undisrupted reference degraded by %v%% against itself", i, r.DegradationPct)
		}
	}
	for fi := range families {
		intact := rows[fi*perFamily]
		worst := rows[fi*perFamily+perFamily-1]
		if worst.Mean <= intact.Mean {
			t.Fatalf("%s: %dx%d area incident did not raise the mean wait (%.2f intact vs %.2f)",
				intact.Family, worst.AreaK, worst.AreaK, intact.Mean, worst.Mean)
		}
	}
}

// TestStressDemandAxisBites pins that the demand-scale axis reaches the
// engine: at the same area size, scaling arrivals 2x past the operating
// point must push more vehicles into the network than the baseline.
func TestStressDemandAxisBites(t *testing.T) {
	base := scenario.Default()
	rows, err := StressSweepSerial(base, scenario.PatternII, []int{0}, []float64{1, 2}, []uint64{3}, stressTestHorizon)
	if err != nil {
		t.Fatal(err)
	}
	var baseTh, scaledTh float64
	for _, r := range rows {
		if r.Family != FamilyUtilBP {
			continue
		}
		if r.DemandScale == 1 {
			baseTh = r.MeanThroughput
		} else {
			scaledTh = r.MeanThroughput
		}
	}
	if scaledTh <= baseTh {
		t.Fatalf("2x demand did not raise throughput: %.0f vs %.0f exited", scaledTh, baseTh)
	}
}
