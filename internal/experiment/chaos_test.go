package experiment

import "testing"

// TestChaosSweep smokes the soak entrypoint: a handful of consecutive
// chaos seeds must drill clean and report one description per seed, in
// seed order.
func TestChaosSweep(t *testing.T) {
	descs, err := ChaosSweep(100, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 6 {
		t.Fatalf("%d descriptions, want 6", len(descs))
	}
	for i, d := range descs {
		if d == "" {
			t.Fatalf("description %d empty", i)
		}
	}
}

// TestChaosSweepRejectsEmpty pins the error path for a zero-scenario
// soak.
func TestChaosSweepRejectsEmpty(t *testing.T) {
	if _, err := ChaosSweep(1, 0); err == nil {
		t.Fatal("ChaosSweep accepted n=0")
	}
}
