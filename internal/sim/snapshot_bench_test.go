// Snapshot/restore cost on the paper-scale engine (PERF.md PR 8):
// checkpointing is off the hot path by design — these benchmarks record
// its price so the trajectory notices if the format ever gets
// expensive enough to matter for checkpoint-heavy sweeps.
package sim_test

import (
	"testing"

	"utilbp/internal/scenario"
	"utilbp/internal/sim"
)

// loadedSnapshotEngine builds the paper's 3×3 UTIL-BP engine under
// Pattern II demand and runs it into a loaded mid-run state, the
// representative checkpoint subject.
func loadedSnapshotEngine(b *testing.B) *sim.Engine {
	b.Helper()
	setup := scenario.Default()
	setup.Seed = 7
	built, err := setup.Build(scenario.PatternII)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      built.Demand,
		Router:      built.Router,
		Routes:      built.Routes,
	})
	if err != nil {
		b.Fatal(err)
	}
	engine.Run(900)
	return engine
}

// BenchmarkSnapshot measures the cost of capturing a loaded paper-grid
// engine; SetBytes reports the stream size as throughput.
func BenchmarkSnapshot(b *testing.B) {
	engine := loadedSnapshotEngine(b)
	b.SetBytes(int64(len(engine.Snapshot())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = engine.Snapshot()
	}
}

// BenchmarkRestore measures the rewind latency of restoring that same
// snapshot into the engine it came from (the pooled-engine case: arena
// capacity is reused, so steady-state restores settle to zero growth).
func BenchmarkRestore(b *testing.B) {
	engine := loadedSnapshotEngine(b)
	data := engine.Snapshot()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := engine.Restore(data); err != nil {
			b.Fatal(err)
		}
	}
}
