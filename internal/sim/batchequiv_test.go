// Batched-vs-per-junction control plane equivalence: the batched
// dispatch path (signal.BatchController over the dense observation
// slab, DESIGN.md §11) must be bit-for-bit indistinguishable from the
// per-junction Decide loop — same phase traces, same vehicle arenas,
// same totals — on every registered workload, across controller
// families, and across Reset/ResetWith controller-mode switches.
package sim_test

import (
	"reflect"
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
)

// phaseEvent is one Phase-hook firing, the unit of the phase trace.
type phaseEvent struct {
	node  network.NodeID
	step  int
	phase signal.Phase
}

// runTraced builds an engine for the setup/pattern/factory under the
// given dispatch mode, runs it for steps mini-slots recording the full
// phase trace, and returns the trace and the engine.
func runTraced(t *testing.T, setup scenario.Setup, pattern scenario.Pattern, factory signal.Factory, mode signal.ControlMode, steps int) ([]phaseEvent, *sim.Engine) {
	t.Helper()
	setup.Control = mode
	built, err := setup.Build(pattern)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: factory,
		Demand:      built.Demand,
		Router:      built.Router,
		Routes:      built.Routes,
		Sensor:      built.Sensor,
		Control:     setup.Control,
		Events:      built.Events,
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace []phaseEvent
	engine.AddHooks(sim.Hooks{Phase: func(node network.NodeID, step int, phase signal.Phase) {
		trace = append(trace, phaseEvent{node, step, phase})
	}})
	engine.Run(steps)
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return trace, engine
}

// compareTraces requires two phase traces to be identical, reporting
// the first divergence.
func compareTraces(t *testing.T, perJunction, batched []phaseEvent) {
	t.Helper()
	if len(perJunction) != len(batched) {
		t.Fatalf("phase trace lengths differ: per-junction %d, batched %d", len(perJunction), len(batched))
	}
	for i := range perJunction {
		if perJunction[i] != batched[i] {
			t.Fatalf("phase trace diverges at event %d: per-junction %+v, batched %+v",
				i, perJunction[i], batched[i])
		}
	}
}

// TestBatchedControlEquivalenceWorkloads pins the batched control plane
// to the per-junction reference on every registered workload — the
// paper grid, the sensed estimated-grid, the 16×16 city grid and the
// rest — across the batch-capable controller zoo: UTIL-BP, MaxPressure
// and BP-EST (dense slabs with change-set caching; BP-EST additionally
// carries per-link estimator state the caching must keep exact) plus
// the fixed-slot CAP-BP baseline (Batched adapter): identical phase
// traces, vehicle arenas and totals.
func TestBatchedControlEquivalenceWorkloads(t *testing.T) {
	for _, w := range scenario.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			setup := w.Setup
			setup.Seed = 11
			steps := int(w.SweepHorizon(300))
			if steps > 300 {
				steps = 300
			}
			factories := []struct {
				name string
				mk   func(scenario.Setup) signal.Factory
			}{
				{"UTIL-BP", func(s scenario.Setup) signal.Factory { return s.UtilBP() }},
				{"CAP-BP", func(s scenario.Setup) signal.Factory { return s.CapBP(20) }},
				{"MAXPRESSURE", func(s scenario.Setup) signal.Factory { return s.MaxPressure(0) }},
				{"BP-EST", func(s scenario.Setup) signal.Factory { return s.EstimatedBP(0) }},
			}
			for _, f := range factories {
				f := f
				t.Run(f.name, func(t *testing.T) {
					pjTrace, pjEngine := runTraced(t, setup, w.Pattern, f.mk(setup), signal.ControlPerJunction, steps)
					if pjEngine.Batched() {
						t.Fatal("per-junction engine reports batched dispatch")
					}
					bTrace, bEngine := runTraced(t, setup, w.Pattern, f.mk(setup), signal.ControlBatched, steps)
					if !bEngine.Batched() {
						t.Fatal("batched engine reports per-junction dispatch")
					}
					compareTraces(t, pjTrace, bTrace)
					if pjEngine.Totals() != bEngine.Totals() {
						t.Fatalf("totals diverge: per-junction %+v, batched %+v", pjEngine.Totals(), bEngine.Totals())
					}
					if !reflect.DeepEqual(pjEngine.Vehicles(), bEngine.Vehicles()) {
						t.Fatal("vehicle arenas diverge between dispatch modes")
					}
				})
			}
		})
	}
}

// TestControlModeResetWithSwitch checks the mid-sweep mode switch the
// engine cache relies on: one engine rewound through ResetWith with
// SetControl flipping per-junction → batched → per-junction must replay
// each leg bit-for-bit like a freshly built engine in that mode.
func TestControlModeResetWithSwitch(t *testing.T) {
	const steps = 600
	setup := scenario.Default()
	setup.Seed = 13
	built, err := setup.Build(scenario.PatternII)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      built.Demand,
		Router:      built.Router,
		Routes:      built.Routes,
		Control:     signal.ControlPerJunction,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(steps)

	legs := []struct {
		mode signal.ControlMode
		seed uint64
	}{
		{signal.ControlBatched, 13},
		{signal.ControlPerJunction, 14},
		{signal.ControlBatched, 14},
	}
	for _, leg := range legs {
		if err := engine.ResetWith(leg.seed, sim.ResetOptions{
			Control:    leg.mode,
			SetControl: true,
		}); err != nil {
			t.Fatal(err)
		}
		if got, want := engine.Batched(), leg.mode == signal.ControlBatched; got != want {
			t.Fatalf("mode %v: Batched() = %v, want %v", leg.mode, got, want)
		}
		engine.Run(steps)
		if err := engine.CheckInvariants(); err != nil {
			t.Fatalf("mode %v seed %d: %v", leg.mode, leg.seed, err)
		}
		refSetup := setup
		refSetup.Seed = leg.seed
		_, fresh := runTraced(t, refSetup, scenario.PatternII, refSetup.UtilBP(), leg.mode, steps)
		if engine.Totals() != fresh.Totals() {
			t.Fatalf("mode %v seed %d: switched totals %+v != fresh totals %+v",
				leg.mode, leg.seed, engine.Totals(), fresh.Totals())
		}
		if !reflect.DeepEqual(engine.Vehicles(), fresh.Vehicles()) {
			t.Fatalf("mode %v seed %d: switched vehicle arena diverges from fresh run", leg.mode, leg.seed)
		}
	}
}

// TestBatchedSteadyStateAllocs extends the zero-allocation steady-state
// contract to the batched control plane, for every batch-capable family
// in the zoo: with the dense slabs and change set pre-sized at
// construction (BP-EST's per-link estimators included), batched
// stepping must not touch the heap over the full drain window either.
func TestBatchedSteadyStateAllocs(t *testing.T) {
	const warmup = 600
	setup := scenario.Default()
	setup.Seed = 7
	setup.Control = signal.ControlBatched
	factories := []struct {
		name string
		mk   func() signal.Factory
	}{
		{"UTIL-BP", func() signal.Factory { return setup.UtilBP() }},
		{"MAXPRESSURE", func() signal.Factory { return setup.MaxPressure(0) }},
		{"BP-EST", func() signal.Factory { return setup.EstimatedBP(0) }},
	}
	for _, f := range factories {
		f := f
		t.Run(f.name, func(t *testing.T) {
			built, err := setup.Build(scenario.PatternI)
			if err != nil {
				t.Fatal(err)
			}
			engine, err := sim.New(sim.Config{
				Net:         built.Grid.Network,
				Controllers: f.mk(),
				Demand:      &sim.CutoffDemand{Inner: built.Demand, CutoffStep: warmup},
				Router:      built.Router,
				Routes:      built.Routes,
				Control:     setup.Control,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !engine.Batched() {
				t.Fatal("engine is not dispatching batched")
			}
			engine.Run(warmup + 20)
			if engine.Totals().Spawned == 0 {
				t.Fatal("warmup spawned no vehicles")
			}
			allocs := testing.AllocsPerRun(400, func() {
				engine.Run(20)
			})
			if allocs != 0 {
				t.Fatalf("batched stepOnce allocates: %v allocs per Run(20), want 0", allocs)
			}
			if err := engine.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestControlModeDispatchSelection pins the dispatch rule of
// DESIGN.md §11: auto mode engages the batched plane exactly when the
// factory implements signal.BatchFactory; per-junction mode never does;
// batched mode always does, adapter-wrapping factories without batch
// support.
func TestControlModeDispatchSelection(t *testing.T) {
	setup := scenario.Default()
	built, err := setup.Build(scenario.PatternI)
	if err != nil {
		t.Fatal(err)
	}
	// FactoryFunc implements no NewBatch, whatever it wraps.
	plain := signal.FactoryFunc{Label: "UTIL-BP", Build: func(info signal.JunctionInfo) (signal.Controller, error) {
		return setup.UtilBP().New(info)
	}}
	cases := []struct {
		name    string
		factory signal.Factory
		mode    signal.ControlMode
		batched bool
	}{
		{"auto+batch-capable", setup.UtilBP(), signal.ControlAuto, true},
		{"auto+plain", plain, signal.ControlAuto, false},
		{"per-junction+batch-capable", setup.UtilBP(), signal.ControlPerJunction, false},
		{"batched+batch-capable", setup.UtilBP(), signal.ControlBatched, true},
		{"batched+plain(adapter)", plain, signal.ControlBatched, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			engine, err := sim.New(sim.Config{
				Net:         built.Grid.Network,
				Controllers: c.factory,
				Demand:      built.Demand,
				Router:      built.Router,
				Routes:      built.Routes,
				Control:     c.mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			if engine.Batched() != c.batched {
				t.Fatalf("Batched() = %v, want %v", engine.Batched(), c.batched)
			}
			engine.Run(50)
			if err := engine.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
