package sim

import "time"

// NumSubsteps is the number of mini-slot substeps a step decomposes
// into: events, sense, control, serve, travel, arrivals.
const NumSubsteps = 6

// SubstepNames labels the mini-slot substeps in execution order — the
// span names of the exported timeline (trace.WriteTraceEvents).
var SubstepNames = [NumSubsteps]string{"events", "sense", "control", "serve", "travel", "arrivals"}

// TraceLog captures a per-step substep timeline: RunTraced appends, for
// every executed step, the wall-clock duration of each substep. It
// generalizes PhaseTimings (which folds the same clock reads into six
// totals) into an exportable timeline — write it out as Chrome
// trace-event JSON via trace.WriteTraceEvents and load it in
// chrome://tracing or Perfetto. Construct with NewTraceLog so the span
// storage is pre-sized; like PhaseTimings, the clock reads add
// overhead, so the timeline is for attribution, not absolute
// comparison.
type TraceLog struct {
	// StartStep is the engine step of the first recorded entry (set on
	// the first RunTraced append after construction or Reset).
	StartStep int
	// Spans[s][i] is the duration of substep s (SubstepNames order) at
	// step StartStep+i. All six slices stay the same length.
	Spans [NumSubsteps][]time.Duration
}

// NewTraceLog returns a trace log with capacity pre-sized for the
// given number of steps.
func NewTraceLog(steps int) *TraceLog {
	tl := &TraceLog{StartStep: -1}
	for s := range tl.Spans {
		tl.Spans[s] = make([]time.Duration, 0, steps)
	}
	return tl
}

// Steps returns the number of recorded steps.
func (tl *TraceLog) Steps() int { return len(tl.Spans[0]) }

// Reset discards the recorded timeline, keeping the capacity.
func (tl *TraceLog) Reset() {
	tl.StartStep = -1
	for s := range tl.Spans {
		tl.Spans[s] = tl.Spans[s][:0]
	}
}

// append records one step's six substep durations. The first append
// into an empty log binds StartStep, so the zero value works as well as
// a NewTraceLog log (it just starts without pre-sized capacity).
func (tl *TraceLog) append(step int, d [NumSubsteps]time.Duration) {
	if tl.Steps() == 0 {
		tl.StartStep = step
	}
	for s := range tl.Spans {
		tl.Spans[s] = append(tl.Spans[s], d[s])
	}
}

// RunTraced advances the simulation like Run while recording every
// step's substep durations into tl. It is behaviorally identical to
// Run (same state evolution, same telemetry flush, same hooks); only
// the timing instrumentation differs — the timeline counterpart of
// RunTimed's aggregate split.
func (e *Engine) RunTraced(steps int, tl *TraceLog) {
	for i := 0; i < steps; i++ {
		t := e.Time()
		var d [NumSubsteps]time.Duration
		start := time.Now()
		e.applyEvents()
		mark := time.Now()
		d[0] = mark.Sub(start)
		e.sense()
		start = mark
		mark = time.Now()
		d[1] = mark.Sub(start)
		e.control(t)
		start = mark
		mark = time.Now()
		d[2] = mark.Sub(start)
		e.serve(t)
		start = mark
		mark = time.Now()
		d[3] = mark.Sub(start)
		e.completeTravel(t)
		start = mark
		mark = time.Now()
		d[4] = mark.Sub(start)
		e.arrivals(t)
		d[5] = time.Since(mark)
		e.step++
		tl.append(e.step-1, d)
		if e.telem != nil {
			e.flushTelemetry()
		}
		if e.hasStepHook {
			for _, h := range e.hooks {
				if h.Step != nil {
					h.Step(e, e.step-1)
				}
			}
		}
	}
}
