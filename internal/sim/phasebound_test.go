// Tests for the engine's defense against controllers returning phases a
// junction does not have. The contract (see signal.Phase) is 1-indexed:
// valid control phases are 1..len(Phases), with len(Phases) itself the
// last valid phase; Amber (0) keeps every link inactive; anything outside
// that range is coerced to Amber and never actuated.
package sim_test

import (
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
)

// scriptedController replays a fixed phase, whatever the observation.
type scriptedController struct{ phase signal.Phase }

func (c *scriptedController) Name() string                    { return "scripted" }
func (c *scriptedController) Decide(*signal.Obs) signal.Phase { return c.phase }

func TestControlCoercesOutOfRangePhases(t *testing.T) {
	grid, err := network.Grid(network.DefaultGridSpec())
	if err != nil {
		t.Fatal(err)
	}
	junction := grid.JunctionAt(0, 0)
	numPhases := len(grid.Junction(junction).Phases)
	if numPhases < 2 {
		t.Fatalf("test junction has %d phases, need >= 2", numPhases)
	}

	cases := []struct {
		name string
		ret  signal.Phase
		want signal.Phase
	}{
		{"negative", signal.Phase(-3), signal.Amber},
		{"amber", signal.Amber, signal.Amber},
		{"first", 1, 1},
		// The 1-indexing contract: phase == len(Phases) names the last
		// phase and must be actuated, not coerced.
		{"last", signal.Phase(numPhases), signal.Phase(numPhases)},
		{"one-past-last", signal.Phase(numPhases + 1), signal.Amber},
		{"far-out", signal.Phase(1000), signal.Amber},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			router, routes := scenario.NewGridRouter(grid, nil, nil)
			engine, err := sim.New(sim.Config{
				Net: grid.Network,
				Controllers: signal.FactoryFunc{
					Label: "scripted",
					Build: func(signal.JunctionInfo) (signal.Controller, error) {
						return &scriptedController{phase: tc.ret}, nil
					},
				},
				Demand: sim.NewScheduledDemand(),
				Router: router,
				Routes: routes,
			})
			if err != nil {
				t.Fatal(err)
			}
			engine.Run(3)
			if got := engine.CurrentPhase(junction); got != tc.want {
				t.Fatalf("controller returned %d: CurrentPhase = %v, want %v", int(tc.ret), got, tc.want)
			}
			if err := engine.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
