package sim

import (
	"math"
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/vehicle"
)

func TestPoissonDemandMeanRate(t *testing.T) {
	d := NewPoissonDemand(rng.New(1), ConstantRate(0.5))
	total := 0
	const steps = 20000
	for k := 0; k < steps; k++ {
		total += d.Arrivals(3, k, float64(k), 1)
	}
	got := float64(total) / steps
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("mean arrivals per slot = %.3f, want ~0.5", got)
	}
}

func TestPoissonDemandPerRoadStreamsIndependent(t *testing.T) {
	// Drawing for road A must not change what road B sees.
	d1 := NewPoissonDemand(rng.New(9), ConstantRate(1))
	d2 := NewPoissonDemand(rng.New(9), ConstantRate(1))
	for k := 0; k < 100; k++ {
		d1.Arrivals(1, k, float64(k), 1) // extra consumer only in d1
		a := d1.Arrivals(2, k, float64(k), 1)
		b := d2.Arrivals(2, k, float64(k), 1)
		if a != b {
			t.Fatalf("road 2 stream perturbed by road 1 at step %d: %d vs %d", k, a, b)
		}
	}
}

func TestPoissonDemandZeroRate(t *testing.T) {
	d := NewPoissonDemand(rng.New(1), ConstantRate(0))
	for k := 0; k < 50; k++ {
		if d.Arrivals(0, k, float64(k), 1) != 0 {
			t.Fatal("zero rate produced arrivals")
		}
	}
}

func TestConstantRateScoped(t *testing.T) {
	r := ConstantRate(2, 4, 5)
	if r(4, 0) != 2 || r(5, 10) != 2 {
		t.Error("listed roads should have the rate")
	}
	if r(6, 0) != 0 {
		t.Error("unlisted road should be silent")
	}
}

func TestRateTable(t *testing.T) {
	rt := RateTable{7: 4} // mean inter-arrival 4 s -> rate 0.25/s
	r := rt.Rate()
	if got := r(7, 0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("rate = %v, want 0.25", got)
	}
	if r(8, 0) != 0 {
		t.Error("absent road should be silent")
	}
	bad := RateTable{7: 0}
	if bad.Rate()(7, 0) != 0 {
		t.Error("non-positive mean should be silent")
	}
}

func TestPiecewise(t *testing.T) {
	p := NewPiecewise()
	if err := p.Append(100, ConstantRate(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Append(100, ConstantRate(3)); err != nil {
		t.Fatal(err)
	}
	r := p.Rate()
	cases := []struct {
		t    float64
		want float64
	}{{0, 1}, {99.9, 1}, {100, 3}, {150, 3}, {199.9, 3}, {500, 3}}
	for _, c := range cases {
		if got := r(0, c.t); got != c.want {
			t.Errorf("rate at t=%v: got %v want %v", c.t, got, c.want)
		}
	}
}

func TestPiecewiseErrors(t *testing.T) {
	p := NewPiecewise()
	if err := p.Append(0, ConstantRate(1)); err == nil {
		t.Error("zero duration accepted")
	}
	if err := p.Append(10, nil); err == nil {
		t.Error("nil rate accepted")
	}
	if p.Rate()(0, 5) != 0 {
		t.Error("empty piecewise should be silent")
	}
}

func TestScheduledDemand(t *testing.T) {
	s := NewScheduledDemand()
	s.Add(2, 5, 3)
	s.Add(2, 5, 1)
	if got := s.Arrivals(2, 5, 5, 1); got != 4 {
		t.Errorf("scheduled arrivals = %d, want 4", got)
	}
	if got := s.Arrivals(2, 6, 6, 1); got != 0 {
		t.Errorf("unscheduled slot = %d, want 0", got)
	}
	if got := s.Arrivals(3, 5, 5, 1); got != 0 {
		t.Errorf("unscheduled road = %d, want 0", got)
	}
}

func TestRouterAdapters(t *testing.T) {
	routes := vehicle.NewRouteTable()
	if routes.TurnAt((StraightRouter{}).Route(0, 0), 0) != network.Straight {
		t.Error("straight router turned")
	}
	if routes.TurnAt((FixedRouter{}).Route(0, 0), 0) != network.Straight {
		t.Error("zero fixed router should default to straight")
	}
	left := routes.Intern(vehicle.OneTurn(network.Left, 0))
	fr := FixedRouter{R: left}
	if routes.TurnAt(fr.Route(0, 0), 0) != network.Left {
		t.Error("fixed router ignored its route")
	}
	right := routes.Intern(vehicle.OneTurn(network.Right, 1))
	rf := RouteFunc(func(entry network.RoadID, _ float64) vehicle.RouteID {
		return right
	})
	if routes.TurnAt(rf.Route(3, 0), 1) != network.Right {
		t.Error("route func not applied")
	}
}
