package sim

import (
	"fmt"
	"math"

	"utilbp/internal/signal"
	"utilbp/internal/telemetry"
)

// telemetryState is the engine side of an installed telemetry recorder
// (DESIGN.md §15): the resolved tracked-junction set, the armed
// disruption schedule's step windows (for the active-event channel) and
// the running counters the per-step network sample is derived from.
// It is observation-only state — never serialized into snapshots and
// never read by any simulation substep.
type telemetryState struct {
	rec *telemetry.Recorder
	// juncs are the engine junction indices tracked by the recorder, in
	// the recorder's channel order.
	juncs []int32
	// evWindows are the armed schedule's event windows in mini-slots,
	// recomputed whenever the recorder re-arms (the schedule can change
	// across ResetWith).
	evWindows []stepWindow
	// lastSpawned/lastExited turn the cumulative conservation counters
	// into per-step deltas; waitSec accumulates queued vehicle-seconds
	// for the running mean-wait channel.
	lastSpawned, lastExited int
	waitSec                 float64
}

// stepWindow is one event's half-open mini-slot interval.
type stepWindow struct{ start, end int32 }

// InstallTelemetry installs a telemetry recorder as the engine-owned
// metrics collector: the engine arms it against its mini-slot length
// and junction table and flushes one sample set at every step boundary
// (after the arrivals substep, before step hooks fire). Passing nil
// uninstalls.
//
// Unlike hooks, the recorder survives Reset/ResetWith and Restore — it
// is rewound and re-armed rather than discarded, so one recorder can
// watch every run of a reused engine. Recording is observation-only:
// it never mutates simulation state, is excluded from the snapshot
// byte stream, and enabling it changes no run outcome
// (TestTelemetryObservationOnly pins this bit-for-bit).
//
// For a net+junc spec every listed junction label must name a junction
// of the engine's network.
func (e *Engine) InstallTelemetry(rec *telemetry.Recorder) error {
	if rec == nil {
		e.telem = nil
		return nil
	}
	spec := rec.Spec()
	if err := spec.Validate(); err != nil {
		return err
	}
	var idx []int32
	var metas []telemetry.JuncMeta
	switch spec.Kind {
	case telemetry.KindNet:
	case telemetry.KindFull:
		for i := range e.juncs {
			idx = append(idx, int32(i))
			metas = append(metas, telemetry.JuncMeta{Label: e.juncs[i].info.Label, NumLinks: e.juncs[i].info.NumLinks})
		}
	case telemetry.KindNetJunc:
		for _, label := range spec.JunctionList() {
			found := false
			for i := range e.juncs {
				if e.juncs[i].info.Label == label {
					idx = append(idx, int32(i))
					metas = append(metas, telemetry.JuncMeta{Label: label, NumLinks: e.juncs[i].info.NumLinks})
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("sim: telemetry spec names unknown junction %q", label)
			}
		}
	default:
		return fmt.Errorf("sim: telemetry spec %q records nothing; install no recorder instead", spec)
	}
	rec.Arm(e.dt, metas)
	e.telem = &telemetryState{rec: rec, juncs: idx}
	e.rearmTelemetry()
	return nil
}

// Telemetry returns the installed recorder, nil when telemetry is off.
func (e *Engine) Telemetry() *telemetry.Recorder {
	if e.telem == nil {
		return nil
	}
	return e.telem.rec
}

// rearmTelemetry rewinds the recorder and rebinds the engine-side
// derived state to the engine's current run: Reset/ResetWith call it
// after the rewind (a swapped-in schedule changes the event windows),
// Restore after the jump (the delta counters must restart from the
// restored totals; the observation history before the checkpoint is
// not part of the snapshot, so the series restarts empty).
func (e *Engine) rearmTelemetry() {
	ts := e.telem
	ts.rec.Rewind()
	ts.evWindows = ts.evWindows[:0]
	if e.events != nil {
		for _, sp := range e.events.Specs() {
			start := int32(math.Round(sp.T0 / e.dt))
			dur := int32(math.Round(sp.Dur / e.dt))
			if dur < 1 {
				dur = 1
			}
			ts.evWindows = append(ts.evWindows, stepWindow{start: start, end: start + dur})
		}
	}
	ts.lastSpawned = e.totals.Spawned
	ts.lastExited = e.totals.Exited
	ts.waitSec = 0
}

// flushTelemetry records one completed step. It runs inside the step
// loop with e.step already advanced (the completed step is e.step-1),
// reads only ground-truth engine state, and performs no heap
// allocation (the CI-gated BenchmarkStepOnceInstrumented contract).
func (e *Engine) flushTelemetry() {
	ts := e.telem
	step := e.step - 1
	queued := e.netQueued
	spawnQ := 0
	for _, rid := range e.entries {
		spawnQ += e.roads[rid].spawn.Len()
	}
	active := 0
	for _, w := range ts.evWindows {
		if int32(step) >= w.start && int32(step) < w.end {
			active++
		}
	}
	ts.waitSec += float64(queued+spawnQ) * e.dt
	ts.rec.RecordNet(step, telemetry.NetSample{
		Queued:       queued,
		SpawnQueued:  spawnQ,
		Spawned:      e.totals.Spawned - ts.lastSpawned,
		Exited:       e.totals.Exited - ts.lastExited,
		ActiveEvents: active,
		WaitSec:      ts.waitSec,
		CumExited:    e.totals.Exited,
	})
	ts.lastSpawned = e.totals.Spawned
	ts.lastExited = e.totals.Exited
	for k, ji := range ts.juncs {
		js := &e.juncs[ji]
		var row []bool
		if js.current != signal.Amber {
			row = js.phaseActive[int(js.current)-1]
		}
		ts.rec.RecordJunc(k, js.truth, js.current, row, js.darkSince >= 0)
	}
}
