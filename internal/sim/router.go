package sim

import (
	"utilbp/internal/network"
	"utilbp/internal/vehicle"
)

// RouteChooser assigns a route plan to each spawned vehicle. Plans are
// compact values (vehicle.Plan), so implementations can hand them out on
// the spawn path without heap allocation. The paper's Table-I chooser
// (turn probabilities per entry side, turning junction selected uniformly)
// lives in the scenario package; the implementations here cover tests and
// simple workloads.
type RouteChooser interface {
	// Route returns the route plan for a vehicle spawned on the given
	// entry road at time t.
	Route(entry network.RoadID, t float64) vehicle.Plan
}

// StraightRouter sends every vehicle straight through the network.
type StraightRouter struct{}

// Route implements RouteChooser.
func (StraightRouter) Route(network.RoadID, float64) vehicle.Plan {
	return vehicle.StraightThrough
}

// FixedRouter assigns the same route plan to every vehicle.
type FixedRouter struct {
	// R is the plan to assign; the zero Plan goes straight through.
	R vehicle.Plan
}

// Route implements RouteChooser.
func (f FixedRouter) Route(network.RoadID, float64) vehicle.Plan {
	return f.R
}

// RouteFunc adapts a function to RouteChooser.
type RouteFunc func(entry network.RoadID, t float64) vehicle.Plan

// Route implements RouteChooser.
func (f RouteFunc) Route(entry network.RoadID, t float64) vehicle.Plan { return f(entry, t) }
