package sim

import (
	"utilbp/internal/network"
	"utilbp/internal/vehicle"
)

// RouteChooser assigns a route to each spawned vehicle, as an interned
// vehicle.RouteID into the run's route table (Config.Routes). Handing
// out a 4-byte ID keeps the spawn path allocation-free and the vehicle
// arena entry small; implementations intern their plans at construction
// time, never during a run (the table is shared read-only — see
// DESIGN.md §5). The paper's Table-I chooser lives in the scenario
// package; the implementations here cover tests and simple workloads.
type RouteChooser interface {
	// Route returns the route for a vehicle spawned on the given entry
	// road at time t. The ID must index the table the engine was
	// configured with.
	Route(entry network.RoadID, t float64) vehicle.RouteID
}

// RouteTabler is implemented by route choosers that carry the table
// their RouteIDs index. When Config.Routes is nil, sim.New falls back to
// the router's own table, so a chooser/table pair can never come apart
// by omission.
type RouteTabler interface {
	// RouteTable returns the table the chooser's RouteIDs index into.
	RouteTable() *vehicle.RouteTable
}

// StraightRouter sends every vehicle straight through the network. It
// works with any route table (RouteID 0 is always the straight route).
type StraightRouter struct{}

// Route implements RouteChooser.
func (StraightRouter) Route(network.RoadID, float64) vehicle.RouteID {
	return vehicle.StraightRoute
}

// FixedRouter assigns the same route to every vehicle.
type FixedRouter struct {
	// R is the route to assign; the zero RouteID goes straight through.
	R vehicle.RouteID
}

// Route implements RouteChooser.
func (f FixedRouter) Route(network.RoadID, float64) vehicle.RouteID {
	return f.R
}

// RouteFunc adapts a function to RouteChooser.
type RouteFunc func(entry network.RoadID, t float64) vehicle.RouteID

// Route implements RouteChooser.
func (f RouteFunc) Route(entry network.RoadID, t float64) vehicle.RouteID { return f(entry, t) }
