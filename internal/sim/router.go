package sim

import (
	"utilbp/internal/network"
	"utilbp/internal/vehicle"
)

// RouteChooser assigns a route to each spawned vehicle. The paper's
// Table-I chooser (turn probabilities per entry side, turning junction
// selected uniformly) lives in the scenario package; the implementations
// here cover tests and simple workloads.
type RouteChooser interface {
	// Route returns the route for a vehicle spawned on the given entry
	// road at time t.
	Route(entry network.RoadID, t float64) vehicle.Route
}

// StraightRouter sends every vehicle straight through the network.
type StraightRouter struct{}

// Route implements RouteChooser.
func (StraightRouter) Route(network.RoadID, float64) vehicle.Route {
	return vehicle.StraightThrough
}

// FixedRouter assigns the same route to every vehicle.
type FixedRouter struct {
	// R is the route to assign; nil falls back to straight-through.
	R vehicle.Route
}

// Route implements RouteChooser.
func (f FixedRouter) Route(network.RoadID, float64) vehicle.Route {
	if f.R == nil {
		return vehicle.StraightThrough
	}
	return f.R
}

// RouteFunc adapts a function to RouteChooser.
type RouteFunc func(entry network.RoadID, t float64) vehicle.Route

// Route implements RouteChooser.
func (f RouteFunc) Route(entry network.RoadID, t float64) vehicle.Route { return f(entry, t) }
