package sim

import (
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/signal"
	"utilbp/internal/vehicle"
)

// captureCtrl records the observations it receives while holding one
// phase.
type captureCtrl struct {
	phase signal.Phase
	seen  []signal.Obs
}

func (c *captureCtrl) Name() string { return "capture" }
func (c *captureCtrl) Decide(obs *signal.Obs) signal.Phase {
	cp := *obs
	cp.Links = append([]signal.LinkObs(nil), obs.Links...)
	c.seen = append(c.seen, cp)
	return c.phase
}

// TestStartupLostTimeDelaysService: with 2 s startup lost time, a freshly
// green link must not serve during its first two mini-slots.
func TestStartupLostTimeDelaysService(t *testing.T) {
	g := grid1x1(t)
	north := g.Entries(network.North)[0]
	sched := NewScheduledDemand()
	sched.Add(north, 0, 3)
	// Controller: amber until step 40 (by then the vehicles queue), then
	// phase 1 green.
	swCtrl := signal.FactoryFunc{Label: "switch", Build: func(signal.JunctionInfo) (signal.Controller, error) {
		return stepCtrl{at: 40, before: signal.Amber, after: 1}, nil
	}}
	e, err := New(Config{
		Net:              g.Network,
		Controllers:      swCtrl,
		Demand:           sched,
		Router:           StraightRouter{},
		StartupLostSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(40)
	if e.Totals().Served != 0 {
		t.Fatal("served during amber")
	}
	queued := e.ApproachQueue(north)
	if queued != 3 {
		t.Fatalf("expected 3 queued before green, got %d", queued)
	}
	// Green starts at step 40. Steps 40 and 41 are startup-lost; the
	// first service lands on step 42 (µ=1).
	e.Run(1) // step 40
	if got := e.Totals().Served; got != 0 {
		t.Fatalf("served %d during first green second (startup)", got)
	}
	e.Run(1) // step 41
	if got := e.Totals().Served; got != 0 {
		t.Fatalf("served %d during second green second (startup)", got)
	}
	e.Run(1) // step 42
	if got := e.Totals().Served; got != 1 {
		t.Fatalf("served %d at step 42, want 1", got)
	}
}

// stepCtrl returns before until step at, after from then on.
type stepCtrl struct {
	at            int
	before, after signal.Phase
}

func (s stepCtrl) Name() string { return "step" }
func (s stepCtrl) Decide(obs *signal.Obs) signal.Phase {
	if obs.Step < s.at {
		return s.before
	}
	return s.after
}

// TestStartupLostDisabled: negative StartupLostSteps disables the debt.
func TestStartupLostDisabled(t *testing.T) {
	g := grid1x1(t)
	north := g.Entries(network.North)[0]
	sched := NewScheduledDemand()
	sched.Add(north, 0, 3)
	e, err := New(Config{
		Net: g.Network,
		Controllers: signal.FactoryFunc{Label: "s", Build: func(signal.JunctionInfo) (signal.Controller, error) {
			return stepCtrl{at: 40, before: signal.Amber, after: 1}, nil
		}},
		Demand:           sched,
		Router:           StraightRouter{},
		StartupLostSteps: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(41) // green fires at step 40
	if got := e.Totals().Served; got != 1 {
		t.Fatalf("served %d with startup disabled, want 1 immediately", got)
	}
}

// TestFractionalServiceRate: µ=0.5 serves one vehicle every two green
// seconds (after the startup debt).
func TestFractionalServiceRate(t *testing.T) {
	spec := network.DefaultGridSpec()
	spec.Rows, spec.Cols = 1, 1
	spec.Capacity = 30
	spec.Mu = 0.5
	g, err := network.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	north := g.Entries(network.North)[0]
	sched := NewScheduledDemand()
	sched.Add(north, 0, 10)
	e, err := New(Config{
		Net:              g.Network,
		Controllers:      staticFactory(1),
		Demand:           sched,
		Router:           StraightRouter{},
		StartupLostSteps: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Travel ~22 s; by step 30 everything queues. Then service at 0.5/s:
	// 10 vehicles need ~20 s.
	e.Run(30)
	served30 := e.Totals().Served
	e.Run(10)
	served40 := e.Totals().Served
	delta := served40 - served30
	if delta < 4 || delta > 6 {
		t.Fatalf("served %d in 10 s at µ=0.5, want ~5", delta)
	}
}

// TestTransitObservation: a controller sees vehicles first as InTransit,
// then as Queue, with the per-lane split following the route plan.
func TestTransitObservation(t *testing.T) {
	g := grid1x1(t)
	north := g.Entries(network.North)[0]
	sched := NewScheduledDemand()
	sched.Add(north, 0, 2)
	ctrl := &captureCtrl{phase: signal.Amber}
	router, routes := fixedRoute(vehicle.OneTurn(network.Left, 0))
	e, err := New(Config{
		Net:         g.Network,
		Controllers: signal.FactoryFunc{Label: "c", Build: func(signal.JunctionInfo) (signal.Controller, error) { return ctrl, nil }},
		Demand:      sched,
		Router:      router,
		Routes:      routes,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(60)
	j := g.Junction(g.JunctionAt(0, 0))
	leftLink := j.LinkFor(network.North, network.Left)
	if leftLink < 0 {
		t.Fatal("no north-left link")
	}
	sawTransit, sawQueue := false, false
	for _, obs := range ctrl.seen {
		l := obs.Links[leftLink]
		if l.InTransit == 2 && l.Queue == 0 {
			sawTransit = true
		}
		if l.Queue == 2 && l.InTransit == 0 {
			sawQueue = true
		}
		if l.InTransit+l.Queue > 2 {
			t.Fatalf("overcounted lane: %+v", l)
		}
		// The straight lane must never see these left-bound vehicles.
		s := obs.Links[j.LinkFor(network.North, network.Straight)]
		if s.Queue != 0 || s.InTransit != 0 {
			t.Fatalf("left-bound vehicles leaked into the straight lane: %+v", s)
		}
	}
	if !sawTransit {
		t.Error("never observed vehicles in transit toward the left lane")
	}
	if !sawQueue {
		t.Error("never observed vehicles queued in the left lane")
	}
}

// TestRouteFallbackCounted: on a T junction, a vehicle routed toward the
// missing arm is rerouted and counted.
func TestRouteFallbackCounted(t *testing.T) {
	// 1x1 grid but remove the east arm by building a custom T junction.
	b := network.NewBuilder()
	j := b.AddNode(network.JunctionNode, 0, 0, "T")
	tn := b.AddNode(network.TerminalNode, 0, -100, "N")
	ts := b.AddNode(network.TerminalNode, 0, 100, "S")
	tw := b.AddNode(network.TerminalNode, -100, 0, "W")
	entry := b.AddRoad(tn, j, network.South, 100, 10, 50, "in-n")
	b.AddRoad(j, tn, network.North, 100, 10, 0, "out-n")
	b.AddRoad(ts, j, network.North, 100, 10, 50, "in-s")
	b.AddRoad(j, ts, network.South, 100, 10, 0, "out-s")
	b.AddRoad(tw, j, network.East, 100, 10, 50, "in-w")
	b.AddRoad(j, tw, network.West, 100, 10, 0, "out-w")
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduledDemand()
	sched.Add(entry, 0, 1)
	// From the north heading south, a left turn exits east — the
	// missing arm.
	router, routes := fixedRoute(vehicle.OneTurn(network.Left, 0))
	e, err := New(Config{
		Net:         net,
		Controllers: staticFactory(1),
		Demand:      sched,
		Router:      router,
		Routes:      routes,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(120)
	if got := e.Totals().RouteFallbacks; got != 1 {
		t.Fatalf("route fallbacks = %d, want 1", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The vehicle must still have exited somewhere.
	if e.Totals().Exited != 1 {
		t.Fatalf("rerouted vehicle did not exit: %+v", e.Totals())
	}
}

// TestMixedLanesDeterminism: the HOL path is reproducible too.
func TestMixedLanesDeterminism(t *testing.T) {
	run := func() Totals {
		g := grid1x1(t)
		e, err := New(Config{
			Net:         g.Network,
			Controllers: staticFactory(1),
			Demand:      NewPoissonDemand(rng.New(7), ConstantRate(0.2)),
			Router:      StraightRouter{},
			MixedLanes:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(800)
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return e.Totals()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("mixed-lane runs diverged: %+v vs %+v", a, b)
	}
}
