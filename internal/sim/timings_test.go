package sim

import (
	"testing"
	"time"
)

// TestPhaseTimingsAttribution exercises RunTimed directly (perfbench is
// its only other caller): the zero value is usable, Steps attributes the
// window, every bucket is non-negative and the buckets account for
// roughly the wall time of the run (clock reads sit between substeps,
// so the sum can only undershoot, never exceed wall time by more than
// scheduling noise).
func TestPhaseTimingsAttribution(t *testing.T) {
	e := snapTestEngine(t)
	var pt PhaseTimings
	wall := time.Now()
	e.RunTimed(200, &pt)
	elapsed := time.Since(wall)
	if pt.Steps != 200 {
		t.Fatalf("Steps = %d, want 200", pt.Steps)
	}
	buckets := []time.Duration{pt.Events, pt.Sense, pt.Control, pt.Serve, pt.Travel, pt.Arrivals}
	var sum time.Duration
	for i, b := range buckets {
		if b < 0 {
			t.Fatalf("bucket %d negative: %v", i, b)
		}
		sum += b
	}
	if sum <= 0 {
		t.Fatalf("buckets sum to %v over %d steps", sum, pt.Steps)
	}
	// Generous ceiling: clock granularity and preemption can stretch
	// individual reads, but the attributed total cannot exceed wall time
	// plus noise.
	if sum > 2*elapsed+10*time.Millisecond {
		t.Fatalf("attributed %v, wall clock only %v", sum, elapsed)
	}
	// Accumulation: a second window adds on top.
	e.RunTimed(50, &pt)
	if pt.Steps != 250 {
		t.Fatalf("Steps after second window = %d, want 250", pt.Steps)
	}
}

// TestRunTracedMatchesRun pins that the timeline stepper evolves state
// exactly like Run, and that the log geometry is right: six equal-length
// tracks, StartStep at the window start, Steps counting appends across
// windows.
func TestRunTracedMatchesRun(t *testing.T) {
	const steps = 150
	plain := snapTestEngine(t)
	traced := snapTestEngine(t)
	plain.Run(steps)
	tl := NewTraceLog(steps)
	traced.RunTraced(steps, tl)
	if plain.Totals() != traced.Totals() {
		t.Fatalf("RunTraced diverged from Run: %+v vs %+v", traced.Totals(), plain.Totals())
	}
	if tl.Steps() != steps || tl.StartStep != 0 {
		t.Fatalf("trace log: %d steps from %d, want %d from 0", tl.Steps(), tl.StartStep, steps)
	}
	for s := range tl.Spans {
		if len(tl.Spans[s]) != steps {
			t.Fatalf("track %s has %d entries, want %d", SubstepNames[s], len(tl.Spans[s]), steps)
		}
	}
	// A later window appends after the first.
	traced.RunTraced(10, tl)
	if tl.Steps() != steps+10 || tl.StartStep != 0 {
		t.Fatalf("after second window: %d steps from %d", tl.Steps(), tl.StartStep)
	}
}

// TestTraceLogReset checks Reset empties the log and re-binds StartStep
// to the next recorded window.
func TestTraceLogReset(t *testing.T) {
	e := snapTestEngine(t)
	tl := NewTraceLog(64)
	e.RunTraced(20, tl)
	tl.Reset()
	if tl.Steps() != 0 || tl.StartStep != -1 {
		t.Fatalf("reset log: %d steps, start %d", tl.Steps(), tl.StartStep)
	}
	e.RunTraced(5, tl)
	if tl.Steps() != 5 || tl.StartStep != 20 {
		t.Fatalf("post-reset window: %d steps from %d, want 5 from 20", tl.Steps(), tl.StartStep)
	}
}

// TestTraceLogZeroValue checks the zero value records usably (NewTraceLog
// only pre-sizes capacity).
func TestTraceLogZeroValue(t *testing.T) {
	e := snapTestEngine(t)
	e.Run(15) // a mid-run first window must still bind StartStep
	var tl TraceLog
	e.RunTraced(3, &tl)
	if tl.Steps() != 3 || tl.StartStep != 15 {
		t.Fatalf("zero-value log: %d steps from %d, want 3 from 15", tl.Steps(), tl.StartStep)
	}
}
