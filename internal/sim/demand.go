package sim

import (
	"fmt"
	"math"
	"sort"

	"utilbp/internal/network"
	"utilbp/internal/rng"
)

// ArrivalProcess generates the exogenous traffic entering the network:
// A_i(k, k+1) in the paper's queuing dynamics (eq. 2).
type ArrivalProcess interface {
	// Arrivals returns how many vehicles are generated at the given
	// entry road during mini-slot k, i.e. in [t, t+dt).
	Arrivals(road network.RoadID, step int, t, dt float64) int
}

// RateFunc returns the arrival rate in vehicles per second at an entry
// road at simulation time t. Returning 0 silences the road.
type RateFunc func(road network.RoadID, t float64) float64

// Reseeder rewinds a randomized collaborator (arrival process, router) to
// the fresh deterministic state it would have when built for the given run
// seed. Engine.Reset forwards its seed to the Config's Demand and Router
// when they implement it, so a reset engine replays exactly like a newly
// constructed one.
type Reseeder interface {
	Reseed(seed uint64)
}

// PoissonDemand draws per-slot arrival counts from independent Poisson
// distributions, one deterministic stream per entry road, per Section II-B
// of the paper ("the arrival of vehicles at each incoming road is an
// exogenous process ... Poisson distribution").
//
// Streams live in a dense road-indexed slice, and each caches the
// exp(-λΔt) limit of the Knuth sampler for the last seen rate, so a
// steady-rate road costs no map lookup and no transcendental per slot.
type PoissonDemand struct {
	rate    RateFunc
	streams []poissonStream
	root    *rng.Source
	derive  func(seed uint64) *rng.Source
}

// poissonStream is one entry road's arrival stream plus its cached
// sampler limit for the last seen per-slot mean.
type poissonStream struct {
	src   *rng.Source
	mean  float64 // λΔt the cached limit was computed for
	limit float64 // exp(-mean)
}

// NewPoissonDemand builds a Poisson arrival process over the given rate
// function, deriving per-road streams from root so results do not depend
// on the set or order of other RNG consumers.
func NewPoissonDemand(root *rng.Source, rate RateFunc) *PoissonDemand {
	return &PoissonDemand{rate: rate, root: root}
}

// SetDerivation installs the seed→root mapping Reseed uses, letting the
// scenario layer own how a run seed derives the demand stream (e.g.
// rng.New(seed).Split("demand")) without this package knowing the labels.
// Without it, Reseed assumes the root passed to NewPoissonDemand was
// rng.New(seed); if the root was derived any other way, Engine.Reset's
// replay-equals-fresh-build contract needs a matching derivation here.
func (p *PoissonDemand) SetDerivation(derive func(seed uint64) *rng.Source) {
	p.derive = derive
}

// Reseed implements Reseeder: it re-derives the root stream for the given
// run seed (via the installed derivation, defaulting to rng.New — see
// SetDerivation) and re-splits every per-road stream from the new root.
// Roads that already had a stream are re-split eagerly, so a reset run's
// spawn path performs no allocation when it first samples them; splitting
// is order-independent, so the sequences are identical to the lazy splits
// a freshly built process would perform.
func (p *PoissonDemand) Reseed(seed uint64) {
	if p.derive != nil {
		p.root = p.derive(seed)
	} else {
		p.root = rng.New(seed)
	}
	for i := range p.streams {
		s := &p.streams[i]
		if s.src == nil {
			continue
		}
		s.src = p.root.SplitIndexed("arrivals", i)
		s.mean, s.limit = 0, 0
	}
}

// Arrivals implements ArrivalProcess. Invalid (negative) road IDs
// generate nothing.
func (p *PoissonDemand) Arrivals(road network.RoadID, _ int, t, dt float64) int {
	if road < 0 {
		return 0
	}
	lambda := p.rate(road, t)
	if lambda <= 0 || dt <= 0 {
		return 0
	}
	if int(road) >= len(p.streams) {
		grown := make([]poissonStream, road+1)
		copy(grown, p.streams)
		p.streams = grown
	}
	s := &p.streams[road]
	if s.src == nil {
		s.src = p.root.SplitIndexed("arrivals", int(road))
	}
	mean := lambda * dt
	if mean != s.mean {
		s.mean = mean
		s.limit = math.Exp(-mean)
	}
	return s.src.PoissonWithLimit(mean, s.limit)
}

// ConstantRate returns a RateFunc with the same rate on every listed road
// and zero elsewhere. An empty road list applies the rate everywhere.
func ConstantRate(rate float64, roads ...network.RoadID) RateFunc {
	if len(roads) == 0 {
		return func(network.RoadID, float64) float64 { return rate }
	}
	set := make(map[network.RoadID]bool, len(roads))
	for _, r := range roads {
		set[r] = true
	}
	return func(r network.RoadID, _ float64) float64 {
		if set[r] {
			return rate
		}
		return 0
	}
}

// RateTable maps entry roads to mean inter-arrival times (seconds), the
// way the paper's Table II specifies demand. Roads absent from the table
// are silent.
type RateTable map[network.RoadID]float64

// Rate returns the RateFunc for the table. Road IDs are dense, so the
// table is flattened into a slice once and every per-slot query is an
// index, not a map lookup.
func (rt RateTable) Rate() RateFunc {
	maxRoad := -1
	for r := range rt {
		if int(r) > maxRoad {
			maxRoad = int(r)
		}
	}
	dense := make([]float64, maxRoad+1)
	for r, mean := range rt {
		if int(r) >= 0 && mean > 0 {
			dense[r] = 1 / mean
		}
	}
	return func(r network.RoadID, _ float64) float64 {
		if r < 0 || int(r) >= len(dense) {
			return 0
		}
		return dense[r]
	}
}

// Piecewise composes time-varying demand from consecutive segments, used
// for the paper's 4-hour mixed pattern. Each segment runs for its Duration
// and uses its RateFunc; past the last segment the final one applies.
type Piecewise struct {
	segments []pwSegment
}

type pwSegment struct {
	until float64
	rate  RateFunc
}

// NewPiecewise builds a piecewise rate. Durations must be positive.
func NewPiecewise() *Piecewise { return &Piecewise{} }

// Append adds a segment lasting duration seconds.
func (p *Piecewise) Append(duration float64, rate RateFunc) error {
	if duration <= 0 {
		return fmt.Errorf("sim: piecewise segment duration %v must be positive", duration)
	}
	if rate == nil {
		return fmt.Errorf("sim: piecewise segment rate must not be nil")
	}
	start := 0.0
	if n := len(p.segments); n > 0 {
		start = p.segments[n-1].until
	}
	p.segments = append(p.segments, pwSegment{until: start + duration, rate: rate})
	return nil
}

// Rate returns the composed RateFunc. It returns zero demand when no
// segment was appended.
func (p *Piecewise) Rate() RateFunc {
	if len(p.segments) == 0 {
		return func(network.RoadID, float64) float64 { return 0 }
	}
	segs := append([]pwSegment(nil), p.segments...)
	return func(r network.RoadID, t float64) float64 {
		idx := sort.Search(len(segs), func(i int) bool { return t < segs[i].until })
		if idx == len(segs) {
			idx = len(segs) - 1
		}
		return segs[idx].rate(r, t)
	}
}

// CutoffDemand forwards to Inner until CutoffStep, then goes silent. It
// lets benchmarks and tests reach a quiesced steady state in which the
// engine's zero-allocation contract can be observed (injecting a vehicle
// necessarily allocates arena and route memory).
type CutoffDemand struct {
	Inner      ArrivalProcess
	CutoffStep int
}

// Arrivals implements ArrivalProcess.
func (d *CutoffDemand) Arrivals(road network.RoadID, step int, t, dt float64) int {
	if step >= d.CutoffStep {
		return 0
	}
	return d.Inner.Arrivals(road, step, t, dt)
}

// Reseed implements Reseeder by forwarding to Inner when it supports it.
func (d *CutoffDemand) Reseed(seed uint64) {
	if r, ok := d.Inner.(Reseeder); ok {
		r.Reseed(seed)
	}
}

// ScheduledDemand replays an explicit arrival schedule; it exists for
// tests and trace-driven experiments. Times are slot indexes.
type ScheduledDemand struct {
	bySlot map[network.RoadID]map[int]int
}

// NewScheduledDemand returns an empty schedule.
func NewScheduledDemand() *ScheduledDemand {
	return &ScheduledDemand{bySlot: make(map[network.RoadID]map[int]int)}
}

// Add schedules count arrivals on road at slot step.
func (s *ScheduledDemand) Add(road network.RoadID, step, count int) {
	m := s.bySlot[road]
	if m == nil {
		m = make(map[int]int)
		s.bySlot[road] = m
	}
	m[step] += count
}

// Arrivals implements ArrivalProcess.
func (s *ScheduledDemand) Arrivals(road network.RoadID, step int, _, _ float64) int {
	return s.bySlot[road][step]
}
