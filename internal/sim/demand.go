package sim

import (
	"fmt"
	"sort"

	"utilbp/internal/network"
	"utilbp/internal/rng"
)

// ArrivalProcess generates the exogenous traffic entering the network:
// A_i(k, k+1) in the paper's queuing dynamics (eq. 2).
type ArrivalProcess interface {
	// Arrivals returns how many vehicles are generated at the given
	// entry road during mini-slot k, i.e. in [t, t+dt).
	Arrivals(road network.RoadID, step int, t, dt float64) int
}

// RateFunc returns the arrival rate in vehicles per second at an entry
// road at simulation time t. Returning 0 silences the road.
type RateFunc func(road network.RoadID, t float64) float64

// PoissonDemand draws per-slot arrival counts from independent Poisson
// distributions, one deterministic stream per entry road, per Section II-B
// of the paper ("the arrival of vehicles at each incoming road is an
// exogenous process ... Poisson distribution").
type PoissonDemand struct {
	rate    RateFunc
	streams map[network.RoadID]*rng.Source
	root    *rng.Source
}

// NewPoissonDemand builds a Poisson arrival process over the given rate
// function, deriving per-road streams from root so results do not depend
// on the set or order of other RNG consumers.
func NewPoissonDemand(root *rng.Source, rate RateFunc) *PoissonDemand {
	return &PoissonDemand{
		rate:    rate,
		streams: make(map[network.RoadID]*rng.Source),
		root:    root,
	}
}

// Arrivals implements ArrivalProcess.
func (p *PoissonDemand) Arrivals(road network.RoadID, _ int, t, dt float64) int {
	lambda := p.rate(road, t)
	if lambda <= 0 || dt <= 0 {
		return 0
	}
	s := p.streams[road]
	if s == nil {
		s = p.root.SplitIndexed("arrivals", int(road))
		p.streams[road] = s
	}
	return s.Poisson(lambda * dt)
}

// ConstantRate returns a RateFunc with the same rate on every listed road
// and zero elsewhere. An empty road list applies the rate everywhere.
func ConstantRate(rate float64, roads ...network.RoadID) RateFunc {
	if len(roads) == 0 {
		return func(network.RoadID, float64) float64 { return rate }
	}
	set := make(map[network.RoadID]bool, len(roads))
	for _, r := range roads {
		set[r] = true
	}
	return func(r network.RoadID, _ float64) float64 {
		if set[r] {
			return rate
		}
		return 0
	}
}

// RateTable maps entry roads to mean inter-arrival times (seconds), the
// way the paper's Table II specifies demand. Roads absent from the table
// are silent.
type RateTable map[network.RoadID]float64

// Rate returns the RateFunc for the table.
func (rt RateTable) Rate() RateFunc {
	return func(r network.RoadID, _ float64) float64 {
		mean, ok := rt[r]
		if !ok || mean <= 0 {
			return 0
		}
		return 1 / mean
	}
}

// Piecewise composes time-varying demand from consecutive segments, used
// for the paper's 4-hour mixed pattern. Each segment runs for its Duration
// and uses its RateFunc; past the last segment the final one applies.
type Piecewise struct {
	segments []pwSegment
}

type pwSegment struct {
	until float64
	rate  RateFunc
}

// NewPiecewise builds a piecewise rate. Durations must be positive.
func NewPiecewise() *Piecewise { return &Piecewise{} }

// Append adds a segment lasting duration seconds.
func (p *Piecewise) Append(duration float64, rate RateFunc) error {
	if duration <= 0 {
		return fmt.Errorf("sim: piecewise segment duration %v must be positive", duration)
	}
	if rate == nil {
		return fmt.Errorf("sim: piecewise segment rate must not be nil")
	}
	start := 0.0
	if n := len(p.segments); n > 0 {
		start = p.segments[n-1].until
	}
	p.segments = append(p.segments, pwSegment{until: start + duration, rate: rate})
	return nil
}

// Rate returns the composed RateFunc. It returns zero demand when no
// segment was appended.
func (p *Piecewise) Rate() RateFunc {
	if len(p.segments) == 0 {
		return func(network.RoadID, float64) float64 { return 0 }
	}
	segs := append([]pwSegment(nil), p.segments...)
	return func(r network.RoadID, t float64) float64 {
		idx := sort.Search(len(segs), func(i int) bool { return t < segs[i].until })
		if idx == len(segs) {
			idx = len(segs) - 1
		}
		return segs[idx].rate(r, t)
	}
}

// ScheduledDemand replays an explicit arrival schedule; it exists for
// tests and trace-driven experiments. Times are slot indexes.
type ScheduledDemand struct {
	bySlot map[network.RoadID]map[int]int
}

// NewScheduledDemand returns an empty schedule.
func NewScheduledDemand() *ScheduledDemand {
	return &ScheduledDemand{bySlot: make(map[network.RoadID]map[int]int)}
}

// Add schedules count arrivals on road at slot step.
func (s *ScheduledDemand) Add(road network.RoadID, step, count int) {
	m := s.bySlot[road]
	if m == nil {
		m = make(map[int]int)
		s.bySlot[road] = m
	}
	m[step] += count
}

// Arrivals implements ArrivalProcess.
func (s *ScheduledDemand) Arrivals(road network.RoadID, step int, _, _ float64) int {
	return s.bySlot[road][step]
}
