// Engine snapshot/restore (DESIGN.md §14): a versioned, deterministic,
// byte-exact capture of all mutable engine state. The stream is a pure
// function of that state — two snapshots of identical engine states
// compare equal with bytes.Equal — so the snapshot doubles as a state
// hash: the equivalence tests (and the chaos harness) pin "restore at
// step k, run to N" against "run to N uninterrupted" by comparing the
// final snapshot bytes.
//
// A snapshot is taken and restored between mini-slots (after stepOnce
// returns), which is what keeps the per-step scratch out of the format:
// the batch change set is empty at every inter-step point (sense fills
// it, the same step's control drains it), the link refresh stamps only
// matter within the step that wrote them, and the controllers' gain
// slabs are per-decision scratch. Restore rebuilds the control plane
// and re-arms a full sweep (AllChanged), which recomputes exactly the
// cached values the uninterrupted run carries — the gain caches are pure
// functions of the observation, so the next decision is bit-identical.
package sim

import (
	"fmt"

	"utilbp/internal/signal"
	"utilbp/internal/snap"
)

const (
	// snapshotMagic brands a byte stream as an engine snapshot
	// ("utilbpsn", little-endian).
	snapshotMagic uint64 = 0x6e73_7062_6c69_7475
	// snapshotVersion is bumped whenever the layout changes; Restore
	// rejects any other version. There is no cross-version migration —
	// snapshots are checkpoints of a running experiment, not archives.
	// v2 (PR 10): the vehicle section went column-major with the SoA
	// arena — per-column streams instead of per-vehicle records, and no
	// ID column (a vehicle's ID is its arena row index). See DESIGN.md
	// §16 for the exact format delta.
	snapshotVersion uint64 = 2
)

// Snapshot captures the engine's complete mutable state as a versioned
// byte stream: step and conservation counters, every road's lanes,
// travel heap and effective capacity, the vehicle arena, per-junction
// phase and dark-mode state, the observation (and sensed-truth) slabs,
// the pending dirty-road set, the event cursor, and the state of every
// stateful collaborator (demand, router, sensor, controllers) via
// snap.Snapshotter. Registered hooks are NOT captured — like Reset,
// restore discards them.
//
// The stream is deterministic: equal engine states yield equal bytes.
// Restore on an engine built from an equivalent Config resumes the run
// bit-for-bit.
func (e *Engine) Snapshot() []byte {
	w := snap.NewWriter(e.snapshotSizeHint())
	w.Uint64(snapshotMagic)
	w.Uint64(snapshotVersion)

	// Fingerprint: the structural facts a restore target must match.
	w.Int(len(e.roads))
	w.Int(len(e.juncs))
	w.Int(e.numLinks)
	w.Float64(e.dt)
	w.Bool(e.cfg.MixedLanes)
	w.Int(e.cfg.StartupLostSteps)
	w.Bool(e.batchCtrl != nil)
	w.String(e.cfg.Controllers.Name())
	if e.sensor != nil {
		w.String(e.sensor.Name())
	} else {
		w.String("")
	}
	if e.events != nil {
		w.Int(len(e.events.Transitions()))
	} else {
		w.Int(0)
	}

	// Engine scalars.
	w.Int(e.step)
	w.Int(e.totals.Spawned)
	w.Int(e.totals.Entered)
	w.Int(e.totals.Exited)
	w.Int(e.totals.Served)
	w.Int(e.totals.RouteFallbacks)
	w.Bool(e.finalized)
	w.Int(e.evCursor)

	// Roads: counters, effective capacity, lanes and the travel heap.
	for i := range e.roads {
		rs := &e.roads[i]
		w.Int(rs.effCap)
		w.Int(rs.occupancy)
		w.Int(rs.queuedTotal)
		for t := 0; t < numTurns; t++ {
			w.Int(rs.transit[t])
			w.Int(rs.mixedCount[t])
			w.Int(rs.joins[t])
		}
		for t := 0; t < numTurns; t++ {
			rs.lanes[t].SnapshotState(w)
		}
		rs.mixed.SnapshotState(w)
		rs.spawn.SnapshotState(w)
		rs.tail.SnapshotState(w)
	}

	// Vehicle arena, column-major (the v2 format delta): the arena
	// serializes its SoA columns directly, pending movements included.
	e.arena.SnapshotState(w)

	// Junctions: phase pair, dark-mode state, service credits.
	for i := range e.juncs {
		js := &e.juncs[i]
		w.Int(int(js.current))
		w.Int(int(js.prev))
		w.Int32(js.darkSince)
		w.Int(js.darkPol.AllRedSteps)
		w.Int(js.darkPol.GreenSteps)
		w.Int(js.darkPol.AmberSteps)
		for _, c := range js.credits {
			w.Float64(c)
		}
	}

	// Observation slab; under a sensor the separate truth slab follows.
	writeObsSlab(w, e.obsSlab)
	w.Bool(e.sensor != nil)
	if e.sensor != nil {
		writeObsSlab(w, e.truthSlab[:e.numLinks])
	}

	// Pending dirty-road set, in marking order: the order fixes the
	// refresh (and hence sensor-draw) sequence of the next mini-slot.
	w.Int(len(e.dirtyRoads))
	for _, rd := range e.dirtyRoads {
		w.Int32(rd)
	}

	// Stateful collaborators, each in its own bounded section.
	writeComponent(w, e.cfg.Demand)
	writeComponent(w, e.cfg.Router)
	writeComponent(w, e.sensor)
	w.Section(func(cw *snap.Writer) {
		if e.batchCtrl != nil {
			writeComponent(cw, e.batchCtrl)
			return
		}
		for i := range e.juncs {
			writeComponent(cw, e.juncs[i].ctrl)
		}
	})
	return w.Bytes()
}

// Restore rewinds the engine to the state a prior Snapshot captured.
// The engine must be built from an equivalent Config (same network
// structure, controller factory, sensor and event schedule) — the
// snapshot's structural fingerprint is validated and mismatches
// rejected. Like Reset, controllers are rebuilt through the factory
// (their captured state is then restored into the fresh instances) and
// registered hooks are discarded — they belong to the interrupted
// run's recorders, so a caller that wants to keep listening must
// re-register via AddHooks after every Restore
// (TestRestoreHookReregistration pins this). An installed telemetry
// recorder is the exception: it survives and re-arms — its series are
// rewound (the observation history before the checkpoint is not part
// of the snapshot's semantic state) and recording resumes at the
// restored step (TestRestoreRearmsTelemetry). On error the engine
// state is undefined; Reset it or discard it.
func (e *Engine) Restore(data []byte) error {
	r := snap.NewReader(data)
	if m := r.Uint64(); r.Err() == nil && m != snapshotMagic {
		return fmt.Errorf("sim: not an engine snapshot (magic %#x)", m)
	}
	if v := r.Uint64(); r.Err() == nil && v != snapshotVersion {
		return fmt.Errorf("sim: snapshot version %d, engine supports %d", v, snapshotVersion)
	}
	if err := e.checkFingerprint(r); err != nil {
		return err
	}

	// Fresh controllers with a full sweep armed; their captured state is
	// restored below, and the first post-restore sweep recomputes the
	// gain caches bit-exactly (pure functions of the observation).
	if err := e.buildControlPlane(); err != nil {
		return err
	}

	e.step = r.Int()
	e.totals.Spawned = r.Int()
	e.totals.Entered = r.Int()
	e.totals.Exited = r.Int()
	e.totals.Served = r.Int()
	e.totals.RouteFallbacks = r.Int()
	e.finalized = r.Bool()
	e.evCursor = r.Int()

	for i := range e.roads {
		rs := &e.roads[i]
		rs.effCap = r.Int()
		rs.occupancy = r.Int()
		rs.queuedTotal = r.Int()
		for t := 0; t < numTurns; t++ {
			rs.transit[t] = r.Int()
			rs.mixedCount[t] = r.Int()
			rs.joins[t] = r.Int()
		}
		for t := 0; t < numTurns; t++ {
			if err := rs.lanes[t].RestoreState(r); err != nil {
				return fmt.Errorf("sim: road %d lane %d: %w", i, t, err)
			}
		}
		if err := rs.mixed.RestoreState(r); err != nil {
			return fmt.Errorf("sim: road %d mixed lane: %w", i, err)
		}
		if err := rs.spawn.RestoreState(r); err != nil {
			return fmt.Errorf("sim: road %d spawn queue: %w", i, err)
		}
		if err := rs.tail.RestoreState(r); err != nil {
			return fmt.Errorf("sim: road %d travel heap: %w", i, err)
		}
	}
	// netQueued is derived state, not part of the stream: rebuild it
	// from the restored per-road counters.
	e.netQueued = 0
	for i := range e.roads {
		e.netQueued += e.roads[i].queuedTotal
	}

	if err := e.arena.RestoreState(r); err != nil {
		return fmt.Errorf("sim: restore vehicle arena: %w", err)
	}
	// The serve-skip cache is derived state like netQueued: clearing it
	// forces full passes, which over idle junctions perform exactly the
	// idle tick's updates — conservative, never divergent (DESIGN.md
	// §16).
	e.resetServeSkip()

	for i := range e.juncs {
		js := &e.juncs[i]
		js.current = signal.Phase(r.Int())
		js.prev = signal.Phase(r.Int())
		js.darkSince = r.Int32()
		js.darkPol.AllRedSteps = r.Int()
		js.darkPol.GreenSteps = r.Int()
		js.darkPol.AmberSteps = r.Int()
		for li := range js.credits {
			js.credits[li] = r.Float64()
		}
	}

	readObsSlab(r, e.obsSlab)
	sensed := r.Bool()
	if r.Err() == nil && sensed != (e.sensor != nil) {
		return fmt.Errorf("sim: snapshot sensed=%v, engine sensed=%v", sensed, e.sensor != nil)
	}
	if sensed {
		readObsSlab(r, e.truthSlab[:e.numLinks])
	}

	// Dirty set: clear the engine's current flags, then install the
	// snapshot's list verbatim (order fixes the next refresh sequence).
	for _, rd := range e.dirtyRoads {
		e.roadDirty[rd] = false
	}
	e.dirtyRoads = e.dirtyRoads[:0]
	nd := r.Int()
	if r.Err() == nil && (nd < 0 || nd > len(e.roads)) {
		return fmt.Errorf("sim: snapshot dirty-road count %d for %d roads", nd, len(e.roads))
	}
	for i := 0; i < nd && r.Err() == nil; i++ {
		rd := r.Int32()
		if rd < 0 || int(rd) >= len(e.roads) {
			return fmt.Errorf("sim: snapshot dirty road %d out of range", rd)
		}
		e.dirtyRoads = append(e.dirtyRoads, rd)
		e.roadDirty[rd] = true
	}

	// Refresh stamps only deduplicate within the step that wrote them;
	// at inter-step points every stamp is stale, so -1 is equivalent.
	for i := range e.linkSeen {
		e.linkSeen[i] = -1
	}

	// Hooks belong to the interrupted run's recorders, exactly as in
	// Reset: discard them.
	clear(e.hooks)
	e.hooks = e.hooks[:0]
	e.hasPhaseHook, e.hasExitHook, e.hasStepHook = false, false, false

	// The telemetry recorder survives the jump but its series restart:
	// recorded history is observation-only and not in the snapshot.
	if e.telem != nil {
		e.rearmTelemetry()
	}

	if err := readComponent(r, e.cfg.Demand, "demand process"); err != nil {
		return err
	}
	if err := readComponent(r, e.cfg.Router, "router"); err != nil {
		return err
	}
	if err := readComponent(r, e.sensor, "sensor"); err != nil {
		return err
	}
	cr := r.Section()
	if e.batchCtrl != nil {
		if err := readComponent(cr, e.batchCtrl, "batched controller"); err != nil {
			return err
		}
	} else {
		for i := range e.juncs {
			what := fmt.Sprintf("controller %q", e.juncs[i].info.Label)
			if err := readComponent(cr, e.juncs[i].ctrl, what); err != nil {
				return err
			}
		}
	}
	if err := cr.Close(); err != nil {
		return fmt.Errorf("sim: restore controllers: %w", err)
	}
	return r.Close()
}

// checkFingerprint validates the snapshot's structural facts against
// the engine, so a restore into an incompatible engine fails loudly
// instead of silently diverging.
func (e *Engine) checkFingerprint(r *snap.Reader) error {
	if n := r.Int(); r.Err() == nil && n != len(e.roads) {
		return fmt.Errorf("sim: snapshot has %d roads, engine has %d", n, len(e.roads))
	}
	if n := r.Int(); r.Err() == nil && n != len(e.juncs) {
		return fmt.Errorf("sim: snapshot has %d junctions, engine has %d", n, len(e.juncs))
	}
	if n := r.Int(); r.Err() == nil && n != e.numLinks {
		return fmt.Errorf("sim: snapshot has %d links, engine has %d", n, e.numLinks)
	}
	if dt := r.Float64(); r.Err() == nil && dt != e.dt {
		return fmt.Errorf("sim: snapshot Δt=%v, engine Δt=%v", dt, e.dt)
	}
	if m := r.Bool(); r.Err() == nil && m != e.cfg.MixedLanes {
		return fmt.Errorf("sim: snapshot mixed-lanes=%v, engine mixed-lanes=%v", m, e.cfg.MixedLanes)
	}
	if s := r.Int(); r.Err() == nil && s != e.cfg.StartupLostSteps {
		return fmt.Errorf("sim: snapshot startup-lost-steps=%d, engine has %d", s, e.cfg.StartupLostSteps)
	}
	if b := r.Bool(); r.Err() == nil && b != (e.batchCtrl != nil) {
		return fmt.Errorf("sim: snapshot batched=%v, engine batched=%v", b, e.batchCtrl != nil)
	}
	if f := r.String(); r.Err() == nil && f != e.cfg.Controllers.Name() {
		return fmt.Errorf("sim: snapshot controller family %q, engine has %q", f, e.cfg.Controllers.Name())
	}
	sn := ""
	if e.sensor != nil {
		sn = e.sensor.Name()
	}
	if s := r.String(); r.Err() == nil && s != sn {
		return fmt.Errorf("sim: snapshot sensor %q, engine has %q", s, sn)
	}
	nt := 0
	if e.events != nil {
		nt = len(e.events.Transitions())
	}
	if n := r.Int(); r.Err() == nil && n != nt {
		return fmt.Errorf("sim: snapshot schedule has %d transitions, engine schedule has %d", n, nt)
	}
	return r.Err()
}

// snapshotSizeHint estimates the stream size so Snapshot allocates the
// buffer once; an underestimate only costs an append regrow.
func (e *Engine) snapshotSizeHint() int {
	const (
		roadFixed = 8 * (3 + 3*numTurns + 5 + 2) // counters + lane/heap headers
		vehBytes  = 8*7 + 4 + 4
		linkBytes = 8 * (8 + 2*signal.NumTurns)
	)
	hint := 512 + len(e.roads)*roadFixed + e.arena.Len()*(vehBytes+24) +
		e.numLinks*linkBytes + len(e.juncs)*64
	if e.sensor != nil {
		hint += e.numLinks * linkBytes
	}
	return hint
}

// writeObsSlab serializes a link-observation slab in full — the dynamic
// queue fields and the engine-owned capacity/service fields (capacity
// events mutate the latter mid-run).
func writeObsSlab(w *snap.Writer, links []signal.LinkObs) {
	for i := range links {
		o := &links[i]
		w.Int(o.Queue)
		w.Int(o.InTransit)
		w.Int(o.ApproachQueue)
		w.Int(o.OutQueue)
		w.Int(o.OutOccupancy)
		w.Int(o.OutCapacity)
		w.Int(o.InCapacity)
		w.Float64(o.Mu)
		for t := 0; t < signal.NumTurns; t++ {
			w.Int(o.OutTurnQueue[t])
		}
		for t := 0; t < signal.NumTurns; t++ {
			w.Int(o.OutTurnJoins[t])
		}
	}
}

// readObsSlab is writeObsSlab's inverse.
func readObsSlab(r *snap.Reader, links []signal.LinkObs) {
	for i := range links {
		o := &links[i]
		o.Queue = r.Int()
		o.InTransit = r.Int()
		o.ApproachQueue = r.Int()
		o.OutQueue = r.Int()
		o.OutOccupancy = r.Int()
		o.OutCapacity = r.Int()
		o.InCapacity = r.Int()
		o.Mu = r.Float64()
		for t := 0; t < signal.NumTurns; t++ {
			o.OutTurnQueue[t] = r.Int()
		}
		for t := 0; t < signal.NumTurns; t++ {
			o.OutTurnJoins[t] = r.Int()
		}
	}
}

// writeComponent records a collaborator's state in its own bounded
// section; stateless (or absent) collaborators get an empty one, so the
// layout does not shift with the configuration.
func writeComponent(w *snap.Writer, v any) {
	w.Section(func(sw *snap.Writer) {
		if s, ok := v.(snap.Snapshotter); ok {
			s.SnapshotState(sw)
		}
	})
}

// readComponent is writeComponent's inverse: the collaborator consumes
// its bounded section exactly. A stateful snapshot section paired with a
// stateless collaborator (or vice versa) fails the Close/decode check.
func readComponent(r *snap.Reader, v any, what string) error {
	sub := r.Section()
	if s, ok := v.(snap.Snapshotter); ok {
		if err := s.RestoreState(sub); err != nil {
			return fmt.Errorf("sim: restore %s: %w", what, err)
		}
	}
	if err := sub.Close(); err != nil {
		return fmt.Errorf("sim: restore %s: %w", what, err)
	}
	return nil
}
