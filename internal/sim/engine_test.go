package sim

import (
	"testing"

	"utilbp/internal/fixedtime"
	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/signal"
	"utilbp/internal/vehicle"
)

// staticCtrl always returns the same phase.
type staticCtrl struct{ phase signal.Phase }

func (s staticCtrl) Name() string                    { return "static" }
func (s staticCtrl) Decide(*signal.Obs) signal.Phase { return s.phase }

func staticFactory(p signal.Phase) signal.Factory {
	return signal.FactoryFunc{Label: "static", Build: func(signal.JunctionInfo) (signal.Controller, error) {
		return staticCtrl{p}, nil
	}}
}

// fixedRoute interns a single plan into a fresh table and returns the
// router/table pair a Config needs to hand that plan to every vehicle.
func fixedRoute(p vehicle.Plan) (FixedRouter, *vehicle.RouteTable) {
	table := vehicle.NewRouteTable()
	return FixedRouter{R: table.Intern(p)}, table
}

func grid1x1(t *testing.T) *network.GridNetwork {
	t.Helper()
	spec := network.DefaultGridSpec()
	spec.Rows, spec.Cols = 1, 1
	spec.Capacity = 30
	g, err := network.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func grid1x1Cap(t *testing.T, cap int) *network.GridNetwork {
	t.Helper()
	spec := network.DefaultGridSpec()
	spec.Rows, spec.Cols = 1, 1
	spec.Capacity = cap
	g, err := network.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	g := grid1x1(t)
	demand := NewPoissonDemand(rng.New(1), ConstantRate(0.1))
	cases := []Config{
		{Controllers: staticFactory(1), Demand: demand},
		{Net: g.Network, Demand: demand},
		{Net: g.Network, Controllers: staticFactory(1)},
		{Net: g.Network, Controllers: staticFactory(1), Demand: demand, DeltaT: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := New(Config{Net: g.Network, Controllers: staticFactory(1), Demand: demand}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestStraightFlowExits drives north-side traffic through a single
// junction with the N/S straight+left phase always green: every vehicle
// must eventually exit.
func TestStraightFlowExits(t *testing.T) {
	g := grid1x1(t)
	north := g.Entries(network.North)[0]
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(1), // c1 = N/S straight+left
		Demand:      NewPoissonDemand(rng.New(5), ConstantRate(0.2, north)),
		Router:      StraightRouter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(600)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tot := e.Totals()
	if tot.Spawned == 0 {
		t.Fatal("no vehicles spawned")
	}
	// Demand 0.2 veh/s < µ=1, so the junction keeps up: nearly all
	// spawned vehicles that had time to cross must have exited.
	if tot.Exited == 0 {
		t.Fatal("no vehicles exited")
	}
	if tot.Exited < tot.Spawned-20 {
		t.Fatalf("throughput too low: spawned %d exited %d", tot.Spawned, tot.Exited)
	}
	// Straight-through vehicles pass exactly one junction.
	for _, v := range e.Vehicles() {
		if v.Done() && v.Junctions != 1 {
			t.Fatalf("vehicle %d crossed %d junctions, want 1", v.ID, v.Junctions)
		}
	}
}

// TestAmberNeverServes checks that a controller stuck on amber serves no
// vehicle at all.
func TestAmberNeverServes(t *testing.T) {
	g := grid1x1(t)
	north := g.Entries(network.North)[0]
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(signal.Amber),
		Demand:      NewPoissonDemand(rng.New(5), ConstantRate(0.3, north)),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(300)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tot := e.Totals()
	if tot.Served != 0 || tot.Exited != 0 {
		t.Fatalf("amber served vehicles: served=%d exited=%d", tot.Served, tot.Exited)
	}
	// The approach queue must have built up.
	if e.ApproachQueue(north) == 0 {
		t.Fatal("no queue built up under amber")
	}
}

// TestWrongPhaseDoesNotServeCrossTraffic: phase c3 (E/W) never serves the
// north approach.
func TestWrongPhaseStarvesCrossTraffic(t *testing.T) {
	g := grid1x1(t)
	north := g.Entries(network.North)[0]
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(3), // E/W straight+left
		Demand:      NewPoissonDemand(rng.New(5), ConstantRate(0.3, north)),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(300)
	if e.Totals().Exited != 0 {
		t.Fatal("cross traffic served by wrong phase")
	}
}

// TestCapacityBlocking fills a tiny entry road and checks occupancy never
// exceeds capacity while the spawn queue absorbs the overflow.
func TestCapacityBlocking(t *testing.T) {
	g := grid1x1Cap(t, 5)
	north := g.Entries(network.North)[0]
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(signal.Amber), // nothing ever served
		Demand:      NewPoissonDemand(rng.New(5), ConstantRate(1.0, north)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		e.Run(1)
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if occ := e.Occupancy(north); occ > 5 {
			t.Fatalf("occupancy %d exceeds capacity 5", occ)
		}
	}
	if e.SpawnQueueLen(north) == 0 {
		t.Fatal("spawn queue should hold the overflow")
	}
}

// TestDownstreamBlocking: with the outgoing road full, service must stop
// even though the phase is green.
func TestDownstreamBlocking(t *testing.T) {
	// 1x2 grid: traffic entering from the west boundary crosses J00 and
	// continues east to J01. Block J01 by keeping it amber; J00's E/W
	// phase is green. The internal road J00->J01 has capacity 4.
	spec := network.DefaultGridSpec()
	spec.Rows, spec.Cols = 1, 2
	spec.Capacity = 4
	g, err := network.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	j00 := g.JunctionAt(0, 0)
	factory := signal.FactoryFunc{Label: "split", Build: func(info signal.JunctionInfo) (signal.Controller, error) {
		if info.Label == "J00" {
			return staticCtrl{3}, nil // E/W straight+left green
		}
		return staticCtrl{signal.Amber}, nil
	}}
	west := g.Entries(network.West)[0]
	e, err := New(Config{
		Net:         g.Network,
		Controllers: factory,
		Demand:      NewPoissonDemand(rng.New(3), ConstantRate(0.5, west)),
	})
	if err != nil {
		t.Fatal(err)
	}
	internal := g.Junction(j00).Out[network.East]
	for i := 0; i < 400; i++ {
		e.Run(1)
		if occ := e.Occupancy(internal); occ > 4 {
			t.Fatalf("internal road occupancy %d exceeds capacity 4", occ)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if e.Occupancy(internal) != 4 {
		t.Fatalf("internal road should be saturated, occupancy=%d", e.Occupancy(internal))
	}
	if e.Totals().Exited != 0 {
		t.Fatal("vehicles escaped through an amber junction")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Totals, float64) {
		g := grid1x1(t)
		e, err := New(Config{
			Net:         g.Network,
			Controllers: fixedtime.Factory(fixedtime.Options{GreenSteps: 10, AmberSteps: 4}),
			Demand:      NewPoissonDemand(rng.New(77), ConstantRate(0.15)),
			Router:      StraightRouter{},
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(1200)
		e.FinalizeWaits()
		wait := 0.0
		for _, v := range e.Vehicles() {
			wait += v.QueueWait
		}
		return e.Totals(), wait
	}
	t1, w1 := run()
	t2, w2 := run()
	if t1 != t2 || w1 != w2 {
		t.Fatalf("runs diverged: %+v/%v vs %+v/%v", t1, w1, t2, w2)
	}
}

func TestFixedTimeServesAllApproaches(t *testing.T) {
	g := grid1x1(t)
	e, err := New(Config{
		Net:         g.Network,
		Controllers: fixedtime.Factory(fixedtime.Options{GreenSteps: 15, AmberSteps: 4}),
		Demand:      NewPoissonDemand(rng.New(21), ConstantRate(0.1)),
		Router:      StraightRouter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2000)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tot := e.Totals()
	if tot.Exited < tot.Spawned*3/4 {
		t.Fatalf("throughput too low under light load: spawned %d exited %d", tot.Spawned, tot.Exited)
	}
}

func TestTurningRoutesCrossMultipleJunctions(t *testing.T) {
	// 2x2 grid, vehicle enters from north on column 0 and turns left at
	// the second junction (row 1), heading east, exiting the east side:
	// 3 junctions total... row0-col0, row1-col0 (turn), then row1-col1.
	spec := network.DefaultGridSpec()
	spec.Rows, spec.Cols = 2, 2
	g, err := network.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	north := g.Entries(network.North)[0]
	sched := NewScheduledDemand()
	sched.Add(north, 0, 1)
	router, routes := fixedRoute(vehicle.OneTurn(network.Left, 1))
	e, err := New(Config{
		Net:         g.Network,
		Controllers: fixedtime.Factory(fixedtime.Options{GreenSteps: 10, AmberSteps: 2}),
		Demand:      sched,
		Router:      router,
		Routes:      routes,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2500)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	vs := e.Vehicles()
	if len(vs) != 1 {
		t.Fatalf("vehicles = %d, want 1", len(vs))
	}
	v := vs[0]
	if !v.Done() {
		t.Fatalf("vehicle stuck: %+v", v)
	}
	if v.Junctions != 3 {
		t.Fatalf("vehicle crossed %d junctions, want 3", v.Junctions)
	}
}

func TestFinalizeWaitsCountsQueued(t *testing.T) {
	g := grid1x1(t)
	north := g.Entries(network.North)[0]
	sched := NewScheduledDemand()
	sched.Add(north, 0, 3)
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(signal.Amber),
		Demand:      sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(100)
	e.FinalizeWaits()
	// Travel time on the 300m entry road is ~21.6s; the three vehicles
	// queue afterwards and wait until t=100.
	for _, v := range e.Vehicles() {
		if v.QueueWait <= 0 {
			t.Fatalf("vehicle %d accrued no wait: %+v", v.ID, v)
		}
		if v.QueueWait > 100 {
			t.Fatalf("vehicle %d wait %v exceeds horizon", v.ID, v.QueueWait)
		}
	}
	// Idempotent.
	before := e.Vehicles()[0].QueueWait
	e.FinalizeWaits()
	if e.Vehicles()[0].QueueWait != before {
		t.Fatal("FinalizeWaits not idempotent")
	}
}

func TestHooksFire(t *testing.T) {
	g := grid1x1(t)
	north := g.Entries(network.North)[0]
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(1),
		Demand:      NewPoissonDemand(rng.New(5), ConstantRate(0.3, north)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var phases, exits, steps int
	e.AddHooks(Hooks{
		Phase: func(j network.NodeID, step int, p signal.Phase) { phases++ },
		Exit:  func(v *vehicle.Vehicle) { exits++ },
		Step:  func(e *Engine, step int) { steps++ },
	})
	e.Run(200)
	if phases != 200 {
		t.Errorf("phase hooks = %d, want 200", phases)
	}
	if steps != 200 {
		t.Errorf("step hooks = %d, want 200", steps)
	}
	if exits == 0 || exits != e.Totals().Exited {
		t.Errorf("exit hooks = %d, totals %d", exits, e.Totals().Exited)
	}
}

func TestInvalidControllerPhaseBecomesAmber(t *testing.T) {
	g := grid1x1(t)
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(99),
		Demand:      NewPoissonDemand(rng.New(5), ConstantRate(0.2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(50)
	if got := e.CurrentPhase(g.JunctionAt(0, 0)); got != signal.Amber {
		t.Fatalf("invalid phase sanitized to %v, want amber", got)
	}
	if e.Totals().Served != 0 {
		t.Fatal("invalid phase served vehicles")
	}
}

// TestMixedLanesHOLBlocking: in mixed-lane mode a leading left-turner
// blocks a straight-bound follower when only the straight link is green.
func TestMixedLanesHOLBlocking(t *testing.T) {
	g := grid1x1(t)
	north := g.Entries(network.North)[0]
	sched := NewScheduledDemand()
	sched.Add(north, 0, 2) // two vehicles, same slot: FIFO order by ID
	table := vehicle.NewRouteTable()
	routes := []vehicle.RouteID{
		table.Intern(vehicle.OneTurn(network.Right, 0)), // head: right turn
		vehicle.StraightRoute,                           // follower: straight
	}
	next := 0
	router := RouteFunc(func(network.RoadID, float64) vehicle.RouteID {
		r := routes[next%len(routes)]
		next++
		return r
	})
	run := func(mixed bool) Totals {
		e, err := New(Config{
			Net:         g.Network,
			Controllers: staticFactory(1), // c1: N/S straight+left — no right link
			Demand:      sched,
			Router:      router,
			Routes:      table,
			MixedLanes:  mixed,
		})
		if err != nil {
			t.Fatal(err)
		}
		next = 0
		e.Run(200)
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return e.Totals()
	}
	dedicated := run(false)
	mixed := run(true)
	// Dedicated lanes: the straight vehicle bypasses the right-turner.
	if dedicated.Exited != 1 {
		t.Fatalf("dedicated lanes exited %d, want 1 (the straight vehicle)", dedicated.Exited)
	}
	// Mixed lane: the right-turner at the head blocks the straight one.
	if mixed.Exited != 0 {
		t.Fatalf("mixed lanes exited %d, want 0 (HOL blocking)", mixed.Exited)
	}
}

// TestServiceRateLimitsThroughput: µ=1, one active link -> at most one
// service per second from that lane.
func TestServiceRateLimitsThroughput(t *testing.T) {
	g := grid1x1(t)
	north := g.Entries(network.North)[0]
	sched := NewScheduledDemand()
	sched.Add(north, 0, 20)
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(1),
		Demand:      sched,
		Router:      StraightRouter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Travel time 300m @ 13.9 = ~21.6s, so by step 25 everyone queues.
	e.Run(25)
	prevExited := e.Totals().Exited
	for i := 0; i < 10; i++ {
		e.Run(1)
		now := e.Totals().Exited
		if now-prevExited > 1 {
			t.Fatalf("served %d vehicles in one slot with µ=1", now-prevExited)
		}
		prevExited = now
	}
}

func TestCurrentPhaseUnknownJunction(t *testing.T) {
	g := grid1x1(t)
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(1),
		Demand:      NewScheduledDemand(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.CurrentPhase(network.NodeID(999)); got != signal.Amber {
		t.Fatalf("unknown junction phase = %v", got)
	}
}

func TestStateQueriesOutOfRange(t *testing.T) {
	g := grid1x1(t)
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(1),
		Demand:      NewScheduledDemand(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.QueueLen(-1, network.Left) != 0 || e.ApproachQueue(9999) != 0 ||
		e.Occupancy(-3) != 0 || e.SpawnQueueLen(9999) != 0 {
		t.Fatal("out-of-range queries should return 0")
	}
}

func TestRunFor(t *testing.T) {
	g := grid1x1(t)
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(1),
		Demand:      NewScheduledDemand(),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(60)
	if e.Step() != 60 || e.Time() != 60 {
		t.Fatalf("RunFor(60): step=%d time=%v", e.Step(), e.Time())
	}
}
