// Engine behavior under an armed disruption schedule (internal/event,
// DESIGN.md §12): capacity incidents clamp and restore the effective
// capacity, dark-mode takes junctions through all-red into fixed-time
// and hands them back cleanly, and disrupted runs stay bit-for-bit
// deterministic across Reset, ResetWith schedule swaps and both
// controller dispatch modes — with zero heap allocations on the warmed
// stepping path.
package sim_test

import (
	"reflect"
	"testing"

	"utilbp/internal/event"
	"utilbp/internal/network"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
)

// disruptedSetup returns the paper grid with all four disruption kinds
// armed inside the first 600 s: a 60% capacity incident on the central
// approach (100–300 s), a dark junction at the grid center (350–430 s
// scheduled), a blanked-detector outage on the incident's neighborhood
// and a demand surge riding across the incident window.
func disruptedSetup(t testing.TB, seed uint64) scenario.Setup {
	t.Helper()
	setup := scenario.Default()
	setup.Seed = seed
	out, err := setup.WithCentralIncident(100, 200, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	out.Events = append(out.Events,
		event.Dark("J11", 350, 80),
		event.Outage("J00->J01", 120, 100, sensing.OutageBlank),
		event.Surge(50, 300, 1.4),
	)
	return out
}

// newDisrupted builds a fresh engine for the setup with its schedule
// armed, exactly as experiment.Prepare wires it.
func newDisrupted(t testing.TB, setup scenario.Setup, pattern scenario.Pattern) (*sim.Engine, *scenario.Instance) {
	t.Helper()
	built, err := setup.Build(pattern)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      built.Demand,
		Router:      built.Router,
		Routes:      built.Routes,
		Sensor:      built.Sensor,
		Control:     built.Setup.Control,
		Events:      built.Events,
	})
	if err != nil {
		t.Fatal(err)
	}
	return engine, built
}

// compareEngines requires two engines to agree on totals, the vehicle
// arena and every road's occupancy, queue and effective capacity.
func compareEngines(t *testing.T, label string, got, want *sim.Engine) {
	t.Helper()
	if got.Totals() != want.Totals() {
		t.Fatalf("%s: totals %+v != %+v", label, got.Totals(), want.Totals())
	}
	if !reflect.DeepEqual(got.Vehicles(), want.Vehicles()) {
		t.Fatalf("%s: vehicle arenas diverge", label)
	}
	for rid := range want.Network().Roads {
		id := network.RoadID(rid)
		if got.Occupancy(id) != want.Occupancy(id) ||
			got.ApproachQueue(id) != want.ApproachQueue(id) ||
			got.EffectiveCapacity(id) != want.EffectiveCapacity(id) {
			t.Fatalf("%s: road %d diverges (occ %d/%d queue %d/%d effcap %d/%d)", label, rid,
				got.Occupancy(id), want.Occupancy(id),
				got.ApproachQueue(id), want.ApproachQueue(id),
				got.EffectiveCapacity(id), want.EffectiveCapacity(id))
		}
	}
}

// TestDisruptedResetReplaysIdentically extends the Reset contract to
// disrupted runs: the schedule survives Reset (cursor rewound, effective
// capacities and dark state restored) and a replay matches a freshly
// built disrupted engine bit-for-bit, for the original and a new seed.
func TestDisruptedResetReplaysIdentically(t *testing.T) {
	const steps = 600
	engine, _ := newDisrupted(t, disruptedSetup(t, 3), scenario.PatternII)
	engine.Run(steps)
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	for _, seed := range []uint64{3, 4} {
		if err := engine.Reset(seed); err != nil {
			t.Fatal(err)
		}
		engine.Run(steps)
		if err := engine.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fresh, _ := newDisrupted(t, disruptedSetup(t, seed), scenario.PatternII)
		fresh.Run(steps)
		compareEngines(t, "reset replay", engine, fresh)
	}
}

// TestResetWithSwapsSchedule pins the engine-cache path for disrupted
// cells: a clean engine rewound with a schedule (and the disrupted
// scenario's surged demand) matches a fresh disrupted engine, and
// rewinding back with ClearEvents restores the undisrupted behavior —
// including the effective capacities the incident had clamped.
func TestResetWithSwapsSchedule(t *testing.T) {
	const steps = 500
	clean := scenario.Default()
	clean.Seed = 5
	builtClean, err := clean.Build(scenario.PatternII)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:         builtClean.Grid.Network,
		Controllers: clean.UtilBP(),
		Demand:      builtClean.Demand,
		Router:      builtClean.Router,
		Routes:      builtClean.Routes,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(steps)

	dis := disruptedSetup(t, 5)
	builtDis, err := dis.Build(scenario.PatternII)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.ResetWith(5, sim.ResetOptions{
		Controllers: dis.UtilBP(),
		Demand:      builtDis.Demand,
		Router:      builtDis.Router,
		Routes:      builtDis.Routes,
		Sensor:      builtDis.Sensor,
		Events:      builtDis.Events,
	}); err != nil {
		t.Fatal(err)
	}
	engine.Run(steps)
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	freshDis, _ := newDisrupted(t, disruptedSetup(t, 5), scenario.PatternII)
	freshDis.Run(steps)
	compareEngines(t, "armed via ResetWith", engine, freshDis)

	// Swap the schedule back out; the engine must behave like it never
	// carried one.
	if err := engine.ResetWith(5, sim.ResetOptions{
		Controllers: clean.UtilBP(),
		Demand:      builtClean.Demand,
		Router:      builtClean.Router,
		Routes:      builtClean.Routes,
		ClearSensor: true,
		ClearEvents: true,
	}); err != nil {
		t.Fatal(err)
	}
	if engine.Events() != nil {
		t.Fatal("ClearEvents left a schedule armed")
	}
	engine.Run(steps)
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	freshClean, err := clean.Build(scenario.PatternII)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.New(sim.Config{
		Net:         freshClean.Grid.Network,
		Controllers: clean.UtilBP(),
		Demand:      freshClean.Demand,
		Router:      freshClean.Router,
		Routes:      freshClean.Routes,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(steps)
	compareEngines(t, "cleared via ResetWith", engine, ref)
}

// TestDisruptedBatchedMatchesPerJunction extends the control-plane
// equivalence contract to disrupted runs: with incidents, a dark
// junction, a sensor outage and a surge armed, batched dispatch must
// produce the same run as the per-junction loop — the dark-mode
// override lives at the shared actuation point, so both paths must
// degrade and recover identically.
func TestDisruptedBatchedMatchesPerJunction(t *testing.T) {
	const steps = 600
	run := func(mode signal.ControlMode) *sim.Engine {
		setup := disruptedSetup(t, 7)
		setup.Control = mode
		engine, _ := newDisrupted(t, setup, scenario.PatternII)
		engine.Run(steps)
		if err := engine.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return engine
	}
	perJunction := run(signal.ControlPerJunction)
	batched := run(signal.ControlBatched)
	if !batched.Batched() {
		t.Fatal("batched engine did not take the batched dispatch path")
	}
	compareEngines(t, "batched vs per-junction", batched, perJunction)
}

// TestIncidentEffectiveCapacityWindow walks the incident lifecycle on
// the engine: full capacity before onset, the clamped effective
// capacity (rounded, floored at 1) inside the window, and the road's
// immutable capacity restored after the revert transition.
func TestIncidentEffectiveCapacityWindow(t *testing.T) {
	setup := scenario.Default()
	setup.Seed = 2
	setup, err := setup.WithCentralIncident(100, 200, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	engine, built := newDisrupted(t, setup, scenario.PatternII)
	rid := scenario.EastApproach(built.Grid, scenario.TopRight(built.Grid))
	full := built.Grid.Network.Road(rid).Capacity
	reduced := int(0.4*float64(full) + 0.5)
	if reduced < 1 {
		reduced = 1
	}

	engine.Run(100) // steps 0..99: the onset transition is still pending
	if got := engine.EffectiveCapacity(rid); got != full {
		t.Fatalf("before onset: effective capacity %d, want %d", got, full)
	}
	engine.Run(1)
	if got := engine.EffectiveCapacity(rid); got != reduced {
		t.Fatalf("inside window: effective capacity %d, want %d", got, reduced)
	}
	engine.Run(199) // through step 299, the last disrupted mini-slot
	if got := engine.EffectiveCapacity(rid); got != reduced {
		t.Fatalf("end of window: effective capacity %d, want %d", got, reduced)
	}
	engine.Run(1) // step 300 applies the revert
	if got := engine.EffectiveCapacity(rid); got != full {
		t.Fatalf("after revert: effective capacity %d, want %d", got, full)
	}
	engine.Run(300)
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDarkModeFixedTimeFallback walks the dark-mode lifecycle at the
// grid center: offline from onset to the policy's release boundary,
// all-red (amber) first, then the fixed-time cycle of the default
// policy, and a clean handback — the junction reports Dark for exactly
// the [onset, release) window and the actuated phase tracks
// signal.DarkPolicy.Phase throughout.
func TestDarkModeFixedTimeFallback(t *testing.T) {
	const onset, end = 350, 430
	setup := scenario.Default()
	setup.Seed = 2
	setup.Events = []event.Spec{event.Dark("J11", onset, end-onset)}
	engine, built := newDisrupted(t, setup, scenario.PatternII)
	node := built.Grid.JunctionAt(1, 1)
	numPhases := built.Grid.Network.Junction(node).NumPhases()
	pol := signal.DarkPolicy{
		AllRedSteps: event.DefaultDarkAllRedSec,
		GreenSteps:  event.DefaultDarkGreenSec,
		AmberSteps:  event.DefaultDarkAmberSec,
	}
	release := pol.ReleaseStep(onset, end)
	if release <= end {
		t.Fatalf("release %d not beyond the scheduled end %d", release, end)
	}

	engine.Run(onset)
	if engine.Dark(node) {
		t.Fatal("dark before onset")
	}
	for step := onset; step < release; step++ {
		engine.Run(1)
		if !engine.Dark(node) {
			t.Fatalf("step %d: junction not dark inside [%d, %d)", step, onset, release)
		}
		want := pol.Phase(step-onset, numPhases)
		if got := engine.CurrentPhase(node); got != want {
			t.Fatalf("step %d: dark phase %v, want %v", step, got, want)
		}
		if step-onset < pol.AllRedSteps && want != signal.Amber {
			t.Fatalf("step %d: expected all-red amber during the first %d steps", step, pol.AllRedSteps)
		}
	}
	engine.Run(1)
	if engine.Dark(node) {
		t.Fatalf("still dark at release step %d", release)
	}
	engine.Run(300)
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestIncidentRecoveryDrains checks the robustness experiment's premise
// at the engine level: after a severe incident clears, UTIL-BP drains
// the accumulated queues back below their onset level well before the
// horizon (no post-incident blow-up).
func TestIncidentRecoveryDrains(t *testing.T) {
	base := scenario.Default()
	base.Seed = 6
	// Run at a stable operating point so pre-incident queues are in
	// steady state rather than still climbing toward saturation.
	base.DemandScale = 0.6
	setup, err := base.WithCentralIncident(300, 300, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	queued := func(e *sim.Engine) int {
		total := 0
		for rid := range e.Network().Roads {
			total += e.ApproachQueue(network.RoadID(rid))
		}
		return total
	}
	engine, _ := newDisrupted(t, setup, scenario.PatternII)
	engine.Run(300)
	onset := queued(engine)
	engine.Run(300) // disrupted regime
	degraded := queued(engine)
	if degraded <= onset {
		t.Fatalf("incident did not back traffic up: %d queued at clearance, %d at onset", degraded, onset)
	}
	// Recovered means the total queue dips back to its onset level at
	// some point after clearance (the experiment.MeasureRecovery
	// criterion); the instantaneous level keeps fluctuating around the
	// steady state afterwards, so the final sample alone would be noisy.
	low := degraded
	for i := 0; i < 900; i++ {
		engine.Run(1)
		if q := queued(engine); q < low {
			low = q
		}
	}
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if low > onset {
		t.Fatalf("queues did not recover: post-clearance minimum %d, %d at onset", low, onset)
	}
}

// TestDisruptedSteppingAllocs extends the zero-allocation contract to
// disrupted stepping: replaying a warmed horizon with the full
// four-kind schedule armed — transitions applying and reverting inside
// the window — must not touch the heap. Queue reservations stay sized
// to the pre-disruption capacity, the schedule is immutable and its
// cursor is the only mutable state.
func TestDisruptedSteppingAllocs(t *testing.T) {
	const horizon = 900
	setup := disruptedSetup(t, 7)
	built, err := setup.Build(scenario.PatternII)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:              built.Grid.Network,
		Controllers:      setup.UtilBP(),
		Demand:           built.Demand,
		Router:           built.Router,
		Routes:           built.Routes,
		Sensor:           built.Sensor,
		Events:           built.Events,
		ExpectedVehicles: built.ExpectedVehicles(horizon),
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(horizon) // grow lanes, heaps and arena across the disruption
	if err := engine.Reset(setup.Seed); err != nil {
		t.Fatal(err)
	}
	// AllocsPerRun performs one extra warmup call, so the replay stays
	// within the warmed horizon and never exceeds the grown capacity.
	allocs := testing.AllocsPerRun(horizon-1, func() {
		engine.Run(1)
	})
	if allocs != 0 {
		t.Fatalf("disrupted stepping allocates: %v allocs per step, want 0", allocs)
	}
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
