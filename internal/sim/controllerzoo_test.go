// Engine-level contracts of the controller zoo (DESIGN.md §13): the
// estimator state of BP-EST and the phase timers of the actuated
// gap-out controller live in the controllers, and the engine rebuilds
// controllers on every Reset/ResetWith — so a rewound engine must
// replay bit-for-bit like a freshly built one, with no estimator or
// timer state leaking across the rewind. External package: the tests
// drive the engine through the scenario layer like the harness does.
package sim_test

import (
	"reflect"
	"testing"

	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
)

// buildZoo builds a Pattern II engine with the given controller factory
// and optional sensor.
func buildZoo(t *testing.T, seed uint64, factory signal.Factory, sensor sensing.Sensor) *sim.Engine {
	t.Helper()
	setup := scenario.Default()
	setup.Seed = seed
	built, err := setup.Build(scenario.PatternII)
	if err != nil {
		t.Fatal(err)
	}
	if sensor != nil {
		sensor.Reseed(seed)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: factory,
		Demand:      built.Demand,
		Router:      built.Router,
		Routes:      built.Routes,
		Sensor:      sensor,
	})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// TestEstimatedBPResetReplay pins that BP-EST's turn-ratio estimator
// state survives the Reset replay contract bit-for-bit: rewinding an
// engine mid-convergence and re-running must match a freshly built
// engine exactly, on the same seed and on a different one, with and
// without a noisy sensor in front of the estimator.
func TestEstimatedBPResetReplay(t *testing.T) {
	const steps = 900
	setup := scenario.Default()
	for _, tc := range []struct {
		name     string
		mkSensor func() sensing.Sensor
	}{
		{"perfect", func() sensing.Sensor { return nil }},
		{"cv", func() sensing.Sensor {
			return sensing.NewConnectedVehicle(sensing.ConnectedVehicleOptions{Rate: 0.3, NoiseStd: 1})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			engine := buildZoo(t, 31, setup.EstimatedBP(0.05), tc.mkSensor())
			engine.Run(steps)
			for _, seed := range []uint64{31, 32} {
				if err := engine.Reset(seed); err != nil {
					t.Fatal(err)
				}
				engine.Run(steps)
				if err := engine.CheckInvariants(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				fresh := buildZoo(t, seed, setup.EstimatedBP(0.05), tc.mkSensor())
				fresh.Run(steps)
				if engine.Totals() != fresh.Totals() {
					t.Fatalf("seed %d: reset totals %+v != fresh totals %+v", seed, engine.Totals(), fresh.Totals())
				}
				if !reflect.DeepEqual(engine.Vehicles(), fresh.Vehicles()) {
					t.Fatalf("seed %d: estimator state leaked across Reset — arena diverges from fresh run", seed)
				}
			}
		})
	}
}

// TestGapOutTimerResetAcrossResetWith pins that the actuated
// controller's internal timers (green start, last demand, amber until)
// reset across both Reset and a ResetWith controller swap: a rewound
// engine matches a fresh one, and swapping gap-out in on a rewound
// UTIL-BP engine matches an engine built with gap-out from scratch.
func TestGapOutTimerResetAcrossResetWith(t *testing.T) {
	const steps = 900
	setup := scenario.Default()
	gap := func() signal.Factory { return setup.GapOut(8, 40, 3) }

	// Reset leg: mid-cycle timers must not survive the rewind.
	engine := buildZoo(t, 37, gap(), nil)
	engine.Run(steps)
	for _, seed := range []uint64{37, 38} {
		if err := engine.Reset(seed); err != nil {
			t.Fatal(err)
		}
		engine.Run(steps)
		if err := engine.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fresh := buildZoo(t, seed, gap(), nil)
		fresh.Run(steps)
		if engine.Totals() != fresh.Totals() {
			t.Fatalf("seed %d: reset totals %+v != fresh totals %+v", seed, engine.Totals(), fresh.Totals())
		}
		if !reflect.DeepEqual(engine.Vehicles(), fresh.Vehicles()) {
			t.Fatalf("seed %d: gap-out timers leaked across Reset — arena diverges from fresh run", seed)
		}
	}

	// ResetWith leg: swap gap-out onto a rewound UTIL-BP engine.
	swapped := buildZoo(t, 41, setup.UtilBP(), nil)
	swapped.Run(steps)
	if err := swapped.ResetWith(42, sim.ResetOptions{Controllers: gap()}); err != nil {
		t.Fatal(err)
	}
	swapped.Run(steps)
	if err := swapped.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	fresh := buildZoo(t, 42, gap(), nil)
	fresh.Run(steps)
	if swapped.Totals() != fresh.Totals() {
		t.Fatalf("controller swap: %+v != fresh %+v", swapped.Totals(), fresh.Totals())
	}
	if !reflect.DeepEqual(swapped.Vehicles(), fresh.Vehicles()) {
		t.Fatal("controller swap: vehicle arena diverges from fresh gap-out run")
	}
}
