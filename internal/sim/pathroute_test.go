package sim

import (
	"testing"

	"utilbp/internal/fixedtime"
	"utilbp/internal/network"
	"utilbp/internal/vehicle"
)

// TestPathRouteFollowsTurnPath: a vehicle given an explicit BFS-computed
// turn path crosses exactly the planned junctions and exits, with no
// fallback rerouting.
func TestPathRouteFollowsTurnPath(t *testing.T) {
	g, err := network.Grid(network.DefaultGridSpec())
	if err != nil {
		t.Fatal(err)
	}
	// West entry row 2 to north exit column 1: requires a right turn and
	// precise lane choices along the way.
	entry := g.Entries(network.West)[2]
	exit := g.Exits(network.North)[1]
	turns, err := g.TurnPath(entry, exit)
	if err != nil {
		t.Fatal(err)
	}
	if len(turns) < 2 {
		t.Fatalf("path too short to be interesting: %v", turns)
	}
	sched := NewScheduledDemand()
	sched.Add(entry, 0, 1)
	router, routes := fixedRoute(vehicle.PathPlan(turns...))
	e, err := New(Config{
		Net:         g.Network,
		Controllers: fixedtime.Factory(fixedtime.Options{GreenSteps: 10, AmberSteps: 2}),
		Demand:      sched,
		Router:      router,
		Routes:      routes,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(4000)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	v := e.Vehicles()[0]
	if !v.Done() {
		t.Fatalf("vehicle stuck: %+v", v)
	}
	if v.Junctions != len(turns) {
		t.Fatalf("crossed %d junctions, want %d", v.Junctions, len(turns))
	}
	if e.Totals().RouteFallbacks != 0 {
		t.Fatal("explicit path needed fallbacks")
	}
}
