// Sensing-layer contracts of the engine: the explicit Perfect sensor is
// bit-for-bit equal to the sensor-free fast path, sensors replay
// identically across Reset/ResetWith (the dedicated "sensing" RNG
// stream survives rewinds), installing a sensor never perturbs the
// demand or routing streams, and the sensed step loop stays
// allocation-free. External package: the tests drive the engine through
// the scenario layer like the experiment harness does.
package sim_test

import (
	"reflect"
	"testing"

	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/sim"
)

// buildSensed builds a Pattern II engine with the given sensor (nil for
// the perfect fast path), seeded for the run.
func buildSensed(t *testing.T, seed uint64, sensor sensing.Sensor) *sim.Engine {
	t.Helper()
	setup := scenario.Default()
	setup.Seed = seed
	built, err := setup.Build(scenario.PatternII)
	if err != nil {
		t.Fatal(err)
	}
	if sensor != nil {
		sensor.Reseed(seed)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      built.Demand,
		Router:      built.Router,
		Routes:      built.Routes,
		Sensor:      sensor,
	})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// TestPerfectSensorMatchesSensorFree pins the acceptance contract: an
// engine with the explicit sensing.Perfect sensor installed (separate
// truth array, per-link copy) reproduces the sensor-free fast path
// (observation aliasing the truth) bit-for-bit.
func TestPerfectSensorMatchesSensorFree(t *testing.T) {
	const steps = 900
	bare := buildSensed(t, 11, nil)
	sensed := buildSensed(t, 11, sensing.Perfect{})
	bare.Run(steps)
	sensed.Run(steps)
	for _, e := range []*sim.Engine{bare, sensed} {
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if bare.Totals() != sensed.Totals() {
		t.Fatalf("perfect sensor diverged: %+v vs %+v", bare.Totals(), sensed.Totals())
	}
	if !reflect.DeepEqual(bare.Vehicles(), sensed.Vehicles()) {
		t.Fatal("perfect sensor vehicle arena diverges from sensor-free run")
	}
}

// TestSensedResetReplaysIdentically extends the Reset replay contract
// to noisy sensors: a reset engine with a ConnectedVehicle sensor must
// replay bit-for-bit like a freshly built one — the sensing stream is
// re-derived from the run seed exactly as at construction.
func TestSensedResetReplaysIdentically(t *testing.T) {
	const steps = 900
	mkSensor := func() sensing.Sensor {
		return sensing.NewConnectedVehicle(sensing.ConnectedVehicleOptions{Rate: 0.3, NoiseStd: 1})
	}
	engine := buildSensed(t, 13, mkSensor())
	engine.Run(steps)

	for _, seed := range []uint64{13, 14} {
		if err := engine.Reset(seed); err != nil {
			t.Fatal(err)
		}
		engine.Run(steps)
		if err := engine.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fresh := buildSensed(t, seed, mkSensor())
		fresh.Run(steps)
		if engine.Totals() != fresh.Totals() {
			t.Fatalf("seed %d: reset totals %+v != fresh totals %+v", seed, engine.Totals(), fresh.Totals())
		}
		if !reflect.DeepEqual(engine.Vehicles(), fresh.Vehicles()) {
			t.Fatalf("seed %d: sensed reset arena diverges from fresh run", seed)
		}
	}
}

// TestResetWithSwapsSensor checks the sensor leg of the ResetWith
// contract behind sensor sweeps on cached engines: installing a sensor
// on a sensor-free engine, and clearing it again, both match freshly
// built engines bit-for-bit.
func TestResetWithSwapsSensor(t *testing.T) {
	const steps = 900
	engine := buildSensed(t, 17, nil)
	engine.Run(steps)

	// Install a loop detector on the rewound engine.
	if err := engine.ResetWith(18, sim.ResetOptions{
		Sensor: sensing.NewLoopDetector(sensing.LoopDetectorOptions{FailProb: 0.05}),
	}); err != nil {
		t.Fatal(err)
	}
	engine.Run(steps)
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	fresh := buildSensed(t, 18, sensing.NewLoopDetector(sensing.LoopDetectorOptions{FailProb: 0.05}))
	fresh.Run(steps)
	if engine.Totals() != fresh.Totals() {
		t.Fatalf("sensor install: %+v != fresh %+v", engine.Totals(), fresh.Totals())
	}
	if !reflect.DeepEqual(engine.Vehicles(), fresh.Vehicles()) {
		t.Fatal("sensor install: vehicle arena diverges from fresh run")
	}

	// Clear it again: back to the perfect fast path.
	if err := engine.ResetWith(19, sim.ResetOptions{ClearSensor: true}); err != nil {
		t.Fatal(err)
	}
	if engine.Sensor() != nil {
		t.Fatal("ClearSensor left a sensor installed")
	}
	engine.Run(steps)
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	bare := buildSensed(t, 19, nil)
	bare.Run(steps)
	if engine.Totals() != bare.Totals() {
		t.Fatalf("sensor clear: %+v != fresh %+v", engine.Totals(), bare.Totals())
	}
	if !reflect.DeepEqual(engine.Vehicles(), bare.Vehicles()) {
		t.Fatal("sensor clear: vehicle arena diverges from fresh run")
	}
}

// TestSensingStreamIndependence pins the dedicated-stream contract: a
// noisy sensor changes control decisions but must not perturb the
// demand or routing draws — same seed, same spawn sequence, same routes
// per vehicle.
func TestSensingStreamIndependence(t *testing.T) {
	const steps = 900
	bare := buildSensed(t, 23, nil)
	sensed := buildSensed(t, 23, sensing.NewConnectedVehicle(sensing.ConnectedVehicleOptions{Rate: 0.2, NoiseStd: 2}))
	bare.Run(steps)
	sensed.Run(steps)
	if err := sensed.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if bare.Totals().Spawned != sensed.Totals().Spawned {
		t.Fatalf("sensor perturbed the demand stream: %d vs %d spawned",
			bare.Totals().Spawned, sensed.Totals().Spawned)
	}
	bv, sv := bare.Vehicles(), sensed.Vehicles()
	if len(bv) != len(sv) {
		t.Fatalf("vehicle counts diverge: %d vs %d", len(bv), len(sv))
	}
	for i := range bv {
		if bv[i].Route != sv[i].Route || bv[i].SpawnedAt != sv[i].SpawnedAt || bv[i].EntryRoad != sv[i].EntryRoad {
			t.Fatalf("sensor perturbed the route/demand streams at vehicle %d: %+v vs %+v", i, bv[i], sv[i])
		}
	}
}

// TestSensedSteadyStateAllocs extends the zero-allocation steady-state
// contract to sensed engines: once warm, stepping with a LoopDetector
// or ConnectedVehicle sensor installed must not touch the heap either
// (per-link sensor state is pre-sized by Prepare, readings draw from
// the allocation-free rng.Source).
func TestSensedSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sensor sensing.Sensor
	}{
		{"perfect", sensing.Perfect{}},
		{"loop", sensing.NewLoopDetector(sensing.LoopDetectorOptions{FailProb: 0.05})},
		{"cv", sensing.NewConnectedVehicle(sensing.ConnectedVehicleOptions{Rate: 0.3, NoiseStd: 1, LatencySteps: 3})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const warmup = 600
			setup := scenario.Default()
			setup.Seed = 7
			built, err := setup.Build(scenario.PatternI)
			if err != nil {
				t.Fatal(err)
			}
			tc.sensor.Reseed(setup.Seed)
			engine, err := sim.New(sim.Config{
				Net:         built.Grid.Network,
				Controllers: setup.UtilBP(),
				Demand:      &sim.CutoffDemand{Inner: built.Demand, CutoffStep: warmup},
				Router:      built.Router,
				Routes:      built.Routes,
				Sensor:      tc.sensor,
			})
			if err != nil {
				t.Fatal(err)
			}
			engine.Run(warmup + 20)
			if engine.Totals().Spawned == 0 {
				t.Fatal("warmup spawned no vehicles")
			}
			allocs := testing.AllocsPerRun(400, func() {
				engine.Run(20)
			})
			if allocs != 0 {
				t.Fatalf("sensed stepOnce allocates: %v allocs per Run(20), want 0", allocs)
			}
			if err := engine.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunTimedMatchesRun pins that the instrumented stepper evolves
// state exactly like Run and attributes time to every substep.
func TestRunTimedMatchesRun(t *testing.T) {
	const steps = 600
	plain := buildSensed(t, 29, nil)
	timed := buildSensed(t, 29, nil)
	plain.Run(steps)
	var pt sim.PhaseTimings
	timed.RunTimed(steps, &pt)
	if plain.Totals() != timed.Totals() {
		t.Fatalf("RunTimed diverged from Run: %+v vs %+v", plain.Totals(), timed.Totals())
	}
	if !reflect.DeepEqual(plain.Vehicles(), timed.Vehicles()) {
		t.Fatal("RunTimed vehicle arena diverges from Run")
	}
	if pt.Steps != steps {
		t.Fatalf("PhaseTimings.Steps = %d, want %d", pt.Steps, steps)
	}
	if pt.Control <= 0 || pt.Serve <= 0 || pt.Travel <= 0 || pt.Arrivals <= 0 {
		t.Fatalf("missing substep attribution: %+v", pt)
	}
}
