// Batched-vs-reference serve plane equivalence: the batched serve path
// (dense phase-table rows over the credit slab with idle-junction
// skipping, DESIGN.md §16) must be bit-for-bit indistinguishable from
// the per-junction reference loop — identical snapshot bytes at random
// mid-run checkpoints (the PR 8 state-hash property: equal states yield
// equal snapshots), identical phase traces, vehicle arenas and totals —
// on every registered workload, across controller families, sensing
// models and disruption schedules.
package sim_test

import (
	"bytes"
	"reflect"
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/scenario"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
)

// serveRun is one traced run under a serve mode: the phase trace, the
// snapshot bytes captured at each checkpoint (the final step included),
// and the finished engine.
type serveRun struct {
	trace  []phaseEvent
	snaps  [][]byte
	engine *sim.Engine
}

// runServeTraced builds an engine for the setup/pattern/factory with
// the given serve mode and runs it to steps, snapshotting at each
// checkpoint boundary (checkpoints must be ascending, < steps).
func runServeTraced(t *testing.T, setup scenario.Setup, pattern scenario.Pattern, factory signal.Factory, mode sim.ServeMode, steps int, checkpoints []int) serveRun {
	t.Helper()
	built, err := setup.Build(pattern)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: factory,
		Demand:      built.Demand,
		Router:      built.Router,
		Routes:      built.Routes,
		Sensor:      built.Sensor,
		Control:     setup.Control,
		Events:      built.Events,
		Serve:       mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := serveRun{engine: engine}
	engine.AddHooks(sim.Hooks{Phase: func(node network.NodeID, step int, phase signal.Phase) {
		run.trace = append(run.trace, phaseEvent{node, step, phase})
	}})
	at := 0
	for _, cp := range checkpoints {
		engine.Run(cp - at)
		at = cp
		run.snaps = append(run.snaps, engine.Snapshot())
	}
	engine.Run(steps - at)
	run.snaps = append(run.snaps, engine.Snapshot())
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return run
}

// TestBatchedServeEquivalenceWorkloads pins the batched serve plane to
// the reference loop on every registered workload × controller family ×
// sensing model × disruption config: snapshot bytes at two rng-drawn
// checkpoints plus the final step, and the end-of-run phase trace,
// totals and vehicle arena, all bit-for-bit. The sensed cells exercise
// the wake protocol under sensor-driven observation churn, and the
// incident cells under mid-run capacity events (several workloads —
// city-grid-incident and friends — additionally carry their own
// schedules into the "clean" cells).
func TestBatchedServeEquivalenceWorkloads(t *testing.T) {
	sensors := []struct {
		name string
		spec sensing.Spec
	}{
		{"perfect", sensing.Spec{}},
		{"cv03", sensing.CV(0.3)},
	}
	factories := []struct {
		name string
		mk   func(scenario.Setup) signal.Factory
	}{
		{"UTIL-BP", func(s scenario.Setup) signal.Factory { return s.UtilBP() }},
		{"CAP-BP", func(s scenario.Setup) signal.Factory { return s.CapBP(20) }},
		{"MAXPRESSURE", func(s scenario.Setup) signal.Factory { return s.MaxPressure(0) }},
		{"BP-EST", func(s scenario.Setup) signal.Factory { return s.EstimatedBP(0) }},
	}
	for _, w := range scenario.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			steps := int(w.SweepHorizon(240))
			if steps > 240 {
				steps = 240
			}
			// Two mid-run checkpoints drawn per workload, deterministic
			// but not hand-picked: snapshot-byte equality must hold at
			// arbitrary inter-step points, not just the horizon.
			src := rng.New(0xBA7C_5E61 ^ uint64(len(w.Name))*uint64(steps))
			a, b := 1+src.Intn(steps-1), 1+src.Intn(steps-1)
			if a > b {
				a, b = b, a
			}
			checkpoints := []int{a}
			if b != a {
				checkpoints = append(checkpoints, b)
			}
			for _, sn := range sensors {
				sn := sn
				for _, incident := range []bool{false, true} {
					incident := incident
					if incident && len(w.Setup.Events) > 0 {
						// Incident-carrying workloads (city-grid-incident
						// and friends) replay their own schedule in the
						// clean cell; stacking a second central incident
						// would overlap its windows.
						continue
					}
					for _, f := range factories {
						f := f
						name := f.name + "/" + sn.name
						if incident {
							name += "/incident"
						}
						t.Run(name, func(t *testing.T) {
							setup := w.Setup
							setup.Seed = 11
							setup.Sensor = sn.spec
							if incident {
								var err error
								setup, err = setup.WithCentralIncident(
									float64(steps/4), float64(steps/2), 0.3)
								if err != nil {
									t.Fatal(err)
								}
							}
							ref := runServeTraced(t, setup, w.Pattern, f.mk(setup), sim.ServeReference, steps, checkpoints)
							bat := runServeTraced(t, setup, w.Pattern, f.mk(setup), sim.ServeBatched, steps, checkpoints)
							compareTraces(t, ref.trace, bat.trace)
							for i := range ref.snaps {
								if !bytes.Equal(ref.snaps[i], bat.snaps[i]) {
									t.Fatalf("snapshot bytes diverge at checkpoint %d of %v (lens %d vs %d)",
										i, append(checkpoints, steps), len(ref.snaps[i]), len(bat.snaps[i]))
								}
							}
							if ref.engine.Totals() != bat.engine.Totals() {
								t.Fatalf("totals diverge: reference %+v, batched %+v", ref.engine.Totals(), bat.engine.Totals())
							}
							if !reflect.DeepEqual(ref.engine.Vehicles(), bat.engine.Vehicles()) {
								t.Fatal("vehicle arenas diverge between serve modes")
							}
						})
					}
				}
			}
		})
	}
}

// TestBatchedServeResetWithSwitch checks the mid-sweep serve-mode
// switch: one engine rewound through ResetWith with SetServe flipping
// batched → reference → batched must replay each leg bit-for-bit like a
// freshly built engine in that mode (snapshot bytes included).
func TestBatchedServeResetWithSwitch(t *testing.T) {
	const steps = 500
	setup := scenario.Default()
	setup.Seed = 13
	built, err := setup.Build(scenario.PatternII)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      built.Demand,
		Router:      built.Router,
		Routes:      built.Routes,
		Serve:       sim.ServeBatched,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(steps)

	legs := []struct {
		mode sim.ServeMode
		seed uint64
	}{
		{sim.ServeReference, 13},
		{sim.ServeBatched, 14},
		{sim.ServeReference, 14},
	}
	for _, leg := range legs {
		if err := engine.ResetWith(leg.seed, sim.ResetOptions{
			Serve:    leg.mode,
			SetServe: true,
		}); err != nil {
			t.Fatal(err)
		}
		engine.Run(steps)
		if err := engine.CheckInvariants(); err != nil {
			t.Fatalf("mode %v seed %d: %v", leg.mode, leg.seed, err)
		}
		refSetup := setup
		refSetup.Seed = leg.seed
		fresh := runServeTraced(t, refSetup, scenario.PatternII, refSetup.UtilBP(), leg.mode, steps, nil)
		if engine.Totals() != fresh.engine.Totals() {
			t.Fatalf("mode %v seed %d: switched totals %+v != fresh totals %+v",
				leg.mode, leg.seed, engine.Totals(), fresh.engine.Totals())
		}
		if !bytes.Equal(engine.Snapshot(), fresh.snaps[len(fresh.snaps)-1]) {
			t.Fatalf("mode %v seed %d: switched engine snapshot diverges from fresh run", leg.mode, leg.seed)
		}
	}
}

// TestParseServeMode pins the CLI serve-mode syntax.
func TestParseServeMode(t *testing.T) {
	cases := []struct {
		arg  string
		want sim.ServeMode
		ok   bool
	}{
		{"batched", sim.ServeBatched, true},
		{"auto", sim.ServeBatched, true},
		{"", sim.ServeBatched, true},
		{" Reference ", sim.ServeReference, true},
		{"reference", sim.ServeReference, true},
		{"slab", 0, false},
	}
	for _, c := range cases {
		got, err := sim.ParseServeMode(c.arg)
		if c.ok != (err == nil) {
			t.Fatalf("ParseServeMode(%q) error = %v, want ok=%v", c.arg, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseServeMode(%q) = %v, want %v", c.arg, got, c.want)
		}
	}
	if got, want := sim.ServeBatched.String(), "batched"; got != want {
		t.Fatalf("ServeBatched.String() = %q, want %q", got, want)
	}
	if got, want := sim.ServeReference.String(), "reference"; got != want {
		t.Fatalf("ServeReference.String() = %q, want %q", got, want)
	}
}
