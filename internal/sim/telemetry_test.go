package sim

import (
	"bytes"
	"strings"
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/telemetry"
)

// telemTestRecorder builds and installs a recorder on a fresh
// snapshot-test engine.
func telemTestRecorder(t *testing.T, e *Engine, spec telemetry.Spec, steps int) *telemetry.Recorder {
	t.Helper()
	rec, err := telemetry.NewRecorder(spec, steps)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InstallTelemetry(rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestTelemetryObservationOnly pins the core contract of the telemetry
// plane: recording with the full spec changes nothing about the run.
// Two engines step in lockstep, one instrumented and one bare, and
// their snapshots must stay bit-for-bit identical (the snapshot doubles
// as a state hash, so this covers queues, RNG streams, controllers and
// totals at once).
func TestTelemetryObservationOnly(t *testing.T) {
	bare := snapTestEngine(t)
	inst := snapTestEngine(t)
	telemTestRecorder(t, inst, telemetry.Full(), 300)
	bare.Run(250)
	inst.Run(250)
	if !bytes.Equal(bare.Snapshot(), inst.Snapshot()) {
		t.Fatal("telemetry perturbed the run: snapshots diverged")
	}
	if bare.Totals() != inst.Totals() {
		t.Fatalf("totals diverged: %+v vs %+v", bare.Totals(), inst.Totals())
	}
}

// TestTelemetryNetSeries checks the recorded network channels against
// engine accessors at the final step.
func TestTelemetryNetSeries(t *testing.T) {
	e := snapTestEngine(t)
	rec := telemTestRecorder(t, e, telemetry.Net(), 200)
	e.Run(120)
	if rec.Len() != 120 || rec.FirstStep() != 0 {
		t.Fatalf("recorded len %d first %d, want 120, 0", rec.Len(), rec.FirstStep())
	}
	queued := 0
	for _, rd := range e.Network().Roads {
		queued += e.ApproachQueue(rd.ID)
	}
	q := rec.NetQueued()
	if int(q[len(q)-1]) != queued {
		t.Fatalf("final queued sample %g, engine says %d", q[len(q)-1], queued)
	}
	// Per-step exit deltas must sum to the cumulative total.
	heads := rec.Headers()
	cols := rec.Columns()
	sum := 0
	for i, h := range heads {
		if h == "exited" {
			for _, v := range cols[i] {
				sum += int(v)
			}
		}
	}
	if sum != e.Totals().Exited {
		t.Fatalf("exit deltas sum to %d, totals say %d", sum, e.Totals().Exited)
	}
}

// TestTelemetrySurvivesReset pins the survival contract: unlike hooks,
// an installed recorder is rewound — not discarded — by Reset, and the
// replayed run records the same series as the first.
func TestTelemetrySurvivesReset(t *testing.T) {
	e := snapTestEngine(t)
	rec := telemTestRecorder(t, e, telemetry.Net(), 200)
	e.Run(80)
	first := rec.NetQueued()
	if err := e.Reset(7); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 0 {
		t.Fatalf("reset left %d samples in the recorder", rec.Len())
	}
	if e.Telemetry() != rec {
		t.Fatal("reset uninstalled the recorder")
	}
	e.Run(80)
	second := rec.NetQueued()
	if len(first) != len(second) {
		t.Fatalf("replay recorded %d samples, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replayed series diverged at step %d: %g vs %g", i, second[i], first[i])
		}
	}
}

// TestTelemetrySurvivesResetWith checks the recorder also rides through
// ResetWith (which may swap the schedule and so the event windows).
func TestTelemetrySurvivesResetWith(t *testing.T) {
	e := snapTestEngine(t)
	rec := telemTestRecorder(t, e, telemetry.Net(), 100)
	e.Run(40)
	if err := e.ResetWith(11, ResetOptions{}); err != nil {
		t.Fatal(err)
	}
	if e.Telemetry() != rec || rec.Len() != 0 {
		t.Fatalf("ResetWith broke the recorder: installed=%v len=%d", e.Telemetry() == rec, rec.Len())
	}
	e.Run(40)
	if rec.Len() != 40 || rec.FirstStep() != 0 {
		t.Fatalf("post-ResetWith recording: len %d first %d", rec.Len(), rec.FirstStep())
	}
}

// TestRestoreRearmsTelemetry pins the snapshot interaction: recorded
// history is not semantic state, so Restore rewinds the series (the
// pre-checkpoint window is gone) but keeps the recorder installed, and
// recording resumes from the restored step.
func TestRestoreRearmsTelemetry(t *testing.T) {
	const k = 60
	e := snapTestEngine(t)
	rec := telemTestRecorder(t, e, telemetry.Full(), 300)
	e.Run(k)
	snap := e.Snapshot()
	e.Run(100)
	if err := e.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if e.Telemetry() != rec {
		t.Fatal("restore uninstalled the recorder")
	}
	if rec.Len() != 0 {
		t.Fatalf("restore kept %d samples recorded before the checkpoint", rec.Len())
	}
	e.Run(30)
	if rec.Len() != 30 || rec.FirstStep() != k {
		t.Fatalf("post-restore series: len %d first %d, want 30, %d", rec.Len(), rec.FirstStep(), k)
	}
	// The per-step deltas must restart from the restored totals, not the
	// pre-restore ones: their sum equals the exits since the checkpoint.
	heads := rec.Headers()
	cols := rec.Columns()
	for i, h := range heads {
		if h == "spawned" {
			sum := 0
			for _, v := range cols[i] {
				sum += int(v)
			}
			if sum < 0 || sum > e.Totals().Spawned {
				t.Fatalf("post-restore spawn deltas sum to %d (totals %d)", sum, e.Totals().Spawned)
			}
		}
	}
}

// TestRestoreHookReregistration documents the recommended hook pattern
// around Restore: hooks are discarded by the jump, and AddHooks
// immediately after re-arms them for the resumed run.
func TestRestoreHookReregistration(t *testing.T) {
	e := snapTestEngine(t)
	e.Run(30)
	snap := e.Snapshot()
	if err := e.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	fired := 0
	e.AddHooks(Hooks{Step: func(*Engine, int) { fired++ }})
	e.Run(10)
	if fired != 10 {
		t.Fatalf("re-registered hook fired %d times, want 10", fired)
	}
}

// TestTelemetryJunctionResolution covers the net+junc spec path: labels
// resolve to engine junctions and surface in the export headers, and
// unknown labels are rejected with the junction named.
func TestTelemetryJunctionResolution(t *testing.T) {
	e := snapTestEngine(t)
	rec := telemTestRecorder(t, e, telemetry.Junc("J01", "J10"), 50)
	e.Run(20)
	heads := rec.Headers()
	joined := strings.Join(heads, " ")
	for _, want := range []string{"J01_queued", "J10_pressure", "J01_est_err"} {
		if !strings.Contains(joined, want) {
			t.Errorf("headers missing %q: %v", want, heads)
		}
	}
	if strings.Contains(joined, "J00_") {
		t.Errorf("untracked junction J00 in headers: %v", heads)
	}

	bad, err := telemetry.NewRecorder(telemetry.Junc("J99"), 50)
	if err != nil {
		t.Fatal(err)
	}
	err = e.InstallTelemetry(bad)
	if err == nil || !strings.Contains(err.Error(), `"J99"`) {
		t.Fatalf("unknown junction error = %v", err)
	}
}

// TestTelemetryFullTracksEveryJunction checks the full spec resolves
// the whole junction table.
func TestTelemetryFullTracksEveryJunction(t *testing.T) {
	e := snapTestEngine(t)
	rec := telemTestRecorder(t, e, telemetry.Full(), 50)
	juncs := 0
	for _, n := range e.Network().Nodes {
		if n.Kind == network.JunctionNode {
			juncs++
		}
	}
	// 8 network columns + 6 per junction.
	if got, want := len(rec.Headers()), 8+6*juncs; got != want {
		t.Fatalf("full spec exports %d columns, want %d (%d junctions)", got, want, juncs)
	}
}

// TestTelemetryUninstall checks nil uninstalls and the accessor
// reflects it.
func TestTelemetryUninstall(t *testing.T) {
	e := snapTestEngine(t)
	if e.Telemetry() != nil {
		t.Fatal("fresh engine reports a recorder")
	}
	telemTestRecorder(t, e, telemetry.Net(), 50)
	if err := e.InstallTelemetry(nil); err != nil {
		t.Fatal(err)
	}
	if e.Telemetry() != nil {
		t.Fatal("uninstall left a recorder")
	}
	e.Run(10) // must not flush into anything
}

// TestTelemetryWrapConsistency runs an instrumented engine well past a
// deliberately tiny ring capacity and checks the overwrite-oldest
// window stays consistent with live engine state: the retained tail is
// the newest samples, the final queued sample equals both the
// incremental netQueued counter (via CheckInvariants, which
// cross-checks it against the recorder) and a from-scratch recount of
// the approach queues over the SoA lanes.
func TestTelemetryWrapConsistency(t *testing.T) {
	const ringCap, steps = 16, 120
	e := snapTestEngine(t)
	rec := telemTestRecorder(t, e, telemetry.Net(), ringCap)
	e.Run(steps)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != ringCap || rec.FirstStep() != steps-ringCap {
		t.Fatalf("wrapped window: len %d first %d, want %d, %d",
			rec.Len(), rec.FirstStep(), ringCap, steps-ringCap)
	}
	queued := 0
	for _, rd := range e.Network().Roads {
		queued += e.ApproachQueue(rd.ID)
	}
	q := rec.NetQueued()
	if int(q[len(q)-1]) != queued {
		t.Fatalf("final wrapped sample %g, recount says %d", q[len(q)-1], queued)
	}
	// Keep stepping one mini-slot at a time across several more wraps:
	// the invariant cross-check must hold at every step boundary, not
	// just the horizon.
	for i := 0; i < 2*ringCap; i++ {
		e.Run(1)
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("step %d past wrap: %v", steps+i+1, err)
		}
	}
}
