package sim

import (
	"fmt"

	"utilbp/internal/snap"
)

// SnapshotState implements snap.Snapshotter: the root stream's RNG
// state plus every materialized per-road stream (its RNG state and the
// cached sampler limit). The materialized set is captured exactly —
// which streams exist is itself a deterministic function of the run
// history, and restoring it byte-for-byte keeps later snapshots of a
// restored run identical to the uninterrupted run's.
func (p *PoissonDemand) SnapshotState(w *snap.Writer) {
	st := p.root.State()
	for _, v := range st {
		w.Uint64(v)
	}
	w.Int(len(p.streams))
	for i := range p.streams {
		s := &p.streams[i]
		w.Bool(s.src != nil)
		if s.src == nil {
			continue
		}
		sst := s.src.State()
		for _, v := range sst {
			w.Uint64(v)
		}
		w.Float64(s.mean)
		w.Float64(s.limit)
	}
}

// RestoreState implements snap.Snapshotter. Streams beyond the
// snapshot's length (possible when the process served a longer run on
// a reused engine) are reset to unmaterialized, so the restored
// process is indistinguishable from the captured one.
func (p *PoissonDemand) RestoreState(r *snap.Reader) error {
	var st [4]uint64
	for i := range st {
		st[i] = r.Uint64()
	}
	if r.Err() != nil {
		return r.Err()
	}
	p.root.SetState(st)
	n := r.Int()
	if n > len(p.streams) && r.Err() == nil {
		grown := make([]poissonStream, n)
		copy(grown, p.streams)
		p.streams = grown
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		s := &p.streams[i]
		if !r.Bool() {
			*s = poissonStream{}
			continue
		}
		var sst [4]uint64
		for j := range sst {
			sst[j] = r.Uint64()
		}
		if r.Err() != nil {
			return r.Err()
		}
		if s.src == nil {
			s.src = p.root.SplitIndexed("arrivals", i)
		}
		s.src.SetState(sst)
		s.mean = r.Float64()
		s.limit = r.Float64()
	}
	for i := n; i < len(p.streams) && r.Err() == nil; i++ {
		p.streams[i] = poissonStream{}
	}
	return r.Err()
}

// SnapshotState implements snap.Snapshotter by delegating to the inner
// process; the cutoff step is configuration, not run state.
func (d *CutoffDemand) SnapshotState(w *snap.Writer) {
	if s, ok := d.Inner.(snap.Snapshotter); ok {
		s.SnapshotState(w)
	}
}

// RestoreState implements snap.Snapshotter.
func (d *CutoffDemand) RestoreState(r *snap.Reader) error {
	if s, ok := d.Inner.(snap.Snapshotter); ok {
		return s.RestoreState(r)
	}
	if r.Len() != 0 {
		return fmt.Errorf("sim: cutoff demand: %d bytes of state for a stateless inner process", r.Len())
	}
	return nil
}
