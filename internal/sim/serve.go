// The batched serve plane (DESIGN.md §16): the service substep
// S(k,k+1) over dense engine-owned arrays indexed by global link id —
// the same slab discipline the PR 5 control plane established. Three
// structures carry it: the flattened phase table (signal.PhaseTable)
// replacing the per-junction [][]int phase lists, one serveSite per
// link with the road states and per-slot service constants resolved at
// construction, and the credit slab every junction's credit window
// aliases. On top of them sits the skip rule: a junction whose applied
// phase held this mini-slot, whose active lanes all ended the previous
// pass empty and whose roads saw no change since (the dirty-road
// protocol doubles as the wake signal) provably serves nothing — its
// pass reduces to the empty-lane credit recurrence, which the idle tick
// replays exactly, so skipping is a pure cost optimization with
// bit-identical state evolution. The reference per-junction loop is
// kept selectable (Config.Serve) as the pin target of the
// serve-equivalence harness.
package sim

import (
	"fmt"
	"strings"

	"utilbp/internal/network"
	"utilbp/internal/queue"
	"utilbp/internal/signal"
	"utilbp/internal/vehicle"
)

// ServeMode selects the serve-substep implementation (DESIGN.md §16).
// The zero value is ServeBatched — the batched plane is the default
// path; the reference loop exists as the equivalence pin.
type ServeMode int

// The serve modes: ServeBatched runs the batched serve plane (dense
// phase-table rows over the credit slab, idle junctions skipped via
// the exact credit tick); ServeReference forces the per-junction
// reference loop the equivalence harness pins the batched plane
// against. The two are bit-for-bit interchangeable.
const (
	ServeBatched ServeMode = iota
	ServeReference
)

// String renders the mode in the CLI syntax accepted by
// ParseServeMode.
func (m ServeMode) String() string {
	switch m {
	case ServeBatched:
		return "batched"
	case ServeReference:
		return "reference"
	}
	return fmt.Sprintf("serve(%d)", int(m))
}

// ParseServeMode parses the CLI serve-mode syntax: "batched" (alias
// "auto", the default) or "reference".
func ParseServeMode(arg string) (ServeMode, error) {
	switch strings.ToLower(strings.TrimSpace(arg)) {
	case "batched", "auto", "":
		return ServeBatched, nil
	case "reference":
		return ServeReference, nil
	}
	return ServeBatched, fmt.Errorf("sim: unknown serve mode %q (want batched or reference)", arg)
}

// serveSite is one link's resolved serve state: the road states on both
// ends and the per-slot service constants, precomputed once so the hot
// loop performs no junction/link chasing and no repeated float
// arithmetic. The constants are computed with exactly the reference
// loop's expressions (muDt = l.Mu*Δt, creditCap = l.Mu*Δt+1, startDebt
// = -float64(StartupLostSteps)*l.Mu*Δt, same association), so the
// precomputed values are bit-identical to the reference's inline ones.
type serveSite struct {
	in, out   *roadState
	muDt      float64
	creditCap float64
	startDebt float64
	turn      network.Turn
	outExits  bool
}

// Per-junction serve-idle states. serveNotIdle (the zero value — what
// Reset and Restore leave behind) forces a full pass. serveIdleGreen
// marks a held green whose active lanes all ended the last pass empty:
// until a wake, its pass is the empty-lane credit recurrence the idle
// tick replays. serveIdleAmber marks a held amber after one amber pass
// zeroed every credit: further held-amber passes are no-ops outright.
const (
	serveNotIdle uint8 = iota
	serveIdleGreen
	serveIdleAmber
)

// The sub-threshold flag (serveSub) is the skip rule's second leg,
// orthogonal to lane-emptiness: a held green whose active links all
// ended the last pass with credit + µΔt < 1 cannot serve this
// mini-slot no matter what its lanes hold — the serve loop's guard
// (credit >= 1) fails before the first peek, so the full pass reduces
// to credit += µΔt per active link (the cap µΔt+1 >= 1 cannot bind)
// with no lane reads, no dirty marks and no wake dependence. With the
// paper's µΔt = 0.5 an actively serving link alternates serve /
// sub-threshold mini-slots, so this halves the full passes of a
// junction in the middle of a drain. The flag is recomputed by every
// pass that changes the active credits (full pass and sub tick) and
// invalidated by the idle tick (whose orbit reset changes credits
// without recomputing it); like serveIdle it is derived state —
// cleared on Reset/Restore, never serialized.

// buildServePlane constructs the serve plane: the flattened phase
// table, the per-link serve sites and the credit slab, rebinding every
// junction's credit window onto the slab (snapshot encoding is
// unchanged — the per-junction windows serialize exactly as the old
// per-junction arrays did). It runs once at construction; the road
// states and batch tables it resolves are stable for the engine's
// lifetime.
func (e *Engine) buildServePlane() {
	e.phaseTab = signal.BuildPhaseTable(e.batch.Infos, e.batch.JuncOff)
	e.serveSites = make([]serveSite, e.numLinks)
	e.creditSlab = make([]float64, e.numLinks)
	e.serveIdle = make([]uint8, len(e.juncs))
	e.juncWoke = make([]bool, len(e.juncs))
	e.serveSub = make([]bool, len(e.juncs))
	for ji := range e.juncs {
		js := &e.juncs[ji]
		lo, hi := js.linkBase, js.linkBase+int32(len(js.j.Links))
		js.credits = e.creditSlab[lo:hi:hi]
		for li := range js.j.Links {
			l := &js.j.Links[li]
			e.serveSites[lo+int32(li)] = serveSite{
				in:        &e.roads[l.In],
				out:       &e.roads[l.Out],
				muDt:      l.Mu * e.dt,
				creditCap: l.Mu*e.dt + 1,
				startDebt: -float64(e.cfg.StartupLostSteps) * l.Mu * e.dt,
				turn:      l.Turn,
				outExits:  e.roads[l.Out].exits,
			}
		}
	}
}

// resetServeSkip rewinds the skip machinery to "full pass everywhere".
// Reset and Restore call it: the cleared state is conservative, not
// lossy — a full pass over an idle junction performs exactly the idle
// tick's credit updates (the serve loop with an empty lane reduces to
// the same recurrence), so clearing never changes the state evolution,
// only the cost of the next pass.
func (e *Engine) resetServeSkip() {
	for i := range e.serveIdle {
		e.serveIdle[i] = serveNotIdle
		e.juncWoke[i] = false
		e.serveSub[i] = false
	}
}

// serve applies S(k,k+1): each link of the active phase serves at its
// rate, physically blocked when the outgoing road is full. A fresh
// green (the applied phase differs from the previous mini-slot's)
// starts with a service debt of StartupLostSteps slots, modeling the
// acceleration of the stopped queue. Dispatch follows Config.Serve;
// both paths are pinned bit-for-bit equal by the serve-equivalence
// harness.
func (e *Engine) serve(t float64) {
	if e.serveRef {
		e.serveReference(t)
		return
	}
	e.serveBatched(t)
}

// serveBatched is the batched serve plane's pass. The skip rule: a
// junction is eligible when its applied phase held (current == prev —
// phase changes reset credits and must run the full pass) AND its idle
// state from the previous pass still stands AND none of its incoming
// roads changed since (juncWoke, fanned out by sense from the dirty
// set to each dirty road's head junction). An eligible held green runs
// the idle tick — the exact empty-lane credit recurrence, see
// serveIdleTick — and an eligible held amber skips outright (its
// credits are already zero). Independently, a held green flagged
// sub-threshold takes the sub tick — it cannot serve this mini-slot
// regardless of lane state or wake, see serveSubTick. Everything else
// takes the full pass, which re-derives both skip conditions.
func (e *Engine) serveBatched(t float64) {
	for ji := range e.juncs {
		js := &e.juncs[ji]
		cur := js.current
		if cur == js.prev {
			switch e.serveIdle[ji] {
			case serveIdleAmber:
				// A held amber zeroes credits that are already zero:
				// a no-op regardless of lane state, so not even a wake
				// requires the pass.
				continue
			case serveIdleGreen:
				if !e.juncWoke[ji] {
					// The orbit reset changes credits without
					// recomputing the sub-threshold flag, so it must
					// invalidate it (the flag only ever describes the
					// credits the last full pass or sub tick stored).
					// Conditional store: after the first idle tick the
					// flag stays false, and a long idle run must not
					// dirty the cache line every mini-slot.
					if e.serveSub[ji] {
						e.serveSub[ji] = false
					}
					e.serveIdleTick(ji, cur)
					continue
				}
			}
			if e.serveSub[ji] {
				e.serveSubTick(ji, cur)
				continue
			}
		}
		e.juncWoke[ji] = false
		if cur == signal.Amber {
			for li := range js.credits {
				js.credits[li] = 0
			}
			e.serveIdle[ji] = serveIdleAmber
			continue
		}
		active := js.phaseActive[cur-1]
		for li := range js.credits {
			if !active[li] {
				js.credits[li] = 0
			}
		}
		row := e.phaseTab.Row(ji, cur)
		if cur != js.prev {
			for _, gl := range row {
				e.creditSlab[gl] = e.serveSites[gl].startDebt
			}
		}
		idle, sub := true, true
		for _, gl := range row {
			empty, subNext := e.serveLinkAt(gl, t)
			idle = idle && empty
			sub = sub && subNext
		}
		if idle {
			e.serveIdle[ji] = serveIdleGreen
		} else {
			e.serveIdle[ji] = serveNotIdle
		}
		e.serveSub[ji] = sub
	}
}

// serveIdleTick advances an idle held-green junction's credits exactly
// as the full pass would with empty lanes: grant the slot's credit and
// reset it on the failed peek. The full serve loop with an empty lane
// stores c+µΔt when that stays below 1 (the loop body never runs) and
// 0 otherwise (the first peek fails); idle credits are always < 1 (a
// pass that ends with an empty lane cannot leave a credit >= 1), so
// the µΔt+1 cap can never bind and the recurrence below is
// bit-identical. With µΔt < 1 — the paper's calibration is µ = 0.5
// veh/s at Δt = 1 — empty-lane credits genuinely oscillate (0 → 0.5 →
// 0 → ...), which is why idle junctions tick rather than skip: frozen
// credits would diverge from the reference (credits are snapshot
// state).
func (e *Engine) serveIdleTick(ji int, cur signal.Phase) {
	for _, gl := range e.phaseTab.Row(ji, cur) {
		c := e.creditSlab[gl] + e.serveSites[gl].muDt
		if c >= 1 {
			c = 0
		}
		e.creditSlab[gl] = c
	}
}

// serveSubTick advances a sub-threshold held green: under the flag's
// invariant (credit + µΔt < 1 on every active link when the last pass
// stored it) the full pass degenerates to credit += µΔt — the cap
// µΔt+1 >= 1 cannot bind below 1, the serve loop's credit >= 1 guard
// fails before any lane peek, nothing is served and nothing is marked
// dirty. Inactive credits stay untouched: they were zeroed by the full
// green pass that opened this held phase and nothing has written them
// since. The tick recomputes the flag from the stored credits, so a
// chain of sub ticks (µΔt < 0.5) stays exact and terminates: credits
// grow strictly each tick, forcing a full pass before any link could
// first serve.
func (e *Engine) serveSubTick(ji int, cur signal.Phase) {
	sub := true
	for _, gl := range e.phaseTab.Row(ji, cur) {
		muDt := e.serveSites[gl].muDt
		c := e.creditSlab[gl] + muDt
		e.creditSlab[gl] = c
		if c+muDt >= 1 {
			sub = false
		}
	}
	e.serveSub[ji] = sub
}

// serveLinkAt is serveLink over a resolved serve site — identical
// service semantics, with the road states, movement and float constants
// loaded from the site instead of re-derived per call. It reports the
// two per-link skip conditions: whether the lane ended the pass empty
// (the idle condition; when it did, the stored credit is provably < 1)
// and whether the stored credit keeps the link sub-threshold for the
// next mini-slot (credit + µΔt < 1 — the link cannot serve then no
// matter how its lanes change).
func (e *Engine) serveLinkAt(gl int32, t float64) (empty, subNext bool) {
	s := &e.serveSites[gl]
	in, out := s.in, s.out
	credit := e.creditSlab[gl] + s.muDt
	if credit > s.creditCap {
		credit = s.creditCap
	}
	served := false
	for credit >= 1 {
		var (
			item queue.Item
			ok   bool
		)
		if e.cfg.MixedLanes {
			item, ok = in.mixed.Peek()
			if ok && e.arena.PendingTurn(vehicle.ID(item.Vehicle)) != s.turn {
				// Head-of-line blocking: the head vehicle wants a
				// different movement, so this link cannot serve now.
				break
			}
		} else {
			item, ok = in.lanes[s.turn].Peek()
		}
		if !ok {
			credit = 0
			break
		}
		if !out.hasRoom() {
			break
		}
		if e.cfg.MixedLanes {
			in.mixed.Pop()
			in.mixedCount[s.turn]--
		} else {
			in.lanes[s.turn].Pop()
		}
		in.queuedTotal--
		e.netQueued--
		credit--
		served = true
		id := vehicle.ID(item.Vehicle)
		e.arena.Serve(id, t-item.EnqueuedAt)
		in.occupancy--
		e.totals.Served++
		if s.outExits {
			e.exitVehicle(id, t)
		} else {
			out.occupancy++
			e.enterRoad(out, id, t)
		}
	}
	e.creditSlab[gl] = credit
	if served {
		// Both road states changed: the incoming road lost queued
		// vehicles, the outgoing one gained occupancy and transit.
		// Served-to-exit vehicles leave the outgoing road untouched
		// (they never occupy it), so exit roads stay clean.
		e.markDirty(in.road.ID)
		if !s.outExits {
			e.markDirty(out.road.ID)
		}
	}
	subNext = credit+s.muDt < 1
	if e.cfg.MixedLanes {
		return in.mixed.Len() == 0, subNext
	}
	return in.lanes[s.turn].Len() == 0, subNext
}

// serveReference is the per-junction reference serve loop — the
// pre-slab implementation, kept verbatim as the pin target: the
// serve-equivalence harness runs it against serveBatched on every
// registry workload and compares snapshot bytes.
func (e *Engine) serveReference(t float64) {
	for ji := range e.juncs {
		js := &e.juncs[ji]
		if js.current == signal.Amber {
			for i := range js.credits {
				js.credits[i] = 0
			}
			continue
		}
		links := js.j.Phases[js.current-1]
		active := js.phaseActive[js.current-1]
		for li := range js.credits {
			if !active[li] {
				js.credits[li] = 0
			}
		}
		if js.current != js.prev {
			for _, li := range links {
				l := &js.j.Links[li]
				js.credits[li] = -float64(e.cfg.StartupLostSteps) * l.Mu * e.dt
			}
		}
		for _, li := range links {
			e.serveLink(js, li, t)
		}
	}
}

// serveLink grants the link its per-slot service credit and serves whole
// vehicles while credit, queue and downstream space allow. Credit is
// capped at µΔt+1 so a capacity-blocked link cannot bank unbounded credit
// and burst, and resets when the lane empties (the paper's service
// condition requires at least µΔt waiting vehicles to reach the maximum).
func (e *Engine) serveLink(js *junctionState, li int, t float64) {
	l := &js.j.Links[li]
	in := &e.roads[l.In]
	out := &e.roads[l.Out]
	credit := js.credits[li] + l.Mu*e.dt
	if max := l.Mu*e.dt + 1; credit > max {
		credit = max
	}
	served := false
	for credit >= 1 {
		var (
			item queue.Item
			ok   bool
		)
		if e.cfg.MixedLanes {
			item, ok = in.mixed.Peek()
			if ok && e.arena.PendingTurn(vehicle.ID(item.Vehicle)) != l.Turn {
				// Head-of-line blocking: the head vehicle wants a
				// different movement, so this link cannot serve now.
				break
			}
		} else {
			item, ok = in.lanes[l.Turn].Peek()
		}
		if !ok {
			credit = 0
			break
		}
		if !out.hasRoom() {
			break
		}
		if e.cfg.MixedLanes {
			in.mixed.Pop()
			in.mixedCount[l.Turn]--
		} else {
			in.lanes[l.Turn].Pop()
		}
		in.queuedTotal--
		e.netQueued--
		credit--
		served = true
		id := vehicle.ID(item.Vehicle)
		e.arena.Serve(id, t-item.EnqueuedAt)
		in.occupancy--
		e.totals.Served++
		if out.exits {
			e.exitVehicle(id, t)
		} else {
			out.occupancy++
			e.enterRoad(out, id, t)
		}
	}
	js.credits[li] = credit
	if served {
		// Both road states changed: the incoming road lost queued
		// vehicles, the outgoing one gained occupancy and transit.
		// Served-to-exit vehicles leave the outgoing road untouched
		// (they never occupy it), so exit roads stay clean.
		e.markDirty(l.In)
		if !out.exits {
			e.markDirty(l.Out)
		}
	}
}
