// Steady-state performance contracts of the engine hot path: once the
// working set is warm, stepOnce must not touch the heap, and Engine.Reset
// must replay a run bit-for-bit without re-allocating the engine. The
// tests live in an external package so they can drive the engine through
// the scenario layer like the experiment harness does.
package sim_test

import (
	"reflect"
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/scenario"
	"utilbp/internal/sim"
)

// warmEngine builds a Pattern I engine under UTIL-BP whose demand stops
// after warmup steps, then runs it to the edge of the quiet period.
func warmEngine(t testing.TB, warmup int) *sim.Engine {
	t.Helper()
	setup := scenario.Default()
	setup.Seed = 7
	built, err := setup.Build(scenario.PatternI)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      &sim.CutoffDemand{Inner: built.Demand, CutoffStep: warmup},
		Router:      built.Router,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(warmup + 20)
	return engine
}

// TestStepOnceSteadyStateAllocs is the zero-allocation regression gate:
// with the arena and heaps grown during warmup, the lane rings pre-sized
// from link capacity at construction, and no fresh arrivals, advancing
// the simulation must perform zero heap allocations — over the FULL
// drain window, from loaded network through complete drain-out to empty
// stepping. (Before the ring-buffer lanes, drain reshuffling could grow
// a lane past its warm high-water mark and allocate ~0.008 times per
// step outside a strict window; the rings retire that caveat.)
func TestStepOnceSteadyStateAllocs(t *testing.T) {
	engine := warmEngine(t, 600)
	if engine.Totals().Spawned == 0 {
		t.Fatal("warmup spawned no vehicles")
	}
	occupied := func() int {
		n := 0
		for rid := range engine.Network().Roads {
			n += engine.Occupancy(network.RoadID(rid))
		}
		return n
	}
	if occupied() == 0 {
		t.Fatal("warmup left the network empty; drain window would measure nothing")
	}
	// 400 runs of 20 steps (plus AllocsPerRun's warmup call) cover the
	// entire drain of the quiesced network and a long empty-network tail.
	allocs := testing.AllocsPerRun(400, func() {
		engine.Run(20)
	})
	if allocs != 0 {
		t.Fatalf("full-drain-window stepOnce allocates: %v allocs per Run(20), want 0", allocs)
	}
	if occupied() != 0 {
		t.Fatalf("%d vehicles still in network after the drain window; widen it", occupied())
	}
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCityGridSteadyStateAllocs extends the zero-allocation steady-state
// contract to the 16×16 city-grid workload: once warm, stepping a
// 256-junction network must not touch the heap either.
func TestCityGridSteadyStateAllocs(t *testing.T) {
	w, ok := scenario.WorkloadByName("city-grid")
	if !ok {
		t.Fatal("city-grid workload not registered")
	}
	setup := w.Setup
	setup.Seed = 7
	const warmup = 300
	built, err := setup.Build(w.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      &sim.CutoffDemand{Inner: built.Demand, CutoffStep: warmup},
		Router:      built.Router,
		Routes:      built.Routes,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(warmup + 20)
	if engine.Totals().Spawned == 0 {
		t.Fatal("warmup spawned no vehicles")
	}
	allocs := testing.AllocsPerRun(30, func() {
		engine.Run(5)
	})
	if allocs != 0 {
		t.Fatalf("city-grid steady-state stepOnce allocates: %v allocs per Run(5), want 0", allocs)
	}
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// runFresh builds and runs a fresh engine for the seed and returns it.
func runFresh(t *testing.T, seed uint64, steps int) *sim.Engine {
	t.Helper()
	setup := scenario.Default()
	setup.Seed = seed
	built, err := setup.Build(scenario.PatternII)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:         built.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      built.Demand,
		Router:      built.Router,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(steps)
	return engine
}

// TestResetReplaysIdentically checks the Engine.Reset contract: a reset
// engine re-run with a seed must match a freshly constructed engine for
// that seed vehicle-for-vehicle, both for the original seed and for a new
// one.
func TestResetReplaysIdentically(t *testing.T) {
	const steps = 900
	engine := runFresh(t, 3, steps)

	for _, seed := range []uint64{3, 4} {
		if err := engine.Reset(seed); err != nil {
			t.Fatal(err)
		}
		if engine.Step() != 0 || engine.Totals() != (sim.Totals{}) {
			t.Fatalf("reset left state: step=%d totals=%+v", engine.Step(), engine.Totals())
		}
		engine.Run(steps)
		if err := engine.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fresh := runFresh(t, seed, steps)
		if engine.Totals() != fresh.Totals() {
			t.Fatalf("seed %d: reset totals %+v != fresh totals %+v", seed, engine.Totals(), fresh.Totals())
		}
		if !reflect.DeepEqual(engine.Vehicles(), fresh.Vehicles()) {
			t.Fatalf("seed %d: reset vehicle arena diverges from fresh run", seed)
		}
		for rid := range fresh.Network().Roads {
			id := network.RoadID(rid)
			if engine.Occupancy(id) != fresh.Occupancy(id) || engine.ApproachQueue(id) != fresh.ApproachQueue(id) {
				t.Fatalf("seed %d: road %d state diverges (occ %d/%d, queue %d/%d)", seed, rid,
					engine.Occupancy(id), fresh.Occupancy(id), engine.ApproachQueue(id), fresh.ApproachQueue(id))
			}
		}
	}
}

// TestSpawnPathAllocs extends the zero-allocation contract to the spawn
// path: with the vehicle arena pre-sized for the demand horizon
// (Config.ExpectedVehicles) and the working set grown by a warmup run,
// replaying the same seed must not allocate even while arrivals keep
// flowing — route plans are compact values (vehicle.Plan) and the arena
// append stays within its pre-sized capacity.
func TestSpawnPathAllocs(t *testing.T) {
	const horizon = 1500
	setup := scenario.Default()
	setup.Seed = 7
	built, err := setup.Build(scenario.PatternI)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:              built.Grid.Network,
		Controllers:      setup.UtilBP(),
		Demand:           built.Demand,
		Router:           built.Router,
		ExpectedVehicles: built.ExpectedVehicles(horizon),
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(horizon) // grow lanes, heaps and arena to the working set
	if engine.Totals().Spawned == 0 {
		t.Fatal("warmup spawned no vehicles")
	}
	if err := engine.Reset(setup.Seed); err != nil {
		t.Fatal(err)
	}
	// AllocsPerRun performs one extra warmup call, so the replay covers
	// exactly the warmed horizon and never exceeds the grown capacity.
	allocs := testing.AllocsPerRun(horizon-1, func() {
		engine.Run(1)
	})
	if allocs != 0 {
		t.Fatalf("spawn path allocates: %v allocs per step, want 0", allocs)
	}
	if engine.Totals().Spawned == 0 {
		t.Fatal("measured steps spawned no vehicles")
	}
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestResetWithSwapsCollaborators checks the ResetWith contract behind
// the sweep scheduler's engine cache: an engine built for one pattern and
// controller, rewound with another pattern's demand and router and a
// different controller family, must match a freshly built engine for that
// cell bit-for-bit.
func TestResetWithSwapsCollaborators(t *testing.T) {
	const steps = 900
	setup := scenario.Default()
	setup.Seed = 5
	builtII, err := setup.Build(scenario.PatternII)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.New(sim.Config{
		Net:         builtII.Grid.Network,
		Controllers: setup.UtilBP(),
		Demand:      builtII.Demand,
		Router:      builtII.Router,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(steps)

	// Swap in Pattern I demand/routes (a separate Built of the same grid
	// spec) and the CAP-BP family, then compare against a fresh engine.
	swapSetup := scenario.Default()
	swapSetup.Seed = 9
	builtI, err := swapSetup.Build(scenario.PatternI)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.ResetWith(9, sim.ResetOptions{
		Controllers: swapSetup.CapBP(20),
		Demand:      builtI.Demand,
		Router:      builtI.Router,
	}); err != nil {
		t.Fatal(err)
	}
	engine.Run(steps)
	if err := engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	freshBuilt, err := swapSetup.Build(scenario.PatternI)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sim.New(sim.Config{
		Net:         freshBuilt.Grid.Network,
		Controllers: swapSetup.CapBP(20),
		Demand:      freshBuilt.Demand,
		Router:      freshBuilt.Router,
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh.Run(steps)
	if engine.Totals() != fresh.Totals() {
		t.Fatalf("ResetWith totals %+v != fresh totals %+v", engine.Totals(), fresh.Totals())
	}
	if !reflect.DeepEqual(engine.Vehicles(), fresh.Vehicles()) {
		t.Fatal("ResetWith vehicle arena diverges from fresh run")
	}
}
