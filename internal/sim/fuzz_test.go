package sim

import (
	"testing"
	"testing/quick"

	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/signal"
)

// chaosCtrl returns pseudo-random (possibly invalid) phases, exercising
// the engine's tolerance of arbitrary controller behaviour.
type chaosCtrl struct {
	src *rng.Source
	max int
}

func (c *chaosCtrl) Name() string { return "chaos" }
func (c *chaosCtrl) Decide(*signal.Obs) signal.Phase {
	// Range [-1, max+2): includes amber, valid phases, and out-of-range
	// values the engine must sanitize.
	return signal.Phase(c.src.Intn(c.max+3) - 1)
}

// TestInvariantsUnderChaosController: whatever the controller returns,
// the engine must preserve conservation and capacity invariants.
func TestInvariantsUnderChaosController(t *testing.T) {
	f := func(seed uint32, rows, cols uint8) bool {
		spec := network.DefaultGridSpec()
		spec.Rows = int(rows%3) + 1
		spec.Cols = int(cols%3) + 1
		spec.Capacity = 15
		g, err := network.Grid(spec)
		if err != nil {
			return false
		}
		src := rng.New(uint64(seed))
		e, err := New(Config{
			Net: g.Network,
			Controllers: signal.FactoryFunc{Label: "chaos", Build: func(info signal.JunctionInfo) (signal.Controller, error) {
				return &chaosCtrl{src: src.Split(info.Label), max: info.NumPhases()}, nil
			}},
			Demand: NewPoissonDemand(src.Split("demand"), ConstantRate(0.4)),
			Router: StraightRouter{},
		})
		if err != nil {
			return false
		}
		for i := 0; i < 6; i++ {
			e.Run(50)
			if err := e.CheckInvariants(); err != nil {
				t.Logf("seed %d grid %dx%d: %v", seed, spec.Rows, spec.Cols, err)
				return false
			}
		}
		e.FinalizeWaits()
		for _, v := range e.Vehicles() {
			if v.QueueWait < 0 {
				t.Logf("negative wait: %+v", v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantsUnderChaosMixedLanes repeats the chaos check with the
// head-of-line-blocking extension enabled.
func TestInvariantsUnderChaosMixedLanes(t *testing.T) {
	spec := network.DefaultGridSpec()
	spec.Rows, spec.Cols = 2, 2
	spec.Capacity = 12
	g, err := network.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(321)
	e, err := New(Config{
		Net: g.Network,
		Controllers: signal.FactoryFunc{Label: "chaos", Build: func(info signal.JunctionInfo) (signal.Controller, error) {
			return &chaosCtrl{src: src.Split(info.Label), max: info.NumPhases()}, nil
		}},
		Demand:     NewPoissonDemand(src.Split("demand"), ConstantRate(0.4)),
		Router:     StraightRouter{},
		MixedLanes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.Run(60)
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
