package sim

import (
	"bytes"
	"strings"
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/signal"
)

// snapTestEngine builds a small 2×2 engine under Poisson demand with a
// real stateful controller path (the static controller is stateless, so
// a fixed phase would not exercise the controller sections).
func snapTestEngine(t *testing.T) *Engine {
	t.Helper()
	spec := network.DefaultGridSpec()
	spec.Rows, spec.Cols = 2, 2
	spec.Capacity = 40
	g, err := network.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Net:         g.Network,
		Controllers: staticFactory(1),
		Demand:      NewPoissonDemand(rng.New(7), ConstantRate(0.15)),
		Router:      StraightRouter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSnapshotRoundTripBytes pins the codec's inverse property at the
// engine level: restoring a snapshot and snapshotting again must
// reproduce the original bytes exactly (the snapshot doubles as a state
// hash, so any drift here breaks every equivalence test built on it).
func TestSnapshotRoundTripBytes(t *testing.T) {
	e := snapTestEngine(t)
	e.Run(137)
	snapA := e.Snapshot()
	if err := e.Restore(snapA); err != nil {
		t.Fatalf("restore: %v", err)
	}
	snapB := e.Snapshot()
	if !bytes.Equal(snapA, snapB) {
		t.Fatalf("snapshot after restore differs: %d vs %d bytes", len(snapA), len(snapB))
	}
}

// TestSnapshotRestoreEquivalence pins the tentpole contract on one
// engine: capture at step k, run to N, then rewind to the checkpoint
// and run to N again — the two step-N snapshots must be bit-for-bit
// identical, and so must the conservation totals.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	const k, n = 83, 240
	e := snapTestEngine(t)
	e.Run(k)
	snapK := e.Snapshot()
	e.Run(n - k)
	want := e.Snapshot()
	wantTotals := e.Totals()

	if err := e.Restore(snapK); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if e.Step() != k {
		t.Fatalf("restored step=%d, want %d", e.Step(), k)
	}
	e.Run(n - k)
	got := e.Snapshot()
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed run diverged from uninterrupted run at step %d", n)
	}
	if e.Totals() != wantTotals {
		t.Fatalf("totals diverged: %+v vs %+v", e.Totals(), wantTotals)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotResetReplay checks a restored-and-resumed engine still
// resets cleanly into a bit-exact replay of the original run.
func TestSnapshotResetReplay(t *testing.T) {
	const k, n = 50, 160
	e := snapTestEngine(t)
	e.Run(n)
	want := e.Snapshot()
	if err := e.Reset(7); err != nil {
		t.Fatal(err)
	}
	e.Run(k)
	snapK := e.Snapshot()
	if err := e.Restore(snapK); err != nil {
		t.Fatalf("restore: %v", err)
	}
	e.Run(n - k)
	if got := e.Snapshot(); !bytes.Equal(want, got) {
		t.Fatal("reset replay + restore diverged from the original run")
	}
}

// TestResetWithRestoreFrom pins the ResetOptions.RestoreFrom path: a
// rewind-then-restore through ResetWith resumes identically to a direct
// Restore.
func TestResetWithRestoreFrom(t *testing.T) {
	const k, n = 61, 180
	e := snapTestEngine(t)
	e.Run(k)
	snapK := e.Snapshot()
	e.Run(n - k)
	want := e.Snapshot()

	if err := e.ResetWith(7, ResetOptions{RestoreFrom: snapK}); err != nil {
		t.Fatalf("ResetWith(RestoreFrom): %v", err)
	}
	if e.Step() != k {
		t.Fatalf("restored step=%d, want %d", e.Step(), k)
	}
	e.Run(n - k)
	if got := e.Snapshot(); !bytes.Equal(want, got) {
		t.Fatal("ResetWith(RestoreFrom) resume diverged")
	}
}

// TestSnapshotRejectsMismatch checks the structural fingerprint guards:
// foreign bytes, truncation and wrong-shaped engines all fail loudly
// instead of silently corrupting state.
func TestSnapshotRejectsMismatch(t *testing.T) {
	e := snapTestEngine(t)
	e.Run(40)
	snap := e.Snapshot()

	if err := e.Restore(nil); err == nil {
		t.Fatal("restore of empty stream accepted")
	}
	if err := e.Restore(snap[:16]); err == nil {
		t.Fatal("restore of truncated stream accepted")
	}
	junk := append([]byte(nil), snap...)
	junk[0] ^= 0xff
	if err := e.Restore(junk); err == nil {
		t.Fatal("restore of corrupted magic accepted")
	}

	other, err := New(Config{
		Net:         grid1x1(t).Network,
		Controllers: staticFactory(1),
		Demand:      NewPoissonDemand(rng.New(7), ConstantRate(0.15)),
		Router:      StraightRouter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = other.Restore(snap)
	if err == nil {
		t.Fatal("restore into a differently shaped engine accepted")
	}
	if !strings.Contains(err.Error(), "roads") {
		t.Fatalf("fingerprint error %q does not name the mismatch", err)
	}
	// The rejecting engine is still usable: the fingerprint check runs
	// before any state is touched.
	other.Run(10)
	if err := other.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotDeterministicBytes pins that two independently built,
// identically configured engines produce identical snapshot bytes after
// identical runs — the property that lets equivalence tests compare
// engines by snapshot instead of walking state.
func TestSnapshotDeterministicBytes(t *testing.T) {
	a := snapTestEngine(t)
	b := snapTestEngine(t)
	a.Run(120)
	b.Run(120)
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("identically configured engines produced different snapshots")
	}
}

// TestSnapshotMixedLanes runs the round-trip equivalence under the
// head-of-line-blocking extension, whose mixed lane and per-movement
// membership counters take a distinct serialization path.
func TestSnapshotMixedLanes(t *testing.T) {
	spec := network.DefaultGridSpec()
	spec.Rows, spec.Cols = 2, 2
	spec.Capacity = 40
	g, err := network.Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Engine {
		e, err := New(Config{
			Net:         g.Network,
			Controllers: staticFactory(1),
			Demand:      NewPoissonDemand(rng.New(11), ConstantRate(0.15)),
			Router:      StraightRouter{},
			MixedLanes:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	const k, n = 70, 200
	e := build()
	e.Run(k)
	snapK := e.Snapshot()
	e.Run(n - k)
	want := e.Snapshot()
	if err := e.Restore(snapK); err != nil {
		t.Fatalf("restore: %v", err)
	}
	e.Run(n - k)
	if got := e.Snapshot(); !bytes.Equal(want, got) {
		t.Fatal("mixed-lanes resume diverged")
	}
}

// TestSnapshotHooksDiscarded pins the Reset-like hook contract: restore
// drops registered hooks, so a recorder from the interrupted run never
// fires into the resumed one.
func TestSnapshotHooksDiscarded(t *testing.T) {
	e := snapTestEngine(t)
	e.Run(30)
	snap := e.Snapshot()
	fired := 0
	e.AddHooks(Hooks{Step: func(*Engine, int) { fired++ }})
	if err := e.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	e.Run(10)
	if fired != 0 {
		t.Fatalf("discarded hook fired %d times", fired)
	}
}

// TestSnapshotPreservesPhase spot-checks a restored observable against
// the engine API (snapshot equality already implies it; this guards the
// accessor path itself).
func TestSnapshotPreservesPhase(t *testing.T) {
	e := snapTestEngine(t)
	e.Run(90)
	var phases []signal.Phase
	for _, nid := range junctionNodes(e) {
		phases = append(phases, e.CurrentPhase(nid))
	}
	snap := e.Snapshot()
	e.Run(50)
	if err := e.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for i, nid := range junctionNodes(e) {
		if p := e.CurrentPhase(nid); p != phases[i] {
			t.Fatalf("junction %d phase %d after restore, want %d", nid, p, phases[i])
		}
	}
}

// junctionNodes lists the engine's junction node IDs.
func junctionNodes(e *Engine) []network.NodeID {
	var out []network.NodeID
	for i := range e.juncs {
		out = append(out, e.juncs[i].j.Node)
	}
	return out
}
