package queue

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaneFIFO(t *testing.T) {
	var l Lane
	for i := 0; i < 10; i++ {
		l.Push(i, float64(i))
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d", l.Len())
	}
	for i := 0; i < 10; i++ {
		it, ok := l.Pop()
		if !ok || it.Vehicle != i || it.EnqueuedAt != float64(i) {
			t.Fatalf("pop %d: %+v ok=%v", i, it, ok)
		}
	}
	if _, ok := l.Pop(); ok {
		t.Fatal("pop from empty lane succeeded")
	}
}

func TestLanePeek(t *testing.T) {
	var l Lane
	if _, ok := l.Peek(); ok {
		t.Fatal("peek on empty lane succeeded")
	}
	l.Push(7, 1.5)
	it, ok := l.Peek()
	if !ok || it.Vehicle != 7 {
		t.Fatalf("peek: %+v ok=%v", it, ok)
	}
	if l.Len() != 1 {
		t.Fatal("peek consumed the item")
	}
}

func TestLaneRingBounded(t *testing.T) {
	var l Lane
	// Sustained push/pop traffic on a ring: storage must stay at the
	// high-water capacity (no unbounded growth, no reshuffling), and FIFO
	// order must be preserved throughout, including across wraparound.
	next, expect := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 5; i++ {
			l.Push(next, 0)
			next++
		}
		for i := 0; i < 5; i++ {
			it, ok := l.Pop()
			if !ok || it.Vehicle != expect {
				t.Fatalf("round %d: got %+v want vehicle %d", round, it, expect)
			}
			expect++
		}
	}
	if l.Cap() > 16 {
		t.Fatalf("ring storage grew to %d for a depth-5 queue", l.Cap())
	}
}

func TestLaneReserveNeverGrows(t *testing.T) {
	var l Lane
	l.Reserve(32)
	if l.Cap() != 32 {
		t.Fatalf("Cap = %d after Reserve(32)", l.Cap())
	}
	// Push/pop churn within the reservation must never change capacity.
	next, expect := 0, 0
	for round := 0; round < 500; round++ {
		for i := 0; i < 30; i++ {
			l.Push(next, 0)
			next++
		}
		for i := 0; i < 30; i++ {
			it, _ := l.Pop()
			if it.Vehicle != expect {
				t.Fatalf("round %d: got %+v want %d", round, it, expect)
			}
			expect++
		}
	}
	if l.Cap() != 32 {
		t.Fatalf("reserved ring regrew to %d", l.Cap())
	}
	// Shrinking reservations are ignored.
	l.Reserve(4)
	if l.Cap() != 32 {
		t.Fatal("Reserve shrank the ring")
	}
}

func TestLaneReserveKeepsContents(t *testing.T) {
	var l Lane
	for i := 0; i < 10; i++ {
		l.Push(i, float64(i))
	}
	for i := 0; i < 4; i++ {
		l.Pop()
	}
	l.Push(10, 10) // wraps in a small ring
	l.Reserve(64)
	for want := 4; want <= 10; want++ {
		it, ok := l.Pop()
		if !ok || it.Vehicle != want || it.EnqueuedAt != float64(want) {
			t.Fatalf("after Reserve: got %+v ok=%v, want vehicle %d", it, ok, want)
		}
	}
}

func TestLaneAtAndReset(t *testing.T) {
	var l Lane
	l.Push(1, 0)
	l.Push(2, 0.5)
	l.Pop()
	if l.Len() != 1 || l.At(0).Vehicle != 2 || l.At(0).EnqueuedAt != 0.5 {
		t.Fatalf("At(0) = %+v len=%d", l.At(0), l.Len())
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset did not empty the lane")
	}
	if _, ok := l.Pop(); ok {
		t.Fatal("pop after Reset succeeded")
	}
}

func TestLanePropertyFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		var l Lane
		next, expect := 0, 0
		for _, push := range ops {
			if push {
				l.Push(next, 0)
				next++
			} else if it, ok := l.Pop(); ok {
				if it.Vehicle != expect {
					return false
				}
				expect++
			}
			if l.Len() != next-expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTravelOrdering(t *testing.T) {
	var tr Travel
	tr.Add(1, 5)
	tr.Add(2, 3)
	tr.Add(3, 4)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	want := []int{2, 3, 1}
	for _, w := range want {
		a, ok := tr.PopDue(100)
		if !ok || int(a.Vehicle) != w {
			t.Fatalf("got %+v, want vehicle %d", a, w)
		}
	}
}

func TestTravelDeadline(t *testing.T) {
	var tr Travel
	tr.Add(1, 10)
	if _, ok := tr.PopDue(9.99); ok {
		t.Fatal("popped a vehicle before its arrival time")
	}
	if a, ok := tr.PopDue(10); !ok || a.Vehicle != 1 {
		t.Fatal("vehicle due exactly at deadline not popped")
	}
}

func TestTravelTieBreakInsertionOrder(t *testing.T) {
	var tr Travel
	for i := 0; i < 20; i++ {
		tr.Add(i, 7) // identical arrival times
	}
	for i := 0; i < 20; i++ {
		a, ok := tr.PopDue(7)
		if !ok || int(a.Vehicle) != i {
			t.Fatalf("tie-break violated at %d: got %+v", i, a)
		}
	}
}

func TestTravelPeek(t *testing.T) {
	var tr Travel
	if _, ok := tr.Peek(); ok {
		t.Fatal("peek on empty travel succeeded")
	}
	tr.Add(9, 2)
	a, ok := tr.Peek()
	if !ok || a.Vehicle != 9 || tr.Len() != 1 {
		t.Fatalf("peek: %+v len=%d", a, tr.Len())
	}
}

func TestTravelPropertySorted(t *testing.T) {
	f := func(times []float64) bool {
		var tr Travel
		for i, at := range times {
			if at < 0 {
				at = -at
			}
			tr.Add(i, at)
		}
		last := -1.0
		for {
			a, ok := tr.PopDue(math.Inf(1))
			if !ok {
				break
			}
			if a.At < last {
				return false
			}
			last = a.At
		}
		return tr.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
