package queue

import "testing"

// TestLaneClampChurnKeepsFIFOAndStorage models an incident clamping a
// road's effective capacity (internal/event): the lane stays reserved at
// the pre-disruption link capacity while admission is throttled, so
// churning the queue across the clamp — occupancy dropping to the
// reduced level, the head wrapping around the ring, then refilling to
// the full bound after the revert — must preserve FIFO order and never
// touch the ring storage.
func TestLaneClampChurnKeepsFIFOAndStorage(t *testing.T) {
	const full, reduced = 48, 19
	var l Lane
	l.Reserve(full)
	ringCap := l.Cap()
	next, expect := 0, 0
	push := func(n int) {
		for i := 0; i < n; i++ {
			l.Push(next, float64(next))
			next++
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			it, ok := l.Pop()
			if !ok {
				t.Fatalf("pop %d: lane empty", expect)
			}
			if it.Vehicle != expect || it.EnqueuedAt != float64(expect) {
				t.Fatalf("FIFO broken: got vehicle %d (at %v), want %d", it.Vehicle, it.EnqueuedAt, expect)
			}
			expect++
		}
	}

	push(full) // pre-incident: loaded to the bound
	// Incident window: drain to the reduced level, then churn at that
	// level long enough to wrap the head past the ring boundary many
	// times over.
	pop(full - reduced)
	for round := 0; round < 10; round++ {
		pop(reduced)
		push(reduced)
	}
	// Revert: refill to the pre-disruption bound and drain completely.
	push(full - reduced)
	pop(full)
	if l.Len() != 0 {
		t.Fatalf("lane not empty after drain: %d", l.Len())
	}
	if l.Cap() != ringCap {
		t.Fatalf("ring storage changed across the clamp: cap %d -> %d", ringCap, l.Cap())
	}
}

// TestLaneClampChurnAllocs is the allocation half of the contract: the
// clamp-churn-revert cycle above runs without a single heap allocation
// once the ring is reserved, no matter where the head sits when the
// cycle starts.
func TestLaneClampChurnAllocs(t *testing.T) {
	const full, reduced = 48, 19
	var l Lane
	l.Reserve(full)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < full; i++ {
			l.Push(i, 0)
		}
		for i := 0; i < full-reduced; i++ {
			l.Pop()
		}
		for round := 0; round < 4; round++ {
			for i := 0; i < reduced; i++ {
				l.Pop()
				l.Push(i, 1)
			}
		}
		for l.Len() > 0 {
			l.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("clamp churn allocates: %v allocs per cycle, want 0", allocs)
	}
}

// TestTravelClampChurnKeepsOrderAndStorage is the Travel counterpart:
// the in-transit heap stays reserved at the road's pre-disruption
// capacity, and cycling it between the reduced and full occupancy
// levels must keep arrivals draining in time order without growing the
// backing array.
func TestTravelClampChurnKeepsOrderAndStorage(t *testing.T) {
	const full, reduced = 48, 19
	var tr Travel
	tr.Reserve(full)
	clock := 0.0
	add := func(n int) {
		for i := 0; i < n; i++ {
			clock++
			tr.Add(int(clock), clock)
		}
	}
	lastAt := 0.0
	drain := func(n int) {
		for i := 0; i < n; i++ {
			a, ok := tr.PopDue(clock + 1)
			if !ok {
				t.Fatal("heap empty mid-drain")
			}
			if a.At < lastAt {
				t.Fatalf("time order broken: popped %v after %v", a.At, lastAt)
			}
			lastAt = a.At
		}
	}

	add(full)
	drain(full - reduced)
	for round := 0; round < 10; round++ {
		drain(reduced)
		add(reduced)
	}
	add(full - reduced)
	drain(full)
	if tr.Len() != 0 {
		t.Fatalf("heap not empty after drain: %d", tr.Len())
	}

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < full; i++ {
			tr.Add(i, float64(i))
		}
		for tr.Len() > 0 {
			tr.PopDue(float64(full))
		}
	})
	if allocs != 0 {
		t.Fatalf("reserved Travel churn allocates: %v allocs per cycle, want 0", allocs)
	}
}
