package queue

import (
	"sort"
	"testing"

	"utilbp/internal/rng"
)

// TestLaneRandomOpsProperty drives random Reserve/Push/Pop/Peek/
// HeadVehicle/At/Reset sequences against a plain-slice model and
// checks, after every operation, FIFO order, conservation (pushed −
// popped = queued), capacity bounds and the At/Peek/HeadVehicle views.
// The operation mix keeps lanes hovering near full so the ring wraps
// and regrows repeatedly — the geometry the SoA rewrite (DESIGN.md §16)
// must preserve.
func TestLaneRandomOpsProperty(t *testing.T) {
	for _, seed := range []uint64{1, 2, 7, 0x10A0E} {
		src := rng.New(seed)
		var l Lane
		var model []Item
		pushed, popped := 0, 0
		next := 0
		for op := 0; op < 3000; op++ {
			switch src.Intn(10) {
			case 0, 1, 2, 3:
				at := src.Float64() * 1000
				l.Push(next, at)
				model = append(model, Item{Vehicle: next, EnqueuedAt: at})
				next++
				pushed++
			case 4, 5, 6:
				it, ok := l.Pop()
				if ok != (len(model) > 0) {
					t.Fatalf("seed %d op %d: Pop ok=%v with model len %d", seed, op, ok, len(model))
				}
				if ok {
					if it != model[0] {
						t.Fatalf("seed %d op %d: Pop = %+v, model head %+v", seed, op, it, model[0])
					}
					model = model[1:]
					popped++
				}
			case 7:
				it, ok := l.Peek()
				hv, hok := l.HeadVehicle()
				if ok != (len(model) > 0) || hok != ok {
					t.Fatalf("seed %d op %d: Peek/HeadVehicle ok mismatch", seed, op)
				}
				if ok && (it != model[0] || int(hv) != model[0].Vehicle) {
					t.Fatalf("seed %d op %d: Peek = %+v / head %d, model %+v", seed, op, it, hv, model[0])
				}
			case 8:
				// Growing mid-stream must unwrap without reordering.
				l.Reserve(l.Len() + src.Intn(16))
			default:
				if src.Intn(50) == 0 {
					l.Reset()
					model = model[:0]
					pushed, popped = 0, 0
				}
			}
			if l.Len() != len(model) {
				t.Fatalf("seed %d op %d: Len = %d, model %d", seed, op, l.Len(), len(model))
			}
			if l.Cap() < l.Len() {
				t.Fatalf("seed %d op %d: Cap %d < Len %d", seed, op, l.Cap(), l.Len())
			}
			if pushed-popped != len(model) {
				t.Fatalf("seed %d op %d: conservation broke: %d pushed, %d popped, %d queued",
					seed, op, pushed, popped, len(model))
			}
			if len(model) > 0 {
				i := src.Intn(len(model))
				if got := l.At(i); got != model[i] {
					t.Fatalf("seed %d op %d: At(%d) = %+v, model %+v", seed, op, i, got, model[i])
				}
			}
		}
		// Drain: the full remaining order must match the model.
		for i := 0; l.Len() > 0; i++ {
			it, _ := l.Pop()
			if it != model[i] {
				t.Fatalf("seed %d drain %d: %+v, want %+v", seed, i, it, model[i])
			}
		}
	}
}

// TestTravelRandomOpsProperty checks the transit heap against a sorted
// reference: arbitrary Add/PopDue interleavings must dequeue strictly
// by (arrival time, insertion order), and PopDue must never release a
// vehicle past its deadline.
func TestTravelRandomOpsProperty(t *testing.T) {
	type entry struct {
		at  float64
		veh int
		seq int
	}
	for _, seed := range []uint64{3, 11, 0x7AFE} {
		src := rng.New(seed)
		var tr Travel
		var model []entry
		seq := 0
		clock := 0.0
		for op := 0; op < 2000; op++ {
			if src.Intn(3) > 0 {
				// Coarse times force At ties, exercising the seq tiebreak.
				at := clock + float64(src.Intn(8))
				tr.Add(seq+1000, at)
				model = append(model, entry{at: at, veh: seq + 1000, seq: seq})
				seq++
			} else {
				clock += src.Float64() * 3
				sort.SliceStable(model, func(i, j int) bool {
					if model[i].at != model[j].at {
						return model[i].at < model[j].at
					}
					return model[i].seq < model[j].seq
				})
				for {
					a, ok := tr.PopDue(clock)
					if !ok {
						if len(model) > 0 && model[0].at <= clock {
							t.Fatalf("seed %d op %d: PopDue(%g) withheld due arrival %+v",
								seed, op, clock, model[0])
						}
						break
					}
					if a.At > clock {
						t.Fatalf("seed %d op %d: PopDue(%g) released future arrival at %g", seed, op, clock, a.At)
					}
					if len(model) == 0 || int(a.Vehicle) != model[0].veh || a.At != model[0].at {
						t.Fatalf("seed %d op %d: PopDue = veh %d at %g, model head %+v",
							seed, op, a.Vehicle, a.At, model)
					}
					model = model[1:]
				}
			}
			if tr.Len() != len(model) {
				t.Fatalf("seed %d op %d: Len = %d, model %d", seed, op, tr.Len(), len(model))
			}
			if p, ok := tr.Peek(); ok && p.At > clock {
				// Peek result must be the true minimum: nothing in the model
				// may be earlier.
				for _, e := range model {
					if e.at < p.At {
						t.Fatalf("seed %d op %d: Peek at %g but model holds %g", seed, op, p.At, e.at)
					}
				}
			}
		}
	}
}
