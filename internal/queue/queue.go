// Package queue provides the FIFO primitives of the traffic model: the
// dedicated turning-lane queue (vehicles waiting at a stop line with their
// enqueue times) and a time-ordered heap for vehicles travelling along a
// road toward it.
//
// Lane is a ring buffer over structure-of-arrays storage: the vehicle
// ids and enqueue times live in two parallel rings rather than one
// []Item ring, so the serve hot loop — which peeks ids far more often
// than it needs times — streams a dense 4-byte-per-entry array instead
// of 16-byte pairs (DESIGN.md §16). Pre-sized to its road's link
// capacity a lane never touches the heap again — no append growth and
// no compaction copy, no matter how the queue churns (see DESIGN.md
// §5). Travel implements its sift operations directly on []Arrival
// rather than through container/heap, whose interface methods box every
// element and would put two heap allocations on the per-vehicle hot
// path.
package queue

// Item is one queued vehicle: its identifier and the time it joined the
// queue, from which waiting time is computed at service.
type Item struct {
	Vehicle    int
	EnqueuedAt float64
}

// Lane is a FIFO queue of vehicles, implemented as a ring buffer over
// two parallel arrays (vehicle ids and enqueue times). The zero value
// is an empty lane ready to use; Reserve pre-sizes the rings so a lane
// bounded by its road's capacity never allocates after construction.
// An unreserved (or overfull) lane grows by doubling — the storage
// never shrinks and elements are never reshuffled on pop.
type Lane struct {
	veh  []int32   // ring of vehicle ids; len(veh) is the fixed capacity
	at   []float64 // parallel ring of enqueue times
	head int       // index of the oldest element
	n    int       // number of queued elements
}

// Reserve grows the ring storage to hold at least capacity items without
// further allocation. It never shrinks. Call it at engine construction,
// sized from the road's link capacity.
func (l *Lane) Reserve(capacity int) {
	if capacity <= len(l.veh) {
		return
	}
	l.regrow(capacity)
}

// regrow moves the rings into fresh storage of the given capacity,
// unwrapping them so head returns to index 0.
func (l *Lane) regrow(capacity int) {
	veh := make([]int32, capacity)
	at := make([]float64, capacity)
	for i := 0; i < l.n; i++ {
		j := (l.head + i) % len(l.veh)
		veh[i] = l.veh[j]
		at[i] = l.at[j]
	}
	l.veh = veh
	l.at = at
	l.head = 0
}

// Len returns the number of queued vehicles.
func (l *Lane) Len() int { return l.n }

// Cap returns the ring capacity (how many vehicles fit without growth).
func (l *Lane) Cap() int { return len(l.veh) }

// Push appends a vehicle to the tail of the lane, doubling the rings
// only when they are full (never for a lane reserved at its bound).
func (l *Lane) Push(vehicle int, at float64) {
	if l.n == len(l.veh) {
		next := 2 * len(l.veh)
		if next < 8 {
			next = 8
		}
		l.regrow(next)
	}
	// head < len and n <= len, so one conditional subtract wraps the tail.
	tail := l.head + l.n
	if tail >= len(l.veh) {
		tail -= len(l.veh)
	}
	l.veh[tail] = int32(vehicle)
	l.at[tail] = at
	l.n++
}

// Pop removes and returns the head of the lane. The second result is false
// when the lane is empty.
func (l *Lane) Pop() (Item, bool) {
	if l.n == 0 {
		return Item{}, false
	}
	it := Item{Vehicle: int(l.veh[l.head]), EnqueuedAt: l.at[l.head]}
	l.head++
	if l.head == len(l.veh) {
		l.head = 0
	}
	l.n--
	return it, true
}

// Peek returns the head of the lane without removing it.
func (l *Lane) Peek() (Item, bool) {
	if l.n == 0 {
		return Item{}, false
	}
	return Item{Vehicle: int(l.veh[l.head]), EnqueuedAt: l.at[l.head]}, true
}

// HeadVehicle returns the id of the head vehicle without touching the
// enqueue-time ring — the mixed-lane head-of-line check needs only the
// id, and the narrower load keeps that probe on one cache line. The
// second result is false when the lane is empty.
func (l *Lane) HeadVehicle() (int32, bool) {
	if l.n == 0 {
		return 0, false
	}
	return l.veh[l.head], true
}

// At returns the i-th queued item counted from the head (0-based). It is
// intended for end-of-run accounting and assertions; callers must keep
// i < Len().
func (l *Lane) At(i int) Item {
	j := (l.head + i) % len(l.veh)
	return Item{Vehicle: int(l.veh[j]), EnqueuedAt: l.at[j]}
}

// Reset empties the lane, keeping the ring storage.
func (l *Lane) Reset() {
	l.head = 0
	l.n = 0
}

// Arrival is a vehicle in transit: it reaches the stop line (and joins a
// lane) at time At. Seq breaks ties so equal arrival times dequeue in
// insertion order, keeping simulations deterministic. The 32-bit fields
// keep the entry at 16 bytes — heaps are pre-sized per road from link
// capacity, so the entry size is a direct per-engine memory term.
type Arrival struct {
	At      float64
	Vehicle int32
	seq     int32
}

// less orders arrivals by (At, seq).
func (a Arrival) less(b Arrival) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// Travel holds vehicles in transit along one road, ordered by stop-line
// arrival time. The zero value is ready to use; Reserve pre-sizes the
// backing storage so a heap bounded by its road's capacity never
// allocates after construction.
type Travel struct {
	h   []Arrival
	seq int32
}

// Reserve grows the heap's backing storage to hold at least capacity
// arrivals without further allocation. It never shrinks.
func (t *Travel) Reserve(capacity int) {
	if capacity <= cap(t.h) {
		return
	}
	grown := make([]Arrival, len(t.h), capacity)
	copy(grown, t.h)
	t.h = grown
}

// Len returns the number of vehicles in transit.
func (t *Travel) Len() int { return len(t.h) }

// Add schedules a vehicle to reach the stop line at time at.
func (t *Travel) Add(vehicle int, at float64) {
	t.seq++
	t.h = append(t.h, Arrival{At: at, Vehicle: int32(vehicle), seq: t.seq})
	// Sift up.
	h := t.h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// PopDue removes and returns the earliest vehicle whose arrival time is
// at or before deadline. The second result is false when none is due.
func (t *Travel) PopDue(deadline float64) (Arrival, bool) {
	if len(t.h) == 0 || t.h[0].At > deadline {
		return Arrival{}, false
	}
	h := t.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = Arrival{}
	h = h[:n]
	t.h = h
	// Sift down.
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h[r].less(h[child]) {
			child = r
		}
		if !h[child].less(h[i]) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top, true
}

// Reset empties the transit set, keeping the backing storage and the
// sequence counter (determinism only needs relative order within a run,
// but Reset rewinds the counter too so replays are byte-identical).
func (t *Travel) Reset() {
	t.h = t.h[:0]
	t.seq = 0
}

// Peek returns the earliest in-transit vehicle without removing it.
func (t *Travel) Peek() (Arrival, bool) {
	if len(t.h) == 0 {
		return Arrival{}, false
	}
	return t.h[0], true
}
