// Package queue provides the FIFO primitives of the traffic model: the
// dedicated turning-lane queue (vehicles waiting at a stop line with their
// enqueue times) and a time-ordered heap for vehicles travelling along a
// road toward it.
package queue

import "container/heap"

// Item is one queued vehicle: its identifier and the time it joined the
// queue, from which waiting time is computed at service.
type Item struct {
	Vehicle    int
	EnqueuedAt float64
}

// Lane is a FIFO queue of vehicles. The zero value is an empty lane ready
// to use. It is implemented as a slice with a moving head and periodic
// compaction so sustained push/pop traffic does not grow memory without
// bound.
type Lane struct {
	items []Item
	head  int
}

// Len returns the number of queued vehicles.
func (l *Lane) Len() int { return len(l.items) - l.head }

// Push appends a vehicle to the tail of the lane.
func (l *Lane) Push(vehicle int, at float64) {
	l.items = append(l.items, Item{Vehicle: vehicle, EnqueuedAt: at})
}

// Pop removes and returns the head of the lane. The second result is false
// when the lane is empty.
func (l *Lane) Pop() (Item, bool) {
	if l.head >= len(l.items) {
		return Item{}, false
	}
	it := l.items[l.head]
	l.items[l.head] = Item{}
	l.head++
	if l.head > 64 && l.head*2 >= len(l.items) {
		n := copy(l.items, l.items[l.head:])
		l.items = l.items[:n]
		l.head = 0
	}
	return it, true
}

// Peek returns the head of the lane without removing it.
func (l *Lane) Peek() (Item, bool) {
	if l.head >= len(l.items) {
		return Item{}, false
	}
	return l.items[l.head], true
}

// Items returns the queued items in order, head first. The returned slice
// aliases internal storage and must not be retained across mutations; it
// is intended for end-of-run accounting and assertions.
func (l *Lane) Items() []Item { return l.items[l.head:] }

// Reset empties the lane.
func (l *Lane) Reset() {
	l.items = l.items[:0]
	l.head = 0
}

// Arrival is a vehicle in transit: it reaches the stop line (and joins a
// lane) at time At. Seq breaks ties so equal arrival times dequeue in
// insertion order, keeping simulations deterministic.
type Arrival struct {
	At      float64
	Vehicle int
	seq     int
}

// arrivalHeap implements container/heap ordering by (At, seq).
type arrivalHeap []Arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(Arrival)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Travel holds vehicles in transit along one road, ordered by stop-line
// arrival time. The zero value is ready to use.
type Travel struct {
	h   arrivalHeap
	seq int
}

// Len returns the number of vehicles in transit.
func (t *Travel) Len() int { return len(t.h) }

// Add schedules a vehicle to reach the stop line at time at.
func (t *Travel) Add(vehicle int, at float64) {
	t.seq++
	heap.Push(&t.h, Arrival{At: at, Vehicle: vehicle, seq: t.seq})
}

// PopDue removes and returns the earliest vehicle whose arrival time is
// at or before deadline. The second result is false when none is due.
func (t *Travel) PopDue(deadline float64) (Arrival, bool) {
	if len(t.h) == 0 || t.h[0].At > deadline {
		return Arrival{}, false
	}
	return heap.Pop(&t.h).(Arrival), true
}

// Peek returns the earliest in-transit vehicle without removing it.
func (t *Travel) Peek() (Arrival, bool) {
	if len(t.h) == 0 {
		return Arrival{}, false
	}
	return t.h[0], true
}
