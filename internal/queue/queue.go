// Package queue provides the FIFO primitives of the traffic model: the
// dedicated turning-lane queue (vehicles waiting at a stop line with their
// enqueue times) and a time-ordered heap for vehicles travelling along a
// road toward it.
//
// Both containers are allocation-free in steady state: once their backing
// slices have grown to the working-set size, push/pop traffic reuses the
// storage. Travel implements its sift operations directly on []Arrival
// rather than through container/heap, whose interface methods box every
// element and would put two heap allocations on the per-vehicle hot path.
package queue

// Item is one queued vehicle: its identifier and the time it joined the
// queue, from which waiting time is computed at service.
type Item struct {
	Vehicle    int
	EnqueuedAt float64
}

// Lane is a FIFO queue of vehicles. The zero value is an empty lane ready
// to use. It is implemented as a slice with a moving head and periodic
// compaction so sustained push/pop traffic does not grow memory without
// bound.
type Lane struct {
	items []Item
	head  int
}

// Len returns the number of queued vehicles.
func (l *Lane) Len() int { return len(l.items) - l.head }

// Push appends a vehicle to the tail of the lane.
func (l *Lane) Push(vehicle int, at float64) {
	l.items = append(l.items, Item{Vehicle: vehicle, EnqueuedAt: at})
}

// Pop removes and returns the head of the lane. The second result is false
// when the lane is empty.
func (l *Lane) Pop() (Item, bool) {
	if l.head >= len(l.items) {
		return Item{}, false
	}
	it := l.items[l.head]
	l.items[l.head] = Item{}
	l.head++
	if l.head > 64 && l.head*2 >= len(l.items) {
		n := copy(l.items, l.items[l.head:])
		l.items = l.items[:n]
		l.head = 0
	}
	return it, true
}

// Peek returns the head of the lane without removing it.
func (l *Lane) Peek() (Item, bool) {
	if l.head >= len(l.items) {
		return Item{}, false
	}
	return l.items[l.head], true
}

// Items returns the queued items in order, head first. The returned slice
// aliases internal storage and must not be retained across mutations; it
// is intended for end-of-run accounting and assertions.
func (l *Lane) Items() []Item { return l.items[l.head:] }

// Reset empties the lane.
func (l *Lane) Reset() {
	l.items = l.items[:0]
	l.head = 0
}

// Arrival is a vehicle in transit: it reaches the stop line (and joins a
// lane) at time At. Seq breaks ties so equal arrival times dequeue in
// insertion order, keeping simulations deterministic.
type Arrival struct {
	At      float64
	Vehicle int
	seq     int
}

// less orders arrivals by (At, seq).
func (a Arrival) less(b Arrival) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// Travel holds vehicles in transit along one road, ordered by stop-line
// arrival time. The zero value is ready to use.
type Travel struct {
	h   []Arrival
	seq int
}

// Len returns the number of vehicles in transit.
func (t *Travel) Len() int { return len(t.h) }

// Add schedules a vehicle to reach the stop line at time at.
func (t *Travel) Add(vehicle int, at float64) {
	t.seq++
	t.h = append(t.h, Arrival{At: at, Vehicle: vehicle, seq: t.seq})
	// Sift up.
	h := t.h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// PopDue removes and returns the earliest vehicle whose arrival time is
// at or before deadline. The second result is false when none is due.
func (t *Travel) PopDue(deadline float64) (Arrival, bool) {
	if len(t.h) == 0 || t.h[0].At > deadline {
		return Arrival{}, false
	}
	h := t.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = Arrival{}
	h = h[:n]
	t.h = h
	// Sift down.
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h[r].less(h[child]) {
			child = r
		}
		if !h[child].less(h[i]) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top, true
}

// Reset empties the transit set, keeping the backing storage and the
// sequence counter (determinism only needs relative order within a run,
// but Reset rewinds the counter too so replays are byte-identical).
func (t *Travel) Reset() {
	t.h = t.h[:0]
	t.seq = 0
}

// Peek returns the earliest in-transit vehicle without removing it.
func (t *Travel) Peek() (Arrival, bool) {
	if len(t.h) == 0 {
		return Arrival{}, false
	}
	return t.h[0], true
}
