package queue

import "utilbp/internal/snap"

// SnapshotState implements snap.Snapshotter: the lane is serialized
// logically, head-to-tail, so the bytes are independent of where the
// ring's contents happen to sit in storage — two lanes holding the same
// vehicles in the same order snapshot identically regardless of their
// push/pop history. Ring capacity is not captured: it is a performance
// property (reserved from road capacity at engine construction), not
// simulation state.
func (l *Lane) SnapshotState(w *snap.Writer) {
	w.Int(l.n)
	for i := 0; i < l.n; i++ {
		it := l.At(i)
		w.Int(it.Vehicle)
		w.Float64(it.EnqueuedAt)
	}
}

// RestoreState implements snap.Snapshotter, rebuilding the queue
// contents in FIFO order over the existing ring storage (growing it
// only if the snapshot holds more items than the ring ever did).
func (l *Lane) RestoreState(r *snap.Reader) error {
	l.Reset()
	n := r.Int()
	// A corrupt count cannot run away: every item read past the stream's
	// end trips the reader's sticky error and ends the loop.
	for i := 0; i < n && r.Err() == nil; i++ {
		v := r.Int()
		at := r.Float64()
		l.Push(v, at)
	}
	return r.Err()
}

// SnapshotState implements snap.Snapshotter: the heap's backing array
// is captured verbatim — array order, per-entry tie-break sequence
// numbers and the running counter — because PopDue's tie-breaking
// depends on the exact heap shape, not just the multiset of arrivals.
// Restoring the array byte-for-byte is what keeps a restored run's
// service order identical to the uninterrupted one.
func (t *Travel) SnapshotState(w *snap.Writer) {
	w.Int32(t.seq)
	w.Int(len(t.h))
	for i := range t.h {
		a := &t.h[i]
		w.Float64(a.At)
		w.Int32(a.Vehicle)
		w.Int32(a.seq)
	}
}

// RestoreState implements snap.Snapshotter, reinstating the exact heap
// array and sequence counter a SnapshotState captured.
func (t *Travel) RestoreState(r *snap.Reader) error {
	t.Reset()
	t.seq = r.Int32()
	n := r.Int()
	if n > 0 && n <= r.Len() {
		// Pre-size only for plausible counts (each entry is 16 bytes); a
		// corrupt count falls through to the loop, where the sticky
		// reader error stops it on the first truncated entry.
		t.Reserve(n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		t.h = append(t.h, Arrival{
			At:      r.Float64(),
			Vehicle: r.Int32(),
			seq:     r.Int32(),
		})
	}
	return r.Err()
}
