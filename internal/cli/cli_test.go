package cli

import (
	"testing"

	"utilbp/internal/scenario"
)

func TestParsePattern(t *testing.T) {
	cases := map[string]scenario.Pattern{
		"I": scenario.PatternI, "i": scenario.PatternI, "1": scenario.PatternI,
		"II": scenario.PatternII, "2": scenario.PatternII,
		"iii": scenario.PatternIII, "3": scenario.PatternIII,
		"IV": scenario.PatternIV, "4": scenario.PatternIV,
		"mixed": scenario.PatternMixed, "M": scenario.PatternMixed,
		" II ": scenario.PatternII,
	}
	for in, want := range cases {
		got, err := ParsePattern(in)
		if err != nil || got != want {
			t.Errorf("ParsePattern(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "V", "0", "all"} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q) accepted", bad)
		}
	}
}

func TestPickFactory(t *testing.T) {
	setup := scenario.Default()
	cases := map[string]string{
		"util":    "UTIL-BP",
		"UTIL-BP": "UTIL-BP",
		"cap":     "CAP-BP",
		"capnorm": "CAP-BP-NORM",
		"orig":    "ORIG-BP",
		"fixed":   "FIXED",
	}
	for in, want := range cases {
		f, err := PickFactory(setup, in, 16)
		if err != nil {
			t.Errorf("PickFactory(%q): %v", in, err)
			continue
		}
		if f.Name() != want {
			t.Errorf("PickFactory(%q) = %q, want %q", in, f.Name(), want)
		}
	}
	if _, err := PickFactory(setup, "magic", 16); err == nil {
		t.Error("unknown controller accepted")
	}
}

func TestControllerNamesResolvable(t *testing.T) {
	setup := scenario.Default()
	for _, name := range ControllerNames() {
		if _, err := PickFactory(setup, name, 20); err != nil {
			t.Errorf("advertised name %q not resolvable: %v", name, err)
		}
	}
}

func TestParsePeriodRange(t *testing.T) {
	got, err := ParsePeriodRange("10:20:5")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 15, 20}
	if len(got) != len(want) {
		t.Fatalf("periods = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("periods = %v, want %v", got, want)
		}
	}
	single, err := ParsePeriodRange("16:16:2")
	if err != nil || len(single) != 1 || single[0] != 16 {
		t.Errorf("single period: %v, %v", single, err)
	}
	for _, bad := range []string{"", "10:20", "a:b:c", "0:10:2", "20:10:2", "10:20:0"} {
		if _, err := ParsePeriodRange(bad); err == nil {
			t.Errorf("range %q accepted", bad)
		}
	}
}
