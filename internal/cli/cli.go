// Package cli holds the flag-parsing helpers shared by the command-line
// tools: pattern and controller-name resolution against a scenario setup.
package cli

import (
	"fmt"
	"strings"

	"utilbp/internal/scenario"
	"utilbp/internal/signal"
)

// ParsePattern resolves a Table II pattern name ("I".."IV", "1".."4",
// "mixed"/"m", "rush"/"r", case-insensitive).
func ParsePattern(s string) (scenario.Pattern, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "I", "1":
		return scenario.PatternI, nil
	case "II", "2":
		return scenario.PatternII, nil
	case "III", "3":
		return scenario.PatternIII, nil
	case "IV", "4":
		return scenario.PatternIV, nil
	case "MIXED", "M":
		return scenario.PatternMixed, nil
	case "RUSH", "R":
		return scenario.PatternRush, nil
	}
	return 0, fmt.Errorf("unknown pattern %q (want I, II, III, IV, mixed or rush)", s)
}

// ControllerNames lists the controller families PickFactory accepts,
// delegating to the scenario-layer spec syntax.
func ControllerNames() []string {
	return scenario.ControllerSpecNames()
}

// PickFactory resolves a controller spec string ("util", "cap:20",
// "maxpressure:12", "gapout:8,40,3", "bp-est:0.05", ...) to a factory
// configured from the setup. The legacy -period flag still applies to
// the fixed-slot and pretimed families when the spec itself does not
// carry a period, so "cap -period 20" and "cap:20" stay equivalent.
func PickFactory(setup scenario.Setup, name string, period int) (signal.Factory, error) {
	spec, err := scenario.ParseControllerSpec(name)
	if err != nil {
		return nil, err
	}
	if spec.PeriodSec == 0 && period > 0 {
		switch spec.Kind {
		case scenario.ControllerCap, scenario.ControllerCapNorm,
			scenario.ControllerOrig, scenario.ControllerFixed:
			spec.PeriodSec = period
		}
	}
	return setup.Controller(spec)
}

// ParsePeriodRange parses a "min:max:step" sweep specification in seconds
// (e.g. "10:80:2") into the period list.
func ParsePeriodRange(s string) ([]int, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("period range %q: want min:max:step", s)
	}
	var min, max, step int
	if _, err := fmt.Sscanf(s, "%d:%d:%d", &min, &max, &step); err != nil {
		return nil, fmt.Errorf("period range %q: %v", s, err)
	}
	if min <= 0 || max < min || step <= 0 {
		return nil, fmt.Errorf("period range %q: need 0 < min <= max and step > 0", s)
	}
	var out []int
	for p := min; p <= max; p += step {
		out = append(out, p)
	}
	return out, nil
}
