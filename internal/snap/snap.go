// Package snap provides the deterministic binary codec behind engine
// snapshot/restore (DESIGN.md §14): a little-endian, fixed-width Writer
// and a sticky-error Reader, plus the Snapshotter interface stateful
// collaborators (controllers, sensors, demand processes, routers)
// implement to ride along in an engine snapshot.
//
// The encoding is deliberately primitive — no varints, no reflection,
// no field tags: every value is written at a fixed width in a fixed
// order, so the byte stream is a pure function of the serialized state
// and two snapshots of identical state compare equal with bytes.Equal.
// That property is load-bearing: the snapshot/restore equivalence tests
// (and the chaos harness) pin "restored run equals uninterrupted run"
// by comparing snapshot bytes, so the snapshot doubles as a state hash.
// The package sits at the bottom of the dependency graph and imports
// only the standard library.
package snap

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Snapshotter is implemented by stateful components that participate in
// an engine snapshot: SnapshotState appends the component's mutable
// state to the writer, and RestoreState rewinds the component to the
// state a prior SnapshotState captured. The two must be exact inverses
// — a restore followed by a snapshot must reproduce the original bytes
// — and RestoreState must consume exactly the bytes SnapshotState
// wrote (the engine hands each component a bounded sub-reader and
// rejects trailing bytes). Stateless components simply do not implement
// the interface; the engine records an empty section for them.
type Snapshotter interface {
	// SnapshotState appends the component's mutable state.
	SnapshotState(w *Writer)
	// RestoreState rewinds the component to a captured state.
	RestoreState(r *Reader) error
}

// Writer accumulates a snapshot byte stream. The zero value is ready to
// use; all integers are written little-endian at fixed width.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated stream. The slice aliases the writer's
// buffer; the caller owns it once the writer is discarded.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uint64 appends v little-endian.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Int appends v as a 64-bit little-endian two's-complement value.
func (w *Writer) Int(v int) { w.Uint64(uint64(int64(v))) }

// Int32 appends v as a 32-bit little-endian two's-complement value.
func (w *Writer) Int32(v int32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(v))
}

// Float64 appends v's IEEE 754 bit pattern, preserving it exactly
// (including negative zero and NaN payloads).
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// Bool appends one byte, 1 for true.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// String appends the string length-prefixed.
func (w *Writer) String(s string) {
	w.Uint64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Section appends a length-prefixed sub-block: fill writes the block
// body, and the length is patched in afterwards. Sections bound a
// component's sub-snapshot so a restore can hand the component exactly
// its own bytes (and verify it consumed them all).
func (w *Writer) Section(fill func(*Writer)) {
	at := len(w.buf)
	w.Uint64(0) // length placeholder, patched below
	fill(w)
	binary.LittleEndian.PutUint64(w.buf[at:], uint64(len(w.buf)-at-8))
}

// Reader consumes a snapshot byte stream written by Writer. Decoding
// errors (truncation, bounds) stick: once Err is non-nil every
// subsequent read returns the zero value, so call sites decode whole
// structures and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over the stream.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, nil while the stream is good.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// take consumes n bytes, returning nil after truncation.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Len() < n {
		r.fail("snap: truncated stream: need %d bytes, have %d", n, r.Len())
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint64 reads a little-endian 64-bit value.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads a 64-bit two's-complement value as an int.
func (r *Reader) Int() int { return int(int64(r.Uint64())) }

// Int32 reads a little-endian 32-bit two's-complement value.
func (r *Reader) Int32() int32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(b))
}

// Float64 reads an IEEE 754 bit pattern.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Bool reads one byte; any non-zero value is true.
func (r *Reader) Bool() bool {
	b := r.take(1)
	return b != nil && b[0] != 0
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uint64()
	if n > uint64(r.Len()) {
		r.fail("snap: truncated string: need %d bytes, have %d", n, r.Len())
		return ""
	}
	return string(r.take(int(n)))
}

// Section reads a length-prefixed sub-block and returns a bounded
// reader over it, advancing past the block. A truncated length poisons
// the parent and yields an empty sub-reader.
func (r *Reader) Section() *Reader {
	n := r.Uint64()
	if n > uint64(r.Len()) {
		r.fail("snap: truncated section: need %d bytes, have %d", n, r.Len())
		return &Reader{err: r.err}
	}
	return NewReader(r.take(int(n)))
}

// Close verifies the stream decoded cleanly and was fully consumed,
// the end-of-decode check restore paths call once per (sub-)reader.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Len() != 0 {
		return fmt.Errorf("snap: %d trailing bytes after decode", r.Len())
	}
	return nil
}
