package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean not 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("mean wrong")
	}
}

func TestStd(t *testing.T) {
	if Std(nil) != 0 || Std([]float64{5}) != 0 {
		t.Error("degenerate std not 0")
	}
	if !almost(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Errorf("std = %v, want 2", Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	if min, max := MinMax(nil); min != 0 || max != 0 {
		t.Error("empty MinMax not zero")
	}
}

func TestArgMinMax(t *testing.T) {
	xs := []float64{5, 2, 8, 2}
	if ArgMin(xs) != 1 {
		t.Errorf("ArgMin = %d (ties should take first)", ArgMin(xs))
	}
	if ArgMax(xs) != 2 {
		t.Errorf("ArgMax = %d", ArgMax(xs))
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Error("empty arg should be -1")
	}
}

func TestArgMinProperty(t *testing.T) {
	f := func(xs []float64) bool {
		i := ArgMin(xs)
		if len(xs) == 0 {
			return i == -1
		}
		for _, x := range xs {
			if x < xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	out := MovingAverage(xs, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if !almost(out[i], want[i]) {
			t.Errorf("ma[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	copyOut := MovingAverage(xs, 1)
	for i := range xs {
		if copyOut[i] != xs[i] {
			t.Error("window 1 should copy")
		}
	}
}

func TestImprovement(t *testing.T) {
	imp, err := Improvement(100, 87)
	if err != nil || !almost(imp, 0.13) {
		t.Errorf("Improvement = %v, %v", imp, err)
	}
	if _, err := Improvement(0, 1); err == nil {
		t.Error("zero baseline accepted")
	}
	neg, err := Improvement(100, 110)
	if err != nil || !almost(neg, -0.1) {
		t.Errorf("worse candidate: %v", neg)
	}
}

func TestCumulativeSum(t *testing.T) {
	out := CumulativeSum([]float64{1, 2, 3})
	if out[0] != 1 || out[1] != 3 || out[2] != 6 {
		t.Errorf("cumsum = %v", out)
	}
}

func TestTrend(t *testing.T) {
	if !almost(Trend([]float64{0, 2, 4, 6}), 2) {
		t.Errorf("rising trend = %v, want 2", Trend([]float64{0, 2, 4, 6}))
	}
	if !almost(Trend([]float64{5, 5, 5}), 0) {
		t.Error("flat trend not 0")
	}
	if Trend([]float64{9}) != 0 {
		t.Error("single point trend not 0")
	}
	if Trend([]float64{10, 7, 4, 1}) >= 0 {
		t.Error("falling trend not negative")
	}
}
