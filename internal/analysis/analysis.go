// Package analysis provides the small numeric helpers the experiment
// harness uses to post-process series: summaries, argmin/argmax, moving
// averages and relative comparisons.
package analysis

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// Std returns the population standard deviation (0 for fewer than two
// values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MinMax returns the smallest and largest values; zeros for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// ArgMin returns the index of the smallest value (-1 for empty input).
// Ties resolve to the first occurrence.
func ArgMin(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best == -1 || x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest value (-1 for empty input).
func ArgMax(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best == -1 || x > xs[best] {
			best = i
		}
	}
	return best
}

// MovingAverage returns the centered moving average with the given odd
// window (window <= 1 copies the input). Edges shrink the window.
func MovingAverage(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	if window <= 1 {
		copy(out, xs)
		return out
	}
	half := window / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		total := 0.0
		for j := lo; j <= hi; j++ {
			total += xs[j]
		}
		out[i] = total / float64(hi-lo+1)
	}
	return out
}

// Improvement returns the relative improvement of candidate over baseline
// for a lower-is-better metric, e.g. 0.13 when the candidate is 13%
// faster. It returns an error when the baseline is non-positive.
func Improvement(baseline, candidate float64) (float64, error) {
	if baseline <= 0 {
		return 0, fmt.Errorf("analysis: baseline must be positive, got %v", baseline)
	}
	return (baseline - candidate) / baseline, nil
}

// CumulativeSum returns the running sum of xs.
func CumulativeSum(xs []float64) []float64 {
	out := make([]float64, len(xs))
	total := 0.0
	for i, x := range xs {
		total += x
		out[i] = total
	}
	return out
}

// Trend fits a least-squares line to (0..n-1, xs) and returns its slope;
// a clearly positive slope on a queue series indicates instability.
func Trend(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i, y := range xs {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
