package vehicle

import (
	"fmt"

	"utilbp/internal/network"
	"utilbp/internal/snap"
)

// Arena is the structure-of-arrays vehicle store (DESIGN.md §16): one
// column per Vehicle field plus the pending-movement column, split into
// the hot group the serve/travel substeps touch every mini-slot (route,
// pending turn, junction counter, accumulated queue wait) and the cold
// group only spawn, admission, exit and end-of-run statistics read
// (entry road and the three lifecycle timestamps). A vehicle is
// addressed by its ID, which is simply its row index — vehicles are
// appended in spawn order and never removed, so the columns stay dense
// and the serve loop's per-vehicle updates are sequential 4- and 8-byte
// stores instead of scattered writes into 56-byte Vehicle structs.
//
// The zero value is an empty arena ready to use; Reserve pre-sizes the
// columns so the spawn path never grows a slice mid-run. The arena is
// engine-local mutable state — never share one across engines.
type Arena struct {
	// Hot columns (serve/travel).
	route     []RouteID
	pending   []network.Turn
	junctions []int32
	queueWait []float64
	// Cold columns (spawn/exit/statistics).
	entryRoad []network.RoadID
	spawnedAt []float64
	enteredAt []float64
	exitedAt  []float64
}

// Len returns the number of spawned vehicles.
func (a *Arena) Len() int { return len(a.route) }

// Reserve grows every column's capacity to hold at least capacity
// vehicles without further allocation. It never shrinks.
func (a *Arena) Reserve(capacity int) {
	if capacity <= cap(a.route) {
		return
	}
	a.route = append(make([]RouteID, 0, capacity), a.route...)
	a.pending = append(make([]network.Turn, 0, capacity), a.pending...)
	a.junctions = append(make([]int32, 0, capacity), a.junctions...)
	a.queueWait = append(make([]float64, 0, capacity), a.queueWait...)
	a.entryRoad = append(make([]network.RoadID, 0, capacity), a.entryRoad...)
	a.spawnedAt = append(make([]float64, 0, capacity), a.spawnedAt...)
	a.enteredAt = append(make([]float64, 0, capacity), a.enteredAt...)
	a.exitedAt = append(make([]float64, 0, capacity), a.exitedAt...)
}

// Reset empties the arena, keeping the column storage.
func (a *Arena) Reset() {
	a.route = a.route[:0]
	a.pending = a.pending[:0]
	a.junctions = a.junctions[:0]
	a.queueWait = a.queueWait[:0]
	a.entryRoad = a.entryRoad[:0]
	a.spawnedAt = a.spawnedAt[:0]
	a.enteredAt = a.enteredAt[:0]
	a.exitedAt = a.exitedAt[:0]
}

// Spawn appends a vehicle in the just-spawned state and returns its ID
// (the row index).
func (a *Arena) Spawn(entry network.RoadID, at float64, route RouteID) ID {
	id := ID(len(a.route))
	a.route = append(a.route, route)
	a.pending = append(a.pending, network.Straight)
	a.junctions = append(a.junctions, 0)
	a.queueWait = append(a.queueWait, 0)
	a.entryRoad = append(a.entryRoad, entry)
	a.spawnedAt = append(a.spawnedAt, at)
	a.enteredAt = append(a.enteredAt, Unset)
	a.exitedAt = append(a.exitedAt, Unset)
	return id
}

// Route returns the vehicle's interned route.
func (a *Arena) Route(id ID) RouteID { return a.route[id] }

// Junctions returns how many junctions the vehicle has been served
// through — the encounter index RouteTable.TurnAt resolves.
func (a *Arena) Junctions(id ID) int { return int(a.junctions[id]) }

// PendingTurn returns the movement the vehicle queued (or will queue)
// for at the junction ahead.
func (a *Arena) PendingTurn(id ID) network.Turn { return a.pending[id] }

// SetPendingTurn records the vehicle's resolved movement at the
// junction ahead.
func (a *Arena) SetPendingTurn(id ID, turn network.Turn) { a.pending[id] = turn }

// QueueWait returns the vehicle's accumulated queuing time.
func (a *Arena) QueueWait(id ID) float64 { return a.queueWait[id] }

// AddQueueWait adds accrued queuing time to the vehicle.
func (a *Arena) AddQueueWait(id ID, w float64) { a.queueWait[id] += w }

// Serve records one service event: the queuing time since the vehicle
// joined the lane, plus one junction crossed. It is the serve substep's
// single per-vehicle arena touch — two hot-column stores.
func (a *Arena) Serve(id ID, wait float64) {
	a.queueWait[id] += wait
	a.junctions[id]++
}

// Admit records the vehicle entering its entry road at time t, folding
// the spawn-queue wait into its queuing time.
func (a *Arena) Admit(id ID, t float64) {
	a.enteredAt[id] = t
	a.queueWait[id] += t - a.spawnedAt[id]
}

// Exit records the vehicle leaving the network at time t.
func (a *Arena) Exit(id ID, t float64) { a.exitedAt[id] = t }

// EntryRoad returns the road the vehicle spawned onto.
func (a *Arena) EntryRoad(id ID) network.RoadID { return a.entryRoad[id] }

// SpawnedAt returns when the arrival process generated the vehicle.
func (a *Arena) SpawnedAt(id ID) float64 { return a.spawnedAt[id] }

// EnteredAt returns when the vehicle joined its entry road, Unset while
// it still waits in the spawn queue.
func (a *Arena) EnteredAt(id ID) float64 { return a.enteredAt[id] }

// ExitedAt returns when the vehicle left the network, Unset while it is
// still inside.
func (a *Arena) ExitedAt(id ID) float64 { return a.exitedAt[id] }

// InNetwork reports whether the vehicle has entered and not yet exited.
func (a *Arena) InNetwork(id ID) bool { return a.enteredAt[id] != Unset && a.exitedAt[id] == Unset }

// Done reports whether the vehicle has left the network.
func (a *Arena) Done(id ID) bool { return a.exitedAt[id] != Unset }

// TripTime returns the vehicle's entry-to-exit duration, or Unset when
// incomplete.
func (a *Arena) TripTime(id ID) float64 {
	if a.enteredAt[id] == Unset || a.exitedAt[id] == Unset {
		return Unset
	}
	return a.exitedAt[id] - a.enteredAt[id]
}

// View materializes the vehicle's row as a Vehicle value. The copy is
// for observation — writing to it does not touch the arena.
func (a *Arena) View(id ID) Vehicle {
	return Vehicle{
		ID:        id,
		Route:     a.route[id],
		EntryRoad: a.entryRoad[id],
		SpawnedAt: a.spawnedAt[id],
		EnteredAt: a.enteredAt[id],
		ExitedAt:  a.exitedAt[id],
		QueueWait: a.queueWait[id],
		Junctions: int(a.junctions[id]),
	}
}

// Vehicles materializes the whole arena as a []Vehicle, appending to
// dst (pass nil to allocate fresh). It is the row-major observation
// bridge for statistics, trace export and tests; the simulation itself
// never materializes rows.
func (a *Arena) Vehicles(dst []Vehicle) []Vehicle {
	if need := len(dst) + a.Len(); cap(dst) < need {
		grown := make([]Vehicle, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for id := 0; id < a.Len(); id++ {
		dst = append(dst, a.View(ID(id)))
	}
	return dst
}

// SnapshotState implements snap.Snapshotter: the arena is serialized
// column-major — each column written contiguously, hot columns first —
// matching the in-memory layout (the snapshot v2 format delta of
// DESIGN.md §16). Vehicle IDs are not captured: an ID is its row index.
func (a *Arena) SnapshotState(w *snap.Writer) {
	w.Int(a.Len())
	for _, v := range a.route {
		w.Uint64(uint64(v))
	}
	for _, v := range a.pending {
		w.Int32(int32(v))
	}
	for _, v := range a.junctions {
		w.Int32(v)
	}
	for _, v := range a.queueWait {
		w.Float64(v)
	}
	for _, v := range a.entryRoad {
		w.Int(int(v))
	}
	for _, v := range a.spawnedAt {
		w.Float64(v)
	}
	for _, v := range a.enteredAt {
		w.Float64(v)
	}
	for _, v := range a.exitedAt {
		w.Float64(v)
	}
}

// RestoreState implements snap.Snapshotter, reinstating the columns a
// SnapshotState captured. Column storage is reused when it is large
// enough (the engine-reuse contract: restoring into a pooled engine
// does not reallocate its arenas).
func (a *Arena) RestoreState(r *snap.Reader) error {
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	// Each vehicle needs well over one stream byte, so a count beyond
	// the remaining bytes is corrupt — reject it before sizing columns.
	if n < 0 || n > r.Len() {
		return fmt.Errorf("vehicle: snapshot arena count %d exceeds stream", n)
	}
	a.route = growTo(a.route, n)
	a.pending = growTo(a.pending, n)
	a.junctions = growTo(a.junctions, n)
	a.queueWait = growTo(a.queueWait, n)
	a.entryRoad = growTo(a.entryRoad, n)
	a.spawnedAt = growTo(a.spawnedAt, n)
	a.enteredAt = growTo(a.enteredAt, n)
	a.exitedAt = growTo(a.exitedAt, n)
	for i := range a.route {
		a.route[i] = RouteID(r.Uint64())
	}
	for i := range a.pending {
		a.pending[i] = network.Turn(r.Int32())
	}
	for i := range a.junctions {
		a.junctions[i] = r.Int32()
	}
	for i := range a.queueWait {
		a.queueWait[i] = r.Float64()
	}
	for i := range a.entryRoad {
		a.entryRoad[i] = network.RoadID(r.Int())
	}
	for i := range a.spawnedAt {
		a.spawnedAt[i] = r.Float64()
	}
	for i := range a.enteredAt {
		a.enteredAt[i] = r.Float64()
	}
	for i := range a.exitedAt {
		a.exitedAt[i] = r.Float64()
	}
	return r.Err()
}

// growTo resizes a column to n elements, reusing capacity when it can.
func growTo[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
