// Package vehicle models the individual vehicles flowing through the
// network and their route plans. Routes follow the paper's Section V
// setup: a vehicle entering the network goes straight except for at most
// one turn, taken at a randomly selected intersection along its way.
//
// Route plans are described by compact Plan values and stored interned:
// a RouteTable deduplicates every distinct plan once and hands out dense
// uint32 RouteIDs, so a Vehicle carries a 4-byte index instead of a
// 40-byte plan (slice header included) and the whole vehicle arena
// shrinks accordingly. The table is immutable after scenario build and
// safe to share by reference across engines and goroutines (see
// DESIGN.md §5 and PERF.md).
package vehicle

import (
	"fmt"

	"utilbp/internal/network"
)

// ID indexes a vehicle in the simulation's vehicle arena. It is 32-bit
// on purpose: the arena never exceeds 2^31 vehicles, and the narrower
// field keeps the arena entry at 56 bytes.
type ID int32

// Unset marks timestamps that have not happened yet.
const Unset = -1

// Vehicle is one vehicle's lifecycle record. Times are simulation seconds.
// The struct is the vehicle-arena entry, so its layout is kept dense:
// 32-bit ID and interned RouteID first, then the 64-bit fields.
type Vehicle struct {
	ID ID
	// Route indexes the vehicle's plan in the run's shared RouteTable.
	Route     RouteID
	EntryRoad network.RoadID
	// SpawnedAt is when the arrival process generated the vehicle;
	// EnteredAt is when it physically joined its entry road (later than
	// SpawnedAt if the road was at capacity); ExitedAt is when it left
	// the network. Unset until the event occurs.
	SpawnedAt float64
	EnteredAt float64
	ExitedAt  float64
	// QueueWait is the accumulated queuing time: waiting in dedicated
	// turning lanes plus waiting to enter a full entry road.
	QueueWait float64
	// Junctions counts the junctions the vehicle has been served
	// through; it is the encounter index RouteTable.TurnAt resolves.
	Junctions int
}

// InNetwork reports whether the vehicle has entered and not yet exited.
func (v *Vehicle) InNetwork() bool { return v.EnteredAt != Unset && v.ExitedAt == Unset }

// Done reports whether the vehicle has left the network.
func (v *Vehicle) Done() bool { return v.ExitedAt != Unset }

// TripTime returns the entry-to-exit duration, or Unset when incomplete.
func (v *Vehicle) TripTime() float64 {
	if v.EnteredAt == Unset || v.ExitedAt == Unset {
		return Unset
	}
	return v.ExitedAt - v.EnteredAt
}

// Plan decides the movement a vehicle makes at each junction it meets. It
// is a compact value representation — the zero Plan goes straight through
// the whole network. Plans are not stored on vehicles directly: they are
// interned into a RouteTable and referenced by RouteID. Construct plans
// with OneTurn or PathPlan.
type Plan struct {
	// turns, when non-nil, is an explicit per-junction movement list for
	// arbitrary topologies; junctions beyond the list are crossed
	// straight.
	turns []network.Turn
	// turn is the movement taken at the single turning junction of the
	// paper's one-turn route model.
	turn network.Turn
	// at1 is the 1-based encounter index of the turning junction; 0 marks
	// a straight-through plan, which keeps the zero Plan valid (the zero
	// network.Turn is Left, so a 0-based index could not).
	at1 int
}

// OneTurn returns the paper's route model: straight everywhere except a
// single turn at the junction with encounter index at (0-based). A
// negative at yields a plan that never turns.
func OneTurn(turn network.Turn, at int) Plan {
	if at < 0 {
		return Plan{}
	}
	return Plan{turn: turn, at1: at + 1}
}

// PathPlan returns an explicit movement list for arbitrary topologies;
// junctions beyond the list are crossed straight.
func PathPlan(turns ...network.Turn) Plan {
	if turns == nil {
		turns = []network.Turn{}
	}
	return Plan{turns: turns}
}

// StraightThrough is the plan that never turns: the zero Plan.
var StraightThrough = Plan{}

// TurnAt returns the movement to take at the n-th junction the vehicle
// encounters (0-based).
func (p Plan) TurnAt(n int) network.Turn {
	if p.turns != nil {
		if n >= 0 && n < len(p.turns) {
			return p.turns[n]
		}
		return network.Straight
	}
	if p.at1 != 0 && n == p.at1-1 {
		return p.turn
	}
	return network.Straight
}

// IsStraight reports whether the plan never turns.
func (p Plan) IsStraight() bool {
	if p.turns != nil {
		for _, t := range p.turns {
			if t != network.Straight {
				return false
			}
		}
		return true
	}
	return p.at1 == 0 || p.turn == network.Straight
}

// RouteID is an interned route: a dense index into a RouteTable. The
// zero RouteID is always the straight-through route, so a zero Vehicle
// is valid in any table.
type RouteID uint32

// StraightRoute is the RouteID of the straight-through plan in every
// RouteTable.
const StraightRoute RouteID = 0

// RouteTable interns route plans: each distinct plan is stored once and
// referenced by a dense RouteID. Interning happens at scenario build
// time; after that the table is read-only, which makes it safe to share
// by reference across engines and goroutines (the artifact contract of
// DESIGN.md §5). Entry 0 is always StraightThrough. The zero value is
// not usable; construct with NewRouteTable.
type RouteTable struct {
	plans []Plan
	index map[planKey]RouteID
}

// planKey canonicalizes a plan for dedup: behaviorally straight plans
// collapse to the zero key, one-turn plans key on (turn, at1), and
// explicit paths key on their rendered movement list.
type planKey struct {
	turn network.Turn
	at1  int
	path string
}

func keyOf(p Plan) planKey {
	if p.IsStraight() {
		return planKey{}
	}
	if p.turns != nil {
		return planKey{path: string(turnBytes(p.turns))}
	}
	return planKey{turn: p.turn, at1: p.at1}
}

// turnBytes renders a movement list as bytes (network.Turn is uint8).
func turnBytes(turns []network.Turn) []byte {
	b := make([]byte, len(turns))
	for i, t := range turns {
		b[i] = byte(t)
	}
	return b
}

// NewRouteTable returns a table holding only the straight-through route
// at RouteID 0.
func NewRouteTable() *RouteTable {
	t := &RouteTable{index: make(map[planKey]RouteID)}
	t.plans = append(t.plans, StraightThrough)
	t.index[planKey{}] = StraightRoute
	return t
}

// Intern returns the RouteID for the plan, adding it to the table on
// first sight. IDs are assigned in insertion order, so two tables built
// by the same deterministic interning sequence agree on every ID.
// Intern must only be called during scenario build — a table referenced
// by a running engine is read-only.
func (t *RouteTable) Intern(p Plan) RouteID {
	k := keyOf(p)
	if id, ok := t.index[k]; ok {
		return id
	}
	id := RouteID(len(t.plans))
	t.plans = append(t.plans, p)
	t.index[k] = id
	return id
}

// Plan returns the interned plan for an ID; out-of-range IDs return the
// straight-through plan.
func (t *RouteTable) Plan(id RouteID) Plan {
	if int(id) >= len(t.plans) {
		return StraightThrough
	}
	return t.plans[id]
}

// TurnAt resolves the movement route id takes at the n-th junction
// encountered (0-based). It is the engine's per-service route lookup:
// one bounds check and a value-plan TurnAt, no pointer chasing.
func (t *RouteTable) TurnAt(id RouteID, n int) network.Turn {
	if int(id) >= len(t.plans) {
		return network.Straight
	}
	return t.plans[id].TurnAt(n)
}

// Len returns the number of interned routes (at least 1: the straight
// route).
func (t *RouteTable) Len() int { return len(t.plans) }

// String summarizes the table for diagnostics.
func (t *RouteTable) String() string {
	return fmt.Sprintf("RouteTable(%d routes)", len(t.plans))
}

// New returns a vehicle in the just-spawned state.
func New(id ID, entry network.RoadID, spawnedAt float64, route RouteID) Vehicle {
	return Vehicle{
		ID:        id,
		EntryRoad: entry,
		SpawnedAt: spawnedAt,
		EnteredAt: Unset,
		ExitedAt:  Unset,
		Route:     route,
	}
}
