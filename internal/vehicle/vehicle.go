// Package vehicle models the individual vehicles flowing through the
// network and their route plans. Routes follow the paper's Section V
// setup: a vehicle entering the network goes straight except for at most
// one turn, taken at a randomly selected intersection along its way.
//
// Route plans are compact values (Plan), not interfaces: assigning one to
// a vehicle never heap-allocates, which keeps the engine's spawn path
// allocation-free (see DESIGN.md §3 and PERF.md).
package vehicle

import "utilbp/internal/network"

// ID indexes a vehicle in the simulation's vehicle arena.
type ID int

// Unset marks timestamps that have not happened yet.
const Unset = -1

// Vehicle is one vehicle's lifecycle record. Times are simulation seconds.
type Vehicle struct {
	ID        ID
	EntryRoad network.RoadID
	// SpawnedAt is when the arrival process generated the vehicle;
	// EnteredAt is when it physically joined its entry road (later than
	// SpawnedAt if the road was at capacity); ExitedAt is when it left
	// the network. Unset until the event occurs.
	SpawnedAt float64
	EnteredAt float64
	ExitedAt  float64
	// QueueWait is the accumulated queuing time: waiting in dedicated
	// turning lanes plus waiting to enter a full entry road.
	QueueWait float64
	// Junctions counts the junctions the vehicle has been served
	// through; it indexes Plan.TurnAt.
	Junctions int
	Route     Plan
}

// InNetwork reports whether the vehicle has entered and not yet exited.
func (v *Vehicle) InNetwork() bool { return v.EnteredAt != Unset && v.ExitedAt == Unset }

// Done reports whether the vehicle has left the network.
func (v *Vehicle) Done() bool { return v.ExitedAt != Unset }

// TripTime returns the entry-to-exit duration, or Unset when incomplete.
func (v *Vehicle) TripTime() float64 {
	if v.EnteredAt == Unset || v.ExitedAt == Unset {
		return Unset
	}
	return v.ExitedAt - v.EnteredAt
}

// Plan decides the movement a vehicle makes at each junction it meets. It
// is a compact value representation — the zero Plan goes straight through
// the whole network — so storing one in a Vehicle involves no interface
// boxing and no heap allocation on the spawn path. Construct plans with
// OneTurn or PathPlan.
type Plan struct {
	// turns, when non-nil, is an explicit per-junction movement list for
	// arbitrary topologies; junctions beyond the list are crossed
	// straight.
	turns []network.Turn
	// turn is the movement taken at the single turning junction of the
	// paper's one-turn route model.
	turn network.Turn
	// at1 is the 1-based encounter index of the turning junction; 0 marks
	// a straight-through plan, which keeps the zero Plan valid (the zero
	// network.Turn is Left, so a 0-based index could not).
	at1 int
}

// OneTurn returns the paper's route model: straight everywhere except a
// single turn at the junction with encounter index at (0-based). A
// negative at yields a plan that never turns.
func OneTurn(turn network.Turn, at int) Plan {
	if at < 0 {
		return Plan{}
	}
	return Plan{turn: turn, at1: at + 1}
}

// PathPlan returns an explicit movement list for arbitrary topologies;
// junctions beyond the list are crossed straight.
func PathPlan(turns ...network.Turn) Plan {
	if turns == nil {
		turns = []network.Turn{}
	}
	return Plan{turns: turns}
}

// StraightThrough is the plan that never turns: the zero Plan.
var StraightThrough = Plan{}

// TurnAt returns the movement to take at the n-th junction the vehicle
// encounters (0-based).
func (p Plan) TurnAt(n int) network.Turn {
	if p.turns != nil {
		if n >= 0 && n < len(p.turns) {
			return p.turns[n]
		}
		return network.Straight
	}
	if p.at1 != 0 && n == p.at1-1 {
		return p.turn
	}
	return network.Straight
}

// IsStraight reports whether the plan never turns.
func (p Plan) IsStraight() bool {
	if p.turns != nil {
		for _, t := range p.turns {
			if t != network.Straight {
				return false
			}
		}
		return true
	}
	return p.at1 == 0 || p.turn == network.Straight
}

// New returns a vehicle in the just-spawned state.
func New(id ID, entry network.RoadID, spawnedAt float64, route Plan) Vehicle {
	return Vehicle{
		ID:        id,
		EntryRoad: entry,
		SpawnedAt: spawnedAt,
		EnteredAt: Unset,
		ExitedAt:  Unset,
		Route:     route,
	}
}
