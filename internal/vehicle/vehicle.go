// Package vehicle models the individual vehicles flowing through the
// network and their route plans. Routes follow the paper's Section V
// setup: a vehicle entering the network goes straight except for at most
// one turn, taken at a randomly selected intersection along its way.
package vehicle

import "utilbp/internal/network"

// ID indexes a vehicle in the simulation's vehicle arena.
type ID int

// Unset marks timestamps that have not happened yet.
const Unset = -1

// Vehicle is one vehicle's lifecycle record. Times are simulation seconds.
type Vehicle struct {
	ID        ID
	EntryRoad network.RoadID
	// SpawnedAt is when the arrival process generated the vehicle;
	// EnteredAt is when it physically joined its entry road (later than
	// SpawnedAt if the road was at capacity); ExitedAt is when it left
	// the network. Unset until the event occurs.
	SpawnedAt float64
	EnteredAt float64
	ExitedAt  float64
	// QueueWait is the accumulated queuing time: waiting in dedicated
	// turning lanes plus waiting to enter a full entry road.
	QueueWait float64
	// Junctions counts the junctions the vehicle has been served
	// through; it indexes Route.TurnAt.
	Junctions int
	Route     Route
}

// InNetwork reports whether the vehicle has entered and not yet exited.
func (v *Vehicle) InNetwork() bool { return v.EnteredAt != Unset && v.ExitedAt == Unset }

// Done reports whether the vehicle has left the network.
func (v *Vehicle) Done() bool { return v.ExitedAt != Unset }

// TripTime returns the entry-to-exit duration, or Unset when incomplete.
func (v *Vehicle) TripTime() float64 {
	if v.EnteredAt == Unset || v.ExitedAt == Unset {
		return Unset
	}
	return v.ExitedAt - v.EnteredAt
}

// Route decides the movement a vehicle makes at each junction it meets.
type Route interface {
	// TurnAt returns the movement to take at the n-th junction the
	// vehicle encounters (0-based).
	TurnAt(n int) network.Turn
}

// OneTurn is the paper's route model: straight everywhere except a single
// turn at the junction with encounter index At. A vehicle that goes
// straight through the whole network uses At = -1 (or any index it never
// reaches).
type OneTurn struct {
	Turn network.Turn
	At   int
}

// TurnAt implements Route.
func (r OneTurn) TurnAt(n int) network.Turn {
	if n == r.At {
		return r.Turn
	}
	return network.Straight
}

// StraightThrough is a route that never turns.
var StraightThrough Route = OneTurn{Turn: network.Straight, At: -1}

// Path is an explicit movement list for arbitrary topologies; junctions
// beyond the list are crossed straight.
type Path struct {
	Turns []network.Turn
}

// TurnAt implements Route.
func (p Path) TurnAt(n int) network.Turn {
	if n >= 0 && n < len(p.Turns) {
		return p.Turns[n]
	}
	return network.Straight
}

// New returns a vehicle in the just-spawned state.
func New(id ID, entry network.RoadID, spawnedAt float64, route Route) Vehicle {
	if route == nil {
		route = StraightThrough
	}
	return Vehicle{
		ID:        id,
		EntryRoad: entry,
		SpawnedAt: spawnedAt,
		EnteredAt: Unset,
		ExitedAt:  Unset,
		Route:     route,
	}
}
