package vehicle

import (
	"bytes"
	"reflect"
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/snap"
)

// arenaModel is the row-major reference the SoA arena is checked
// against: a plain []Vehicle mutated through the same lifecycle the
// engine drives (spawn → admit → serve* → exit), with the arena's
// column updates mirrored field-for-field.
type arenaModel []Vehicle

func (m *arenaModel) spawn(entry network.RoadID, at float64, route RouteID) ID {
	id := ID(len(*m))
	*m = append(*m, New(id, entry, at, route))
	return id
}

func (m arenaModel) admit(id ID, t float64) {
	v := &m[id]
	v.EnteredAt = t
	v.QueueWait += t - v.SpawnedAt
}

func (m arenaModel) serve(id ID, wait float64) {
	v := &m[id]
	v.QueueWait += wait
	v.Junctions++
}

// TestArenaLifecycleProperty drives random spawn/admit/serve/exit/
// set-pending-turn interleavings through the arena and the []Vehicle
// model in lockstep, checking after every operation that View and the
// hot-column getters agree with the model row. Vehicles only ever move
// forward through the lifecycle (as in the engine), but the order in
// which different vehicles progress is arbitrary.
func TestArenaLifecycleProperty(t *testing.T) {
	turns := []network.Turn{network.Left, network.Straight, network.Right}
	for _, seed := range []uint64{1, 2, 3, 0xA2E7A} {
		src := rng.New(seed)
		var a Arena
		var m arenaModel
		// admitted/exited track lifecycle stage per id for op selection.
		var admitted, exited []bool
		tm := 0.0
		for op := 0; op < 2000; op++ {
			tm += src.Float64()
			switch k := src.Intn(6); {
			case k == 0 || len(m) == 0:
				route := RouteID(src.Intn(5))
				id := a.Spawn(network.RoadID(src.Intn(40)), tm, route)
				mid := m.spawn(a.EntryRoad(id), tm, route)
				if id != mid || int(id) != len(m)-1 {
					t.Fatalf("seed %d: spawn ids diverge: arena %d, model %d", seed, id, mid)
				}
				admitted = append(admitted, false)
				exited = append(exited, false)
			case k == 1:
				id := ID(src.Intn(len(m)))
				if admitted[id] {
					continue
				}
				a.Admit(id, tm)
				m.admit(id, tm)
				admitted[id] = true
			case k == 2:
				id := ID(src.Intn(len(m)))
				if !admitted[id] || exited[id] {
					continue
				}
				wait := src.Float64() * 30
				a.Serve(id, wait)
				m.serve(id, wait)
			case k == 3:
				id := ID(src.Intn(len(m)))
				if !admitted[id] || exited[id] {
					continue
				}
				a.Exit(id, tm)
				m[id].ExitedAt = tm
				exited[id] = true
			case k == 4:
				id := ID(src.Intn(len(m)))
				turn := turns[src.Intn(len(turns))]
				a.SetPendingTurn(id, turn)
				if a.PendingTurn(id) != turn {
					t.Fatalf("seed %d: SetPendingTurn did not stick", seed)
				}
			default:
				id := ID(src.Intn(len(m)))
				w := src.Float64() * 5
				a.AddQueueWait(id, w)
				m[id].QueueWait += w
			}
			if a.Len() != len(m) {
				t.Fatalf("seed %d: arena holds %d vehicles, model %d", seed, a.Len(), len(m))
			}
			id := ID(src.Intn(len(m)))
			if got, want := a.View(id), m[id]; got != want {
				t.Fatalf("seed %d op %d: View(%d) = %+v, model %+v", seed, op, id, got, want)
			}
			if a.InNetwork(id) != m[id].InNetwork() || a.Done(id) != m[id].Done() ||
				a.TripTime(id) != m[id].TripTime() {
				t.Fatalf("seed %d op %d: lifecycle predicates diverge for %d", seed, op, id)
			}
		}
		// Full materialization agrees row-for-row (View copies carry the
		// pending turn out-of-band of Vehicle, so clear it from neither —
		// Vehicle has no pending field; compare everything it has).
		got := a.Vehicles(nil)
		if !reflect.DeepEqual(got, []Vehicle(m)) {
			t.Fatalf("seed %d: Vehicles() diverges from the model", seed)
		}
		// Vehicles appends to dst without clobbering its prefix.
		pre := []Vehicle{{ID: 999}}
		both := a.Vehicles(pre)
		if len(both) != 1+a.Len() || both[0].ID != 999 || !reflect.DeepEqual(both[1:], got) {
			t.Fatalf("seed %d: Vehicles(dst) does not append", seed)
		}
	}
}

// TestArenaSnapshotRoundTrip pins the column-major codec: serialize a
// randomly populated arena, restore into both a fresh arena and a
// differently-sized dirty one, and require byte-identical
// re-serialization plus row-identical materialization.
func TestArenaSnapshotRoundTrip(t *testing.T) {
	src := rng.New(99)
	var a Arena
	for i := 0; i < 257; i++ {
		id := a.Spawn(network.RoadID(src.Intn(30)), src.Float64()*100, RouteID(src.Intn(7)))
		if src.Bool(0.8) {
			a.Admit(id, a.SpawnedAt(id)+src.Float64()*10)
			for n := src.Intn(4); n > 0; n-- {
				a.Serve(id, src.Float64()*20)
			}
			if src.Bool(0.5) {
				a.Exit(id, a.EnteredAt(id)+src.Float64()*200)
			}
		}
		a.SetPendingTurn(id, network.Turn(src.Intn(3)))
	}
	w := snap.NewWriter(0)
	a.SnapshotState(w)
	blob := w.Bytes()

	restored := []*Arena{new(Arena), new(Arena)}
	// The second target starts dirty and larger, exercising the
	// storage-reuse path of RestoreState.
	for i := 0; i < 1000; i++ {
		restored[1].Spawn(0, 0, 0)
	}
	for i, b := range restored {
		r := snap.NewReader(blob)
		if err := b.RestoreState(r); err != nil {
			t.Fatalf("target %d: %v", i, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("target %d: trailing bytes: %v", i, err)
		}
		if !reflect.DeepEqual(b.Vehicles(nil), a.Vehicles(nil)) {
			t.Fatalf("target %d: restored rows diverge", i)
		}
		for id := ID(0); int(id) < b.Len(); id++ {
			if b.PendingTurn(id) != a.PendingTurn(id) {
				t.Fatalf("target %d: pending turn of %d not restored", i, id)
			}
		}
		w2 := snap.NewWriter(len(blob))
		b.SnapshotState(w2)
		if !bytes.Equal(w2.Bytes(), blob) {
			t.Fatalf("target %d: re-serialization diverges (%d vs %d bytes)", i, w2.Len(), len(blob))
		}
	}
}

// TestArenaRestoreRejectsCorruptCount: a vehicle count larger than the
// remaining stream must fail cleanly before any column is sized.
func TestArenaRestoreRejectsCorruptCount(t *testing.T) {
	w := snap.NewWriter(0)
	w.Int(1 << 40)
	var a Arena
	if err := a.RestoreState(snap.NewReader(w.Bytes())); err == nil {
		t.Fatal("corrupt count accepted")
	}
	if a.Len() != 0 {
		t.Fatalf("failed restore left %d rows behind", a.Len())
	}
}

// TestArenaResetAndReserve: Reset empties without shedding storage, and
// Reserve never shrinks or disturbs content.
func TestArenaResetAndReserve(t *testing.T) {
	var a Arena
	a.Reserve(64)
	for i := 0; i < 10; i++ {
		a.Spawn(network.RoadID(i), float64(i), StraightRoute)
	}
	before := a.Vehicles(nil)
	a.Reserve(8) // no-op: smaller than current capacity
	if !reflect.DeepEqual(a.Vehicles(nil), before) {
		t.Fatal("Reserve disturbed content")
	}
	a.Reserve(128)
	if !reflect.DeepEqual(a.Vehicles(nil), before) {
		t.Fatal("growing Reserve disturbed content")
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Reset left %d rows", a.Len())
	}
	if a.Spawn(3, 1, StraightRoute) != 0 {
		t.Fatal("ids do not restart after Reset")
	}
}
