package vehicle

import (
	"testing"
	"testing/quick"

	"utilbp/internal/network"
)

func TestNewDefaults(t *testing.T) {
	v := New(3, 7, 12.5, Plan{})
	if v.ID != 3 || v.EntryRoad != 7 || v.SpawnedAt != 12.5 {
		t.Fatalf("unexpected fields: %+v", v)
	}
	if v.EnteredAt != Unset || v.ExitedAt != Unset {
		t.Fatal("fresh vehicle should have unset times")
	}
	if v.InNetwork() || v.Done() {
		t.Fatal("fresh vehicle should be neither in network nor done")
	}
	if v.Route.TurnAt(0) != network.Straight {
		t.Fatal("zero plan should default to straight-through")
	}
}

func TestLifecycle(t *testing.T) {
	v := New(0, 0, 0, Plan{})
	v.EnteredAt = 5
	if !v.InNetwork() || v.Done() {
		t.Fatal("entered vehicle should be in network")
	}
	if v.TripTime() != Unset {
		t.Fatal("trip time defined before exit")
	}
	v.ExitedAt = 65
	if v.InNetwork() || !v.Done() {
		t.Fatal("exited vehicle should be done")
	}
	if v.TripTime() != 60 {
		t.Fatalf("TripTime = %v, want 60", v.TripTime())
	}
}

func TestOneTurnRoute(t *testing.T) {
	r := OneTurn(network.Left, 2)
	want := []network.Turn{network.Straight, network.Straight, network.Left, network.Straight}
	for i, w := range want {
		if got := r.TurnAt(i); got != w {
			t.Errorf("TurnAt(%d) = %v, want %v", i, got, w)
		}
	}
	if r.IsStraight() {
		t.Error("left-turn plan reported straight")
	}
	if !OneTurn(network.Right, -1).IsStraight() {
		t.Error("negative turn index should never turn")
	}
}

func TestOneTurnProperty(t *testing.T) {
	f := func(at uint8, n uint8) bool {
		r := OneTurn(network.Right, int(at%16))
		got := r.TurnAt(int(n % 16))
		if int(n%16) == int(at%16) {
			return got == network.Right
		}
		return got == network.Straight
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStraightThrough(t *testing.T) {
	for i := 0; i < 10; i++ {
		if StraightThrough.TurnAt(i) != network.Straight {
			t.Fatalf("StraightThrough turned at %d", i)
		}
	}
	if !StraightThrough.IsStraight() {
		t.Fatal("StraightThrough should report IsStraight")
	}
	// The zero Plan must behave exactly like StraightThrough: the zero
	// network.Turn is Left, and the spawn path relies on zero values
	// being safe.
	var zero Plan
	for i := -1; i < 10; i++ {
		if zero.TurnAt(i) != network.Straight {
			t.Fatalf("zero Plan turned at %d", i)
		}
	}
}

func TestPathRoute(t *testing.T) {
	p := PathPlan(network.Left, network.Right)
	if p.TurnAt(0) != network.Left || p.TurnAt(1) != network.Right {
		t.Fatal("path turns wrong")
	}
	if p.TurnAt(2) != network.Straight || p.TurnAt(-1) != network.Straight {
		t.Fatal("out-of-path junctions should be straight")
	}
	if p.IsStraight() {
		t.Error("turning path reported straight")
	}
	if !PathPlan(network.Straight, network.Straight).IsStraight() {
		t.Error("all-straight path should report straight")
	}
	if !PathPlan().IsStraight() {
		t.Error("empty path should report straight")
	}
}
