package vehicle

import (
	"testing"
	"testing/quick"

	"utilbp/internal/network"
)

func TestNewDefaults(t *testing.T) {
	v := New(3, 7, 12.5, StraightRoute)
	if v.ID != 3 || v.EntryRoad != 7 || v.SpawnedAt != 12.5 {
		t.Fatalf("unexpected fields: %+v", v)
	}
	if v.EnteredAt != Unset || v.ExitedAt != Unset {
		t.Fatal("fresh vehicle should have unset times")
	}
	if v.InNetwork() || v.Done() {
		t.Fatal("fresh vehicle should be neither in network nor done")
	}
	if NewRouteTable().TurnAt(v.Route, 0) != network.Straight {
		t.Fatal("zero route should default to straight-through")
	}
}

func TestLifecycle(t *testing.T) {
	v := New(0, 0, 0, StraightRoute)
	v.EnteredAt = 5
	if !v.InNetwork() || v.Done() {
		t.Fatal("entered vehicle should be in network")
	}
	if v.TripTime() != Unset {
		t.Fatal("trip time defined before exit")
	}
	v.ExitedAt = 65
	if v.InNetwork() || !v.Done() {
		t.Fatal("exited vehicle should be done")
	}
	if v.TripTime() != 60 {
		t.Fatalf("TripTime = %v, want 60", v.TripTime())
	}
}

func TestOneTurnRoute(t *testing.T) {
	r := OneTurn(network.Left, 2)
	want := []network.Turn{network.Straight, network.Straight, network.Left, network.Straight}
	for i, w := range want {
		if got := r.TurnAt(i); got != w {
			t.Errorf("TurnAt(%d) = %v, want %v", i, got, w)
		}
	}
	if r.IsStraight() {
		t.Error("left-turn plan reported straight")
	}
	if !OneTurn(network.Right, -1).IsStraight() {
		t.Error("negative turn index should never turn")
	}
}

func TestOneTurnProperty(t *testing.T) {
	f := func(at uint8, n uint8) bool {
		r := OneTurn(network.Right, int(at%16))
		got := r.TurnAt(int(n % 16))
		if int(n%16) == int(at%16) {
			return got == network.Right
		}
		return got == network.Straight
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStraightThrough(t *testing.T) {
	for i := 0; i < 10; i++ {
		if StraightThrough.TurnAt(i) != network.Straight {
			t.Fatalf("StraightThrough turned at %d", i)
		}
	}
	if !StraightThrough.IsStraight() {
		t.Fatal("StraightThrough should report IsStraight")
	}
	// The zero Plan must behave exactly like StraightThrough: the zero
	// network.Turn is Left, and the spawn path relies on zero values
	// being safe.
	var zero Plan
	for i := -1; i < 10; i++ {
		if zero.TurnAt(i) != network.Straight {
			t.Fatalf("zero Plan turned at %d", i)
		}
	}
}

func TestPathRoute(t *testing.T) {
	p := PathPlan(network.Left, network.Right)
	if p.TurnAt(0) != network.Left || p.TurnAt(1) != network.Right {
		t.Fatal("path turns wrong")
	}
	if p.TurnAt(2) != network.Straight || p.TurnAt(-1) != network.Straight {
		t.Fatal("out-of-path junctions should be straight")
	}
	if p.IsStraight() {
		t.Error("turning path reported straight")
	}
	if !PathPlan(network.Straight, network.Straight).IsStraight() {
		t.Error("all-straight path should report straight")
	}
	if !PathPlan().IsStraight() {
		t.Error("empty path should report straight")
	}
}

func TestRouteTableInterning(t *testing.T) {
	tab := NewRouteTable()
	if tab.Len() != 1 {
		t.Fatalf("fresh table holds %d routes, want 1 (straight)", tab.Len())
	}
	if got := tab.Intern(StraightThrough); got != StraightRoute {
		t.Fatalf("straight interned as %d, want %d", got, StraightRoute)
	}
	// Behaviorally straight plans collapse onto RouteID 0.
	if got := tab.Intern(OneTurn(network.Right, -1)); got != StraightRoute {
		t.Fatalf("never-turning plan interned as %d, want 0", got)
	}
	if got := tab.Intern(PathPlan(network.Straight, network.Straight)); got != StraightRoute {
		t.Fatalf("all-straight path interned as %d, want 0", got)
	}
	a := tab.Intern(OneTurn(network.Left, 2))
	b := tab.Intern(OneTurn(network.Right, 2))
	c := tab.Intern(PathPlan(network.Left, network.Right))
	if a == StraightRoute || b == StraightRoute || c == StraightRoute {
		t.Fatal("turning plans collapsed onto the straight route")
	}
	if a == b || b == c || a == c {
		t.Fatalf("distinct plans share an ID: %d %d %d", a, b, c)
	}
	// Re-interning is idempotent.
	if tab.Intern(OneTurn(network.Left, 2)) != a {
		t.Fatal("re-interning produced a new ID")
	}
	if tab.Intern(PathPlan(network.Left, network.Right)) != c {
		t.Fatal("re-interning a path plan produced a new ID")
	}
	if tab.Len() != 4 {
		t.Fatalf("table holds %d routes, want 4", tab.Len())
	}
	// Decoding round-trips.
	if tab.TurnAt(a, 2) != network.Left || tab.TurnAt(a, 0) != network.Straight {
		t.Fatal("interned one-turn plan decodes wrong")
	}
	if tab.TurnAt(c, 1) != network.Right {
		t.Fatal("interned path plan decodes wrong")
	}
	// Out-of-range IDs resolve straight rather than panicking.
	if tab.TurnAt(RouteID(999), 0) != network.Straight {
		t.Fatal("out-of-range RouteID should resolve straight")
	}
	if !tab.Plan(RouteID(999)).IsStraight() {
		t.Fatal("out-of-range Plan should be straight")
	}
}

// TestRouteTableDeterministicIDs: two tables fed the same interning
// sequence agree on every ID — the property the shared-artifact replay
// contract rests on.
func TestRouteTableDeterministicIDs(t *testing.T) {
	plans := []Plan{
		OneTurn(network.Left, 0),
		OneTurn(network.Right, 3),
		PathPlan(network.Right, network.Straight, network.Left),
		OneTurn(network.Left, 0), // repeat
		StraightThrough,
	}
	t1, t2 := NewRouteTable(), NewRouteTable()
	for _, p := range plans {
		if id1, id2 := t1.Intern(p), t2.Intern(p); id1 != id2 {
			t.Fatalf("tables diverged: %d vs %d", id1, id2)
		}
	}
	if t1.Len() != t2.Len() {
		t.Fatalf("table sizes diverged: %d vs %d", t1.Len(), t2.Len())
	}
}
