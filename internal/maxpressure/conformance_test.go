package maxpressure_test

import (
	"testing"

	"utilbp/internal/maxpressure"
	"utilbp/internal/signal/signaltest"
)

// TestConformanceMaxPressure runs the shared controller conformance
// suite over the MaxPressure family: the default configuration, the
// approach-counting variant, and tightened timer variants — each must
// satisfy the engine contract and match its own batched dispatch
// bit-for-bit (the weight slab is change-set cached like UTIL-BP's).
func TestConformanceMaxPressure(t *testing.T) {
	cases := []signaltest.Case{
		{Name: "MAXPRESSURE", Factory: maxpressure.Factory(maxpressure.Options{}), AmberSteps: 4, MinGreenSteps: 10},
		{Name: "MAXPRESSURE-approaching", Factory: maxpressure.Factory(maxpressure.Options{CountApproaching: true}), AmberSteps: 4, MinGreenSteps: 10},
		{Name: "MAXPRESSURE-short", Factory: maxpressure.Factory(maxpressure.Options{MinGreenSteps: 5, AmberSteps: 2}), AmberSteps: 2, MinGreenSteps: 5},
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) { signaltest.Run(t, c) })
	}
}
