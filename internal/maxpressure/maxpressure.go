// Package maxpressure implements the MaxPressure traffic-signal
// controller (Varaiya 2013, SNIPPETS.md #3): each mini-slot the phase
// with the largest total link pressure is actuated, where a link's
// pressure weighs its own queue against the queues of the downstream
// movements its vehicles will join. Unlike the back-pressure variants of
// internal/core and internal/bp, the downstream term is per-movement —
// it reads the engine-owned signal.LinkObs.OutTurnQueue resolution of
// the outgoing road instead of the aggregate OutQueue — with uniform
// routing weights (the unknown-routing-rate refinement lives in
// internal/bpest). A minimum green hold and amber insertion between
// distinct greens make the controller actuation-safe under the
// signal/signaltest conformance contract.
package maxpressure

import (
	"fmt"

	"utilbp/internal/signal"
)

// Options configures the MaxPressure controller.
type Options struct {
	// MinGreenSteps is the guaranteed green hold in mini-slots: once a
	// phase turns green it is kept at least this long before pressure
	// re-selection may switch away. Zero defaults to 10.
	MinGreenSteps int
	// AmberSteps is the transition-phase duration in mini-slots inserted
	// between two distinct greens. Zero defaults to 4 (the paper's 4 s
	// amber at Δt = 1 s).
	AmberSteps int
	// CountApproaching includes vehicles rolling toward the stop line in
	// the upstream pressure term, the queuing-network reading of the
	// link queue shared with core.GainVariant.CountApproaching.
	CountApproaching bool
}

func (o Options) withDefaults() Options {
	if o.MinGreenSteps == 0 {
		o.MinGreenSteps = 10
	}
	if o.AmberSteps == 0 {
		o.AmberSteps = 4
	}
	return o
}

// Weight is the MaxPressure link weight: (upstream queue − mean
// downstream movement queue) · µ. The downstream term averages the
// outgoing road's per-movement queues with uniform routing weights
// 1/NumTurns — the Varaiya pressure with unknown turn ratios replaced
// by their uninformative prior. It is a pure function of the link
// observation, which is what lets the batched controller cache it per
// link under the change-set contract.
func Weight(l *signal.LinkObs, countApproaching bool) float64 {
	q := l.Queue
	if countApproaching {
		q += l.InTransit
	}
	down := 0
	for t := 0; t < signal.NumTurns; t++ {
		down += l.OutTurnQueue[t]
	}
	return (float64(q) - float64(down)/signal.NumTurns) * l.Mu
}

// Controller is the per-junction MaxPressure controller. Its phase
// timers key on the observed applied phase (obs.Current), so dark-mode
// overrides and both dispatch modes advance it identically.
type Controller struct {
	info    signal.JunctionInfo
	opts    Options
	weights []float64
	// prevCur tracks the last observed applied phase; greenStart the
	// step the current green segment was first observed at.
	prevCur    signal.Phase
	greenStart int
	// amberUntil is the step index the self-commanded transition runs
	// to, mirroring core.Controller's amber timer.
	amberUntil int
}

// New builds a MaxPressure controller for a junction.
func New(info signal.JunctionInfo, opts Options) (*Controller, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.MinGreenSteps < 0 {
		return nil, fmt.Errorf("maxpressure: MinGreenSteps must be non-negative, got %d", opts.MinGreenSteps)
	}
	if opts.AmberSteps < 0 {
		return nil, fmt.Errorf("maxpressure: AmberSteps must be non-negative, got %d", opts.AmberSteps)
	}
	return &Controller{
		info:    info,
		opts:    opts,
		weights: make([]float64, info.NumLinks),
	}, nil
}

// Name implements signal.Controller.
func (c *Controller) Name() string { return "MAXPRESSURE" }

// Decide implements signal.Controller.
func (c *Controller) Decide(obs *signal.Obs) signal.Phase {
	for i := range obs.Links {
		c.weights[i] = Weight(&obs.Links[i], c.opts.CountApproaching)
	}
	return c.decideWithWeights(obs)
}

// decideWithWeights is the phase logic with the link weights already
// evaluated into c.weights — the shared decision tail of the
// per-junction Decide and the batched controller's flat sweep, kept in
// one place so the two dispatch paths cannot drift (the same split
// core.Controller uses).
func (c *Controller) decideWithWeights(obs *signal.Obs) signal.Phase {
	cur := obs.Current
	if cur != c.prevCur {
		if cur != signal.Amber {
			// A green segment began on the applied signal (our own
			// switch, or a dark-mode policy's): restart the hold timer.
			c.greenStart = obs.Step
		}
		c.prevCur = cur
	}
	// Self-commanded transition in progress.
	if cur == signal.Amber && obs.Step < c.amberUntil {
		return signal.Amber
	}
	// Minimum green hold.
	if cur != signal.Amber && obs.Step-c.greenStart < c.opts.MinGreenSteps {
		return cur
	}
	next := c.selectPhase(cur)
	if next == cur || cur == signal.Amber {
		return next
	}
	c.amberUntil = obs.Step + c.opts.AmberSteps
	if c.opts.AmberSteps == 0 {
		return next
	}
	return signal.Amber
}

// selectPhase returns the phase with the maximum total pressure. Ties
// prefer the current phase (avoiding a pointless transition), then the
// lowest phase number.
func (c *Controller) selectPhase(cur signal.Phase) signal.Phase {
	best := signal.Amber
	bestScore := 0.0
	for pi, phase := range c.info.Phases {
		total := 0.0
		for _, li := range phase {
			total += c.weights[li]
		}
		p := signal.Phase(pi + 1)
		switch {
		case best == signal.Amber:
			best, bestScore = p, total
		case total > bestScore:
			best, bestScore = p, total
		case total == bestScore && p == cur && best != cur:
			best, bestScore = p, total
		}
	}
	return best
}

// Factory returns a signal.Factory building MaxPressure controllers
// with the given options. The returned factory also implements
// signal.BatchFactory — the link weight is a pure per-link function
// like UTIL-BP's gain, so engines in auto or batched control mode run
// MaxPressure through the batched control plane, bit-for-bit equal to
// the per-junction path.
func Factory(opts Options) signal.Factory {
	return factory{opts: opts}
}

// factory is the MaxPressure factory, implementing both signal.Factory
// and signal.BatchFactory.
type factory struct {
	opts Options
}

// Name implements signal.Factory.
func (f factory) Name() string { return "MAXPRESSURE" }

// New implements signal.Factory.
func (f factory) New(info signal.JunctionInfo) (signal.Controller, error) {
	return New(info, f.opts)
}

// NewBatch implements signal.BatchFactory.
func (f factory) NewBatch(infos []signal.JunctionInfo) (signal.BatchController, error) {
	return NewBatchController(infos, f.opts)
}
