package maxpressure

import (
	"math"
	"testing"

	"utilbp/internal/signal"
)

func testInfo() signal.JunctionInfo {
	return signal.JunctionInfo{Label: "t", Phases: [][]int{{0, 1}, {2, 3}}, NumLinks: 4, WStar: 120, DeltaT: 1}
}

// TestWeight pins the pressure formula: (queue − mean downstream
// movement queue) · µ, with InTransit folded in only under the
// approach-counting variant.
func TestWeight(t *testing.T) {
	l := signal.LinkObs{Queue: 10, InTransit: 4, Mu: 0.5, OutTurnQueue: [signal.NumTurns]int{6, 3, 0}}
	if got, want := Weight(&l, false), (10.0-3.0)*0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Weight = %v, want %v", got, want)
	}
	if got, want := Weight(&l, true), (14.0-3.0)*0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Weight(approaching) = %v, want %v", got, want)
	}
	// Congested downstream drives the weight negative: the pressure
	// term de-prioritises feeding a saturated road.
	l.OutTurnQueue = [signal.NumTurns]int{40, 40, 40}
	if got := Weight(&l, false); got >= 0 {
		t.Errorf("Weight with saturated downstream = %v, want negative", got)
	}
}

// TestOptionsValidation table-tests New's option rejection.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"defaults", Options{}, true},
		{"explicit", Options{MinGreenSteps: 5, AmberSteps: 2, CountApproaching: true}, true},
		{"negative min green", Options{MinGreenSteps: -1}, false},
		{"negative amber", Options{AmberSteps: -2}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(testInfo(), c.opts)
			if c.ok && err != nil {
				t.Fatalf("New(%+v) = %v, want ok", c.opts, err)
			}
			if !c.ok && err == nil {
				t.Fatalf("New(%+v) succeeded, want error", c.opts)
			}
		})
	}
}
