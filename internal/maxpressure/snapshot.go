package maxpressure

import (
	"utilbp/internal/signal"
	"utilbp/internal/snap"
)

// SnapshotState implements signal.Snapshotter: the phase timers keyed
// on the observed applied phase — the last seen Current, the green
// onset step and the self-commanded amber deadline. The weight slab is
// per-Decide scratch.
func (c *Controller) SnapshotState(w *snap.Writer) {
	w.Int(int(c.prevCur))
	w.Int(c.greenStart)
	w.Int(c.amberUntil)
}

// RestoreState implements signal.Snapshotter.
func (c *Controller) RestoreState(r *snap.Reader) error {
	c.prevCur = signal.Phase(r.Int())
	c.greenStart = r.Int()
	c.amberUntil = r.Int()
	return r.Err()
}

// SnapshotState implements signal.Snapshotter by delegating to the
// per-junction controllers; the weight slab and primed flag are cache
// rebuilt by the first post-restore full sweep (the link weight is a
// pure function of the observation).
func (b *BatchController) SnapshotState(w *snap.Writer) {
	signal.SnapshotStates(w, b.juncs)
}

// RestoreState implements signal.Snapshotter.
func (b *BatchController) RestoreState(r *snap.Reader) error {
	return signal.RestoreStates(r, b.juncs)
}
