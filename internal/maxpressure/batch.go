package maxpressure

import (
	"fmt"

	"utilbp/internal/signal"
)

// BatchController is the batched MaxPressure controller: one instance
// drives every junction of a network through
// signal.BatchController.DecideAll. The link weight is a pure function
// of the link's observation, so the controller keeps all junctions'
// weights in one dense slab parallel to the batch's link slab and
// recomputes only the links the engine's change set names — the same
// cache structure core.BatchController uses for UTIL-BP gains
// (DESIGN.md §11, §13). The per-junction phase logic is byte-for-byte
// the per-junction Controller's decideWithWeights, so the two dispatch
// modes cannot diverge.
//
// The zero value is not usable; construct with NewBatchController. A
// BatchController allocates nothing after construction.
type BatchController struct {
	juncs   []*Controller
	weights []float64
	juncOf  []int32
	obs     signal.Obs
	primed  bool
}

// NewBatchController builds the batched MaxPressure controller for the
// given junctions (in batch junction order) with shared options.
func NewBatchController(infos []signal.JunctionInfo, opts Options) (*BatchController, error) {
	if len(infos) == 0 {
		return nil, fmt.Errorf("maxpressure: batch controller needs at least one junction")
	}
	b := &BatchController{juncs: make([]*Controller, 0, len(infos))}
	total := 0
	for _, info := range infos {
		c, err := New(info, opts)
		if err != nil {
			return nil, err
		}
		b.juncs = append(b.juncs, c)
		total += info.NumLinks
	}
	b.weights = make([]float64, total)
	b.juncOf = make([]int32, total)
	gl := 0
	for ji, info := range infos {
		for li := 0; li < info.NumLinks; li++ {
			b.juncOf[gl] = int32(ji)
			gl++
		}
	}
	return b, nil
}

// Name implements signal.BatchController.
func (b *BatchController) Name() string { return "MAXPRESSURE" }

// DecideAll implements signal.BatchController: refresh the weight slab
// (fully, or only the change set), then run each junction's phase logic
// over its slab window.
func (b *BatchController) DecideAll(batch *signal.Batch) {
	if batch.AllChanged || !b.primed {
		for ji, c := range b.juncs {
			lo, hi := batch.JuncOff[ji], batch.JuncOff[ji+1]
			links := batch.Links[lo:hi]
			weights := b.weights[lo:hi]
			for i := range links {
				weights[i] = Weight(&links[i], c.opts.CountApproaching)
			}
		}
		b.primed = true
	} else {
		for _, gl := range batch.Changed {
			c := b.juncs[b.juncOf[gl]]
			b.weights[gl] = Weight(&batch.Links[gl], c.opts.CountApproaching)
		}
	}
	for ji, c := range b.juncs {
		batch.View(ji, &b.obs)
		c.weights = b.weights[batch.JuncOff[ji]:batch.JuncOff[ji+1]]
		batch.Decided[ji] = c.decideWithWeights(&b.obs)
	}
}
