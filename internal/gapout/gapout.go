// Package gapout implements a vehicle-actuated gap-out signal
// controller (SNIPPETS.md #1): phases rotate round-robin, each green
// held at least MinGreenSteps, extended while the served approach keeps
// presenting demand, terminated early when no vehicle has been detected
// for GapSteps consecutive mini-slots, and preempted unconditionally at
// MaxGreenSteps. It is the genuinely stateful controller of the zoo —
// three interacting timers (green age, detection gap, amber countdown)
// rather than a memoryless pressure argmax — which is exactly what the
// conformance suite's max-green and reset-rebuild invariants exercise
// (DESIGN.md §13).
package gapout

import (
	"fmt"

	"utilbp/internal/signal"
)

// Options parameterizes the actuated controller. The CLI spec syntax is
// gapout:min,max,gap (scenario.ParseControllerSpec).
type Options struct {
	// MinGreenSteps is the guaranteed green per phase in mini-slots.
	// Zero defaults to 8.
	MinGreenSteps int
	// MaxGreenSteps caps a green unconditionally — sustained demand
	// cannot hold a phase past it. Zero defaults to 40. Must be at
	// least MinGreenSteps.
	MaxGreenSteps int
	// GapSteps is the gap-out timer: after the minimum green, the phase
	// ends once this many consecutive mini-slots pass with no demand
	// (queued or approaching vehicle) on the served links. Zero
	// defaults to 3.
	GapSteps int
	// AmberSteps is the transition inserted between greens. Zero
	// defaults to 4.
	AmberSteps int
}

func (o Options) withDefaults() Options {
	if o.MinGreenSteps == 0 {
		o.MinGreenSteps = 8
	}
	if o.MaxGreenSteps == 0 {
		o.MaxGreenSteps = 40
	}
	if o.GapSteps == 0 {
		o.GapSteps = 3
	}
	if o.AmberSteps == 0 {
		o.AmberSteps = 4
	}
	return o
}

// Controller is the per-junction actuated controller. Its timers are
// internal — decisions are a deterministic function of the observation
// history, with the observed queue counts driving only the detection
// clock — so replays and both dispatch modes are bit-for-bit identical.
type Controller struct {
	info signal.JunctionInfo
	opts Options
	// active is the phase currently being served (Amber while in a
	// transition); pending the next green in rotation.
	active  signal.Phase
	pending signal.Phase
	// greenStart is the step the active green began; lastDemand the
	// last step its links showed demand (reset on green start, per the
	// actuated-controller convention); amberUntil the step the running
	// transition ends.
	greenStart int
	lastDemand int
	amberUntil int
}

// New builds an actuated gap-out controller for the junction.
func New(info signal.JunctionInfo, opts Options) (*Controller, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.MinGreenSteps < 1 {
		return nil, fmt.Errorf("gapout: MinGreenSteps must be positive, got %d", opts.MinGreenSteps)
	}
	if opts.MaxGreenSteps < opts.MinGreenSteps {
		return nil, fmt.Errorf("gapout: MaxGreenSteps %d below MinGreenSteps %d", opts.MaxGreenSteps, opts.MinGreenSteps)
	}
	if opts.GapSteps < 1 {
		return nil, fmt.Errorf("gapout: GapSteps must be positive, got %d", opts.GapSteps)
	}
	if opts.AmberSteps < 0 {
		return nil, fmt.Errorf("gapout: AmberSteps must be non-negative, got %d", opts.AmberSteps)
	}
	return &Controller{info: info, opts: opts, active: signal.Amber, pending: 1}, nil
}

// Name implements signal.Controller.
func (c *Controller) Name() string { return "GAPOUT" }

// demand reports whether any link of the phase has a vehicle queued or
// approaching in the observation — the detector actuation of the
// physical controller. Under an estimating sensor this reads the
// observed counts, so detection quality degrades with the sensor.
func (c *Controller) demand(obs *signal.Obs, p signal.Phase) bool {
	for _, li := range c.info.Phases[p-1] {
		l := &obs.Links[li]
		if l.Queue > 0 || l.InTransit > 0 {
			return true
		}
	}
	return false
}

// startGreen begins serving the pending phase at the given step.
func (c *Controller) startGreen(step int) signal.Phase {
	c.active = c.pending
	c.pending = c.pending%signal.Phase(c.info.NumPhases()) + 1
	c.greenStart = step
	c.lastDemand = step // detection clock resets on green start
	return c.active
}

// Decide implements signal.Controller.
func (c *Controller) Decide(obs *signal.Obs) signal.Phase {
	step := obs.Step
	if c.active == signal.Amber {
		if step < c.amberUntil {
			return signal.Amber
		}
		return c.startGreen(step)
	}
	if c.demand(obs, c.active) {
		c.lastDemand = step
	}
	elapsed := step - c.greenStart
	if elapsed < c.opts.MinGreenSteps {
		return c.active
	}
	if elapsed >= c.opts.MaxGreenSteps || step-c.lastDemand >= c.opts.GapSteps {
		// Max-green preemption or gap-out: transition to the next phase.
		c.active = signal.Amber
		if c.opts.AmberSteps == 0 {
			return c.startGreen(step)
		}
		c.amberUntil = step + c.opts.AmberSteps
		return signal.Amber
	}
	return c.active
}

// Factory returns a signal.Factory building actuated gap-out
// controllers.
//
// The factory is deliberately NOT a signal.BatchFactory: the controller
// evaluates no per-link derived quantity every round — its per-step
// work is three integer timer comparisons plus a short demand scan of
// the active phase — so there is no flat sweep or change-set cache for
// a batched implementation to amortize (the same reasoning that keeps
// bp's fixed-slot factory per-junction). Auto control mode keeps the
// cheap per-junction loop; forcing signal.ControlBatched still works
// through the engine-built signal.Batched adapter.
func Factory(opts Options) signal.Factory {
	return signal.FactoryFunc{
		Label: "GAPOUT",
		Build: func(info signal.JunctionInfo) (signal.Controller, error) {
			return New(info, opts)
		},
	}
}
