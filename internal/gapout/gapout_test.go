package gapout

import (
	"testing"

	"utilbp/internal/signal"
)

func testInfo() signal.JunctionInfo {
	return signal.JunctionInfo{Label: "t", Phases: [][]int{{0, 1}, {2, 3}}, NumLinks: 4, WStar: 120, DeltaT: 1}
}

// TestOptionsValidation table-tests New's option rejection, including
// the MaxGreen ≥ MinGreen coupling.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"defaults", Options{}, true},
		{"explicit", Options{MinGreenSteps: 4, MaxGreenSteps: 16, GapSteps: 2, AmberSteps: 2}, true},
		{"min equals max", Options{MinGreenSteps: 10, MaxGreenSteps: 10}, true},
		{"negative min", Options{MinGreenSteps: -1}, false},
		{"max below min", Options{MinGreenSteps: 20, MaxGreenSteps: 10}, false},
		{"negative gap", Options{GapSteps: -1}, false},
		{"negative amber", Options{AmberSteps: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(testInfo(), c.opts)
			if c.ok && err != nil {
				t.Fatalf("New(%+v) = %v, want ok", c.opts, err)
			}
			if !c.ok && err == nil {
				t.Fatalf("New(%+v) succeeded, want error", c.opts)
			}
		})
	}
}

// TestGapOutTerminatesEarly drives the controller directly and checks
// the gap-out path: a green with demand vanishing after min-green ends
// gap steps later, well before max-green.
func TestGapOutTerminatesEarly(t *testing.T) {
	c, err := New(testInfo(), Options{MinGreenSteps: 4, MaxGreenSteps: 30, GapSteps: 3, AmberSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	obs := &signal.Obs{Links: make([]signal.LinkObs, 4), Current: signal.Amber}
	for i := range obs.Links {
		obs.Links[i].Mu = 0.5
	}
	// Demand on phase 1 only for the first 2 steps of its green.
	greenLen := 0
	var phase signal.Phase
	for step := 0; step < 40; step++ {
		obs.Step = step
		for i := range obs.Links {
			obs.Links[i].Queue = 0
		}
		if phase == 1 && greenLen < 2 {
			obs.Links[0].Queue = 3
		}
		got := c.Decide(obs)
		if got == phase && phase != signal.Amber {
			greenLen++
		} else if got != signal.Amber {
			greenLen = 1
		}
		phase = got
		obs.Current = got
		if phase == 1 && greenLen > 7 {
			// min(4) + gap(3) = 7: demand stopped at step 2 of the
			// green, so the gap timer must cut it at length 7.
			t.Fatalf("green held %d steps, want gap-out at 7", greenLen)
		}
	}
}
