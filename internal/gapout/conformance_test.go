package gapout_test

import (
	"testing"

	"utilbp/internal/gapout"
	"utilbp/internal/signal/signaltest"
)

// TestConformanceGapOut runs the shared controller conformance suite
// over the actuated gap-out family. MaxGreenSteps arms the suite's
// max-green preemption invariant — sustained demand (the steady-bias
// and noisy scripts) must never hold a green past the cap — and the
// burst-gap script exercises the gap-out timer between the min and max
// bounds. GapOut implements no signal.BatchFactory, so the suite also
// covers it through the pure signal.Batched adapter path.
func TestConformanceGapOut(t *testing.T) {
	cases := []signaltest.Case{
		{Name: "GAPOUT", Factory: gapout.Factory(gapout.Options{}), AmberSteps: 4, MinGreenSteps: 8, MaxGreenSteps: 40},
		{Name: "GAPOUT-tight", Factory: gapout.Factory(gapout.Options{MinGreenSteps: 4, MaxGreenSteps: 16, GapSteps: 2, AmberSteps: 2}), AmberSteps: 2, MinGreenSteps: 4, MaxGreenSteps: 16},
		{Name: "GAPOUT-longgap", Factory: gapout.Factory(gapout.Options{MinGreenSteps: 6, MaxGreenSteps: 30, GapSteps: 8}), AmberSteps: 4, MinGreenSteps: 6, MaxGreenSteps: 30},
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) { signaltest.Run(t, c) })
	}
}
