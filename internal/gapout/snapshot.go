package gapout

import (
	"utilbp/internal/signal"
	"utilbp/internal/snap"
)

// SnapshotState implements signal.Snapshotter: the actuated controller
// is the most stateful of the zoo — its active/pending phase rotation
// and all three interacting timers (green age, detection clock, amber
// countdown) must survive a restore for the replay to stay bit-for-bit.
func (c *Controller) SnapshotState(w *snap.Writer) {
	w.Int(int(c.active))
	w.Int(int(c.pending))
	w.Int(c.greenStart)
	w.Int(c.lastDemand)
	w.Int(c.amberUntil)
}

// RestoreState implements signal.Snapshotter.
func (c *Controller) RestoreState(r *snap.Reader) error {
	c.active = signal.Phase(r.Int())
	c.pending = signal.Phase(r.Int())
	c.greenStart = r.Int()
	c.lastDemand = r.Int()
	c.amberUntil = r.Int()
	return r.Err()
}
