package bpest

import (
	"fmt"

	"utilbp/internal/signal"
)

// BatchController is the batched estimated-routing BP controller, the
// change-set-cached counterpart of the per-junction Controller
// (DESIGN.md §11, §13). The estimated gain of a link depends only on
// that link's observation and its own estimator state, and the
// estimator only advances when the link's cumulative join counters do —
// which is part of the observation. A link outside the batch change set
// is therefore bit-for-bit unchanged, estimator included, and its
// cached gain is exact; the controller recomputes only the links the
// engine's change set names. The per-junction phase logic is
// byte-for-byte the Controller's decideWithGains, so the two dispatch
// modes cannot diverge.
//
// The zero value is not usable; construct with NewBatchController. A
// BatchController allocates nothing after construction.
type BatchController struct {
	juncs  []*Controller
	gains  []float64
	juncOf []int32
	obs    signal.Obs
	primed bool
}

// NewBatchController builds the batched BP-EST controller for the given
// junctions (in batch junction order) with shared options.
func NewBatchController(infos []signal.JunctionInfo, opts Options) (*BatchController, error) {
	if len(infos) == 0 {
		return nil, fmt.Errorf("bpest: batch controller needs at least one junction")
	}
	b := &BatchController{juncs: make([]*Controller, 0, len(infos))}
	total := 0
	for _, info := range infos {
		c, err := New(info, opts)
		if err != nil {
			return nil, err
		}
		b.juncs = append(b.juncs, c)
		total += info.NumLinks
	}
	b.gains = make([]float64, total)
	b.juncOf = make([]int32, total)
	gl := 0
	for ji, info := range infos {
		for li := 0; li < info.NumLinks; li++ {
			b.juncOf[gl] = int32(ji)
			gl++
		}
	}
	return b, nil
}

// Name implements signal.BatchController.
func (b *BatchController) Name() string { return "BP-EST" }

// DecideAll implements signal.BatchController: advance the estimators
// and refresh the gain slab (fully, or only the change set), then run
// each junction's Algorithm 1 phase logic over its slab window.
func (b *BatchController) DecideAll(batch *signal.Batch) {
	if batch.AllChanged || !b.primed {
		for ji, c := range b.juncs {
			lo, hi := batch.JuncOff[ji], batch.JuncOff[ji+1]
			links := batch.Links[lo:hi]
			gains := b.gains[lo:hi]
			for i := range links {
				gains[i] = c.updateLink(i, &links[i])
			}
		}
		b.primed = true
	} else {
		for _, gl := range batch.Changed {
			ji := b.juncOf[gl]
			c := b.juncs[ji]
			b.gains[gl] = c.updateLink(int(gl-batch.JuncOff[ji]), &batch.Links[gl])
		}
	}
	for ji, c := range b.juncs {
		batch.View(ji, &b.obs)
		c.gains = b.gains[batch.JuncOff[ji]:batch.JuncOff[ji+1]]
		batch.Decided[ji] = c.decideWithGains(&b.obs)
	}
}
