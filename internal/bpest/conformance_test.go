package bpest_test

import (
	"testing"

	"utilbp/internal/bpest"
	"utilbp/internal/signal/signaltest"
)

// TestConformanceBPEst runs the shared controller conformance suite
// over the estimated-routing BP family at several estimator forgetting
// rates. The scripts advance per-movement departure counters on a
// subset of links, so the batch-factory equivalence subtests verify the
// change-set caching of estimator state against per-junction dispatch
// bit-for-bit, and the reset-rebuild subtest verifies estimators start
// back at the uniform prior on every factory build.
func TestConformanceBPEst(t *testing.T) {
	cases := []signaltest.Case{
		{Name: "BP-EST", Factory: bpest.Factory(bpest.Options{}), AmberSteps: 4, MinGreenSteps: 1},
		{Name: "BP-EST-fast", Factory: bpest.Factory(bpest.Options{Alpha: 0.3}), AmberSteps: 4},
		{Name: "BP-EST-slow", Factory: bpest.Factory(bpest.Options{Alpha: 0.01, AmberSteps: 2}), AmberSteps: 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) { signaltest.Run(t, c) })
	}
}
