package bpest

import (
	"math"
	"testing"

	"utilbp/internal/rng"
	"utilbp/internal/signal"
)

// TestTurnRatioEstimatorConverges feeds the estimator a long stream of
// joins drawn from known routing rates and checks it converges to the
// truth within tolerance. Exponential forgetting never averages out its
// stationary sampling noise — the instantaneous estimate hovers around
// the truth with variance scaling in alpha — so the check time-averages
// the estimate over the second half of the stream, where the mean has
// long converged and the noise integrates away.
func TestTurnRatioEstimatorConverges(t *testing.T) {
	truth := [signal.NumTurns]float64{0.5, 0.3, 0.2}
	const steps = 4000
	for _, alpha := range []float64{0.01, 0.05} {
		e := NewTurnRatioEstimator(alpha)
		r := rng.New(7)
		var joins [signal.NumTurns]int
		var avg [signal.NumTurns]float64
		for step := 0; step < steps; step++ {
			// One to three vehicles join per step, each routed by truth.
			n := 1 + int(r.Uint64()%3)
			for v := 0; v < n; v++ {
				u := float64(r.Uint64()%1_000_000) / 1_000_000
				switch {
				case u < truth[0]:
					joins[0]++
				case u < truth[0]+truth[1]:
					joins[1]++
				default:
					joins[2]++
				}
			}
			e.Observe(joins)
			if step >= steps/2 {
				for turn, v := range e.Ratios() {
					avg[turn] += v
				}
			}
		}
		sum := 0.0
		for turn, want := range truth {
			got := avg[turn] / (steps / 2)
			sum += got
			if math.Abs(got-want) > 0.03 {
				t.Errorf("alpha=%v turn %d: time-averaged estimate %.4f, want %.2f ± 0.03", alpha, turn, got, want)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%v: averaged ratios sum to %v, want 1", alpha, sum)
		}
	}
}

// TestTurnRatioEstimatorNoEventNoOp pins the property the batch
// change-set caching relies on: observing unchanged counters leaves the
// estimator state bit-for-bit identical.
func TestTurnRatioEstimatorNoEventNoOp(t *testing.T) {
	e := NewTurnRatioEstimator(0.05)
	e.Observe([signal.NumTurns]int{4, 2, 1})
	before := e
	e.Observe([signal.NumTurns]int{4, 2, 1})
	if e != before {
		t.Fatalf("no-event Observe changed state: %+v -> %+v", before, e)
	}
}

// TestTurnRatioEstimatorBatchOrderInvariance pins the batch update
// form: folding n events in one Observe equals folding them one at a
// time, so observation cadence (per-slot vs per-event) cannot change
// the estimate.
func TestTurnRatioEstimatorBatchOrderInvariance(t *testing.T) {
	one := NewTurnRatioEstimator(0.1)
	one.Observe([signal.NumTurns]int{3, 0, 0})

	step := NewTurnRatioEstimator(0.1)
	step.Observe([signal.NumTurns]int{1, 0, 0})
	step.Observe([signal.NumTurns]int{2, 0, 0})
	step.Observe([signal.NumTurns]int{3, 0, 0})

	for turn := range one.Ratios() {
		got, want := step.Ratios()[turn], one.Ratios()[turn]
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("turn %d: per-event %.15f vs batch %.15f", turn, got, want)
		}
	}
}

// TestOptionsValidation table-tests the NaN- and sign-rejecting option
// checks of New.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"defaults", Options{}, true},
		{"explicit", Options{Alpha: 0.2, GainAlpha: -0.5, GainBeta: -3, AmberSteps: 2}, true},
		{"alpha zero stays default", Options{Alpha: 0}, true},
		{"alpha one", Options{Alpha: 1}, false},
		{"alpha negative", Options{Alpha: -0.1}, false},
		{"alpha NaN", Options{Alpha: math.NaN()}, false},
		{"gain alpha positive", Options{GainAlpha: 1}, false},
		{"gain alpha NaN", Options{GainAlpha: math.NaN()}, false},
		{"gain beta positive", Options{GainBeta: 2}, false},
		{"gain beta NaN", Options{GainBeta: math.NaN()}, false},
		{"amber negative", Options{AmberSteps: -1}, false},
	}
	info := signal.JunctionInfo{Label: "t", Phases: [][]int{{0}, {1}}, NumLinks: 2, WStar: 120, DeltaT: 1}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(info, c.opts)
			if c.ok && err != nil {
				t.Fatalf("New(%+v) = %v, want ok", c.opts, err)
			}
			if !c.ok && err == nil {
				t.Fatalf("New(%+v) succeeded, want error", c.opts)
			}
		})
	}
}
