package bpest

import (
	"fmt"

	"utilbp/internal/signal"
	"utilbp/internal/snap"
)

// SnapshotState implements signal.Snapshotter: the estimated-routing
// controller carries the amber timer plus one turn-ratio estimator per
// link — the ratio vector and the cumulative join counters it last
// consumed. Restoring lastJoins alongside the ratios is what makes the
// first post-restore full sweep exact: Observe sees zero deltas on
// unchanged links and no-ops, leaving the restored ratios bit-for-bit.
func (c *Controller) SnapshotState(w *snap.Writer) {
	w.Int(c.amberUntil)
	w.Int(len(c.est))
	for i := range c.est {
		e := &c.est[i]
		for t := 0; t < signal.NumTurns; t++ {
			w.Float64(e.ratios[t])
		}
		for t := 0; t < signal.NumTurns; t++ {
			w.Int(e.lastJoins[t])
		}
	}
}

// RestoreState implements signal.Snapshotter.
func (c *Controller) RestoreState(r *snap.Reader) error {
	c.amberUntil = r.Int()
	n := r.Int()
	if r.Err() == nil && n != len(c.est) {
		return fmt.Errorf("bpest: snapshot holds %d link estimators, controller has %d", n, len(c.est))
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		e := &c.est[i]
		for t := 0; t < signal.NumTurns; t++ {
			e.ratios[t] = r.Float64()
		}
		for t := 0; t < signal.NumTurns; t++ {
			e.lastJoins[t] = r.Int()
		}
	}
	return r.Err()
}

// SnapshotState implements signal.Snapshotter by delegating to the
// per-junction controllers; the gain slab and primed flag are cache
// rebuilt exactly by the first post-restore full sweep.
func (b *BatchController) SnapshotState(w *snap.Writer) {
	signal.SnapshotStates(w, b.juncs)
}

// RestoreState implements signal.Snapshotter.
func (b *BatchController) RestoreState(r *snap.Reader) error {
	return signal.RestoreStates(r, b.juncs)
}
