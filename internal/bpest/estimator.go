// Package bpest implements back-pressure signal control under unknown
// routing rates (PAPERS.md 1401.3357): the frozen vehicle.RouteTable the
// simulator routes with is invisible to the controller — instead each
// link carries an online turn-ratio estimator fed by the engine-owned
// "departures per movement" observation (signal.LinkObs.OutTurnJoins),
// and the link gain weighs the outgoing road's per-movement queues by
// the estimated rates. The phase logic is Algorithm 1's (amber hold,
// keep-phase threshold, best-phase selection), so the family composes
// with the same conformance and equivalence harness as UTIL-BP
// (DESIGN.md §13).
package bpest

import (
	"fmt"
	"math"

	"utilbp/internal/signal"
)

// TurnRatioEstimator tracks the routing rates of one outgoing road: the
// probability that a vehicle entering the road heads for each turning
// movement. It is a per-event exponential-forgetting average over the
// observed join counts, seeded with the uniform prior. Observe is a
// no-op when the cumulative counts did not advance, which is the
// property that makes change-set caching of estimated gains exact: a
// link observation outside the batch change set is bit-for-bit
// unchanged, so its estimator state and gain are too.
type TurnRatioEstimator struct {
	// ratios is the current estimate r̂; it stays a convex combination
	// of movement indicators, so the components sum to 1 up to float
	// rounding.
	ratios [signal.NumTurns]float64
	// lastJoins is the cumulative join count the last Observe consumed.
	lastJoins [signal.NumTurns]int
	// alpha is the per-event forgetting rate in (0, 1).
	alpha float64
}

// NewTurnRatioEstimator returns an estimator at the uniform prior with
// the given per-event forgetting rate.
func NewTurnRatioEstimator(alpha float64) TurnRatioEstimator {
	e := TurnRatioEstimator{alpha: alpha}
	for t := range e.ratios {
		e.ratios[t] = 1.0 / signal.NumTurns
	}
	return e
}

// Observe folds the cumulative per-movement join counters of the
// outgoing road into the estimate. With n new events of which d_t chose
// movement t, the update is the order-independent batch form of n
// per-event exponential updates:
//
//	r̂ ← (1−α)ⁿ·r̂ + (1−(1−α)ⁿ)·d/n
//
// so one call per mini-slot and one call per event history are
// identical, and n = 0 changes nothing.
func (e *TurnRatioEstimator) Observe(joins [signal.NumTurns]int) {
	n := 0
	var d [signal.NumTurns]int
	for t, j := range joins {
		d[t] = j - e.lastJoins[t]
		e.lastJoins[t] = j
		if d[t] < 0 {
			// Counters only rewind on engine reset, which rebuilds
			// controllers; tolerate a rewind defensively as "no events".
			d[t] = 0
		}
		n += d[t]
	}
	if n == 0 {
		return
	}
	keep := math.Pow(1-e.alpha, float64(n))
	w := (1 - keep) / float64(n)
	for t := range e.ratios {
		e.ratios[t] = keep*e.ratios[t] + w*float64(d[t])
	}
}

// Ratios returns the current estimate r̂.
func (e *TurnRatioEstimator) Ratios() [signal.NumTurns]float64 { return e.ratios }

// validAlpha rejects a non-usable forgetting rate (the comparison is
// written inverted so NaN is rejected, the FuzzParseSpec lesson).
func validAlpha(alpha float64) error {
	if !(alpha > 0 && alpha < 1) {
		return fmt.Errorf("bpest: estimator forgetting rate must be in (0, 1), got %v", alpha)
	}
	return nil
}
