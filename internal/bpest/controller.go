package bpest

import (
	"fmt"

	"utilbp/internal/core"
	"utilbp/internal/signal"
)

// Options configures the estimated-routing back-pressure controller.
// The CLI spec syntax is bp-est:alpha (scenario.ParseControllerSpec).
type Options struct {
	// Alpha is the turn-ratio estimator's per-event forgetting rate in
	// (0, 1). Zero defaults to 0.05.
	Alpha float64
	// GainAlpha and GainBeta are the special-scenario gains of eq.
	// (8)/(9) shared with UTIL-BP; zero values default to -1 and -2.
	GainAlpha, GainBeta float64
	// AmberSteps is the transition-phase duration in mini-slots. Zero
	// defaults to 4.
	AmberSteps int
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.GainAlpha == 0 {
		o.GainAlpha = -1
	}
	if o.GainBeta == 0 {
		o.GainBeta = -2
	}
	if o.AmberSteps == 0 {
		o.AmberSteps = 4
	}
	return o
}

// Controller is the per-junction estimated-routing BP controller. It
// owns one TurnRatioEstimator per link — estimator state is controller
// state, so an engine Reset (which rebuilds controllers through the
// factory) starts every estimate back at the uniform prior and replays
// are bit-for-bit (DESIGN.md §13).
type Controller struct {
	info   signal.JunctionInfo
	opts   Options
	est    []TurnRatioEstimator
	gains  []float64
	scores []phaseScore
	// amberUntil is the transition timer of Algorithm 1 Case 1.
	amberUntil int
}

// phaseScore carries one phase's gains during selection.
type phaseScore struct {
	gmax, total float64
}

// New builds an estimated-routing BP controller for a junction.
func New(info signal.JunctionInfo, opts Options) (*Controller, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := validAlpha(opts.Alpha); err != nil {
		return nil, err
	}
	if !(opts.GainAlpha < 0 && opts.GainBeta < 0) {
		return nil, fmt.Errorf("bpest: gain alpha (%v) and beta (%v) must be negative", opts.GainAlpha, opts.GainBeta)
	}
	if opts.AmberSteps < 0 {
		return nil, fmt.Errorf("bpest: AmberSteps must be non-negative, got %d", opts.AmberSteps)
	}
	c := &Controller{
		info:   info,
		opts:   opts,
		est:    make([]TurnRatioEstimator, info.NumLinks),
		gains:  make([]float64, info.NumLinks),
		scores: make([]phaseScore, len(info.Phases)),
	}
	for i := range c.est {
		c.est[i] = NewTurnRatioEstimator(opts.Alpha)
	}
	return c, nil
}

// Name implements signal.Controller.
func (c *Controller) Name() string { return "BP-EST" }

// updateLink folds the link's observed departure counters into its
// estimator and returns the estimated-routing gain: beta when the
// outgoing road is full, alpha when the lane is empty, otherwise the
// pressure against the routing-rate-weighted downstream movement queues
// shifted by W* (the eq. 8 structure with Σ_t r̂_t·q_{i',t} replacing
// the aggregate b_{i'}).
func (c *Controller) updateLink(li int, l *signal.LinkObs) float64 {
	c.est[li].Observe(l.OutTurnJoins)
	if l.OutFull() {
		return c.opts.GainBeta
	}
	if l.Queue == 0 {
		return c.opts.GainAlpha
	}
	down := 0.0
	for t := 0; t < signal.NumTurns; t++ {
		down += c.est[li].ratios[t] * float64(l.OutTurnQueue[t])
	}
	return (float64(l.Queue) - down + float64(c.info.WStar)) * l.Mu
}

// Decide implements signal.Controller.
func (c *Controller) Decide(obs *signal.Obs) signal.Phase {
	for i := range obs.Links {
		c.gains[i] = c.updateLink(i, &obs.Links[i])
	}
	return c.decideWithGains(obs)
}

// decideWithGains is Algorithm 1's phase logic over the estimated
// gains, the shared decision tail of Decide and the batched
// controller's sweep (the same split core.Controller uses).
func (c *Controller) decideWithGains(obs *signal.Obs) signal.Phase {
	cur := obs.Current

	// Case 1: the transition period has not expired.
	if cur == signal.Amber && obs.Step < c.amberUntil {
		return signal.Amber
	}

	// Case 2: keep the phase while its best link clears the threshold.
	if cur != signal.Amber {
		gmax, maxLink := core.PhaseMaxGain(c.gains, c.info.Phases[cur-1])
		ctx := core.ThresholdContext{WStar: c.info.WStar, MaxLink: maxLink, Obs: obs}
		if maxLink >= 0 {
			ctx.MaxLinkObs = &obs.Links[maxLink]
		}
		if gmax > core.DefaultThreshold(ctx) {
			return cur
		}
	}

	// Case 3: select the best phase.
	next := c.selectPhase(cur)
	if next == cur || cur == signal.Amber {
		return next
	}
	c.amberUntil = obs.Step + c.opts.AmberSteps
	if c.opts.AmberSteps == 0 {
		return next
	}
	return signal.Amber
}

// selectPhase mirrors Algorithm 1 lines 6-11 over the estimated gains:
// among phases with gmax above the empty-lane gain, the highest total;
// otherwise the highest single-link gain. Ties prefer the current
// phase, then the lowest phase number.
func (c *Controller) selectPhase(cur signal.Phase) signal.Phase {
	scores := c.scores
	anyUsable := false
	for pi, phase := range c.info.Phases {
		gmax, _ := core.PhaseMaxGain(c.gains, phase)
		scores[pi] = phaseScore{gmax: gmax, total: core.PhaseGain(c.gains, phase)}
		if gmax > c.opts.GainAlpha {
			anyUsable = true
		}
	}
	best := signal.Amber
	var bestScore float64
	better := func(p signal.Phase, score float64) bool {
		switch {
		case best == signal.Amber:
			return true
		case score > bestScore:
			return true
		case score == bestScore && p == cur && best != cur:
			return true
		default:
			return false
		}
	}
	for pi := range scores {
		p := signal.Phase(pi + 1)
		if anyUsable {
			if scores[pi].gmax <= c.opts.GainAlpha {
				continue
			}
			if better(p, scores[pi].total) {
				best, bestScore = p, scores[pi].total
			}
		} else {
			if better(p, scores[pi].gmax) {
				best, bestScore = p, scores[pi].gmax
			}
		}
	}
	return best
}

// Factory returns a signal.Factory building estimated-routing BP
// controllers with the given options. The returned factory also
// implements signal.BatchFactory: the estimator no-ops on unchanged
// join counters, so the batched controller's change-set gain cache is
// exact and batched dispatch stays bit-for-bit equal to per-junction.
func Factory(opts Options) signal.Factory {
	return factory{opts: opts}
}

// factory is the BP-EST factory, implementing both signal.Factory and
// signal.BatchFactory.
type factory struct {
	opts Options
}

// Name implements signal.Factory.
func (f factory) Name() string { return "BP-EST" }

// New implements signal.Factory.
func (f factory) New(info signal.JunctionInfo) (signal.Controller, error) {
	return New(info, f.opts)
}

// NewBatch implements signal.BatchFactory.
func (f factory) NewBatch(infos []signal.JunctionInfo) (signal.BatchController, error) {
	return NewBatchController(infos, f.opts)
}
