package core

import (
	"utilbp/internal/signal"
	"utilbp/internal/snap"
)

// SnapshotState implements signal.Snapshotter. The only cross-step
// state Algorithm 1 keeps is the transition timer t_Δk — the gain and
// score slabs are per-Decide scratch recomputed from the observation —
// so the UTIL-BP state section is a single integer.
func (c *Controller) SnapshotState(w *snap.Writer) {
	w.Int(c.amberUntil)
}

// RestoreState implements signal.Snapshotter.
func (c *Controller) RestoreState(r *snap.Reader) error {
	c.amberUntil = r.Int()
	return r.Err()
}

// SnapshotState implements signal.Snapshotter by delegating to the
// per-junction controllers. The gain slab and primed flag are cache: a
// restored controller starts unprimed, and its first DecideAll full
// sweep recomputes the slab from the restored observations — the gain
// is a pure function of the link observation, so the recomputed values
// are bit-for-bit the cached ones.
func (b *BatchController) SnapshotState(w *snap.Writer) {
	signal.SnapshotStates(w, b.juncs)
}

// RestoreState implements signal.Snapshotter.
func (b *BatchController) RestoreState(r *snap.Reader) error {
	return signal.RestoreStates(r, b.juncs)
}
