package core

import (
	"testing"
	"testing/quick"

	"utilbp/internal/rng"
	"utilbp/internal/signal"
)

// refController is an independent, literal transcription of Algorithm 1
// from the paper's pseudocode, kept deliberately naive (no buffer reuse,
// no precomputation) and written against eqs. (8), (10), (11), (12)
// directly. The differential test drives it and the production Controller
// through identical observation sequences and requires identical
// decisions, pinning down amber bookkeeping, threshold strictness and
// tie-breaking.
type refController struct {
	info   signal.JunctionInfo
	alpha  float64
	beta   float64
	deltaK int
	tDelta int // t_{Δk} as a step index
}

func (r *refController) gain(l signal.LinkObs) float64 {
	// eq. (8)
	if l.OutCapacity > 0 && l.OutOccupancy >= l.OutCapacity {
		return r.beta
	}
	if l.Queue == 0 {
		return r.alpha
	}
	return (float64(l.Queue) - float64(l.OutQueue) + float64(r.info.WStar)) * l.Mu
}

func (r *refController) phaseGain(obs *signal.Obs, phase []int) (total, gmax float64, lmax int) {
	lmax = -1
	for _, li := range phase {
		g := r.gain(obs.Links[li])
		total += g
		if lmax == -1 || g > gmax {
			gmax, lmax = g, li
		}
	}
	return total, gmax, lmax
}

func (r *refController) decide(obs *signal.Obs) signal.Phase {
	// Line 1-2: transition period not expired.
	if obs.Current == signal.Amber && obs.Step < r.tDelta {
		return signal.Amber
	}
	// Line 3-4: keep while gmax(c(k-1)) > g* = W*·µ(Lmax)  (eq. 12).
	if obs.Current != signal.Amber {
		_, gmax, lmax := r.phaseGain(obs, r.info.Phases[obs.Current-1])
		gstar := 0.0
		if lmax >= 0 {
			gstar = float64(r.info.WStar) * obs.Links[lmax].Mu
		}
		if gmax > gstar {
			return obs.Current
		}
	}
	// Lines 6-11: select c'.
	usable := false
	for _, phase := range r.info.Phases {
		_, gmax, _ := r.phaseGain(obs, phase)
		if gmax > r.alpha {
			usable = true
			break
		}
	}
	best := signal.Amber
	bestScore := 0.0
	for pi, phase := range r.info.Phases {
		total, gmax, _ := r.phaseGain(obs, phase)
		p := signal.Phase(pi + 1)
		score := gmax
		if usable {
			if gmax <= r.alpha {
				continue
			}
			score = total
		}
		if best == signal.Amber || score > bestScore ||
			(score == bestScore && p == obs.Current && best != obs.Current) {
			best, bestScore = p, score
		}
	}
	// Lines 12-17.
	if best == obs.Current || obs.Current == signal.Amber {
		return best
	}
	r.tDelta = obs.Step + r.deltaK
	if r.deltaK == 0 {
		return best
	}
	return signal.Amber
}

// TestDifferentialAgainstPaperTranscription drives both implementations
// through long random observation sequences with closed-loop current
// phases and requires step-for-step identical decisions.
func TestDifferentialAgainstPaperTranscription(t *testing.T) {
	info := signal.JunctionInfo{
		Label:    "J",
		NumLinks: 6,
		Phases:   [][]int{{0, 1, 2}, {3}, {4, 5}},
		WStar:    40,
		DeltaT:   1,
	}
	f := func(seed uint32, amberRaw uint8) bool {
		amber := int(amberRaw%5) + 1
		prod, err := New(info, Options{AmberSteps: amber})
		if err != nil {
			return false
		}
		ref := &refController{info: info, alpha: -1, beta: -2, deltaK: amber}
		src := rng.New(uint64(seed))
		curProd, curRef := signal.Amber, signal.Amber
		for k := 0; k < 300; k++ {
			obs := signal.Obs{Step: k, Time: float64(k)}
			for li := 0; li < info.NumLinks; li++ {
				l := signal.LinkObs{
					Queue:       src.Intn(12),
					OutQueue:    src.Intn(12),
					OutCapacity: 40,
					InCapacity:  40,
					Mu:          1,
				}
				// Occasionally saturate the outgoing road or use a
				// different service rate.
				switch src.Intn(8) {
				case 0:
					l.OutOccupancy = 40
				case 1:
					l.Mu = 0.5
				default:
					l.OutOccupancy = l.OutQueue
				}
				l.ApproachQueue = l.Queue + src.Intn(5)
				obs.Links = append(obs.Links, l)
			}
			obsProd := obs
			obsProd.Current = curProd
			obsRef := obs
			obsRef.Current = curRef
			curProd = prod.Decide(&obsProd)
			curRef = ref.decide(&obsRef)
			if curProd != curRef {
				t.Logf("seed %d amber %d step %d: prod %v ref %v", seed, amber, k, curProd, curRef)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialHeavyCongestion repeats the differential check in a
// regime where beta cases and full roads dominate.
func TestDifferentialHeavyCongestion(t *testing.T) {
	info := signal.JunctionInfo{
		Label:    "J",
		NumLinks: 4,
		Phases:   [][]int{{0, 1}, {2, 3}},
		WStar:    10,
		DeltaT:   1,
	}
	prod, err := New(info, Options{AmberSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref := &refController{info: info, alpha: -1, beta: -2, deltaK: 3}
	src := rng.New(99)
	curProd, curRef := signal.Amber, signal.Amber
	for k := 0; k < 2000; k++ {
		obs := signal.Obs{Step: k, Time: float64(k)}
		for li := 0; li < info.NumLinks; li++ {
			occ := 8 + src.Intn(3) // 8..10 of capacity 10: often full
			obs.Links = append(obs.Links, signal.LinkObs{
				Queue:         src.Intn(3),
				OutQueue:      occ,
				OutOccupancy:  occ,
				OutCapacity:   10,
				InCapacity:    10,
				ApproachQueue: src.Intn(6),
				Mu:            1,
			})
		}
		op, or := obs, obs
		op.Current = curProd
		or.Current = curRef
		curProd = prod.Decide(&op)
		curRef = ref.decide(&or)
		if curProd != curRef {
			t.Fatalf("step %d: prod %v ref %v", k, curProd, curRef)
		}
	}
}
