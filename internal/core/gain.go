// Package core implements the paper's primary contribution: the
// utilization-aware adaptive back-pressure traffic-signal controller
// (UTIL-BP), i.e. the modified link gain of eq. (6)–(8), the phase gains
// of eq. (10)–(11), the keep-phase threshold g* of eq. (12), and
// Algorithm 1, which together enable varying-length control phases that
// trade off stability against junction utilization.
package core

import (
	"fmt"

	"utilbp/internal/signal"
)

// Params are the gain parameters of eq. (7)–(9).
type Params struct {
	// Alpha is the gain assigned to a link whose dedicated incoming
	// lane is empty (second special scenario of eq. 8); Beta to a link
	// whose outgoing road is at capacity (first scenario). The paper
	// requires beta < alpha < 0 (eq. 9), though it notes the ordering
	// may be reversed by a traffic authority; Validate enforces only
	// that both are negative.
	Alpha, Beta float64
	// WStar is W* = max_i' W_i' (eq. 7), the shift that keeps the
	// pressure term of a serviceable link positive.
	WStar int
}

// DefaultParams returns the evaluation parameters of Section V:
// alpha = -1, beta = -2 (WStar must still be set from the network).
func DefaultParams(wstar int) Params {
	return Params{Alpha: -1, Beta: -2, WStar: wstar}
}

// Validate checks eq. (9)'s sign requirements.
func (p Params) Validate() error {
	if p.Alpha >= 0 || p.Beta >= 0 {
		return fmt.Errorf("core: alpha (%v) and beta (%v) must be negative", p.Alpha, p.Beta)
	}
	if p.WStar < 0 {
		return fmt.Errorf("core: WStar must be non-negative, got %d", p.WStar)
	}
	return nil
}

// GainVariant selects the pressure formulation, for the headline
// algorithm and for the ablations in DESIGN.md.
type GainVariant struct {
	// WholeRoadPressure replaces the per-lane incoming pressure
	// b_i^{i'} with the whole-road pressure b_i of the original eq. (5)
	// — ablation A4, reverting the paper's first modification.
	WholeRoadPressure bool
	// NoWStarShift removes the +W* shift and clamps the gain at zero,
	// disallowing service under negative pressure difference — ablation
	// A1, reverting the paper's second modification.
	NoWStarShift bool
	// NoSpecialCases disables the alpha/beta scenarios of eq. (8) so
	// empty-incoming and full-outgoing links are scored by the plain
	// formula — ablation A3.
	NoSpecialCases bool
	// CountApproaching includes vehicles rolling toward the stop line
	// in the per-lane pressure (the queuing-network reading of
	// q_i^{i'}: every vehicle on road i bound for i' is in its queue).
	// The empty-lane special case then triggers only when no vehicle is
	// queued or approaching.
	CountApproaching bool
}

// LinkGain computes g(L_i^{i'}, k) per eq. (8):
//
//	beta                              if the outgoing road is full,
//	alpha                             if the incoming lane is empty,
//	(b_i^{i'} - b_{i'} + W*) · µ      otherwise,
//
// with the variant switches applied for ablation studies.
func LinkGain(l *signal.LinkObs, p Params, v GainVariant) float64 {
	laneQueue := l.Queue
	if v.CountApproaching {
		laneQueue += l.InTransit
	}
	if !v.NoSpecialCases {
		if l.OutFull() {
			return p.Beta
		}
		if laneQueue == 0 {
			return p.Alpha
		}
	}
	in := float64(laneQueue)
	if v.WholeRoadPressure {
		in = float64(l.ApproachQueue)
	}
	pressure := in - float64(l.OutQueue)
	if v.NoWStarShift {
		g := pressure * l.Mu
		if g < 0 {
			return 0
		}
		return g
	}
	return (pressure + float64(p.WStar)) * l.Mu
}

// Gains evaluates every link gain of an observation into dst (allocated
// when nil or short) and returns it.
func Gains(obs *signal.Obs, p Params, v GainVariant, dst []float64) []float64 {
	if cap(dst) < len(obs.Links) {
		dst = make([]float64, len(obs.Links))
	}
	dst = dst[:len(obs.Links)]
	for i := range obs.Links {
		dst[i] = LinkGain(&obs.Links[i], p, v)
	}
	return dst
}

// PhaseGain is g(c_j, k) of eq. (10): the sum of the constituent link
// gains. gains is indexed by link, phase lists link indexes.
func PhaseGain(gains []float64, phase []int) float64 {
	total := 0.0
	for _, li := range phase {
		total += gains[li]
	}
	return total
}

// PhaseMaxGain is gmax(c_j, k) of eq. (11): the maximum constituent link
// gain, and the index of the maximizing link (-1 for an empty phase).
func PhaseMaxGain(gains []float64, phase []int) (float64, int) {
	best, bestLink := 0.0, -1
	for _, li := range phase {
		if bestLink == -1 || gains[li] > best {
			best, bestLink = gains[li], li
		}
	}
	return best, bestLink
}

// ThresholdContext carries what a keep-phase threshold policy may use: the
// junction constants plus the current phase's maximum-gain link Lmax
// (eq. 12 keys the threshold on its service rate).
type ThresholdContext struct {
	// WStar is W* of eq. (7).
	WStar int
	// MaxLink is the index of Lmax(c(k-1), k); MaxLinkObs its state.
	MaxLink    int
	MaxLinkObs *signal.LinkObs
	// Obs is the full observation for custom policies.
	Obs *signal.Obs
}

// ThresholdFunc computes g*(k), the non-negative keep-phase threshold of
// Algorithm 1 line 3. The paper requires g*(k) >= 0 so that work
// conservation holds (Section IV Q2).
type ThresholdFunc func(ctx ThresholdContext) float64

// DefaultThreshold implements eq. (12): g*(k) = W* · µ of Lmax, so the
// current phase is kept exactly while its best link still has a positive
// pressure difference.
func DefaultThreshold(ctx ThresholdContext) float64 {
	if ctx.MaxLinkObs == nil {
		return 0
	}
	return float64(ctx.WStar) * ctx.MaxLinkObs.Mu
}

// ConstantThreshold returns a ThresholdFunc with a fixed g*.
func ConstantThreshold(g float64) ThresholdFunc {
	return func(ThresholdContext) float64 { return g }
}
