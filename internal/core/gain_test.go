package core

import (
	"math"
	"testing"
	"testing/quick"

	"utilbp/internal/signal"
)

func TestLinkGainSpecialCases(t *testing.T) {
	p := Params{Alpha: -1, Beta: -2, WStar: 120}
	full := signal.LinkObs{Queue: 10, OutOccupancy: 50, OutCapacity: 50, Mu: 1}
	if got := LinkGain(&full, p, GainVariant{}); got != -2 {
		t.Errorf("full outgoing road gain = %v, want beta=-2", got)
	}
	empty := signal.LinkObs{Queue: 0, OutQueue: 10, OutOccupancy: 10, OutCapacity: 50, Mu: 1}
	if got := LinkGain(&empty, p, GainVariant{}); got != -1 {
		t.Errorf("empty incoming lane gain = %v, want alpha=-1", got)
	}
	// The full-outgoing case takes precedence over the empty-incoming
	// case, per eq. (8)'s ordering.
	both := signal.LinkObs{Queue: 0, OutOccupancy: 50, OutCapacity: 50, Mu: 1}
	if got := LinkGain(&both, p, GainVariant{}); got != -2 {
		t.Errorf("full+empty gain = %v, want beta=-2", got)
	}
}

func TestLinkGainFormula(t *testing.T) {
	p := Params{Alpha: -1, Beta: -2, WStar: 120}
	// eq. (6): (b_i^{i'} - b_{i'} + W*)·µ.
	l := signal.LinkObs{Queue: 7, OutQueue: 30, OutOccupancy: 30, OutCapacity: 120, Mu: 2}
	want := (7.0 - 30.0 + 120.0) * 2
	if got := LinkGain(&l, p, GainVariant{}); got != want {
		t.Errorf("gain = %v, want %v", got, want)
	}
	// Negative pressure difference still yields a positive gain thanks
	// to the W* shift — the paper's utilization mechanism.
	neg := signal.LinkObs{Queue: 3, OutQueue: 100, OutOccupancy: 100, OutCapacity: 120, Mu: 1}
	if got := LinkGain(&neg, p, GainVariant{}); got <= 0 {
		t.Errorf("negative-pressure gain = %v, want positive", got)
	}
}

// TestLinkGainAlwaysPositiveWhenServiceable verifies the key ordering of
// eq. (8)/(9): a link that can actually move a vehicle (non-empty lane,
// non-full outgoing road) always outranks the special cases.
func TestLinkGainAlwaysPositiveWhenServiceable(t *testing.T) {
	p := Params{Alpha: -1, Beta: -2, WStar: 120}
	f := func(q uint16, occ uint16, mu uint8) bool {
		queue := int(q%120) + 1          // >= 1
		outOcc := int(occ % 120)         // < capacity
		rate := float64(mu%4)/2.0 + 0.25 // 0.25..1.75
		l := signal.LinkObs{
			Queue: queue, OutQueue: outOcc, OutOccupancy: outOcc, OutCapacity: 120,
			InCapacity: 120, Mu: rate,
		}
		g := LinkGain(&l, p, GainVariant{})
		return g > 0 && g > p.Alpha && g > p.Beta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkGainMonotonicInQueue(t *testing.T) {
	p := Params{Alpha: -1, Beta: -2, WStar: 120}
	prev := math.Inf(-1)
	for q := 1; q <= 120; q++ {
		l := signal.LinkObs{Queue: q, OutQueue: 40, OutOccupancy: 40, OutCapacity: 120, Mu: 1}
		g := LinkGain(&l, p, GainVariant{})
		if g <= prev {
			t.Fatalf("gain not strictly increasing at queue %d: %v <= %v", q, g, prev)
		}
		prev = g
	}
}

func TestLinkGainVariants(t *testing.T) {
	p := Params{Alpha: -1, Beta: -2, WStar: 120}
	l := signal.LinkObs{Queue: 5, ApproachQueue: 40, OutQueue: 30, OutOccupancy: 30, OutCapacity: 120, Mu: 1}

	// A4: whole-road pressure uses q_i instead of q_i^{i'}.
	whole := LinkGain(&l, p, GainVariant{WholeRoadPressure: true})
	if want := (40.0 - 30.0 + 120.0) * 1; whole != want {
		t.Errorf("whole-road gain = %v, want %v", whole, want)
	}

	// A1: no W* shift clamps at zero.
	neg := signal.LinkObs{Queue: 5, OutQueue: 30, OutOccupancy: 30, OutCapacity: 120, Mu: 1}
	if got := LinkGain(&neg, p, GainVariant{NoWStarShift: true}); got != 0 {
		t.Errorf("no-shift negative gain = %v, want 0", got)
	}
	pos := signal.LinkObs{Queue: 50, OutQueue: 30, OutOccupancy: 30, OutCapacity: 120, Mu: 1}
	if got := LinkGain(&pos, p, GainVariant{NoWStarShift: true}); got != 20 {
		t.Errorf("no-shift positive gain = %v, want 20", got)
	}

	// A3: no special cases scores full/empty links by the formula.
	full := signal.LinkObs{Queue: 10, OutQueue: 120, OutOccupancy: 120, OutCapacity: 120, Mu: 1}
	if got := LinkGain(&full, p, GainVariant{NoSpecialCases: true}); got != 10 {
		t.Errorf("no-special full gain = %v, want 10", got)
	}
	empty := signal.LinkObs{Queue: 0, OutQueue: 0, OutOccupancy: 0, OutCapacity: 120, Mu: 1}
	if got := LinkGain(&empty, p, GainVariant{NoSpecialCases: true}); got != 120 {
		t.Errorf("no-special empty gain = %v, want 120", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Alpha: -1, Beta: -2, WStar: 120}).Validate(); err != nil {
		t.Errorf("paper params rejected: %v", err)
	}
	bad := []Params{
		{Alpha: 0, Beta: -2, WStar: 1},
		{Alpha: -1, Beta: 0, WStar: 1},
		{Alpha: 1, Beta: -2, WStar: 1},
		{Alpha: -1, Beta: -2, WStar: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
	// beta > alpha is allowed: "beta can also be larger than alpha,
	// depending on the characteristics of the entire traffic network".
	if err := (Params{Alpha: -2, Beta: -1, WStar: 1}).Validate(); err != nil {
		t.Errorf("beta > alpha rejected: %v", err)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(120)
	if p.Alpha != -1 || p.Beta != -2 || p.WStar != 120 {
		t.Errorf("DefaultParams = %+v", p)
	}
	if p.Beta >= p.Alpha || p.Alpha >= 0 {
		t.Error("defaults violate eq. (9)")
	}
}

func TestPhaseGains(t *testing.T) {
	gains := []float64{5, -1, 3, -2}
	phase := []int{0, 2, 3}
	if got := PhaseGain(gains, phase); got != 6 {
		t.Errorf("PhaseGain = %v, want 6", got)
	}
	gmax, link := PhaseMaxGain(gains, phase)
	if gmax != 5 || link != 0 {
		t.Errorf("PhaseMaxGain = %v/%d, want 5/0", gmax, link)
	}
	if g, l := PhaseMaxGain(gains, nil); g != 0 || l != -1 {
		t.Errorf("empty phase max = %v/%d", g, l)
	}
	// All-negative phases still report their (negative) max.
	gmax, link = PhaseMaxGain(gains, []int{1, 3})
	if gmax != -1 || link != 1 {
		t.Errorf("negative PhaseMaxGain = %v/%d, want -1/1", gmax, link)
	}
}

func TestGainsBufferReuse(t *testing.T) {
	obs := &signal.Obs{Links: []signal.LinkObs{
		{Queue: 1, OutCapacity: 10, Mu: 1},
		{Queue: 0, OutCapacity: 10, Mu: 1},
	}}
	p := Params{Alpha: -1, Beta: -2, WStar: 10}
	buf := make([]float64, 2)
	out := Gains(obs, p, GainVariant{}, buf)
	if &out[0] != &buf[0] {
		t.Error("Gains did not reuse the buffer")
	}
	if out[1] != -1 {
		t.Errorf("gain[1] = %v, want alpha", out[1])
	}
	if out2 := Gains(obs, p, GainVariant{}, nil); len(out2) != 2 {
		t.Error("Gains with nil dst failed")
	}
}

func TestDefaultThreshold(t *testing.T) {
	l := signal.LinkObs{Mu: 1.5}
	ctx := ThresholdContext{WStar: 120, MaxLink: 0, MaxLinkObs: &l}
	if got := DefaultThreshold(ctx); got != 180 {
		t.Errorf("threshold = %v, want 180", got)
	}
	if got := DefaultThreshold(ThresholdContext{WStar: 120}); got != 0 {
		t.Errorf("threshold without max link = %v, want 0", got)
	}
	// eq. (12) keeps the phase exactly while b_i^{i'} > b_{i'}: the gain
	// (b - b' + W*)µ exceeds W*µ iff b > b'.
	p := Params{Alpha: -1, Beta: -2, WStar: 120}
	positive := signal.LinkObs{Queue: 31, OutQueue: 30, OutOccupancy: 30, OutCapacity: 120, Mu: 1}
	balanced := signal.LinkObs{Queue: 30, OutQueue: 30, OutOccupancy: 30, OutCapacity: 120, Mu: 1}
	thr := DefaultThreshold(ThresholdContext{WStar: 120, MaxLinkObs: &positive})
	if LinkGain(&positive, p, GainVariant{}) <= thr {
		t.Error("positive pressure difference should exceed the threshold")
	}
	if LinkGain(&balanced, p, GainVariant{}) > thr {
		t.Error("balanced pressures should not exceed the threshold")
	}
}

func TestConstantThreshold(t *testing.T) {
	f := ConstantThreshold(42)
	if f(ThresholdContext{}) != 42 {
		t.Error("constant threshold wrong")
	}
}
