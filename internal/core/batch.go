package core

import (
	"fmt"

	"utilbp/internal/signal"
)

// BatchController is the batched UTIL-BP controller: one instance drives
// every junction of a network through signal.BatchController.DecideAll
// instead of per-junction virtual Decide calls. Per Algorithm 1 the link
// gain g(L, k) is a pure function of the link's observation, so the
// controller keeps all junctions' gains in one dense slab parallel to
// the batch's link slab and recomputes only the links the engine's
// change set names — in a quiescing network most links are untouched
// between rounds, which is where the batched control plane earns its
// keep (DESIGN.md §11). The per-junction phase logic (amber holding,
// keep-phase threshold, phase selection) is byte-for-byte the
// per-junction Controller's decideWithGains, so the two dispatch modes
// cannot diverge.
//
// The zero value is not usable; construct with NewBatchController. A
// BatchController allocates nothing after construction.
type BatchController struct {
	// juncs holds one per-junction Controller per junction, in batch
	// junction order; each carries its own Algorithm 1 state
	// (amber timer, scratch scores) and params.
	juncs []*Controller
	// gains is the dense link-gain slab, indexed like Batch.Links.
	gains []float64
	// juncOf maps a dense global link index to its junction, for
	// change-set updates (link gains depend on per-junction params).
	juncOf []int32
	// obs is the scratch per-junction observation view.
	obs signal.Obs
	// primed reports whether the gain slab holds the previous round's
	// values; until the first full sweep, change sets cannot be trusted.
	primed bool
}

// NewBatchController builds the batched UTIL-BP controller for the given
// junctions (in batch junction order) with shared options.
func NewBatchController(infos []signal.JunctionInfo, opts Options) (*BatchController, error) {
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: batch controller needs at least one junction")
	}
	b := &BatchController{juncs: make([]*Controller, 0, len(infos))}
	total := 0
	for _, info := range infos {
		c, err := New(info, opts)
		if err != nil {
			return nil, err
		}
		b.juncs = append(b.juncs, c)
		total += info.NumLinks
	}
	b.gains = make([]float64, total)
	b.juncOf = make([]int32, total)
	gl := 0
	for ji, info := range infos {
		for li := 0; li < info.NumLinks; li++ {
			b.juncOf[gl] = int32(ji)
			gl++
		}
	}
	return b, nil
}

// Name implements signal.BatchController.
func (b *BatchController) Name() string { return "UTIL-BP" }

// DecideAll implements signal.BatchController: refresh the gain slab
// (fully, or only the change set) in one flat sweep, then run each
// junction's Algorithm 1 phase logic over its slab window.
func (b *BatchController) DecideAll(batch *signal.Batch) {
	if batch.AllChanged || !b.primed {
		for ji, c := range b.juncs {
			lo, hi := batch.JuncOff[ji], batch.JuncOff[ji+1]
			links := batch.Links[lo:hi]
			gains := b.gains[lo:hi]
			for i := range links {
				gains[i] = LinkGain(&links[i], c.params, c.opts.Variant)
			}
		}
		b.primed = true
	} else {
		for _, gl := range batch.Changed {
			c := b.juncs[b.juncOf[gl]]
			b.gains[gl] = LinkGain(&batch.Links[gl], c.params, c.opts.Variant)
		}
	}
	for ji, c := range b.juncs {
		batch.View(ji, &b.obs)
		// Hand the junction its window of the shared gain slab; the
		// decision tail reads c.gains exactly like the per-junction path.
		c.gains = b.gains[batch.JuncOff[ji]:batch.JuncOff[ji+1]]
		batch.Decided[ji] = c.decideWithGains(&b.obs)
	}
}
