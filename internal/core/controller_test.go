package core

import (
	"testing"
	"testing/quick"

	"utilbp/internal/signal"
)

// testInfo builds a two-phase junction: phase 1 = links {0,1}, phase 2 =
// links {2,3}, W* = 120, Δt = 1.
func testInfo() signal.JunctionInfo {
	return signal.JunctionInfo{
		Label:    "J",
		NumLinks: 4,
		Phases:   [][]int{{0, 1}, {2, 3}},
		WStar:    120,
		DeltaT:   1,
	}
}

// obsWith builds an observation with the given per-link queues; all
// outgoing roads have capacity 120 and occupancy out.
func obsWith(step int, current signal.Phase, queues [4]int, out [4]int) *signal.Obs {
	o := &signal.Obs{Step: step, Time: float64(step), Current: current}
	for i := 0; i < 4; i++ {
		o.Links = append(o.Links, signal.LinkObs{
			Queue:         queues[i],
			ApproachQueue: queues[i],
			OutQueue:      out[i],
			OutOccupancy:  out[i],
			OutCapacity:   120,
			InCapacity:    120,
			Mu:            1,
		})
	}
	return o
}

func newCtrl(t *testing.T, opts Options) *Controller {
	t.Helper()
	c, err := New(testInfo(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFirstDecisionPicksBestPhaseImmediately(t *testing.T) {
	c := newCtrl(t, Options{})
	// Phase 2's links hold all the traffic.
	obs := obsWith(0, signal.Amber, [4]int{0, 0, 9, 4}, [4]int{0, 0, 0, 0})
	if got := c.Decide(obs); got != 2 {
		t.Fatalf("first decision = %v, want phase 2", got)
	}
}

func TestKeepPhaseWhilePressurePositive(t *testing.T) {
	c := newCtrl(t, Options{})
	// Current phase 1; its best link has queue 10 > outgoing 3, so the
	// eq. (12) threshold keeps it even though phase 2 has more traffic.
	obs := obsWith(5, 1, [4]int{10, 0, 50, 50}, [4]int{3, 0, 0, 0})
	if got := c.Decide(obs); got != 1 {
		t.Fatalf("kept phase = %v, want 1", got)
	}
}

func TestSwitchWhenPressureExhausted(t *testing.T) {
	c := newCtrl(t, Options{})
	// Current phase 1 balanced (queue == outgoing ⇒ gain == g*), so the
	// controller re-selects; phase 2 wins and amber starts.
	obs := obsWith(5, 1, [4]int{3, 0, 50, 50}, [4]int{3, 0, 0, 0})
	if got := c.Decide(obs); got != signal.Amber {
		t.Fatalf("decision = %v, want amber before switching", got)
	}
}

func TestAmberDurationRespected(t *testing.T) {
	c := newCtrl(t, Options{AmberSteps: 4})
	queues := [4]int{0, 0, 9, 9}
	out := [4]int{0, 0, 0, 0}
	// Start in phase 1 with nothing to serve: switch to amber at k=10.
	if got := c.Decide(obsWith(10, 1, queues, out)); got != signal.Amber {
		t.Fatalf("no amber at switch: %v", got)
	}
	// Amber holds for steps 11..13 (4 slots total including k=10).
	for k := 11; k <= 13; k++ {
		if got := c.Decide(obsWith(k, signal.Amber, queues, out)); got != signal.Amber {
			t.Fatalf("amber ended early at step %d: %v", k, got)
		}
	}
	// At k=14 the transition expires and phase 2 begins.
	if got := c.Decide(obsWith(14, signal.Amber, queues, out)); got != 2 {
		t.Fatalf("after amber: %v, want phase 2", got)
	}
}

func TestNoAmberWhenReselectingSamePhase(t *testing.T) {
	c := newCtrl(t, Options{})
	// Current phase 1 at threshold (gain == g*, not >) triggers a
	// re-selection, but phase 1 is still the only usable phase:
	// lines 12-13 keep it with no transition.
	obs := obsWith(5, 1, [4]int{3, 0, 0, 0}, [4]int{3, 0, 0, 0})
	if got := c.Decide(obs); got != 1 {
		t.Fatalf("reselected same phase via amber: %v", got)
	}
}

func TestSelectionPrefersTotalGainAmongUsablePhases(t *testing.T) {
	c := newCtrl(t, Options{})
	// Phase 1: links 10+10; phase 2: one link 25, one empty (alpha).
	// Totals: phase1 = 2*(10-0+120) = 260, phase2 = (25+120) + (-1) =
	// 144. Both usable (gmax > alpha); phase 1 wins on total gain.
	obs := obsWith(0, signal.Amber, [4]int{10, 10, 25, 0}, [4]int{0, 0, 0, 0})
	if got := c.Decide(obs); got != 1 {
		t.Fatalf("selected %v, want phase 1 on total gain", got)
	}
}

func TestSelectionFallsBackToMaxLinkGain(t *testing.T) {
	c := newCtrl(t, Options{})
	// No phase guarantees utilization: all lanes empty except link 2
	// whose outgoing road is full (beta), others empty (alpha).
	// Lines 9-10: argmax gmax. Phase 1 has gmax alpha=-1, phase 2 has
	// max(beta, alpha) = alpha too... make phase 2 strictly worse: both
	// its links full-outgoing (beta=-2). Phase 1 must win.
	obs := &signal.Obs{Step: 0, Current: signal.Amber}
	obs.Links = []signal.LinkObs{
		{Queue: 0, OutQueue: 0, OutOccupancy: 0, OutCapacity: 120, Mu: 1},     // alpha
		{Queue: 0, OutQueue: 0, OutOccupancy: 0, OutCapacity: 120, Mu: 1},     // alpha
		{Queue: 5, OutQueue: 120, OutOccupancy: 120, OutCapacity: 120, Mu: 1}, // beta
		{Queue: 5, OutQueue: 120, OutOccupancy: 120, OutCapacity: 120, Mu: 1}, // beta
	}
	if got := c.Decide(obs); got != 1 {
		t.Fatalf("selected %v, want phase 1 (alpha > beta)", got)
	}
}

// TestWorkConservation is the property of Section IV Q2: whenever some
// link can serve a vehicle (non-empty lane, non-full outgoing road), the
// controller never sits on a phase with nothing to serve — after at most
// the transition period it activates a phase with a serviceable link.
func TestWorkConservation(t *testing.T) {
	f := func(q0, q1, q2, q3 uint8, full uint8) bool {
		c, err := New(testInfo(), Options{AmberSteps: 2})
		if err != nil {
			return false
		}
		queues := [4]int{int(q0 % 30), int(q1 % 30), int(q2 % 30), int(q3 % 30)}
		out := [4]int{0, 0, 0, 0}
		// Randomly saturate one outgoing road.
		if full%2 == 0 {
			out[full%4] = 120
		}
		serviceable := map[int]bool{}
		for i := 0; i < 4; i++ {
			if queues[i] > 0 && out[i] < 120 {
				serviceable[i] = true
			}
		}
		if len(serviceable) == 0 {
			return true // nothing to conserve
		}
		// Drive the controller with this frozen state for enough steps
		// to pass any transition; it must settle on a phase containing
		// a serviceable link.
		cur := signal.Amber
		for k := 0; k < 10; k++ {
			cur = c.Decide(obsWith(k, cur, queues, out))
		}
		if cur == signal.Amber {
			return false
		}
		phases := testInfo().Phases
		for _, li := range phases[cur-1] {
			if serviceable[li] {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNoKeepPhaseAblation(t *testing.T) {
	// With NoKeepPhase the controller re-selects every slot: given a
	// better competing phase it abandons the current one even though the
	// keep-phase condition holds.
	obs := obsWith(5, 1, [4]int{10, 0, 50, 50}, [4]int{3, 0, 0, 0})
	keep := newCtrl(t, Options{})
	if got := keep.Decide(obs); got != 1 {
		t.Fatalf("baseline kept %v, want 1", got)
	}
	ablated := newCtrl(t, Options{NoKeepPhase: true})
	if got := ablated.Decide(obs); got != signal.Amber {
		t.Fatalf("ablated controller decided %v, want amber toward phase 2", got)
	}
}

func TestAmberOptionValidation(t *testing.T) {
	if _, err := New(testInfo(), Options{AmberSteps: -1}); err == nil {
		t.Fatal("negative amber accepted")
	}
	// The option's zero value means the paper default Δk = 4 s.
	d := newCtrl(t, Options{})
	if d.opts.AmberSteps != 4 {
		t.Fatalf("default amber = %d, want 4", d.opts.AmberSteps)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Alpha != -1 || o.Beta != -2 || o.AmberSteps != 4 || o.Threshold == nil {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestNewValidatesInfo(t *testing.T) {
	bad := testInfo()
	bad.Phases = nil
	if _, err := New(bad, Options{}); err == nil {
		t.Error("invalid info accepted")
	}
	if _, err := New(testInfo(), Options{Alpha: 1}); err == nil {
		t.Error("positive alpha accepted")
	}
}

func TestFactory(t *testing.T) {
	f := Factory(Options{})
	if f.Name() != "UTIL-BP" {
		t.Errorf("factory name %q", f.Name())
	}
	c, err := f.New(testInfo())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "UTIL-BP" {
		t.Errorf("controller name %q", c.Name())
	}
}

// TestVaryingPhaseLengths drives a synthetic queue evolution and checks
// the signature behaviour of Figure 4: phase lengths adapt to load.
func TestVaryingPhaseLengths(t *testing.T) {
	c := newCtrl(t, Options{AmberSteps: 2})
	cur := signal.Amber
	greens := map[signal.Phase]int{}
	// Heavy traffic on phase 1's links, light on phase 2's. Simulate
	// service: active phase drains one vehicle per slot from its links,
	// arrivals keep phase-1 lanes loaded.
	queues := [4]int{40, 40, 2, 2}
	for k := 0; k < 200; k++ {
		out := [4]int{0, 0, 0, 0}
		cur = c.Decide(obsWith(k, cur, queues, out))
		if cur != signal.Amber {
			greens[cur]++
			for _, li := range testInfo().Phases[cur-1] {
				if queues[li] > 0 {
					queues[li]--
				}
			}
		}
		// Phase-1 lanes refill faster than they drain half the time.
		if k%2 == 0 {
			queues[0]++
			queues[1]++
		}
		if k%25 == 0 {
			queues[2]++
		}
	}
	if greens[1] == 0 || greens[2] == 0 {
		t.Fatalf("both phases should get green: %v", greens)
	}
	if greens[1] < 3*greens[2] {
		t.Fatalf("heavy phase should dominate green time: %v", greens)
	}
}
