package core

import (
	"fmt"

	"utilbp/internal/signal"
)

// Options configures the UTIL-BP controller.
type Options struct {
	// Alpha and Beta are the special-scenario gains of eq. (8)/(9);
	// zero values default to the paper's alpha=-1, beta=-2.
	Alpha, Beta float64
	// AmberSteps is Δk, the transition-phase duration in mini-slots.
	// Zero defaults to 4 (the paper's 4 s amber at Δt = 1 s).
	AmberSteps int
	// Threshold computes g*(k); nil defaults to eq. (12).
	Threshold ThresholdFunc
	// Variant applies the ablation switches to the link gain.
	Variant GainVariant
	// NoKeepPhase disables Algorithm 1's Case 2 (the mechanism limiting
	// phase changes), forcing a re-selection every mini-slot — ablation
	// A2.
	NoKeepPhase bool
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = -1
	}
	if o.Beta == 0 {
		o.Beta = -2
	}
	if o.AmberSteps == 0 {
		o.AmberSteps = 4
	}
	if o.Threshold == nil {
		o.Threshold = DefaultThreshold
	}
	return o
}

// Controller is the utilization-aware adaptive back-pressure controller
// of Algorithm 1. It is invoked at every mini-slot, which is what enables
// varying-length control phases: a phase lasts exactly as long as its
// best link keeps clearing vehicles faster than the threshold g*(k).
type Controller struct {
	info   signal.JunctionInfo
	opts   Options
	params Params
	gains  []float64
	// scores is selectPhase's per-phase scratch space, kept on the
	// controller so re-selection allocates nothing.
	scores []phaseScore
	// amberUntil is t_Δk expressed as a step index: the transition
	// phase runs while obs.Step < amberUntil.
	amberUntil int
}

// phaseScore carries one phase's eq. (10)/(11) gains during selection.
type phaseScore struct {
	gmax, total float64
}

// New builds a UTIL-BP controller for a junction.
func New(info signal.JunctionInfo, opts Options) (*Controller, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.AmberSteps < 0 {
		return nil, fmt.Errorf("core: AmberSteps must be non-negative, got %d", opts.AmberSteps)
	}
	params := Params{Alpha: opts.Alpha, Beta: opts.Beta, WStar: info.WStar}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		info:   info,
		opts:   opts,
		params: params,
		gains:  make([]float64, info.NumLinks),
		scores: make([]phaseScore, len(info.Phases)),
	}, nil
}

// Name implements signal.Controller.
func (c *Controller) Name() string { return "UTIL-BP" }

// Decide implements signal.Controller with Algorithm 1.
func (c *Controller) Decide(obs *signal.Obs) signal.Phase {
	c.gains = Gains(obs, c.params, c.opts.Variant, c.gains)
	return c.decideWithGains(obs)
}

// decideWithGains is Algorithm 1 with the link gains already evaluated
// into c.gains. It is the shared decision tail of the per-junction
// Decide and the batched controller's flat sweep (batch.go), kept in one
// place so the two dispatch paths cannot drift: the batched path fills
// c.gains from its change-set-maintained slab window and calls this
// exact code.
func (c *Controller) decideWithGains(obs *signal.Obs) signal.Phase {
	cur := obs.Current

	// Case 1 (lines 1-2): the transition period Δk has not expired.
	if cur == signal.Amber && obs.Step < c.amberUntil {
		return signal.Amber
	}

	// Case 2 (lines 3-4): keep the current phase while its best link
	// gain exceeds the non-negative threshold g*(k) — the mechanism
	// that limits the number of transition phases.
	if cur != signal.Amber && !c.opts.NoKeepPhase {
		gmax, maxLink := PhaseMaxGain(c.gains, c.info.Phases[cur-1])
		ctx := ThresholdContext{WStar: c.info.WStar, MaxLink: maxLink, Obs: obs}
		if maxLink >= 0 {
			ctx.MaxLinkObs = &obs.Links[maxLink]
		}
		if gmax > c.opts.Threshold(ctx) {
			return cur
		}
	}

	// Case 3 (lines 5-17): select the best phase.
	next := c.selectPhase(cur)

	// Lines 12-16: adopt it directly when it is the current phase or a
	// transition just ended; otherwise start a transition of Δk slots.
	if next == cur || cur == signal.Amber {
		return next
	}
	c.amberUntil = obs.Step + c.opts.AmberSteps
	if c.opts.AmberSteps == 0 {
		return next
	}
	return signal.Amber
}

// selectPhase implements lines 6-11: among phases guaranteeing some
// utilization in the next mini-slot (gmax > alpha), pick the highest
// total gain (best effort against instability); if no phase can
// guarantee utilization, pick the highest single-link gain. Ties prefer
// the current phase (avoiding a pointless transition), then the lowest
// phase number.
func (c *Controller) selectPhase(cur signal.Phase) signal.Phase {
	scores := c.scores
	anyUsable := false
	for pi, phase := range c.info.Phases {
		gmax, _ := PhaseMaxGain(c.gains, phase)
		scores[pi] = phaseScore{gmax: gmax, total: PhaseGain(c.gains, phase)}
		if gmax > c.params.Alpha {
			anyUsable = true
		}
	}
	best := signal.Amber
	var bestScore float64
	better := func(p signal.Phase, score float64) bool {
		switch {
		case best == signal.Amber:
			return true
		case score > bestScore:
			return true
		case score == bestScore && p == cur && best != cur:
			return true
		default:
			return false
		}
	}
	for pi := range scores {
		p := signal.Phase(pi + 1)
		if anyUsable {
			// Lines 6-8: C' = {c_j : gmax > alpha}; argmax total gain.
			if scores[pi].gmax <= c.params.Alpha {
				continue
			}
			if better(p, scores[pi].total) {
				best, bestScore = p, scores[pi].total
			}
		} else {
			// Lines 9-10: argmax single-link gain.
			if better(p, scores[pi].gmax) {
				best, bestScore = p, scores[pi].gmax
			}
		}
	}
	return best
}

// Factory returns a signal.Factory building UTIL-BP controllers with the
// given options. The returned factory also implements
// signal.BatchFactory, so engines in auto or batched control mode run
// UTIL-BP through the batched control plane (NewBatchController) —
// bit-for-bit equal to the per-junction path.
func Factory(opts Options) signal.Factory {
	return factory{opts: opts}
}

// factory is the UTIL-BP factory, implementing both signal.Factory and
// signal.BatchFactory.
type factory struct {
	opts Options
}

// Name implements signal.Factory.
func (f factory) Name() string { return "UTIL-BP" }

// New implements signal.Factory.
func (f factory) New(info signal.JunctionInfo) (signal.Controller, error) {
	return New(info, f.opts)
}

// NewBatch implements signal.BatchFactory.
func (f factory) NewBatch(infos []signal.JunctionInfo) (signal.BatchController, error) {
	return NewBatchController(infos, f.opts)
}
