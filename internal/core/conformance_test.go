package core_test

import (
	"testing"

	"utilbp/internal/core"
	"utilbp/internal/signal/signaltest"
)

// TestConformanceUtilBP runs the shared controller conformance suite
// over the UTIL-BP family: the paper's configuration and every ablation
// variant, each of which must satisfy the engine contract (in-range
// decisions, 4-slot amber insertion, replay determinism) and match its
// own batched dispatch bit-for-bit.
func TestConformanceUtilBP(t *testing.T) {
	cases := []signaltest.Case{
		{Name: "UTIL-BP", Factory: core.Factory(core.Options{}), AmberSteps: 4, MinGreenSteps: 1},
		{Name: "UTIL-BP-nokeep", Factory: core.Factory(core.Options{NoKeepPhase: true}), AmberSteps: 4},
		{Name: "UTIL-BP-nowstar", Factory: core.Factory(core.Options{Variant: core.GainVariant{NoWStarShift: true}}), AmberSteps: 4},
		{Name: "UTIL-BP-nospecial", Factory: core.Factory(core.Options{Variant: core.GainVariant{NoSpecialCases: true}}), AmberSteps: 4},
		{Name: "UTIL-BP-wholeroad", Factory: core.Factory(core.Options{Variant: core.GainVariant{WholeRoadPressure: true}}), AmberSteps: 4},
		{Name: "UTIL-BP-approaching", Factory: core.Factory(core.Options{Variant: core.GainVariant{CountApproaching: true}}), AmberSteps: 4},
		{Name: "UTIL-BP-amber2", Factory: core.Factory(core.Options{AmberSteps: 2}), AmberSteps: 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) { signaltest.Run(t, c) })
	}
}
