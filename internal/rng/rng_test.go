package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("arrivals")
	// Drawing from c1 must not affect a later split with the same label.
	for i := 0; i < 50; i++ {
		c1.Uint64()
	}
	c2 := parent.Split("arrivals")
	c3 := New(7).Split("arrivals")
	for i := 0; i < 100; i++ {
		v2, v3 := c2.Uint64(), c3.Uint64()
		if v2 != v3 {
			t.Fatalf("split stream not reproducible at draw %d: %d vs %d", i, v2, v3)
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	parent := New(7)
	a := parent.Split("a")
	b := parent.Split("b")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("streams with different labels produced identical draws")
	}
}

func TestSplitIndexedDiffer(t *testing.T) {
	parent := New(7)
	a := parent.SplitIndexed("road", 0)
	b := parent.SplitIndexed("road", 1)
	identical := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("indexed streams with different indices are identical")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(9)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(5)
	const mean = 6.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("negative exponential draw %g", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > 0.1 {
		t.Fatalf("exponential mean: got %.3f want %.1f", got, mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	r := New(5)
	if v := r.Exp(0); v != 0 {
		t.Fatalf("Exp(0) = %g, want 0", v)
	}
	if v := r.Exp(-3); v != 0 {
		t.Fatalf("Exp(-3) = %g, want 0", v)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(13)
	for _, mean := range []float64{0.2, 1, 4, 20} {
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.02 {
			t.Errorf("Poisson(%g) mean: got %.3f", mean, m)
		}
		if math.Abs(variance-mean) > 0.1*mean+0.05 {
			t.Errorf("Poisson(%g) variance: got %.3f", mean, variance)
		}
	}
}

func TestPoissonLargeMeanApproximation(t *testing.T) {
	r := New(17)
	const mean = 100.0
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Poisson(mean)
		if v < 0 {
			t.Fatal("negative Poisson draw")
		}
		sum += float64(v)
	}
	if m := sum / n; math.Abs(m-mean) > 1.0 {
		t.Fatalf("Poisson(100) mean: got %.2f", m)
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := New(1)
	for i := 0; i < 10; i++ {
		if v := r.Poisson(0); v != 0 {
			t.Fatalf("Poisson(0) = %d", v)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(23)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %.3f", p)
	}
}

func TestCategorical(t *testing.T) {
	r := New(29)
	weights := []float64{0.4, 0, 0.4, 0.2}
	const n = 100000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket drawn %d times", counts[1])
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("bucket %d: frequency %.3f want %.1f", i, got, w)
		}
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	r := New(29)
	if idx := r.Categorical([]float64{0, 0, 0}); idx != 2 {
		t.Fatalf("degenerate categorical returned %d, want last index", idx)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	f := func(n uint8) bool {
		m := int(n%20) + 1
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(37)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m) > 0.02 {
		t.Errorf("normal mean %.4f", m)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %.4f", variance)
	}
}

func TestMul128(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(41)
	const (
		n      = 40
		p      = 0.3
		trials = 50000
	)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial(%d,%v) = %d out of range", n, p, k)
		}
		v := float64(k)
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-n*p) > 0.15 {
		t.Errorf("binomial mean %.3f, want %.1f", mean, float64(n)*p)
	}
	if math.Abs(variance-n*p*(1-p)) > 0.5 {
		t.Errorf("binomial variance %.3f, want %.1f", variance, n*p*(1-p))
	}
}

func TestBinomialDegenerateDrawFree(t *testing.T) {
	r := New(43)
	before := *r
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d, want 0", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d, want 10", got)
	}
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, 0.5) = %d, want 0", got)
	}
	if got := r.Binomial(-3, 0.5); got != 0 {
		t.Errorf("Binomial(-3, 0.5) = %d, want 0", got)
	}
	if *r != before {
		t.Error("degenerate Binomial parameters consumed random bits")
	}
}
