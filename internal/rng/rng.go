// Package rng provides deterministic, splittable pseudo-random number
// generation and the distribution samplers used by the traffic simulator.
//
// Reproducibility is a first-class requirement for the experiment harness:
// every run is fully determined by a single 64-bit seed, and independent
// subsystems (arrival processes on different entry roads, route choices,
// ...) draw from independent named streams derived from that seed, so
// adding a consumer never perturbs the draws seen by another.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64, both implemented here so the library depends only on the
// standard library and produces identical sequences on every platform.
package rng

import "math"

// splitMix64 advances the given state and returns the next splitmix64
// output. It is used for seeding and for deriving stream keys.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashString folds a stream label into a 64-bit key (FNV-1a).
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct one with New or Source.Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given 64-bit seed via splitmix64.
func New(seed uint64) *Source {
	var src Source
	st := seed
	for i := range src.s {
		src.s[i] = splitMix64(&st)
	}
	// xoshiro must not start in the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child generator identified by label.
// Splitting does not advance the parent, so the set of child streams a
// program creates — and the order it creates them in — never changes the
// numbers any individual stream produces.
func (r *Source) Split(label string) *Source {
	st := r.s[0] ^ rotl(r.s[2], 29) ^ hashString(label)
	var child Source
	for i := range child.s {
		child.s[i] = splitMix64(&st)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 0x9e3779b97f4a7c15
	}
	return &child
}

// SplitIndexed derives an independent child generator identified by a label
// and an index, convenient for per-entity streams ("arrivals", road ID).
func (r *Source) SplitIndexed(label string, index int) *Source {
	st := r.s[0] ^ rotl(r.s[2], 29) ^ hashString(label) ^ (uint64(index)+1)*0xd1342543de82ef95
	var child Source
	for i := range child.s {
		child.s[i] = splitMix64(&st)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 0x9e3779b97f4a7c15
	}
	return &child
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand; callers validate n at configuration time.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hi = t >> 32
	t = aLo*bHi + mid
	hi += t >> 32
	lo |= (t & mask) << 32
	hi += aHi * bHi
	return hi, lo
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Binomial returns a Binomial(n, p)-distributed count: the number of
// successes in n independent trials of probability p. The sensing layer
// uses it for per-vehicle penetration-rate sampling (each queued vehicle
// is a connected vehicle with probability p). Degenerate parameters are
// draw-free — p <= 0 returns 0 and p >= 1 returns n without consuming
// any random bits — so a perfect-penetration sensor stays a pure
// function of the observed state.
func (r *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Direct Bernoulli summation: n is a queue length (bounded by road
	// capacity), so the exact O(n) method beats the setup cost of the
	// usual inversion/BTPE samplers and keeps the draw count a simple
	// deterministic function of n.
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}

// Exp returns an exponentially distributed value with the given mean.
// A non-positive mean yields 0.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0); Float64 is in [0,1) so 1-u is in (0,1].
	return -mean * math.Log(1-u)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's product-of-uniforms method for small means and a normal
// approximation for large ones (mean > 60), which is ample for traffic
// arrival counts per mini-slot.
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 || mean > 60 {
		// The limit is only consulted by the Knuth branch.
		return r.PoissonWithLimit(mean, 0)
	}
	return r.PoissonWithLimit(mean, math.Exp(-mean))
}

// PoissonWithLimit is Poisson for callers that sample the same mean every
// slot and cache limit = exp(-mean), keeping the transcendental out of the
// per-slot hot path. It produces the identical sequence to Poisson.
func (r *Source) PoissonWithLimit(mean, limit float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean > 60:
		// Normal approximation with continuity correction.
		n := r.Norm()*math.Sqrt(mean) + mean + 0.5
		if n < 0 {
			return 0
		}
		return int(n)
	default:
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	}
}

// Norm returns a standard normal variate (Box–Muller).
func (r *Source) Norm() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Categorical draws an index from the discrete distribution given by
// weights. Non-positive weights are treated as zero. If every weight is
// zero the last index is returned, so a degenerate distribution still
// yields a valid index.
func (r *Source) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return len(weights) - 1
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
