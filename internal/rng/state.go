package rng

// State returns the generator's internal xoshiro256** state word
// vector, the value SetState rewinds to. It exists for the engine
// snapshot/restore layer (DESIGN.md §14): capturing a source's state
// and restoring it later resumes the exact output sequence, which is
// what makes restored runs bit-for-bit identical to uninterrupted
// ones.
func (r *Source) State() [4]uint64 { return r.s }

// SetState installs a state vector previously obtained from State.
// Arbitrary vectors are accepted except all-zero, which xoshiro cannot
// leave; it is replaced by the same escape constant New uses, so a
// corrupted snapshot degrades to a fixed stream instead of a stuck
// generator.
func (r *Source) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15
	}
	r.s = s
}
