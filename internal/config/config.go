// Package config provides JSON-serializable experiment descriptions, so
// runs can be captured, shared and replayed from files instead of flag
// soup. A config fully determines a run: network geometry, demand
// pattern, controller, horizon and seed.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"utilbp/internal/cli"
	"utilbp/internal/experiment"
	"utilbp/internal/network"
	"utilbp/internal/scenario"
)

// Grid mirrors network.GridSpec with JSON tags and unit-suffixed names.
type Grid struct {
	Rows      int     `json:"rows"`
	Cols      int     `json:"cols"`
	SpacingM  float64 `json:"spacing_m"`
	BoundaryM float64 `json:"boundary_m"`
	SpeedMPS  float64 `json:"speed_mps"`
	Capacity  int     `json:"capacity"`
	Mu        float64 `json:"mu_veh_per_s"`
}

// Controller selects the signal-control algorithm.
type Controller struct {
	// Algorithm is one of util, cap, capnorm, orig, fixed.
	Algorithm string `json:"algorithm"`
	// PeriodSec is the control phase period for fixed-slot algorithms
	// and the green time for the pretimed one; ignored by util.
	PeriodSec int `json:"period_sec,omitempty"`
}

// Experiment is one fully-specified simulation run.
type Experiment struct {
	// Name labels the run in reports.
	Name string `json:"name,omitempty"`
	// Seed drives all randomness.
	Seed uint64 `json:"seed"`
	// Pattern is a Table II pattern name: I, II, III, IV or mixed.
	Pattern    string     `json:"pattern"`
	Controller Controller `json:"controller"`
	// DurationSec overrides the pattern's default horizon when > 0.
	DurationSec float64 `json:"duration_sec,omitempty"`
	// Grid overrides the paper's 3x3 geometry when non-zero.
	Grid *Grid `json:"grid,omitempty"`
	// AmberSec is the transition-phase duration (0 = paper's 4 s).
	AmberSec int `json:"amber_sec,omitempty"`
	// Alpha and Beta override eq. (8)'s special-case gains (0 = paper
	// defaults -1/-2).
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	// MixedLanes enables the head-of-line-blocking extension.
	MixedLanes bool `json:"mixed_lanes,omitempty"`
	// StartupLostSec overrides startup lost time (0 = default 2 s,
	// negative disables).
	StartupLostSec int `json:"startup_lost_sec,omitempty"`
	// CountApproaching widens the detector model (DESIGN.md A6).
	CountApproaching bool `json:"count_approaching,omitempty"`
}

// Default returns the paper's Pattern II / UTIL-BP run.
func Default() *Experiment {
	return &Experiment{
		Name:       "pattern-II-utilbp",
		Seed:       1,
		Pattern:    "II",
		Controller: Controller{Algorithm: "util"},
	}
}

// Validate checks the config without building anything heavyweight.
func (e *Experiment) Validate() error {
	if _, err := cli.ParsePattern(e.Pattern); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if _, err := cli.PickFactory(scenario.Default(), e.Controller.Algorithm, max(e.Controller.PeriodSec, 1)); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if e.Controller.Algorithm != "util" && e.Controller.PeriodSec <= 0 {
		return fmt.Errorf("config: controller %q requires period_sec > 0", e.Controller.Algorithm)
	}
	if e.DurationSec < 0 {
		return fmt.Errorf("config: duration_sec must be non-negative")
	}
	if e.Grid != nil {
		if e.Grid.Rows < 1 || e.Grid.Cols < 1 {
			return fmt.Errorf("config: grid must have at least 1x1 junctions")
		}
		if e.Grid.Capacity <= 0 || e.Grid.Mu <= 0 || e.Grid.SpacingM <= 0 || e.Grid.SpeedMPS <= 0 {
			return fmt.Errorf("config: grid capacity, mu, spacing and speed must be positive")
		}
	}
	return nil
}

// Setup materializes the scenario setup described by the config.
func (e *Experiment) Setup() (scenario.Setup, error) {
	if err := e.Validate(); err != nil {
		return scenario.Setup{}, err
	}
	setup := scenario.Default()
	setup.Seed = e.Seed
	if e.AmberSec > 0 {
		setup.AmberSec = e.AmberSec
	}
	if e.Alpha != 0 {
		setup.Alpha = e.Alpha
	}
	if e.Beta != 0 {
		setup.Beta = e.Beta
	}
	setup.CountApproaching = e.CountApproaching
	if e.Grid != nil {
		setup.Grid = network.GridSpec{
			Rows:           e.Grid.Rows,
			Cols:           e.Grid.Cols,
			Spacing:        e.Grid.SpacingM,
			BoundaryLength: e.Grid.BoundaryM,
			Speed:          e.Grid.SpeedMPS,
			Capacity:       e.Grid.Capacity,
			Mu:             e.Grid.Mu,
		}
	}
	return setup, nil
}

// Spec materializes the full run specification.
func (e *Experiment) Spec() (experiment.Spec, error) {
	setup, err := e.Setup()
	if err != nil {
		return experiment.Spec{}, err
	}
	pattern, err := cli.ParsePattern(e.Pattern)
	if err != nil {
		return experiment.Spec{}, err
	}
	factory, err := cli.PickFactory(setup, e.Controller.Algorithm, e.Controller.PeriodSec)
	if err != nil {
		return experiment.Spec{}, err
	}
	return experiment.Spec{
		Setup:            setup,
		Pattern:          pattern,
		Factory:          factory,
		DurationSec:      e.DurationSec,
		MixedLanes:       e.MixedLanes,
		StartupLostSteps: e.StartupLostSec,
	}, nil
}

// Load reads a config from JSON. Unknown fields are rejected so typos in
// hand-written files fail loudly.
func Load(r io.Reader) (*Experiment, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var e Experiment
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("config: decode: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// LoadFile reads a config from a file path.
func LoadFile(path string) (*Experiment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Save writes the config as indented JSON.
func (e *Experiment) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e); err != nil {
		return fmt.Errorf("config: encode: %w", err)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
