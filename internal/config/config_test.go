package config

import (
	"bytes"
	"strings"
	"testing"

	"utilbp/internal/experiment"
	"utilbp/internal/scenario"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Experiment{
		{Pattern: "V", Controller: Controller{Algorithm: "util"}},
		{Pattern: "I", Controller: Controller{Algorithm: "quantum"}},
		{Pattern: "I", Controller: Controller{Algorithm: "cap"}}, // no period
		{Pattern: "I", Controller: Controller{Algorithm: "util"}, DurationSec: -5},
		{Pattern: "I", Controller: Controller{Algorithm: "util"}, Grid: &Grid{Rows: 0, Cols: 3, SpacingM: 100, SpeedMPS: 10, Capacity: 10, Mu: 1}},
		{Pattern: "I", Controller: Controller{Algorithm: "util"}, Grid: &Grid{Rows: 2, Cols: 2, SpacingM: 100, SpeedMPS: 10, Capacity: 0, Mu: 1}},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, e)
		}
	}
}

func TestSetupOverrides(t *testing.T) {
	e := &Experiment{
		Seed:    9,
		Pattern: "III",
		Controller: Controller{
			Algorithm: "cap", PeriodSec: 24,
		},
		AmberSec: 6,
		Alpha:    -0.5,
		Beta:     -3,
		Grid:     &Grid{Rows: 2, Cols: 4, SpacingM: 200, BoundaryM: 150, SpeedMPS: 10, Capacity: 60, Mu: 0.4},
	}
	setup, err := e.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if setup.Seed != 9 || setup.AmberSec != 6 || setup.Alpha != -0.5 || setup.Beta != -3 {
		t.Errorf("setup: %+v", setup)
	}
	if setup.Grid.Rows != 2 || setup.Grid.Cols != 4 || setup.Grid.Mu != 0.4 {
		t.Errorf("grid: %+v", setup.Grid)
	}
	spec, err := e.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Pattern != scenario.PatternIII || spec.Factory.Name() != "CAP-BP" {
		t.Errorf("spec: pattern %v controller %q", spec.Pattern, spec.Factory.Name())
	}
}

func TestSpecRunsEndToEnd(t *testing.T) {
	e := Default()
	e.DurationSec = 300
	spec, err := e.Spec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiment.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Spawned == 0 {
		t.Error("config-driven run produced no traffic")
	}
}

func TestRoundTrip(t *testing.T) {
	e := &Experiment{
		Name: "round-trip", Seed: 7, Pattern: "IV",
		Controller:  Controller{Algorithm: "orig", PeriodSec: 18},
		DurationSec: 120,
		MixedLanes:  true,
		Grid:        &Grid{Rows: 1, Cols: 2, SpacingM: 100, BoundaryM: 80, SpeedMPS: 12, Capacity: 40, Mu: 0.5},
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != e.Name || back.Seed != e.Seed || back.Pattern != e.Pattern ||
		back.Controller != e.Controller || back.DurationSec != e.DurationSec ||
		!back.MixedLanes || *back.Grid != *e.Grid {
		t.Errorf("round trip changed config: %+v vs %+v", back, e)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	js := `{"pattern":"I","controller":{"algorithm":"util"},"warp_speed":9}`
	if _, err := Load(strings.NewReader(js)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	js := `{"pattern":"XII","controller":{"algorithm":"util"}}`
	if _, err := Load(strings.NewReader(js)); err == nil {
		t.Fatal("invalid pattern accepted")
	}
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/config.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
