// Package event is the deterministic fault-injection plane: declarative
// disruption specs (incidents, junction dark-mode, sensor outages,
// demand surges) compiled against a network into a mini-slot-exact
// Schedule the engine applies and reverts as it steps. Schedules are
// immutable once compiled and carry no RNG state, so a disrupted run
// replays bit-for-bit under Reset/ResetWith and pooled sweeps stay
// pinned to their serial references (DESIGN.md §12).
package event

import (
	"fmt"
	"strconv"
	"strings"

	"utilbp/internal/sensing"
)

// Kind enumerates the disruption kinds a Spec can describe.
type Kind int

// The disruption kinds: a capacity-dropping incident on a road, a
// junction controller going dark, a sensing outage on a road's approach
// detectors, and a network-wide demand surge.
const (
	KindIncident Kind = iota
	KindDark
	KindOutage
	KindSurge
	numKinds
)

// String returns the spec-syntax name of the kind.
func (k Kind) String() string {
	switch k {
	case KindIncident:
		return "incident"
	case KindDark:
		return "dark"
	case KindOutage:
		return "outage"
	case KindSurge:
		return "surge"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Default dark-mode policy timings, in seconds, applied when a dark
// spec leaves the corresponding field zero: a 6 s all-red clearance,
// then fixed-time segments of 15 s green and 4 s amber.
const (
	DefaultDarkAllRedSec = 6
	DefaultDarkGreenSec  = 15
	DefaultDarkAmberSec  = 4
)

// Spec is one declarative disruption, the unit scenario setups and the
// CLI carry. Specs are plain comparable values with times in seconds;
// Compile resolves names and converts to mini-slots against a concrete
// network. The textual syntax (ParseSpec/String) is
//
//	incident:link=<road>,t0=<sec>,dur=<sec>,cap=<frac>
//	dark:junction=<name>,t0=<sec>,dur=<sec>[,green=<sec>,amber=<sec>,allred=<sec>]
//	outage:link=<road>,t0=<sec>,dur=<sec>[,mode=blank|freeze]
//	surge:t0=<sec>,dur=<sec>,scale=<mult>
type Spec struct {
	// Kind selects the disruption kind.
	Kind Kind
	// Target names the affected element: a road for incidents and
	// outages, a junction node for dark-mode. Surges are network-wide
	// and leave it empty.
	Target string
	// T0 is the onset time in seconds from the start of the run.
	T0 float64
	// Dur is the scheduled duration in seconds. Dark windows may run
	// longer: the degraded policy holds until its in-flight segment
	// completes (signal.DarkPolicy.ReleaseStep).
	Dur float64
	// CapFrac is the incident severity: the fraction of the road's
	// capacity remaining during the window, in (0, 1]. The effective
	// capacity is clamped to at least one vehicle so a bounded road
	// never becomes indistinguishable from an unbounded one.
	CapFrac float64
	// Scale is the surge multiplier applied to the demand rate inside
	// the window; must be positive (values below 1 model demand drops).
	Scale float64
	// Mode selects the outage behavior (blank or freeze).
	Mode sensing.OutageMode
	// GreenSec, AmberSec and AllRedSec override the dark-mode policy
	// timings in seconds; zero applies the DefaultDark* constants.
	GreenSec, AmberSec, AllRedSec float64
}

// Incident returns the spec for a capacity drop on the named road:
// during [t0, t0+dur) seconds its capacity is capFrac of nominal.
func Incident(road string, t0, dur, capFrac float64) Spec {
	return Spec{Kind: KindIncident, Target: road, T0: t0, Dur: dur, CapFrac: capFrac}
}

// Dark returns the spec for a junction controller outage with default
// degraded-policy timings.
func Dark(junction string, t0, dur float64) Spec {
	return Spec{Kind: KindDark, Target: junction, T0: t0, Dur: dur}
}

// Outage returns the spec for a sensing blackout on the named road's
// approach detectors.
func Outage(road string, t0, dur float64, mode sensing.OutageMode) Spec {
	return Spec{Kind: KindOutage, Target: road, T0: t0, Dur: dur, Mode: mode}
}

// Surge returns the spec for a network-wide demand-rate multiplier.
func Surge(t0, dur, scale float64) Spec {
	return Spec{Kind: KindSurge, T0: t0, Dur: dur, Scale: scale}
}

// Validate rejects malformed specs; scenario.Setup.BuildArtifact calls
// it (via Compile) so invalid schedules fail at build time, not
// mid-sweep. As in sensing.Spec, the inverted comparisons also reject
// NaN fields, which FuzzParseSpec exercises.
func (s Spec) Validate() error {
	if s.Kind < 0 || s.Kind >= numKinds {
		return fmt.Errorf("event: unknown event kind %d", int(s.Kind))
	}
	if !(s.T0 >= 0) {
		return fmt.Errorf("event: %v onset t0=%v, want >= 0", s.Kind, s.T0)
	}
	if !(s.Dur > 0) {
		return fmt.Errorf("event: %v duration dur=%v, want > 0", s.Kind, s.Dur)
	}
	if s.Kind == KindSurge {
		if s.Target != "" {
			return fmt.Errorf("event: surge is network-wide, unexpected target %q", s.Target)
		}
	} else {
		if s.Target == "" {
			return fmt.Errorf("event: %v needs a target", s.Kind)
		}
		if strings.ContainsAny(s.Target, ",;") || strings.TrimSpace(s.Target) != s.Target {
			return fmt.Errorf("event: %v target %q contains separators or surrounding space", s.Kind, s.Target)
		}
	}
	switch s.Kind {
	case KindIncident:
		if !(s.CapFrac > 0 && s.CapFrac <= 1) {
			return fmt.Errorf("event: incident capacity fraction %v outside (0, 1]", s.CapFrac)
		}
	case KindDark:
		if !(s.GreenSec >= 0) || !(s.AmberSec >= 0) || !(s.AllRedSec >= 0) {
			return fmt.Errorf("event: dark policy timings green=%v amber=%v allred=%v, want >= 0",
				s.GreenSec, s.AmberSec, s.AllRedSec)
		}
	case KindOutage:
		if s.Mode != sensing.OutageBlank && s.Mode != sensing.OutageFreeze {
			return fmt.Errorf("event: unknown outage mode %d", int(s.Mode))
		}
	case KindSurge:
		if !(s.Scale > 0) {
			return fmt.Errorf("event: surge scale %v, want > 0", s.Scale)
		}
	}
	return nil
}

// fmtSec renders a numeric field with minimal digits so String
// round-trips exactly through ParseSpec.
func fmtSec(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the spec in the ParseSpec syntax; for valid specs the
// rendering parses back to an identical value (FuzzParseSpec pins
// this). Optional fields at their defaults are omitted, keeping the
// rendering canonical.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Kind.String())
	b.WriteByte(':')
	switch s.Kind {
	case KindDark:
		b.WriteString("junction=")
		b.WriteString(s.Target)
		b.WriteByte(',')
	case KindIncident, KindOutage:
		b.WriteString("link=")
		b.WriteString(s.Target)
		b.WriteByte(',')
	}
	b.WriteString("t0=")
	b.WriteString(fmtSec(s.T0))
	b.WriteString(",dur=")
	b.WriteString(fmtSec(s.Dur))
	switch s.Kind {
	case KindIncident:
		b.WriteString(",cap=")
		b.WriteString(fmtSec(s.CapFrac))
	case KindDark:
		if s.GreenSec != 0 {
			b.WriteString(",green=")
			b.WriteString(fmtSec(s.GreenSec))
		}
		if s.AmberSec != 0 {
			b.WriteString(",amber=")
			b.WriteString(fmtSec(s.AmberSec))
		}
		if s.AllRedSec != 0 {
			b.WriteString(",allred=")
			b.WriteString(fmtSec(s.AllRedSec))
		}
	case KindOutage:
		if s.Mode != sensing.OutageBlank {
			b.WriteString(",mode=")
			b.WriteString(s.Mode.String())
		}
	case KindSurge:
		b.WriteString(",scale=")
		b.WriteString(fmtSec(s.Scale))
	}
	return b.String()
}

// ParseSpec parses one disruption in the syntax documented on Spec.
func ParseSpec(arg string) (Spec, error) {
	name, params, hasParams := strings.Cut(strings.TrimSpace(arg), ":")
	if !hasParams {
		return Spec{}, fmt.Errorf("event: %q has no parameters (want e.g. incident:link=...,t0=...,dur=...,cap=0.5)", arg)
	}
	var spec Spec
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "incident":
		spec.Kind = KindIncident
	case "dark":
		spec.Kind = KindDark
	case "outage":
		spec.Kind = KindOutage
	case "surge":
		spec.Kind = KindSurge
	default:
		return Spec{}, fmt.Errorf("event: unknown event kind %q (want incident, dark, outage or surge)", name)
	}
	for _, field := range strings.Split(params, ",") {
		key, value, hasValue := strings.Cut(field, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		if !hasValue || value == "" {
			return Spec{}, fmt.Errorf("event: field %q needs a value", field)
		}
		if err := spec.setField(key, value); err != nil {
			return Spec{}, err
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// setField applies one key=value pair of the spec syntax.
func (s *Spec) setField(key, value string) error {
	parseSec := func(dst *float64) error {
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("event: bad %s value %q", key, value)
		}
		*dst = v
		return nil
	}
	switch key {
	case "link":
		if s.Kind != KindIncident && s.Kind != KindOutage {
			return fmt.Errorf("event: %v takes no link target", s.Kind)
		}
		s.Target = value
		return nil
	case "junction":
		if s.Kind != KindDark {
			return fmt.Errorf("event: %v takes no junction target", s.Kind)
		}
		s.Target = value
		return nil
	case "t0":
		return parseSec(&s.T0)
	case "dur":
		return parseSec(&s.Dur)
	case "cap":
		if s.Kind != KindIncident {
			return fmt.Errorf("event: cap only applies to incidents")
		}
		return parseSec(&s.CapFrac)
	case "scale":
		if s.Kind != KindSurge {
			return fmt.Errorf("event: scale only applies to surges")
		}
		return parseSec(&s.Scale)
	case "mode":
		if s.Kind != KindOutage {
			return fmt.Errorf("event: mode only applies to outages")
		}
		switch strings.ToLower(value) {
		case "blank":
			s.Mode = sensing.OutageBlank
		case "freeze":
			s.Mode = sensing.OutageFreeze
		default:
			return fmt.Errorf("event: unknown outage mode %q (want blank or freeze)", value)
		}
		return nil
	case "green":
		if s.Kind != KindDark {
			return fmt.Errorf("event: green only applies to dark-mode")
		}
		return parseSec(&s.GreenSec)
	case "amber":
		if s.Kind != KindDark {
			return fmt.Errorf("event: amber only applies to dark-mode")
		}
		return parseSec(&s.AmberSec)
	case "allred":
		if s.Kind != KindDark {
			return fmt.Errorf("event: allred only applies to dark-mode")
		}
		return parseSec(&s.AllRedSec)
	}
	return fmt.Errorf("event: unknown field %q", key)
}

// ParseSpecs parses a semicolon-separated list of disruption specs, the
// form the trafficsim -events flag takes. Empty segments (trailing
// semicolons) are skipped; an empty string yields no specs.
func ParseSpecs(arg string) ([]Spec, error) {
	var out []Spec
	for _, part := range strings.Split(arg, ";") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		spec, err := ParseSpec(part)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

// FormatSpecs renders specs in the ParseSpecs syntax.
func FormatSpecs(specs []Spec) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = s.String()
	}
	return strings.Join(parts, ";")
}

// Summarize renders a compact per-kind census of the specs (e.g.
// "incident+surge×2") for registry listings; it returns "" for an
// empty slice.
func Summarize(specs []Spec) string {
	var counts [numKinds]int
	for _, s := range specs {
		if s.Kind >= 0 && s.Kind < numKinds {
			counts[s.Kind]++
		}
	}
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		switch {
		case counts[k] == 1:
			parts = append(parts, k.String())
		case counts[k] > 1:
			parts = append(parts, fmt.Sprintf("%v×%d", k, counts[k]))
		}
	}
	return strings.Join(parts, "+")
}
