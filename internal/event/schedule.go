package event

import (
	"fmt"
	"math"
	"sort"

	"utilbp/internal/network"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
)

// TransKind enumerates the compiled transition kinds the engine's
// events substep dispatches on.
type TransKind int32

const (
	// TransCapacity sets a road's effective capacity to Transition.Cap —
	// both the onset (reduced) and the clearance (restored to nominal)
	// of an incident compile to this one kind.
	TransCapacity TransKind = iota
	// TransMark only marks the road dirty, forcing the sense substep to
	// refresh its links despite the dirty-link gating; outage window
	// boundaries compile to it so blanking and resynchronization are
	// not deferred until traffic happens to move.
	TransMark
	// TransDarkOn puts the junction's controller offline under
	// Transition.Policy.
	TransDarkOn
	// TransDarkOff hands control back to the junction's controller; its
	// step is the policy's precomputed release step, not the scheduled
	// window end.
	TransDarkOff
)

// Transition is one compiled schedule step: at mini-slot Step the
// engine applies the change described by Kind. Transitions are sorted
// by Step; at equal steps, a target's revert always precedes its next
// apply (Compile emits per-target windows in order and sorts stably).
type Transition struct {
	// Step is the mini-slot the transition fires at, applied before the
	// sense substep of that slot.
	Step int32
	// Kind selects the dispatch.
	Kind TransKind
	// Road targets capacity and mark transitions.
	Road network.RoadID
	// Cap is the effective capacity TransCapacity installs.
	Cap int32
	// Junction targets the dark transitions.
	Junction network.NodeID
	// Policy is the degraded-dispatch rule TransDarkOn arms.
	Policy signal.DarkPolicy
}

// surge is one compiled demand window: multiply the rate by scale for
// t in [t0, end) seconds.
type surge struct {
	t0, end, scale float64
}

// Schedule is a disruption schedule compiled against a concrete
// network: name-resolved, mini-slot-exact and immutable. It lives on
// scenario.Artifact (shared by reference across pooled runs) and is
// armed per-run via sim.Config.Events; the engine walks Transitions
// with a cursor it rewinds on Reset, so replays are bit-for-bit.
type Schedule struct {
	specs       []Spec
	numRoads    int
	numLinks    int
	deltaT      float64
	transitions []Transition
	surges      []surge
	outages     []sensing.OutageWindow
}

// window is a compile-time half-open step interval used for per-target
// overlap rejection.
type window struct {
	start, end int
	spec       int // index into specs, for error messages
}

// Compile resolves the specs against the network and returns the
// mini-slot-exact schedule for engines stepping at deltaT seconds per
// slot. It returns (nil, nil) for an empty spec list — a nil *Schedule
// is the universal "no disruptions" value. Compilation rejects unknown
// road/junction names, incidents on unbounded roads, and overlapping
// windows on one target (overlap across targets, and any surge
// overlap, is fine: surge multipliers compose).
func Compile(net *network.Network, deltaT float64, specs []Spec) (*Schedule, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if !(deltaT > 0) {
		return nil, fmt.Errorf("event: mini-slot duration %v, want > 0", deltaT)
	}
	s := &Schedule{
		specs:    append([]Spec(nil), specs...),
		numRoads: len(net.Roads),
		deltaT:   deltaT,
	}
	for i := range net.Junctions {
		s.numLinks += len(net.Junctions[i].Links)
	}
	steps := func(sec float64) int { return int(math.Round(sec / deltaT)) }
	durSteps := func(sec float64) int { return max(1, steps(sec)) }

	capWins := map[network.RoadID][]window{}
	outWins := map[network.RoadID][]window{}
	darkWins := map[network.NodeID][]window{}
	for i, spec := range s.specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		t0 := steps(spec.T0)
		end := t0 + durSteps(spec.Dur)
		switch spec.Kind {
		case KindIncident:
			road, err := roadByName(net, spec.Target)
			if err != nil {
				return nil, err
			}
			if !road.Bounded() {
				return nil, fmt.Errorf("event: incident on unbounded road %q (no capacity to drop)", spec.Target)
			}
			// Clamp the reduced capacity to at least one vehicle: effective
			// capacity zero would collide with the "unbounded" encoding.
			reduced := int32(max(1, int(spec.CapFrac*float64(road.Capacity)+0.5)))
			capWins[road.ID] = append(capWins[road.ID], window{t0, end, i})
			s.transitions = append(s.transitions,
				Transition{Step: int32(t0), Kind: TransCapacity, Road: road.ID, Cap: reduced},
				Transition{Step: int32(end), Kind: TransCapacity, Road: road.ID, Cap: int32(road.Capacity)},
			)
		case KindDark:
			junc, err := junctionByName(net, spec.Target)
			if err != nil {
				return nil, err
			}
			pol := signal.DarkPolicy{
				AllRedSteps: steps(defaultSec(spec.AllRedSec, DefaultDarkAllRedSec)),
				GreenSteps:  durSteps(defaultSec(spec.GreenSec, DefaultDarkGreenSec)),
				AmberSteps:  durSteps(defaultSec(spec.AmberSec, DefaultDarkAmberSec)),
			}
			if err := pol.Validate(); err != nil {
				return nil, err
			}
			// The policy stays in force past the scheduled end until its
			// in-flight segment completes, so overlap is checked against
			// the actual release step.
			release := pol.ReleaseStep(t0, end)
			darkWins[junc.Node] = append(darkWins[junc.Node], window{t0, release, i})
			s.transitions = append(s.transitions,
				Transition{Step: int32(t0), Kind: TransDarkOn, Junction: junc.Node, Policy: pol},
				Transition{Step: int32(release), Kind: TransDarkOff, Junction: junc.Node},
			)
		case KindOutage:
			road, err := roadByName(net, spec.Target)
			if err != nil {
				return nil, err
			}
			links := make([]bool, s.numLinks)
			base, covered := 0, false
			for ji := range net.Junctions {
				j := &net.Junctions[ji]
				for li := range j.Links {
					if j.Links[li].In == road.ID {
						links[base+li] = true
						covered = true
					}
				}
				base += len(j.Links)
			}
			if !covered {
				return nil, fmt.Errorf("event: outage road %q feeds no junction link (no detector to fail)", spec.Target)
			}
			outWins[road.ID] = append(outWins[road.ID], window{t0, end, i})
			s.outages = append(s.outages, sensing.OutageWindow{
				StartStep: t0, EndStep: end, Mode: spec.Mode, Links: links,
			})
			// Force a sense refresh at both boundaries so the blackout and
			// the recovery land on schedule even if the road is quiescent.
			s.transitions = append(s.transitions,
				Transition{Step: int32(t0), Kind: TransMark, Road: road.ID},
				Transition{Step: int32(end), Kind: TransMark, Road: road.ID},
			)
		case KindSurge:
			s.surges = append(s.surges, surge{t0: spec.T0, end: spec.T0 + spec.Dur, scale: spec.Scale})
		}
	}
	for _, check := range []struct {
		label string
		wins  map[network.RoadID][]window
	}{{"incident windows", capWins}, {"outage windows", outWins}} {
		for rid, wins := range check.wins {
			if err := rejectOverlap(check.label, net.Roads[rid].Name, s.specs, wins); err != nil {
				return nil, err
			}
		}
	}
	for nid, wins := range darkWins {
		if err := rejectOverlap("dark windows", net.Node(nid).Name, s.specs, wins); err != nil {
			return nil, err
		}
	}
	// Stable: per-target emission order (apply, revert, next apply, ...)
	// breaks ties at equal steps, so back-to-back windows revert before
	// they re-apply.
	sort.SliceStable(s.transitions, func(i, j int) bool {
		return s.transitions[i].Step < s.transitions[j].Step
	})
	return s, nil
}

// defaultSec substitutes def when the spec left the field zero.
func defaultSec(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// rejectOverlap errors when two windows on one target intersect.
// Touching windows (one ends exactly when the next starts) are fine.
func rejectOverlap(label, target string, specs []Spec, wins []window) error {
	sort.Slice(wins, func(i, j int) bool { return wins[i].start < wins[j].start })
	for i := 1; i < len(wins); i++ {
		if wins[i].start < wins[i-1].end {
			return fmt.Errorf("event: overlapping %s on %q: %q and %q",
				label, target, specs[wins[i-1].spec], specs[wins[i].spec])
		}
	}
	return nil
}

// roadByName resolves a road by its network name.
func roadByName(net *network.Network, name string) (*network.Road, error) {
	for i := range net.Roads {
		if net.Roads[i].Name == name {
			return &net.Roads[i], nil
		}
	}
	return nil, fmt.Errorf("event: no road named %q in the network", name)
}

// junctionByName resolves a junction by its node name.
func junctionByName(net *network.Network, name string) (*network.Junction, error) {
	for i := range net.Nodes {
		if net.Nodes[i].Name == name && net.Nodes[i].Kind == network.JunctionNode {
			if j := net.Junction(net.Nodes[i].ID); j != nil {
				return j, nil
			}
		}
	}
	return nil, fmt.Errorf("event: no junction named %q in the network", name)
}

// Specs returns a copy of the normalized specs the schedule was
// compiled from.
func (s *Schedule) Specs() []Spec {
	if s == nil {
		return nil
	}
	return append([]Spec(nil), s.specs...)
}

// Transitions returns the compiled transitions sorted by step. The
// slice is shared, not copied — callers (the engine's events substep)
// must treat it as read-only.
func (s *Schedule) Transitions() []Transition {
	if s == nil {
		return nil
	}
	return s.transitions
}

// NumRoads returns the road count of the network the schedule was
// compiled against; the engine checks it at arming time.
func (s *Schedule) NumRoads() int {
	if s == nil {
		return 0
	}
	return s.numRoads
}

// NumLinks returns the dense global link count of the network the
// schedule was compiled against.
func (s *Schedule) NumLinks() int {
	if s == nil {
		return 0
	}
	return s.numLinks
}

// DeltaT returns the mini-slot duration the schedule's steps assume.
func (s *Schedule) DeltaT() float64 {
	if s == nil {
		return 0
	}
	return s.deltaT
}

// Summary renders the compact per-kind census of the schedule's specs.
func (s *Schedule) Summary() string {
	if s == nil {
		return ""
	}
	return Summarize(s.specs)
}

// WrapRate decorates a demand-rate function with the schedule's surge
// windows: inside a window the base rate is multiplied by the surge
// scale, and overlapping surges compose multiplicatively. A nil or
// surge-free schedule returns base unchanged. The signature is the
// unnamed form of sim.RateFunc — the event package sits below sim and
// cannot name it, but defined function types convert freely.
func (s *Schedule) WrapRate(base func(network.RoadID, float64) float64) func(network.RoadID, float64) float64 {
	if s == nil || len(s.surges) == 0 || base == nil {
		return base
	}
	surges := s.surges
	return func(road network.RoadID, t float64) float64 {
		r := base(road, t)
		for i := range surges {
			if t >= surges[i].t0 && t < surges[i].end {
				r *= surges[i].scale
			}
		}
		return r
	}
}

// WrapSensor decorates a sensor with the schedule's outage windows. A
// nil or outage-free schedule returns inner unchanged; with outages, a
// nil inner is promoted to sensing.Perfect (the engine's sensor-free
// fast path has nothing to intercept, so an outage forces the explicit
// sensing path).
func (s *Schedule) WrapSensor(inner sensing.Sensor) sensing.Sensor {
	if s == nil || len(s.outages) == 0 {
		return inner
	}
	if inner == nil {
		inner = sensing.Perfect{}
	}
	return sensing.Outage(inner, s.outages)
}
