package event

import (
	"strings"
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/sensing"
)

// compileNet builds the smallest grid with named roads for compile
// tests: one junction (J00) with four entries (in-<side>-J00, bounded)
// and four exits (out-<side>-J00, unbounded sinks).
func compileNet(t *testing.T) *network.Network {
	t.Helper()
	g, err := network.Grid(network.GridSpec{
		Rows: 1, Cols: 1, Spacing: 300, Speed: 13.9, Capacity: 120, Mu: 1,
	})
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	return g.Network
}

// TestCompileEmptyAndNilSchedule pins the "no disruptions" encoding:
// an empty spec list compiles to a nil *Schedule, and every accessor
// of a nil schedule is safe and returns its zero answer.
func TestCompileEmptyAndNilSchedule(t *testing.T) {
	s, err := Compile(compileNet(t), 1, nil)
	if err != nil {
		t.Fatalf("Compile(nil specs): %v", err)
	}
	if s != nil {
		t.Fatalf("Compile(nil specs) = %+v, want nil schedule", s)
	}
	if got := s.Transitions(); got != nil {
		t.Errorf("nil.Transitions() = %v, want nil", got)
	}
	if s.NumRoads() != 0 || s.NumLinks() != 0 || s.DeltaT() != 0 || s.Summary() != "" {
		t.Errorf("nil schedule accessors not zero: roads=%d links=%d dt=%v summary=%q",
			s.NumRoads(), s.NumLinks(), s.DeltaT(), s.Summary())
	}
	if base := func(network.RoadID, float64) float64 { return 1 }; s.WrapRate(base) == nil {
		t.Errorf("nil.WrapRate(base) = nil, want base unchanged")
	}
}

// TestCompileTouchingIncidentWindows pins the same-step boundary
// semantics of back-to-back windows on one target: one window ending
// exactly where the next starts is not an overlap, and at the shared
// step the revert (capacity restored to nominal) sorts before the next
// apply — the stable-sort tie-break Compile documents.
func TestCompileTouchingIncidentWindows(t *testing.T) {
	net := compileNet(t)
	s, err := Compile(net, 1, []Spec{
		Incident("in-west-J00", 10, 10, 0.5),
		Incident("in-west-J00", 20, 15, 0.25),
	})
	if err != nil {
		t.Fatalf("Compile(touching windows): %v", err)
	}
	trs := s.Transitions()
	if len(trs) != 4 {
		t.Fatalf("got %d transitions, want 4: %+v", len(trs), trs)
	}
	wantSteps := []int32{10, 20, 20, 35}
	for i, tr := range trs {
		if tr.Step != wantSteps[i] {
			t.Errorf("transition %d at step %d, want %d", i, tr.Step, wantSteps[i])
		}
		if tr.Kind != TransCapacity {
			t.Errorf("transition %d kind %v, want TransCapacity", i, tr.Kind)
		}
	}
	// At the shared step 20 the first window's revert (nominal 120) must
	// precede the second window's apply (0.25 × 120 = 30); the reverse
	// order would leave the road at full capacity through the second
	// window.
	if trs[1].Cap != 120 {
		t.Errorf("step-20 revert installs capacity %d, want nominal 120", trs[1].Cap)
	}
	if trs[2].Cap != 30 {
		t.Errorf("step-20 apply installs capacity %d, want reduced 30", trs[2].Cap)
	}
}

// TestCompileRejectsOverlappingIncidents pins the overlap error: its
// text names the window kind, the target road, and both offending
// specs in their round-trippable spec syntax.
func TestCompileRejectsOverlappingIncidents(t *testing.T) {
	a := Incident("in-west-J00", 10, 20, 0.5)
	b := Incident("in-west-J00", 25, 20, 0.25)
	_, err := Compile(compileNet(t), 1, []Spec{a, b})
	if err == nil {
		t.Fatalf("Compile accepted overlapping incident windows")
	}
	for _, want := range []string{
		`overlapping incident windows on "in-west-J00"`,
		a.String(),
		b.String(),
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("overlap error %q does not mention %q", err, want)
		}
	}
}

// TestCompileOverlapAcrossTargetsAllowed pins that the overlap check is
// per target: simultaneous windows on different roads (and an outage on
// a third) compile fine.
func TestCompileOverlapAcrossTargetsAllowed(t *testing.T) {
	_, err := Compile(compileNet(t), 1, []Spec{
		Incident("in-west-J00", 10, 60, 0.5),
		Incident("in-east-J00", 10, 60, 0.5),
		Outage("in-west-J00", 10, 60, sensing.OutageBlank),
	})
	if err != nil {
		t.Fatalf("Compile(cross-target overlap): %v", err)
	}
}

// TestCompileDarkOverlapUsesReleaseStep pins that dark-window overlap
// is checked against the policy's actual release step, not the
// scheduled end: the default policy (6 s all-red + 15/4 fixed-time
// segments) holds a dur=10 window until step 6 + 19 = 25, so a second
// window at t0=12 collides even though the scheduled windows are
// disjoint.
func TestCompileDarkOverlapUsesReleaseStep(t *testing.T) {
	net := compileNet(t)
	s, err := Compile(net, 1, []Spec{Dark("J00", 0, 10)})
	if err != nil {
		t.Fatalf("Compile(single dark): %v", err)
	}
	trs := s.Transitions()
	if len(trs) != 2 || trs[1].Kind != TransDarkOff {
		t.Fatalf("single dark compiled to %+v, want [TransDarkOn, TransDarkOff]", trs)
	}
	if trs[1].Step != 25 {
		t.Errorf("dark release at step %d, want 25 (6 all-red + one 19-step segment)", trs[1].Step)
	}
	_, err = Compile(net, 1, []Spec{Dark("J00", 0, 10), Dark("J00", 12, 5)})
	if err == nil {
		t.Fatalf("Compile accepted a dark window inside the previous window's release tail")
	}
	if !strings.Contains(err.Error(), `overlapping dark windows on "J00"`) {
		t.Errorf("release-tail overlap error = %q, want it to name the dark windows on J00", err)
	}
}

// TestCompileMiniSlotBoundaries pins the seconds-to-step conversion at
// its edges: fractional deltaT scales the step indices, and a duration
// shorter than one mini-slot still occupies one full slot (a
// zero-length window would compile apply and revert onto the same step
// and the disruption would never be observable).
func TestCompileMiniSlotBoundaries(t *testing.T) {
	net := compileNet(t)
	s, err := Compile(net, 0.5, []Spec{Incident("in-west-J00", 10, 15, 0.5)})
	if err != nil {
		t.Fatalf("Compile(deltaT=0.5): %v", err)
	}
	trs := s.Transitions()
	if trs[0].Step != 20 || trs[1].Step != 50 {
		t.Errorf("deltaT=0.5 window at steps [%d, %d), want [20, 50)", trs[0].Step, trs[1].Step)
	}
	s, err = Compile(net, 1, []Spec{Incident("in-west-J00", 40, 0.2, 0.5)})
	if err != nil {
		t.Fatalf("Compile(sub-slot duration): %v", err)
	}
	trs = s.Transitions()
	if trs[0].Step != 40 || trs[1].Step != 41 {
		t.Errorf("sub-slot window at steps [%d, %d), want the one-slot minimum [40, 41)", trs[0].Step, trs[1].Step)
	}
	if _, err := Compile(net, 0, []Spec{Surge(0, 10, 2)}); err == nil {
		t.Errorf("Compile accepted deltaT = 0")
	}
}

// TestCompileSurgeOverlapComposes pins the surge exception to the
// overlap rule: overlapping surges are legal and compose
// multiplicatively inside WrapRate, with half-open [t0, end) windows.
func TestCompileSurgeOverlapComposes(t *testing.T) {
	s, err := Compile(compileNet(t), 1, []Spec{
		Surge(0, 100, 1.5),
		Surge(50, 100, 2),
	})
	if err != nil {
		t.Fatalf("Compile(overlapping surges): %v", err)
	}
	rate := s.WrapRate(func(network.RoadID, float64) float64 { return 2 })
	for _, tc := range []struct {
		t    float64
		want float64
	}{
		{25, 3},  // first surge only
		{75, 6},  // both compose: 2 × 1.5 × 2
		{125, 4}, // second surge only
		{100, 4}, // first window is half-open: excluded at its end
		{150, 2}, // second window's end, also excluded
	} {
		if got := rate(0, tc.t); got != tc.want {
			t.Errorf("wrapped rate at t=%v = %v, want %v", tc.t, got, tc.want)
		}
	}
}

// TestCompileRejectsUntargetableRoads pins the two "this road cannot
// host that disruption" errors: incidents need a bounded road and
// outages need a road that feeds a junction link — exit roads toward
// terminals satisfy neither.
func TestCompileRejectsUntargetableRoads(t *testing.T) {
	net := compileNet(t)
	_, err := Compile(net, 1, []Spec{Incident("out-west-J00", 10, 20, 0.5)})
	if err == nil || !strings.Contains(err.Error(), "unbounded road") {
		t.Errorf("incident on exit road: err = %v, want unbounded-road rejection", err)
	}
	_, err = Compile(net, 1, []Spec{Outage("out-west-J00", 10, 20, sensing.OutageBlank)})
	if err == nil || !strings.Contains(err.Error(), "no detector to fail") {
		t.Errorf("outage on exit road: err = %v, want no-detector rejection", err)
	}
	_, err = Compile(net, 1, []Spec{Incident("no-such-road", 10, 20, 0.5)})
	if err == nil || !strings.Contains(err.Error(), `no road named "no-such-road"`) {
		t.Errorf("incident on unknown road: err = %v, want unknown-name rejection", err)
	}
}
