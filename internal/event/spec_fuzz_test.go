package event

import "testing"

// FuzzParseSpec fuzzes the ParseSpec/Spec.String round trip: any input
// ParseSpec accepts must validate, render through String, re-parse to
// an identical Spec value, and reach a fixed point — the property the
// CLI, the workload registry and the robustness sweep axes rely on when
// they treat event specs as comparable, printable values. The seed
// corpus in testdata/fuzz/FuzzParseSpec covers every kind plus
// near-miss inputs (NaN, negatives, unknown fields).
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"incident:link=J00->J01,t0=300,dur=120,cap=0.5",
		"incident:link=in-North-J00,t0=0,dur=1,cap=1",
		"incident:link=a,t0=1e2,dur=0.5,cap=0.25",
		"dark:junction=J11,t0=60,dur=90",
		"dark:junction=J00,t0=0,dur=30,green=12,amber=3,allred=8",
		"DARK:JUNCTION=J11,T0=60,DUR=90",
		"outage:link=J00->J01,t0=100,dur=50",
		"outage:link=J00->J01,t0=100,dur=50,mode=freeze",
		"outage:link=J00->J01,t0=100,dur=50,mode=blank",
		"surge:t0=0,dur=600,scale=1.5",
		"surge:t0=100,dur=10,scale=0.25",
		" incident:link=x,t0=1,dur=1,cap=0.5 ",
		"incident:link=x,t0=NaN,dur=1,cap=0.5",
		"incident:link=x,t0=1,dur=-1,cap=0.5",
		"incident:link=x,t0=1,dur=1,cap=0",
		"incident:link=x,t0=1,dur=1,cap=2",
		"surge:t0=1,dur=1,scale=NaN",
		"surge:t0=1,dur=1,scale=-2",
		"surge:link=x,t0=1,dur=1,scale=2",
		"dark:junction=J00,t0=1,dur=1,cap=0.5",
		"outage:link=x,t0=1,dur=1,mode=bogus",
		"incident",
		"incident:",
		"bogus:link=x,t0=1,dur=1",
		"incident:link=,t0=1,dur=1,cap=0.5",
		"incident:link=a=b,t0=1,dur=1,cap=0.5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, arg string) {
		spec, err := ParseSpec(arg)
		if err != nil {
			return // rejected inputs are out of contract
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid spec %+v: %v", arg, spec, err)
		}
		rendered := spec.String()
		back, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(%q) -> %+v renders %q, which does not re-parse: %v", arg, spec, rendered, err)
		}
		// Specs are comparable values and String is canonical, so the
		// round trip must be exact and a fixed point.
		if back != spec {
			t.Fatalf("round trip of %q changed the spec: %+v -> %+v", arg, spec, back)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("String is not a fixed point for %q: %q -> %q", arg, rendered, again)
		}
	})
}
