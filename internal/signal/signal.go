// Package signal defines the contract between the simulation engine and
// traffic-signal controllers: the per-junction observation delivered every
// mini-slot, the phase identifiers, and the controller/factory interfaces.
//
// Controllers are deliberately decoupled from the network package: they
// see only the queue lengths, occupancies, capacities and service rates of
// the junction they manage — exactly the local information the paper's
// Algorithm 1 requires ("all the inputs are local to the intersection").
package signal

import "fmt"

// NumTurns is the number of turning movements a road fans out into
// (left, straight, right). It sizes the per-movement downstream arrays
// of LinkObs and matches the network's per-road turn layout.
const NumTurns = 3

// Phase identifies a control phase at a junction. Control phases are
// numbered 1..NumPhases; 0 is the amber transition phase c0 during which
// no link is activated.
type Phase int

// Amber is the transition phase c0.
const Amber Phase = 0

// String renders the phase like the paper ("c0".."c4").
func (p Phase) String() string { return fmt.Sprintf("c%d", int(p)) }

// LinkObs is the observable state of one feasible link L_i^{i'} at a
// decision instant k.
type LinkObs struct {
	// Queue is q_i^{i'}(k): the number of vehicles in this link's
	// dedicated turning lane (stopped at the stop line).
	Queue int
	// InTransit counts vehicles already on the incoming road and bound
	// for this link's lane but still rolling toward the stop line. The
	// paper's queuing-network model treats the whole road as the queue,
	// so gain variants may add this to Queue.
	InTransit int
	// ApproachQueue is q_i(k): the total queued on the incoming road
	// across all its turning lanes (eq. 1). ORIG-BP's gain (eq. 5) and
	// ablation A4 use it instead of Queue.
	ApproachQueue int
	// OutQueue is q_{i'}(k): the total queue length on the outgoing
	// road (vehicles stopped at its downstream stop line), the pressure
	// term b_{i'} of eq. (5)/(6).
	OutQueue int
	// OutOccupancy counts all vehicles currently on the outgoing road
	// (travelling + queued); capacity blocking applies to it.
	OutOccupancy int
	// OutCapacity is W_{i'}; 0 means unbounded (a boundary sink).
	OutCapacity int
	// InCapacity is W_i of the incoming road, used by capacity-
	// normalized pressure variants; 0 means unbounded.
	InCapacity int
	// Mu is the link's full service rate µ_i^{i'} in veh/s.
	Mu float64
	// OutTurnQueue resolves OutQueue per turning movement of the
	// OUTGOING road: OutTurnQueue[t] counts the vehicles queued in the
	// outgoing road's movement-t lane. Downstream-aware controllers
	// (MaxPressure, unknown-routing-rate BP) weight these by routing
	// rates instead of using the aggregate OutQueue. Engine-owned like
	// the capacity fields: sensors never write it (the engine copies
	// truth to the sensed observation after SenseLink), so adding it
	// perturbs no sensor's draw sequence. Zero for boundary sinks.
	OutTurnQueue [NumTurns]int
	// OutTurnJoins is the cumulative count of vehicles that have joined
	// each turning movement's queue on the outgoing road since engine
	// reset — the observable "departures per movement" signal an online
	// turn-ratio estimator consumes in place of the frozen
	// vehicle.RouteTable (PAPERS.md 1401.3357). Engine-owned like
	// OutTurnQueue. Zero for boundary sinks.
	OutTurnJoins [NumTurns]int
}

// OutFull reports whether the outgoing road has reached its capacity, the
// first special scenario of eq. (8).
func (l *LinkObs) OutFull() bool { return l.OutCapacity > 0 && l.OutOccupancy >= l.OutCapacity }

// Obs is the junction observation passed to Controller.Decide at every
// mini-slot.
type Obs struct {
	// Step is the discrete time index k; Time is t_k in seconds.
	Step int
	Time float64
	// Links is indexed by the junction's link index.
	Links []LinkObs
	// Current is c(k-1), the phase applied during the previous
	// mini-slot (Amber at the first step).
	Current Phase
}

// JunctionInfo is the static description of a junction a controller is
// constructed for.
type JunctionInfo struct {
	// Label identifies the junction in logs (typically the node name).
	Label string
	// Phases maps phase p (1-based: Phases[p-1]) to the link indexes it
	// activates.
	Phases [][]int
	// NumLinks is the length of Obs.Links at this junction.
	NumLinks int
	// WStar is W* = max road capacity in the network (eq. 7).
	WStar int
	// DeltaT is the mini-slot length in seconds.
	DeltaT float64
}

// NumPhases returns the number of control phases (excluding amber).
func (ji *JunctionInfo) NumPhases() int { return len(ji.Phases) }

// Validate checks that the phase table is well formed.
func (ji *JunctionInfo) Validate() error {
	if ji.NumLinks <= 0 {
		return fmt.Errorf("signal: junction %q has no links", ji.Label)
	}
	if len(ji.Phases) == 0 {
		return fmt.Errorf("signal: junction %q has no phases", ji.Label)
	}
	if ji.DeltaT <= 0 {
		return fmt.Errorf("signal: junction %q has non-positive mini-slot", ji.Label)
	}
	for pi, p := range ji.Phases {
		if len(p) == 0 {
			return fmt.Errorf("signal: junction %q phase %d empty", ji.Label, pi+1)
		}
		for _, li := range p {
			if li < 0 || li >= ji.NumLinks {
				return fmt.Errorf("signal: junction %q phase %d references link %d of %d", ji.Label, pi+1, li, ji.NumLinks)
			}
		}
	}
	return nil
}

// Controller decides the control phase of one junction. Implementations
// are stateful (they track their own phase timers) and are invoked once
// per mini-slot with the freshly observed queue state.
type Controller interface {
	// Name identifies the control algorithm (e.g. "UTIL-BP").
	Name() string
	// Decide returns c(k): the phase to apply during [t_k, t_k+Δt).
	// Returning Amber keeps every link inactive.
	Decide(obs *Obs) Phase
}

// Factory builds one Controller per junction.
type Factory interface {
	// Name identifies the control algorithm family.
	Name() string
	// New returns a fresh controller for the given junction.
	New(info JunctionInfo) (Controller, error)
}

// FactoryFunc adapts a function to the Factory interface.
type FactoryFunc struct {
	// Label is returned by Name.
	Label string
	// Build constructs the controller.
	Build func(info JunctionInfo) (Controller, error)
}

// Name implements Factory.
func (f FactoryFunc) Name() string { return f.Label }

// New implements Factory.
func (f FactoryFunc) New(info JunctionInfo) (Controller, error) { return f.Build(info) }
