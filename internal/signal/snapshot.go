package signal

import (
	"fmt"

	"utilbp/internal/snap"
)

// Snapshotter is the optional interface stateful controllers (and other
// engine collaborators) implement to participate in engine
// snapshot/restore (DESIGN.md §14). It is an alias of snap.Snapshotter
// so one contract covers controllers, sensors, demand processes and
// routers alike: SnapshotState appends the component's mutable state,
// RestoreState rewinds it, and the two are exact inverses. A controller
// that keeps no cross-step state (e.g. pretimed) simply does not
// implement it — the engine records an empty state section and restores
// it as a fresh build.
type Snapshotter = snap.Snapshotter

// SnapshotStates appends one length-prefixed state section per item, an
// empty section for items that are not Snapshotters. It is the shared
// serialization of controller collections: batched controllers delegate
// to their per-junction controllers through it, and the engine uses the
// same layout for its per-junction controller list, so the controller
// state bytes are identical across dispatch modes that wrap the same
// per-junction controllers.
func SnapshotStates[T any](w *snap.Writer, items []T) {
	for _, it := range items {
		if s, ok := any(it).(Snapshotter); ok {
			w.Section(s.SnapshotState)
		} else {
			w.Section(func(*snap.Writer) {})
		}
	}
}

// RestoreStates is the inverse of SnapshotStates: each item consumes
// its own section. A non-Snapshotter item must find an empty section
// (state captured from a stateful controller cannot restore into a
// stateless one), and every Snapshotter must consume its section
// exactly.
func RestoreStates[T any](r *snap.Reader, items []T) error {
	for i, it := range items {
		sub := r.Section()
		if s, ok := any(it).(Snapshotter); ok {
			if err := s.RestoreState(sub); err != nil {
				return fmt.Errorf("signal: controller %d: %w", i, err)
			}
		}
		if err := sub.Close(); err != nil {
			return fmt.Errorf("signal: controller %d state: %w", i, err)
		}
	}
	return r.Err()
}

// SnapshotState implements Snapshotter by delegating to the wrapped
// per-junction controllers, so forced-batched dispatch snapshots
// exactly like the per-junction loop it adapts.
func (a *batchedAdapter) SnapshotState(w *snap.Writer) {
	SnapshotStates(w, a.ctrls)
}

// RestoreState implements Snapshotter.
func (a *batchedAdapter) RestoreState(r *snap.Reader) error {
	return RestoreStates(r, a.ctrls)
}
