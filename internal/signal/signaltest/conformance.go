// Package signaltest is a reusable conformance suite for
// signal.Controller implementations: a table of contract invariants —
// in-range decisions, replay determinism, amber insertion between
// distinct greens, minimum green holding, max-green preemption,
// factory independence, reset-rebuild coldness (Engine.Reset rebuilds
// controllers through the factory), batched-dispatch equivalence, and
// dark-mode fallback/recovery (the engine-side override of DESIGN.md
// §12) — driven over a set of scripted observation scenarios.
// Controller packages (internal/core, internal/bp, internal/fixedtime,
// internal/maxpressure, internal/gapout, internal/bpest) run their
// factories through Run, so third-party controllers get the engine's
// expectations as an executable checklist instead of prose (DESIGN.md
// §6, §11, §13).
package signaltest

import (
	"fmt"
	"testing"

	"utilbp/internal/signal"
)

// Case describes one controller family under conformance test.
type Case struct {
	// Name labels the subtests.
	Name string
	// Factory is the implementation under test.
	Factory signal.Factory
	// AmberSteps is the transition duration the factory was configured
	// with: the suite requires at least that many consecutive amber
	// decisions between two distinct green phases. Zero skips the
	// amber-insertion invariant (the controller may switch directly).
	AmberSteps int
	// MinGreenSteps is the guaranteed green hold: no completed green run
	// may be shorter. Values < 2 skip the check (every run is at least
	// one slot by construction).
	MinGreenSteps int
	// MaxGreenSteps is the preemption bound: no green run, completed or
	// in progress, may be longer. Zero skips the check (the family has
	// no max-green timer).
	MaxGreenSteps int
}

// testJunction returns the synthetic junction the scripts are written
// against: four links in two phases, the paper's W* and a 1 s mini-slot.
func testJunction(label string) signal.JunctionInfo {
	return signal.JunctionInfo{
		Label:    label,
		Phases:   [][]int{{0, 1}, {2, 3}},
		NumLinks: 4,
		WStar:    120,
		DeltaT:   1,
	}
}

// script drives one junction's observation trajectory: fill overwrites
// the dynamic fields of the link observations for a step. Static fields
// (capacities, Mu) are preset by staticFill and must not be touched.
type script struct {
	name  string
	steps int
	fill  func(step int, links []signal.LinkObs)
}

// staticFill sets the immutable observation fields the engine would fill
// at construction.
func staticFill(links []signal.LinkObs) {
	for i := range links {
		links[i] = signal.LinkObs{InCapacity: 120, OutCapacity: 120, Mu: 0.5}
	}
}

// setQueues writes a link's dynamic state keeping the cross-field
// relations the engine maintains (ApproachQueue ≥ Queue,
// OutOccupancy ≥ OutQueue, and OutQueue resolved into per-movement
// OutTurnQueue entries summing to it). OutTurnJoins is left for the
// script to shape — it must be monotone in the step for engine
// fidelity, which a fill that never touches it (frozen at zero)
// trivially satisfies.
func setQueues(l *signal.LinkObs, queue, inTransit, outQueue, outExtra int) {
	l.Queue = queue
	l.InTransit = inTransit
	l.ApproachQueue = queue + inTransit
	l.OutQueue = outQueue
	l.OutOccupancy = outQueue + outExtra
	third := outQueue / 3
	l.OutTurnQueue = [signal.NumTurns]int{outQueue - 2*third, third, third}
}

// splitmix is a tiny deterministic PRNG for the noisy script; it must
// not depend on internal/rng so the suite stays a leaf package.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// scripts returns the scripted scenarios every invariant runs over.
func scripts() []script {
	return []script{
		{"empty", 160, func(step int, links []signal.LinkObs) {
			for i := range links {
				setQueues(&links[i], 0, 0, 0, 0)
			}
		}},
		{"steady-bias", 240, func(step int, links []signal.LinkObs) {
			// Phase 1's links carry sustained load; phase 2 stays light.
			// Two links see their downstream departure counters advance
			// at different (slow) cadences, so estimator-carrying
			// families exercise change-set cache invalidation without
			// dirtying every link every round.
			setQueues(&links[0], 14, 2, 3, 1)
			setQueues(&links[1], 9, 1, 2, 0)
			setQueues(&links[2], 2, 0, 4, 1)
			setQueues(&links[3], 1, 0, 5, 2)
			links[0].OutTurnJoins = [signal.NumTurns]int{step / 3, step / 5, step / 11}
			links[2].OutTurnJoins = [signal.NumTurns]int{step / 4, 0, step / 6}
		}},
		{"alternating", 320, func(step int, links []signal.LinkObs) {
			// The heavy side flips every 40 slots, forcing transitions.
			heavy, light := 0, 2
			if (step/40)%2 == 1 {
				heavy, light = 2, 0
			}
			setQueues(&links[heavy], 18, 3, 2, 1)
			setQueues(&links[heavy+1], 12, 2, 3, 0)
			setQueues(&links[light], 1, 0, 6, 2)
			setQueues(&links[light+1], 0, 1, 4, 1)
			links[1].OutTurnJoins = [signal.NumTurns]int{step / 2, step / 8, 0}
		}},
		{"downstream-full", 200, func(step int, links []signal.LinkObs) {
			// Phase 1's outgoing roads sit at capacity (the eq. 8 beta
			// scenario); phase 2 is serviceable.
			setQueues(&links[0], 16, 1, 40, 80)
			setQueues(&links[1], 11, 0, 35, 85)
			setQueues(&links[2], 6, 1, 3, 1)
			setQueues(&links[3], 4, 0, 2, 0)
		}},
		{"noisy", 400, func(step int, links []signal.LinkObs) {
			state := uint64(step)*2654435761 + 12345
			for i := range links {
				q := int(splitmix(&state) % 20)
				it := int(splitmix(&state) % 6)
				oq := int(splitmix(&state) % 15)
				ox := int(splitmix(&state) % 30)
				setQueues(&links[i], q, it, oq, ox)
				// Monotone departure counters with per-link cadence.
				links[i].OutTurnJoins = [signal.NumTurns]int{
					step * (i + 1) / 4, step / 3, step / 5,
				}
			}
		}},
		{"burst-gap", 260, func(step int, links []signal.LinkObs) {
			// Phase 1 sees 15-slot demand bursts separated by 35 quiet
			// slots — the actuated gap-out pattern: greens extend under
			// the burst and gap out after it; phase 2 never presents
			// demand, so only the min-green and gap timers govern it.
			q := 0
			if step%50 < 15 {
				q = 12
			}
			setQueues(&links[0], q, q/4, 2, 1)
			setQueues(&links[1], q/2, 0, 1, 0)
			setQueues(&links[2], 0, 0, 3, 1)
			setQueues(&links[3], 0, 0, 2, 0)
			links[0].OutTurnJoins = [signal.NumTurns]int{step / 2, step / 7, step / 13}
		}},
	}
}

// driveDark runs a script with the engine's dark-mode override applied
// between onset and the policy's release boundary (DESIGN.md §12): the
// controller keeps deciding every slot, but inside the window its
// decision is discarded and the degraded policy's phase actuates — and
// feeds back as the observed Current — exactly as sim.Engine does at
// its shared actuation point. The returned trace is the applied one.
func driveDark(t *testing.T, f signal.Factory, info signal.JunctionInfo, sc script, pol signal.DarkPolicy, onset, end int) []signal.Phase {
	t.Helper()
	ctrl, err := f.New(info)
	if err != nil {
		t.Fatalf("factory %s: New: %v", f.Name(), err)
	}
	release := pol.ReleaseStep(onset, end)
	obs := signal.Obs{Links: make([]signal.LinkObs, info.NumLinks)}
	staticFill(obs.Links)
	out := make([]signal.Phase, sc.steps)
	cur := signal.Amber
	for k := 0; k < sc.steps; k++ {
		sc.fill(k, obs.Links)
		obs.Step = k
		obs.Time = float64(k) * info.DeltaT
		obs.Current = cur
		p := ctrl.Decide(&obs)
		if k >= onset && k < release {
			p = pol.Phase(k-onset, info.NumPhases())
		}
		out[k] = p
		cur = p
	}
	return out
}

// checkMinGreenAcrossDark is checkMinGreen with the two dark-mode
// exemptions: the green in progress at onset is truncated by the
// override (the engine cuts it to all-red unconditionally — safety
// outranks the hold), and the first green after release may run short
// because the controller's hold state advanced against the overridden
// phases. Every other completed run, including the fixed-time greens
// inside the window, must still satisfy the hold.
func checkMinGreenAcrossDark(t *testing.T, trace []signal.Phase, minGreen, onset, release int) {
	t.Helper()
	run, start := 0, 0
	cur := signal.Amber
	firstResumed := true
	for k, p := range trace {
		if p == cur {
			run++
			continue
		}
		if cur != signal.Amber && run < minGreen {
			truncated := start < onset && k >= onset
			first := start >= release && firstResumed
			if !truncated && !first {
				t.Fatalf("step %d: green %v held only %d slots, want >= %d", k, cur, run, minGreen)
			}
		}
		if cur != signal.Amber && start >= release {
			firstResumed = false
		}
		cur, run, start = p, 1, k
	}
}

// drive runs a fresh controller from the factory over a script and
// returns the decision trace. The observed Current feeds back the
// previous decision, exactly like the engine.
func drive(t *testing.T, f signal.Factory, info signal.JunctionInfo, sc script) []signal.Phase {
	t.Helper()
	ctrl, err := f.New(info)
	if err != nil {
		t.Fatalf("factory %s: New: %v", f.Name(), err)
	}
	obs := signal.Obs{Links: make([]signal.LinkObs, info.NumLinks)}
	staticFill(obs.Links)
	out := make([]signal.Phase, sc.steps)
	cur := signal.Amber
	for k := 0; k < sc.steps; k++ {
		sc.fill(k, obs.Links)
		obs.Step = k
		obs.Time = float64(k) * info.DeltaT
		obs.Current = cur
		p := ctrl.Decide(&obs)
		out[k] = p
		cur = p
	}
	return out
}

// driveBatched runs the same script through the signal.Batched adapter
// over a single-junction batch, change set maintained like the engine's.
func driveBatched(t *testing.T, f signal.Factory, info signal.JunctionInfo, sc script) []signal.Phase {
	t.Helper()
	ctrl, err := f.New(info)
	if err != nil {
		t.Fatalf("factory %s: New: %v", f.Name(), err)
	}
	return driveBatchController(t, signal.Batched(ctrl), []signal.JunctionInfo{info}, []script{sc})[0]
}

// driveBatchController feeds per-junction scripts to a BatchController,
// maintaining the batch exactly as the engine does: Current feeds back
// the previous decisions, Decided is pre-filled with Amber, and the
// change set lists the links whose observation differs from the
// previous round (AllChanged on the first).
func driveBatchController(t *testing.T, bc signal.BatchController, infos []signal.JunctionInfo, scs []script) [][]signal.Phase {
	t.Helper()
	if len(infos) != len(scs) {
		t.Fatalf("driveBatchController: %d infos vs %d scripts", len(infos), len(scs))
	}
	total := 0
	off := []int32{0}
	steps := 0
	for i, info := range infos {
		total += info.NumLinks
		off = append(off, int32(total))
		if scs[i].steps > steps {
			steps = scs[i].steps
		}
	}
	b := signal.Batch{
		Links:   make([]signal.LinkObs, total),
		JuncOff: off,
		Current: make([]signal.Phase, len(infos)),
		Decided: make([]signal.Phase, len(infos)),
		Infos:   infos,
		Changed: make([]int32, 0, total),
	}
	staticFill(b.Links)
	prev := make([]signal.LinkObs, total)
	out := make([][]signal.Phase, len(infos))
	for j := range out {
		out[j] = make([]signal.Phase, steps)
		b.Current[j] = signal.Amber
	}
	for k := 0; k < steps; k++ {
		copy(prev, b.Links)
		for j, sc := range scs {
			step := k
			if step >= sc.steps {
				step = sc.steps - 1 // shorter scripts hold their last state
			}
			sc.fill(step, b.JunctionLinks(j))
		}
		b.Changed = b.Changed[:0]
		b.AllChanged = k == 0
		if !b.AllChanged {
			for gl := range b.Links {
				if b.Links[gl] != prev[gl] {
					b.Changed = append(b.Changed, int32(gl))
				}
			}
		}
		b.Step = k
		b.Time = float64(k) * infos[0].DeltaT
		for j := range infos {
			b.Decided[j] = signal.Amber
		}
		bc.DecideAll(&b)
		for j := range infos {
			out[j][k] = b.Decided[j]
			b.Current[j] = b.Decided[j]
		}
	}
	return out
}

// checkInRange fails on any decision outside [Amber, NumPhases] — the
// range the engine actuates without coercion.
func checkInRange(t *testing.T, trace []signal.Phase, info signal.JunctionInfo) {
	t.Helper()
	for k, p := range trace {
		if p < signal.Amber || int(p) > info.NumPhases() {
			t.Fatalf("step %d: decision %v outside [c0, c%d]", k, p, info.NumPhases())
		}
	}
}

// checkAmberInsertion fails when two distinct green phases are adjacent
// or separated by fewer than minAmber amber slots.
func checkAmberInsertion(t *testing.T, trace []signal.Phase, minAmber int) {
	t.Helper()
	lastGreen := signal.Amber
	amberRun := 0
	for k, p := range trace {
		if p == signal.Amber {
			amberRun++
			continue
		}
		if lastGreen != signal.Amber && p != lastGreen {
			switch {
			case amberRun == 0:
				t.Fatalf("step %d: direct switch %v -> %v without amber", k, lastGreen, p)
			case amberRun < minAmber:
				t.Fatalf("step %d: switch %v -> %v after %d amber slots, want >= %d",
					k, lastGreen, p, amberRun, minAmber)
			}
		}
		lastGreen = p
		amberRun = 0
	}
}

// checkMaxGreen fails when any green run — completed or still in
// progress at the end of the trace — exceeds maxGreen slots: the
// max-green preemption invariant of actuated controllers.
func checkMaxGreen(t *testing.T, trace []signal.Phase, maxGreen int) {
	t.Helper()
	run := 0
	cur := signal.Amber
	for k, p := range trace {
		if p == cur {
			run++
		} else {
			cur, run = p, 1
		}
		if cur != signal.Amber && run > maxGreen {
			t.Fatalf("step %d: green %v held %d slots, max-green preemption bound is %d", k, cur, run, maxGreen)
		}
	}
}

// checkMinGreen fails when a completed green run (ended by a phase
// change, not by the end of the trace) is shorter than minGreen.
func checkMinGreen(t *testing.T, trace []signal.Phase, minGreen int) {
	t.Helper()
	run := 0
	cur := signal.Amber
	for k, p := range trace {
		if p == cur {
			run++
			continue
		}
		if cur != signal.Amber && run < minGreen {
			t.Fatalf("step %d: green %v held only %d slots, want >= %d", k, cur, run, minGreen)
		}
		cur, run = p, 1
	}
}

// equalTraces compares two decision traces.
func equalTraces(a, b []signal.Phase) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if a[i] != b[i] {
			return i, false
		}
	}
	return 0, true
}

// Run executes the conformance suite for one controller family: every
// scripted scenario is checked for in-range decisions, replay
// determinism, amber insertion and minimum green, and the same scenario
// is replayed through the signal.Batched adapter — and, when the
// factory implements signal.BatchFactory, through its batched
// controller with an engine-faithful change set — requiring bit-for-bit
// identical traces. A final subtest drives two controllers from the
// same factory against different scripts to catch shared mutable state.
func Run(t *testing.T, c Case) {
	info := testJunction(c.Name)
	scs := scripts()
	for _, sc := range scs {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			trace := drive(t, c.Factory, info, sc)
			checkInRange(t, trace, info)
			if c.AmberSteps > 0 {
				checkAmberInsertion(t, trace, c.AmberSteps)
			}
			if c.MinGreenSteps > 1 {
				checkMinGreen(t, trace, c.MinGreenSteps)
			}
			if c.MaxGreenSteps > 0 {
				checkMaxGreen(t, trace, c.MaxGreenSteps)
			}
			if replay := drive(t, c.Factory, info, sc); !sameOrFatal(t, trace, replay, "replay") {
				return
			}
			if adapted := driveBatched(t, c.Factory, info, sc); !sameOrFatal(t, trace, adapted, "batched adapter") {
				return
			}
		})
	}
	if bf, ok := c.Factory.(signal.BatchFactory); ok {
		t.Run("batch-factory", func(t *testing.T) {
			// Three junctions on distinct scripts in one batch must each
			// reproduce their isolated per-junction trace.
			infos := []signal.JunctionInfo{
				testJunction(c.Name + "-a"),
				testJunction(c.Name + "-b"),
				testJunction(c.Name + "-c"),
			}
			// Fill functions are pure in the step index, so the scripts
			// can be re-cut to one shared length for the batch.
			const batchSteps = 280
			picked := []script{
				{scs[1].name, batchSteps, scs[1].fill},
				{scs[2].name, batchSteps, scs[2].fill},
				{scs[4].name, batchSteps, scs[4].fill},
			}
			bc, err := bf.NewBatch(infos)
			if err != nil {
				t.Fatalf("NewBatch: %v", err)
			}
			traces := driveBatchController(t, bc, infos, picked)
			for j := range infos {
				solo := drive(t, c.Factory, infos[j], picked[j])
				sameOrFatal(t, solo, traces[j], fmt.Sprintf("batch junction %d", j))
			}
		})
	}
	t.Run("dark-mode", func(t *testing.T) {
		// The policy the robustness events arm: all-red strictly longer
		// than the family's amber requirement, fixed-time greens no
		// shorter than its hold, ambers at least the family's.
		pol := signal.DarkPolicy{
			AllRedSteps: c.AmberSteps + 2,
			GreenSteps:  max(c.MinGreenSteps, 12),
			AmberSteps:  max(c.AmberSteps, 2),
		}
		if err := pol.Validate(); err != nil {
			t.Fatal(err)
		}
		// The alternating script forces transitions on both sides of the
		// window, so fallback and recovery both happen under pressure.
		sc := scripts()[2]
		const onset, end = 81, 151
		release := pol.ReleaseStep(onset, end)
		if release >= sc.steps-60 {
			t.Fatalf("release %d leaves no recovery window in a %d-step script", release, sc.steps)
		}
		trace := driveDark(t, c.Factory, info, sc, pol, onset, end)
		checkInRange(t, trace, info)
		for k := onset; k < release; k++ {
			if want := pol.Phase(k-onset, info.NumPhases()); trace[k] != want {
				t.Fatalf("step %d: applied %v inside the dark window, policy says %v", k, trace[k], want)
			}
		}
		if c.AmberSteps > 0 {
			// Amber insertion has no exemption: the all-red entry and the
			// policy's own amber tail must cover every transition,
			// including fallback and handback.
			checkAmberInsertion(t, trace, c.AmberSteps)
		}
		if c.MinGreenSteps > 1 {
			checkMinGreenAcrossDark(t, trace, c.MinGreenSteps, onset, release)
		}
		resumed := false
		for k := release; k < sc.steps; k++ {
			if trace[k] != signal.Amber {
				resumed = true
				break
			}
		}
		if !resumed {
			t.Fatal("controller never actuated a green after release")
		}
		if replay := driveDark(t, c.Factory, info, sc, pol, onset, end); !sameOrFatal(t, trace, replay, "dark-mode replay") {
			return
		}
	})
	t.Run("reset-rebuild", func(t *testing.T) {
		// Engine.Reset rebuilds controllers through the factory
		// (sim.buildControlPlane), relying on every build starting cold:
		// timers at zero, estimators at their prior. A factory leaking
		// state between builds — a shared timer, a reused estimator or
		// gain slab — would make the post-reset run diverge from a cold
		// start. Drive one build partway, discard it, and require a
		// fresh build to reproduce the cold full-script trace; likewise
		// for the batched controller when the factory is batch-capable.
		sc := scs[2] // alternating: transitions on both sides of the cut
		full := drive(t, c.Factory, info, sc)
		partial := script{sc.name, 137, sc.fill}
		_ = drive(t, c.Factory, info, partial) // advance and abandon one build
		rebuilt := drive(t, c.Factory, info, sc)
		sameOrFatal(t, full, rebuilt, "rebuilt controller after partial run")
		if bf, ok := c.Factory.(signal.BatchFactory); ok {
			infos := []signal.JunctionInfo{info}
			abandoned, err := bf.NewBatch(infos)
			if err != nil {
				t.Fatalf("NewBatch: %v", err)
			}
			driveBatchController(t, abandoned, infos, []script{partial})
			fresh, err := bf.NewBatch(infos)
			if err != nil {
				t.Fatalf("NewBatch: %v", err)
			}
			batchTrace := driveBatchController(t, fresh, infos, []script{sc})[0]
			sameOrFatal(t, full, batchTrace, "rebuilt batched controller after partial run")
		}
	})
	t.Run("independence", func(t *testing.T) {
		// Two controllers from one factory, stepped in lockstep on
		// different scripts, must match their isolated runs.
		a, err := c.Factory.New(testJunction(c.Name + "-x"))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		b, err := c.Factory.New(testJunction(c.Name + "-y"))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		scA, scB := scs[1], scs[3]
		steps := scA.steps
		if scB.steps < steps {
			steps = scB.steps
		}
		obsA := signal.Obs{Links: make([]signal.LinkObs, info.NumLinks)}
		obsB := signal.Obs{Links: make([]signal.LinkObs, info.NumLinks)}
		staticFill(obsA.Links)
		staticFill(obsB.Links)
		traceA := make([]signal.Phase, steps)
		traceB := make([]signal.Phase, steps)
		curA, curB := signal.Amber, signal.Amber
		for k := 0; k < steps; k++ {
			scA.fill(k, obsA.Links)
			obsA.Step, obsA.Time, obsA.Current = k, float64(k), curA
			curA = a.Decide(&obsA)
			traceA[k] = curA
			scB.fill(k, obsB.Links)
			obsB.Step, obsB.Time, obsB.Current = k, float64(k), curB
			curB = b.Decide(&obsB)
			traceB[k] = curB
		}
		soloA := drive(t, c.Factory, testJunction(c.Name+"-x"), script{scA.name, steps, scA.fill})
		soloB := drive(t, c.Factory, testJunction(c.Name+"-y"), script{scB.name, steps, scB.fill})
		sameOrFatal(t, soloA, traceA, "interleaved controller A")
		sameOrFatal(t, soloB, traceB, "interleaved controller B")
	})
}

// sameOrFatal fails the test when two traces differ, reporting the
// first divergence.
func sameOrFatal(t *testing.T, want, got []signal.Phase, what string) bool {
	t.Helper()
	if i, ok := equalTraces(want, got); !ok {
		if i < 0 {
			t.Fatalf("%s: trace length %d, want %d", what, len(got), len(want))
		}
		t.Fatalf("%s: diverges at step %d: got %v, want %v", what, i, got[i], want[i])
		return false
	}
	return true
}
