package signal

import (
	"testing"
	"testing/quick"
)

func TestPhaseString(t *testing.T) {
	if Amber.String() != "c0" {
		t.Errorf("amber = %q", Amber.String())
	}
	if Phase(3).String() != "c3" {
		t.Errorf("phase 3 = %q", Phase(3).String())
	}
}

func TestOutFull(t *testing.T) {
	cases := []struct {
		obs  LinkObs
		want bool
	}{
		{LinkObs{OutOccupancy: 10, OutCapacity: 10}, true},
		{LinkObs{OutOccupancy: 11, OutCapacity: 10}, true},
		{LinkObs{OutOccupancy: 9, OutCapacity: 10}, false},
		{LinkObs{OutOccupancy: 1000, OutCapacity: 0}, false}, // unbounded
	}
	for i, c := range cases {
		if got := c.obs.OutFull(); got != c.want {
			t.Errorf("case %d: OutFull = %v", i, got)
		}
	}
}

func TestOutFullProperty(t *testing.T) {
	f := func(occ uint16, cap uint16) bool {
		l := LinkObs{OutOccupancy: int(occ), OutCapacity: int(cap)}
		if cap == 0 {
			return !l.OutFull()
		}
		return l.OutFull() == (int(occ) >= int(cap))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func validInfo() JunctionInfo {
	return JunctionInfo{
		Label:    "J",
		NumLinks: 3,
		Phases:   [][]int{{0, 1}, {2}},
		WStar:    10,
		DeltaT:   1,
	}
}

func TestJunctionInfoValidate(t *testing.T) {
	valid := validInfo()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid info rejected: %v", err)
	}
	bad := []func(*JunctionInfo){
		func(i *JunctionInfo) { i.NumLinks = 0 },
		func(i *JunctionInfo) { i.Phases = nil },
		func(i *JunctionInfo) { i.Phases = [][]int{{}} },
		func(i *JunctionInfo) { i.Phases = [][]int{{3}} },
		func(i *JunctionInfo) { i.Phases = [][]int{{-1}} },
		func(i *JunctionInfo) { i.DeltaT = 0 },
	}
	for n, mutate := range bad {
		info := validInfo()
		mutate(&info)
		if err := info.Validate(); err == nil {
			t.Errorf("mutation %d accepted", n)
		}
	}
}

func TestNumPhases(t *testing.T) {
	info := validInfo()
	if got := info.NumPhases(); got != 2 {
		t.Errorf("NumPhases = %d", got)
	}
}

type nopCtrl struct{}

func (nopCtrl) Name() string      { return "nop" }
func (nopCtrl) Decide(*Obs) Phase { return Amber }

func TestFactoryFunc(t *testing.T) {
	f := FactoryFunc{Label: "nop", Build: func(JunctionInfo) (Controller, error) {
		return nopCtrl{}, nil
	}}
	if f.Name() != "nop" {
		t.Errorf("name %q", f.Name())
	}
	c, err := f.New(validInfo())
	if err != nil {
		t.Fatal(err)
	}
	if c.Decide(&Obs{}) != Amber {
		t.Error("controller decision wrong")
	}
}
