package signal

// PhaseTable is the flattened phase→link membership of a whole network:
// every (junction, phase) pair's active links as one dense row of
// global link indices, all rows back-to-back in one array. It is the
// serve-plane counterpart of the Batch slab (DESIGN.md §16): where the
// control plane flattened observations, the phase table flattens the
// per-junction [][]int phase lists JunctionInfo carries, so the serve
// substep walks contiguous int32 rows instead of chasing two levels of
// slice headers per junction per mini-slot.
//
// Junction j's rows start at row index Base[j]; its phase p (1-based,
// as everywhere in this package) is row Base[j]+p-1, and row r covers
// Links[Off[r]:Off[r+1]]. Link indices are global: junction j's link li
// appears as juncOff[j]+li, indexing engine-owned slabs directly.
type PhaseTable struct {
	// Links holds every row's global link indices back-to-back.
	Links []int32
	// Off is the row offset table: row r is Links[Off[r]:Off[r+1]].
	// len(Off) is the total phase count across junctions, plus one.
	Off []int32
	// Base[j] is junction j's first row; len(Base) == numJunctions+1,
	// so junction j has Base[j+1]-Base[j] phases.
	Base []int32
}

// BuildPhaseTable flattens the phase lists of infos (in junction order)
// into a PhaseTable over the global link index space defined by
// juncOff, the same prefix-sum offset table Batch.JuncOff uses
// (junction j's links are globally juncOff[j]..juncOff[j+1]-1).
func BuildPhaseTable(infos []JunctionInfo, juncOff []int32) PhaseTable {
	rows, total := 0, 0
	for i := range infos {
		rows += len(infos[i].Phases)
		for _, p := range infos[i].Phases {
			total += len(p)
		}
	}
	pt := PhaseTable{
		Links: make([]int32, 0, total),
		Off:   make([]int32, 0, rows+1),
		Base:  make([]int32, 0, len(infos)+1),
	}
	for i := range infos {
		pt.Base = append(pt.Base, int32(len(pt.Off)))
		for _, p := range infos[i].Phases {
			pt.Off = append(pt.Off, int32(len(pt.Links)))
			for _, li := range p {
				pt.Links = append(pt.Links, juncOff[i]+int32(li))
			}
		}
	}
	pt.Base = append(pt.Base, int32(len(pt.Off)))
	pt.Off = append(pt.Off, int32(len(pt.Links)))
	return pt
}

// NumPhases returns junction j's phase count.
func (pt *PhaseTable) NumPhases(j int) int {
	return int(pt.Base[j+1] - pt.Base[j])
}

// Row returns the global link indices phase p (1-based) of junction j
// activates. The row aliases the table's storage; callers must not
// mutate it.
func (pt *PhaseTable) Row(j int, p Phase) []int32 {
	r := pt.Base[j] + int32(p) - 1
	return pt.Links[pt.Off[r]:pt.Off[r+1]]
}
