package signal

import (
	"fmt"
	"strings"
)

// Batch is the engine-owned structure-of-arrays view of every junction's
// control state a BatchController decides over in one call: a dense slab
// of link observations covering all junctions back-to-back, per-junction
// phase state, and the change set of the current decision round. The
// slab aliases the engine's incrementally maintained observation storage
// (DESIGN.md §11), so handing it to a batched controller costs nothing —
// no per-junction copying, no pointer chasing through junction structs.
//
// Junction j owns Links[JuncOff[j]:JuncOff[j+1]]; link li of junction j
// therefore has the dense global index JuncOff[j]+li. A BatchController
// reads Links/Current and writes Decided; everything else is input.
type Batch struct {
	// Step is the discrete time index k; Time is t_k in seconds. They
	// apply to every junction of the batch (the engine advances all
	// junctions on one clock).
	Step int
	Time float64
	// Links is the dense per-link observation slab, all junctions
	// back-to-back in junction order.
	Links []LinkObs
	// JuncOff is the prefix-sum offset table: junction j's links are
	// Links[JuncOff[j]:JuncOff[j+1]]. len(JuncOff) == NumJunctions()+1.
	JuncOff []int32
	// Current is c(k-1) per junction: the phase applied during the
	// previous mini-slot (Amber at the first step).
	Current []Phase
	// Decided receives c(k) per junction — the controller's output. The
	// engine pre-fills it with Amber each round, so a controller that
	// skips a junction leaves it inactive rather than replaying a stale
	// decision.
	Decided []Phase
	// Infos holds the static junction descriptions, indexed like
	// Current/Decided. Batched controllers normally capture what they
	// need at construction (BatchFactory.NewBatch receives the same
	// slice); Infos is here so generic adapters need no side channel.
	Infos []JunctionInfo
	// Changed lists the dense global indexes of links whose observation
	// may have changed since the previous decision round, deduplicated.
	// AllChanged signals a full refresh instead (first round after
	// construction or reset, or the engine's contiguous full-walk sense
	// fallback); when it is set, Changed is meaningless. A controller
	// caching per-link derived state (link gains) may recompute only the
	// changed links — link observations outside the change set are
	// bit-for-bit identical to the previous round.
	Changed    []int32
	AllChanged bool
}

// NumJunctions returns the number of junctions in the batch.
func (b *Batch) NumJunctions() int { return len(b.Current) }

// JunctionLinks returns junction j's window of the link slab.
func (b *Batch) JunctionLinks(j int) []LinkObs {
	return b.Links[b.JuncOff[j]:b.JuncOff[j+1]]
}

// View fills dst with junction j's per-junction observation, aliasing
// the batch's link slab. It is the bridge between the batched and
// per-junction controller contracts: a Decide call on the filled
// observation sees exactly what the batch holds.
func (b *Batch) View(j int, dst *Obs) {
	dst.Step = b.Step
	dst.Time = b.Time
	dst.Links = b.JunctionLinks(j)
	dst.Current = b.Current[j]
}

// BatchController decides the control phases of every junction of a
// network in one call. It is the batched counterpart of Controller: the
// engine's control substep hands it the Batch once per mini-slot instead
// of making one virtual Decide call per junction, which lets
// implementations sweep dense per-link arrays (and cache derived state
// across rounds via the change set) with zero allocations.
//
// Implementations must be deterministic functions of the observation
// history, like per-junction controllers, and must decide each junction
// independently of the others' Decided entries — the contract that keeps
// batched and per-junction dispatch bit-for-bit interchangeable.
type BatchController interface {
	// Name identifies the control algorithm (e.g. "UTIL-BP").
	Name() string
	// DecideAll writes c(k) for every junction into b.Decided.
	DecideAll(b *Batch)
}

// BatchFactory is implemented by controller factories that can build one
// batched controller driving every junction of a network, in addition to
// per-junction controllers. The engine's control substep prefers it
// (see ControlMode); factories without it keep working through the
// per-junction path or the Batched adapter.
type BatchFactory interface {
	Factory
	// NewBatch returns a fresh batched controller for the given
	// junctions, in batch junction order. Implementations must decide
	// exactly like a per-junction controller built by New for each info.
	NewBatch(infos []JunctionInfo) (BatchController, error)
}

// Batched adapts per-junction controllers (one per junction, in batch
// junction order) to the BatchController interface: DecideAll loops the
// junctions, fills a scratch per-junction observation view and calls
// each controller's Decide. It allocates nothing per round, so any
// existing Controller runs on the batched control plane unchanged —
// the fallback the engine uses in ControlBatched mode when the factory
// implements no BatchFactory. Controllers must not retain the *Obs
// passed to Decide (the view is reused across junctions), which the
// Controller contract already requires.
func Batched(ctrls ...Controller) BatchController {
	return &batchedAdapter{ctrls: ctrls}
}

// batchedAdapter is the Batched implementation.
type batchedAdapter struct {
	ctrls []Controller
	obs   Obs // scratch per-junction view, reused across junctions
}

// Name implements BatchController, labeling the adapter after the
// controllers it wraps.
func (a *batchedAdapter) Name() string {
	if len(a.ctrls) == 0 {
		return "batched()"
	}
	return "batched(" + a.ctrls[0].Name() + ")"
}

// DecideAll implements BatchController.
func (a *batchedAdapter) DecideAll(b *Batch) {
	for j := range a.ctrls {
		b.View(j, &a.obs)
		b.Decided[j] = a.ctrls[j].Decide(&a.obs)
	}
}

// ControlMode selects how the engine's control substep dispatches to the
// configured controller factory (DESIGN.md §11). The zero value is
// ControlAuto.
type ControlMode int

// The dispatch modes: ControlAuto uses the batched control plane
// whenever the factory implements BatchFactory and falls back to the
// per-junction Decide loop otherwise; ControlPerJunction forces the
// per-junction loop even for batch-capable factories (the reference
// path equivalence tests pin the batched path against);
// ControlBatched forces batched dispatch, wrapping per-junction
// controllers with the Batched adapter when the factory implements no
// BatchFactory.
const (
	ControlAuto ControlMode = iota
	ControlPerJunction
	ControlBatched
)

// String renders the mode in the CLI syntax accepted by
// ParseControlMode.
func (m ControlMode) String() string {
	switch m {
	case ControlAuto:
		return "auto"
	case ControlPerJunction:
		return "per-junction"
	case ControlBatched:
		return "batched"
	}
	return fmt.Sprintf("control(%d)", int(m))
}

// ParseControlMode parses the CLI controller-mode syntax: "auto",
// "per-junction" (alias "perjunction") or "batched".
func ParseControlMode(arg string) (ControlMode, error) {
	switch strings.ToLower(strings.TrimSpace(arg)) {
	case "auto", "":
		return ControlAuto, nil
	case "per-junction", "perjunction":
		return ControlPerJunction, nil
	case "batched":
		return ControlBatched, nil
	}
	return ControlAuto, fmt.Errorf("signal: unknown control mode %q (want auto, per-junction or batched)", arg)
}
