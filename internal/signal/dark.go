package signal

import "fmt"

// DarkPolicy is the degraded-dispatch rule a junction falls back to when
// its controller goes offline (a "dark mode" disruption, DESIGN.md §12):
// first AllRedSteps mini-slots of amber (the all-red clearance interval a
// cabinet in flash presents), then a fixed-time round-robin cycling the
// junction's control phases with GreenSteps of green followed by
// AmberSteps of amber each. The policy is a pure function of the number
// of mini-slots since the dark onset, so per-junction and batched
// dispatch apply it identically and replays are bit-for-bit.
//
// The engine keeps the policy in force past the scheduled end of the
// dark window until the in-flight green/amber segment completes
// (ReleaseStep), so control is always handed back out of a full amber
// run — the recovering controller sees Current == Amber and cannot be
// forced into a direct green-to-green switch. Choose AllRedSteps at
// least as long as the controllers' amber time to keep the amber
// invariant across the onset too.
type DarkPolicy struct {
	// AllRedSteps is the initial amber hold after the dark onset.
	AllRedSteps int
	// GreenSteps and AmberSteps shape the fixed-time segments that
	// follow: each control phase in turn holds green for GreenSteps,
	// then amber for AmberSteps.
	GreenSteps, AmberSteps int
}

// Validate rejects degenerate policies: the fixed-time green must be
// positive and the holds non-negative (a zero AmberSteps would hand
// control back mid-green and allow a direct phase switch).
func (p DarkPolicy) Validate() error {
	if p.AllRedSteps < 0 {
		return fmt.Errorf("signal: dark policy all-red %d steps is negative", p.AllRedSteps)
	}
	if p.GreenSteps < 1 {
		return fmt.Errorf("signal: dark policy green %d steps, want >= 1", p.GreenSteps)
	}
	if p.AmberSteps < 1 {
		return fmt.Errorf("signal: dark policy amber %d steps, want >= 1", p.AmberSteps)
	}
	return nil
}

// segment returns the length of one green+amber fixed-time segment.
func (p DarkPolicy) segment() int { return p.GreenSteps + p.AmberSteps }

// Phase returns the phase the policy applies `since` mini-slots after
// the dark onset, for a junction with numPhases control phases.
func (p DarkPolicy) Phase(since, numPhases int) Phase {
	if since < p.AllRedSteps || numPhases <= 0 {
		return Amber
	}
	d := since - p.AllRedSteps
	seg := p.segment()
	if d%seg < p.GreenSteps {
		return Phase(d/seg%numPhases + 1)
	}
	return Amber
}

// ReleaseStep returns the step at which the engine hands control back to
// the junction's controller for a dark window [onset, end): the first
// segment boundary at or after end, so the policy's in-flight green and
// its amber always complete. A window ending inside the initial all-red
// releases when the all-red does.
func (p DarkPolicy) ReleaseStep(onset, end int) int {
	start := onset + p.AllRedSteps
	if end <= start {
		return start
	}
	seg := p.segment()
	segments := (end - start + seg - 1) / seg
	return start + segments*seg
}
