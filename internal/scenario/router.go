package scenario

import (
	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/sim"
	"utilbp/internal/vehicle"
)

// routeIndex is the immutable route-ID layout of an artifact: every
// one-turn route of the paper's model (Table I turn, uniformly selected
// turning junction) interned once at build time, in a deterministic
// order, so two artifacts for structurally identical grids agree on
// every RouteID. Routers read it, never write it.
type routeIndex struct {
	probs [4]TurnProbs
	// sideOf is road-indexed (dense IDs); -1 marks a non-entry road.
	sideOf  []int8
	pathLen [4]int
	// right[side][at] / left[side][at] are the interned IDs of
	// OneTurn(Right|Left, at) for vehicles entering from side.
	right [4][]vehicle.RouteID
	left  [4][]vehicle.RouteID
}

// buildRouteIndex interns every route the paper's model can assign on
// this grid into table and records the ID layout. Interning order is
// fixed (sides in network.Dirs order, right before left, turning
// junction ascending), the determinism the shared-artifact replay
// contract rests on.
func buildRouteIndex(g *network.GridNetwork, probs map[network.Dir]TurnProbs, table *vehicle.RouteTable) *routeIndex {
	if probs == nil {
		probs = TableI
	}
	idx := &routeIndex{
		sideOf: make([]int8, len(g.Network.Roads)),
	}
	for i := range idx.sideOf {
		idx.sideOf[i] = -1
	}
	for _, side := range network.Dirs {
		idx.probs[side] = probs[side]
		for _, rid := range g.Entries(side) {
			if int(rid) >= 0 && int(rid) < len(idx.sideOf) {
				idx.sideOf[rid] = int8(side)
			}
		}
		// A vehicle entering from the north or south crosses Rows
		// junctions going straight; east/west crosses Cols.
		n := g.Cols()
		if side == network.North || side == network.South {
			n = g.Rows()
		}
		idx.pathLen[side] = n
		idx.right[side] = make([]vehicle.RouteID, n)
		idx.left[side] = make([]vehicle.RouteID, n)
		for at := 0; at < n; at++ {
			idx.right[side][at] = table.Intern(vehicle.OneTurn(network.Right, at))
			idx.left[side][at] = table.Intern(vehicle.OneTurn(network.Left, at))
		}
	}
	return idx
}

// Router implements the paper's route model: a vehicle entering the
// network turns right or left with the Table I probabilities of its
// entry side, "while the intersection at which a vehicle takes the turn
// is selected randomly" — uniformly among the junctions on its straight
// path; after the turn it continues straight to the boundary. The
// returned routes are interned IDs into the artifact's shared
// RouteTable; the router owns only its RNG stream.
type Router struct {
	src   *rng.Source
	idx   *routeIndex
	table *vehicle.RouteTable
}

// RouteTable implements sim.RouteTabler: it returns the shared table the
// router's IDs index, so sim.New can fall back to it when Config.Routes
// is left nil.
func (r *Router) RouteTable() *vehicle.RouteTable { return r.table }

// NewRouter builds a router over the artifact's interned route layout,
// drawing from the given stream. Engine.Reset rewinds it through the
// Reseeder contract.
func (a *Artifact) NewRouter(src *rng.Source) *Router {
	return &Router{src: src, idx: a.routes, table: a.Routes}
}

// NewGridRouter builds a standalone router for a grid outside any
// artifact, interning the grid's one-turn routes into a fresh table.
// The returned table must be passed to the engine (sim.Config.Routes)
// alongside the router. probs defaults to Table I when nil.
func NewGridRouter(g *network.GridNetwork, probs map[network.Dir]TurnProbs, src *rng.Source) (*Router, *vehicle.RouteTable) {
	table := vehicle.NewRouteTable()
	return &Router{src: src, idx: buildRouteIndex(g, probs, table), table: table}, table
}

// Reseed implements sim.Reseeder: it rewinds the route stream to the one
// a fresh Build with the given seed would derive, so Engine.Reset replays
// identically to a newly built scenario.
func (r *Router) Reseed(seed uint64) {
	r.src = rng.New(seed).Split("routes")
}

// Route implements sim.RouteChooser. The returned interned ID indexes
// the artifact's route table; the call draws from the router's stream
// exactly like the pre-interning implementation did (one Float64, plus
// one Intn when turning), so RNG sequences — and therefore golden runs —
// are unchanged.
func (r *Router) Route(entry network.RoadID, _ float64) vehicle.RouteID {
	idx := r.idx
	if entry < 0 || int(entry) >= len(idx.sideOf) || idx.sideOf[entry] < 0 {
		return vehicle.StraightRoute
	}
	side := network.Dir(idx.sideOf[entry])
	p := idx.probs[side]
	u := r.src.Float64()
	var ids []vehicle.RouteID
	switch {
	case u < p.Right:
		ids = idx.right[side]
	case u < p.Right+p.Left:
		ids = idx.left[side]
	default:
		return vehicle.StraightRoute
	}
	n := idx.pathLen[side]
	if n <= 0 {
		return vehicle.StraightRoute
	}
	return ids[r.src.Intn(n)]
}

var _ sim.RouteChooser = (*Router)(nil)
var _ sim.Reseeder = (*Router)(nil)
var _ sim.RouteTabler = (*Router)(nil)
