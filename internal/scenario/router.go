package scenario

import (
	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/sim"
	"utilbp/internal/vehicle"
)

// Router implements the paper's route model: a vehicle entering the
// network turns right or left with the Table I probabilities of its
// entry side, "while the intersection at which a vehicle takes the turn
// is selected randomly" — uniformly among the junctions on its straight
// path; after the turn it continues straight to the boundary.
type Router struct {
	src     *rng.Source
	probs   map[network.Dir]TurnProbs
	sideOf  map[network.RoadID]network.Dir
	pathLen map[network.Dir]int
}

// NewRouter builds the router for a grid. probs defaults to Table I when
// nil.
func NewRouter(g *network.GridNetwork, probs map[network.Dir]TurnProbs, src *rng.Source) *Router {
	if probs == nil {
		probs = TableI
	}
	r := &Router{
		src:     src,
		probs:   probs,
		sideOf:  make(map[network.RoadID]network.Dir),
		pathLen: make(map[network.Dir]int),
	}
	for _, side := range network.Dirs {
		for _, rid := range g.Entries(side) {
			r.sideOf[rid] = side
		}
		// A vehicle entering from the north or south crosses Rows
		// junctions going straight; east/west crosses Cols.
		if side == network.North || side == network.South {
			r.pathLen[side] = g.Rows()
		} else {
			r.pathLen[side] = g.Cols()
		}
	}
	return r
}

// Route implements sim.RouteChooser.
func (r *Router) Route(entry network.RoadID, _ float64) vehicle.Route {
	side, ok := r.sideOf[entry]
	if !ok {
		return vehicle.StraightThrough
	}
	p := r.probs[side]
	u := r.src.Float64()
	var turn network.Turn
	switch {
	case u < p.Right:
		turn = network.Right
	case u < p.Right+p.Left:
		turn = network.Left
	default:
		return vehicle.StraightThrough
	}
	n := r.pathLen[side]
	if n <= 0 {
		return vehicle.StraightThrough
	}
	return vehicle.OneTurn{Turn: turn, At: r.src.Intn(n)}
}

var _ sim.RouteChooser = (*Router)(nil)
