package scenario

import (
	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/sim"
	"utilbp/internal/vehicle"
)

// Router implements the paper's route model: a vehicle entering the
// network turns right or left with the Table I probabilities of its
// entry side, "while the intersection at which a vehicle takes the turn
// is selected randomly" — uniformly among the junctions on its straight
// path; after the turn it continues straight to the boundary.
type Router struct {
	src   *rng.Source
	probs [4]TurnProbs
	// sideOf is road-indexed (dense IDs); -1 marks a non-entry road.
	sideOf  []int8
	pathLen [4]int
}

// NewRouter builds the router for a grid. probs defaults to Table I when
// nil.
func NewRouter(g *network.GridNetwork, probs map[network.Dir]TurnProbs, src *rng.Source) *Router {
	if probs == nil {
		probs = TableI
	}
	r := &Router{
		src:    src,
		sideOf: make([]int8, len(g.Network.Roads)),
	}
	for i := range r.sideOf {
		r.sideOf[i] = -1
	}
	for _, side := range network.Dirs {
		r.probs[side] = probs[side]
		for _, rid := range g.Entries(side) {
			if int(rid) >= 0 && int(rid) < len(r.sideOf) {
				r.sideOf[rid] = int8(side)
			}
		}
		// A vehicle entering from the north or south crosses Rows
		// junctions going straight; east/west crosses Cols.
		if side == network.North || side == network.South {
			r.pathLen[side] = g.Rows()
		} else {
			r.pathLen[side] = g.Cols()
		}
	}
	return r
}

// Reseed implements sim.Reseeder: it rewinds the route stream to the one
// a fresh Build with the given seed would derive, so Engine.Reset replays
// identically to a newly built scenario.
func (r *Router) Reseed(seed uint64) {
	r.src = rng.New(seed).Split("routes")
}

// Route implements sim.RouteChooser. The returned plan is a compact
// value, so the call contributes no heap allocation to the spawn path.
func (r *Router) Route(entry network.RoadID, _ float64) vehicle.Plan {
	if entry < 0 || int(entry) >= len(r.sideOf) || r.sideOf[entry] < 0 {
		return vehicle.StraightThrough
	}
	side := network.Dir(r.sideOf[entry])
	p := r.probs[side]
	u := r.src.Float64()
	var turn network.Turn
	switch {
	case u < p.Right:
		turn = network.Right
	case u < p.Right+p.Left:
		turn = network.Left
	default:
		return vehicle.StraightThrough
	}
	n := r.pathLen[side]
	if n <= 0 {
		return vehicle.StraightThrough
	}
	return vehicle.OneTurn(turn, r.src.Intn(n))
}

var _ sim.RouteChooser = (*Router)(nil)
