package scenario

import "testing"

// FuzzParseControllerSpec fuzzes the ParseControllerSpec/String round
// trip, the control-side mirror of sensing's FuzzParseSpec: any input
// the parser accepts must validate, render through String, re-parse,
// and reach a fixed point — the property sweeps and the workload
// registry rely on when they treat controller specs as comparable,
// printable values. The seed corpus in
// testdata/fuzz/FuzzParseControllerSpec covers every CLI form plus
// near-miss inputs.
func FuzzParseControllerSpec(f *testing.F) {
	for _, seed := range []string{
		"util", "util-bp", "UTIL", "cap", "cap:20", "cap:1", "capnorm:30",
		"orig:16", "fixed", "fixed:25", "pretimed:10",
		"maxpressure", "maxpressure:12", "mp:5", "MAX-PRESSURE:8",
		"gapout", "gapout:8,40,3", "gapout:4,16,2", "gap-out:6, 30, 8",
		"actuated:1,1,1", "bp-est", "bp-est:0.05", "bpest:0.3", "BP-EST:1e-3",
		"", "util:1", "cap:", "cap:0", "cap:-5", "maxpressure:0",
		"gapout:8,40", "gapout:40,8,3", "gapout:8,40,3,1", "gapout:a,b,c",
		"bp-est:", "bp-est:0", "bp-est:1", "bp-est:NaN", "bp-est:-0.1",
		"bp-est:+Inf", "bogus", "cv:0.3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, arg string) {
		spec, err := ParseControllerSpec(arg)
		if err != nil {
			return // rejected inputs are out of contract
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseControllerSpec(%q) accepted an invalid spec %+v: %v", arg, spec, err)
		}
		rendered := spec.String()
		back, err := ParseControllerSpec(rendered)
		if err != nil {
			t.Fatalf("ParseControllerSpec(%q) -> %+v renders %q, which does not re-parse: %v", arg, spec, rendered, err)
		}
		if back != spec {
			t.Fatalf("round trip of %q changed the spec: %+v -> %+v", arg, spec, back)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("String is not a fixed point for %q: %q -> %q", arg, rendered, again)
		}
	})
}
