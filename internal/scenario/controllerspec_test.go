package scenario

import (
	"math"
	"strings"
	"testing"

	"utilbp/internal/signal"
)

// TestParseControllerSpec table-tests the CLI syntax: canonical forms,
// aliases, parameter parsing, and rejection of malformed or
// out-of-range parameters.
func TestParseControllerSpec(t *testing.T) {
	cases := []struct {
		arg  string
		want ControllerSpec
		ok   bool
	}{
		{"util", ControllerSpec{Kind: ControllerUtil}, true},
		{"util-bp", ControllerSpec{Kind: ControllerUtil}, true},
		{" UTIL ", ControllerSpec{Kind: ControllerUtil}, true},
		{"cap", ControllerSpec{Kind: ControllerCap}, true},
		{"cap:20", ControllerSpec{Kind: ControllerCap, PeriodSec: 20}, true},
		{"capnorm:30", ControllerSpec{Kind: ControllerCapNorm, PeriodSec: 30}, true},
		{"orig:16", ControllerSpec{Kind: ControllerOrig, PeriodSec: 16}, true},
		{"fixed:25", ControllerSpec{Kind: ControllerFixed, PeriodSec: 25}, true},
		{"pretimed", ControllerSpec{Kind: ControllerFixed}, true},
		{"maxpressure", ControllerSpec{Kind: ControllerMaxPressure}, true},
		{"maxpressure:12", ControllerSpec{Kind: ControllerMaxPressure, MinGreenSec: 12}, true},
		{"mp:5", ControllerSpec{Kind: ControllerMaxPressure, MinGreenSec: 5}, true},
		{"gapout", ControllerSpec{Kind: ControllerGapOut}, true},
		{"gapout:8,40,3", ControllerSpec{Kind: ControllerGapOut, MinGreenSec: 8, MaxGreenSec: 40, GapSec: 3}, true},
		{"gap-out:4, 16, 2", ControllerSpec{Kind: ControllerGapOut, MinGreenSec: 4, MaxGreenSec: 16, GapSec: 2}, true},
		{"bp-est", ControllerSpec{Kind: ControllerBPEst}, true},
		{"bp-est:0.05", ControllerSpec{Kind: ControllerBPEst, EstAlpha: 0.05}, true},
		{"bpest:0.3", ControllerSpec{Kind: ControllerBPEst, EstAlpha: 0.3}, true},

		{"", ControllerSpec{}, false},
		{"bogus", ControllerSpec{}, false},
		{"util:1", ControllerSpec{}, false},
		{"cap:", ControllerSpec{}, false},
		{"cap:0", ControllerSpec{}, false},
		{"cap:-5", ControllerSpec{}, false},
		{"cap:x", ControllerSpec{}, false},
		{"maxpressure:0", ControllerSpec{}, false},
		{"maxpressure:-3", ControllerSpec{}, false},
		{"gapout:8,40", ControllerSpec{}, false},
		{"gapout:8,40,3,1", ControllerSpec{}, false},
		{"gapout:40,8,3", ControllerSpec{}, false}, // max below min
		{"gapout:8,40,0", ControllerSpec{}, false},
		{"gapout:a,b,c", ControllerSpec{}, false},
		{"bp-est:", ControllerSpec{}, false},
		{"bp-est:0", ControllerSpec{}, false},
		{"bp-est:1", ControllerSpec{}, false},
		{"bp-est:-0.1", ControllerSpec{}, false},
		{"bp-est:NaN", ControllerSpec{}, false},
		{"bp-est:+Inf", ControllerSpec{}, false},
	}
	for _, c := range cases {
		got, err := ParseControllerSpec(c.arg)
		if c.ok {
			if err != nil {
				t.Errorf("ParseControllerSpec(%q) = %v, want %+v", c.arg, err, c.want)
				continue
			}
			if got != c.want {
				t.Errorf("ParseControllerSpec(%q) = %+v, want %+v", c.arg, got, c.want)
			}
		} else if err == nil {
			t.Errorf("ParseControllerSpec(%q) = %+v, want error", c.arg, got)
		}
	}
}

// TestControllerSpecValidate covers the hand-constructed specs the
// parser cannot produce: NaN and negative parameters must be rejected.
func TestControllerSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec ControllerSpec
		ok   bool
	}{
		{"zero is util", ControllerSpec{}, true},
		{"gapout defaults", ControllerSpec{Kind: ControllerGapOut}, true},
		{"bad kind", ControllerSpec{Kind: ControllerKind(99)}, false},
		{"negative period", ControllerSpec{Kind: ControllerCap, PeriodSec: -1}, false},
		{"negative min green", ControllerSpec{Kind: ControllerGapOut, MinGreenSec: -1}, false},
		{"max below min", ControllerSpec{Kind: ControllerGapOut, MinGreenSec: 20, MaxGreenSec: 10}, false},
		{"alpha NaN", ControllerSpec{Kind: ControllerBPEst, EstAlpha: math.NaN()}, false},
		{"alpha one", ControllerSpec{Kind: ControllerBPEst, EstAlpha: 1}, false},
		{"alpha negative", ControllerSpec{Kind: ControllerBPEst, EstAlpha: -0.5}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if c.ok && err != nil {
				t.Fatalf("Validate(%+v) = %v, want ok", c.spec, err)
			}
			if !c.ok && err == nil {
				t.Fatalf("Validate(%+v) succeeded, want error", c.spec)
			}
		})
	}
}

// TestSetupControllerDispatch resolves every family through the setup's
// dispatch table and checks the factory identity and its batch
// capability: the per-link pressure controllers (UTIL-BP, MaxPressure,
// BP-EST) batch; the fixed-slot, pretimed and stateful actuated ones
// deliberately do not.
func TestSetupControllerDispatch(t *testing.T) {
	s := Default()
	cases := []struct {
		arg       string
		wantName  string
		wantBatch bool
	}{
		{"util", "UTIL-BP", true},
		{"cap:20", "CAP-BP", false},
		{"capnorm:20", "CAP-BP-NORM", false},
		{"orig:20", "ORIG-BP", false},
		{"fixed:16", "FIXED", false},
		{"maxpressure", "MAXPRESSURE", true},
		{"gapout", "GAPOUT", false},
		{"bp-est", "BP-EST", true},
	}
	for _, c := range cases {
		t.Run(c.arg, func(t *testing.T) {
			spec, err := ParseControllerSpec(c.arg)
			if err != nil {
				t.Fatal(err)
			}
			f, err := s.Controller(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(f.Name(), c.wantName) {
				t.Errorf("factory name %q, want it to contain %q", f.Name(), c.wantName)
			}
			_, batch := f.(signal.BatchFactory)
			if batch != c.wantBatch {
				t.Errorf("BatchFactory = %v, want %v", batch, c.wantBatch)
			}
		})
	}
}
