package scenario

import "utilbp/internal/snap"

// SnapshotState implements snap.Snapshotter: the router's only mutable
// state is its route-choice RNG stream — the interned route layout and
// table are immutable artifact structure.
func (r *Router) SnapshotState(w *snap.Writer) {
	st := r.src.State()
	for _, v := range st {
		w.Uint64(v)
	}
}

// RestoreState implements snap.Snapshotter.
func (r *Router) RestoreState(rd *snap.Reader) error {
	var st [4]uint64
	for i := range st {
		st[i] = rd.Uint64()
	}
	if rd.Err() != nil {
		return rd.Err()
	}
	r.src.SetState(st)
	return nil
}
