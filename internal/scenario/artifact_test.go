package scenario

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"utilbp/internal/network"
	"utilbp/internal/sensing"
	"utilbp/internal/sim"
	"utilbp/internal/vehicle"
)

// TestArtifactSharedAcrossInstances: instances created from one artifact
// share the immutable parts by reference (no per-instance copies) while
// owning their mutable collaborators.
func TestArtifactSharedAcrossInstances(t *testing.T) {
	art, err := Default().BuildArtifact(PatternI)
	if err != nil {
		t.Fatal(err)
	}
	a, b := art.Instantiate(), art.Instantiate()
	if a.Artifact != b.Artifact || a.Grid != b.Grid || a.Routes != b.Routes {
		t.Fatal("instances do not share the artifact by reference")
	}
	if a.Demand == b.Demand {
		t.Fatal("instances share a mutable demand process")
	}
	if a.Router == b.Router {
		t.Fatal("instances share a mutable router")
	}
}

// TestArtifactCacheSharesPointers: concurrent Get calls for the same
// pattern return the same artifact pointer (run under -race in CI).
func TestArtifactCacheSharesPointers(t *testing.T) {
	cache := NewArtifactCache(Default())
	const n = 8
	arts := make([]*Artifact, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := cache.Get(PatternII)
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = a
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if arts[i] != arts[0] {
			t.Fatal("ArtifactCache handed out distinct artifacts for one pattern")
		}
	}
	if cache.Base().Grid.Rows != 3 {
		t.Fatal("Base does not round-trip the setup")
	}
}

// TestRouteInterningDeterministicAcrossBuilds: two artifacts built for
// the same setup and pattern agree on the full route table and on every
// route a same-seeded router assigns — the property that lets engines
// swap structurally identical artifacts without re-translating IDs.
func TestRouteInterningDeterministicAcrossBuilds(t *testing.T) {
	s := Default()
	a1, err := s.BuildArtifact(PatternI)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.BuildArtifact(PatternI)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Routes.Len() != a2.Routes.Len() {
		t.Fatalf("route tables differ in size: %d vs %d", a1.Routes.Len(), a2.Routes.Len())
	}
	for id := 0; id < a1.Routes.Len(); id++ {
		p1 := a1.Routes.Plan(vehicle.RouteID(id))
		p2 := a2.Routes.Plan(vehicle.RouteID(id))
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("route %d diverges between builds: %+v vs %+v", id, p1, p2)
		}
	}
	i1, i2 := a1.Instantiate(), a2.Instantiate()
	entry := a1.Grid.Entries(network.North)[0]
	for k := 0; k < 2000; k++ {
		if r1, r2 := i1.Router.Route(entry, 0), i2.Router.Route(entry, 0); r1 != r2 {
			t.Fatalf("draw %d: route IDs diverge (%d vs %d)", k, r1, r2)
		}
	}
}

// TestRouteInterningDeterministicAcrossReset is the property test behind
// the shared-table replay contract: for any seed, running an engine,
// rewinding it with Reset, and running again assigns every vehicle the
// same interned RouteID — and the run itself never interns (the table
// size is frozen at build time).
func TestRouteInterningDeterministicAcrossReset(t *testing.T) {
	art, err := Default().BuildArtifact(PatternI)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seedByte uint8) bool {
		seed := uint64(seedByte) + 1
		setup := art.Setup
		setup.Seed = seed
		// Fresh build for the seed: the reference run.
		fresh, err := setup.Build(PatternI)
		if err != nil {
			t.Log(err)
			return false
		}
		engine, err := sim.New(sim.Config{
			Net:         fresh.Grid.Network,
			Controllers: setup.UtilBP(),
			Demand:      fresh.Demand,
			Router:      fresh.Router,
			Routes:      fresh.Routes,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		lenBefore := fresh.Routes.Len()
		engine.Run(400)
		first := routeIDs(engine)
		if fresh.Routes.Len() != lenBefore {
			t.Logf("seed %d: run interned routes (%d -> %d)", seed, lenBefore, fresh.Routes.Len())
			return false
		}
		// Reset and replay: identical interned IDs, vehicle for vehicle.
		if err := engine.Reset(seed); err != nil {
			t.Log(err)
			return false
		}
		engine.Run(400)
		if !reflect.DeepEqual(first, routeIDs(engine)) {
			t.Logf("seed %d: Reset replay assigned different RouteIDs", seed)
			return false
		}
		// ResetWith swapping in a shared-artifact instance (different
		// table pointer, same deterministic contents) must replay the
		// same IDs too.
		inst := art.Instantiate()
		if err := engine.ResetWith(seed, sim.ResetOptions{
			Demand: inst.Demand,
			Router: inst.Router,
			Routes: inst.Routes,
		}); err != nil {
			t.Log(err)
			return false
		}
		engine.Run(400)
		if !reflect.DeepEqual(first, routeIDs(engine)) {
			t.Logf("seed %d: ResetWith onto shared artifact assigned different RouteIDs", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// routeIDs snapshots the arena's interned route assignments.
func routeIDs(e *sim.Engine) []vehicle.RouteID {
	vs := e.Vehicles()
	out := make([]vehicle.RouteID, len(vs))
	for i := range vs {
		out[i] = vs[i].Route
	}
	return out
}

// TestSharedArtifactEnginesDeterminism: two engines on instances of ONE
// artifact, stepped concurrently (this is the aliasing probe CI runs
// under -race), must each match an engine built from a private fresh
// scenario — and must leave the shared artifact untouched.
func TestSharedArtifactEnginesDeterminism(t *testing.T) {
	setup := Default()
	setup.Seed = 11
	art, err := setup.BuildArtifact(PatternII)
	if err != nil {
		t.Fatal(err)
	}
	tableLen := art.Routes.Len()
	const steps = 600
	run := func(inst *Instance) (*sim.Engine, error) {
		e, err := sim.New(sim.Config{
			Net:         inst.Grid.Network,
			Controllers: inst.Setup.UtilBP(),
			Demand:      inst.Demand,
			Router:      inst.Router,
			Routes:      inst.Routes,
		})
		if err != nil {
			return nil, err
		}
		e.Run(steps)
		return e, e.CheckInvariants()
	}
	engines := make([]*sim.Engine, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			engines[i], errs[i] = run(art.Instantiate())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shared engine %d: %v", i, err)
		}
	}
	fresh, err := setup.Build(PatternII)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := run(fresh)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range engines {
		if e.Totals() != ref.Totals() {
			t.Fatalf("shared engine %d totals %+v != fresh %+v", i, e.Totals(), ref.Totals())
		}
		if !reflect.DeepEqual(e.Vehicles(), ref.Vehicles()) {
			t.Fatalf("shared engine %d vehicle arena diverges from fresh run", i)
		}
	}
	if art.Routes.Len() != tableLen {
		t.Fatalf("concurrent runs mutated the shared route table (%d -> %d)", tableLen, art.Routes.Len())
	}
}

// TestArtifactSensorInstantiation: the Setup.Sensor spec flows through
// the artifact into per-instance sensors — nil for perfect (the
// engine's sensor-free fast path), fresh per instance otherwise, and
// invalid specs are rejected at build time.
func TestArtifactSensorInstantiation(t *testing.T) {
	perfect, err := Default().BuildArtifact(PatternI)
	if err != nil {
		t.Fatal(err)
	}
	if inst := perfect.Instantiate(); inst.Sensor != nil {
		t.Fatalf("perfect spec built a sensor: %v", inst.Sensor.Name())
	}

	setup := Default()
	setup.Sensor = sensing.CV(0.4)
	art, err := setup.BuildArtifact(PatternI)
	if err != nil {
		t.Fatal(err)
	}
	a, b := art.Instantiate(), art.Instantiate()
	if a.Sensor == nil || b.Sensor == nil {
		t.Fatal("cv spec built no sensor")
	}
	if a.Sensor == b.Sensor {
		t.Fatal("instances share a mutable sensor")
	}
	if a.Sensor.Name() != "cv:0.4" {
		t.Fatalf("sensor name = %q", a.Sensor.Name())
	}

	bad := Default()
	bad.Sensor = sensing.CV(3)
	if _, err := bad.BuildArtifact(PatternI); err == nil {
		t.Fatal("invalid sensor spec accepted at build time")
	}
}

// TestEstimatedGridWorkloadRegistered: the registry exposes the sensing
// workload and its spec survives the registry round trip.
func TestEstimatedGridWorkloadRegistered(t *testing.T) {
	w, ok := WorkloadByName("estimated-grid")
	if !ok {
		t.Fatal("estimated-grid workload not registered")
	}
	if w.Setup.Sensor != sensing.CV(0.3) {
		t.Fatalf("estimated-grid sensor = %+v, want cv:0.3", w.Setup.Sensor)
	}
	if w.Pattern != PatternII {
		t.Fatalf("estimated-grid pattern = %v", w.Pattern)
	}
}
