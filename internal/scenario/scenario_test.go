package scenario

import (
	"math"
	"testing"

	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/vehicle"
)

func TestPatternTables(t *testing.T) {
	// Table II spot checks.
	ia, err := PatternI.InterArrival()
	if err != nil {
		t.Fatal(err)
	}
	if ia[network.North] != 3 || ia[network.East] != 5 || ia[network.South] != 7 || ia[network.West] != 9 {
		t.Errorf("pattern I table: %v", ia)
	}
	ia, _ = PatternII.InterArrival()
	for _, side := range network.Dirs {
		if ia[side] != 6 {
			t.Errorf("pattern II side %v = %v", side, ia[side])
		}
	}
	if _, err := PatternMixed.InterArrival(); err == nil {
		t.Error("mixed pattern should have no single table")
	}
}

func TestPatternDurations(t *testing.T) {
	for _, p := range Patterns {
		if p.Duration() != 3600 {
			t.Errorf("pattern %v duration %v", p, p.Duration())
		}
	}
	if PatternMixed.Duration() != 4*3600 {
		t.Error("mixed duration wrong")
	}
}

func TestPatternStrings(t *testing.T) {
	if PatternI.String() != "I" || PatternMixed.String() != "Mixed" {
		t.Error("pattern names wrong")
	}
	if Pattern(99).String() == "" || Pattern(99).Description() != "unknown" {
		t.Error("unknown pattern handling")
	}
	for _, p := range AllPatterns {
		if p.Description() == "unknown" {
			t.Errorf("pattern %v lacks description", p)
		}
	}
}

func TestTableIProbabilities(t *testing.T) {
	// Table I: straight = 1 - right - left, all non-negative.
	for side, probs := range TableI {
		if probs.Right < 0 || probs.Left < 0 || probs.Straight() < 0 {
			t.Errorf("side %v: %+v", side, probs)
		}
	}
	if TableI[network.North].Right != 0.4 || TableI[network.North].Left != 0.2 {
		t.Error("north row wrong")
	}
	if got := TableI[network.West].Straight(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("west straight = %v", got)
	}
}

func TestBuildScenario(t *testing.T) {
	built, err := Default().Build(PatternI)
	if err != nil {
		t.Fatal(err)
	}
	if built.Grid.Rows() != 3 || built.Grid.Cols() != 3 {
		t.Error("default grid not 3x3")
	}
	if built.Duration != 3600 {
		t.Error("duration wrong")
	}
	// Demand fires on north entries at roughly 1/3 veh/s.
	north := built.Grid.Entries(network.North)[0]
	total := 0
	for k := 0; k < 3000; k++ {
		total += built.Demand.Arrivals(north, k, float64(k), 1)
	}
	rate := float64(total) / 3000
	if math.Abs(rate-1.0/3.0) > 0.05 {
		t.Errorf("north arrival rate = %v, want ~0.333", rate)
	}
	// Exit roads are silent.
	exit := built.Grid.Exits(network.North)[0]
	for k := 0; k < 100; k++ {
		if built.Demand.Arrivals(exit, k, float64(k), 1) != 0 {
			t.Fatal("exit road generated arrivals")
		}
	}
}

func TestMixedDemandSwitchesHourly(t *testing.T) {
	built, err := Default().Build(PatternMixed)
	if err != nil {
		t.Fatal(err)
	}
	// At t in hour 2 (pattern II), east entries run at 1/6; in hour 1
	// (pattern I) they run at 1/5. Compare empirical rates.
	east := built.Grid.Entries(network.East)[0]
	rate := func(t0 float64) float64 {
		total := 0
		for k := 0; k < 2000; k++ {
			total += built.Demand.Arrivals(east, k, t0+float64(k), 1)
		}
		return float64(total) / 2000
	}
	r1 := rate(100)          // pattern I: 1/5
	r2 := rate(3700)         // pattern II: 1/6
	r4 := rate(3*3600 + 100) // pattern IV: 1/9
	if math.Abs(r1-0.2) > 0.03 {
		t.Errorf("hour 1 east rate = %v, want ~0.2", r1)
	}
	if math.Abs(r2-1.0/6) > 0.03 {
		t.Errorf("hour 2 east rate = %v, want ~0.167", r2)
	}
	if math.Abs(r4-1.0/9) > 0.03 {
		t.Errorf("hour 4 east rate = %v, want ~0.111", r4)
	}
}

func TestRouterDistribution(t *testing.T) {
	built, err := Default().Build(PatternI)
	if err != nil {
		t.Fatal(err)
	}
	r := built.NewRouter(rng.New(7))
	north := built.Grid.Entries(network.North)[1]
	const n = 20000
	counts := map[network.Turn]int{}
	atCounts := map[int]int{}
	for i := 0; i < n; i++ {
		route := built.Routes.Plan(r.Route(north, 0))
		// Classify: find the single turn (if any) in the first 3 junctions.
		turn := network.Straight
		at := -1
		for j := 0; j < 3; j++ {
			if tt := route.TurnAt(j); tt != network.Straight {
				turn = tt
				at = j
				break
			}
		}
		counts[turn]++
		if at >= 0 {
			atCounts[at]++
		}
	}
	// North: right 0.4, left 0.2, straight 0.4.
	if got := float64(counts[network.Right]) / n; math.Abs(got-0.4) > 0.02 {
		t.Errorf("right fraction = %v", got)
	}
	if got := float64(counts[network.Left]) / n; math.Abs(got-0.2) > 0.02 {
		t.Errorf("left fraction = %v", got)
	}
	// Turning junction uniform over the 3 rows.
	turners := counts[network.Right] + counts[network.Left]
	for j := 0; j < 3; j++ {
		got := float64(atCounts[j]) / float64(turners)
		if math.Abs(got-1.0/3) > 0.03 {
			t.Errorf("turn-at[%d] fraction = %v", j, got)
		}
	}
}

func TestRouterUnknownEntry(t *testing.T) {
	built, _ := Default().Build(PatternI)
	r := built.NewRouter(rng.New(7))
	if route := r.Route(network.RoadID(9999), 0); route != vehicle.StraightRoute {
		t.Error("unknown entry should route straight")
	}
}

func TestSetupHelpers(t *testing.T) {
	s := Default()
	if s.UtilBP().Name() != "UTIL-BP" {
		t.Error("UtilBP factory name")
	}
	if s.CapBP(16).Name() != "CAP-BP" {
		t.Error("CapBP factory name")
	}
	if s.OrigBP(16).Name() != "ORIG-BP" {
		t.Error("OrigBP factory name")
	}
	if s.FixedTime(15).Name() != "FIXED" {
		t.Error("FixedTime factory name")
	}
	built, err := s.Build(PatternI)
	if err != nil {
		t.Fatal(err)
	}
	tr := TopRight(built.Grid)
	if tr != built.Grid.JunctionAt(0, 2) {
		t.Error("TopRight wrong")
	}
	east := EastApproach(built.Grid, tr)
	if east == network.NoRoad {
		t.Fatal("east approach missing")
	}
	if built.Grid.Road(east).Heading != network.West {
		t.Error("east approach should head west")
	}
	if EastApproach(built.Grid, network.NodeID(999)) != network.NoRoad {
		t.Error("bad junction should yield NoRoad")
	}
}

func TestSetupDefaultsFill(t *testing.T) {
	s := Setup{}.withDefaults()
	if s.Grid.Rows != 3 || s.AmberSec != 4 || s.Alpha != -1 || s.Beta != -2 || s.TurnProbs == nil {
		t.Errorf("withDefaults: %+v", s)
	}
}

func TestBuildDeterministicAcrossConsumers(t *testing.T) {
	// Two builds with the same seed produce identical demand draws.
	b1, _ := Default().Build(PatternI)
	b2, _ := Default().Build(PatternI)
	road := b1.Grid.Entries(network.South)[2]
	for k := 0; k < 200; k++ {
		if b1.Demand.Arrivals(road, k, float64(k), 1) != b2.Demand.Arrivals(road, k, float64(k), 1) {
			t.Fatal("same-seed builds diverged")
		}
	}
}
