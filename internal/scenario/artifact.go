package scenario

import (
	"math"
	"sync"

	"utilbp/internal/event"
	"utilbp/internal/network"
	"utilbp/internal/rng"
	"utilbp/internal/sensing"
	"utilbp/internal/sim"
	"utilbp/internal/vehicle"
)

// Artifact is the immutable part of a built scenario: the network
// topology, the arrival-rate tables, the interned route table and the
// router's route-ID layout. It is built once per (setup, pattern) and is
// safe to share by reference across engines, sweep workers and
// goroutines — nothing in it is written after BuildArtifact returns
// (DESIGN.md §5). The mutable per-run collaborators (RNG-backed demand
// and router streams) live in Instance.
type Artifact struct {
	// Grid is the instantiated road network.
	Grid *network.GridNetwork
	// Routes is the interned route table; every RouteID handed out by
	// this artifact's routers indexes it. Read-only after build.
	Routes *vehicle.RouteTable
	// Rate is the arrival-rate function, kept so callers can integrate
	// the demand horizon (see ExpectedVehicles). It is a pure function
	// over immutable tables.
	Rate sim.RateFunc
	// Duration is the pattern's default horizon in seconds.
	Duration float64
	// Setup records the constants the artifact was built with (defaults
	// applied).
	Setup Setup
	// Pattern is the demand pattern the artifact was built for.
	Pattern Pattern
	// Events is the disruption schedule compiled from Setup.Events
	// against this grid (internal/event, DESIGN.md §12), nil for an
	// undisrupted scenario. Like everything else here it is immutable
	// and shared by reference: engines arm it per run via
	// sim.Config.Events. Demand surges are already woven into Rate and
	// sensor outages into each instance's Sensor, so callers only wire
	// the schedule itself to the engine.
	Events *event.Schedule
	// routes is the router's precomputed interned-ID layout.
	routes *routeIndex
}

// Instance binds the shared immutable Artifact to the mutable per-run
// collaborators: a demand process and a router, each owning RNG streams.
// One engine uses one instance at a time; create a fresh instance per
// concurrent engine (instances are cheap — the artifact dominates).
type Instance struct {
	*Artifact
	// Demand is the arrival process driving the entry roads.
	Demand sim.ArrivalProcess
	// Router assigns interned routes to spawned vehicles.
	Router sim.RouteChooser
	// Sensor is the per-run observation sensor built from
	// Setup.Sensor, seeded for the run; nil for the perfect spec (the
	// engine's sensor-free fast path). Like Demand and Router it is
	// mutable per-run state: one engine at a time.
	Sensor sensing.Sensor
}

// BuildArtifact builds the immutable scenario artifact for a pattern:
// everything shareable across engines, with no RNG state.
func (s Setup) BuildArtifact(pattern Pattern) (*Artifact, error) {
	s = s.withDefaults()
	if err := s.Sensor.Validate(); err != nil {
		return nil, err
	}
	g, err := network.Grid(s.Grid)
	if err != nil {
		return nil, err
	}
	rate, err := demandRate(g, pattern)
	if err != nil {
		return nil, err
	}
	if s.DemandScale > 0 && s.DemandScale != 1 {
		base := rate
		scale := s.DemandScale
		rate = func(r network.RoadID, t float64) float64 { return scale * base(r, t) }
	}
	// Engines step at the default mini-slot of 1 s throughout this
	// stack; the schedule's step grid must match (sim.New verifies).
	events, err := event.Compile(g.Network, 1, s.Events)
	if err != nil {
		return nil, err
	}
	// Surge windows wrap the rate after DemandScale, so the artifact's
	// Rate — and everything integrating it, like ExpectedVehicles —
	// already includes the surged demand.
	rate = events.WrapRate(rate)
	table := vehicle.NewRouteTable()
	return &Artifact{
		Grid:     g,
		Routes:   table,
		Rate:     rate,
		Duration: pattern.Duration(),
		Setup:    s,
		Pattern:  pattern,
		Events:   events,
		routes:   buildRouteIndex(g, s.TurnProbs, table),
	}, nil
}

// Instantiate derives the mutable per-run collaborators from the
// artifact's seed (Setup.Seed), exactly as Build does: the demand root
// is rng.New(seed).Split("demand") and the route stream
// rng.New(seed).Split("routes"), so a run on any instance of this
// artifact replays bit-for-bit like one on a freshly built scenario.
func (a *Artifact) Instantiate() *Instance {
	root := rng.New(a.Setup.Seed)
	demand := sim.NewPoissonDemand(root.Split("demand"), a.Rate)
	demand.SetDerivation(func(seed uint64) *rng.Source {
		return rng.New(seed).Split("demand")
	})
	var sensor sensing.Sensor
	if !a.Setup.Sensor.Perfect() {
		// The spec was validated at BuildArtifact; New cannot fail here.
		sensor, _ = a.Setup.Sensor.New()
	}
	// Scheduled sensor outages wrap the per-run sensor (promoting a
	// perfect scenario onto an explicit sensing.Perfect, since the
	// engine's sensor-free fast path has nothing to intercept).
	sensor = a.Events.WrapSensor(sensor)
	if sensor != nil {
		sensor.Reseed(a.Setup.Seed)
	}
	return &Instance{
		Artifact: a,
		Demand:   demand,
		Router:   a.NewRouter(root.Split("routes")),
		Sensor:   sensor,
	}
}

// ExpectedVehicles estimates how many vehicles the demand generates over
// a horizon of durationSec seconds, by integrating the arrival rate over
// every entry road. The sim layer uses it to pre-size the vehicle arena
// so the spawn path never grows a slice mid-run; the estimate includes
// Poisson headroom, so it is an upper bound for typical runs, not a hard
// limit — the arena still grows if a run exceeds it.
func (a *Artifact) ExpectedVehicles(durationSec float64) int {
	if a.Rate == nil || durationSec <= 0 {
		return 0
	}
	// Sample the (piecewise-constant) rate on a 60 s grid; exact for the
	// paper's hourly pattern switches and close enough elsewhere.
	const sampleSec = 60.0
	total := 0.0
	for _, side := range network.Dirs {
		for _, rid := range a.Grid.Entries(side) {
			for t := 0.0; t < durationSec; t += sampleSec {
				step := sampleSec
				if rem := durationSec - t; rem < step {
					step = rem
				}
				total += a.Rate(rid, t) * step
			}
		}
	}
	// ~4σ Poisson headroom plus a constant floor for tiny horizons.
	return int(total+4*math.Sqrt(total)) + 64
}

// ArtifactCache builds and shares immutable scenario artifacts, one per
// pattern, for a fixed base setup. It is safe for concurrent use: every
// sweep worker can hold the same cache, and all of them receive the same
// artifact pointer for a pattern — the network, rate tables and route
// table exist once per process instead of once per worker (DESIGN.md
// §5). The zero value is not usable; construct with NewArtifactCache.
type ArtifactCache struct {
	base Setup
	mu   sync.Mutex
	arts map[Pattern]*Artifact
}

// NewArtifactCache returns an empty cache bound to the given base setup.
func NewArtifactCache(base Setup) *ArtifactCache {
	return &ArtifactCache{base: base, arts: make(map[Pattern]*Artifact)}
}

// Base returns the setup the cache builds artifacts for.
func (c *ArtifactCache) Base() Setup { return c.base }

// Get returns the shared artifact for a pattern, building it on first
// use. Concurrent callers for the same pattern receive the same pointer.
func (c *ArtifactCache) Get(pattern Pattern) (*Artifact, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a, ok := c.arts[pattern]; ok {
		return a, nil
	}
	a, err := c.base.BuildArtifact(pattern)
	if err != nil {
		return nil, err
	}
	c.arts[pattern] = a
	return a, nil
}
