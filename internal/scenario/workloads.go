package scenario

import (
	"fmt"
	"sort"

	"utilbp/internal/event"
	"utilbp/internal/sensing"
)

// Workload is a named, registered simulation workload: a Setup (grid
// geometry, evaluation constants and the observation sensor spec,
// Setup.Sensor) paired with a demand pattern. The registry lets the
// experiment harness, CLI tools and perf trajectory exercise networks,
// demand shapes and sensing models beyond the paper's 3×3 grid by
// name; the registered set is documented in DESIGN.md §4.
type Workload struct {
	// Name is the registry key (kebab-case).
	Name string
	// Description says what the workload stresses.
	Description string
	// Setup carries the grid geometry and evaluation constants.
	Setup Setup
	// Pattern selects the demand shape.
	Pattern Pattern
	// Controller is the workload's suggested controller spec, the
	// default families sweeps and CLI runs use when the caller does not
	// pick one explicitly. The zero value is UTIL-BP, so historical
	// workloads keep the paper's controller.
	Controller ControllerSpec
	// SweepHorizonSec is the suggested horizon in seconds for sweep-style
	// consumers (perf trajectory runs, pooled-vs-serial pins) that
	// otherwise apply one flat horizon to every workload. Zero means "use
	// the consumer's default"; city-scale grids set it so a sweep over
	// the registry stays minutes, not hours.
	SweepHorizonSec float64
}

// SweepHorizon returns the workload's suggested sweep horizon, falling
// back to the consumer's default when the workload does not set one.
func (w Workload) SweepHorizon(defaultSec float64) float64 {
	if w.SweepHorizonSec > 0 {
		return w.SweepHorizonSec
	}
	return defaultSec
}

var workloads = map[string]Workload{}

// RegisterWorkload adds a workload to the registry. It rejects empty
// names and duplicates, so registrations surface conflicts instead of
// silently overwriting.
func RegisterWorkload(w Workload) error {
	if w.Name == "" {
		return fmt.Errorf("scenario: workload name must not be empty")
	}
	if _, dup := workloads[w.Name]; dup {
		return fmt.Errorf("scenario: workload %q already registered", w.Name)
	}
	workloads[w.Name] = w
	return nil
}

// MustRegisterWorkload is RegisterWorkload panicking on error, for
// registrations at init time.
func MustRegisterWorkload(w Workload) {
	if err := RegisterWorkload(w); err != nil {
		panic(err)
	}
}

// WorkloadByName looks a workload up by registry key.
func WorkloadByName(name string) (Workload, bool) {
	w, ok := workloads[name]
	return w, ok
}

// Workloads returns every registered workload sorted by name.
func Workloads() []Workload {
	out := make([]Workload, 0, len(workloads))
	for _, w := range workloads {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WorkloadNames returns the sorted registry keys.
func WorkloadNames() []string {
	out := make([]string, 0, len(workloads))
	for name := range workloads {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// gridSetup returns the paper's constants on a rows×cols grid.
func gridSetup(rows, cols int) Setup {
	s := Default()
	s.Grid.Rows = rows
	s.Grid.Cols = cols
	return s
}

func init() {
	MustRegisterWorkload(Workload{
		Name:        "paper-grid",
		Description: "the paper's Section V evaluation: 3×3 grid, 4-hour mixed Table II demand",
		Setup:       Default(),
		Pattern:     PatternMixed,
	})
	MustRegisterWorkload(Workload{
		Name:        "asymmetric-grid",
		Description: "4×2 grid — unequal path lengths stress the per-lane pressure signal",
		Setup:       gridSetup(4, 2),
		Pattern:     PatternIII,
	})
	MustRegisterWorkload(Workload{
		Name:        "arterial-corridor",
		Description: "1×5 corridor — a single east-west arterial with cross traffic at every junction",
		Setup:       gridSetup(1, 5),
		Pattern:     PatternI,
	})
	MustRegisterWorkload(Workload{
		Name:        "rush-hour-ramp",
		Description: "3×3 grid under a trapezoidal demand ramp peaking above the paper's operating point",
		Setup:       Default(),
		Pattern:     PatternRush,
	})
	MustRegisterWorkload(Workload{
		Name:            "city-grid",
		Description:     "16×16 grid (256 junctions) under uniform Table II demand — the city-scale memory/throughput stress",
		Setup:           gridSetup(16, 16),
		Pattern:         PatternII,
		SweepHorizonSec: 300,
	})
	MustRegisterWorkload(Workload{
		Name:            "downtown-core",
		Description:     "8×8 grid under Pattern IV single-heavy demand — asymmetric load on a dense core",
		Setup:           gridSetup(8, 8),
		Pattern:         PatternIV,
		SweepHorizonSec: 450,
	})
	disrupted, err := gridSetup(16, 16).WithCentralIncident(60, 120, 0.4)
	if err != nil {
		panic(err)
	}
	disrupted.Events = append(disrupted.Events,
		event.Dark("J00", 150, 90),
		event.Surge(60, 180, 1.5),
	)
	MustRegisterWorkload(Workload{
		Name:            "city-grid-incident",
		Description:     "the 16×16 city grid with a mid-run capacity incident, a dark junction and a demand surge — the out-of-the-box disrupted scenario (DESIGN.md §12)",
		Setup:           disrupted,
		Pattern:         PatternII,
		SweepHorizonSec: 300,
	})
	area, err := gridSetup(16, 16).WithCornerAreaIncident(3, 60, 120, 0.1)
	if err != nil {
		panic(err)
	}
	MustRegisterWorkload(Workload{
		Name:            "city-grid-area-incident",
		Description:     "the 16×16 city grid with a 3×3-junction area incident at the loaded top-right corner — every approach of the district drops to 10% capacity mid-run (the stress-study scenario, DESIGN.md §14)",
		Setup:           area,
		Pattern:         PatternII,
		SweepHorizonSec: 300,
	})
	saturated := Default()
	saturated.DemandScale = 1.5
	MustRegisterWorkload(Workload{
		Name:        "saturation-grid",
		Description: "3×3 grid under uniform demand scaled 1.5× past the paper's operating point — the oversaturated stress where queues approach capacity",
		Setup:       saturated,
		Pattern:     PatternII,
	})
	estimated := Default()
	estimated.Sensor = sensing.CV(0.3)
	MustRegisterWorkload(Workload{
		Name:        "estimated-grid",
		Description: "3×3 grid under uniform demand observed through 30% connected-vehicle penetration — the estimation-error stress (DESIGN.md §10)",
		Setup:       estimated,
		Pattern:     PatternII,
		Controller:  ControllerSpec{Kind: ControllerBPEst},
	})
}
