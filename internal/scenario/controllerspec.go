package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"utilbp/internal/signal"
)

// ControllerKind enumerates the controller families a ControllerSpec
// can select. The zero value is UTIL-BP, so a zero spec resolves to the
// paper's controller and existing workloads keep their behavior without
// opting in.
type ControllerKind int

// The controller families of the zoo (DESIGN.md §13): the paper's
// UTIL-BP and the CAP-BP/ORIG-BP fixed-slot variants, pretimed
// round-robin, Varaiya-style MaxPressure, actuated gap-out, and
// back-pressure on estimated turn ratios.
const (
	ControllerUtil ControllerKind = iota
	ControllerCap
	ControllerCapNorm
	ControllerOrig
	ControllerFixed
	ControllerMaxPressure
	ControllerGapOut
	ControllerBPEst
)

// Default parameters a spec's zero fields resolve to when the family
// needs a value: the fixed-slot period matches the CAP-BP@20 operating
// point the root golden test pins, the pretimed green matches the
// trafficsim -period default.
const (
	defaultSlotPeriodSec = 20
	defaultFixedGreenSec = 16
)

// ControllerSpec is the declarative controller configuration carried by
// the workload registry and experiment sweep axes, the control-side
// mirror of sensing.Spec: a plain comparable value that is printable
// (String) and parseable (ParseControllerSpec), so "which controller"
// can be an axis next to sensor spec, pattern and seed. Parameters are
// in seconds; the scenario layer maps them onto mini-slots (Δt = 1 s).
type ControllerSpec struct {
	// Kind selects the controller family.
	Kind ControllerKind
	// PeriodSec is the fixed-slot control period (cap, capnorm, orig)
	// or the pretimed green (fixed). 0 means the family default.
	PeriodSec int
	// MinGreenSec is the guaranteed green for maxpressure and gapout.
	// 0 means the family default.
	MinGreenSec int
	// MaxGreenSec is gapout's unconditional green cap. 0 means the
	// family default.
	MaxGreenSec int
	// GapSec is gapout's no-demand gap-out timer. 0 means the family
	// default.
	GapSec int
	// EstAlpha is bp-est's estimator forgetting rate in (0, 1). 0 means
	// the family default.
	EstAlpha float64
}

// kindNames maps each family to its canonical CLI spelling.
var kindNames = map[ControllerKind]string{
	ControllerUtil:        "util",
	ControllerCap:         "cap",
	ControllerCapNorm:     "capnorm",
	ControllerOrig:        "orig",
	ControllerFixed:       "fixed",
	ControllerMaxPressure: "maxpressure",
	ControllerGapOut:      "gapout",
	ControllerBPEst:       "bp-est",
}

// String names the family canonically.
func (k ControllerKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("controller(%d)", int(k))
}

// Validate rejects malformed specs; Setup.Controller calls it so
// invalid controllers fail at resolution time, not mid-sweep. The
// float comparison is written inverted so NaN is rejected too (the
// FuzzParseSpec lesson from the sensing layer).
func (s ControllerSpec) Validate() error {
	if _, ok := kindNames[s.Kind]; !ok {
		return fmt.Errorf("scenario: unknown controller kind %d", int(s.Kind))
	}
	if s.PeriodSec < 0 {
		return fmt.Errorf("scenario: negative controller period %d", s.PeriodSec)
	}
	if s.MinGreenSec < 0 || s.MaxGreenSec < 0 || s.GapSec < 0 {
		return fmt.Errorf("scenario: negative green/gap timer in %+v", s)
	}
	if s.MinGreenSec > 0 && s.MaxGreenSec > 0 && s.MaxGreenSec < s.MinGreenSec {
		return fmt.Errorf("scenario: MaxGreenSec %d below MinGreenSec %d", s.MaxGreenSec, s.MinGreenSec)
	}
	if !(s.EstAlpha >= 0 && s.EstAlpha < 1) {
		return fmt.Errorf("scenario: estimator forgetting rate %v outside [0, 1)", s.EstAlpha)
	}
	return nil
}

// String renders the spec in the ParseControllerSpec syntax. Renderings
// of parseable specs round-trip; zero parameters (family defaults) are
// omitted, so "gapout:8,40,3" and the all-default "gapout" both reach a
// fixed point.
func (s ControllerSpec) String() string {
	name := s.Kind.String()
	switch s.Kind {
	case ControllerCap, ControllerCapNorm, ControllerOrig, ControllerFixed:
		if s.PeriodSec > 0 {
			return fmt.Sprintf("%s:%d", name, s.PeriodSec)
		}
	case ControllerMaxPressure:
		if s.MinGreenSec > 0 {
			return fmt.Sprintf("%s:%d", name, s.MinGreenSec)
		}
	case ControllerGapOut:
		if s.MinGreenSec > 0 || s.MaxGreenSec > 0 || s.GapSec > 0 {
			return fmt.Sprintf("%s:%d,%d,%d", name,
				orInt(s.MinGreenSec, 8), orInt(s.MaxGreenSec, 40), orInt(s.GapSec, 3))
		}
	case ControllerBPEst:
		if s.EstAlpha > 0 {
			return name + ":" + strconv.FormatFloat(s.EstAlpha, 'g', -1, 64)
		}
	}
	return name
}

func orInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// parseKind resolves a family name, accepting the historical CLI
// aliases next to the canonical spellings.
func parseKind(name string) (ControllerKind, bool) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "util", "util-bp", "utilbp":
		return ControllerUtil, true
	case "cap", "cap-bp", "capbp":
		return ControllerCap, true
	case "capnorm", "cap-bp-norm":
		return ControllerCapNorm, true
	case "orig", "orig-bp", "origbp":
		return ControllerOrig, true
	case "fixed", "pretimed":
		return ControllerFixed, true
	case "maxpressure", "max-pressure", "mp":
		return ControllerMaxPressure, true
	case "gapout", "gap-out", "actuated":
		return ControllerGapOut, true
	case "bp-est", "bpest":
		return ControllerBPEst, true
	}
	return 0, false
}

// ParseControllerSpec parses the CLI controller syntax:
//
//	util
//	cap[:period]  capnorm[:period]  orig[:period]  (period in seconds)
//	fixed[:green]
//	maxpressure[:minGreen]
//	gapout[:min,max,gap]
//	bp-est[:alpha]
//
// Every accepted spec validates; the parameter-free forms select the
// family defaults.
func ParseControllerSpec(arg string) (ControllerSpec, error) {
	name, param, hasParam := strings.Cut(strings.TrimSpace(arg), ":")
	kind, ok := parseKind(name)
	if !ok {
		return ControllerSpec{}, fmt.Errorf("scenario: unknown controller %q (want %s)",
			arg, strings.Join(ControllerSpecNames(), ", "))
	}
	spec := ControllerSpec{Kind: kind}
	if !hasParam {
		return spec, nil
	}
	switch kind {
	case ControllerUtil:
		return ControllerSpec{}, fmt.Errorf("scenario: util takes no parameter, got %q", arg)
	case ControllerCap, ControllerCapNorm, ControllerOrig, ControllerFixed:
		p, err := strconv.Atoi(param)
		if err != nil || p <= 0 {
			return ControllerSpec{}, fmt.Errorf("scenario: bad %s period %q (want a positive second count)", kind, param)
		}
		spec.PeriodSec = p
	case ControllerMaxPressure:
		m, err := strconv.Atoi(param)
		if err != nil || m <= 0 {
			return ControllerSpec{}, fmt.Errorf("scenario: bad maxpressure min-green %q (want a positive second count)", param)
		}
		spec.MinGreenSec = m
	case ControllerGapOut:
		parts := strings.Split(param, ",")
		if len(parts) != 3 {
			return ControllerSpec{}, fmt.Errorf("scenario: gapout wants min,max,gap seconds, got %q", param)
		}
		vals := make([]int, 3)
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v <= 0 {
				return ControllerSpec{}, fmt.Errorf("scenario: bad gapout timer %q in %q (want positive second counts)", p, param)
			}
			vals[i] = v
		}
		spec.MinGreenSec, spec.MaxGreenSec, spec.GapSec = vals[0], vals[1], vals[2]
	case ControllerBPEst:
		a, err := strconv.ParseFloat(param, 64)
		// An explicit rate must itself be usable — "bp-est:0" is not a
		// spelling of the default (the inverted comparison rejects NaN).
		if err != nil || !(a > 0 && a < 1) {
			return ControllerSpec{}, fmt.Errorf("scenario: bad bp-est forgetting rate %q (want a value in (0, 1))", param)
		}
		spec.EstAlpha = a
	}
	if err := spec.Validate(); err != nil {
		return ControllerSpec{}, err
	}
	return spec, nil
}

// ControllerSpecNames lists the canonical family names ParseControllerSpec
// accepts, in dispatch-table order.
func ControllerSpecNames() []string {
	return []string{"util", "cap", "capnorm", "orig", "fixed", "maxpressure", "gapout", "bp-est"}
}

// periodOr returns the spec's period or the family default.
func (s ControllerSpec) periodOr(def int) int {
	if s.PeriodSec > 0 {
		return s.PeriodSec
	}
	return def
}

// Controller resolves the spec to a factory configured from the setup —
// the dispatch table of the controller zoo (DESIGN.md §13). Every
// family inherits the setup's amber duration; the pressure-based ones
// also inherit its detector convention (CountApproaching), and bp-est
// its eq. (8) gains.
func (s Setup) Controller(spec ControllerSpec) (signal.Factory, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case ControllerUtil:
		return s.UtilBP(), nil
	case ControllerCap:
		return s.CapBP(spec.periodOr(defaultSlotPeriodSec)), nil
	case ControllerCapNorm:
		return s.CapBPNormalized(spec.periodOr(defaultSlotPeriodSec)), nil
	case ControllerOrig:
		return s.OrigBP(spec.periodOr(defaultSlotPeriodSec)), nil
	case ControllerFixed:
		return s.FixedTime(spec.periodOr(defaultFixedGreenSec)), nil
	case ControllerMaxPressure:
		return s.MaxPressure(spec.MinGreenSec), nil
	case ControllerGapOut:
		return s.GapOut(spec.MinGreenSec, spec.MaxGreenSec, spec.GapSec), nil
	case ControllerBPEst:
		return s.EstimatedBP(spec.EstAlpha), nil
	}
	return nil, fmt.Errorf("scenario: unknown controller kind %d", int(spec.Kind))
}
