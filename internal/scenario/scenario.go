// Package scenario encodes the paper's Section V evaluation setup: the
// 3×3 grid with W_i = 120, the Table I turning probabilities, the
// Table II traffic patterns (plus the 4-hour mixed pattern and the
// rush-hour ramp extension), the 4-second amber, alpha = -1 and
// beta = -2, with the saturation flow calibrated to 0.5 veh/s per
// movement (see DESIGN.md §8).
//
// Beyond the paper's grid, the package keeps a registry of named
// workloads (Workloads, RegisterWorkload) — asymmetric grids, an
// arterial corridor, the rush-hour ramp — documented in DESIGN.md §4
// and runnable via `trafficsim -workload`.
package scenario

import (
	"fmt"

	"utilbp/internal/bp"
	"utilbp/internal/bpest"
	"utilbp/internal/core"
	"utilbp/internal/event"
	"utilbp/internal/fixedtime"
	"utilbp/internal/gapout"
	"utilbp/internal/maxpressure"
	"utilbp/internal/network"
	"utilbp/internal/sensing"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
)

// Pattern identifies a Table II traffic pattern.
type Pattern int

// The four Table II patterns, the 4-hour mixed pattern combining them,
// and the rush-hour ramp extension (trapezoidal demand, beyond the
// paper's Section V set).
const (
	PatternI Pattern = iota + 1
	PatternII
	PatternIII
	PatternIV
	PatternMixed
	PatternRush
)

// Patterns lists the individual patterns in order.
var Patterns = []Pattern{PatternI, PatternII, PatternIII, PatternIV}

// AllPatterns lists the individual patterns plus the mixed one, the rows
// of Table III.
var AllPatterns = []Pattern{PatternI, PatternII, PatternIII, PatternIV, PatternMixed}

// String names the pattern like the paper.
func (p Pattern) String() string {
	switch p {
	case PatternI:
		return "I"
	case PatternII:
		return "II"
	case PatternIII:
		return "III"
	case PatternIV:
		return "IV"
	case PatternMixed:
		return "Mixed"
	case PatternRush:
		return "Rush"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Description gives the paper's label for the pattern.
func (p Pattern) Description() string {
	switch p {
	case PatternI:
		return "adjacent heavy"
	case PatternII:
		return "uniform"
	case PatternIII:
		return "opposite heavy"
	case PatternIV:
		return "single heavy"
	case PatternMixed:
		return "mixed (I+II+III+IV)"
	case PatternRush:
		return "rush-hour ramp (trapezoidal uniform demand)"
	}
	return "unknown"
}

// interArrival is Table II: mean inter-arrival time in seconds of
// vehicles entering the network, per boundary side.
var interArrival = map[Pattern]map[network.Dir]float64{
	PatternI:   {network.North: 3, network.East: 5, network.South: 7, network.West: 9},
	PatternII:  {network.North: 6, network.East: 6, network.South: 6, network.West: 6},
	PatternIII: {network.North: 3, network.East: 7, network.South: 5, network.West: 9},
	PatternIV:  {network.North: 3, network.East: 9, network.South: 9, network.West: 9},
}

// InterArrival returns the Table II mean inter-arrival times for a
// non-mixed pattern.
func (p Pattern) InterArrival() (map[network.Dir]float64, error) {
	t, ok := interArrival[p]
	if !ok {
		return nil, fmt.Errorf("scenario: pattern %v has no single inter-arrival table", p)
	}
	return t, nil
}

// Duration returns the default simulation horizon for the pattern: 1 h
// for patterns I-IV and the rush-hour ramp, 4 h for the mixed pattern.
func (p Pattern) Duration() float64 {
	if p == PatternMixed {
		return 4 * 3600
	}
	return 3600
}

// Rush-hour ramp shape: the uniform Table II demand is scaled by a
// trapezoid — quiet shoulders, a linear build-up to a peak above the
// paper's operating point, a hold, and a symmetric cool-down.
const (
	rushLowScale  = 0.35
	rushPeakScale = 1.25
	rushRampSec   = 1200.0 // build-up / cool-down duration
	rushPeakSec   = 1200.0 // peak hold duration
)

// rushScale is the trapezoidal demand multiplier of PatternRush at time t.
func rushScale(t float64) float64 {
	switch {
	case t < 0:
		return rushLowScale
	case t < rushRampSec:
		return rushLowScale + (rushPeakScale-rushLowScale)*t/rushRampSec
	case t < rushRampSec+rushPeakSec:
		return rushPeakScale
	case t < 2*rushRampSec+rushPeakSec:
		return rushPeakScale - (rushPeakScale-rushLowScale)*(t-rushRampSec-rushPeakSec)/rushRampSec
	default:
		return rushLowScale
	}
}

// TurnProbs are Table I turning probabilities; the straight probability
// is the remainder.
type TurnProbs struct {
	Right, Left float64
}

// Straight returns the residual straight probability.
func (t TurnProbs) Straight() float64 { return 1 - t.Right - t.Left }

// TableI is the paper's Table I: turning probabilities by entry side.
var TableI = map[network.Dir]TurnProbs{
	network.North: {Right: 0.4, Left: 0.2},
	network.East:  {Right: 0.3, Left: 0.3},
	network.South: {Right: 0.4, Left: 0.3},
	network.West:  {Right: 0.3, Left: 0.4},
}

// Setup bundles the evaluation constants.
type Setup struct {
	// Grid is the network geometry; zero value uses the paper's 3×3
	// grid with W = 120.
	Grid network.GridSpec
	// AmberSec is the transition-phase duration (paper: 4 s).
	AmberSec int
	// Alpha and Beta are eq. (8)'s special-case gains (paper: -1, -2).
	Alpha, Beta float64
	// Seed drives all randomness (arrivals and route choices).
	Seed uint64
	// TurnProbs overrides Table I when non-nil.
	TurnProbs map[network.Dir]TurnProbs
	// CountApproaching widens the pressure signal to include vehicles
	// still rolling toward the stop line (an induction-loop-far-upstream
	// detector model). Off by default: greens would hold for vehicles
	// that cannot yet be served, hurting utilization (ablation A6).
	CountApproaching bool
	// DemandScale multiplies every arrival rate; 0 means 1 (the paper's
	// Table II demand). The stability prober sweeps it to estimate a
	// controller's capacity margin.
	DemandScale float64
	// Sensor selects the observation model controllers see — the cyber
	// half of the paper's CPS split (internal/sensing, DESIGN.md §10).
	// The zero value is perfect observation: engines run sensor-free
	// and reproduce the historical behavior bit-for-bit. Non-perfect
	// specs (loop detection, connected-vehicle sampling) are
	// instantiated per run with a dedicated "sensing" RNG stream
	// derived from Seed, independent of the demand and route streams.
	Sensor sensing.Spec
	// Control selects the engine's controller dispatch mode
	// (DESIGN.md §11): the zero value (signal.ControlAuto) runs the
	// batched control plane whenever the controller factory supports
	// it; signal.ControlPerJunction forces the per-junction Decide
	// loop. The two are pinned bit-for-bit equal — the axis exists so
	// sweeps and perfbench can compare their cost.
	Control signal.ControlMode
	// Events are the declarative disruption specs of the scenario
	// (internal/event, DESIGN.md §12): incidents, junction dark-mode,
	// sensor outages and demand surges, all scheduled in seconds.
	// BuildArtifact compiles them against the grid into the artifact's
	// immutable Schedule; empty means an undisrupted run. Disruptions
	// are deterministic scenario structure, not randomness — the same
	// setup replays the same faults on every seed.
	Events []event.Spec
}

// Default returns the paper's Section V setup. The physical saturation
// flow is 0.5 veh/s per movement (the standard ~1800 veh/h), which puts
// the queue simulator in the same congestion regime as the paper's SUMO
// runs; back-pressure decisions are invariant to a uniform µ scaling, so
// this choice only moves the operating point (see DESIGN.md §8).
func Default() Setup {
	grid := network.DefaultGridSpec()
	grid.Mu = 0.5
	return Setup{
		Grid:     grid,
		AmberSec: 4,
		Alpha:    -1,
		Beta:     -2,
		Seed:     1,
	}
}

func (s Setup) withDefaults() Setup {
	if s.Grid.Rows == 0 || s.Grid.Cols == 0 {
		s.Grid = network.DefaultGridSpec()
	}
	if s.AmberSec == 0 {
		s.AmberSec = 4
	}
	if s.Alpha == 0 {
		s.Alpha = -1
	}
	if s.Beta == 0 {
		s.Beta = -2
	}
	if s.TurnProbs == nil {
		s.TurnProbs = TableI
	}
	return s
}

// Build instantiates the scenario for a pattern: a fresh immutable
// Artifact plus mutable per-run collaborators. Callers that run many
// engines should build the artifact once (BuildArtifact or an
// ArtifactCache) and call Instantiate per engine instead, sharing the
// immutable part by reference.
func (s Setup) Build(pattern Pattern) (*Instance, error) {
	a, err := s.BuildArtifact(pattern)
	if err != nil {
		return nil, err
	}
	return a.Instantiate(), nil
}

// demandRate converts the pattern's Table II rows into a RateFunc over
// the grid's entry roads. The mixed pattern chains I..IV hourly; the
// rush-hour ramp scales the uniform Pattern II rates by a trapezoid.
func demandRate(g *network.GridNetwork, pattern Pattern) (sim.RateFunc, error) {
	if pattern == PatternRush {
		base, err := demandRate(g, PatternII)
		if err != nil {
			return nil, err
		}
		return func(r network.RoadID, t float64) float64 {
			return rushScale(t) * base(r, t)
		}, nil
	}
	if pattern == PatternMixed {
		pw := sim.NewPiecewise()
		for _, p := range Patterns {
			r, err := demandRate(g, p)
			if err != nil {
				return nil, err
			}
			if err := pw.Append(p.Duration(), r); err != nil {
				return nil, err
			}
		}
		return pw.Rate(), nil
	}
	table, err := pattern.InterArrival()
	if err != nil {
		return nil, err
	}
	rt := sim.RateTable{}
	for side, mean := range table {
		for _, rid := range g.Entries(side) {
			rt[rid] = mean
		}
	}
	return rt.Rate(), nil
}

// UtilBP returns the UTIL-BP factory configured for this setup.
func (s Setup) UtilBP() signal.Factory {
	s = s.withDefaults()
	return core.Factory(core.Options{
		Alpha:      s.Alpha,
		Beta:       s.Beta,
		AmberSteps: s.AmberSec,
		Variant:    core.GainVariant{CountApproaching: s.CountApproaching},
	})
}

// UtilBPVariant returns a UTIL-BP factory with ablation switches; the
// setup's detector convention is applied on top.
func (s Setup) UtilBPVariant(v core.GainVariant, noKeepPhase bool) signal.Factory {
	s = s.withDefaults()
	v.CountApproaching = s.CountApproaching
	return core.Factory(core.Options{
		Alpha:       s.Alpha,
		Beta:        s.Beta,
		AmberSteps:  s.AmberSec,
		Variant:     v,
		NoKeepPhase: noKeepPhase,
	})
}

// CapBP returns the CAP-BP factory with the given control phase period
// in seconds, using the same detector convention as UtilBP.
func (s Setup) CapBP(periodSec int) signal.Factory {
	s = s.withDefaults()
	opts := bp.SlotOptions{PeriodSteps: periodSec, AmberSteps: s.AmberSec}
	if s.CountApproaching {
		return bp.CAPBPApproaching(opts)
	}
	return bp.CAPBP(opts)
}

// CapBPNormalized returns the capacity-normalized CAP-BP variant, whose
// pressures are queue fractions of road capacity.
func (s Setup) CapBPNormalized(periodSec int) signal.Factory {
	s = s.withDefaults()
	return bp.CAPBPNormalized(bp.SlotOptions{PeriodSteps: periodSec, AmberSteps: s.AmberSec})
}

// OrigBP returns the original back-pressure factory of eq. (5).
func (s Setup) OrigBP(periodSec int) signal.Factory {
	s = s.withDefaults()
	return bp.ORIGBP(bp.SlotOptions{PeriodSteps: periodSec, AmberSteps: s.AmberSec})
}

// FixedTime returns a pretimed round-robin factory.
func (s Setup) FixedTime(greenSec int) signal.Factory {
	s = s.withDefaults()
	return fixedtime.Factory(fixedtime.Options{GreenSteps: greenSec, AmberSteps: s.AmberSec})
}

// MaxPressure returns the Varaiya-style MaxPressure factory with the
// given guaranteed green in seconds (0 = package default), using the
// same amber and detector conventions as UtilBP.
func (s Setup) MaxPressure(minGreenSec int) signal.Factory {
	s = s.withDefaults()
	return maxpressure.Factory(maxpressure.Options{
		MinGreenSteps:    minGreenSec,
		AmberSteps:       s.AmberSec,
		CountApproaching: s.CountApproaching,
	})
}

// GapOut returns the actuated gap-out factory with the given green
// bounds and gap-out timer in seconds (0 = package defaults).
func (s Setup) GapOut(minGreenSec, maxGreenSec, gapSec int) signal.Factory {
	s = s.withDefaults()
	return gapout.Factory(gapout.Options{
		MinGreenSteps: minGreenSec,
		MaxGreenSteps: maxGreenSec,
		GapSteps:      gapSec,
		AmberSteps:    s.AmberSec,
	})
}

// EstimatedBP returns the unknown-routing-rate back-pressure factory
// (internal/bpest): eq. (8)'s gains driven by online turn-ratio
// estimates with the given forgetting rate (0 = package default)
// instead of the frozen route table.
func (s Setup) EstimatedBP(estAlpha float64) signal.Factory {
	s = s.withDefaults()
	return bpest.Factory(bpest.Options{
		Alpha:      estAlpha,
		GainAlpha:  s.Alpha,
		GainBeta:   s.Beta,
		AmberSteps: s.AmberSec,
	})
}

// WithCentralIncident returns a copy of the setup carrying one
// capacity-drop incident on the plotted east approach of the grid's
// top-right junction (the road Figures 3-5 watch): for [t0, t0+dur)
// seconds its capacity falls to capFrac of nominal. It is the shared
// severity knob behind RobustnessSweep and the city-grid-incident
// workload — one named disrupted road per grid, derived from geometry
// instead of hard-coded names.
func (s Setup) WithCentralIncident(t0, dur, capFrac float64) (Setup, error) {
	s = s.withDefaults()
	g, err := network.Grid(s.Grid)
	if err != nil {
		return Setup{}, err
	}
	rid := EastApproach(g, TopRight(g))
	if rid == network.NoRoad {
		return Setup{}, fmt.Errorf("scenario: grid %dx%d has no east approach at the top-right junction",
			s.Grid.Rows, s.Grid.Cols)
	}
	spec := event.Incident(g.Road(rid).Name, t0, dur, capFrac)
	if err := spec.Validate(); err != nil {
		return Setup{}, err
	}
	s.Events = append(append([]event.Spec(nil), s.Events...), spec)
	return s, nil
}

// WithAreaIncident returns a copy of the setup carrying a k×k area
// incident centered on the grid's middle junction: every approach road
// entering a junction of the neighborhood drops to capFrac of nominal
// capacity for [t0, t0+dur) seconds. It models an area-wide incident —
// a closed-off district, flooding, a parade route — rather than
// WithCentralIncident's single blocked link, and is the severity axis
// of the PR 8 stress study (experiment.StressSweep).
func (s Setup) WithAreaIncident(k int, t0, dur, capFrac float64) (Setup, error) {
	s = s.withDefaults()
	return s.WithAreaIncidentAt(s.Grid.Rows/2, s.Grid.Cols/2, k, t0, dur, capFrac)
}

// WithCornerAreaIncident anchors the k×k area incident at the grid's
// top-right junction — the corner the paper plots and the region the
// boundary demand loads first, so the closure binds even on horizons
// where a central area would sit in the fill transient's empty middle.
// It is the severity knob of experiment.StressSweep, the area-shaped
// sibling of WithCentralIncident.
func (s Setup) WithCornerAreaIncident(k int, t0, dur, capFrac float64) (Setup, error) {
	s = s.withDefaults()
	return s.WithAreaIncidentAt(0, s.Grid.Cols-1, k, t0, dur, capFrac)
}

// WithAreaIncidentAt is WithAreaIncident anchored at an explicit
// junction (row, col): the affected neighborhood is the k×k block of
// junctions centered there, clamped to the grid. Each road enters
// exactly one junction, so the emitted incident specs are disjoint by
// construction and pass event.Compile's overlap rejection.
func (s Setup) WithAreaIncidentAt(row, col, k int, t0, dur, capFrac float64) (Setup, error) {
	s = s.withDefaults()
	if k < 1 {
		return Setup{}, fmt.Errorf("scenario: area incident size k=%d must be >= 1", k)
	}
	g, err := network.Grid(s.Grid)
	if err != nil {
		return Setup{}, err
	}
	if row < 0 || row >= g.Rows() || col < 0 || col >= g.Cols() {
		return Setup{}, fmt.Errorf("scenario: area incident center (%d,%d) outside %dx%d grid",
			row, col, g.Rows(), g.Cols())
	}
	r0, r1 := clampRange(row-(k-1)/2, k, g.Rows())
	c0, c1 := clampRange(col-(k-1)/2, k, g.Cols())
	events := append([]event.Spec(nil), s.Events...)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			j := g.Junction(g.JunctionAt(r, c))
			for _, dir := range network.Dirs {
				rid := j.In[dir]
				if rid == network.NoRoad {
					continue
				}
				spec := event.Incident(g.Road(rid).Name, t0, dur, capFrac)
				if err := spec.Validate(); err != nil {
					return Setup{}, err
				}
				events = append(events, spec)
			}
		}
	}
	s.Events = events
	return s, nil
}

// clampRange shifts a half-open [start, start+k) window to fit [0, n),
// shrinking only when k exceeds n.
func clampRange(start, k, n int) (int, int) {
	if k > n {
		return 0, n
	}
	if start < 0 {
		start = 0
	}
	if start+k > n {
		start = n - k
	}
	return start, start + k
}

// TopRight returns the north-eastern junction the paper plots in
// Figures 3-5.
func TopRight(g *network.GridNetwork) network.NodeID {
	return g.JunctionAt(0, g.Cols()-1)
}

// EastApproach returns the incoming road from the east at a junction,
// the road whose queue the paper plots in Figure 5.
func EastApproach(g *network.GridNetwork, junction network.NodeID) network.RoadID {
	j := g.Junction(junction)
	if j == nil {
		return network.NoRoad
	}
	return j.In[network.East]
}
