package stability

import (
	"testing"

	"utilbp/internal/scenario"
)

func testOpts(t *testing.T) Options {
	t.Helper()
	setup := scenario.Default()
	setup.Seed = 5
	return Options{
		Setup:      setup,
		Pattern:    scenario.PatternII,
		Factory:    setup.UtilBP(),
		HorizonSec: 900,
		Iterations: 3,
	}
}

func TestEvaluateLightDemandStable(t *testing.T) {
	eval, err := Evaluate(testOpts(t), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !eval.Stable {
		t.Fatalf("30%% of Table II demand classified unstable: %+v", eval)
	}
}

func TestEvaluateAbsurdDemandUnstable(t *testing.T) {
	eval, err := Evaluate(testOpts(t), 5)
	if err != nil {
		t.Fatal(err)
	}
	if eval.Stable {
		t.Fatalf("5x Table II demand classified stable: %+v", eval)
	}
	if eval.Slope <= 0 {
		t.Errorf("overloaded backlog slope = %v, want positive", eval.Slope)
	}
}

func TestEvaluateRejectsTinyHorizon(t *testing.T) {
	opts := testOpts(t)
	opts.HorizonSec = 20
	if _, err := Evaluate(opts, 1); err == nil {
		t.Fatal("tiny horizon accepted")
	}
}

func TestProbeBrackets(t *testing.T) {
	opts := testOpts(t)
	opts.MinScale = 0.3
	opts.MaxScale = 4
	res, err := Probe(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalScale < opts.MinScale || res.CriticalScale >= opts.MaxScale {
		t.Fatalf("critical scale %v outside (%v, %v)", res.CriticalScale, opts.MinScale, opts.MaxScale)
	}
	// min eval + max eval + Iterations bisection evals.
	if len(res.Evaluations) != 2+opts.Iterations {
		t.Fatalf("evaluations = %d", len(res.Evaluations))
	}
}

func TestProbeAllStable(t *testing.T) {
	opts := testOpts(t)
	opts.MinScale = 0.1
	opts.MaxScale = 0.2
	res, err := Probe(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalScale != 0.2 {
		t.Fatalf("critical = %v, want MaxScale when everything is stable", res.CriticalScale)
	}
}

func TestProbeAllUnstable(t *testing.T) {
	opts := testOpts(t)
	opts.MinScale = 4
	opts.MaxScale = 6
	res, err := Probe(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalScale != 0 {
		t.Fatalf("critical = %v, want 0 when even MinScale is unstable", res.CriticalScale)
	}
}

func TestProbeValidation(t *testing.T) {
	opts := testOpts(t)
	opts.Factory = nil
	if _, err := Probe(opts); err == nil {
		t.Error("missing factory accepted")
	}
	opts = testOpts(t)
	opts.MinScale = 2
	opts.MaxScale = 1
	if _, err := Probe(opts); err == nil {
		t.Error("inverted bracket accepted")
	}
}

// TestUtilAtLeastAsStableAsCap is the trade-off question the paper defers:
// does utilization-awareness cost stability margin? At probe resolution,
// UTIL-BP's critical demand scale is at least CAP-BP's.
func TestUtilAtLeastAsStableAsCap(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := testOpts(t)
	base.Iterations = 4
	util, err := Probe(base)
	if err != nil {
		t.Fatal(err)
	}
	capOpts := base
	capOpts.Factory = base.Setup.CapBP(22)
	capRes, err := Probe(capOpts)
	if err != nil {
		t.Fatal(err)
	}
	if util.CriticalScale < capRes.CriticalScale*0.85 {
		t.Errorf("UTIL-BP critical scale %.3f far below CAP-BP %.3f",
			util.CriticalScale, capRes.CriticalScale)
	}
	t.Logf("critical demand scale: UTIL-BP %.3f, CAP-BP@22 %.3f", util.CriticalScale, capRes.CriticalScale)
}
