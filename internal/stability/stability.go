// Package stability probes the capacity margin of a signal controller:
// the largest uniform demand scaling under which the network remains
// stable (bounded backlog). The paper proves maximum stability only for
// the idealized back-pressure policy and explicitly defers the
// stability/utilization trade-off of UTIL-BP to future work (§VI); this
// package provides the empirical instrument for that study.
//
// Stability here is the practical, bounded-queue notion: a run is stable
// when the network backlog (vehicles in the network plus vehicles blocked
// from entering) stops growing over the second half of the horizon.
package stability

import (
	"fmt"

	"utilbp/internal/analysis"
	"utilbp/internal/experiment"
	"utilbp/internal/scenario"
	"utilbp/internal/signal"
	"utilbp/internal/sim"
)

// Options configures a probe.
type Options struct {
	// Setup and Pattern define the base scenario (DemandScale is
	// overridden by the probe).
	Setup   scenario.Setup
	Pattern scenario.Pattern
	// Factory builds the controller under test.
	Factory signal.Factory
	// HorizonSec is the per-run horizon; zero defaults to 1800 s.
	HorizonSec float64
	// MinScale and MaxScale bracket the bisection; zero defaults to
	// [0.25, 3].
	MinScale, MaxScale float64
	// Iterations is the number of bisection steps; zero defaults to 6.
	Iterations int
	// SlopeLimit is the backlog growth (vehicles per second, averaged
	// over the second half of the run) above which a run counts as
	// unstable; zero defaults to 0.05 veh/s (3 veh/min).
	SlopeLimit float64
}

func (o Options) withDefaults() Options {
	if o.HorizonSec <= 0 {
		o.HorizonSec = 1800
	}
	if o.MinScale <= 0 {
		o.MinScale = 0.25
	}
	if o.MaxScale <= 0 {
		o.MaxScale = 3
	}
	if o.Iterations <= 0 {
		o.Iterations = 6
	}
	if o.SlopeLimit <= 0 {
		o.SlopeLimit = 0.05
	}
	return o
}

// Evaluation is one probed demand scale.
type Evaluation struct {
	Scale float64
	// Slope is the backlog growth rate in veh/s over the second half.
	Slope float64
	// FinalBacklog is spawned-minus-exited at the horizon.
	FinalBacklog int
	Stable       bool
}

// Result is the outcome of a probe.
type Result struct {
	// CriticalScale is the largest scale observed stable; demand beyond
	// it destabilized the network.
	CriticalScale float64
	// Evaluations lists every probed scale in evaluation order.
	Evaluations []Evaluation
}

// backlogRecorder samples spawned-minus-exited, which includes vehicles
// blocked outside full entry roads — the quantity that grows without
// bound when demand exceeds what the controller can serve.
type backlogRecorder struct {
	every  int
	values []float64
}

func (r *backlogRecorder) hooks() sim.Hooks {
	return sim.Hooks{Step: func(e *sim.Engine, step int) {
		if step%r.every != 0 {
			return
		}
		tot := e.Totals()
		r.values = append(r.values, float64(tot.Spawned-tot.Exited))
	}}
}

// Evaluate runs one scale and classifies it.
func Evaluate(opts Options, scale float64) (Evaluation, error) {
	opts = opts.withDefaults()
	setup := opts.Setup
	setup.DemandScale = scale
	engine, _, _, err := experiment.Prepare(experiment.Spec{
		Setup:   setup,
		Pattern: opts.Pattern,
		Factory: opts.Factory,
	})
	if err != nil {
		return Evaluation{}, err
	}
	rec := &backlogRecorder{every: 10}
	engine.AddHooks(rec.hooks())
	engine.RunFor(opts.HorizonSec)
	if len(rec.values) < 4 {
		return Evaluation{}, fmt.Errorf("stability: horizon %v too short to classify", opts.HorizonSec)
	}
	half := rec.values[len(rec.values)/2:]
	// Trend is per sample; samples are 10 steps of DeltaT seconds.
	slope := analysis.Trend(half) / (10 * engine.DeltaT())
	tot := engine.Totals()
	return Evaluation{
		Scale:        scale,
		Slope:        slope,
		FinalBacklog: tot.Spawned - tot.Exited,
		Stable:       slope <= opts.SlopeLimit,
	}, nil
}

// Probe bisects the demand scale between MinScale and MaxScale and
// returns the largest stable scale found. If even MinScale is unstable,
// CriticalScale is 0; if MaxScale is stable, CriticalScale is MaxScale.
func Probe(opts Options) (Result, error) {
	opts = opts.withDefaults()
	if opts.Factory == nil {
		return Result{}, fmt.Errorf("stability: Options.Factory is required")
	}
	if opts.MinScale >= opts.MaxScale {
		return Result{}, fmt.Errorf("stability: need MinScale < MaxScale, got %v >= %v", opts.MinScale, opts.MaxScale)
	}
	var res Result

	lowEval, err := Evaluate(opts, opts.MinScale)
	if err != nil {
		return Result{}, err
	}
	res.Evaluations = append(res.Evaluations, lowEval)
	if !lowEval.Stable {
		return res, nil
	}
	highEval, err := Evaluate(opts, opts.MaxScale)
	if err != nil {
		return Result{}, err
	}
	res.Evaluations = append(res.Evaluations, highEval)
	if highEval.Stable {
		res.CriticalScale = opts.MaxScale
		return res, nil
	}

	lo, hi := opts.MinScale, opts.MaxScale
	for i := 0; i < opts.Iterations; i++ {
		mid := (lo + hi) / 2
		eval, err := Evaluate(opts, mid)
		if err != nil {
			return Result{}, err
		}
		res.Evaluations = append(res.Evaluations, eval)
		if eval.Stable {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.CriticalScale = lo
	return res, nil
}
