// Package telemetry implements the zero-allocation metrics plane of the
// simulator: per-step metric series recorded into pre-sized ring
// buffers while the engine runs — the live window into queue build-up,
// estimator convergence and incident drains that post-hoc CSVs cannot
// give (DESIGN.md §15), and the front half of the trafficsimd daemon's
// streaming story.
//
// A Recorder is installed on an engine via sim.Engine.InstallTelemetry
// and flushed by the engine at every step boundary. What it records is
// selected by a declarative, comparable Spec — the same role
// sensing.Spec plays for observation models — so telemetry
// configurations can key sweep axes and round-trip through flags:
//
//	off                  nothing (the zero value)
//	net                  network-level series only
//	net+junc:J00,J22     network series plus the named junctions
//	full                 network series plus every junction
//
// Recording is observation-only by construction: the recorder reads
// engine ground truth and mutates only its own buffers, so enabling or
// disabling telemetry never perturbs simulation state (pinned
// bit-for-bit by TestTelemetryObservationOnly against snapshot bytes).
package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Kind selects how much the recorder tracks.
type Kind int

const (
	// KindOff records nothing; it is the zero value so an absent spec
	// means "telemetry off".
	KindOff Kind = iota
	// KindNet records the network-level series only: total queued,
	// spawn-queued (blocked arrivals), per-step spawn/exit counts, the
	// running mean wait and the active-event count.
	KindNet
	// KindNetJunc records the network series plus per-junction channels
	// for an explicit junction list (Spec.Junctions).
	KindNetJunc
	// KindFull records the network series plus per-junction channels
	// for every junction.
	KindFull
)

// String names the kind using the spec grammar's keywords.
func (k Kind) String() string {
	switch k {
	case KindOff:
		return "off"
	case KindNet:
		return "net"
	case KindNetJunc:
		return "net+junc"
	case KindFull:
		return "full"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is a declarative telemetry selection. The zero value means
// telemetry off. Specs are comparable (usable as map keys and sweep-axis
// cells, like sensing.Spec), which is why the junction selection is kept
// as one canonical string rather than a slice.
type Spec struct {
	// Kind selects the recording scope.
	Kind Kind
	// Junctions is the canonical junction-label list for KindNetJunc:
	// comma-joined, lexically sorted, duplicate-free (e.g. "J00,J22").
	// It is empty for every other kind. Build it with Junc or ParseSpec
	// rather than by hand so canonical form — and thus Spec equality —
	// is preserved.
	Junctions string
}

// Off reports whether the spec disables telemetry.
func (s Spec) Off() bool { return s.Kind == KindOff }

// Net returns the network-series-only spec.
func Net() Spec { return Spec{Kind: KindNet} }

// Full returns the record-everything spec.
func Full() Spec { return Spec{Kind: KindFull} }

// Junc returns a net+junc spec tracking the given junction labels. The
// list is canonicalized (sorted, deduplicated) so equal selections
// compare equal.
func Junc(labels ...string) Spec {
	return Spec{Kind: KindNetJunc, Junctions: canonicalJunctions(labels)}
}

// canonicalJunctions sorts and deduplicates a junction-label list into
// the comma-joined canonical form Spec.Junctions carries.
func canonicalJunctions(labels []string) string {
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	out := sorted[:0]
	for i, l := range sorted {
		if i == 0 || l != sorted[i-1] {
			out = append(out, l)
		}
	}
	return strings.Join(out, ",")
}

// JunctionList returns the junction labels of a net+junc spec, nil for
// every other kind.
func (s Spec) JunctionList() []string {
	if s.Kind != KindNetJunc || s.Junctions == "" {
		return nil
	}
	return strings.Split(s.Junctions, ",")
}

// Validate checks the spec is well formed and in canonical form (the
// form ParseSpec and the constructors produce), so that comparable
// equality is meaningful.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindOff, KindNet, KindFull:
		if s.Junctions != "" {
			return fmt.Errorf("telemetry: %s spec carries a junction list %q", s.Kind, s.Junctions)
		}
		return nil
	case KindNetJunc:
		if s.Junctions == "" {
			return fmt.Errorf("telemetry: net+junc spec needs at least one junction")
		}
		prev := ""
		for i, l := range strings.Split(s.Junctions, ",") {
			if l == "" {
				return fmt.Errorf("telemetry: empty junction label in %q", s.Junctions)
			}
			if strings.ContainsAny(l, " \t\n") {
				return fmt.Errorf("telemetry: junction label %q contains whitespace", l)
			}
			if i > 0 && l <= prev {
				return fmt.Errorf("telemetry: junction list %q is not canonical (sorted, unique)", s.Junctions)
			}
			prev = l
		}
		return nil
	default:
		return fmt.Errorf("telemetry: unknown kind %d", int(s.Kind))
	}
}

// String renders the spec in the grammar ParseSpec accepts, so specs
// round-trip through flags and sweep labels.
func (s Spec) String() string {
	if s.Kind == KindNetJunc {
		return "net+junc:" + s.Junctions
	}
	return s.Kind.String()
}

// ParseSpec parses the flag grammar: off | net | net+junc:<ids> | full,
// where <ids> is a comma-separated junction-label list (canonicalized:
// the parsed spec's Junctions is sorted and duplicate-free). The kind
// keyword is case-insensitive and surrounding whitespace is ignored,
// like sensing.ParseSpec; junction labels are case-sensitive (they name
// network nodes).
func ParseSpec(arg string) (Spec, error) {
	kind, rest, cut := strings.Cut(strings.TrimSpace(arg), ":")
	kind = strings.ToLower(kind)
	switch kind {
	case "off":
		if cut {
			return Spec{}, fmt.Errorf("telemetry: off takes no argument in %q", arg)
		}
		return Spec{}, nil
	case "net":
		if cut {
			return Spec{}, fmt.Errorf("telemetry: net takes no argument in %q", arg)
		}
		return Net(), nil
	case "full":
		if cut {
			return Spec{}, fmt.Errorf("telemetry: full takes no argument in %q", arg)
		}
		return Full(), nil
	case "net+junc":
		if !cut || rest == "" {
			return Spec{}, fmt.Errorf("telemetry: net+junc needs a junction list (net+junc:J00,J22)")
		}
		s := Junc(strings.Split(rest, ",")...)
		if err := s.Validate(); err != nil {
			return Spec{}, err
		}
		return s, nil
	default:
		return Spec{}, fmt.Errorf("telemetry: unknown spec %q (want off | net | net+junc:<ids> | full)", arg)
	}
}
