package telemetry

import "testing"

// FuzzParseSpec fuzzes the spec grammar round trip: every accepted
// input must validate, render to a fixed-point canonical string, and
// re-parse to an identical Spec (Specs are comparable, so structural
// equality is exact — unlike sensing.Spec there are no defaulted
// numeric parameters to normalize).
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"off", "net", "full", "net+junc:J00", "net+junc:J22,J00",
		"net+junc:J00,J00", " NET ", "Full", "net+junc:", "net+junc",
		"net:x", "off:1", "bogus", "", "net+junc:a,b,c", "net+junc:J0 0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, arg string) {
		spec, err := ParseSpec(arg)
		if err != nil {
			return // rejected inputs are out of contract
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid spec %+v: %v", arg, spec, err)
		}
		rendered := spec.String()
		back, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(%q) -> %+v renders %q, which does not re-parse: %v", arg, spec, rendered, err)
		}
		if back != spec {
			t.Fatalf("round trip of %q changed spec: %+v -> %+v", arg, spec, back)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("String is not a fixed point: %q -> %q", rendered, again)
		}
	})
}
