package telemetry

import (
	"fmt"
	"math"

	"utilbp/internal/bpest"
	"utilbp/internal/signal"
)

// DefaultEstimatorAlpha is the per-event forgetting rate of the
// recorder's turn-ratio estimators — the same default the BP-EST
// controller family uses (bpest.Options), so the estimator-error
// channel tracks the controller-grade estimate.
const DefaultEstimatorAlpha = 0.05

// NetSample is one step's network-level measurement, filled by the
// engine's telemetry flush (sim.Engine.InstallTelemetry).
type NetSample struct {
	// Queued counts vehicles queued on approaches across the network
	// (turning and mixed lanes; spawn queues excluded).
	Queued int
	// SpawnQueued counts blocked arrivals: vehicles waiting in entry
	// spawn queues because their entry road is full.
	SpawnQueued int
	// Spawned and Exited count the vehicles generated and the vehicles
	// leaving the network during this step (per-step deltas; Exited is
	// the instantaneous throughput series).
	Spawned, Exited int
	// ActiveEvents counts the disruption-event windows in effect.
	ActiveEvents int
	// WaitSec is the cumulative queued vehicle-seconds accrued since
	// the recorder was (re-)armed, and CumExited the cumulative exit
	// count — their ratio is the running mean-wait estimate.
	WaitSec   float64
	CumExited int
}

// JuncMeta describes one tracked junction at arm time.
type JuncMeta struct {
	// Label is the junction's node name (e.g. "J00").
	Label string
	// NumLinks is the junction's link count, sizing the per-link
	// estimator state.
	NumLinks int
}

// juncChannel holds one tracked junction's ring-buffered series plus
// the running state its derived channels (switch count, estimator
// error) need.
type juncChannel struct {
	label string
	// Ring-buffered per-step series, all pre-sized to the ring
	// capacity at arm time.
	queued   []int32
	phase    []int32
	switches []int32
	dark     []int32
	pressure []int32
	estErr   []float32
	// lastPhase and switchCount implement the phase-switch counter: a
	// switch is a green onset onto a different phase than the previous
	// green.
	lastPhase   signal.Phase
	switchCount int32
	// est tracks, per link, the online turn-ratio estimate whose gap
	// to the realized turning fractions is the estimator-error channel.
	// lastTotal/lastErr cache each link's cumulative join count and
	// error contribution: the estimator and the realized fractions only
	// move when a vehicle joins the link's outgoing road, so steps
	// without new joins reuse the cached error instead of redoing the
	// per-movement float math (the dominant cost of the full spec).
	est       []bpest.TurnRatioEstimator
	lastTotal []int32
	lastErr   []float32
}

// Recorder records per-step metric series into pre-sized ring buffers.
// Construct with NewRecorder, install on an engine with
// sim.Engine.InstallTelemetry; the engine arms it (Arm) and flushes one
// sample set per completed step. When a run outlives the ring capacity
// the oldest samples are overwritten — the recorder keeps the most
// recent window, which is the contract a long-lived streaming consumer
// needs.
//
// All per-step record calls write into pre-allocated storage: after Arm
// the recorder performs no heap allocation until an export method is
// called (the zero-alloc hot-path contract, CI-gated by
// BenchmarkStepOnceInstrumented).
type Recorder struct {
	spec Spec
	// ringCap is the capacity in steps; n the retained sample count
	// (≤ ringCap); head the next write slot; lastStep the engine step
	// of the newest sample (-1 before any).
	ringCap  int
	n        int
	head     int
	cur      int // slot the current step writes to (set by RecordNet)
	lastStep int
	dt       float64
	armed    bool

	// Network-level ring buffers.
	netQueued      []int32
	netSpawnQueued []int32
	netSpawned     []int32
	netExited      []int32
	netActive      []int32
	netMeanWait    []float32

	juncs []juncChannel
}

// NewRecorder returns a recorder for the given spec with ring capacity
// for the given number of steps (size it from the run horizon:
// duration/Δt). The spec must be valid and not off — "off" is expressed
// by not installing a recorder.
func NewRecorder(spec Spec, steps int) (*Recorder, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Off() {
		return nil, fmt.Errorf("telemetry: cannot build a recorder for the off spec")
	}
	if steps <= 0 {
		return nil, fmt.Errorf("telemetry: ring capacity must be positive, got %d steps", steps)
	}
	return &Recorder{
		spec:           spec,
		ringCap:        steps,
		lastStep:       -1,
		netQueued:      make([]int32, steps),
		netSpawnQueued: make([]int32, steps),
		netSpawned:     make([]int32, steps),
		netExited:      make([]int32, steps),
		netActive:      make([]int32, steps),
		netMeanWait:    make([]float32, steps),
	}, nil
}

// Spec returns the selection the recorder was built for.
func (r *Recorder) Spec() Spec { return r.spec }

// Cap returns the ring capacity in steps.
func (r *Recorder) Cap() int { return r.ringCap }

// Len returns the number of retained samples (≤ Cap).
func (r *Recorder) Len() int { return r.n }

// DT returns the mini-slot length the recorder was armed with (0 before
// arming).
func (r *Recorder) DT() float64 { return r.dt }

// FirstStep returns the engine step of the oldest retained sample, -1
// when nothing is recorded yet.
func (r *Recorder) FirstStep() int {
	if r.n == 0 {
		return -1
	}
	return r.lastStep - r.n + 1
}

// Arm binds the recorder to an engine: the mini-slot length and the
// tracked-junction set (empty for KindNet). It allocates the
// per-junction channel storage once; the engine calls it from
// InstallTelemetry. Arming rewinds any previously recorded series.
func (r *Recorder) Arm(dt float64, juncs []JuncMeta) {
	r.dt = dt
	r.juncs = r.juncs[:0]
	for _, m := range juncs {
		jc := juncChannel{
			label:     m.Label,
			queued:    make([]int32, r.ringCap),
			phase:     make([]int32, r.ringCap),
			switches:  make([]int32, r.ringCap),
			dark:      make([]int32, r.ringCap),
			pressure:  make([]int32, r.ringCap),
			estErr:    make([]float32, r.ringCap),
			est:       make([]bpest.TurnRatioEstimator, m.NumLinks),
			lastTotal: make([]int32, m.NumLinks),
			lastErr:   make([]float32, m.NumLinks),
		}
		r.juncs = append(r.juncs, jc)
	}
	r.armed = true
	r.Rewind()
}

// Rewind discards the recorded series and resets the derived-channel
// state (switch counters, estimators), keeping the buffers: the engine
// calls it when a run rewinds (Reset/ResetWith) or jumps (Restore), so
// the recorder survives engine reuse without mixing runs.
func (r *Recorder) Rewind() {
	r.n, r.head, r.cur, r.lastStep = 0, 0, 0, -1
	for i := range r.juncs {
		jc := &r.juncs[i]
		jc.lastPhase = signal.Amber
		jc.switchCount = 0
		for li := range jc.est {
			jc.est[li] = bpest.NewTurnRatioEstimator(DefaultEstimatorAlpha)
			jc.lastTotal[li] = 0
			jc.lastErr[li] = 0
		}
	}
}

// RecordNet records one step's network-level sample and advances the
// ring cursor; the engine calls it exactly once per completed step,
// before the step's RecordJunc calls.
func (r *Recorder) RecordNet(step int, s NetSample) {
	r.cur = r.head
	r.head++
	if r.head == r.ringCap {
		r.head = 0
	}
	if r.n < r.ringCap {
		r.n++
	}
	r.lastStep = step
	c := r.cur
	r.netQueued[c] = int32(s.Queued)
	r.netSpawnQueued[c] = int32(s.SpawnQueued)
	r.netSpawned[c] = int32(s.Spawned)
	r.netExited[c] = int32(s.Exited)
	r.netActive[c] = int32(s.ActiveEvents)
	exited := s.CumExited
	if exited < 1 {
		exited = 1
	}
	r.netMeanWait[c] = float32(s.WaitSec / float64(exited))
}

// RecordJunc records one tracked junction's channels for the step
// RecordNet just opened. ji indexes the JuncMeta slice passed to Arm;
// links is the junction's ground-truth observation window, applied the
// phase actuated this step, active the applied phase's link-membership
// row (nil when amber), and dark whether the junction's controller is
// offline.
//
// The channels derived here: queued sums the per-link turning-lane
// queues; pressure is the applied phase's ORIG-BP-style pressure
// Σ (Queue − OutQueue) over its links (eq. 5 flavor — the differential
// the decision actuated); switches counts green onsets onto a different
// phase; estErr is the mean absolute gap between an online turn-ratio
// estimate (the BP-EST estimator family at DefaultEstimatorAlpha, fed
// the realized per-movement join counters) and the cumulative turning
// fractions the frozen route table realizes — the convergence signal of
// the estimated-state controllers, -1 while no link has turning data.
func (r *Recorder) RecordJunc(ji int, links []signal.LinkObs, applied signal.Phase, active []bool, dark bool) {
	jc := &r.juncs[ji]
	c := r.cur
	queued := 0
	pressure := 0
	errSum := 0.0
	errN := 0
	for li := range links {
		l := &links[li]
		queued += l.Queue
		if active != nil && active[li] {
			pressure += l.Queue - l.OutQueue
		}
		total := 0
		for _, j := range l.OutTurnJoins {
			total += j
		}
		if total > 0 {
			if int32(total) != jc.lastTotal[li] {
				jc.est[li].Observe(l.OutTurnJoins)
				ratios := jc.est[li].Ratios()
				sum := 0.0
				for t, j := range l.OutTurnJoins {
					sum += math.Abs(ratios[t] - float64(j)/float64(total))
				}
				jc.lastTotal[li] = int32(total)
				jc.lastErr[li] = float32(sum / float64(len(l.OutTurnJoins)))
			}
			errSum += float64(jc.lastErr[li])
			errN++
		}
	}
	if applied != signal.Amber && applied != jc.lastPhase {
		jc.switchCount++
		jc.lastPhase = applied
	}
	estErr := float32(-1)
	if errN > 0 {
		estErr = float32(errSum / float64(errN))
	}
	jc.queued[c] = int32(queued)
	jc.phase[c] = int32(applied)
	jc.switches[c] = jc.switchCount
	if dark {
		jc.dark[c] = 1
	} else {
		jc.dark[c] = 0
	}
	jc.pressure[c] = int32(pressure)
	jc.estErr[c] = estErr
}

// Headers returns the column names of Columns, in order: step and
// simulation time, the network channels, then six channels per tracked
// junction prefixed with its label.
func (r *Recorder) Headers() []string {
	h := []string{"step", "time_s", "queued", "spawn_queued", "spawned", "exited", "mean_wait_s", "active_events"}
	for i := range r.juncs {
		l := r.juncs[i].label
		h = append(h,
			l+"_queued", l+"_phase", l+"_switches", l+"_dark", l+"_pressure", l+"_est_err")
	}
	return h
}

// Columns materializes the retained series in chronological order, one
// float64 column per header. Export allocates; it is not part of the
// zero-alloc recording path.
func (r *Recorder) Columns() [][]float64 {
	cols := make([][]float64, 0, 8+6*len(r.juncs))
	first := r.FirstStep()
	stepCol := make([]float64, r.n)
	timeCol := make([]float64, r.n)
	for i := 0; i < r.n; i++ {
		stepCol[i] = float64(first + i)
		timeCol[i] = float64(first+i) * r.dt
	}
	cols = append(cols, stepCol, timeCol,
		r.chronoInt(r.netQueued), r.chronoInt(r.netSpawnQueued),
		r.chronoInt(r.netSpawned), r.chronoInt(r.netExited),
		r.chronoFloat(r.netMeanWait), r.chronoInt(r.netActive))
	for i := range r.juncs {
		jc := &r.juncs[i]
		cols = append(cols,
			r.chronoInt(jc.queued), r.chronoInt(jc.phase),
			r.chronoInt(jc.switches), r.chronoInt(jc.dark),
			r.chronoInt(jc.pressure), r.chronoFloat(jc.estErr))
	}
	return cols
}

// slot maps chronological sample index i (0 = oldest retained) to its
// ring slot.
func (r *Recorder) slot(i int) int {
	return (r.head - r.n + i + r.ringCap) % r.ringCap
}

// chronoInt copies an int32 ring into a chronological float64 column.
func (r *Recorder) chronoInt(ring []int32) []float64 {
	out := make([]float64, r.n)
	for i := range out {
		out[i] = float64(ring[r.slot(i)])
	}
	return out
}

// chronoFloat copies a float32 ring into a chronological float64
// column.
func (r *Recorder) chronoFloat(ring []float32) []float64 {
	out := make([]float64, r.n)
	for i := range out {
		out[i] = float64(ring[r.slot(i)])
	}
	return out
}

// NetQueued returns the network total-queued series in chronological
// order — the drain-curve channel (experiment.MeasureRecovery reads
// it). It allocates like the other export methods.
func (r *Recorder) NetQueued() []float64 { return r.chronoInt(r.netQueued) }

// Times returns the simulation-time axis of the retained samples, in
// seconds.
func (r *Recorder) Times() []float64 {
	out := make([]float64, r.n)
	first := r.FirstStep()
	for i := range out {
		out[i] = float64(first+i) * r.dt
	}
	return out
}
