package telemetry

import (
	"math"
	"testing"

	"utilbp/internal/signal"
)

func TestNewRecorderRejects(t *testing.T) {
	if _, err := NewRecorder(Spec{}, 10); err == nil {
		t.Errorf("NewRecorder accepted the off spec")
	}
	if _, err := NewRecorder(Net(), 0); err == nil {
		t.Errorf("NewRecorder accepted zero capacity")
	}
	if _, err := NewRecorder(Spec{Kind: KindNetJunc}, 10); err == nil {
		t.Errorf("NewRecorder accepted an invalid spec")
	}
}

func TestRecorderNetSeries(t *testing.T) {
	r, err := NewRecorder(Net(), 8)
	if err != nil {
		t.Fatal(err)
	}
	r.Arm(2.0, nil)
	if r.Len() != 0 || r.FirstStep() != -1 {
		t.Fatalf("armed recorder not empty: len %d first %d", r.Len(), r.FirstStep())
	}
	for step := 0; step < 3; step++ {
		r.RecordNet(step, NetSample{
			Queued: 10 + step, SpawnQueued: step, Spawned: 2, Exited: 1,
			ActiveEvents: 1, WaitSec: float64(step + 1), CumExited: step + 1,
		})
	}
	if r.Len() != 3 || r.FirstStep() != 0 {
		t.Fatalf("len %d first %d, want 3, 0", r.Len(), r.FirstStep())
	}
	heads := r.Headers()
	cols := r.Columns()
	if len(heads) != len(cols) {
		t.Fatalf("%d headers for %d columns", len(heads), len(cols))
	}
	want := map[string][]float64{
		"step":          {0, 1, 2},
		"time_s":        {0, 2, 4},
		"queued":        {10, 11, 12},
		"spawn_queued":  {0, 1, 2},
		"spawned":       {2, 2, 2},
		"exited":        {1, 1, 1},
		"active_events": {1, 1, 1},
	}
	for i, h := range heads {
		exp, ok := want[h]
		if !ok {
			continue
		}
		for j, v := range exp {
			if cols[i][j] != v {
				t.Errorf("%s[%d] = %g, want %g", h, j, cols[i][j], v)
			}
		}
	}
	// mean wait = WaitSec / CumExited.
	mw := cols[6]
	if heads[6] != "mean_wait_s" {
		t.Fatalf("column 6 is %q", heads[6])
	}
	if math.Abs(mw[2]-1.0) > 1e-6 {
		t.Errorf("mean_wait_s[2] = %g, want 1", mw[2])
	}
}

func TestRecorderRingWraps(t *testing.T) {
	r, err := NewRecorder(Net(), 4)
	if err != nil {
		t.Fatal(err)
	}
	r.Arm(1.0, nil)
	for step := 0; step < 10; step++ {
		r.RecordNet(step, NetSample{Queued: 100 + step})
	}
	if r.Len() != 4 {
		t.Fatalf("len %d, want ring capacity 4", r.Len())
	}
	if r.FirstStep() != 6 {
		t.Fatalf("first step %d, want 6 (most recent window)", r.FirstStep())
	}
	q := r.NetQueued()
	for i, want := range []float64{106, 107, 108, 109} {
		if q[i] != want {
			t.Errorf("queued[%d] = %g, want %g", i, q[i], want)
		}
	}
	times := r.Times()
	if times[0] != 6 || times[3] != 9 {
		t.Errorf("times = %v, want [6 7 8 9]", times)
	}
}

func TestRecorderRewind(t *testing.T) {
	r, err := NewRecorder(Full(), 4)
	if err != nil {
		t.Fatal(err)
	}
	r.Arm(1.0, []JuncMeta{{Label: "J00", NumLinks: 2}})
	links := make([]signal.LinkObs, 2)
	r.RecordNet(0, NetSample{Queued: 5})
	r.RecordJunc(0, links, signal.Phase(1), []bool{true, false}, false)
	r.Rewind()
	if r.Len() != 0 || r.FirstStep() != -1 {
		t.Fatalf("rewind left len %d first %d", r.Len(), r.FirstStep())
	}
	// Switch counter restarts: the same phase counts as a fresh onset.
	r.RecordNet(0, NetSample{})
	r.RecordJunc(0, links, signal.Phase(1), []bool{true, false}, false)
	cols := r.Columns()
	heads := r.Headers()
	idx := func(name string) int {
		for i, h := range heads {
			if h == name {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}
	if sw := cols[idx("J00_switches")]; sw[0] != 1 {
		t.Errorf("switches after rewind = %g, want 1", sw[0])
	}
}

func TestRecorderJuncChannels(t *testing.T) {
	r, err := NewRecorder(Junc("J00"), 8)
	if err != nil {
		t.Fatal(err)
	}
	r.Arm(1.0, []JuncMeta{{Label: "J00", NumLinks: 2}})
	links := []signal.LinkObs{
		{Queue: 4, OutQueue: 1},
		{Queue: 2, OutQueue: 5},
	}
	phase1 := []bool{true, false}
	phase2 := []bool{false, true}

	// Step 0: amber — no pressure, no switch.
	r.RecordNet(0, NetSample{})
	r.RecordJunc(0, links, signal.Amber, nil, false)
	// Step 1: phase 1 green onset.
	r.RecordNet(1, NetSample{})
	r.RecordJunc(0, links, signal.Phase(1), phase1, false)
	// Step 2: phase 1 held — no new switch.
	r.RecordNet(2, NetSample{})
	r.RecordJunc(0, links, signal.Phase(1), phase1, false)
	// Step 3: phase 2, dark.
	r.RecordNet(3, NetSample{})
	r.RecordJunc(0, links, signal.Phase(2), phase2, true)

	heads := r.Headers()
	cols := r.Columns()
	col := func(name string) []float64 {
		for i, h := range heads {
			if h == name {
				return cols[i]
			}
		}
		t.Fatalf("no column %q", name)
		return nil
	}
	if q := col("J00_queued"); q[0] != 6 {
		t.Errorf("queued = %g, want 6", q[0])
	}
	if p := col("J00_pressure"); p[0] != 0 || p[1] != 3 || p[3] != -3 {
		t.Errorf("pressure = %v, want [0 3 3 -3]", p)
	}
	if sw := col("J00_switches"); sw[0] != 0 || sw[1] != 1 || sw[2] != 1 || sw[3] != 2 {
		t.Errorf("switches = %v, want [0 1 1 2]", sw)
	}
	if d := col("J00_dark"); d[2] != 0 || d[3] != 1 {
		t.Errorf("dark = %v, want [0 0 0 1]", d)
	}
	if ph := col("J00_phase"); ph[0] != 0 || ph[1] != 1 || ph[3] != 2 {
		t.Errorf("phase = %v", ph)
	}
	// No turning data yet: the estimator-error channel is the -1
	// sentinel.
	if ee := col("J00_est_err"); ee[0] != -1 {
		t.Errorf("est_err = %g, want -1 sentinel", ee[0])
	}
}

func TestRecorderEstimatorError(t *testing.T) {
	r, err := NewRecorder(Junc("J00"), 64)
	if err != nil {
		t.Fatal(err)
	}
	r.Arm(1.0, []JuncMeta{{Label: "J00", NumLinks: 1}})
	// Feed a 60/30/10 turning split; the EWMA estimate starts at the
	// uniform prior and must converge toward the realized ratios, so
	// the error series must shrink.
	links := make([]signal.LinkObs, 1)
	joins := [signal.NumTurns]int{}
	var first, last float64
	for step := 0; step < 60; step++ {
		joins[0] += 6
		joins[1] += 3
		joins[2]++
		links[0].OutTurnJoins = joins
		r.RecordNet(step, NetSample{})
		r.RecordJunc(0, links, signal.Phase(1), []bool{true}, false)
	}
	heads := r.Headers()
	cols := r.Columns()
	for i, h := range heads {
		if h == "J00_est_err" {
			first, last = cols[i][0], cols[i][len(cols[i])-1]
		}
	}
	if first <= 0 {
		t.Fatalf("first est_err = %g, want positive (prior far from 60/30/10)", first)
	}
	if last >= first/2 {
		t.Errorf("est_err did not converge: first %g, last %g", first, last)
	}
}

// TestRecorderWrapGeometryRegression pins the overwrite-oldest ring
// geometry at every interesting boundary: one short of capacity, the
// exact wrap point, one past it, whole multiples and a mid-ring
// offset. At each boundary the recorder must retain exactly the newest
// min(n, cap) samples in chronological order, with FirstStep tracking
// the oldest retained step — the geometry the engine's incremental
// netQueued cross-check (sim.Engine.CheckInvariants) reads the tail
// through.
func TestRecorderWrapGeometryRegression(t *testing.T) {
	const capSteps = 5
	r, err := NewRecorder(Net(), capSteps)
	if err != nil {
		t.Fatal(err)
	}
	r.Arm(1.0, nil)
	if r.Cap() != capSteps {
		t.Fatalf("Cap = %d, want %d", r.Cap(), capSteps)
	}
	check := func(recorded int) {
		t.Helper()
		wantLen := recorded
		if wantLen > capSteps {
			wantLen = capSteps
		}
		if r.Len() != wantLen {
			t.Fatalf("after %d records: Len = %d, want %d", recorded, r.Len(), wantLen)
		}
		wantFirst := recorded - wantLen
		if recorded == 0 {
			wantFirst = -1
		}
		if r.FirstStep() != wantFirst {
			t.Fatalf("after %d records: FirstStep = %d, want %d", recorded, r.FirstStep(), wantFirst)
		}
		q := r.NetQueued()
		if len(q) != wantLen {
			t.Fatalf("after %d records: series len %d, want %d", recorded, len(q), wantLen)
		}
		for i, v := range q {
			// Sample for step s carries Queued = 1000+s, so the retained
			// window must be the contiguous newest steps.
			if want := float64(1000 + wantFirst + i); v != want {
				t.Fatalf("after %d records: series[%d] = %g, want %g (window %v)", recorded, i, v, want, q)
			}
		}
	}
	recorded := 0
	record := func(upTo int) {
		for ; recorded < upTo; recorded++ {
			r.RecordNet(recorded, NetSample{Queued: 1000 + recorded})
		}
	}
	check(0)
	for _, boundary := range []int{capSteps - 1, capSteps, capSteps + 1, 2 * capSteps, 2*capSteps + 3, 7 * capSteps} {
		record(boundary)
		check(boundary)
	}
	// Rewind mid-wrap restarts the geometry from an empty window.
	r.Rewind()
	recorded = 0
	check(0)
	record(capSteps + 2)
	check(capSteps + 2)
}
