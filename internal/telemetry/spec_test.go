package telemetry

import "testing"

func TestParseSpec(t *testing.T) {
	cases := []struct {
		arg  string
		want Spec
	}{
		{"off", Spec{}},
		{"net", Net()},
		{"full", Full()},
		{"net+junc:J00", Junc("J00")},
		{"net+junc:J22,J00", Junc("J00", "J22")},
		{"net+junc:J00,J00,J22", Junc("J00", "J22")},
		{" NET ", Net()},
		{"FULL", Full()},
		{"Net+Junc:J00", Junc("J00")},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.arg)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.arg, err)
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.arg, got, c.want)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, arg := range []string{
		"", "bogus", "net:x", "off:1", "full:all", "net+junc", "net+junc:",
		"net+junc:,", "net+junc:J00,,J22", "junc:J00",
	} {
		if s, err := ParseSpec(arg); err == nil {
			t.Errorf("ParseSpec(%q) accepted %+v, want error", arg, s)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, s := range []Spec{{}, Net(), Full(), Junc("J00"), Junc("J31", "J02", "J11")} {
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		if back != s {
			t.Errorf("round trip of %+v via %q gave %+v", s, s.String(), back)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	valid := []Spec{{}, Net(), Full(), Junc("J00", "J22")}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", s, err)
		}
	}
	invalid := []Spec{
		{Kind: KindNet, Junctions: "J00"},
		{Kind: KindFull, Junctions: "J00"},
		{Kind: KindNetJunc},
		{Kind: KindNetJunc, Junctions: "J22,J00"}, // not sorted
		{Kind: KindNetJunc, Junctions: "J00,J00"}, // duplicate
		{Kind: KindNetJunc, Junctions: "J0 0"},    // whitespace
		{Kind: Kind(99)},
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) passed, want error", s)
		}
	}
}

func TestJuncCanonicalizes(t *testing.T) {
	if a, b := Junc("J22", "J00", "J22"), Junc("J00", "J22"); a != b {
		t.Errorf("Junc canonicalization: %+v != %+v", a, b)
	}
}

func TestJunctionList(t *testing.T) {
	s := Junc("J22", "J00")
	got := s.JunctionList()
	if len(got) != 2 || got[0] != "J00" || got[1] != "J22" {
		t.Errorf("JunctionList() = %v, want [J00 J22]", got)
	}
	if Net().JunctionList() != nil {
		t.Errorf("net spec has a junction list")
	}
}

func TestSpecOff(t *testing.T) {
	if !(Spec{}).Off() {
		t.Errorf("zero spec is not off")
	}
	if Net().Off() || Full().Off() {
		t.Errorf("net/full report off")
	}
}
